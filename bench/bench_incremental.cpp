// Incremental delta-density SCF harness (DESIGN.md section 9): runs the
// same molecule through a full-rebuild SCF and an incremental SCF with
// density-weighted screening, emitting one JSON line per iteration with
// the quartet counters and Fock timings. The shape checks are the PR's
// acceptance criteria: the final incremental iteration must compute
// strictly fewer quartets than iteration 1 (the delta density shrinks, so
// density-weighted screening bites harder every iteration), while the
// converged energy stays within the SCF energy tolerance of the
// full-rebuild reference.

#include <cmath>
#include <cstdio>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "harness_common.hpp"
#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"

using namespace mc;

int main(int argc, char** argv) {
  bench::banner("Incremental Fock",
                "delta-density builds + density-weighted screening, "
                "benzene/STO-3G");

  auto mol = chem::builders::benzene();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-10);
  scf::SerialFockBuilder builder(eri, screen);

  scf::ScfOptions full_opt;
  full_opt.incremental_fock = false;
  const scf::ScfResult full = scf::run_scf(mol, bs, builder, full_opt);

  scf::ScfOptions inc_opt;  // incremental on by default
  // --profile additionally streams the full metrics/trace files for the
  // incremental run (the interesting one).
  inc_opt.profile_path = bench::profile_arg(argc, argv);
  const scf::ScfResult inc = scf::run_scf(mol, bs, builder, inc_opt);

  bench::report_scf_history("full", full);
  bench::report_scf_history("incremental", inc);

  const auto& first = inc.history.front();
  const auto& last = inc.history.back();
  const double de = std::abs(inc.energy - full.energy);
  std::size_t delta_builds = 0, total_screened = 0;
  double inc_fock_s = 0.0;
  for (const auto& it : inc.history) {
    delta_builds += !it.full_rebuild;
    total_screened += it.density_screened;
  }
  inc_fock_s = inc.fock_build_seconds;

  std::printf("\nconverged: full=%d (%d iters)  incremental=%d (%d iters)\n",
              full.converged, full.iterations, inc.converged,
              inc.iterations);
  std::printf("E(full)        = %.12f\n", full.energy);
  std::printf("E(incremental) = %.12f   |dE| = %.3e\n", inc.energy, de);
  std::printf("fock seconds: full=%.3f incremental=%.3f\n",
              full.fock_build_seconds, inc_fock_s);
  std::printf("quartets: iter1=%zu final=%zu (%.1f%% of iter1), "
              "screened total=%zu, delta builds=%zu\n",
              first.quartets_computed, last.quartets_computed,
              100.0 * static_cast<double>(last.quartets_computed) /
                  static_cast<double>(first.quartets_computed),
              total_screened, delta_builds);

  bool pass = true;
  auto check = [&](const char* what, bool ok) {
    std::printf("shape check: %s: %s\n", what, ok ? "PASS" : "FAIL");
    pass = pass && ok;
  };
  check("both runs converged", full.converged && inc.converged);
  check("incremental run used delta builds", delta_builds > 0);
  check("final iteration computes strictly fewer quartets than iteration 1",
        last.quartets_computed < first.quartets_computed);
  check("density-weighted screening killed quartets", total_screened > 0);
  check("energies match within the SCF energy tolerance",
        de < inc_opt.energy_tolerance);
  return pass ? 0 : 1;
}
