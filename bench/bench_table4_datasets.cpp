// Regenerates Table 4 of the paper's artifact appendix: the benchmark
// dataset characteristics (atoms, GAMESS-convention shells, basis
// functions), produced by the actual graphene-bilayer generator and the
// built-in 6-31G(d) tables. These must match the paper exactly.

#include "harness_common.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;

int main() {
  bench::banner("Table 4 (artifact appendix)", "dataset characteristics");
  Table t = knlsim::table4_dataset_characteristics();
  bench::print_table(t);

  // Paper values, verbatim.
  struct Row {
    const char* name;
    std::size_t atoms, shells, bfs;
  };
  const Row paper[] = {{"0.5nm", 44, 176, 660},
                       {"1.0nm", 120, 480, 1800},
                       {"1.5nm", 220, 880, 3300},
                       {"2.0nm", 356, 1424, 5340},
                       {"5.0nm", 2016, 8064, 30240}};
  bool ok = true;
  const std::string s = t.to_string();
  for (const Row& r : paper) {
    const std::string needle = std::to_string(r.bfs);
    if (s.find(needle) == std::string::npos) ok = false;
  }
  std::printf("\nshape check: %s (all five rows match the paper exactly)\n",
              ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
