// Regenerates Figure 7: shared-Fock scaling of the 5.0 nm dataset
// (30,240 basis functions) up to 3,000 KNL nodes. Shape criteria (paper
// sections 6.2 and 5.3):
//  * only the shared-Fock code can run this dataset at all -- the
//    MPI-only and private-Fock footprints do not fit a 192 GB node,
//  * the code keeps scaling to 3,000 nodes (192,000 cores) with good
//    efficiency.

#include "harness_common.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;
using core::ScfAlgorithm;

int main() {
  bench::banner("Figure 7", "shared Fock at scale, 5.0 nm, up to 3000 nodes");
  bench::note("building the 30,240-BF screened workload (takes a few s)...");
  knlsim::ExperimentContext ctx{knlsim::ThetaMachine{}};
  bench::print_table(knlsim::figure7_large_scale(ctx));

  knlsim::Simulator sim(ctx.workload("5.0nm"), ctx.machine(),
                        ctx.calibration());
  auto run = [&](ScfAlgorithm alg, int nodes) {
    knlsim::SimConfig cfg;
    cfg.algorithm = alg;
    cfg.nodes = nodes;
    if (alg == ScfAlgorithm::kPrivateFock) cfg.threads_per_rank = 64;
    return sim.run(cfg);
  };
  bench::banner("Figure 8 (extension)",
                "dist-fock window footprint at scale, 5.0 nm");
  bench::note(
      "one rank per tile of D/F: per-rank windows shrink as N^2/ranks, so "
      "the dataset the replicated codes cannot hold fits MCDRAM at scale");
  bench::print_table(knlsim::figure8_dist_fock_projection(ctx));

  const auto prf = run(ScfAlgorithm::kPrivateFock, 1000);
  const auto mpi = run(ScfAlgorithm::kMpiOnly, 1000);
  const auto s256 = run(ScfAlgorithm::kSharedFock, 256);
  const auto s3000 = run(ScfAlgorithm::kSharedFock, 3000);
  const double eff = s3000.efficiency_vs(s256, 256, 3000);

  const bool only_shared =
      !prf.feasible && (!mpi.feasible || mpi.ranks_per_node < 16);
  const bool scales = eff > 60.0;
  std::printf("\nshape check: 5.0 nm runs only with shared Fock: %s\n",
              only_shared ? "PASS" : "FAIL");
  std::printf("shape check: >60%% efficiency at 3000 nodes "
              "(model: %.0f%%): %s\n",
              eff, scales ? "PASS" : "FAIL");
  return (only_shared && scales) ? 0 : 1;
}
