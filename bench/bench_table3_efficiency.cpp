// Regenerates Table 3: time-to-solution and parallel efficiency of the
// three algorithms on the 2.0 nm dataset (same sweep as Figure 6), with
// the paper's published values printed alongside for direct comparison.

#include "harness_common.hpp"
#include "knlsim/experiments.hpp"
#include "knlsim/simulator.hpp"

using namespace mc;
using core::ScfAlgorithm;

int main() {
  bench::banner("Table 3", "time and parallel efficiency, 2.0 nm");
  knlsim::ExperimentContext ctx{knlsim::ThetaMachine{}};
  bench::print_table(knlsim::figure6_table3_multinode(ctx));

  std::printf("\npaper's Table 3 for reference:\n");
  Table paper({"# Nodes", "MPI (s)", "Pr.F. (s)", "Sh.F. (s)", "MPI eff (%)",
               "Pr.F. eff (%)", "Sh.F. eff (%)"});
  paper.add_row({"4", "2661", "1128", "1318", "100", "100", "100"});
  paper.add_row({"16", "685", "288", "332", "97", "98", "99"});
  paper.add_row({"64", "195", "78", "85", "85", "90", "97"});
  paper.add_row({"128", "118", "49", "43", "70", "72", "96"});
  paper.add_row({"256", "85", "44", "23", "49", "40", "90"});
  paper.add_row({"512", "82", "44", "13", "25", "20", "79"});
  bench::print_table(paper);

  // Quantitative shape checks against the paper's efficiency ordering.
  knlsim::Simulator sim(ctx.workload("2.0nm"), ctx.machine(),
                        ctx.calibration());
  auto eff512 = [&](ScfAlgorithm alg) {
    knlsim::SimConfig base;
    base.algorithm = alg;
    base.nodes = 4;
    knlsim::SimConfig big = base;
    big.nodes = 512;
    const auto rb = sim.run(base);
    const auto r = sim.run(big);
    return r.efficiency_vs(rb, 4, 512);
  };
  const double e_mpi = eff512(ScfAlgorithm::kMpiOnly);
  const double e_prf = eff512(ScfAlgorithm::kPrivateFock);
  const double e_shf = eff512(ScfAlgorithm::kSharedFock);
  std::printf("\n512-node efficiency, model vs paper: MPI %.0f%% (25%%), "
              "Pr.F. %.0f%% (20%%), Sh.F. %.0f%% (79%%)\n",
              e_mpi, e_prf, e_shf);
  const bool ordering = e_shf > e_mpi && e_shf > e_prf && e_shf > 70.0 &&
                        e_prf < 45.0;
  std::printf("shape check: efficiency ordering Sh.F. >> MPI, Pr.F.: %s\n",
              ordering ? "PASS" : "FAIL");
  return ordering ? 0 : 1;
}
