// Ablations of the design choices the paper discusses in section 4.3:
//  * lazy vs eager FI-buffer flushing (Algorithm 3's key optimization),
//  * padding of the per-thread buffer columns (false-sharing defense),
//  * dynamic vs static OpenMP schedule (the paper saw "no significant
//    difference" for the private-Fock collapsed loop).
// Real execution on this host; the shared-Fock variants run 1 rank with a
// small team, which is where flush frequency matters most.

#include <benchmark/benchmark.h>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "core/fock_private.hpp"
#include "core/fock_shared.hpp"
#include "ints/one_electron.hpp"
#include "la/orthogonalizer.hpp"
#include "par/ddi.hpp"
#include "par/runtime.hpp"
#include "scf/scf_driver.hpp"

namespace {

struct Setup {
  mc::chem::Molecule mol = mc::chem::builders::benzene();
  mc::basis::BasisSet bs = mc::basis::BasisSet::build(mol, "STO-3G");
  mc::ints::EriEngine eri{bs};
  mc::ints::Screening screen{eri, 1e-10};
  mc::la::Matrix d;

  Setup() {
    mc::la::Matrix h = mc::ints::core_hamiltonian(bs, mol);
    mc::la::Matrix s = mc::ints::overlap_matrix(bs);
    mc::la::Matrix x = mc::la::canonical_orthogonalizer(s);
    d = mc::scf::core_guess_density(h, x, mol.nelectrons() / 2);
  }
  static Setup& instance() {
    static Setup s;
    return s;
  }
};

void run_shared(const mc::core::SharedFockOptions& opt, std::size_t* flushes) {
  Setup& s = Setup::instance();
  mc::par::run_spmd(1, [&](mc::par::Comm& comm) {
    mc::par::Ddi ddi(comm);
    mc::core::FockBuilderShared builder(s.eri, s.screen, ddi, opt);
    mc::la::Matrix g(s.bs.nbf(), s.bs.nbf());
    builder.build(s.d, g);
    if (flushes != nullptr) *flushes = builder.last_fi_flushes();
    benchmark::DoNotOptimize(g.data());
  });
}

void BM_SharedFock_LazyFiFlush(benchmark::State& state) {
  mc::core::SharedFockOptions opt;
  opt.nthreads = 2;
  opt.lazy_fi_flush = state.range(0) != 0;
  std::size_t flushes = 0;
  for (auto _ : state) run_shared(opt, &flushes);
  state.SetLabel(opt.lazy_fi_flush ? "lazy (paper)" : "eager (ablated)");
  state.counters["fi_flushes"] = static_cast<double>(flushes);
}
BENCHMARK(BM_SharedFock_LazyFiFlush)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);

void BM_SharedFock_Padding(benchmark::State& state) {
  mc::core::SharedFockOptions opt;
  opt.nthreads = 2;
  opt.padding_doubles = static_cast<int>(state.range(0));
  for (auto _ : state) run_shared(opt, nullptr);
  state.SetLabel(opt.padding_doubles ? "padded (paper)" : "no padding");
}
BENCHMARK(BM_SharedFock_Padding)->Arg(8)->Arg(0)->Unit(
    benchmark::kMillisecond);

void BM_SharedFock_Schedule(benchmark::State& state) {
  mc::core::SharedFockOptions opt;
  opt.nthreads = 2;
  opt.dynamic_schedule = state.range(0) != 0;
  for (auto _ : state) run_shared(opt, nullptr);
  state.SetLabel(opt.dynamic_schedule ? "dynamic,1 (paper)" : "static");
}
BENCHMARK(BM_SharedFock_Schedule)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);

void BM_PrivateFock_Schedule(benchmark::State& state) {
  Setup& s = Setup::instance();
  mc::core::PrivateFockOptions opt;
  opt.nthreads = 2;
  opt.dynamic_schedule = state.range(0) != 0;
  for (auto _ : state) {
    mc::par::run_spmd(1, [&](mc::par::Comm& comm) {
      mc::par::Ddi ddi(comm);
      mc::core::FockBuilderPrivate builder(s.eri, s.screen, ddi, opt);
      mc::la::Matrix g(s.bs.nbf(), s.bs.nbf());
      builder.build(s.d, g);
      benchmark::DoNotOptimize(g.data());
    });
  }
  state.SetLabel(opt.dynamic_schedule ? "dynamic,1 (paper)" : "static");
}
BENCHMARK(BM_PrivateFock_Schedule)->Arg(1)->Arg(0)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
