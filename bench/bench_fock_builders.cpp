// Real-execution comparison of the three Fock-build algorithms (paper
// Algorithms 1-3) on this host: one SPMD job per measurement, benzene
// STO-3G density. On this single-core machine the absolute numbers only
// show overhead structure (the paper's scaling claims are reproduced by
// the knlsim harnesses), but the builders are executing the genuine
// parallel code paths: DLB counter, OpenMP teams, FI/FJ buffers, gsumf.

#include <benchmark/benchmark.h>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "core/fock_dist.hpp"
#include "core/fock_mpi.hpp"
#include "core/fock_private.hpp"
#include "core/fock_shared.hpp"
#include "ints/one_electron.hpp"
#include "la/orthogonalizer.hpp"
#include "par/ddi.hpp"
#include "par/runtime.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"

namespace {

struct Setup {
  mc::chem::Molecule mol = mc::chem::builders::benzene();
  mc::basis::BasisSet bs = mc::basis::BasisSet::build(mol, "STO-3G");
  mc::ints::EriEngine eri{bs};
  mc::ints::Screening screen{eri, 1e-10};
  mc::la::Matrix d;

  Setup() {
    mc::la::Matrix h = mc::ints::core_hamiltonian(bs, mol);
    mc::la::Matrix s = mc::ints::overlap_matrix(bs);
    mc::la::Matrix x = mc::la::canonical_orthogonalizer(s);
    d = mc::scf::core_guess_density(h, x, mol.nelectrons() / 2);
  }
  static Setup& instance() {
    static Setup s;
    return s;
  }
};

void BM_SerialBuild(benchmark::State& state) {
  Setup& s = Setup::instance();
  mc::scf::SerialFockBuilder builder(s.eri, s.screen);
  mc::la::Matrix g(s.bs.nbf(), s.bs.nbf());
  for (auto _ : state) {
    g.set_zero();
    builder.build(s.d, g);
    benchmark::DoNotOptimize(g.data());
  }
  state.counters["quartets"] =
      static_cast<double>(builder.last_quartets_computed());
}
BENCHMARK(BM_SerialBuild)->Unit(benchmark::kMillisecond);

template <typename MakeBuilder>
void run_spmd_build(int nranks, MakeBuilder&& make) {
  Setup& s = Setup::instance();
  mc::par::run_spmd(nranks, [&](mc::par::Comm& comm) {
    mc::par::Ddi ddi(comm);
    auto builder = make(ddi);
    mc::la::Matrix g(s.bs.nbf(), s.bs.nbf());
    builder->build(s.d, g);
    benchmark::DoNotOptimize(g.data());
  });
}

void BM_MpiOnlyBuild(benchmark::State& state) {
  Setup& s = Setup::instance();
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run_spmd_build(nranks, [&](mc::par::Ddi& ddi) {
      return std::make_unique<mc::core::FockBuilderMpi>(s.eri, s.screen,
                                                        ddi);
    });
  }
}
BENCHMARK(BM_MpiOnlyBuild)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_PrivateFockBuild(benchmark::State& state) {
  Setup& s = Setup::instance();
  const int nranks = static_cast<int>(state.range(0));
  const int nthreads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    run_spmd_build(nranks, [&](mc::par::Ddi& ddi) {
      mc::core::PrivateFockOptions opt;
      opt.nthreads = nthreads;
      return std::make_unique<mc::core::FockBuilderPrivate>(s.eri, s.screen,
                                                            ddi, opt);
    });
  }
}
BENCHMARK(BM_PrivateFockBuild)
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_SharedFockBuild(benchmark::State& state) {
  Setup& s = Setup::instance();
  const int nranks = static_cast<int>(state.range(0));
  const int nthreads = static_cast<int>(state.range(1));
  for (auto _ : state) {
    run_spmd_build(nranks, [&](mc::par::Ddi& ddi) {
      mc::core::SharedFockOptions opt;
      opt.nthreads = nthreads;
      return std::make_unique<mc::core::FockBuilderShared>(s.eri, s.screen,
                                                           ddi, opt);
    });
  }
}
BENCHMARK(BM_SharedFockBuild)
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

// The block-distributed builder trades the replicated D/F for window
// traffic (put/get/acc + tile cache); the perf gate holds it to within 20%
// of the replicated MPI-only build at 4 ranks, the overhead budget the
// memory ceiling is bought with.
void BM_DistFockBuild(benchmark::State& state) {
  Setup& s = Setup::instance();
  const int nranks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    run_spmd_build(nranks, [&](mc::par::Ddi& ddi) {
      return std::make_unique<mc::core::FockBuilderDist>(s.eri, s.screen,
                                                         ddi);
    });
  }
}
BENCHMARK(BM_DistFockBuild)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
