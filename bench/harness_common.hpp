#pragma once
// Shared boilerplate for the table/figure harness binaries: a banner that
// names the paper artifact being regenerated, and the paper's published
// values where they exist, so the shape comparison is visible in the
// output itself (EXPERIMENTS.md records the same pairs).

#include <cstdio>
#include <string>

#include "common/table.hpp"

namespace mc::bench {

inline void banner(const std::string& artifact, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s -- %s\n", artifact.c_str(), what.c_str());
  std::printf("Mironov et al., SC'17 (MPI/OpenMP Hartree-Fock on Xeon Phi)\n");
#ifdef MC_SANITIZE_NAME
  std::printf("WARNING: built with MC_SANITIZE=%s -- timings are meaningless"
              " (sanitizer overhead); use for correctness only\n",
              MC_SANITIZE_NAME);
#endif
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("NOTE: %s\n", text.c_str());
}

inline void print_table(const Table& t) {
  std::printf("%s", t.to_string().c_str());
  std::fflush(stdout);
}

}  // namespace mc::bench
