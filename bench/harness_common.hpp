#pragma once
// Shared boilerplate for the table/figure harness binaries: a banner that
// names the paper artifact being regenerated, and the paper's published
// values where they exist, so the shape comparison is visible in the
// output itself (EXPERIMENTS.md records the same pairs).

#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.hpp"
#include "scf/scf_driver.hpp"

namespace mc::bench {

inline void banner(const std::string& artifact, const std::string& what) {
  std::printf("================================================================\n");
  std::printf("%s -- %s\n", artifact.c_str(), what.c_str());
  std::printf("Mironov et al., SC'17 (MPI/OpenMP Hartree-Fock on Xeon Phi)\n");
#ifdef MC_SANITIZE_NAME
  std::printf("WARNING: built with MC_SANITIZE=%s -- timings are meaningless"
              " (sanitizer overhead); use for correctness only\n",
              MC_SANITIZE_NAME);
#endif
  std::printf("================================================================\n");
}

inline void note(const std::string& text) {
  std::printf("NOTE: %s\n", text.c_str());
}

inline void print_table(const Table& t) {
  std::printf("%s", t.to_string().c_str());
  std::fflush(stdout);
}

/// One JSON line per SCF iteration, tagged with a harness-chosen mode
/// string -- the same per-iteration counters the --profile metrics stream
/// carries (DESIGN.md section 10.2), for harnesses that post-process their
/// own stdout instead of a metrics file.
inline void report_scf_history(const std::string& mode,
                               const scf::ScfResult& res) {
  for (const auto& it : res.history) {
    std::printf(
        "{\"mode\":\"%s\",\"iter\":%d,\"quartets\":%zu,"
        "\"density_screened\":%zu,\"full_rebuild\":%s,"
        "\"fock_seconds\":%.6f,\"energy\":%.12f}\n",
        mode.c_str(), it.iteration, it.quartets_computed,
        it.density_screened, it.full_rebuild ? "true" : "false",
        it.fock_build_seconds, it.energy);
  }
}

/// Value of a `--profile PATH` argument, or "" when absent: every harness
/// binary accepts the same flag the mchf driver has, wiring it into
/// ScfOptions::profile_path.
inline std::string profile_arg(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--profile") == 0) return argv[i + 1];
  }
  return {};
}

}  // namespace mc::bench
