// bench_serve -- serving-lane throughput harness (DESIGN.md section 15.5):
// measures what the warm caches and the world pool buy on a repeat-heavy
// workload, the serving analogue of the paper's per-iteration tables.
//
// Three configurations over the same job list (a round-robin of built-in
// molecules, submitted `repeats` times):
//   cold        1 world, caches disabled  -- the sequential baseline
//   warm        1 world, caches enabled   -- isolates the cache effect
//   warm-pool   N worlds, caches enabled  -- adds concurrency
//
// Reported per configuration: wall seconds, jobs/s, mean SCF iterations
// per job, cache hit counts. Usage:
//   bench_serve [--worlds N] [--ranks R] [--jobs N] [--repeats N]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "chem/builders.hpp"
#include "common/timer.hpp"
#include "serve/server.hpp"

using namespace mc;

namespace {

struct Config {
  const char* name;
  int worlds;
  bool warm;
};

struct RunStats {
  double wall_seconds = 0.0;
  double jobs_per_second = 0.0;
  double mean_iterations = 0.0;
  long setup_hits = 0;
  long density_hits = 0;
};

RunStats run_config(const Config& c, int ranks, int jobs, int repeats) {
  serve::ServerOptions opt;
  opt.nworlds = c.worlds;
  opt.max_queue_depth = static_cast<std::size_t>(jobs * repeats + 1);
  opt.warm_start = c.warm;
  opt.setup_cache_capacity = c.warm ? 16 : 0;
  opt.density_cache_capacity = c.warm ? 32 : 0;
  serve::ScfJobServer server(opt);

  std::vector<chem::Molecule> pool = {
      chem::builders::water(), chem::builders::methane(),
      chem::builders::h2()};
  const char* labels[] = {"water", "methane", "h2"};

  WallTimer timer;
  std::vector<long> ids;
  for (int rep = 0; rep < repeats; ++rep) {
    for (int j = 0; j < jobs; ++j) {
      serve::JobSpec spec;
      spec.molecule_label = labels[static_cast<std::size_t>(j) % pool.size()];
      spec.mol = pool[static_cast<std::size_t>(j) % pool.size()];
      spec.nranks = ranks;
      const serve::SubmitResult r = server.submit(spec);
      if (r.accepted) ids.push_back(r.job_id);
    }
  }
  long iterations = 0;
  for (const long id : ids) iterations += server.wait(id).iterations;
  const double wall = timer.seconds();
  const serve::ServerSummary s = server.shutdown();

  RunStats stats;
  stats.wall_seconds = wall;
  stats.jobs_per_second = ids.empty() ? 0.0 : static_cast<double>(ids.size()) / wall;
  stats.mean_iterations =
      ids.empty() ? 0.0
                  : static_cast<double>(iterations) /
                        static_cast<double>(ids.size());
  stats.setup_hits = s.setup_cache_hits;
  stats.density_hits = s.density_cache_hits;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  int worlds = 4;
  int ranks = 1;
  int jobs = 6;
  int repeats = 3;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string flag = argv[i];
    const int v = std::atoi(argv[i + 1]);
    if (flag == "--worlds") worlds = v;
    else if (flag == "--ranks") ranks = v;
    else if (flag == "--jobs") jobs = v;
    else if (flag == "--repeats") repeats = v;
  }

  const Config configs[] = {
      {"cold", 1, false},
      {"warm", 1, true},
      {"warm-pool", worlds, true},
  };

  std::printf("bench_serve: %d jobs x %d repeats, %d ranks/job\n\n", jobs,
              repeats, ranks);
  std::printf("%-10s %10s %10s %12s %11s %13s\n", "config", "wall(s)",
              "jobs/s", "mean iters", "setup hits", "density hits");
  double cold_wall = 0.0;
  for (const Config& c : configs) {
    const RunStats s = run_config(c, ranks, jobs, repeats);
    if (std::string(c.name) == "cold") cold_wall = s.wall_seconds;
    std::printf("%-10s %10.3f %10.2f %12.2f %11ld %13ld", c.name,
                s.wall_seconds, s.jobs_per_second, s.mean_iterations,
                s.setup_hits, s.density_hits);
    if (cold_wall > 0.0 && std::string(c.name) != "cold") {
      std::printf("   (%.2fx vs cold)", cold_wall / s.wall_seconds);
    }
    std::printf("\n");
  }
  return 0;
}
