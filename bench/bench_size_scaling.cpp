// System-size scaling of the screened Fock-build work across the paper's
// five datasets: the paper's introduction quotes O(N^4) for the raw
// two-electron work; with Schwarz screening on an extended 2-D system the
// effective exponent drops toward ~O(N^2) asymptotically. This harness
// measures the effective exponent from the real workload model and checks
// the expected screening behaviour.

#include <cmath>

#include "harness_common.hpp"
#include "chem/builders.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;

int main() {
  bench::banner("Size scaling", "screened work vs basis size, all datasets");
  knlsim::ExperimentContext ctx{knlsim::ThetaMachine{}};

  Table t({"dataset", "NBF", "surviving pairs", "pair fraction",
           "quartets (est.)", "host-core work (s)"});
  std::vector<double> nbf_log, work_log, quartets_log;
  for (const std::string& name : chem::builders::paper_dataset_names()) {
    const auto& wl = ctx.workload(name);
    const double frac = static_cast<double>(wl.npairs_surviving()) /
                        static_cast<double>(wl.npairs_total());
    t.add_row({name, std::to_string(wl.nbf()),
               std::to_string(wl.npairs_surviving()), fmt_double(frac, 4),
               fmt_double(wl.quartets_estimate(), 0),
               fmt_double(wl.total_host_seconds(), 0)});
    nbf_log.push_back(std::log(static_cast<double>(wl.nbf())));
    work_log.push_back(std::log(wl.total_host_seconds()));
    quartets_log.push_back(std::log(wl.quartets_estimate()));
  }
  bench::print_table(t);

  // Least-squares slope of log(work) vs log(N): the effective exponent.
  auto slope = [](const std::vector<double>& x, const std::vector<double>& y) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = static_cast<double>(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      sx += x[i];
      sy += y[i];
      sxx += x[i] * x[i];
      sxy += x[i] * y[i];
    }
    return (n * sxy - sx * sy) / (n * sxx - sx * sx);
  };
  const double work_exp = slope(nbf_log, work_log);
  const double quartet_exp = slope(nbf_log, quartets_log);
  std::printf("\neffective exponents over 660 <= N <= 30240:\n");
  std::printf("  quartets ~ N^%.2f   work ~ N^%.2f   (unscreened: N^4)\n",
              quartet_exp, work_exp);
  const bool screened = work_exp < 3.2 && work_exp > 1.5;
  std::printf("shape check: screening brings the effective exponent well "
              "below 4: %s\n",
              screened ? "PASS" : "FAIL");
  return screened ? 0 : 1;
}
