// Regenerates Figure 4: single-node scalability of the three codes with
// respect to hardware threads (1.0 nm dataset). Shape criteria (paper
// section 6.1):
//  * the MPI-only code cannot use more than 128 hardware threads (memory),
//  * both hybrid codes reach all 256 hardware threads,
//  * private Fock gives the best single-node time at every thread count,
//  * shared Fock tracks it closely (synchronization overhead gap).

#include "harness_common.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;

int main() {
  bench::banner("Figure 4", "single-node thread scaling, 1.0 nm");
  knlsim::ExperimentContext ctx{knlsim::ThetaMachine{}};
  Table t = knlsim::figure4_single_node(ctx);
  bench::print_table(t);

  knlsim::Simulator sim(ctx.workload("1.0nm"), ctx.machine(),
                        ctx.calibration());
  auto hybrid = [&](core::ScfAlgorithm alg, int hw) {
    knlsim::SimConfig cfg;
    cfg.algorithm = alg;
    cfg.ranks_per_node = 4;
    cfg.threads_per_rank = hw / 4;
    return sim.run(cfg);
  };
  knlsim::SimConfig mpi256;
  mpi256.algorithm = core::ScfAlgorithm::kMpiOnly;
  mpi256.ranks_per_node = 256;
  const auto rm = sim.run(mpi256);
  const bool mpi_capped = rm.ranks_per_node <= 128;

  bool private_best = true;
  bool shared_close = true;
  for (int hw : {16, 64, 256}) {
    const auto rp = hybrid(core::ScfAlgorithm::kPrivateFock, hw);
    const auto rs = hybrid(core::ScfAlgorithm::kSharedFock, hw);
    private_best = private_best && rp.seconds <= rs.seconds * 1.001;
    shared_close = shared_close && rs.seconds <= rp.seconds * 1.35;
  }
  std::printf("\nshape check: MPI-only memory-capped at <=128 HW threads: %s\n",
              mpi_capped ? "PASS" : "FAIL");
  std::printf("shape check: private Fock best single-node time: %s\n",
              private_best ? "PASS" : "FAIL");
  std::printf("shape check: shared Fock within 35%% of private: %s\n",
              shared_close ? "PASS" : "FAIL");
  return (mpi_capped && private_best && shared_close) ? 0 : 1;
}
