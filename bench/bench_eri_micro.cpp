// ERI engine microbenchmark: per-quartet cost by angular class on carbon
// 6-31G(d) shell pairs at the graphene bond length. This is the
// measurement that populates knlsim::EriCostTable::host_default() -- rerun
// it and update the table when the host or compiler changes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "basis/basis_set.hpp"
#include "chem/molecule.hpp"
#include "ints/eri.hpp"
#include "ints/eri_batch.hpp"

namespace {

struct Setup {
  mc::chem::Molecule mol;
  mc::basis::BasisSet bs;
  mc::ints::EriEngine eri;

  Setup() : mol(make_mol()), bs(mc::basis::BasisSet::build(mol, "6-31G(d)")),
            eri(bs) {}

  static mc::chem::Molecule make_mol() {
    mc::chem::Molecule m;
    m.add_atom(6, 0.0, 0.0, 0.0);
    m.add_atom(6, 0.0, 0.0, 2.68);  // C-C bond, Bohr
    return m;
  }

  static Setup& instance() {
    static Setup s;
    return s;
  }
};

// Carbon 6-31G(d) expanded shell order per atom: s6, s3, p3, s1, p1, d1.
// Representative pair per angular class (Lsum): indices on atoms 0 / 1.
struct PairRep {
  int a, b;
  const char* name;
};
constexpr PairRep kReps[5] = {
    {0, 6, "ss"}, {1, 8, "sp"}, {2, 8, "pp"}, {2, 11, "pd"}, {5, 11, "dd"}};

void BM_EriQuartet(benchmark::State& state) {
  Setup& s = Setup::instance();
  const PairRep bra = kReps[state.range(0)];
  const PairRep ket = kReps[state.range(1)];
  std::vector<double> buf(
      s.eri.batch_size(bra.a, bra.b, ket.a, ket.b), 0.0);
  for (auto _ : state) {
    s.eri.compute(bra.a, bra.b, ket.a, ket.b, buf.data());
    benchmark::DoNotOptimize(buf.data());
  }
  const double units =
      static_cast<double>(s.bs.shell(bra.a).nprim()) *
      s.bs.shell(bra.b).nprim() * s.bs.shell(ket.a).nprim() *
      s.bs.shell(ket.b).nprim();
  state.SetLabel(std::string(bra.name) + "|" + ket.name);
  state.counters["s_per_unit"] = benchmark::Counter(
      units, benchmark::Counter::kIsIterationInvariantRate |
                 benchmark::Counter::kInvert);
}

// Batched pipeline over a full QuartetBatch of one class: measures the
// per-quartet cost including class grouping, the single boys_batch sweep,
// and the shared kernel -- the apples-to-apples counterpart of
// BM_EriQuartet for the same (bra, ket) class.
void BM_EriQuartetBatched(benchmark::State& state) {
  Setup& s = Setup::instance();
  const PairRep bra = kReps[state.range(0)];
  const PairRep ket = kReps[state.range(1)];
  mc::ints::QuartetBatch batch(s.eri);
  for (auto _ : state) {
    for (std::size_t q = 0; q < batch.capacity(); ++q) {
      batch.add(bra.a, bra.b, ket.a, ket.b);
    }
    batch.evaluate();
    benchmark::DoNotOptimize(batch.result(0));
    batch.clear();
  }
  state.SetLabel(std::string(bra.name) + "|" + ket.name);
  // Per-quartet time: one iteration evaluates `capacity` quartets.
  state.counters["s_per_quartet"] = benchmark::Counter(
      static_cast<double>(batch.capacity()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

// A mixed-class fill (every class pairing in one batch): measures the
// grouping overhead the homogeneous benchmarks cannot see.
void BM_EriBatchMixedClasses(benchmark::State& state) {
  Setup& s = Setup::instance();
  mc::ints::QuartetBatch batch(s.eri);
  for (auto _ : state) {
    std::size_t q = 0;
    while (q < batch.capacity()) {
      for (int b = 0; b < 5 && q < batch.capacity(); ++b) {
        for (int k = 0; k < 5 && q < batch.capacity(); ++k, ++q) {
          batch.add(kReps[b].a, kReps[b].b, kReps[k].a, kReps[k].b);
        }
      }
    }
    batch.evaluate();
    benchmark::DoNotOptimize(batch.result(0));
    batch.clear();
  }
  state.counters["s_per_quartet"] = benchmark::Counter(
      static_cast<double>(batch.capacity()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}

void RegisterAll() {
  for (int b = 0; b < 5; ++b) {
    for (int k = 0; k < 5; ++k) {
      benchmark::RegisterBenchmark("BM_EriQuartet", BM_EriQuartet)
          ->Args({b, k})
          ->Unit(benchmark::kMicrosecond);
    }
  }
  for (int b = 0; b < 5; ++b) {
    for (int k = 0; k < 5; ++k) {
      benchmark::RegisterBenchmark("BM_EriQuartetBatched",
                                   BM_EriQuartetBatched)
          ->Args({b, k})
          ->Unit(benchmark::kMicrosecond);
    }
  }
  benchmark::RegisterBenchmark("BM_EriBatchMixedClasses",
                               BM_EriBatchMixedClasses)
      ->Unit(benchmark::kMicrosecond);
}

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "ERI per-class microbenchmark (feeds knlsim::EriCostTable).\n"
      "s_per_unit = seconds per primitive-pair product; copy into\n"
      "EriCostTable::host_default() after toolchain changes.\n\n");
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
