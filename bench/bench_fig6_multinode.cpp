// Regenerates Figure 6: multi-node scaling of the three codes on the
// 2.0 nm dataset, 4 to 512 nodes (the same data tabulated in Table 3 --
// bench_table3_efficiency prints the efficiency view with the paper's
// published numbers side by side). Shape criteria (paper section 6.2):
//  * all three codes scale well to ~64 nodes,
//  * the MPI-only and private-Fock curves flatten beyond ~128 nodes,
//  * shared Fock keeps scaling and is several times faster than MPI-only
//    at 512 nodes (paper: ~6x).

#include "harness_common.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;
using core::ScfAlgorithm;

int main() {
  bench::banner("Figure 6", "multi-node scaling, 2.0 nm, 4-512 nodes");
  knlsim::ExperimentContext ctx{knlsim::ThetaMachine{}};
  bench::print_table(knlsim::figure6_table3_multinode(ctx));

  knlsim::Simulator sim(ctx.workload("2.0nm"), ctx.machine(),
                        ctx.calibration());
  auto at = [&](ScfAlgorithm alg, int nodes) {
    knlsim::SimConfig cfg;
    cfg.algorithm = alg;
    cfg.nodes = nodes;
    return sim.run(cfg).seconds;
  };
  const double mpi512 = at(ScfAlgorithm::kMpiOnly, 512);
  const double prf512 = at(ScfAlgorithm::kPrivateFock, 512);
  const double shf512 = at(ScfAlgorithm::kSharedFock, 512);
  const double shf256 = at(ScfAlgorithm::kSharedFock, 256);
  const double prf256 = at(ScfAlgorithm::kPrivateFock, 256);

  const bool shared_wins_big = shf512 * 2.5 < mpi512 && shf512 * 2.5 < prf512;
  const bool private_plateaus = prf512 > prf256 * 0.75;  // barely improves
  const bool shared_keeps_scaling = shf512 < shf256 * 0.65;
  std::printf("\nmodel vs paper at 512 nodes: MPI %.0fs (paper 82), "
              "Pr.F. %.0fs (paper 44), Sh.F. %.0fs (paper 13)\n",
              mpi512, prf512, shf512);
  std::printf("shape check: shared Fock >2.5x faster than both at 512: %s\n",
              shared_wins_big ? "PASS" : "FAIL");
  std::printf("shape check: private Fock plateaus beyond 256 nodes: %s\n",
              private_plateaus ? "PASS" : "FAIL");
  std::printf("shape check: shared Fock still scaling 256->512: %s\n",
              shared_keeps_scaling ? "PASS" : "FAIL");
  return (shared_wins_big && private_plateaus && shared_keeps_scaling) ? 0
                                                                       : 1;
}
