// Regenerates Figure 3: shared-Fock time on one KNL node (1.0 nm dataset,
// 4 MPI ranks, quad-cache) as a function of threads per rank, for the four
// KMP_AFFINITY policies. Shape criteria (paper section 6.1):
//  * compact is the worst placement until the node saturates,
//  * scatter/balanced are best and nearly identical,
//  * all policies converge at 64 threads/rank (256 hardware threads).

#include "harness_common.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;

int main() {
  bench::banner("Figure 3", "thread-affinity sweep, shared Fock, 1.0 nm");
  knlsim::ExperimentContext ctx{knlsim::ThetaMachine{}};
  Table t = knlsim::figure3_affinity(ctx);
  bench::print_table(t);

  // Shape checks on the simulated series.
  knlsim::Simulator sim(ctx.workload("1.0nm"), ctx.machine(),
                        ctx.calibration());
  auto at = [&](knlsim::Affinity aff, int threads) {
    knlsim::SimConfig cfg;
    cfg.algorithm = core::ScfAlgorithm::kSharedFock;
    cfg.ranks_per_node = 4;
    cfg.threads_per_rank = threads;
    cfg.affinity = aff;
    return sim.run(cfg).seconds;
  };
  const bool compact_worst_early =
      at(knlsim::Affinity::kCompact, 8) > at(knlsim::Affinity::kScatter, 8) &&
      at(knlsim::Affinity::kCompact, 8) > at(knlsim::Affinity::kNone, 8);
  const double conv = at(knlsim::Affinity::kCompact, 64) /
                      at(knlsim::Affinity::kScatter, 64);
  const bool converge_at_saturation = conv > 0.95 && conv < 1.05;
  std::printf("\nshape check: compact worst at low thread counts: %s\n",
              compact_worst_early ? "PASS" : "FAIL");
  std::printf("shape check: policies converge at full saturation: %s\n",
              converge_at_saturation ? "PASS" : "FAIL");
  return (compact_worst_early && converge_at_saturation) ? 0 : 1;
}
