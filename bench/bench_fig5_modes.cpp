// Regenerates Figure 5: single-node time of the three codes under every
// cluster mode x memory mode combination, for the 0.5 nm (small) and
// 2.0 nm (large) datasets. Shape criteria (paper section 6.1):
//  * private Fock is best in every mode, for both sizes,
//  * shared Fock beats MPI-only except in all-to-all mode on the small
//    dataset, where the shared-write coherence tax lets MPI-only win,
//  * quadrant-cache ("quad-cache") is the best overall choice,
//  * the small dataset is more sensitive to the mode choice.

#include "harness_common.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;
using core::ScfAlgorithm;

namespace {

double run_mode(knlsim::Simulator& sim, ScfAlgorithm alg,
                knlsim::ClusterMode cm, knlsim::MemoryMode mm) {
  knlsim::SimConfig cfg;
  cfg.algorithm = alg;
  cfg.cluster_mode = cm;
  cfg.memory_mode = mm;
  const auto r = sim.run(cfg);
  return r.feasible ? r.seconds : -1.0;
}

}  // namespace

int main() {
  bench::banner("Figure 5", "cluster x memory modes, 0.5 nm and 2.0 nm");
  knlsim::ExperimentContext ctx{knlsim::ThetaMachine{}};

  for (const char* dataset : {"0.5nm", "2.0nm"}) {
    std::printf("\n--- dataset %s ---\n", dataset);
    bench::print_table(knlsim::figure5_modes(ctx, dataset));
  }

  knlsim::Simulator small(ctx.workload("0.5nm"), ctx.machine(),
                          ctx.calibration());
  using CM = knlsim::ClusterMode;
  using MM = knlsim::MemoryMode;

  const bool a2a_inversion =
      run_mode(small, ScfAlgorithm::kMpiOnly, CM::kAllToAll, MM::kCache) <
      run_mode(small, ScfAlgorithm::kSharedFock, CM::kAllToAll, MM::kCache);
  const bool quad_normal =
      run_mode(small, ScfAlgorithm::kSharedFock, CM::kQuadrant, MM::kCache) <
      run_mode(small, ScfAlgorithm::kMpiOnly, CM::kQuadrant, MM::kCache);
  const bool private_best =
      run_mode(small, ScfAlgorithm::kPrivateFock, CM::kQuadrant, MM::kCache) <
      run_mode(small, ScfAlgorithm::kSharedFock, CM::kQuadrant, MM::kCache);
  // Sensitivity: spread of shared-Fock times across modes, small vs large.
  auto spread = [&](knlsim::Simulator& sim) {
    double lo = 1e300, hi = 0.0;
    for (CM cm : {CM::kAllToAll, CM::kQuadrant, CM::kSnc4}) {
      for (MM mm : {MM::kCache, MM::kFlatDdr}) {
        const double t = run_mode(sim, ScfAlgorithm::kSharedFock, cm, mm);
        if (t > 0) {
          lo = std::min(lo, t);
          hi = std::max(hi, t);
        }
      }
    }
    return hi / lo;
  };
  knlsim::Simulator large(ctx.workload("2.0nm"), ctx.machine(),
                          ctx.calibration());
  const double spread_small = spread(small);
  const double spread_large = spread(large);
  const bool modes_matter = spread_small > 1.5;

  std::printf("\nshape check: MPI-only beats shared Fock only in A2A "
              "(small dataset): %s\n",
              (a2a_inversion && quad_normal) ? "PASS" : "FAIL");
  std::printf("shape check: private Fock best in all modes: %s\n",
              private_best ? "PASS" : "FAIL");
  std::printf("shape check: mode choice changes small-dataset time by "
              ">1.5x (model: %.2fx): %s\n",
              spread_small, modes_matter ? "PASS" : "FAIL");
  std::printf("known deviation: the paper ranks the small dataset as *more* "
              "mode-sensitive than the large one; this bandwidth-ratio "
              "model gives %.2fx vs %.2fx (see EXPERIMENTS.md)\n",
              spread_small, spread_large);
  return (a2a_inversion && quad_normal && private_best && modes_matter) ? 0
                                                                        : 1;
}
