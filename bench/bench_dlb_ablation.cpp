// Ablation of GAMESS's dynamic load balancing (the ddi_dlbnext counter all
// three algorithms rely on) against a static contiguous block
// decomposition of the same task loop. The canonical quartet enumeration
// makes task sizes grow ~linearly with the pair index, so static blocks
// hand the last rank far more work than the first -- DLB is load-bearing,
// not an implementation detail.

#include "harness_common.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;
using core::ScfAlgorithm;

int main() {
  bench::banner("Ablation", "dynamic vs static load balancing, 2.0 nm");
  knlsim::ExperimentContext ctx{knlsim::ThetaMachine{}};
  knlsim::Simulator sim(ctx.workload("2.0nm"), ctx.machine(),
                        ctx.calibration());

  Table t({"algorithm", "nodes", "DLB (s)", "static blocks (s)",
           "static penalty"});
  bool dlb_always_wins = true;
  double worst_penalty = 0.0;
  for (ScfAlgorithm alg :
       {ScfAlgorithm::kMpiOnly, ScfAlgorithm::kPrivateFock,
        ScfAlgorithm::kSharedFock}) {
    for (int nodes : {4, 64, 512}) {
      knlsim::SimConfig cfg;
      cfg.algorithm = alg;
      cfg.nodes = nodes;
      const auto dyn = sim.run(cfg);
      cfg.dynamic_load_balance = false;
      const auto sta = sim.run(cfg);
      if (!dyn.feasible || !sta.feasible) continue;
      const double penalty = sta.seconds / dyn.seconds;
      worst_penalty = std::max(worst_penalty, penalty);
      dlb_always_wins = dlb_always_wins && penalty > 0.999;
      t.add_row({core::algorithm_name(alg), std::to_string(nodes),
                 fmt_double(dyn.seconds, 1), fmt_double(sta.seconds, 1),
                 fmt_double(penalty, 2) + "x"});
    }
  }
  bench::print_table(t);
  std::printf("\nshape check: DLB never loses to static blocks: %s\n",
              dlb_always_wins ? "PASS" : "FAIL");
  std::printf("shape check: static decomposition costs up to %.1fx: %s\n",
              worst_penalty, worst_penalty > 1.3 ? "PASS" : "FAIL");
  return (dlb_always_wins && worst_penalty > 1.3) ? 0 : 1;
}
