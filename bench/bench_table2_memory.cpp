// Regenerates paper Table 2: per-node memory footprint of the three SCF
// codes for the five graphene datasets, from the paper's own asymptotic
// model (eqs. 3a-3c), plus a *measured* footprint cross-check from the
// instrumented allocations of a real small-system run.

#include <cinttypes>
#include <map>

#include "harness_common.hpp"
#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "common/memory_tracker.hpp"
#include "core/fock_dist.hpp"
#include "core/parallel_scf.hpp"
#include "knlsim/experiments.hpp"
#include "par/ddi.hpp"
#include "par/runtime.hpp"

using namespace mc;

namespace {

// Measured per-rank peaks for a real (small) run of each algorithm, to
// validate the ordering the model claims: private Fock pays for the
// thread-replicated matrix, shared Fock only for the FI/FJ buffers.
// Benzene/STO-3G with 4 threads so the difference is visible above the
// fixed matrices, while still finishing in seconds on one core.
void measured_cross_check() {
  bench::note(
      "measured cross-check (benzene/STO-3G, 1 rank x 4 threads, tracked "
      "allocations):");
  std::map<core::ScfAlgorithm, std::size_t> peak;
  for (auto alg :
       {core::ScfAlgorithm::kMpiOnly, core::ScfAlgorithm::kPrivateFock,
        core::ScfAlgorithm::kSharedFock}) {
    core::ParallelScfConfig cfg;
    cfg.algorithm = alg;
    cfg.nranks = 1;
    cfg.nthreads = 4;
    cfg.basis = "STO-3G";
    auto res = core::run_parallel_scf(chem::builders::benzene(), cfg);
    peak[alg] = res.peak_bytes_per_rank[0];
  }
  const double shared =
      static_cast<double>(peak[core::ScfAlgorithm::kSharedFock]);
  Table t({"Algorithm", "peak bytes/rank", "vs shared Fock"});
  for (auto alg :
       {core::ScfAlgorithm::kMpiOnly, core::ScfAlgorithm::kPrivateFock,
        core::ScfAlgorithm::kSharedFock}) {
    t.add_row({core::algorithm_name(alg), std::to_string(peak[alg]),
               fmt_double(static_cast<double>(peak[alg]) / shared, 2)});
  }
  bench::print_table(t);
  const bool ordering =
      peak[core::ScfAlgorithm::kPrivateFock] >
      peak[core::ScfAlgorithm::kSharedFock];
  std::printf("shape check: measured private-Fock peak exceeds shared-Fock "
              "peak: %s\n",
              ordering ? "PASS" : "FAIL");
}

// The dist-fock builder replaces the replicated D and F with one window
// segment of each per rank; the tracked "ddi-window" bytes must therefore
// fall as N^2/ranks. Measured from live window allocations at the exact
// tile layout the builder uses, and checked against the 2*N^2*8/ranks
// model to within 15% (shell-aligned tiles cannot split a shell, so the
// segments are only approximately even).
void dist_window_footprint() {
  bench::note(
      "dist-fock window footprint (graphene C12/STO-3G, measured live "
      "\"ddi-window\" bytes vs 2*N^2*8/ranks model):");
  const chem::Molecule mol = chem::builders::graphene_flake(12);
  const basis::BasisSet bs = basis::BasisSet::build(mol, "STO-3G");
  const double n2 = static_cast<double>(bs.nbf() * bs.nbf());
  Table t({"# ranks", "max bytes/rank", "model bytes/rank", "ratio"});
  bool ok = true;
  for (int nranks : {1, 2, 4}) {
    std::vector<std::size_t> measured(static_cast<std::size_t>(nranks), 0);
    par::run_spmd(nranks, [&](par::Comm& comm) {
      par::Ddi ddi(comm);
      const core::TileLayout lay =
          core::TileLayout::build(bs, comm.size(), 0);
      par::Window wd = ddi.create("bench:t2:D", lay.rank_elems);
      par::Window wf = ddi.create("bench:t2:F", lay.rank_elems);
      measured[static_cast<std::size_t>(comm.rank())] =
          MemoryTracker::instance().bytes(comm.rank(), "ddi-window");
      ddi.destroy(wd);
      ddi.destroy(wf);
    });
    std::size_t worst = 0;
    for (std::size_t b : measured) worst = std::max(worst, b);
    const double model = 2.0 * n2 * sizeof(double) / nranks;
    const double ratio = static_cast<double>(worst) / model;
    ok = ok && ratio >= 0.85 && ratio <= 1.15;
    t.add_row({std::to_string(nranks), std::to_string(worst),
               std::to_string(static_cast<std::size_t>(model)),
               fmt_double(ratio, 3)});
  }
  bench::print_table(t);
  std::printf("shape check: per-rank D+F windows track 2N^2/ranks within "
              "15%%: %s\n",
              ok ? "PASS" : "FAIL");
}

}  // namespace

int main() {
  bench::banner("Table 2", "memory footprint of the three SCF codes");
  bench::note(
      "model: eqs. 3a-3c; MPI-only at 256 ranks/node, hybrids at 4 ranks x "
      "64 threads");
  bench::note(
      "paper headline: private Fock ~50x and shared Fock ~200x smaller "
      "than MPI-only; with the paper's own formulas at the stated layouts "
      "the ratios are 2.4x / 45.7x, and 2.5x / 183x for the 256-rank vs "
      "1-rank comparison of section 5.3 -- see EXPERIMENTS.md");
  bench::print_table(knlsim::table2_memory_footprint());

  const double r183 = core::footprint_ratio_vs_mpi(
      core::ScfAlgorithm::kSharedFock, {1, 256}, 5340, 256);
  std::printf(
      "\nsection-5.3 comparison (256 MPI ranks vs 1 rank x 256 threads): "
      "shared Fock footprint ratio = %.0fx (paper: 'about 200 times')\n\n",
      r183);

  measured_cross_check();
  std::printf("\n");
  dist_window_footprint();
  return 0;
}
