// Regenerates paper Table 2: per-node memory footprint of the three SCF
// codes for the five graphene datasets, from the paper's own asymptotic
// model (eqs. 3a-3c), plus a *measured* footprint cross-check from the
// instrumented allocations of a real small-system run.

#include <cinttypes>
#include <map>

#include "harness_common.hpp"
#include "chem/builders.hpp"
#include "common/memory_tracker.hpp"
#include "core/parallel_scf.hpp"
#include "knlsim/experiments.hpp"

using namespace mc;

namespace {

// Measured per-rank peaks for a real (small) run of each algorithm, to
// validate the ordering the model claims: private Fock pays for the
// thread-replicated matrix, shared Fock only for the FI/FJ buffers.
// Benzene/STO-3G with 4 threads so the difference is visible above the
// fixed matrices, while still finishing in seconds on one core.
void measured_cross_check() {
  bench::note(
      "measured cross-check (benzene/STO-3G, 1 rank x 4 threads, tracked "
      "allocations):");
  std::map<core::ScfAlgorithm, std::size_t> peak;
  for (auto alg :
       {core::ScfAlgorithm::kMpiOnly, core::ScfAlgorithm::kPrivateFock,
        core::ScfAlgorithm::kSharedFock}) {
    core::ParallelScfConfig cfg;
    cfg.algorithm = alg;
    cfg.nranks = 1;
    cfg.nthreads = 4;
    cfg.basis = "STO-3G";
    auto res = core::run_parallel_scf(chem::builders::benzene(), cfg);
    peak[alg] = res.peak_bytes_per_rank[0];
  }
  const double shared =
      static_cast<double>(peak[core::ScfAlgorithm::kSharedFock]);
  Table t({"Algorithm", "peak bytes/rank", "vs shared Fock"});
  for (auto alg :
       {core::ScfAlgorithm::kMpiOnly, core::ScfAlgorithm::kPrivateFock,
        core::ScfAlgorithm::kSharedFock}) {
    t.add_row({core::algorithm_name(alg), std::to_string(peak[alg]),
               fmt_double(static_cast<double>(peak[alg]) / shared, 2)});
  }
  bench::print_table(t);
  const bool ordering =
      peak[core::ScfAlgorithm::kPrivateFock] >
      peak[core::ScfAlgorithm::kSharedFock];
  std::printf("shape check: measured private-Fock peak exceeds shared-Fock "
              "peak: %s\n",
              ordering ? "PASS" : "FAIL");
}

}  // namespace

int main() {
  bench::banner("Table 2", "memory footprint of the three SCF codes");
  bench::note(
      "model: eqs. 3a-3c; MPI-only at 256 ranks/node, hybrids at 4 ranks x "
      "64 threads");
  bench::note(
      "paper headline: private Fock ~50x and shared Fock ~200x smaller "
      "than MPI-only; with the paper's own formulas at the stated layouts "
      "the ratios are 2.4x / 45.7x, and 2.5x / 183x for the 256-rank vs "
      "1-rank comparison of section 5.3 -- see EXPERIMENTS.md");
  bench::print_table(knlsim::table2_memory_footprint());

  const double r183 = core::footprint_ratio_vs_mpi(
      core::ScfAlgorithm::kSharedFock, {1, 256}, 5340, 256);
  std::printf(
      "\nsection-5.3 comparison (256 MPI ranks vs 1 rank x 256 threads): "
      "shared Fock footprint ratio = %.0fx (paper: 'about 200 times')\n\n",
      r183);

  measured_cross_check();
  return 0;
}
