# Sanitizer presets for the concurrency-correctness harness.
#
# Configure with -DMC_SANITIZE=thread|address|undefined (default: off).
# Every mc_* target opts in via mc_enable_sanitizers(<target>); the flags are
# PUBLIC so they propagate through the static-library dependency chain and
# no target is left half-instrumented (mixing instrumented and plain TUs is
# how sanitizers miss races or crash at link time).
#
# Presets:
#   thread    -- TSan. Verifies the minimpi runtime and -- together with the
#                happens-before annotations in src/common/tsan_annotations.hpp
#                -- the OpenMP buffer protocol of the shared-Fock builder.
#                Run the labeled subset: ctest -L tsan
#   address   -- ASan + leak detection.
#   undefined -- UBSan, recover disabled so any report fails the test.

set(MC_SANITIZE "off" CACHE STRING
    "Sanitizer preset: off, thread, address, or undefined")
set_property(CACHE MC_SANITIZE PROPERTY STRINGS off thread address undefined)

set(_mc_sanitize_flags "")
if(MC_SANITIZE STREQUAL "thread")
  set(_mc_sanitize_flags -fsanitize=thread)
elseif(MC_SANITIZE STREQUAL "address")
  set(_mc_sanitize_flags -fsanitize=address -fno-omit-frame-pointer)
elseif(MC_SANITIZE STREQUAL "undefined")
  set(_mc_sanitize_flags -fsanitize=undefined -fno-sanitize-recover=all)
elseif(NOT MC_SANITIZE STREQUAL "off")
  message(FATAL_ERROR "MC_SANITIZE must be off, thread, address, or "
                      "undefined (got '${MC_SANITIZE}')")
endif()

if(NOT MC_SANITIZE STREQUAL "off")
  message(STATUS "Sanitizer preset enabled: MC_SANITIZE=${MC_SANITIZE}")
endif()

function(mc_enable_sanitizers target)
  if(MC_SANITIZE STREQUAL "off")
    return()
  endif()
  target_compile_options(${target} PUBLIC ${_mc_sanitize_flags})
  target_link_options(${target} PUBLIC ${_mc_sanitize_flags})
  # Let code (e.g. the bench banner) report that it was built instrumented,
  # so sanitized timing numbers are never mistaken for real ones.
  target_compile_definitions(${target} PUBLIC MC_SANITIZE_NAME="${MC_SANITIZE}")
endfunction()
