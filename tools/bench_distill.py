#!/usr/bin/env python3
"""Distill google-benchmark JSON output into a committed BENCH_*.json.

Reads the raw JSON produced by a benchmark binary run with
``--benchmark_format=json --benchmark_repetitions=N`` and keeps only what
the perf gate needs: the median real time per kernel, a machine+build
fingerprint, and the git state the numbers were measured at. The distilled
file is what CI uploads as an artifact and what bench/baselines/ commits;
tools/bench_compare.py diffs two of them.

The fingerprint must identify *everything* that makes two timings
comparable: machine shape (num_cpus, mhz_per_cpu) AND how the binary was
compiled (build type, optimization flags, -march, compiler version). The
build half comes from ``--build-info build/build_fingerprint.json``, a
file the CMake configure step writes (see CMakeLists.txt); without it the
fingerprint is marked unpinned and bench_compare --strict-fingerprint
will refuse to gate on it.

cpu_time is deliberately NOT distilled: the SPMD benchmarks do their work
on spawned threads, so the parent-process cpu_time google-benchmark
reports is meaningless there (0.07 ms "cpu" vs 337 ms real for the same
kernel in the old baselines). Gate decisions use real_time only.

Usage:
    bench_distill.py RAW_JSON -o BENCH_out.json \
        [--build-info build/build_fingerprint.json] \
        [--compiler STR] [--sha STR] [--repo DIR]

Stdlib only (runs on a bare CI image and locally).
"""

import argparse
import json
import os
import subprocess
import sys

SCHEMA = "mc-bench-v2"

# Keys bench_distill copies verbatim from the CMake-written build-info
# file into the fingerprint. Anything else in that file is ignored.
BUILD_INFO_KEYS = ("build_type", "compiler", "opt_flags", "march")


def git_state(repo_dir):
    """(sha, dirty) of the work tree the numbers were measured in.

    A dirty tree means the sha alone does not identify the measured code;
    baselines must never be refreshed from a dirty run.
    """
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return sha, bool(status.strip())
    except (OSError, subprocess.CalledProcessError):
        return "unknown", True


def load_build_info(path):
    """Build-configuration half of the fingerprint, from the file the
    CMake configure step writes. Raises SystemExit on malformed input so
    CI fails loudly instead of pinning a half-described baseline."""
    with open(path, "r", encoding="utf-8") as f:
        try:
            info = json.load(f)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}: not valid JSON ({e})")
    missing = [k for k in BUILD_INFO_KEYS if k not in info]
    if missing:
        raise SystemExit(
            f"{path}: missing build-info keys {missing}; regenerate by "
            "re-running the CMake configure step"
        )
    return {k: info[k] for k in BUILD_INFO_KEYS}


def fingerprint(context, build_info, compiler_fallback):
    """Identity for gate applicability: timings are only comparable when
    the benchmark ran on the same kind of machine AND the binary was
    compiled the same way. Deliberately excludes host_name (CI runners
    rotate) and date."""
    fp = {
        "num_cpus": context.get("num_cpus"),
        "mhz_per_cpu": context.get("mhz_per_cpu"),
    }
    if build_info is not None:
        fp.update(build_info)
    else:
        # No build info: record what little we know and say so. A strict
        # gate will refuse to treat this as comparable to a pinned build.
        fp.update(
            {
                "build_type": context.get("library_build_type", "unknown"),
                "compiler": compiler_fallback,
                "opt_flags": "unpinned",
                "march": "unpinned",
            }
        )
    return fp


def kernel_name(bench):
    """Strip the aggregate decoration: 'BM_X/1/2_median' -> 'BM_X/1/2'."""
    run_name = bench.get("run_name")
    if run_name:
        return run_name
    name = bench["name"]
    suffix = "_" + bench.get("aggregate_name", "")
    return name[: -len(suffix)] if name.endswith(suffix) else name


def distill(raw, build_info, compiler, sha, dirty):
    context = raw.get("context", {})
    kernels = {}
    repetitions = 0
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
        elif any(
            b.get("run_type") == "aggregate" for b in raw.get("benchmarks", [])
        ):
            continue  # per-repetition entry; the aggregate will cover it
        repetitions = max(repetitions, int(bench.get("repetitions", 1) or 1))
        kernels[kernel_name(bench)] = {
            "real_time": bench["real_time"],
            "time_unit": bench.get("time_unit", "ns"),
        }
    if not kernels:
        raise SystemExit("no benchmark entries found in input JSON")
    return {
        "schema": SCHEMA,
        "git_sha": sha,
        "git_dirty": dirty,
        "repetitions": repetitions,
        "fingerprint": fingerprint(context, build_info, compiler),
        "kernels": kernels,
    }


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("raw", help="google-benchmark JSON file")
    ap.add_argument("-o", "--output", required=True)
    ap.add_argument(
        "--build-info",
        default=None,
        help="build_fingerprint.json written by the CMake configure step; "
        "supplies build_type/compiler/opt_flags/march for the fingerprint",
    )
    ap.add_argument(
        "--compiler",
        default=os.environ.get("CXX", "unknown"),
        help="toolchain tag used only when --build-info is absent "
        "(default: $CXX)",
    )
    ap.add_argument("--sha", default=None, help="override git sha")
    ap.add_argument(
        "--repo",
        default=None,
        help="repository the measurement ran in (default: cwd); "
        "source of the git sha + dirty flag",
    )
    args = ap.parse_args(argv)

    with open(args.raw, "r", encoding="utf-8") as f:
        try:
            raw = json.load(f)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{args.raw}: not valid JSON ({e})")
    build_info = (
        load_build_info(args.build_info) if args.build_info else None
    )
    sha, dirty = git_state(args.repo or os.getcwd())
    if args.sha:
        sha = args.sha
    doc = distill(raw, build_info, args.compiler, sha, dirty)
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    pinned = "pinned" if build_info else "UNPINNED build flags"
    print(
        f"wrote {args.output}: {len(doc['kernels'])} kernels, "
        f"median of {doc['repetitions']}, {pinned}"
        f"{', DIRTY tree' if dirty else ''}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
