#!/usr/bin/env python3
"""Distill google-benchmark JSON output into a committed BENCH_*.json.

Reads the raw JSON produced by a benchmark binary run with
``--benchmark_format=json --benchmark_repetitions=N`` and keeps only what
the perf gate needs: the median real/CPU time per kernel, a machine
fingerprint, and the git sha the numbers were measured at. The distilled
file is what CI uploads as an artifact and what bench/baselines/ commits;
tools/bench_compare.py diffs two of them.

Usage:
    bench_distill.py RAW_JSON -o BENCH_out.json [--compiler STR] [--sha STR]

Stdlib only (runs on a bare CI image and locally).
"""

import argparse
import json
import os
import subprocess
import sys


def git_sha(repo_dir):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=repo_dir,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def fingerprint(context, compiler):
    """Machine identity for gate applicability: timings are only comparable
    when the benchmark ran on the same kind of machine with the same
    toolchain. Deliberately excludes host_name (CI runners rotate) and
    date."""
    return {
        "num_cpus": context.get("num_cpus"),
        "mhz_per_cpu": context.get("mhz_per_cpu"),
        "build_type": context.get("library_build_type", "unknown"),
        "compiler": compiler,
    }


def kernel_name(bench):
    """Strip the aggregate decoration: 'BM_X/1/2_median' -> 'BM_X/1/2'."""
    run_name = bench.get("run_name")
    if run_name:
        return run_name
    name = bench["name"]
    suffix = "_" + bench.get("aggregate_name", "")
    return name[: -len(suffix)] if name.endswith(suffix) else name


def distill(raw, compiler, sha):
    context = raw.get("context", {})
    kernels = {}
    repetitions = 0
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            if bench.get("aggregate_name") != "median":
                continue
        elif any(
            b.get("run_type") == "aggregate" for b in raw.get("benchmarks", [])
        ):
            continue  # per-repetition entry; the aggregate will cover it
        repetitions = max(repetitions, int(bench.get("repetitions", 1) or 1))
        kernels[kernel_name(bench)] = {
            "real_time": bench["real_time"],
            "cpu_time": bench["cpu_time"],
            "time_unit": bench.get("time_unit", "ns"),
        }
    if not kernels:
        raise SystemExit("no benchmark entries found in input JSON")
    return {
        "schema": "mc-bench-v1",
        "git_sha": sha,
        "repetitions": repetitions,
        "fingerprint": fingerprint(context, compiler),
        "kernels": kernels,
    }


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("raw", help="google-benchmark JSON file")
    ap.add_argument("-o", "--output", required=True)
    ap.add_argument(
        "--compiler",
        default=os.environ.get("CXX", "unknown"),
        help="toolchain tag for the fingerprint (default: $CXX)",
    )
    ap.add_argument("--sha", default=None, help="override git sha")
    args = ap.parse_args(argv)

    with open(args.raw, "r", encoding="utf-8") as f:
        raw = json.load(f)
    sha = args.sha or git_sha(os.path.dirname(os.path.abspath(args.output)))
    doc = distill(raw, args.compiler, sha)
    with open(args.output, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print(
        f"wrote {args.output}: {len(doc['kernels'])} kernels, "
        f"median of {doc['repetitions']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
