#!/usr/bin/env python3
"""Render a serve-lane JobRecord JSONL stream as a markdown summary.

The CI serving lane runs mchf-serve with --telemetry serve_jobs.jsonl and
pipes this tool's output into $GITHUB_STEP_SUMMARY: an outcome/cache-rate
overview plus a per-job table (capped, most recent first) so a red lane
shows *which* job was rejected or aborted without downloading the
artifact. Locally: tools/serve_summary.py serve_jobs.jsonl

Exit code is 0 whenever the file parses; the lane's verdict comes from
mchf-serve's own exit code and the serve-labeled ctest entries, not from
rendering. Stdlib only.
"""

import argparse
import json
import sys


def load_records(path):
    records = []
    with open(path, encoding="utf-8") as f:
        for n, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                raise SystemExit(f"{path}:{n}: bad JSON line: {e}")
            if rec.get("type") == "scf_job":
                records.append(rec)
    return records


def rate(hits, total):
    return f"{100.0 * hits / total:.0f}%" if total else "n/a"


def render(records, max_rows):
    out = []
    total = len(records)
    by_outcome = {}
    for r in records:
        by_outcome[r["outcome"]] = by_outcome.get(r["outcome"], 0) + 1
    ran = [r for r in records if r["outcome"] != "rejected"]
    setup_hits = sum(1 for r in ran if r.get("setup_cache_hit"))
    density_hits = sum(1 for r in ran if r.get("density_cache_hit"))

    out.append("### SCF serving lane")
    out.append("")
    out.append(
        f"**{total} jobs**: "
        + ", ".join(f"{v} {k}" for k, v in sorted(by_outcome.items()))
    )
    out.append("")
    out.append(
        f"Cache hit rate over {len(ran)} executed jobs: "
        f"setup {rate(setup_hits, len(ran))} "
        f"({setup_hits}/{len(ran)}), "
        f"density {rate(density_hits, len(ran))} "
        f"({density_hits}/{len(ran)})"
    )
    out.append("")
    out.append(
        "| job | tenant | molecule | outcome | world | wait (s) | run (s) "
        "| iters | setup$ | density$ | detail |"
    )
    out.append("|--:|--|--|--|--:|--:|--:|--:|:-:|:-:|--|")
    shown = records[-max_rows:]
    for r in shown:
        detail = r.get("reject_reason", "")
        if r["outcome"] == "converged":
            detail = f"E = {r.get('energy', 0.0):.6f}"
        out.append(
            "| {job} | {tenant} | {molecule} | {outcome} | {world} "
            "| {wait:.3f} | {run:.3f} | {iters} | {s} | {d} | {detail} |".format(
                job=r["job"],
                tenant=r.get("tenant", ""),
                molecule=r.get("molecule", ""),
                outcome=r["outcome"],
                world=r.get("world", -1),
                wait=r.get("queue_wait_seconds", 0.0),
                run=r.get("run_seconds", 0.0),
                iters=r.get("iterations", 0),
                s="x" if r.get("setup_cache_hit") else "",
                d="x" if r.get("density_cache_hit") else "",
                detail=detail,
            )
        )
    if len(records) > len(shown):
        out.append("")
        out.append(f"_({len(records) - len(shown)} earlier jobs omitted)_")
    return "\n".join(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("jsonl", help="JobRecord JSONL stream from mchf-serve")
    ap.add_argument(
        "--max-rows", type=int, default=50,
        help="cap on per-job table rows (default 50, most recent kept)",
    )
    args = ap.parse_args()
    records = load_records(args.jsonl)
    if not records:
        print(f"no scf_job records in {args.jsonl}", file=sys.stderr)
        return 1
    print(render(records, args.max_rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
