#!/usr/bin/env python3
"""Unit tests for the perf-gate tooling (tools/bench_distill.py and
tools/bench_compare.py), wired into the lint CI job.

These exist because of a real bug: the PR-5 gate compared debug-build
baselines against Release-build measurements, and the fingerprint
mismatch path exited 0 — the gate could never fail. Every policy branch
of both tools is pinned here: strict/non-strict fingerprint handling,
the +/-tolerance thresholds, the faster-warn path, malformed input, and
the fingerprint contents themselves (build flags, dirty flag, dropped
cpu_time).

Run directly (python3 tools/tests/test_bench_tools.py) or via unittest
discovery. Stdlib only.
"""

import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))

import bench_compare  # noqa: E402
import bench_distill  # noqa: E402

FP = {
    "num_cpus": 4,
    "mhz_per_cpu": 2100,
    "build_type": "release",
    "compiler": "GNU 12.2.0",
    "opt_flags": "-O3 -DNDEBUG",
    "march": "x86-64-v3",
}


def bench_doc(kernels, fingerprint=None, **overrides):
    doc = {
        "schema": "mc-bench-v2",
        "git_sha": "a" * 40,
        "git_dirty": False,
        "repetitions": 5,
        "fingerprint": dict(fingerprint or FP),
        "kernels": {
            name: {"real_time": t, "time_unit": "ms"}
            for name, t in kernels.items()
        },
    }
    doc.update(overrides)
    return doc


class TempFiles(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self._tmp.cleanup)

    def write_json(self, name, doc):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def write_text(self, name, text):
        path = os.path.join(self._tmp.name, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path


class CompareTest(TempFiles):
    def run_compare(self, base_doc, new_doc, *flags, env_summary=None):
        base = self.write_json("base.json", base_doc)
        new = self.write_json("new.json", new_doc)
        old_env = os.environ.pop("GITHUB_STEP_SUMMARY", None)
        if env_summary is not None:
            os.environ["GITHUB_STEP_SUMMARY"] = env_summary
        out = io.StringIO()
        try:
            with contextlib.redirect_stdout(out):
                rc = bench_compare.main([base, new, *flags])
        finally:
            os.environ.pop("GITHUB_STEP_SUMMARY", None)
            if old_env is not None:
                os.environ["GITHUB_STEP_SUMMARY"] = old_env
        return rc, out.getvalue()

    def test_within_tolerance_passes(self):
        rc, out = self.run_compare(
            bench_doc({"BM_A": 100.0}),
            bench_doc({"BM_A": 115.0}),
            "--gate",
        )
        self.assertEqual(rc, bench_compare.EXIT_OK)
        self.assertIn("all kernels within", out)

    def test_regression_beyond_tolerance_fails_gate(self):
        rc, out = self.run_compare(
            bench_doc({"BM_A": 100.0}),
            bench_doc({"BM_A": 121.0}),
            "--gate",
        )
        self.assertEqual(rc, bench_compare.EXIT_REGRESSION)
        self.assertIn("FAIL: BM_A regressed 21.0%", out)

    def test_regression_without_gate_reports_but_exits_zero(self):
        rc, out = self.run_compare(
            bench_doc({"BM_A": 100.0}), bench_doc({"BM_A": 200.0})
        )
        self.assertEqual(rc, bench_compare.EXIT_OK)
        self.assertIn("FAIL: BM_A", out)

    def test_faster_than_tolerance_warns_refresh_but_passes(self):
        rc, out = self.run_compare(
            bench_doc({"BM_A": 100.0}),
            bench_doc({"BM_A": 60.0}),
            "--gate",
        )
        self.assertEqual(rc, bench_compare.EXIT_OK)
        self.assertIn("faster than the baseline", out)
        self.assertIn("refreshing bench/baselines/", out)

    def test_fingerprint_mismatch_strict_is_hard_failure(self):
        debug_fp = dict(FP, build_type="debug", opt_flags="-g")
        rc, out = self.run_compare(
            bench_doc({"BM_A": 100.0}, fingerprint=debug_fp),
            bench_doc({"BM_A": 100.0}),
            "--gate",
            "--strict-fingerprint",
        )
        self.assertEqual(rc, bench_compare.EXIT_FINGERPRINT)
        self.assertIn("strict fingerprint mode", out)
        self.assertIn("build_type", out)

    def test_fingerprint_mismatch_nonstrict_skips_gate(self):
        # The pre-fix behaviour, now restricted to explicit local use:
        # without --strict-fingerprint a mismatch still exits 0.
        rc, out = self.run_compare(
            bench_doc({"BM_A": 100.0}, fingerprint=dict(FP, num_cpus=8)),
            bench_doc({"BM_A": 1000.0}),
            "--gate",
        )
        self.assertEqual(rc, bench_compare.EXIT_OK)
        self.assertIn("gate skipped", out)

    def test_strict_fingerprint_catches_march_change(self):
        rc, _ = self.run_compare(
            bench_doc({"BM_A": 100.0}, fingerprint=dict(FP, march="native")),
            bench_doc({"BM_A": 100.0}),
            "--strict-fingerprint",
        )
        self.assertEqual(rc, bench_compare.EXIT_FINGERPRINT)

    def test_step_summary_written_on_all_paths(self):
        for base, new, flags in [
            (bench_doc({"BM_A": 100.0}), bench_doc({"BM_A": 100.0}), ["--gate"]),
            (bench_doc({"BM_A": 100.0}), bench_doc({"BM_A": 130.0}), ["--gate"]),
            (
                bench_doc({"BM_A": 100.0}, fingerprint=dict(FP, num_cpus=8)),
                bench_doc({"BM_A": 100.0}),
                ["--gate", "--strict-fingerprint"],
            ),
        ]:
            summary = self.write_text("summary.md", "")
            self.run_compare(base, new, *flags, env_summary=summary)
            with open(summary, "r", encoding="utf-8") as f:
                text = f.read()
            self.assertIn("| kernel |", text)
            self.assertIn("| `BM_A` |", text)

    def test_malformed_json_raises_systemexit(self):
        bad = self.write_text("bad.json", "{not json")
        good = self.write_json("good.json", bench_doc({"BM_A": 1.0}))
        with self.assertRaises(SystemExit):
            bench_compare.main([bad, good])

    def test_wrong_schema_rejected(self):
        v1 = self.write_json(
            "v1.json", bench_doc({"BM_A": 1.0}, schema="mc-bench-v1")
        )
        good = self.write_json("good.json", bench_doc({"BM_A": 1.0}))
        with self.assertRaises(SystemExit) as ctx:
            bench_compare.main([v1, good])
        self.assertIn("mc-bench-v2", str(ctx.exception))

    def test_missing_kernels_table_rejected(self):
        nok = self.write_json("nok.json", {"schema": "mc-bench-v2"})
        good = self.write_json("good.json", bench_doc({"BM_A": 1.0}))
        with self.assertRaises(SystemExit):
            bench_compare.main([nok, good])

    def test_unit_conversion_applies_to_thresholds(self):
        base = bench_doc({"BM_A": 1.0})  # 1 ms
        new = bench_doc({"BM_A": 1.0})
        new["kernels"]["BM_A"] = {"real_time": 1300.0, "time_unit": "us"}
        rc, _ = self.run_compare(base, new, "--gate")
        self.assertEqual(rc, bench_compare.EXIT_REGRESSION)


def raw_benchmark_json(entries, context=None):
    return {
        "context": context or {"num_cpus": 4, "mhz_per_cpu": 2100},
        "benchmarks": entries,
    }


def aggregate(name, aggregate_name, real_time, cpu_time=0.01):
    return {
        "name": f"{name}_{aggregate_name}",
        "run_name": name,
        "run_type": "aggregate",
        "aggregate_name": aggregate_name,
        "repetitions": 5,
        "real_time": real_time,
        "cpu_time": cpu_time,
        "time_unit": "ms",
    }


class DistillTest(TempFiles):
    def distill_file(self, raw_doc, *args):
        raw = self.write_json("raw.json", raw_doc)
        out = os.path.join(self._tmp.name, "out.json")
        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            bench_distill.main([raw, "-o", out, *args])
        with open(out, "r", encoding="utf-8") as f:
            return json.load(f)

    def test_median_aggregate_selected_and_cpu_time_dropped(self):
        doc = self.distill_file(
            raw_benchmark_json(
                [
                    aggregate("BM_A", "mean", 110.0),
                    aggregate("BM_A", "median", 100.0, cpu_time=0.07),
                    aggregate("BM_A", "stddev", 5.0),
                ]
            )
        )
        self.assertEqual(doc["schema"], "mc-bench-v2")
        self.assertEqual(doc["kernels"]["BM_A"]["real_time"], 100.0)
        # The old schema recorded the parent process's cpu_time, which is
        # meaningless for SPMD benchmarks (0.07 ms "cpu" vs 337 ms real).
        self.assertNotIn("cpu_time", doc["kernels"]["BM_A"])

    def test_build_info_lands_in_fingerprint(self):
        info = self.write_json(
            "bi.json",
            {
                "build_type": "release",
                "compiler": "GNU 12.2.0",
                "opt_flags": "-O3 -DNDEBUG",
                "march": "x86-64-v3",
            },
        )
        doc = self.distill_file(
            raw_benchmark_json([aggregate("BM_A", "median", 1.0)]),
            "--build-info",
            info,
        )
        fp = doc["fingerprint"]
        self.assertEqual(fp["build_type"], "release")
        self.assertEqual(fp["opt_flags"], "-O3 -DNDEBUG")
        self.assertEqual(fp["march"], "x86-64-v3")
        self.assertEqual(fp["compiler"], "GNU 12.2.0")

    def test_without_build_info_fingerprint_is_unpinned(self):
        doc = self.distill_file(
            raw_benchmark_json([aggregate("BM_A", "median", 1.0)])
        )
        self.assertEqual(doc["fingerprint"]["opt_flags"], "unpinned")
        self.assertEqual(doc["fingerprint"]["march"], "unpinned")

    def test_incomplete_build_info_rejected(self):
        info = self.write_json("bi.json", {"build_type": "release"})
        with self.assertRaises(SystemExit) as ctx:
            self.distill_file(
                raw_benchmark_json([aggregate("BM_A", "median", 1.0)]),
                "--build-info",
                info,
            )
        self.assertIn("missing build-info keys", str(ctx.exception))

    def test_malformed_build_info_rejected(self):
        info = self.write_text("bi.json", "{nope")
        with self.assertRaises(SystemExit):
            self.distill_file(
                raw_benchmark_json([aggregate("BM_A", "median", 1.0)]),
                "--build-info",
                info,
            )

    def test_malformed_raw_json_rejected(self):
        raw = self.write_text("raw.json", "not json at all")
        out = os.path.join(self._tmp.name, "out.json")
        with self.assertRaises(SystemExit):
            bench_distill.main([raw, "-o", out])

    def test_empty_benchmarks_rejected(self):
        with self.assertRaises(SystemExit):
            self.distill_file(raw_benchmark_json([]))

    def test_git_state_records_sha_and_dirty_flag(self):
        doc = self.distill_file(
            raw_benchmark_json([aggregate("BM_A", "median", 1.0)]),
            "--repo",
            self._tmp.name,  # not a git repo -> unknown + dirty
        )
        self.assertEqual(doc["git_sha"], "unknown")
        self.assertTrue(doc["git_dirty"])

    def test_per_repetition_entries_skipped_when_aggregates_present(self):
        rep = {
            "name": "BM_A",
            "run_name": "BM_A",
            "run_type": "iteration",
            "repetitions": 5,
            "real_time": 999.0,
            "cpu_time": 999.0,
            "time_unit": "ms",
        }
        doc = self.distill_file(
            raw_benchmark_json([rep, aggregate("BM_A", "median", 100.0)])
        )
        self.assertEqual(doc["kernels"]["BM_A"]["real_time"], 100.0)


class EndToEndGateTest(TempFiles):
    """The regression test for the original bug, end to end through both
    tools: a debug-build measurement must not pass a gate whose baseline
    was pinned from a Release build."""

    def test_debug_vs_release_fails_strict_gate(self):
        release_info = self.write_json(
            "rel.json",
            {
                "build_type": "release",
                "compiler": "GNU 12.2.0",
                "opt_flags": "-O3 -DNDEBUG",
                "march": "x86-64-v3",
            },
        )
        debug_info = self.write_json(
            "dbg.json",
            {
                "build_type": "debug",
                "compiler": "GNU 12.2.0",
                "opt_flags": "-g",
                "march": "x86-64-v3",
            },
        )
        raw = raw_benchmark_json([aggregate("BM_A", "median", 100.0)])

        def distill(info, name):
            raw_path = self.write_json(f"raw_{name}.json", raw)
            out = os.path.join(self._tmp.name, f"{name}.json")
            with contextlib.redirect_stdout(io.StringIO()):
                bench_distill.main(
                    [raw_path, "-o", out, "--build-info", info]
                )
            return out

        baseline = distill(release_info, "baseline")
        current = distill(debug_info, "current")
        with contextlib.redirect_stdout(io.StringIO()):
            rc = bench_compare.main(
                [baseline, current, "--gate", "--strict-fingerprint"]
            )
        self.assertEqual(rc, bench_compare.EXIT_FINGERPRINT)


if __name__ == "__main__":
    unittest.main()
