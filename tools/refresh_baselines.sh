#!/usr/bin/env bash
# One-command refresh of the committed perf baselines from a CI run's
# artifacts (bench/baselines/README.md documents when to refresh).
#
#   tools/refresh_baselines.sh <run-id>     # pull from a green perf run
#   tools/refresh_baselines.sh --local BUILD_DIR
#                                           # re-measure on this machine
#
# The CI path downloads the `bench-results` artifact of the given run (the
# distilled files already carry the run's fingerprint and git sha) and
# copies BENCH_{fock,eri}.json into bench/baselines/. The local path
# re-runs the pinned benchmarks in an existing build tree and distills
# them with that tree's build_fingerprint.json — use it only when the
# gate runs on the same machine type (self-hosted / container CI).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
dest="$repo_root/bench/baselines"

if [[ "${1:-}" == "--local" ]]; then
  build_dir="${2:?usage: refresh_baselines.sh --local BUILD_DIR}"
  [[ -f "$build_dir/build_fingerprint.json" ]] ||
    { echo "error: $build_dir/build_fingerprint.json missing (configure first)" >&2; exit 1; }
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  "$build_dir/bench/bench_fock_builders" \
    --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
    --benchmark_format=json --benchmark_out="$tmp/raw_fock.json"
  "$build_dir/bench/bench_eri_micro" \
    --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \
    --benchmark_format=json --benchmark_out="$tmp/raw_eri.json"
  python3 "$repo_root/tools/bench_distill.py" "$tmp/raw_fock.json" \
    -o "$dest/BENCH_fock.json" \
    --build-info "$build_dir/build_fingerprint.json" --repo "$repo_root"
  python3 "$repo_root/tools/bench_distill.py" "$tmp/raw_eri.json" \
    -o "$dest/BENCH_eri.json" \
    --build-info "$build_dir/build_fingerprint.json" --repo "$repo_root"
else
  run_id="${1:?usage: refresh_baselines.sh <run-id> | --local BUILD_DIR}"
  command -v gh >/dev/null ||
    { echo "error: GitHub CLI (gh) required for the CI-artifact path" >&2; exit 1; }
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  gh run download "$run_id" --name bench-results --dir "$tmp"
  for f in BENCH_fock.json BENCH_eri.json; do
    [[ -f "$tmp/$f" ]] ||
      { echo "error: artifact of run $run_id has no $f" >&2; exit 1; }
    python3 - "$tmp/$f" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc.get("schema") == "mc-bench-v2", "artifact is not mc-bench-v2"
assert not doc.get("git_dirty"), "refusing to pin a dirty-tree measurement"
assert doc["fingerprint"].get("opt_flags") != "unpinned", \
    "refusing to pin a baseline without recorded build flags"
PY
    cp "$tmp/$f" "$dest/$f"
  done
fi

echo "refreshed $dest; review the diff and commit:"
git -C "$repo_root" --no-pager diff --stat -- bench/baselines
