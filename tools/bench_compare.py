#!/usr/bin/env python3
"""Diff two distilled BENCH_*.json files kernel by kernel.

Used two ways:
  * locally, to eyeball a change:  bench_compare.py old.json new.json
  * by the CI perf gate:           bench_compare.py baseline.json new.json
                                       --gate --tolerance 0.20

Gate policy (DESIGN.md section 12.6): a kernel whose median real time
regressed by more than the tolerance FAILS the gate (exit 1); a kernel
that got faster than the tolerance only WARNS, with a reminder to refresh
the committed baseline from the uploaded artifact. If the two files carry
different machine fingerprints the timings are not comparable: the tool
prints the table, warns, and exits 0 regardless of deltas.

Stdlib only.
"""

import argparse
import json
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != "mc-bench-v1":
        raise SystemExit(f"{path}: not an mc-bench-v1 file")
    return doc


def to_ns(entry):
    return entry["real_time"] * _UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g} {unit}"
    return f"{ns:.0f} ns"


def compare(base, new, tolerance):
    """Returns (rows, regressions, improvements, only_in_one)."""
    rows = []
    regressions = []
    improvements = []
    bk, nk = base["kernels"], new["kernels"]
    for name in sorted(set(bk) | set(nk)):
        if name not in bk:
            rows.append((name, None, to_ns(nk[name]), None, "new"))
            continue
        if name not in nk:
            rows.append((name, to_ns(bk[name]), None, None, "removed"))
            continue
        b, n = to_ns(bk[name]), to_ns(nk[name])
        delta = (n - b) / b if b > 0 else 0.0
        status = "ok"
        if delta > tolerance:
            status = "SLOWER"
            regressions.append((name, delta))
        elif delta < -tolerance:
            status = "faster"
            improvements.append((name, delta))
        rows.append((name, b, n, delta, status))
    only = [r for r in rows if r[4] in ("new", "removed")]
    return rows, regressions, improvements, only


def print_table(rows):
    name_w = max([len(r[0]) for r in rows] + [len("kernel")])
    header = (
        f"{'kernel':<{name_w}}  {'baseline':>10}  {'current':>10}"
        f"  {'delta':>8}  status"
    )
    print(header)
    print("-" * len(header))
    for name, b, n, delta, status in rows:
        bs = fmt_ns(b) if b is not None else "-"
        ns = fmt_ns(n) if n is not None else "-"
        ds = f"{delta * 100:+.1f}%" if delta is not None else "-"
        print(f"{name:<{name_w}}  {bs:>10}  {ns:>10}  {ds:>8}  {status}")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="relative gate width (default 0.20 = +/-20%%)",
    )
    ap.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 on regressions beyond tolerance (CI mode)",
    )
    args = ap.parse_args(argv)

    base = load(args.baseline)
    new = load(args.current)
    rows, regressions, improvements, _ = compare(base, new, args.tolerance)
    print(
        f"baseline: {args.baseline} (sha {base.get('git_sha', '?')[:12]})\n"
        f"current:  {args.current} (sha {new.get('git_sha', '?')[:12]})\n"
    )
    print_table(rows)
    print()

    if base.get("fingerprint") != new.get("fingerprint"):
        print("WARNING: machine fingerprints differ; timings are not")
        print(f"  baseline: {base.get('fingerprint')}")
        print(f"  current:  {new.get('fingerprint')}")
        print("comparable and the gate does not apply. If the new machine")
        print("type is here to stay, refresh bench/baselines/ from the")
        print("uploaded BENCH artifact of this run.")
        return 0

    for name, delta in improvements:
        print(
            f"note: {name} is {-delta * 100:.1f}% faster than the baseline; "
            "consider refreshing bench/baselines/ from this run's artifact."
        )
    if regressions:
        for name, delta in regressions:
            print(
                f"FAIL: {name} regressed {delta * 100:.1f}% "
                f"(tolerance {args.tolerance * 100:.0f}%)"
            )
        return 1 if args.gate else 0
    print(f"gate: all kernels within {args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
