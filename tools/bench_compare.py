#!/usr/bin/env python3
"""Diff two distilled BENCH_*.json files kernel by kernel.

Used two ways:
  * locally, to eyeball a change:  bench_compare.py old.json new.json
  * by the CI perf gate:           bench_compare.py baseline.json new.json
                                       --gate --strict-fingerprint
                                       --tolerance 0.20

Gate policy (DESIGN.md section 12.6): a kernel whose median real time
regressed by more than the tolerance FAILS the gate (exit 1); a kernel
that got faster than the tolerance only WARNS, with a reminder to refresh
the committed baseline from the uploaded artifact.

Fingerprint policy: if the two files carry different machine+build
fingerprints the timings are not comparable. Under --strict-fingerprint
(the CI default) that is a HARD FAILURE (exit 2) — a gate that silently
skips itself guards nothing. Without it (local eyeballing) the tool
prints the table, warns, and exits 0. The one-command refresh flow is
documented in bench/baselines/README.md.

When $GITHUB_STEP_SUMMARY is set, the comparison table and the gate
decision are always appended there as markdown — including on the
mismatch and failure paths, so every gate decision is visible in the job
summary.

Stdlib only.
"""

import argparse
import json
import os
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_FINGERPRINT = 2


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            raise SystemExit(f"{path}: not valid JSON ({e})")
    if doc.get("schema") != "mc-bench-v2":
        raise SystemExit(
            f"{path}: not an mc-bench-v2 file (schema "
            f"{doc.get('schema')!r}); re-distill with tools/bench_distill.py"
        )
    if not isinstance(doc.get("kernels"), dict):
        raise SystemExit(f"{path}: malformed: no kernels table")
    return doc


def to_ns(entry):
    return entry["real_time"] * _UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)


def fmt_ns(ns):
    for unit, div in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= div:
            return f"{ns / div:.3g} {unit}"
    return f"{ns:.0f} ns"


def compare(base, new, tolerance):
    """Returns (rows, regressions, improvements, only_in_one)."""
    rows = []
    regressions = []
    improvements = []
    bk, nk = base["kernels"], new["kernels"]
    for name in sorted(set(bk) | set(nk)):
        if name not in bk:
            rows.append((name, None, to_ns(nk[name]), None, "new"))
            continue
        if name not in nk:
            rows.append((name, to_ns(bk[name]), None, None, "removed"))
            continue
        b, n = to_ns(bk[name]), to_ns(nk[name])
        delta = (n - b) / b if b > 0 else 0.0
        status = "ok"
        if delta > tolerance:
            status = "SLOWER"
            regressions.append((name, delta))
        elif delta < -tolerance:
            status = "faster"
            improvements.append((name, delta))
        rows.append((name, b, n, delta, status))
    only = [r for r in rows if r[4] in ("new", "removed")]
    return rows, regressions, improvements, only


def fingerprint_diff(base_fp, new_fp):
    """Human-readable list of fingerprint keys that disagree."""
    base_fp = base_fp or {}
    new_fp = new_fp or {}
    lines = []
    for key in sorted(set(base_fp) | set(new_fp)):
        b, n = base_fp.get(key), new_fp.get(key)
        if b != n:
            lines.append(f"  {key}: baseline={b!r} current={n!r}")
    return lines


def print_table(rows):
    name_w = max([len(r[0]) for r in rows] + [len("kernel")])
    header = (
        f"{'kernel':<{name_w}}  {'baseline':>10}  {'current':>10}"
        f"  {'delta':>8}  status"
    )
    print(header)
    print("-" * len(header))
    for name, b, n, delta, status in rows:
        bs = fmt_ns(b) if b is not None else "-"
        ns = fmt_ns(n) if n is not None else "-"
        ds = f"{delta * 100:+.1f}%" if delta is not None else "-"
        print(f"{name:<{name_w}}  {bs:>10}  {ns:>10}  {ds:>8}  {status}")


def step_summary_markdown(title, rows, verdict):
    lines = [f"### {title}", ""]
    lines.append("| kernel | baseline | current | delta | status |")
    lines.append("|---|---:|---:|---:|---|")
    for name, b, n, delta, status in rows:
        bs = fmt_ns(b) if b is not None else "-"
        ns = fmt_ns(n) if n is not None else "-"
        ds = f"{delta * 100:+.1f}%" if delta is not None else "-"
        lines.append(f"| `{name}` | {bs} | {ns} | {ds} | {status} |")
    lines.append("")
    lines.append(verdict)
    lines.append("")
    return "\n".join(lines)


def write_step_summary(text):
    """Append to the GitHub Actions job summary when running in CI. Done
    unconditionally on every exit path so the summary always shows what
    the gate decided and why."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a", encoding="utf-8") as f:
        f.write(text + "\n")


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="relative gate width (default 0.20 = +/-20%%)",
    )
    ap.add_argument(
        "--gate",
        action="store_true",
        help="exit 1 on regressions beyond tolerance (CI mode)",
    )
    ap.add_argument(
        "--strict-fingerprint",
        action="store_true",
        help="exit 2 when the fingerprints differ instead of skipping the "
        "gate (CI mode; a skipped gate guards nothing)",
    )
    args = ap.parse_args(argv)

    base = load(args.baseline)
    new = load(args.current)
    rows, regressions, improvements, _ = compare(base, new, args.tolerance)
    title = f"Perf gate: {os.path.basename(args.baseline)}"
    print(
        f"baseline: {args.baseline} (sha {base.get('git_sha', '?')[:12]}"
        f"{', dirty' if base.get('git_dirty') else ''})\n"
        f"current:  {args.current} (sha {new.get('git_sha', '?')[:12]}"
        f"{', dirty' if new.get('git_dirty') else ''})\n"
    )
    print_table(rows)
    print()

    if base.get("fingerprint") != new.get("fingerprint"):
        diff = fingerprint_diff(base.get("fingerprint"), new.get("fingerprint"))
        print("fingerprints differ; timings are NOT comparable:")
        for line in diff:
            print(line)
        if args.strict_fingerprint:
            print(
                "FAIL: strict fingerprint mode — refusing to skip the gate.\n"
                "If the machine type or build configuration changed on\n"
                "purpose, refresh the pinned baselines (one command, see\n"
                "bench/baselines/README.md):\n"
                "  tools/refresh_baselines.sh <run-id>"
            )
            write_step_summary(
                step_summary_markdown(
                    title,
                    rows,
                    "**FAIL — fingerprint mismatch (strict mode):**\n```\n"
                    + "\n".join(diff)
                    + "\n```",
                )
            )
            return EXIT_FINGERPRINT
        print(
            "warning: gate skipped (non-strict mode). If the new machine\n"
            "type is here to stay, refresh bench/baselines/ from the\n"
            "uploaded BENCH artifact of this run."
        )
        write_step_summary(
            step_summary_markdown(
                title,
                rows,
                "**SKIPPED — fingerprint mismatch (non-strict mode):**\n```\n"
                + "\n".join(diff)
                + "\n```",
            )
        )
        return EXIT_OK

    for name, delta in improvements:
        print(
            f"note: {name} is {-delta * 100:.1f}% faster than the baseline; "
            "consider refreshing bench/baselines/ from this run's artifact."
        )
    if regressions:
        for name, delta in regressions:
            print(
                f"FAIL: {name} regressed {delta * 100:.1f}% "
                f"(tolerance {args.tolerance * 100:.0f}%)"
            )
        verdict = "**FAIL:** " + ", ".join(
            f"`{name}` +{delta * 100:.1f}%" for name, delta in regressions
        )
        write_step_summary(step_summary_markdown(title, rows, verdict))
        return EXIT_REGRESSION if args.gate else EXIT_OK
    verdict = (
        f"**PASS:** all kernels within {args.tolerance * 100:.0f}% of baseline"
    )
    if improvements:
        verdict += "; " + ", ".join(
            f"`{name}` {-delta * 100:.1f}% faster (consider refreshing)"
            for name, delta in improvements
        )
    print(f"gate: all kernels within {args.tolerance * 100:.0f}% of baseline")
    write_step_summary(step_summary_markdown(title, rows, verdict))
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
