#!/usr/bin/env python3
"""clang-tidy driver for the concurrency-hygiene baseline (.clang-tidy).

Runs clang-tidy over the protocol-bearing layers (src/common, src/core,
src/par by default) against the compile database CMake exports
(CMAKE_EXPORT_COMPILE_COMMANDS is always ON, so any configured build tree
works). Exits 0 with a notice when clang-tidy is not installed -- the
baseline is a ratchet where the tool exists (CI images, dev boxes), never
a hard dependency of the build.

Usage:
  tools/mc-lint/run_clang_tidy.py [-p BUILD_DIR] [paths...]

Exit codes: 0 clean or tool unavailable, 1 findings, 2 usage/setup error.
"""

import argparse
import os
import shutil
import subprocess
import sys

REPO = os.path.abspath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", ".."))
DEFAULT_SCOPE = ["src/common", "src/core", "src/par"]


def find_clang_tidy():
    for name in ("clang-tidy", "clang-tidy-18", "clang-tidy-17",
                 "clang-tidy-16", "clang-tidy-15", "clang-tidy-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def gather_sources(paths):
    out = []
    for p in paths:
        ap = p if os.path.isabs(p) else os.path.join(REPO, p)
        if os.path.isfile(ap):
            out.append(ap)
            continue
        for dirpath, _dirnames, filenames in os.walk(ap):
            for fn in sorted(filenames):
                if fn.endswith(".cpp"):
                    out.append(os.path.join(dirpath, fn))
    return sorted(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="*", default=None,
                    help=f"files/dirs to lint (default: {DEFAULT_SCOPE})")
    ap.add_argument("-p", "--build-dir", default=os.path.join(REPO, "build"),
                    help="build tree holding compile_commands.json")
    ap.add_argument("--quiet", action="store_true",
                    help="suppress the per-file progress lines")
    args = ap.parse_args()

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: clang-tidy not found on PATH; skipping "
              "(the mc-lint pass still ran -- this baseline is additive).")
        return 0

    cdb = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.isfile(cdb):
        print(f"run_clang_tidy: no compile database at {cdb}; configure "
              "first (cmake -B build -S .)", file=sys.stderr)
        return 2

    sources = gather_sources(args.paths or DEFAULT_SCOPE)
    if not sources:
        print("run_clang_tidy: no sources matched", file=sys.stderr)
        return 2

    failed = []
    for src in sources:
        if not args.quiet:
            print(f"  tidy {os.path.relpath(src, REPO)}", flush=True)
        proc = subprocess.run(
            [tidy, "-p", args.build_dir, "--quiet", src],
            capture_output=True, text=True, check=False)
        # clang-tidy exits non-zero on warnings when WarningsAsErrors is
        # set (it is, in .clang-tidy) and on hard errors alike.
        if proc.returncode != 0:
            failed.append(src)
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)

    if failed:
        print(f"run_clang_tidy: {len(failed)} file(s) with findings",
              file=sys.stderr)
        return 1
    print(f"run_clang_tidy: {len(sources)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
