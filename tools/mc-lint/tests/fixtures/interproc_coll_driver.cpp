// Fixture (pairs with interproc_coll_helpers.cpp): MC-COLL-001 must
// fire *interprocedurally* exactly once. sync_ranks() looks harmless at
// this call site, but two helper levels down (sync_ranks -> flush_caches
// -> barrier) it issues a collective, and only rank 0 ever calls it: the
// other ranks deadlock at their next sync point. Scanned as a pair with
// the helpers TU by tools/mc-lint/tests/run_tests.py.
struct Comm {
  int rank() const;
  void barrier();
};

namespace mc {

void sync_ranks(Comm* comm);  // defined in interproc_coll_helpers.cpp

void finish_iteration(Comm* comm) {
  if (comm->rank() == 0) {
    sync_ranks(comm);  // SEEDED VIOLATION: MC-COLL-001 (via flush_caches)
  }
}

}  // namespace mc
