// Fixture: MC-WIN-004 (unfenced chain) must fire exactly once -- the
// one-sided put sits in a helper, and *nobody* on its call paths (the
// helper itself, its callees, or its only caller) ever opens or closes
// a fence epoch, so the traffic has no ordering story at all.
#include <cstddef>

namespace par {
class Window {};
class Ddi {
 public:
  void put(const Window&, std::size_t, const double*, std::size_t) {}
  void fence(const Window&) {}
};
}  // namespace par

void stage_block(par::Ddi& ddi, par::Window& w, const double* buf,
                 std::size_t n) {
  ddi.put(w, 0, buf, n);  // SEEDED VIOLATION: MC-WIN-004 (no fence anywhere)
}

void drive(par::Ddi& ddi, par::Window& w, const double* buf,
           std::size_t n) {
  stage_block(ddi, w, buf, n);
  // no fence here either: the epoch is never closed on any path
}
