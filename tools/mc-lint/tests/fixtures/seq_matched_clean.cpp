// Fixture: a rank test whose sibling arms expand to the *same*
// collective sequence (barrier then bcast on both sides -- rank 0 just
// does extra rank-local work first). Every rank issues the identical
// sequence whichever arm it takes, so the branch is rank-symmetric and
// both MC-COLL-001 and MC-SEQ-005 must stay silent.
struct Comm {
  int rank() const;
  void barrier();
  void bcast(double*, int, int);
  void log_line(const char*);
};

void exchange(Comm* comm, double* buf) {
  if (comm->rank() == 0) {
    comm->log_line("root collecting");  // rank-local: fine
    comm->barrier();
    comm->bcast(buf, 8, 0);
  } else {
    comm->barrier();
    comm->bcast(buf, 8, 0);
  }
}
