// Fixture: the same helper-owned put as interproc_win_unfenced.cpp, but
// the caller closes the epoch after the helper returns. MC-WIN-004 must
// stay silent: a fence on *any* call path (here, the caller fencing on
// the helper's behalf) gives the traffic its ordering story.
#include <cstddef>

namespace par {
class Window {};
class Ddi {
 public:
  void put(const Window&, std::size_t, const double*, std::size_t) {}
  void fence(const Window&) {}
};
}  // namespace par

void stage_block(par::Ddi& ddi, par::Window& w, const double* buf,
                 std::size_t n) {
  ddi.put(w, 0, buf, n);  // fenced by the caller below: fine
}

void drive(par::Ddi& ddi, par::Window& w, const double* buf,
           std::size_t n) {
  stage_block(ddi, w, buf, n);
  ddi.fence(w);  // closes the epoch the helper opened
}
