// Fixture: MC-RED-003 must fire exactly once -- `omp atomic` on a double
// accumulates in schedule order, which breaks bit-reproducible golden
// trajectories. The atomic sanction keeps MC-OMP-002 quiet, so the FP rule
// is what fires. (Not compiled; consumed by run_tests.py.)
void sum_energies(const double* e, long n, int nt) {
  double total = 0.0;
  long visited = 0;
#pragma omp parallel num_threads(nt) default(shared)
  {
#pragma omp for
    for (long i = 0; i < n; ++i) {
#pragma omp atomic
      total += e[i];  // SEEDED VIOLATION: MC-RED-003
#pragma omp atomic
      ++visited;  // integer counter: clean
    }
  }
}
