// Fixture: every check must stay quiet. Exercises the sanctioned forms:
// rank-uniform collectives, rank branches without collectives, master and
// atomic constructs, annotation-type method calls, in-region declarations,
// and an explicit allow directive. (Not compiled; consumed by
// run_tests.py.)
struct Comm {
  int rank() const;
  void barrier();
  void free_shared(const char* key);
};

struct Lane {
  void add(long i, double v) const;
};

long quartets = 0;
long debug_probe = 0;

void clean_build(Comm* comm, Lane lane, const double* x, long n, int nt) {
  if (comm->rank() == 0) {
    comm->free_shared("counters");  // rank-local op: not a collective
  }
  comm->barrier();  // uniform: every rank passes
  long claimed = 0;
#pragma omp parallel num_threads(nt) default(shared)
  {
    long mine = 0;
    double partial = 0.0;
    for (long i = 0; i < n; ++i) {
      partial += x[i];       // private accumulation
      lane.add(i, partial);  // annotation-type method call
      ++mine;
    }
#pragma omp master
    claimed = mine;  // master-sanctioned publication
#pragma omp atomic
    quartets += mine;  // integer counter merge
    // mc-lint: allow(MC-OMP-002): debug probe, ordering covered by tests
    debug_probe = mine;
  }
  comm->barrier();
}
