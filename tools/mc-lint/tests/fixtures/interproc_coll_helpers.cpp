// Fixture (pairs with interproc_coll_driver.cpp): a helper chain that
// bottoms out in a collective. This TU is clean on its own -- nothing
// here is rank-dependent. The deadlock lives at the rank-guarded call
// site in the driver TU, two helper levels above the barrier.
struct Comm {
  int rank() const;
  void barrier();
};

namespace mc {

void flush_caches(Comm* comm) {
  comm->barrier();  // level 2: the actual collective
}

void sync_ranks(Comm* comm) {
  flush_caches(comm);  // level 1: plain forwarding
}

}  // namespace mc
