// Fixture: MC-FP-006 must fire at build()'s call into the chain -- the
// golden-trajectory-checked entry point reaches an unordered FP
// reduction two calls down (build -> contract_density ->
// accumulate_block). The MC-RED-003 finding at the accumulation itself
// also stands; FP-006 adds the *flow* into golden-checked state.
void accumulate_block(double* sum, const double* x, int n) {
  double local = 0.0;
#pragma omp parallel for reduction(+ : local)
  for (int i = 0; i < n; ++i) local += x[i];  // SEEDED: MC-RED-003
  *sum += local;
}

void contract_density(double* sum, const double* x, int n) {
  accumulate_block(sum, x, n);
}

double build(const double* x, int n) {
  double f = 0.0;
  contract_density(&f, x, n);  // SEEDED VIOLATION: MC-FP-006
  return f;
}
