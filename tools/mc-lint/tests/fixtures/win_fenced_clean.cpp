// Fixture: the same one-sided traffic as win_unfenced_access.cpp but with
// the fence epochs in place -- put, fence (publish), get, fence (close).
// MC-WIN-004 must stay silent: the file has an ordering story.

#include <cstddef>

namespace par {
class Window {};
class Ddi {
 public:
  void put(const Window&, std::size_t, const double*, std::size_t) {}
  void get(const Window&, std::size_t, double*, std::size_t) {}
  void fence(const Window&) {}
};
}  // namespace par

void publish_then_read(par::Ddi& ddi, par::Window& w, double* buf,
                       std::size_t n) {
  ddi.put(w, 0, buf, n);
  ddi.fence(w);  // publish epoch closed: puts visible everywhere
  ddi.get(w, 0, buf, n);
  ddi.fence(w);  // read epoch closed before the window is reused
}
