// Fixture: one-sided window traffic with no fence anywhere in the file.
// The put's visibility and the get's freshness are both unordered -- the
// file relies on some *other* translation unit fencing on its behalf,
// which is exactly the bug class MC-WIN-004 exists to catch. Seeded
// violations: the put and the get (two findings, one per access).

#include <cstddef>

namespace par {
class Window {};
class Ddi {
 public:
  void put(const Window&, std::size_t, const double*, std::size_t) {}
  void get(const Window&, std::size_t, double*, std::size_t) {}
  void fence(const Window&) {}
};
}  // namespace par

void publish_then_read(par::Ddi& ddi, par::Window& w, double* buf,
                       std::size_t n) {
  ddi.put(w, 0, buf, n);  // unordered publish
  ddi.get(w, 0, buf, n);  // may read stale data
}
