// Fixture: MC-COLL-001 divergent-exit sub-rule must fire exactly once --
// after a rank-dependent branch returns, a later collective in the same
// scope is only reached by the ranks that did not take the early exit.
// (Not compiled; consumed by tools/mc-lint/tests/run_tests.py.)
struct Comm {
  int rank() const;
  void barrier();
};

void skip_nonroot_then_sync(Comm* comm, bool verbose) {
  if (comm->rank() != 0) return;  // divergent exit
  if (verbose) {
    // rank-uniform work on the surviving rank only
  }
  comm->barrier();  // SEEDED VIOLATION: MC-COLL-001 (unreachable on rank!=0)
}

void uniform_sync(Comm* comm) {
  comm->barrier();  // different scope: clean
}
