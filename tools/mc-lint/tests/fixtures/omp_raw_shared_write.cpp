// Fixture: MC-OMP-002 must fire exactly once -- a raw compound assignment
// to team-shared state inside an omp parallel region, not routed through
// an annotation type or a sanctioned construct. The target is an integer
// so MC-RED-003 stays quiet. (Not compiled; consumed by run_tests.py.)
long tasks_done = 0;

void count_tasks(int nt, long n) {
  long published = 0;
#pragma omp parallel num_threads(nt) default(shared)
  {
    long mine = 0;
    for (long i = 0; i < n; ++i) {
      ++mine;  // private: declared in the region
    }
    tasks_done += mine;  // SEEDED VIOLATION: MC-OMP-002
#pragma omp master
    published = mine;  // master-sanctioned: clean
  }
}
