// Fixture: MC-WIN-004's epoch state machine must fire exactly twice --
// once for destroying the window while a put issued after the last
// fence is still pending (the open epoch is never closed), and once for
// the get that touches the window after its free.
#include <cstddef>
#include <string>

namespace par {
class Window {};
class Ddi {
 public:
  Window create(const std::string&, std::size_t) { return Window{}; }
  void put(const Window&, std::size_t, const double*, std::size_t) {}
  void get(const Window&, std::size_t, double*, std::size_t) {}
  void fence(const Window&) {}
  void destroy(const Window&) {}
};
}  // namespace par

void leak_epoch(par::Ddi& ddi, const double* src, double* dst) {
  par::Window w = ddi.create("fixture:w", 8);
  ddi.put(w, 0, src, 4);
  ddi.fence(w);            // first epoch closed correctly
  ddi.put(w, 4, src, 4);
  ddi.destroy(w);          // SEEDED VIOLATION: win_free inside open epoch
  ddi.get(w, 0, dst, 4);   // SEEDED VIOLATION: access after win_free
}
