// Fixture: MC-RED-003 must fire exactly once -- a floating-point
// reduction clause combines partial sums in an unspecified order. The
// clause also privatizes the variable, so MC-OMP-002 stays quiet by the
// reduction-clause rule. (Not compiled; consumed by run_tests.py.)
double grid_integral(const double* w, long n, int nt) {
  double acc = 0.0;
  long hits = 0;
#pragma omp parallel for num_threads(nt) reduction(+ : acc) \
    reduction(+ : hits)
  for (long i = 0; i < n; ++i) {
    acc += w[i];  // SEEDED VIOLATION via the clause above: MC-RED-003
    ++hits;       // integer reduction: clean
  }
  return acc;
}
