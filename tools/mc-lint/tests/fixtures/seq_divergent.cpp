// Fixture: MC-SEQ-005 must fire at the branch -- both sibling arms of
// the rank test issue collectives, but *different* ones: rank 0 enters
// bcast while every other rank sits in barrier, and the job interlocks.
// The lexical MC-COLL-001 findings on each collective also stand (each
// one really is skipped by some ranks), so this fixture carries three
// findings in total.
struct Comm {
  int rank() const;
  void barrier();
  void bcast(double*, int, int);
};

void exchange(Comm* comm, double* buf) {
  if (comm->rank() == 0) {    // SEEDED VIOLATION: MC-SEQ-005 (divergent)
    comm->bcast(buf, 8, 0);   // SEEDED VIOLATION: MC-COLL-001
  } else {
    comm->barrier();          // SEEDED VIOLATION: MC-COLL-001
  }
}
