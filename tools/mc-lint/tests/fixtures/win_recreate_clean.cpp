// Fixture: destroy-then-recreate under the same handle name (the
// window-key-reuse pattern the par tests exercise on purpose). The epoch
// machine must track the re-creation and stay silent: every access is
// fenced, and the get targets the *fresh* window, not the freed one.
#include <cstddef>
#include <string>

namespace par {
class Window {};
class Ddi {
 public:
  Window create(const std::string&, std::size_t) { return Window{}; }
  void put(const Window&, std::size_t, const double*, std::size_t) {}
  void get(const Window&, std::size_t, double*, std::size_t) {}
  void fence(const Window&) {}
  void destroy(const Window&) {}
};
}  // namespace par

void reuse_key(par::Ddi& ddi, const double* src, double* dst) {
  par::Window w = ddi.create("fixture:reuse", 8);
  ddi.put(w, 0, src, 4);
  ddi.fence(w);
  ddi.destroy(w);          // epoch closed: clean free
  par::Window w2 = ddi.create("fixture:reuse", 8);
  ddi.get(w2, 0, dst, 4);  // fresh storage, not the freed window
  ddi.fence(w2);
  ddi.destroy(w2);
}
