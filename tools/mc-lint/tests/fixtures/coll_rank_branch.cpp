// Fixture: MC-COLL-001 must fire exactly once -- a collective lexically
// inside a rank-dependent branch deadlocks every other rank at the next
// sync point. (Not compiled; consumed by tools/mc-lint/tests/run_tests.py.)
struct Comm {
  int rank() const;
  int size() const;
  void barrier();
  void log_line(const char* msg);
};

void report_and_sync(Comm* comm) {
  if (comm->rank() == 0) {
    comm->log_line("iteration done");  // rank-local work: fine
    comm->barrier();                   // SEEDED VIOLATION: MC-COLL-001
  }
  comm->log_line("after");  // collective outside the branch would be fine
}
