#!/usr/bin/env python3
"""Self-test for mc-lint v2: every fixture's seeded violation fires
exactly as expected (single files and cross-TU groups), the real tree is
clean, the suppression machinery (inline allows, the ledger, SARIF
suppressions) behaves, and the SARIF log is structurally sound.

Fixtures run under the text engine always, and under the clang engine
too when clang.cindex + a loadable libclang are present -- both engines
must report identical findings.

Run from anywhere: paths are resolved relative to this file. Wired into
ctest as `mc_lint_selftest` and into the CI lint job.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
MC_LINT = os.path.join(HERE, "..", "mc_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
REPO = os.path.abspath(os.path.join(HERE, "..", "..", ".."))

# fixture group -> list of expected (check, substring-of-message)
# findings, in (path, line) order. Single-file groups are one fixture;
# multi-file groups scan several TUs together so the call graph crosses
# translation units.
EXPECTED = {
    ("coll_rank_branch.cpp",): [
        ("MC-COLL-001", "rank-dependent branch")],
    ("coll_divergent_exit.cpp",): [
        ("MC-COLL-001", "unreachable on some ranks")],
    ("omp_raw_shared_write.cpp",): [
        ("MC-OMP-002", "tasks_done")],
    ("red_atomic_double.cpp",): [
        ("MC-RED-003", "total")],
    ("red_reduction_clause.cpp",): [
        ("MC-RED-003", "acc")],
    ("win_unfenced_access.cpp",): [
        ("MC-WIN-004", "no fence epoch anywhere"),
        ("MC-WIN-004", "no fence epoch anywhere"),
    ],
    ("win_fenced_clean.cpp",): [],
    ("clean.cpp",): [],
    # -- interprocedural (v2) --
    ("interproc_coll_helpers.cpp", "interproc_coll_driver.cpp"): [
        ("MC-COLL-001", "sync_ranks -> flush_caches -> barrier")],
    ("interproc_coll_helpers.cpp",): [],  # clean without the driver TU
    ("interproc_win_unfenced.cpp",): [
        ("MC-WIN-004", "callers checked: drive")],
    ("interproc_win_caller_fenced.cpp",): [],
    ("win_free_open_epoch.cpp",): [
        ("MC-WIN-004", "inside an open epoch"),
        ("MC-WIN-004", "after its win_free"),
    ],
    ("win_recreate_clean.cpp",): [],
    ("seq_divergent.cpp",): [
        ("MC-SEQ-005", "divergent collective sequences"),
        ("MC-COLL-001", "bcast"),
        ("MC-COLL-001", "barrier"),
    ],
    ("seq_matched_clean.cpp",): [],
    ("fp_golden_chain.cpp",): [
        ("MC-RED-003", "local"),
        ("MC-FP-006", "golden-trajectory-checked 'build'"),
    ],
}


def clang_engine_available():
    try:
        from clang import cindex  # noqa: PLC0415
        cindex.Index.create()
        return True
    except Exception:
        return False


def run_lint(args, ok_codes=(0, 1)):
    proc = subprocess.run(
        [sys.executable, MC_LINT, *args],
        capture_output=True, text=True, check=False)
    if proc.returncode not in ok_codes:
        raise SystemExit(
            f"mc-lint exited {proc.returncode} (expected one of "
            f"{ok_codes}):\n{proc.stderr}\n{proc.stdout}")
    return proc


def run_lint_json(args):
    proc = run_lint(["--json", *args])
    return json.loads(proc.stdout), proc.returncode


def check_fixtures(engine, failures):
    for group, expected in sorted(EXPECTED.items()):
        paths = [os.path.join(FIXTURES, name) for name in group]
        findings, rc = run_lint_json(
            [*paths, "--omp-scope", "", "--engine", engine])
        label = "+".join(group) + f" [{engine}]"
        got = [(f["check"], f["message"]) for f in findings]
        if len(got) != len(expected):
            failures.append(
                f"{label}: expected {len(expected)} finding(s), got "
                f"{len(got)}: {json.dumps(findings, indent=2)}")
            continue
        for (check, frag), (gcheck, gmsg) in zip(expected, got):
            if check != gcheck or frag not in gmsg:
                failures.append(
                    f"{label}: expected ({check}, *{frag}*), got "
                    f"({gcheck}, {gmsg})")
        if expected and rc != 1:
            failures.append(f"{label}: expected exit 1, got {rc}")
        if not expected and rc != 0:
            failures.append(f"{label}: expected exit 0, got {rc}")


def check_tree(failures):
    # The real tree must be clean with the default scoping (MC-OMP-002
    # applies to src/). tests/ and tools/ ride along: deliberately-
    # divergent fault-injection collectives carry allow directives, and
    # the lint fixtures are excluded from directory scans.
    paths = [os.path.join(REPO, d) for d in ("src", "tests", "tools")]
    findings, rc = run_lint_json([*paths, "--engine", "text"])
    if findings or rc != 0:
        failures.append(
            f"real tree not clean (exit {rc}): "
            f"{json.dumps(findings, indent=2)}")
    # ... and stale-allow auditing over the tree must be clean too.
    findings, rc = run_lint_json(
        [*paths, "--engine", "text", "--audit-allows"])
    if findings or rc != 0:
        failures.append(
            f"--audit-allows not clean over the tree (exit {rc}): "
            f"{json.dumps(findings, indent=2)}")


def check_directives(failures):
    with tempfile.TemporaryDirectory() as td:
        # An allow directive without a reason is itself a finding.
        bad = os.path.join(td, "bad_allow.cpp")
        with open(bad, "w") as f:
            f.write("// mc-lint: allow(MC-OMP-002)\nint x;\n")
        findings, _ = run_lint_json([bad, "--omp-scope", ""])
        if not any(f["check"] == "MC-LINT-DIRECTIVE" for f in findings):
            failures.append(
                "allow directive without a reason was not reported")

        # A stale allow (suppressing nothing) is flagged by --audit-allows
        # and only by it.
        stale = os.path.join(td, "stale_allow.cpp")
        with open(stale, "w") as f:
            f.write("void f() {\n"
                    "  // mc-lint: allow(MC-COLL-001): nothing here\n"
                    "  int x = 0;\n"
                    "  (void)x;\n"
                    "}\n")
        findings, rc = run_lint_json([stale, "--omp-scope", ""])
        if findings or rc != 0:
            failures.append(
                f"stale allow flagged without --audit-allows: {findings}")
        findings, rc = run_lint_json(
            [stale, "--omp-scope", "", "--audit-allows"])
        if not any(f["check"] == "MC-LINT-DIRECTIVE"
                   and "stale allow" in f["message"] for f in findings):
            failures.append(
                "--audit-allows missed a stale allow directive")


def check_ledger(failures):
    fixture = os.path.join(FIXTURES, "coll_rank_branch.cpp")
    rel = os.path.relpath(fixture, REPO).replace(os.sep, "/")
    with tempfile.TemporaryDirectory() as td:
        # A reasonless ledger entry is a hard configuration error.
        bad = os.path.join(td, "bad_ledger.json")
        with open(bad, "w") as f:
            json.dump({"version": 1, "suppressions": [
                {"check": "MC-COLL-001", "path": rel}]}, f)
        run_lint([fixture, "--suppressions", bad], ok_codes=(2,))

        # A reasoned entry suppresses the finding: exit 0, and the SARIF
        # log still shows the result -- struck through with the
        # justification -- instead of dropping it.
        good = os.path.join(td, "ledger.json")
        with open(good, "w") as f:
            json.dump({"version": 1, "suppressions": [
                {"check": "MC-COLL-001", "path": rel,
                 "reason": "fixture: seeded violation"}]}, f)
        sarif_path = os.path.join(td, "out.sarif")
        proc = run_lint([fixture, "--suppressions", good,
                         "--sarif", sarif_path], ok_codes=(0,))
        if "suppressed" not in proc.stderr:
            failures.append(
                "ledger-suppressed finding not reported on stderr")
        with open(sarif_path) as f:
            log = json.load(f)
        results = log["runs"][0]["results"]
        if len(results) != 1:
            failures.append(
                f"suppressed SARIF log has {len(results)} results, "
                "expected 1")
        else:
            supp = results[0].get("suppressions", [])
            if (not supp or supp[0].get("kind") != "external"
                    or "seeded" not in supp[0].get("justification", "")):
                failures.append(
                    f"SARIF suppression malformed: {results[0]}")

        # An unused ledger entry is flagged under --audit-allows.
        clean = os.path.join(FIXTURES, "clean.cpp")
        findings, _ = run_lint_json(
            [clean, "--suppressions", good, "--audit-allows"])
        if not any("stale ledger entry" in f["message"] for f in findings):
            failures.append("--audit-allows missed an unused ledger entry")


def check_sarif_shape(failures):
    fixture = os.path.join(FIXTURES, "win_free_open_epoch.cpp")
    with tempfile.TemporaryDirectory() as td:
        sarif_path = os.path.join(td, "out.sarif")
        run_lint([fixture, "--sarif", sarif_path])
        with open(sarif_path) as f:
            log = json.load(f)
        if log.get("version") != "2.1.0":
            failures.append(f"SARIF version {log.get('version')}")
        run = log["runs"][0]
        driver = run["tool"]["driver"]
        rule_ids = [r["id"] for r in driver["rules"]]
        for rid in ("MC-COLL-001", "MC-WIN-004", "MC-SEQ-005",
                    "MC-FP-006"):
            if rid not in rule_ids:
                failures.append(f"SARIF rules missing {rid}")
        for res in run["results"]:
            if res["ruleId"] != driver["rules"][res["ruleIndex"]]["id"]:
                failures.append(f"SARIF ruleIndex mismatch: {res}")
            loc = res["locations"][0]["physicalLocation"]
            if loc["artifactLocation"].get("uriBaseId") != "SRCROOT":
                failures.append(f"SARIF result not SRCROOT-based: {res}")
        if "SRCROOT" not in run.get("originalUriBaseIds", {}):
            failures.append("SARIF originalUriBaseIds missing SRCROOT")
        if len(run["results"]) != 2:
            failures.append(
                f"SARIF has {len(run['results'])} results, expected 2")


def main():
    failures = []

    engines = ["text"]
    if clang_engine_available():
        engines.append("clang")
    for engine in engines:
        check_fixtures(engine, failures)
    check_tree(failures)
    check_directives(failures)
    check_ledger(failures)
    check_sarif_shape(failures)

    if failures:
        print("mc-lint selftest FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"mc-lint selftest: {len(EXPECTED)} fixture group(s) x "
          f"{'+'.join(engines)} engine(s), tree scan, directive/ledger/"
          "SARIF checks OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
