#!/usr/bin/env python3
"""Self-test for mc-lint: every fixture's seeded violation fires exactly
once (and nothing else fires on it), and the real tree is clean.

Run from anywhere: paths are resolved relative to this file. Wired into
ctest as `mc_lint_selftest` and into the CI lint job.
"""

import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
MC_LINT = os.path.join(HERE, "..", "mc_lint.py")
FIXTURES = os.path.join(HERE, "fixtures")
REPO = os.path.abspath(os.path.join(HERE, "..", "..", ".."))

# fixture -> list of expected (check, substring-of-message) findings.
EXPECTED = {
    "coll_rank_branch.cpp": [("MC-COLL-001", "rank-dependent branch")],
    "coll_divergent_exit.cpp": [("MC-COLL-001", "unreachable on some ranks")],
    "omp_raw_shared_write.cpp": [("MC-OMP-002", "tasks_done")],
    "red_atomic_double.cpp": [("MC-RED-003", "total")],
    "red_reduction_clause.cpp": [("MC-RED-003", "acc")],
    "win_unfenced_access.cpp": [
        ("MC-WIN-004", "no fence anywhere"),
        ("MC-WIN-004", "no fence anywhere"),
    ],
    "win_fenced_clean.cpp": [],
    "clean.cpp": [],
}


def run_lint(args):
    proc = subprocess.run(
        [sys.executable, MC_LINT, "--json", *args],
        capture_output=True, text=True, check=False)
    if proc.returncode not in (0, 1):
        raise SystemExit(
            f"mc-lint crashed (exit {proc.returncode}):\n{proc.stderr}")
    return json.loads(proc.stdout), proc.returncode


def main():
    failures = []

    for name, expected in sorted(EXPECTED.items()):
        path = os.path.join(FIXTURES, name)
        findings, rc = run_lint([path, "--omp-scope", "", "--engine", "text"])
        got = [(f["check"], f["message"]) for f in findings]
        if len(got) != len(expected):
            failures.append(
                f"{name}: expected {len(expected)} finding(s), got "
                f"{len(got)}: {json.dumps(findings, indent=2)}")
            continue
        for (check, frag), (gcheck, gmsg) in zip(expected, got):
            if check != gcheck or frag not in gmsg:
                failures.append(
                    f"{name}: expected ({check}, *{frag}*), got "
                    f"({gcheck}, {gmsg})")
        if expected and rc != 1:
            failures.append(f"{name}: expected exit 1, got {rc}")
        if not expected and rc != 0:
            failures.append(f"{name}: expected exit 0, got {rc}")

    # The real tree must be clean with the default scoping (MC-OMP-002
    # applies to src/). tests/ rides along: its deliberately-divergent
    # fault-injection collectives carry allow directives.
    src = os.path.join(REPO, "src")
    tests = os.path.join(REPO, "tests")
    findings, rc = run_lint([src, tests, "--engine", "text"])
    if findings or rc != 0:
        failures.append(
            f"real tree not clean (exit {rc}): "
            f"{json.dumps(findings, indent=2)}")

    # The allow directive requires a reason.
    import tempfile
    with tempfile.TemporaryDirectory() as td:
        bad = os.path.join(td, "bad_allow.cpp")
        with open(bad, "w") as f:
            f.write("// mc-lint: allow(MC-OMP-002)\nint x;\n")
        findings, rc = run_lint([bad, "--omp-scope", ""])
        if not any(f["check"] == "MC-LINT-DIRECTIVE" for f in findings):
            failures.append(
                "allow directive without a reason was not reported")

    if failures:
        print("mc-lint selftest FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"mc-lint selftest: {len(EXPECTED)} fixtures + tree scan OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
