"""Whole-program source model: per-function summaries and the call graph.

Every scanned file is reduced to a list of FunctionSummary objects. A
summary is an ordered *event tree* of everything the protocol rules care
about inside one function body:

  ("coll", name, line)                 direct minimpi collective call
  ("fence", win, line)                 win_fence / .fence() epoch boundary
  ("win", op, win, line)               one-sided put/get/acc traffic
  ("create", win, line)                window creation (collective)
  ("free", win, line)                  win_free / ddi destroy (collective)
  ("call", name, line)                 call to a possibly-project function
  ("exit", line)                       return / throw
  ("branch", line, cond, cond_calls, then_events, else_events)
                                       if/while with nested event lists

plus a flat list of unordered-FP-accumulation events (from `#pragma omp`
scanning) and a `returns_rank` flag (some `return` expression mentions
the rank), which lets rank-dependence propagate through predicate
helpers like `bool is_master() { return rank_ == 0; }`.

The ProgramIndex resolves call events by the last component of the
callee name (C++ overload/ownership resolution is deliberately out of
scope -- ambiguous names union their candidates) and memoizes the
transitive facts the interprocedural rules consume: does a function
(transitively) issue collectives, fence, or accumulate FP out of order,
and what collective *sequence* does it expand to.

Loops are linearized (a loop body contributes its events once) and both
arms of a branch are kept; the rules decide how to combine them. This is
a linearization of paths, not a path-sensitive dataflow -- deliberate:
the protocols under check are themselves straight-line epoch sequences.
"""

from __future__ import annotations

import re

from engine import (COLLECTIVES, RANK_COND_RE, WIN_OPS, blank_pragmas,
                    CLAUSE_REDUCTION_RE, fp_declared, pragmas,
                    statement_end, tokenize_offsets)

CONTROL_KEYWORDS = {
    "if", "while", "for", "switch", "do", "else", "return", "throw",
    "case", "default", "break", "continue", "goto", "try", "catch",
    "sizeof", "alignof", "decltype", "static_assert", "new", "delete",
    "using", "typedef", "template", "typename", "namespace", "operator",
    "class", "struct", "union", "enum", "public", "private", "protected",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "co_return", "co_await", "co_yield", "noexcept", "alignas", "explicit",
    "and", "or", "not", "defined",
}

FN_QUALIFIERS = {"const", "noexcept", "override", "final", "mutable",
                 "&", "&&", "volatile", "try"}

# Identifier-ish call names that are never project functions; skipping
# them keeps the call graph (and ambiguity) small.
CALL_NOISE = {
    "assert", "printf", "fprintf", "snprintf", "memcpy", "memset",
    "push_back", "emplace_back", "reserve", "resize", "size", "empty",
    "begin", "end", "data", "clear", "insert", "erase", "find", "count",
    "at", "front", "back", "str", "c_str", "substr", "append", "pop_back",
    "min", "max", "abs", "sqrt", "exp", "pow", "move", "swap", "get",
    "make_unique", "make_shared", "to_string", "stoi", "stod", "load",
    "store", "fetch_add", "fetch_sub", "lock", "unlock", "wait",
    "notify_all", "notify_one", "emplace", "first", "second", "value",
    "has_value", "EXPECT_EQ", "EXPECT_NE", "EXPECT_TRUE", "EXPECT_FALSE",
    "ASSERT_EQ", "ASSERT_NE", "ASSERT_TRUE", "ASSERT_FALSE", "EXPECT_LT",
    "EXPECT_GT", "EXPECT_LE", "EXPECT_GE", "EXPECT_NEAR", "ASSERT_NEAR",
    "EXPECT_THROW", "EXPECT_NO_THROW", "ASSERT_THROW", "EXPECT_DOUBLE_EQ",
    "SCOPED_TRACE", "FAIL", "ADD_FAILURE",
}

WIN_PRIMITIVES = {"win_put": "put", "win_get": "get", "win_acc": "acc"}

DDI_BASE_RE = re.compile(r"ddi", re.IGNORECASE)


class FunctionSummary:
    def __init__(self, name, qual, path, line, sig_line_span):
        self.name = name          # last component, e.g. "build"
        self.qual = qual          # as written, e.g. "DistFockBuilder::build"
        self.path = path
        self.line = line
        self.sig_line_span = sig_line_span  # (first, last) line of the def
        self.events = []          # event tree (see module docstring)
        self.fp_events = []       # [(line, description)]
        self.returns_rank = False

    def __repr__(self):
        return f"<fn {self.qual} {self.path}:{self.line}>"


def _match_forward(toks, i, open_t, close_t):
    """Index of the token matching toks[i] (an open_t)."""
    depth = 0
    n = len(toks)
    while i < n:
        t = toks[i][0]
        if t == open_t:
            depth += 1
        elif t == close_t:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return n - 1


def _name_before_paren(toks, i):
    """Walk back from toks[i] == '(' to the (possibly qualified) name of
    what is being called/declared. Returns (last_component, qualified,
    start_index) or (None, None, i)."""
    j = i - 1
    parts = []
    while j >= 0:
        t = toks[j][0]
        if re.fullmatch(r"[A-Za-z_]\w*", t):
            parts.append(t)
            j -= 1
            if j >= 0 and toks[j][0] == "~":
                parts[-1] = "~" + parts[-1]
                j -= 1
        else:
            break
        if j >= 0 and toks[j][0] == "::":
            parts.append("::")
            j -= 1
            continue
        break
    if not parts or parts[0] == "::":
        return (None, None, i)
    qual = "".join(reversed(parts))
    last = parts[0]
    return (last, qual, j + 1)


def _skip_template_args(toks, k):
    """toks[k] == '<': best-effort skip of a template argument list."""
    depth = 0
    n = len(toks)
    while k < n:
        t = toks[k][0]
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return k + 1
        elif t in (";", "{", "}"):
            return k  # not a template list after all
        k += 1
    return k


def _skip_fn_qualifiers(toks, k):
    n = len(toks)
    while k < n:
        t = toks[k][0]
        if t in FN_QUALIFIERS and t != "try":
            k += 1
            if t == "noexcept" and k < n and toks[k][0] == "(":
                k = _match_forward(toks, k, "(", ")") + 1
            continue
        if t == "->":  # trailing return type
            k += 1
            while k < n and toks[k][0] not in ("{", ";", "=", ","):
                if toks[k][0] == "<":
                    k = _skip_template_args(toks, k)
                else:
                    k += 1
            continue
        break
    return k


def _skip_init_list(toks, k):
    """toks[k] == ':' after a constructor's ')': return the index of the
    body '{', or -1 if this does not parse as a member-init list."""
    n = len(toks)
    k += 1
    while k < n:
        # member or base name (possibly qualified / templated)
        saw_name = False
        while k < n:
            t = toks[k][0]
            if re.fullmatch(r"[A-Za-z_]\w*", t) or t == "::":
                saw_name = True
                k += 1
            elif t == "<" and saw_name:
                k = _skip_template_args(toks, k)
            elif t == "." and k + 1 < n and toks[k + 1][0] == ".":
                k += 1  # variadic '...'
            else:
                break
        if not saw_name:
            return -1
        if k < n and toks[k][0] == "(":
            k = _match_forward(toks, k, "(", ")") + 1
        elif k < n and toks[k][0] == "{":
            k = _match_forward(toks, k, "{", "}") + 1
        else:
            return -1
        if k < n and toks[k][0] == ",":
            k += 1
            continue
        if k < n and toks[k][0] == "{":
            return k
        return -1
    return -1


def extract_functions(model):
    """FunctionSummary list for every function/method definition found in
    the file. The scanner walks the pragma-blanked token stream; when it
    recognizes `name ( params ) qualifiers { body }` it records the body
    span, parses the body into an event tree, and resumes *after* the
    body, so statement-level calls never masquerade as definitions."""
    text = blank_pragmas(model)
    toks = tokenize_offsets(text, model)
    n = len(toks)
    funcs = []
    i = 0
    while i < n:
        t = toks[i][0]
        if t != "(":
            i += 1
            continue
        name, qual, _ = _name_before_paren(toks, i)
        if name is None or name in CONTROL_KEYWORDS:
            i = _match_forward(toks, i, "(", ")") + 1
            continue
        close = _match_forward(toks, i, "(", ")")
        k = _skip_fn_qualifiers(toks, close + 1)
        if k < n and toks[k][0] == ":":
            body_open = _skip_init_list(toks, k)
            if body_open < 0:
                i = close + 1
                continue
            k = body_open
        if k >= n or toks[k][0] != "{":
            i = close + 1
            continue
        body_close = _match_forward(toks, k, "{", "}")
        fn = FunctionSummary(
            name, qual, model.path, toks[i][1],
            (toks[i][1], toks[body_close][1]))
        parser = _BodyParser(toks, model)
        fn.events = parser.parse_stmts(k + 1, body_close)
        fn.returns_rank = parser.returns_rank
        _attach_fp_events(model, fn, toks[k][2], toks[body_close][2])
        funcs.append(fn)
        i = body_close + 1
    return funcs


def _attach_fp_events(model, fn, body_start, body_end):
    """Unordered-FP-accumulation events inside this body span, detected
    from the omp pragmas (same predicates as the lexical MC-RED-003)."""
    import rules  # noqa: PLC0415 (cycle-free: rules does not import us)
    for start, end, ptext in pragmas(model):
        if not (body_start <= start < body_end):
            continue
        line = model.line_of(start)
        for m in CLAUSE_REDUCTION_RE.finditer(ptext):
            for nm in (x.strip() for x in m.group(1).split(",")):
                if nm and fp_declared(model, nm):
                    fn.fp_events.append(
                        (line, f"fp reduction clause over '{nm}'"))
        if re.search(r"\bomp\s+atomic\b", ptext):
            stmt_start = end
            stmt = model.cleaned[
                stmt_start:statement_end(model.cleaned, stmt_start)]
            am = rules.ASSIGN_OP_RE.search(stmt)
            im = rules.INCDEC_RE.search(stmt)
            base = None
            if am:
                base, _ = rules.lvalue_base(
                    model.cleaned, stmt_start + am.start())
            elif im:
                base = im.group(2) or im.group(3)
            if base and fp_declared(model, base):
                fn.fp_events.append(
                    (model.line_of(stmt_start),
                     f"omp atomic on floating-point '{base}'"))


class _BodyParser:
    def __init__(self, toks, model):
        self.toks = toks
        self.model = model
        self.returns_rank = False

    def parse_stmts(self, i, end):
        events = []
        while i < end:
            i = self.parse_stmt(i, end, events)
        return events

    def parse_stmt(self, i, end, out):
        """Parse one statement starting at token i; append its events to
        `out`; return the index just past it."""
        toks = self.toks
        if i >= end:
            return end
        t, ln, _ = toks[i]
        if t == "{":
            close = _match_forward(toks, i, "{", "}")
            out.extend(self.parse_stmts(i + 1, min(close, end)))
            return min(close, end) + 1
        if t in ("if", "while"):
            return self.parse_branch(i, end, out)
        if t in ("for", "switch"):
            j = i + 1
            while j < end and toks[j][0] != "(":
                j += 1
            if j >= end:
                return end
            close = _match_forward(toks, j, "(", ")")
            # condition/range expressions can contain calls worth seeing
            self.scan_expr(j + 1, min(close, end), out)
            return self.parse_stmt(close + 1, end, out)
        if t == "do":
            return self.parse_stmt(i + 1, end, out)
        if t == "else":
            # dangling else (shouldn't happen: parse_branch consumes it)
            return self.parse_stmt(i + 1, end, out)
        if t in ("return", "throw", "co_return"):
            out.append(("exit", ln))
            j = i + 1
            expr = []
            depth = 0
            while j < end:
                tt = toks[j][0]
                if tt in "([{":
                    depth += 1
                elif tt in ")]}":
                    depth -= 1
                elif tt == ";" and depth <= 0:
                    break
                expr.append(tt)
                j += 1
            txt = " ".join(expr)
            if RANK_COND_RE.search(txt):
                self.returns_rank = True
            self.scan_expr(i + 1, j, out)
            return j + 1
        # plain statement: scan to ';' at depth 0 (or a '{' opening a
        # lambda/compound, which scan_expr descends through)
        j = i
        depth = 0
        while j < end:
            tt = toks[j][0]
            if tt in "([{":
                depth += 1
            elif tt in ")]}":
                depth -= 1
            elif tt == ";" and depth <= 0:
                break
            j += 1
        self.scan_expr(i, j, out)
        return j + 1

    def parse_branch(self, i, end, out):
        toks = self.toks
        kw, ln, _ = toks[i]
        j = i + 1
        constexpr_if = False
        while j < end and toks[j][0] != "(":
            if toks[j][0] == "constexpr":
                constexpr_if = True
            j += 1
        if j >= end:
            return end
        close = _match_forward(toks, j, "(", ")")
        cond_toks = [toks[k][0] for k in range(j + 1, min(close, end))]
        cond = " ".join(cond_toks)
        cond_calls = []
        for k in range(j + 1, min(close, end) - 1):
            nm = toks[k][0]
            if (re.fullmatch(r"[A-Za-z_]\w*", nm)
                    and toks[k + 1][0] == "("
                    and nm not in CONTROL_KEYWORDS
                    and nm not in CALL_NOISE):
                cond_calls.append(nm)
        then_events = []
        k = self.parse_stmt(close + 1, end, then_events)
        else_events = []
        if kw == "if" and k < end and toks[k][0] == "else":
            k = self.parse_stmt(k + 1, end, else_events)
        if constexpr_if:
            # compile-time dispatch: both arms exist in one binary only;
            # treat as transparent, never rank-dependent.
            out.extend(then_events)
            out.extend(else_events)
            return k
        out.append(("branch", ln, cond, cond_calls, then_events,
                    else_events))
        return k

    def scan_expr(self, i, end, out):
        """Collect coll/win/fence/free/call events from an expression or
        statement span (lambda bodies included transparently)."""
        toks = self.toks
        k = i
        while k < end:
            t, ln, _ = toks[k]
            if not re.fullmatch(r"[A-Za-z_]\w*", t):
                k += 1
                continue
            nxt = toks[k + 1][0] if k + 1 < end else ""
            if nxt != "(":
                k += 1
                continue
            prev = toks[k - 1][0] if k > 0 else ""
            member = prev in (".", "->")
            base = toks[k - 2][0] if member and k >= 2 else ""
            if t in COLLECTIVES:
                if prev != "::":  # skip out-of-class definitions
                    out.append(("coll", t, ln))
                k += 2
                continue
            if t in WIN_PRIMITIVES:
                win = self.first_arg_name(k + 1, end)
                out.append(("win", WIN_PRIMITIVES[t], win, ln))
                k += 2
                continue
            if t == "win_fence":
                out.append(("fence", self.first_arg_name(k + 1, end), ln))
                k += 2
                continue
            if t == "win_free":
                out.append(("free", self.first_arg_name(k + 1, end), ln))
                k += 2
                continue
            if t == "win_create":
                out.append(("create", self.lhs_name(k), ln))
                k += 2
                continue
            if t == "fence" and member:
                out.append(("fence", self.first_arg_name(k + 1, end), ln))
                k += 2
                continue
            if member and DDI_BASE_RE.search(base):
                if t in WIN_OPS:
                    out.append(
                        ("win", t, self.first_arg_name(k + 1, end), ln))
                    k += 2
                    continue
                if t == "destroy":
                    out.append(
                        ("free", self.first_arg_name(k + 1, end), ln))
                    k += 2
                    continue
                if t == "create":
                    out.append(("create", self.lhs_name(k), ln))
                    k += 2
                    continue
            if t in CONTROL_KEYWORDS or t in CALL_NOISE:
                k += 2
                continue
            out.append(("call", t, ln))
            k += 2
        return out

    def lhs_name(self, k):
        """Assignment/init target of the expression whose call name sits
        at token k: `Window w = ddi.create(...)` -> 'w' ('?' otherwise).
        Window identity lives in the variable the handle is bound to,
        not in the creation arguments."""
        toks = self.toks
        j = k - 1
        while j >= 2 and toks[j][0] in (".", "->"):
            j -= 2  # hop over each '<base> .' pair of the member chain
        if (j >= 1 and toks[j][0] == "="
                and re.fullmatch(r"[A-Za-z_]\w*", toks[j - 1][0])):
            return toks[j - 1][0]
        return "?"

    def first_arg_name(self, open_idx, end):
        """Base identifier of the first argument of the call whose '(' is
        at open_idx ('?' when it is not a simple name)."""
        toks = self.toks
        k = open_idx + 1
        depth = 0
        name = None
        while k < end:
            t = toks[k][0]
            if t in "([{":
                depth += 1
            elif t in ")]}":
                if depth == 0:
                    break
                depth -= 1
            elif t == "," and depth == 0:
                break
            elif depth == 0 and re.fullmatch(r"[A-Za-z_]\w*", t):
                name = t  # last identifier wins: handles *win_, this->w
            k += 1
        return name or "?"


# --------------------------------------------------------------------------
# Program index
# --------------------------------------------------------------------------

MAX_INLINE_DEPTH = 12


def walk_events(events):
    """Depth-first iterator over an event tree (branch arms included)."""
    for ev in events:
        yield ev
        if ev[0] == "branch":
            yield from walk_events(ev[4])
            yield from walk_events(ev[5])


class ProgramIndex:
    def __init__(self, models, engine_name="text"):
        self.models = dict(models)  # path -> SourceModel
        self.engine_name = engine_name
        self.functions = []
        self.by_name = {}
        for path in sorted(self.models):
            for fn in extract_functions(self.models[path]):
                self.functions.append(fn)
                self.by_name.setdefault(fn.name, []).append(fn)
        self._may_coll = {}
        self._seq = {}
        self._fence_down = {}
        self._fp_down = {}
        self._returns_rank = {}
        self.callers = {}  # FunctionSummary -> set of caller summaries
        for fn in self.functions:
            for ev in walk_events(fn.events):
                if ev[0] == "call":
                    for callee in self.resolve(ev[1]):
                        self.callers.setdefault(id(callee), set()).add(
                            id(fn))
        self._by_id = {id(f): f for f in self.functions}

    def resolve(self, name):
        """Candidate definitions for a call by last-component name."""
        return self.by_name.get(name, [])

    # -- transitive facts (memoized, cycle-safe) --

    def _transitive(self, fn, cache, direct_fn, visiting=None):
        key = id(fn)
        if key in cache:
            return cache[key]
        if visiting is None:
            visiting = set()
        if key in visiting:
            return None  # cycle: undecided at this level
        visiting.add(key)
        result = direct_fn(fn)
        if result is None:
            result = False
            for ev in walk_events(fn.events):
                if ev[0] != "call":
                    continue
                for callee in self.resolve(ev[1]):
                    sub = self._transitive(callee, cache, direct_fn,
                                           visiting)
                    if sub:
                        result = True
                        break
                if result:
                    break
        visiting.discard(key)
        cache[key] = result
        return result

    def may_coll(self, fn):
        """Does fn (transitively) issue any collective -- including the
        window collectives fence/create/free?"""
        def direct(f):
            for ev in walk_events(f.events):
                if ev[0] in ("coll", "fence", "create", "free"):
                    return True
            return None
        return bool(self._transitive(fn, self._may_coll, direct))

    def fences_down(self, fn):
        """Does fn (transitively) execute a fence?"""
        def direct(f):
            for ev in walk_events(f.events):
                if ev[0] == "fence":
                    return True
            return None
        return bool(self._transitive(fn, self._fence_down, direct))

    def fp_down(self, fn):
        """Does fn (transitively) perform unordered FP accumulation?"""
        def direct(f):
            if f.fp_events:
                return True
            return None
        return bool(self._transitive(fn, self._fp_down, direct))

    def returns_rank_dep(self, fn):
        """Does fn's return value (transitively) depend on the rank?"""
        def direct(f):
            if f.returns_rank:
                return True
            return None
        return bool(self._transitive(fn, self._returns_rank, direct))

    def coll_chain(self, fn, _visiting=None, _depth=0):
        """One example call chain from fn to a collective, as
        ['helper_a', 'helper_b', "barrier"] -- or None."""
        if _visiting is None:
            _visiting = set()
        if id(fn) in _visiting or _depth > MAX_INLINE_DEPTH:
            return None
        _visiting.add(id(fn))
        for ev in walk_events(fn.events):
            if ev[0] == "coll":
                return [fn.qual, f"{ev[1]}()"]
            if ev[0] in ("fence", "create", "free"):
                return [fn.qual, f"{ev[0]}()"]
        for ev in walk_events(fn.events):
            if ev[0] != "call":
                continue
            for callee in self.resolve(ev[1]):
                sub = self.coll_chain(callee, _visiting, _depth + 1)
                if sub:
                    return [fn.qual] + sub
        return None

    def fp_chain(self, fn, _visiting=None, _depth=0):
        """One example call chain from fn to an unordered FP accumulation:
        (chain_names, fp_path, fp_line, fp_desc) -- or None."""
        if _visiting is None:
            _visiting = set()
        if id(fn) in _visiting or _depth > MAX_INLINE_DEPTH:
            return None
        _visiting.add(id(fn))
        if fn.fp_events:
            line, desc = fn.fp_events[0]
            return ([fn.qual], fn.path, line, desc)
        for ev in walk_events(fn.events):
            if ev[0] != "call":
                continue
            for callee in self.resolve(ev[1]):
                sub = self.fp_chain(callee, _visiting, _depth + 1)
                if sub:
                    return ([fn.qual] + sub[0], sub[1], sub[2], sub[3])
        return None

    def coll_seq(self, fn, _visiting=None, _depth=0):
        """Flattened collective sequence fn expands to. Branch nodes with
        identical arm sequences contribute once; divergent arms
        contribute the opaque marker '<div>'; unresolvable ambiguity
        contributes '<ambig>'. Loops contribute their body once."""
        key = id(fn)
        if key in self._seq:
            return self._seq[key]
        if _visiting is None:
            _visiting = set()
        if key in _visiting or _depth > MAX_INLINE_DEPTH:
            return ["<cycle>"]
        _visiting.add(key)
        seq = self.events_seq(fn.events, _visiting, _depth)
        _visiting.discard(key)
        self._seq[key] = seq
        return seq

    def events_seq(self, events, _visiting=None, _depth=0):
        if _visiting is None:
            _visiting = set()
        seq = []
        for ev in events:
            kind = ev[0]
            if kind == "coll":
                seq.append(ev[1])
            elif kind in ("fence", "create", "free"):
                seq.append(kind)
            elif kind == "call":
                cands = self.resolve(ev[1])
                if not cands:
                    continue
                subs = [self.coll_seq(c, _visiting, _depth + 1)
                        for c in cands]
                if all(s == subs[0] for s in subs):
                    seq.extend(subs[0])
                elif any(subs):
                    seq.append("<ambig>")
            elif kind == "branch":
                t = self.events_seq(ev[4], _visiting, _depth)
                e = self.events_seq(ev[5], _visiting, _depth)
                if t == e:
                    seq.extend(t)
                elif t or e:
                    seq.append("<div>")
        return seq

    def cond_is_rank_dep(self, cond, cond_calls):
        if RANK_COND_RE.search(cond):
            return True
        for nm in cond_calls:
            for cand in self.resolve(nm):
                if self.returns_rank_dep(cand):
                    return True
        return False

    def transitive_callers(self, fn):
        """fn plus every function that can reach it through call edges."""
        seen = {id(fn)}
        stack = [id(fn)]
        while stack:
            cur = stack.pop()
            for caller in self.callers.get(cur, ()):
                if caller not in seen:
                    seen.add(caller)
                    stack.append(caller)
        return [self._by_id[k] for k in seen]

    def inline_stream(self, fn, _visiting=None, _depth=0):
        """Linearized event stream of fn with resolved calls inlined.
        Events originating in callees have their window names rewritten
        to '?' (argument binding is out of scope), so the epoch machine
        never misattributes a callee's traffic to a caller's window."""
        if _visiting is None:
            _visiting = set()
        if id(fn) in _visiting or _depth > MAX_INLINE_DEPTH:
            return []
        _visiting.add(id(fn))
        out = []

        def emit(events):
            for ev in events:
                kind = ev[0]
                if kind == "branch":
                    emit(ev[4])
                    emit(ev[5])
                elif kind == "call":
                    cands = self.resolve(ev[1])
                    for cand in cands[:1]:  # one candidate's shape is
                        # enough for epoch simulation
                        for sev in self.inline_stream(cand, _visiting,
                                                      _depth + 1):
                            if sev[0] == "win":
                                out.append(("win", sev[1], "?", sev[3]))
                            else:
                                out.append((sev[0], "?", sev[2]))
                elif kind in ("win", "fence", "free", "create"):
                    out.append(ev)
                # coll/exit: irrelevant to the epoch machine

        emit(fn.events)
        _visiting.discard(id(fn))
        return out
