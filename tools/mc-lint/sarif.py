"""SARIF 2.1.0 writer for mc-lint findings.

One run, one driver, one rule object per check id. Ledger-suppressed
findings are emitted with a `suppressions` entry (kind "external",
justification = the ledger reason) so SARIF consumers show them struck
through instead of silently dropping them; inline `// mc-lint: allow`
directives drop findings before they exist and therefore never reach
the log.
"""

from __future__ import annotations

import json
import os

from engine import CHECKS, DIRECTIVE_CHECK

TOOL_VERSION = "2.0.0"

SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
          "master/Schemata/sarif-schema-2.1.0.json")

RULE_HELP = {
    "MC-COLL-001": "Every rank must execute the same MPI collective "
                   "sequence; a collective (direct or through any call "
                   "chain) guarded by a rank-dependent branch deadlocks "
                   "the ranks that never arrive.",
    "MC-OMP-002": "Mutable state shared across an omp parallel region "
                  "must go through the access annotation types or a "
                  "sanctioned construct.",
    "MC-RED-003": "Floating-point accumulation with unspecified "
                  "combination order breaks bit-reproducible golden "
                  "trajectories.",
    "MC-WIN-004": "One-sided window traffic is ordered only by fence "
                  "epochs: every put/get/acc needs a closing fence on "
                  "every call path, and win_free must not interrupt an "
                  "open epoch.",
    "MC-SEQ-005": "Sibling branches reachable by different ranks must "
                  "expand to identical collective sequences.",
    "MC-FP-006": "Unordered FP accumulation must not flow into "
                 "golden-trajectory-checked state through any call "
                 "chain.",
    DIRECTIVE_CHECK: "mc-lint suppression directives must be "
                     "well-formed and carry a reason.",
}


def _repo_rel(path, repo_root):
    ap = os.path.abspath(path)
    root = os.path.abspath(repo_root)
    if ap.startswith(root + os.sep):
        rel = os.path.relpath(ap, root)
    else:
        rel = path
    return rel.replace(os.sep, "/")


def sarif_log(findings, repo_root):
    rule_ids = list(CHECKS) + [DIRECTIVE_CHECK]
    rule_index = {rid: i for i, rid in enumerate(rule_ids)}
    rules = []
    for rid in rule_ids:
        rules.append({
            "id": rid,
            "shortDescription": {
                "text": CHECKS.get(rid, RULE_HELP[rid])},
            "fullDescription": {"text": RULE_HELP[rid]},
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for f in findings:
        res = {
            "ruleId": f.check,
            "ruleIndex": rule_index.get(f.check, 0),
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _repo_rel(f.path, repo_root),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": f.line},
                },
            }],
        }
        if f.suppression:
            res["suppressions"] = [{
                "kind": "external",
                "justification": f.suppression.get("reason", ""),
            }]
        results.append(res)
    return {
        "$schema": SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "mc-lint",
                "version": TOOL_VERSION,
                "informationUri":
                    "https://example.invalid/minichem-hf/tools/mc-lint",
                "rules": rules,
            }},
            "originalUriBaseIds": {
                "SRCROOT": {
                    "uri": "file://" + os.path.abspath(repo_root).replace(
                        os.sep, "/") + "/",
                },
            },
            "results": results,
        }],
    }


def write_sarif(path, findings, repo_root):
    with open(path, "w", encoding="utf-8") as f:
        json.dump(sarif_log(findings, repo_root), f, indent=2)
        f.write("\n")


def step_summary_table(findings, files_scanned, functions_indexed):
    """Markdown rule-by-rule table for $GITHUB_STEP_SUMMARY."""
    rows = []
    counts = {}
    for f in findings:
        live, supp = counts.get(f.check, (0, 0))
        if f.suppression:
            counts[f.check] = (live, supp + 1)
        else:
            counts[f.check] = (live + 1, supp)
    rows.append("### mc-lint (whole-program)")
    rows.append("")
    rows.append(f"{files_scanned} file(s) scanned, "
                f"{functions_indexed} function(s) indexed.")
    rows.append("")
    rows.append("| rule | description | findings | suppressed |")
    rows.append("| --- | --- | ---: | ---: |")
    for rid in list(CHECKS) + [DIRECTIVE_CHECK]:
        live, supp = counts.get(rid, (0, 0))
        desc = CHECKS.get(rid, "suppression-directive hygiene")
        rows.append(f"| {rid} | {desc} | {live} | {supp} |")
    total_live = sum(c[0] for c in counts.values())
    verdict = ("**PASS** -- no unsuppressed findings" if total_live == 0
               else f"**FAIL** -- {total_live} unsuppressed finding(s)")
    rows.append("")
    rows.append(verdict)
    rows.append("")
    return "\n".join(rows)
