"""Source model + lexing front ends shared by every mc-lint rule.

A SourceModel is a file reduced to what the checks consume: `cleaned`
text with comments/strings blanked (line structure preserved
byte-for-byte), per-line allow directives, and malformed-directive
notes. Two front ends produce it -- a libclang token stream when the
`clang.cindex` bindings and a loadable libclang are available, and a
regex lexer needing only the standard library -- so every analysis
(lexical and interprocedural alike) reports identical findings under
either engine.
"""

from __future__ import annotations

import re

CHECKS = {
    "MC-COLL-001": "MPI collective under a rank-dependent branch",
    "MC-OMP-002": "raw shared-state write inside an omp parallel region",
    "MC-RED-003": "unordered floating-point accumulation",
    "MC-WIN-004": "one-sided window access outside a fence epoch",
    "MC-SEQ-005": "divergent collective sequences across rank-dependent "
                  "sibling branches",
    "MC-FP-006": "unordered FP accumulation reaching golden-checked state",
}

# Pseudo-check ids that can appear in findings but are not user-selectable.
DIRECTIVE_CHECK = "MC-LINT-DIRECTIVE"

COLLECTIVES = {
    "barrier",
    "gsumf",
    "bcast",
    "broadcast",
    "allreduce_sum",
    "allreduce_max",
    "dlb_reset",
    "arrive_and_wait",
}

# Epoch-bearing one-sided operations. `win_*` are the Comm primitives;
# put/get/acc/fence/create/destroy member calls count only through an
# identifier that names a Ddi handle (deliberately narrow so ordinary
# containers' .get()/.put() never match).
WIN_OPS = {"put", "get", "acc"}

RANK_COND_RE = re.compile(r"\brank\b|\brank_(?![\w])|\bmy_rank\b|\brank\(\)")

ALLOW_RE = re.compile(
    r"//\s*mc-lint:\s*allow\(\s*(MC-[A-Z]+-\d+)\s*\)\s*(?::\s*(\S.*))?")

SOURCE_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".h")

KEYWORDS_NOT_TYPES = {
    "return", "delete", "throw", "goto", "else", "break", "continue",
    "case", "new", "sizeof", "typedef", "using", "co_return", "co_await",
    "co_yield", "if", "while", "for", "do", "switch", "public", "private",
    "protected", "template", "typename", "namespace", "operator",
}

TYPE_KEYWORDS = {
    "auto", "int", "long", "double", "float", "bool", "unsigned", "signed",
    "char", "short", "void", "const", "constexpr", "static", "size_t",
}

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*|::|->|\+\+|--|<<=|>>=|[<>!=+\-*/&|^]=|&&|\|\||\S")

ASSIGN_OP_RE_SRC = (
    r"<<=|>>=|\+=|-=|\*=|/=|%=|&=|\|=|\^=|(?<![<>!=+\-*/%&|^=])=(?![=])")


class Finding:
    def __init__(self, check, path, line, message, suppression=None):
        self.check = check
        self.path = path
        self.line = line
        self.message = message
        # None, or {"kind": "ledger", "reason": ...} once a checked-in
        # suppression claims the finding (inline allows drop findings
        # before they are ever constructed).
        self.suppression = suppression

    def as_dict(self):
        d = {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.suppression:
            d["suppression"] = self.suppression
        return d

    def __str__(self):
        tag = " (suppressed)" if self.suppression else ""
        return f"{self.path}:{self.line}: [{self.check}]{tag} {self.message}"


class SourceModel:
    def __init__(self, path, cleaned, allows, directive_errors):
        self.path = path
        self.cleaned = cleaned
        self.allows = allows  # directive line -> set of check ids
        self.directive_errors = directive_errors  # [(line, message)]
        # (directive_line, check) pairs consumed by a finding; the
        # complement of this against `allows` is the stale-allow set that
        # --audit-allows reports.
        self.allow_hits = set()
        self.line_starts = [0]
        for i, ch in enumerate(cleaned):
            if ch == "\n":
                self.line_starts.append(i + 1)

    def line_of(self, offset):
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def allowed(self, check, line):
        for ln in (line, line - 1):
            ids = self.allows.get(ln)
            if ids and check in ids:
                self.allow_hits.add((ln, check))
                return True
        return False

    def stale_allows(self):
        out = []
        for ln, ids in sorted(self.allows.items()):
            for check in sorted(ids):
                if (ln, check) not in self.allow_hits:
                    out.append((ln, check))
        return out


def _collect_allows(comment_text, line, allows, directive_errors):
    m = ALLOW_RE.search(comment_text)
    if not m:
        return
    check, reason = m.group(1), m.group(2)
    if not reason:
        directive_errors.append(
            (line, f"allow({check}) directive is missing its reason"))
        return
    allows.setdefault(line, set()).add(check)


def model_from_text(path, text):
    """Regex lexer: blank comments, string and char literals (keeping
    newlines) and collect mc-lint directives from comments."""
    allows = {}
    errors = []
    out = []
    i, n = 0, len(text)
    line = 1
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            _collect_allows(text[i:j], line, allows, errors)
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            chunk = text[i:j]
            _collect_allows("//" + chunk, line, allows, errors)
            for c in chunk:
                out.append("\n" if c == "\n" else " ")
                if c == "\n":
                    line += 1
            i = j
        elif ch == '"' or ch == "'":
            if ch == '"' and i >= 1 and text[i - 1] == "R":
                m = re.match(r'R"([^(\s]*)\(', text[i - 1:i + 20])
                if m:
                    end = text.find(f"){m.group(1)}\"", i)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    for c in text[i:end]:
                        out.append("\n" if c == "\n" else " ")
                        if c == "\n":
                            line += 1
                    i = end
                    continue
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                if j < n and text[j] == "\n":
                    break  # unterminated; bail at line end
                j += 1
            j = min(j + 1, n)
            out.append(ch + " " * (j - i - 1))
            i = j
        else:
            out.append(ch)
            if ch == "\n":
                line += 1
            i += 1
    return SourceModel(path, "".join(out), allows, errors)


def model_from_clang(path, text):
    """libclang lexing front end: rebuild the cleaned text from the token
    stream (everything but comments/literals placed at its original
    line/column), directives from comment tokens. Raises on any import or
    parse problem; the caller falls back to the text engine."""
    from clang import cindex  # noqa: PLC0415

    index = cindex.Index.create()
    tu = index.parse(path, args=["-std=c++20", "-fsyntax-only"],
                     unsaved_files=[(path, text)],
                     options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    lines = text.split("\n")
    canvas = [[" "] * len(l) for l in lines]
    allows = {}
    errors = []
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        kind = tok.kind.name
        loc = tok.location
        row, col = loc.line - 1, loc.column - 1
        if kind == "COMMENT":
            _collect_allows(tok.spelling, loc.line, allows, errors)
            continue
        spelling = tok.spelling
        if kind == "LITERAL" and (spelling.startswith('"')
                                  or spelling.startswith("'")):
            spelling = spelling[0]
        for k, ch in enumerate(spelling):
            if ch == "\n":
                break
            if row < len(canvas) and col + k < len(canvas[row]):
                canvas[row][col + k] = ch
    cleaned = "\n".join("".join(r) for r in canvas)
    return SourceModel(path, cleaned, allows, errors)


def tokenize(model):
    """(text, line) token stream of the cleaned text."""
    toks = []
    for lineno, line in enumerate(model.cleaned.split("\n"), start=1):
        for m in TOKEN_RE.finditer(line):
            toks.append((m.group(0), lineno))
    return toks


def tokenize_offsets(text, model):
    """(text, line, offset) token stream over an arbitrary cleaned text
    sharing `model`'s line structure (used with blank_pragmas)."""
    toks = []
    for m in TOKEN_RE.finditer(text):
        toks.append((m.group(0), model.line_of(m.start()), m.start()))
    return toks


# --------------------------------------------------------------------------
# Pragma / region utilities
# --------------------------------------------------------------------------

PRAGMA_RE = re.compile(r"^[ \t]*#[ \t]*pragma[ \t]+omp\b.*$", re.MULTILINE)


def pragmas(model):
    """Logical `#pragma omp` directives: (start_offset, body_offset, text)
    where body_offset is the first char after the directive (continuation
    lines joined)."""
    out = []
    for m in PRAGMA_RE.finditer(model.cleaned):
        start, end = m.start(), m.end()
        text = m.group(0)
        while text.rstrip().endswith("\\"):
            nl = model.cleaned.find("\n", end)
            if nl < 0:
                break
            nxt_end = model.cleaned.find("\n", nl + 1)
            nxt_end = len(model.cleaned) if nxt_end < 0 else nxt_end
            text = text.rstrip()[:-1] + " " + model.cleaned[nl + 1:nxt_end]
            end = nxt_end
        out.append((start, end, " ".join(text.split())))
    return out


def matching_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def statement_end(text, pos):
    depth = 0
    for i in range(pos, len(text)):
        c = text[i]
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
        elif c == ";" and depth <= 0:
            return i + 1
    return len(text)


def construct_body(text, after):
    """Span of the structured block following a pragma: the next `{`..`}`
    if a brace comes before any `;`, else the single statement."""
    i = after
    while i < len(text) and text[i] in " \t\n":
        i += 1
    j = i
    while j < len(text) and text[j] not in "{;":
        j += 1
    if j < len(text) and text[j] == "{":
        return (j, matching_brace(text, j) + 1)
    return (i, statement_end(text, i))


CLAUSE_PRIVATE_RE = re.compile(
    r"(?:firstprivate|lastprivate|private|linear)\s*\(([^)]*)\)")
CLAUSE_REDUCTION_RE = re.compile(r"reduction\s*\(\s*[^:()]+:\s*([^)]*)\)")


def clause_private_names(pragma_text):
    names = set()
    for m in CLAUSE_PRIVATE_RE.finditer(pragma_text):
        names.update(x.strip() for x in m.group(1).split(",") if x.strip())
    for m in CLAUSE_REDUCTION_RE.finditer(pragma_text):
        names.update(x.strip() for x in m.group(1).split(",") if x.strip())
    return names


def blank_pragmas(model):
    """model.cleaned with every `#pragma omp` directive's text replaced by
    spaces (same length), so token scans cannot match into directives."""
    text = list(model.cleaned)
    for start, end, _ in pragmas(model):
        for i in range(start, end):
            if text[i] != "\n":
                text[i] = " "
    return "".join(text)


def fp_declared(model, name):
    return re.search(
        rf"\b(?:double|float)\s+(?:[&*]\s*)?{re.escape(name)}\b",
        model.cleaned) is not None


def build_model(path, engine, warned):
    import sys
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"mc-lint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if engine in ("clang", "auto"):
        try:
            return model_from_clang(path, text)
        except Exception as e:  # ImportError, LibclangError, parse errors
            if engine == "clang":
                print(f"mc-lint: clang engine unavailable ({e}); "
                      "falling back to text engine", file=sys.stderr)
            elif not warned:
                warned.append(True)
    return model_from_text(path, text)
