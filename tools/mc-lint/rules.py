"""Lexical (single-function, single-file) mc-lint rules.

These run on every scanned file independently of the whole-program index:

  MC-COLL-001 (lexical half)  collective *directly* inside a rank-dependent
              branch, or after a rank-dependent early exit in the same
              scope. The interprocedural half (collectives reached through
              helper calls) lives in interproc.py.
  MC-OMP-002  raw shared-state writes inside omp parallel regions.
  MC-RED-003  unordered floating-point accumulation (reduction clauses,
              fp omp atomic).

MC-WIN-004 is whole-program in v2 and lives entirely in interproc.py.
"""

from __future__ import annotations

import os
import re

from engine import (ASSIGN_OP_RE_SRC, COLLECTIVES, Finding, KEYWORDS_NOT_TYPES,
                    RANK_COND_RE, TYPE_KEYWORDS, blank_pragmas,
                    clause_private_names, construct_body, fp_declared,
                    pragmas, statement_end, tokenize)

# --------------------------------------------------------------------------
# MC-COLL-001 (lexical)
# --------------------------------------------------------------------------


def check_coll(model, findings):
    toks = tokenize(model)
    n = len(toks)
    scopes = []
    bdepth = 0
    pdepth = 0
    pending_if = None
    check_coll._carry = False
    i = 0

    def emit(line, why):
        if not model.allowed("MC-COLL-001", line):
            findings.append(Finding("MC-COLL-001", model.path, line, why))

    def mark_divergent():
        for k, s in enumerate(scopes):
            if s.get("rank"):
                if k > 0:
                    scopes[k - 1]["divergent_line"] = s["line"]
                break

    def peek_else(j):
        return j < n and toks[j][0] == "else"

    while i < n:
        t, ln = toks[i]
        if t in ("if", "while"):
            inherited = False
            if pending_if is not None and pending_if.get("else_carry"):
                inherited = True
            pending_if = None
            j = i + 1
            while j < n and toks[j][0] != "(":
                j += 1
            depth, cond = 0, []
            while j < n:
                tt = toks[j][0]
                if tt == "(":
                    depth += 1
                    if depth >= 2:
                        cond.append(tt)
                elif tt == ")":
                    depth -= 1
                    if depth == 0:
                        break
                    cond.append(tt)
                elif depth >= 1:
                    cond.append(tt)
                j += 1
            rank_dep = bool(RANK_COND_RE.search(" ".join(cond))) or inherited
            k = j + 1
            if k < n and toks[k][0] == "{":
                pending_if = {"rank": rank_dep, "line": ln}
                i = k
                continue
            scopes.append({"kind": "ifstmt", "rank": rank_dep, "line": ln,
                           "divergent_line": None, "bdepth": bdepth,
                           "pdepth": pdepth})
            i = k
            continue
        if t == "else":
            carried = getattr(check_coll, "_carry", False)
            check_coll._carry = False
            k = i + 1
            if peek_else(k):
                i = k
                continue
            if k < n and toks[k][0] == "if":
                pending_if = {"else_carry": carried}
                i = k
                continue
            if k < n and toks[k][0] == "{":
                pending_if = {"rank": carried, "line": ln}
                i = k
                continue
            scopes.append({"kind": "ifstmt", "rank": carried, "line": ln,
                           "divergent_line": None, "bdepth": bdepth,
                           "pdepth": pdepth})
            i = k
            continue
        if t == "{":
            bdepth += 1
            if pending_if is not None and "rank" in pending_if:
                scopes.append({"kind": "if", "rank": pending_if["rank"],
                               "line": pending_if["line"],
                               "divergent_line": None, "bdepth": bdepth})
            else:
                scopes.append({"kind": "brace", "rank": False, "line": ln,
                               "divergent_line": None, "bdepth": bdepth})
            pending_if = None
            i += 1
            continue
        if t == "}":
            while scopes and scopes[-1]["kind"] == "ifstmt":
                scopes.pop()  # malformed nesting guard
            carry = False
            if scopes and scopes[-1].get("bdepth") == bdepth:
                popped = scopes.pop()
                carry = popped["kind"] == "if" and popped["rank"]
                if not peek_else(i + 1):
                    while (scopes and scopes[-1]["kind"] == "ifstmt"
                           and scopes[-1]["bdepth"] == bdepth - 1):
                        inner = scopes.pop()
                        carry = carry or inner["rank"]
            bdepth = max(0, bdepth - 1)
            check_coll._carry = carry if peek_else(i + 1) else False
            i += 1
            continue
        if t == "(":
            pdepth += 1
            i += 1
            continue
        if t == ")":
            pdepth = max(0, pdepth - 1)
            i += 1
            continue
        if t == ";":
            carry = False
            while (scopes and scopes[-1]["kind"] == "ifstmt"
                   and scopes[-1]["bdepth"] == bdepth
                   and scopes[-1]["pdepth"] == pdepth):
                carry = carry or scopes.pop()["rank"]
            check_coll._carry = carry if peek_else(i + 1) else False
            i += 1
            continue
        if t in ("return", "throw"):
            if any(s.get("rank") for s in scopes):
                mark_divergent()
            i += 1
            continue
        if t in COLLECTIVES and i + 1 < n and toks[i + 1][0] == "(":
            prev = toks[i - 1][0] if i > 0 else ""
            if prev != "::":  # skip out-of-class definitions
                rank_scope = next((s for s in scopes if s.get("rank")), None)
                div = next(
                    (s for s in scopes if s.get("divergent_line") is not None),
                    None)
                if rank_scope is not None:
                    emit(ln,
                         f"collective '{t}' inside the rank-dependent branch "
                         f"opened at line {rank_scope['line']}: not every "
                         "rank executes it (deadlock)")
                elif div is not None:
                    emit(ln,
                         f"collective '{t}' is unreachable on some ranks: "
                         f"the rank-dependent branch at line "
                         f"{div['divergent_line']} returns/throws before it")
            i += 1
            continue
        i += 1


# --------------------------------------------------------------------------
# MC-OMP-002
# --------------------------------------------------------------------------

DECL_RE = re.compile(
    r"(?:^|[;{}()])\s*"
    r"(?:const\s+|static\s+|constexpr\s+|volatile\s+|mutable\s+)*"
    r"(?P<type>auto|unsigned(?:\s+long)*(?:\s+int)?|long(?:\s+long)?(?:\s+int)?"
    r"|[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*(?:<[^;{}]*?>)?)"
    r"(?:\s*[&*])*\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?=[=({;,])")

BINDING_RE = re.compile(r"auto\s*&?\s*\[([^\]]+)\]")

ASSIGN_OP_RE = re.compile(ASSIGN_OP_RE_SRC)

INCDEC_RE = re.compile(
    r"(\+\+|--)\s*([A-Za-z_]\w*)|([A-Za-z_]\w*)\s*(\+\+|--)")


def declared_names(region_text):
    names = set()
    for m in DECL_RE.finditer(region_text):
        if m.group("type") not in KEYWORDS_NOT_TYPES:
            names.add(m.group("name"))
    for m in BINDING_RE.finditer(region_text):
        names.update(x.strip() for x in m.group(1).split(",") if x.strip())
    return names


def lvalue_base(text, op_pos):
    """Walk left from an assignment operator to the base identifier of its
    lvalue chain (`plan.ij`, `q_[i]`, `obj->field`). Returns (name, start)
    or (None, op_pos)."""
    i = op_pos - 1
    while i >= 0 and text[i] in " \t\n":
        i -= 1
    while i >= 0:
        if text[i] == "]":
            depth = 0
            while i >= 0:
                if text[i] == "]":
                    depth += 1
                elif text[i] == "[":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            i -= 1
            while i >= 0 and text[i] in " \t\n":
                i -= 1
            continue
        break
    name = None
    while i >= 0:
        j = i
        while j >= 0 and (text[j].isalnum() or text[j] == "_"):
            j -= 1
        if j < i:
            name = text[j + 1:i + 1]
            i = j
        else:
            return (None, op_pos)
        while i >= 0 and text[i] in " \t\n":
            i -= 1
        if i >= 1 and text[i - 1:i + 1] == "->":
            i -= 2
        elif i >= 0 and text[i] == ".":
            i -= 1
        elif i >= 1 and text[i - 1:i + 1] == "::":
            i -= 2
        else:
            break
        while i >= 0 and text[i] in " \t\n":
            i -= 1
    if name and (name[0].isalpha() or name[0] == "_"):
        return (name, i + 1)
    return (None, op_pos)


def sanctioned_spans(model, region_start, region_end):
    spans = []
    for start, end, text in pragmas(model):
        if start < region_start or start >= region_end:
            continue
        if re.search(r"\bomp\s+(master|single|critical)\b", text):
            spans.append(construct_body(model.cleaned, end))
        elif re.search(r"\bomp\s+atomic\b", text):
            spans.append((end, statement_end(model.cleaned, end)))
    return spans


def parallel_regions(model):
    out = []
    for start, end, text in pragmas(model):
        if re.search(r"\bomp\s+parallel\b", text):
            body = construct_body(model.cleaned, end)
            out.append((text, body[0], body[1]))
    return out


def check_omp(model, findings, scope_paths):
    if scope_paths:
        norm = model.path.replace(os.sep, "/")
        if not any(s in norm for s in scope_paths):
            return
    text = blank_pragmas(model)
    for pragma_text, rstart, rend in parallel_regions(model):
        region = text[rstart:rend]
        decls = declared_names(region)
        privates = clause_private_names(pragma_text)
        for _, _, ptext in pragmas(model):
            privates |= clause_private_names(ptext)
        spans = sanctioned_spans(model, rstart, rend)

        def sanctioned(pos):
            return any(s <= pos < e for s, e in spans)

        def report(base, pos):
            line = model.line_of(pos)
            if base in decls or base in privates:
                return
            if sanctioned(pos) or model.allowed("MC-OMP-002", line):
                return
            findings.append(Finding(
                "MC-OMP-002", model.path, line,
                f"raw write to '{base}' (not declared in this parallel "
                "region) -- route it through an access annotation type "
                "(common/access.hpp) or an omp master/single/atomic "
                "construct"))

        for m in ASSIGN_OP_RE.finditer(region):
            pos = rstart + m.start()
            base, lstart = lvalue_base(text, pos)
            if base is None or base in KEYWORDS_NOT_TYPES \
                    or base in TYPE_KEYWORDS:
                continue
            if lstart < rstart:  # lvalue begins outside the region
                continue
            report(base, pos)
        for m in INCDEC_RE.finditer(region):
            base = m.group(2) or m.group(3)
            if base in KEYWORDS_NOT_TYPES or base in TYPE_KEYWORDS:
                continue
            report(base, rstart + m.start())


# --------------------------------------------------------------------------
# MC-RED-003
# --------------------------------------------------------------------------

from engine import CLAUSE_REDUCTION_RE  # noqa: E402


def check_red(model, findings):
    text = model.cleaned
    for start, end, ptext in pragmas(model):
        line = model.line_of(start)
        for m in CLAUSE_REDUCTION_RE.finditer(ptext):
            for name in (x.strip() for x in m.group(1).split(",")):
                if name and fp_declared(model, name):
                    if not model.allowed("MC-RED-003", line):
                        findings.append(Finding(
                            "MC-RED-003", model.path, line,
                            f"floating-point reduction over '{name}' has no "
                            "defined combination order; use the sanctioned "
                            "ordered reduction helpers instead"))
        if re.search(r"\bomp\s+atomic\b", ptext):
            stmt_start = end
            stmt = text[stmt_start:statement_end(text, stmt_start)]
            am = ASSIGN_OP_RE.search(stmt)
            im = INCDEC_RE.search(stmt)
            base = None
            if am:
                base, _ = lvalue_base(text, stmt_start + am.start())
            elif im:
                base = im.group(2) or im.group(3)
            if base and fp_declared(model, base):
                aline = model.line_of(stmt_start)
                if not model.allowed("MC-RED-003", aline):
                    findings.append(Finding(
                        "MC-RED-003", model.path, aline,
                        f"omp atomic on floating-point '{base}' accumulates "
                        "in schedule order; use the sanctioned ordered "
                        "reduction helpers instead"))
