#!/usr/bin/env python3
"""mc-lint: project-specific static checks for the minichem-hf tree.

The checks encode the concurrency protocols the code's correctness argument
rests on (DESIGN.md section 11.1):

  MC-COLL-001  MPI collective matching. Collective operations (barrier,
               gsumf, allreduce_*, broadcast/bcast, dlb_reset,
               arrive_and_wait) must be executed by every rank: a collective
               lexically inside an `if` whose condition depends on the rank
               is a deadlock, as is a collective that is unreachable on some
               ranks because a rank-dependent branch returned or threw
               earlier in the same scope.

  MC-OMP-002   OpenMP capture audit (scoped to src/ by default). Inside a `#pragma omp parallel` region, raw
               assignments / compound assignments / increments whose target
               is not declared inside the region must be sanctioned: an
               `omp master`/`single`/`critical` body, the statement under
               `omp atomic`, or a variable privatized by a
               private/firstprivate/lastprivate/reduction clause. Mutable
               shared state is otherwise expected to go through the
               annotation types of src/common/access.hpp (whose method
               calls are not assignments and therefore pass naturally).

  MC-RED-003   Accumulation-order hygiene. Floating-point accumulation via
               `reduction(...)` clauses or `omp atomic` has no defined
               combination order, which breaks this repo's bit-reproducible
               golden trajectories; FP sums must use the sanctioned ordered
               helpers (flush_buffer-style chunked reductions, Comm
               collectives, OwnedSlice::add). Integer counters are fine.

  MC-WIN-004   One-sided window epoch hygiene. A translation unit that
               issues one-sided window traffic (win_put/win_get/win_acc, or
               put/get/acc calls through a Ddi handle) but never fences
               (win_fence / .fence()) has no epoch boundary at all: put and
               get visibility is ordered *only* by the fence collective, so
               an unfenced file is reading or publishing unordered data.
               win_acc is element-atomic but still needs a closing fence
               before any reader.

Findings on a line (or the line after) a directive of the form

    // mc-lint: allow(MC-XXX-NNN): <reason>

are suppressed; the reason is mandatory.

Engine: a libclang lexing front end is used when the `clang.cindex` Python
bindings and a loadable libclang are available (`--engine clang`); otherwise
a regex lexer that strips comments/strings while preserving line structure
produces the same source model (`--engine text`, the default fallback of
`--engine auto`). All analyses run on the model, so the two engines report
identical findings on well-formed sources.

Exit status: 0 clean, 1 findings, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys

CHECKS = {
    "MC-COLL-001": "MPI collective under a rank-dependent branch",
    "MC-OMP-002": "raw shared-state write inside an omp parallel region",
    "MC-RED-003": "unordered floating-point accumulation",
    "MC-WIN-004": "one-sided window access without a fence epoch",
}

# One-sided window traffic: the Comm primitives by name, or put/get/acc
# member calls through an identifier that names a Ddi handle. The latter is
# deliberately narrow (`ddi` must appear in the object name) so ordinary
# containers' .get()/.put() never match.
WIN_ACCESS_RE = re.compile(
    r"\bwin_(?:put|get|acc)\s*\("
    r"|\b\w*ddi\w*\s*(?:\.|->)\s*(?:put|get|acc)\s*\(",
    re.IGNORECASE)

# Any fence in the file closes the epoch argument: the Comm primitive or a
# .fence()/->fence() member call.
WIN_FENCE_RE = re.compile(r"\bwin_fence\s*\(|(?:\.|->)\s*fence\s*\(")

COLLECTIVES = {
    "barrier",
    "gsumf",
    "bcast",
    "broadcast",
    "allreduce_sum",
    "allreduce_max",
    "dlb_reset",
    "arrive_and_wait",
}

# Identifiers whose appearance in an `if` condition makes the branch
# rank-dependent. Word-boundary matched, so `nranks`, `quartets_per_rank`
# and `rank_live_` do not trigger.
RANK_COND_RE = re.compile(r"\brank\b|\brank_(?![\w])|\bmy_rank\b|\brank\(\)")

ALLOW_RE = re.compile(
    r"//\s*mc-lint:\s*allow\(\s*(MC-[A-Z]+-\d+)\s*\)\s*(?::\s*(\S.*))?")

SOURCE_EXTS = (".cpp", ".cc", ".cxx", ".hpp", ".h")

KEYWORDS_NOT_TYPES = {
    "return", "delete", "throw", "goto", "else", "break", "continue",
    "case", "new", "sizeof", "typedef", "using", "co_return", "co_await",
    "co_yield", "if", "while", "for", "do", "switch", "public", "private",
    "protected", "template", "typename", "namespace", "operator",
}

# Never the base of a shared write: seeing one of these as an "lvalue base"
# means the match was actually a declaration or binding.
TYPE_KEYWORDS = {
    "auto", "int", "long", "double", "float", "bool", "unsigned", "signed",
    "char", "short", "void", "const", "constexpr", "static", "size_t",
}


class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message

    def as_dict(self):
        return {
            "check": self.check,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


class SourceModel:
    """A file reduced to what the checks consume: `cleaned` text with
    comments/strings blanked (line structure preserved byte-for-byte),
    per-line allow directives, and malformed-directive notes."""

    def __init__(self, path, cleaned, allows, directive_errors):
        self.path = path
        self.cleaned = cleaned
        self.allows = allows  # line -> set of check ids
        self.directive_errors = directive_errors  # [(line, message)]
        self.line_starts = [0]
        for i, ch in enumerate(cleaned):
            if ch == "\n":
                self.line_starts.append(i + 1)

    def line_of(self, offset):
        lo, hi = 0, len(self.line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def allowed(self, check, line):
        for ln in (line, line - 1):
            ids = self.allows.get(ln)
            if ids and check in ids:
                return True
        return False


def _collect_allows(comment_text, line, allows, directive_errors):
    m = ALLOW_RE.search(comment_text)
    if not m:
        return
    check, reason = m.group(1), m.group(2)
    if not reason:
        directive_errors.append(
            (line, f"allow({check}) directive is missing its reason"))
        return
    allows.setdefault(line, set()).add(check)


def model_from_text(path, text):
    """Regex lexer: blank comments, string and char literals (keeping
    newlines) and collect mc-lint directives from comments."""
    allows = {}
    directive_errors = {}
    errors = []
    out = []
    i, n = 0, len(text)
    line = 1
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            if j < 0:
                j = n
            _collect_allows(text[i:j], line, allows, errors)
            out.append(" " * (j - i))
            i = j
        elif ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            chunk = text[i:j]
            _collect_allows("//" + chunk, line, allows, errors)
            for c in chunk:
                out.append("\n" if c == "\n" else " ")
                if c == "\n":
                    line += 1
            i = j
        elif ch == '"' or ch == "'":
            if ch == '"' and i >= 1 and text[i - 1] == "R":
                # Raw string literal R"delim( ... )delim".
                m = re.match(r'R"([^(\s]*)\(', text[i - 1:i + 20])
                if m:
                    end = text.find(f"){m.group(1)}\"", i)
                    end = n if end < 0 else end + len(m.group(1)) + 2
                    for c in text[i:end]:
                        out.append("\n" if c == "\n" else " ")
                        if c == "\n":
                            line += 1
                    i = end
                    continue
            quote = ch
            j = i + 1
            while j < n and text[j] != quote:
                if text[j] == "\\":
                    j += 1
                if j < n and text[j] == "\n":
                    break  # unterminated; bail at line end
                j += 1
            j = min(j + 1, n)
            out.append(ch + " " * (j - i - 1))
            i = j
        else:
            out.append(ch)
            if ch == "\n":
                line += 1
            i += 1
    return SourceModel(path, "".join(out), allows, errors)


def model_from_clang(path, text):
    """libclang lexing front end: rebuild the cleaned text from the token
    stream (everything but comments/literals placed at its original
    line/column), directives from comment tokens. Raises on any import or
    parse problem; the caller falls back to the text engine."""
    from clang import cindex  # noqa: PLC0415

    index = cindex.Index.create()
    tu = index.parse(path, args=["-std=c++20", "-fsyntax-only"],
                     unsaved_files=[(path, text)],
                     options=cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    lines = text.split("\n")
    canvas = [[" "] * len(l) for l in lines]
    allows = {}
    errors = []
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        kind = tok.kind.name
        loc = tok.location
        row, col = loc.line - 1, loc.column - 1
        if kind == "COMMENT":
            _collect_allows(tok.spelling, loc.line, allows, errors)
            continue
        spelling = tok.spelling
        if kind == "LITERAL" and (spelling.startswith('"')
                                  or spelling.startswith("'")):
            spelling = spelling[0]
        for k, ch in enumerate(spelling):
            if ch == "\n":
                break
            if row < len(canvas) and col + k < len(canvas[row]):
                canvas[row][col + k] = ch
    cleaned = "\n".join("".join(r) for r in canvas)
    return SourceModel(path, cleaned, allows, errors)


# --------------------------------------------------------------------------
# MC-COLL-001
# --------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*|::|->|\+\+|--|<<=|>>=|[<>!=+\-*/&|^]=|&&|\|\||\S")


def tokenize(model):
    toks = []
    for lineno, line in enumerate(model.cleaned.split("\n"), start=1):
        for m in TOKEN_RE.finditer(line):
            toks.append((m.group(0), lineno))
    return toks


def check_coll(model, findings):
    toks = tokenize(model)
    n = len(toks)
    # Scope stack entries:
    #   kind 'brace' -- any {...} block; closes when bdepth drops back.
    #   kind 'if'    -- a braced if/while body; rank flags rank-dependence.
    #   kind 'ifstmt'-- an unbraced if/while body; closes at the ';' seen at
    #                   its recorded brace/paren depth.
    # divergent_line on a scope: a rank-dependent branch inside it
    # returned/threw, so the rest of the scope is not reached by all ranks.
    scopes = []
    bdepth = 0
    pdepth = 0
    pending_if = None  # rank flag for a just-parsed if awaiting its '{'
    check_coll._carry = False  # rank flag carried into a following `else`
    i = 0

    def emit(line, why):
        if not model.allowed("MC-COLL-001", line):
            findings.append(Finding("MC-COLL-001", model.path, line, why))

    def mark_divergent():
        for k, s in enumerate(scopes):
            if s.get("rank"):
                if k > 0:
                    scopes[k - 1]["divergent_line"] = s["line"]
                break

    def peek_else(j):
        return j < n and toks[j][0] == "else"

    while i < n:
        t, ln = toks[i]
        if t in ("if", "while"):
            inherited = False
            if pending_if is not None and pending_if.get("else_carry"):
                inherited = True
            pending_if = None
            j = i + 1
            while j < n and toks[j][0] != "(":
                j += 1
            depth, cond = 0, []
            while j < n:
                tt = toks[j][0]
                if tt == "(":
                    depth += 1
                    if depth >= 2:
                        cond.append(tt)
                elif tt == ")":
                    depth -= 1
                    if depth == 0:
                        break
                    cond.append(tt)
                elif depth >= 1:
                    cond.append(tt)
                j += 1
            rank_dep = bool(RANK_COND_RE.search(" ".join(cond))) or inherited
            k = j + 1
            if k < n and toks[k][0] == "{":
                pending_if = {"rank": rank_dep, "line": ln}
                i = k  # let the '{' handler push the scope
                continue
            scopes.append({"kind": "ifstmt", "rank": rank_dep, "line": ln,
                           "divergent_line": None, "bdepth": bdepth,
                           "pdepth": pdepth})
            i = k
            continue
        if t == "else":
            carried = getattr(check_coll, "_carry", False)
            check_coll._carry = False
            k = i + 1
            if peek_else(k):
                i = k
                continue
            if k < n and toks[k][0] == "if":
                pending_if = {"else_carry": carried}
                i = k
                continue
            if k < n and toks[k][0] == "{":
                pending_if = {"rank": carried, "line": ln}
                i = k
                continue
            scopes.append({"kind": "ifstmt", "rank": carried, "line": ln,
                           "divergent_line": None, "bdepth": bdepth,
                           "pdepth": pdepth})
            i = k
            continue
        if t == "{":
            bdepth += 1
            if pending_if is not None and "rank" in pending_if:
                scopes.append({"kind": "if", "rank": pending_if["rank"],
                               "line": pending_if["line"],
                               "divergent_line": None, "bdepth": bdepth})
            else:
                scopes.append({"kind": "brace", "rank": False, "line": ln,
                               "divergent_line": None, "bdepth": bdepth})
            pending_if = None
            i += 1
            continue
        if t == "}":
            while scopes and scopes[-1]["kind"] == "ifstmt":
                scopes.pop()  # malformed nesting guard
            carry = False
            if scopes and scopes[-1].get("bdepth") == bdepth:
                popped = scopes.pop()
                carry = popped["kind"] == "if" and popped["rank"]
                # `if (a) if (b) { ... }`: the enclosing unbraced if is
                # complete too (unless an else follows).
                if not peek_else(i + 1):
                    while (scopes and scopes[-1]["kind"] == "ifstmt"
                           and scopes[-1]["bdepth"] == bdepth - 1):
                        inner = scopes.pop()
                        carry = carry or inner["rank"]
            bdepth = max(0, bdepth - 1)
            check_coll._carry = carry if peek_else(i + 1) else False
            i += 1
            continue
        if t == "(":
            pdepth += 1
            i += 1
            continue
        if t == ")":
            pdepth = max(0, pdepth - 1)
            i += 1
            continue
        if t == ";":
            carry = False
            while (scopes and scopes[-1]["kind"] == "ifstmt"
                   and scopes[-1]["bdepth"] == bdepth
                   and scopes[-1]["pdepth"] == pdepth):
                carry = carry or scopes.pop()["rank"]
            check_coll._carry = carry if peek_else(i + 1) else False
            i += 1
            continue
        if t in ("return", "throw"):
            if any(s.get("rank") for s in scopes):
                mark_divergent()
            i += 1
            continue
        if t in COLLECTIVES and i + 1 < n and toks[i + 1][0] == "(":
            prev = toks[i - 1][0] if i > 0 else ""
            if prev != "::":  # skip out-of-class definitions
                rank_scope = next((s for s in scopes if s.get("rank")), None)
                div = next(
                    (s for s in scopes if s.get("divergent_line") is not None),
                    None)
                if rank_scope is not None:
                    emit(ln,
                         f"collective '{t}' inside the rank-dependent branch "
                         f"opened at line {rank_scope['line']}: not every "
                         "rank executes it (deadlock)")
                elif div is not None:
                    emit(ln,
                         f"collective '{t}' is unreachable on some ranks: "
                         f"the rank-dependent branch at line "
                         f"{div['divergent_line']} returns/throws before it")
            i += 1
            continue
        i += 1


# --------------------------------------------------------------------------
# Pragma / region utilities (shared by MC-OMP-002 and MC-RED-003)
# --------------------------------------------------------------------------

PRAGMA_RE = re.compile(r"^[ \t]*#[ \t]*pragma[ \t]+omp\b.*$", re.MULTILINE)


def pragmas(model):
    """Logical `#pragma omp` directives: (start_offset, body_offset, text)
    where body_offset is the first char after the directive (continuation
    lines joined)."""
    out = []
    for m in PRAGMA_RE.finditer(model.cleaned):
        start, end = m.start(), m.end()
        text = m.group(0)
        while text.rstrip().endswith("\\"):
            nl = model.cleaned.find("\n", end)
            if nl < 0:
                break
            nxt_end = model.cleaned.find("\n", nl + 1)
            nxt_end = len(model.cleaned) if nxt_end < 0 else nxt_end
            text = text.rstrip()[:-1] + " " + model.cleaned[nl + 1:nxt_end]
            end = nxt_end
        out.append((start, end, " ".join(text.split())))
    return out


def matching_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def statement_end(text, pos):
    """Offset one past the `;` ending the statement starting at/after pos
    (tracks nested parens/braces, e.g. lambdas in arguments)."""
    depth = 0
    for i in range(pos, len(text)):
        c = text[i]
        if c in "({[":
            depth += 1
        elif c in ")}]":
            depth -= 1
        elif c == ";" and depth <= 0:
            return i + 1
    return len(text)


def construct_body(text, after):
    """Span of the structured block following a pragma: the next `{`..`}`
    if a brace comes before any `;`, else the single statement."""
    i = after
    while i < len(text) and text[i] in " \t\n":
        i += 1
    j = i
    while j < len(text) and text[j] not in "{;":
        j += 1
    if j < len(text) and text[j] == "{":
        return (j, matching_brace(text, j) + 1)
    return (i, statement_end(text, i))


CLAUSE_PRIVATE_RE = re.compile(
    r"(?:firstprivate|lastprivate|private|linear)\s*\(([^)]*)\)")
CLAUSE_REDUCTION_RE = re.compile(r"reduction\s*\(\s*[^:()]+:\s*([^)]*)\)")


def clause_private_names(pragma_text):
    names = set()
    for m in CLAUSE_PRIVATE_RE.finditer(pragma_text):
        names.update(x.strip() for x in m.group(1).split(",") if x.strip())
    for m in CLAUSE_REDUCTION_RE.finditer(pragma_text):
        names.update(x.strip() for x in m.group(1).split(",") if x.strip())
    return names


# --------------------------------------------------------------------------
# MC-OMP-002
# --------------------------------------------------------------------------

DECL_RE = re.compile(
    r"(?:^|[;{}()])\s*"
    r"(?:const\s+|static\s+|constexpr\s+|volatile\s+|mutable\s+)*"
    r"(?P<type>auto|unsigned(?:\s+long)*(?:\s+int)?|long(?:\s+long)?(?:\s+int)?"
    r"|[A-Za-z_]\w*(?:::[A-Za-z_]\w*)*(?:<[^;{}]*?>)?)"
    r"(?:\s*[&*])*\s+"
    r"(?P<name>[A-Za-z_]\w*)\s*(?=[=({;,])")

BINDING_RE = re.compile(r"auto\s*&?\s*\[([^\]]+)\]")

ASSIGN_OP_RE = re.compile(
    r"<<=|>>=|\+=|-=|\*=|/=|%=|&=|\|=|\^=|(?<![<>!=+\-*/%&|^=])=(?![=])")

INCDEC_RE = re.compile(
    r"(\+\+|--)\s*([A-Za-z_]\w*)|([A-Za-z_]\w*)\s*(\+\+|--)")


def declared_names(region_text):
    names = set()
    for m in DECL_RE.finditer(region_text):
        if m.group("type") not in KEYWORDS_NOT_TYPES:
            names.add(m.group("name"))
    for m in BINDING_RE.finditer(region_text):
        names.update(x.strip() for x in m.group(1).split(",") if x.strip())
    return names


def lvalue_base(text, op_pos):
    """Walk left from an assignment operator to the base identifier of its
    lvalue chain (`plan.ij`, `q_[i]`, `obj->field`). Returns (name, start)
    or (None, op_pos)."""
    i = op_pos - 1
    while i >= 0 and text[i] in " \t\n":
        i -= 1
    # strip trailing index chains
    while i >= 0:
        if text[i] == "]":
            depth = 0
            while i >= 0:
                if text[i] == "]":
                    depth += 1
                elif text[i] == "[":
                    depth -= 1
                    if depth == 0:
                        break
                i -= 1
            i -= 1
            while i >= 0 and text[i] in " \t\n":
                i -= 1
            continue
        break
    name = None
    while i >= 0:
        m = None
        j = i
        while j >= 0 and (text[j].isalnum() or text[j] == "_"):
            j -= 1
        if j < i:
            name = text[j + 1:i + 1]
            i = j
        else:
            return (None, op_pos)
        while i >= 0 and text[i] in " \t\n":
            i -= 1
        if i >= 1 and text[i - 1:i + 1] == "->":
            i -= 2
        elif i >= 0 and text[i] == ".":
            i -= 1
        elif i >= 1 and text[i - 1:i + 1] == "::":
            i -= 2
        else:
            break
        while i >= 0 and text[i] in " \t\n":
            i -= 1
        # continue walking to the chain's base
    if name and (name[0].isalpha() or name[0] == "_"):
        return (name, i + 1)
    return (None, op_pos)


def sanctioned_spans(model, region_start, region_end):
    """Spans inside the region covered by master/single/critical bodies or
    the statement under an `omp atomic`."""
    spans = []
    for start, end, text in pragmas(model):
        if start < region_start or start >= region_end:
            continue
        if re.search(r"\bomp\s+(master|single|critical)\b", text):
            spans.append(construct_body(model.cleaned, end))
        elif re.search(r"\bomp\s+atomic\b", text):
            spans.append((end, statement_end(model.cleaned, end)))
    return spans


def parallel_regions(model):
    """(pragma_text, region_start, region_end) for every `omp parallel`
    (including combined parallel-for) directive."""
    out = []
    for start, end, text in pragmas(model):
        if re.search(r"\bomp\s+parallel\b", text):
            body = construct_body(model.cleaned, end)
            out.append((text, body[0], body[1]))
    return out


def blank_pragmas(model):
    """model.cleaned with every `#pragma omp` directive's text replaced by
    spaces (same length), so write scanning cannot match into directives."""
    text = list(model.cleaned)
    for start, end, _ in pragmas(model):
        for i in range(start, end):
            if text[i] != "\n":
                text[i] = " "
    return "".join(text)


def check_omp(model, findings, scope_paths):
    if scope_paths:
        norm = model.path.replace(os.sep, "/")
        if not any(s in norm for s in scope_paths):
            return
    text = blank_pragmas(model)
    for pragma_text, rstart, rend in parallel_regions(model):
        region = text[rstart:rend]
        decls = declared_names(region)
        privates = clause_private_names(pragma_text)
        for _, _, ptext in pragmas(model):
            privates |= clause_private_names(ptext)
        spans = sanctioned_spans(model, rstart, rend)

        def sanctioned(pos):
            return any(s <= pos < e for s, e in spans)

        def report(base, pos):
            line = model.line_of(pos)
            if base in decls or base in privates:
                return
            if sanctioned(pos) or model.allowed("MC-OMP-002", line):
                return
            findings.append(Finding(
                "MC-OMP-002", model.path, line,
                f"raw write to '{base}' (not declared in this parallel "
                "region) -- route it through an access annotation type "
                "(common/access.hpp) or an omp master/single/atomic "
                "construct"))

        for m in ASSIGN_OP_RE.finditer(region):
            pos = rstart + m.start()
            base, lstart = lvalue_base(text, pos)
            if base is None or base in KEYWORDS_NOT_TYPES \
                    or base in TYPE_KEYWORDS:
                continue
            if lstart < rstart:  # lvalue begins outside the region
                continue
            # Skip declarations-with-initializer: DECL_RE registered the
            # name; redundant here but cheap.
            report(base, pos)
        for m in INCDEC_RE.finditer(region):
            base = m.group(2) or m.group(3)
            if base in KEYWORDS_NOT_TYPES or base in TYPE_KEYWORDS:
                continue
            report(base, rstart + m.start())


# --------------------------------------------------------------------------
# MC-RED-003
# --------------------------------------------------------------------------

def fp_declared(model, name):
    return re.search(
        rf"\b(?:double|float)\s+(?:[&*]\s*)?{re.escape(name)}\b",
        model.cleaned) is not None


def check_red(model, findings):
    text = model.cleaned
    for start, end, ptext in pragmas(model):
        line = model.line_of(start)
        for m in CLAUSE_REDUCTION_RE.finditer(ptext):
            for name in (x.strip() for x in m.group(1).split(",")):
                if name and fp_declared(model, name):
                    if not model.allowed("MC-RED-003", line):
                        findings.append(Finding(
                            "MC-RED-003", model.path, line,
                            f"floating-point reduction over '{name}' has no "
                            "defined combination order; use the sanctioned "
                            "ordered reduction helpers instead"))
        if re.search(r"\bomp\s+atomic\b", ptext):
            stmt_start = end
            stmt = text[stmt_start:statement_end(text, stmt_start)]
            am = ASSIGN_OP_RE.search(stmt)
            im = INCDEC_RE.search(stmt)
            base = None
            if am:
                base, _ = lvalue_base(text, stmt_start + am.start())
            elif im:
                base = im.group(2) or im.group(3)
            if base and fp_declared(model, base):
                aline = model.line_of(stmt_start)
                if not model.allowed("MC-RED-003", aline):
                    findings.append(Finding(
                        "MC-RED-003", model.path, aline,
                        f"omp atomic on floating-point '{base}' accumulates "
                        "in schedule order; use the sanctioned ordered "
                        "reduction helpers instead"))


# --------------------------------------------------------------------------
# MC-WIN-004
# --------------------------------------------------------------------------

def check_win(model, findings):
    """One-sided accesses in a file with no fence anywhere: flag each one.

    File granularity is deliberate: the fence is a collective epoch
    boundary, so code that fences *somewhere* has an ordering story the
    linter cannot judge locally, while a file with traffic and no fence at
    all provably relies on a peer to order its accesses -- the bug class
    this check exists for.
    """
    text = model.cleaned
    if WIN_FENCE_RE.search(text):
        return
    for m in WIN_ACCESS_RE.finditer(text):
        line = model.line_of(m.start())
        if not model.allowed("MC-WIN-004", line):
            findings.append(Finding(
                "MC-WIN-004", model.path, line,
                "one-sided window access with no fence anywhere in this "
                "file; put/get visibility is ordered only by win_fence "
                "epochs (win_acc is element-atomic but still needs a "
                "closing fence before readers)"))


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, names in os.walk(p):
                for nm in sorted(names):
                    if nm.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, nm))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"mc-lint: no such file or directory: {p}", file=sys.stderr)
            sys.exit(2)
    return files


def build_model(path, engine, warned):
    try:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError as e:
        print(f"mc-lint: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if engine in ("clang", "auto"):
        try:
            return model_from_clang(path, text)
        except Exception as e:  # ImportError, LibclangError, parse errors
            if engine == "clang":
                print(f"mc-lint: clang engine unavailable ({e}); "
                      "falling back to text engine", file=sys.stderr)
            elif not warned:
                warned.append(True)
    return model_from_text(path, text)


def main(argv=None):
    ap = argparse.ArgumentParser(prog="mc-lint", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=["src"],
                    help="files or directories to scan (default: src)")
    ap.add_argument("--engine", choices=("auto", "clang", "text"),
                    default="auto",
                    help="lexing front end (auto: clang.cindex if available)")
    ap.add_argument("--checks", default=",".join(CHECKS),
                    help="comma-separated check ids to run")
    ap.add_argument("--omp-scope", default="src/",
                    help="path substrings MC-OMP-002 applies to "
                         "('' = every scanned file)")
    ap.add_argument("--json", action="store_true", help="JSON output")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for cid, desc in CHECKS.items():
            print(f"{cid}  {desc}")
        return 0

    enabled = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = enabled - set(CHECKS)
    if unknown:
        print(f"mc-lint: unknown checks: {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    scope_paths = [s.strip() for s in args.omp_scope.split(",") if s.strip()]

    findings = []
    warned = []
    for path in gather_files(args.paths or ["src"]):
        model = build_model(path, args.engine, warned)
        for line, msg in model.directive_errors:
            findings.append(Finding("MC-LINT-DIRECTIVE", path, line, msg))
        if "MC-COLL-001" in enabled:
            check_coll(model, findings)
        if "MC-OMP-002" in enabled:
            check_omp(model, findings, scope_paths)
        if "MC-RED-003" in enabled:
            check_red(model, findings)
        if "MC-WIN-004" in enabled:
            check_win(model, findings)

    findings.sort(key=lambda f: (f.path, f.line, f.check))
    if args.json:
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
        if findings:
            print(f"mc-lint: {len(findings)} finding(s)", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
