#!/usr/bin/env python3
"""mc-lint v2: whole-program static checks for the minichem-hf tree.

The checks encode the concurrency protocols the code's correctness
argument rests on (DESIGN.md section 11). v2 is *interprocedural*: every
scanned file contributes per-function summaries (collectives issued in
order, window ops issued, rank-dependence of control flow, unordered FP
accumulation) to a project-wide call graph, and the protocol rules run
over that whole-program model instead of one function at a time.

  MC-COLL-001  MPI collective matching. A collective inside a
               rank-dependent branch -- lexically, or hidden behind any
               chain of helper calls -- deadlocks the ranks that never
               arrive. Also flagged after rank-dependent early exits.
               Branches whose sibling arms expand to the *same*
               collective sequence are rank-symmetric and pass.

  MC-OMP-002   OpenMP capture audit (scoped to src/ by default): raw
               writes to state not declared inside an `omp parallel`
               region must be sanctioned (master/single/critical/atomic,
               privatization clauses, or the access annotation types of
               src/common/access.hpp).

  MC-RED-003   Accumulation-order hygiene: FP `reduction(...)` clauses
               and `omp atomic` FP updates have no defined combination
               order and break the bit-reproducible golden trajectories.

  MC-WIN-004   One-sided window epoch hygiene, as a per-window epoch
               state machine: every put/get/acc needs a fence epoch on
               every call path (the function, its callees, or a caller),
               and `win_free` inside an open epoch -- accesses pending
               since the last fence -- is a finding, as is traffic after
               the free.

  MC-SEQ-005   Divergent collective *sequences*: sibling branches of a
               rank test that both issue collectives but in different
               orders/sets interlock different ranks on different
               collectives.

  MC-FP-006    Unordered FP accumulation flowing into golden-trajectory-
               checked state (build / run_scf / run_parallel_scf by
               default; --golden-sinks overrides) through any call chain.

Findings on a line (or the line after) a directive of the form

    // mc-lint: allow(MC-XXX-NNN): <reason>

are suppressed; the reason is mandatory. Checked-in, cross-file
suppressions live in tools/mc-lint/suppressions.json (the ledger): each
entry names a check, a repo-relative path, an optional message
substring, and a mandatory reason; matched findings are reported as
suppressed (visible in SARIF with the justification) and do not fail
the gate. `--audit-allows` reports stale inline directives and ledger
entries that no longer suppress anything.

Inputs: explicit paths (default: src tests tools), plus `--compdb
<build-dir>` to lint every translation unit named in the CMake-exported
compile_commands.json. Output: text (default), `--json`, and `--sarif
<file>` (SARIF 2.1.0, consumed by the CI lint gate for inline
annotations); `--step-summary <file>` appends a rule-by-rule table.

Engine: a libclang lexing front end when the `clang.cindex` bindings
and a loadable libclang are available (`--engine clang`); otherwise a
regex lexer producing the same source model (`--engine text`). All
analyses -- including the summaries and call graph -- run on the model,
so the two engines report identical findings on well-formed sources.

Exit status: 0 clean, 1 findings (or stale suppressions under
--audit-allows), 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from engine import (CHECKS, DIRECTIVE_CHECK, Finding, SOURCE_EXTS,
                    build_model)  # noqa: E402
import interproc  # noqa: E402
import rules  # noqa: E402
import sarif  # noqa: E402
from summaries import ProgramIndex  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.abspath(os.path.join(HERE, "..", ".."))
DEFAULT_PATHS = ["src", "tests", "tools"]
DEFAULT_LEDGER = os.path.join(HERE, "suppressions.json")


# The selftest fixtures violate the rules on purpose; directory scans
# (and therefore the CI gate over tools/) must not trip over them.
FIXTURE_DIR = os.path.join("mc-lint", "tests", "fixtures")


def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, names in os.walk(p):
                if FIXTURE_DIR in os.path.abspath(root):
                    continue
                for nm in sorted(names):
                    if nm.endswith(SOURCE_EXTS):
                        files.append(os.path.join(root, nm))
        elif os.path.isfile(p):
            files.append(p)
        else:
            print(f"mc-lint: no such file or directory: {p}",
                  file=sys.stderr)
            sys.exit(2)
    return files


def compdb_files(build_dir):
    cc = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(cc, "r", encoding="utf-8") as f:
            entries = json.load(f)
    except (OSError, ValueError) as e:
        print(f"mc-lint: cannot read {cc}: {e}", file=sys.stderr)
        sys.exit(2)
    out = []
    for e in entries:
        path = e.get("file", "")
        if not path.endswith(SOURCE_EXTS):
            continue
        if not os.path.isabs(path):
            path = os.path.join(e.get("directory", ""), path)
        path = os.path.abspath(path)
        if os.path.isfile(path):
            out.append(path)
    return out


def load_ledger(path):
    """[(entry_dict, hit_count_box)] -- entries validated, reasons
    mandatory."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except OSError:
        return []
    except ValueError as e:
        print(f"mc-lint: malformed suppression ledger {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    entries = []
    for i, e in enumerate(data.get("suppressions", [])):
        if not e.get("reason", "").strip():
            print(f"mc-lint: ledger entry #{i} ({e.get('check')} "
                  f"{e.get('path')}) is missing its mandatory reason",
                  file=sys.stderr)
            sys.exit(2)
        if not e.get("check") or not e.get("path"):
            print(f"mc-lint: ledger entry #{i} needs 'check' and 'path'",
                  file=sys.stderr)
            sys.exit(2)
        entries.append([e, 0])
    return entries


def apply_ledger(findings, ledger):
    for f in findings:
        rel = sarif._repo_rel(f.path, REPO_ROOT)
        for ent in ledger:
            e = ent[0]
            if e["check"] != f.check:
                continue
            if e["path"] != rel:
                continue
            if e.get("contains") and e["contains"] not in f.message:
                continue
            f.suppression = {"kind": "ledger", "reason": e["reason"]}
            ent[1] += 1
            break


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="mc-lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="*", default=None,
                    help="files or directories to scan "
                         f"(default: {' '.join(DEFAULT_PATHS)})")
    ap.add_argument("--compdb", metavar="BUILD_DIR",
                    help="also lint every TU named in "
                         "BUILD_DIR/compile_commands.json")
    ap.add_argument("--engine", choices=("auto", "clang", "text"),
                    default="auto",
                    help="lexing front end (auto: clang.cindex if "
                         "available)")
    ap.add_argument("--checks", default=",".join(CHECKS),
                    help="comma-separated check ids to run")
    ap.add_argument("--omp-scope", default="src/",
                    help="path substrings MC-OMP-002 applies to "
                         "('' = every scanned file)")
    ap.add_argument("--golden-sinks", default=None, metavar="REGEX",
                    help="qualified-name regex of golden-trajectory-"
                         "checked entry points for MC-FP-006")
    ap.add_argument("--suppressions", default=DEFAULT_LEDGER,
                    metavar="FILE",
                    help="checked-in suppression ledger "
                         "(default: tools/mc-lint/suppressions.json; "
                         "'' disables)")
    ap.add_argument("--sarif", metavar="FILE",
                    help="write a SARIF 2.1.0 log")
    ap.add_argument("--step-summary", metavar="FILE", default=None,
                    help="append a rule-by-rule markdown table "
                         "(default: $GITHUB_STEP_SUMMARY when set)")
    ap.add_argument("--json", action="store_true", help="JSON output")
    ap.add_argument("--audit-allows", action="store_true",
                    help="also flag stale allow directives and unused "
                         "ledger entries")
    ap.add_argument("--list-checks", action="store_true")
    args = ap.parse_args(argv)

    if args.list_checks:
        for cid, desc in CHECKS.items():
            print(f"{cid}  {desc}")
        return 0

    enabled = {c.strip() for c in args.checks.split(",") if c.strip()}
    unknown = enabled - set(CHECKS)
    if unknown:
        print(f"mc-lint: unknown checks: {', '.join(sorted(unknown))}",
              file=sys.stderr)
        return 2
    scope_paths = [s.strip() for s in args.omp_scope.split(",")
                   if s.strip()]

    paths = args.paths or [p for p in DEFAULT_PATHS
                           if os.path.isdir(p)] or ["src"]
    files = gather_files(paths)
    if args.compdb:
        files.extend(compdb_files(args.compdb))
    seen, ordered = set(), []
    for p in files:
        key = os.path.abspath(p)
        if key not in seen:
            seen.add(key)
            ordered.append(p)

    findings = []
    warned = []
    models = {}
    for path in ordered:
        model = build_model(path, args.engine, warned)
        models[path] = model
        for line, msg in model.directive_errors:
            findings.append(Finding(DIRECTIVE_CHECK, path, line, msg))
        if "MC-COLL-001" in enabled:
            rules.check_coll(model, findings)
        if "MC-OMP-002" in enabled:
            rules.check_omp(model, findings, scope_paths)
        if "MC-RED-003" in enabled:
            rules.check_red(model, findings)

    index = ProgramIndex(models, engine_name=args.engine)
    if "MC-COLL-001" in enabled or "MC-SEQ-005" in enabled:
        symmetric = interproc.check_coll_interproc(
            index, findings,
            enable_coll="MC-COLL-001" in enabled,
            enable_seq="MC-SEQ-005" in enabled)
        if symmetric:
            # Rank-symmetric matched arms: every rank runs the same
            # collective sequence, so the lexical findings inside are
            # retracted.
            findings = [f for f in findings
                        if not (f.check == "MC-COLL-001"
                                and (f.path, f.line) in symmetric)]
    if "MC-WIN-004" in enabled:
        interproc.check_win(index, findings)
    if "MC-FP-006" in enabled:
        interproc.check_fp(index, findings, args.golden_sinks)

    ledger = load_ledger(args.suppressions) if args.suppressions else []
    apply_ledger(findings, ledger)

    if args.audit_allows:
        for path in ordered:
            for ln, check in models[path].stale_allows():
                findings.append(Finding(
                    DIRECTIVE_CHECK, path, ln,
                    f"stale allow({check}) directive: it no longer "
                    "suppresses any finding -- remove it"))
        for ent, hits in ((e[0], e[1]) for e in ledger):
            if hits == 0:
                findings.append(Finding(
                    DIRECTIVE_CHECK, args.suppressions, 1,
                    f"stale ledger entry ({ent['check']} at "
                    f"{ent['path']}): it no longer suppresses any "
                    "finding -- remove it"))

    findings.sort(key=lambda f: (f.path, f.line, f.check))
    live = [f for f in findings if not f.suppression]

    if args.sarif:
        sarif.write_sarif(args.sarif, findings, REPO_ROOT)
    summary_path = args.step_summary or os.environ.get(
        "GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a", encoding="utf-8") as f:
            f.write(sarif.step_summary_table(
                findings, len(ordered), len(index.functions)) + "\n")

    if args.json:
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
        if live:
            print(f"mc-lint: {len(live)} finding(s)", file=sys.stderr)
        suppressed = len(findings) - len(live)
        if suppressed:
            print(f"mc-lint: {suppressed} ledger-suppressed finding(s)",
                  file=sys.stderr)
    return 1 if live else 0


if __name__ == "__main__":
    sys.exit(main())
