"""Interprocedural mc-lint rules over the ProgramIndex.

  MC-COLL-001 (interprocedural half)
      A *call* under a rank-dependent branch (or after a rank-dependent
      early exit) whose callee transitively issues a collective --
      including the window collectives fence/create/free -- deadlocks
      exactly like a direct collective would. The refinement over the
      lexical rule: if BOTH sibling arms of the rank test expand to the
      same collective sequence, every rank issues the same sequence and
      nothing is flagged.

  MC-SEQ-005
      Both sibling arms of a rank-dependent branch issue collectives,
      but their expanded sequences differ: different ranks enter
      different collectives and the job interlocks.

  MC-WIN-004 (whole-program v2)
      (a) unfenced-chain: one-sided traffic in a function none of whose
          call paths (the function, its callees, or any transitive
          caller) ever fences -- nobody owns an epoch boundary for it.
      (b) epoch machine: in any function that frees a window, simulate
          the linearized put/get/acc/fence/free stream per window name:
          win_free with accesses pending since the last fence, and any
          access after win_free, are findings.

  MC-FP-006
      Unordered FP accumulation (the MC-RED-003 event set) reachable
      through any call chain from a golden-trajectory-checked entry
      point (default: build / run_scf / run_parallel_scf). Reported at
      the sink's call site with the full chain, independently of the
      RED-003 finding at the accumulation itself.
"""

from __future__ import annotations

import re

from engine import Finding
from summaries import walk_events

GOLDEN_SINKS_DEFAULT = r"(?:^|::)(build|run_scf|run_parallel_scf)$"

_SEQ_SHOW = 6


def _fmt_seq(seq):
    shown = seq[:_SEQ_SHOW]
    tail = ", ..." if len(seq) > _SEQ_SHOW else ""
    return "[" + ", ".join(shown) + tail + "]"


def _fmt_chain(chain):
    return " -> ".join(chain)


def _arm_has_exit(events):
    return any(ev[0] == "exit" for ev in walk_events(events))


def check_coll_interproc(index, findings, enable_coll=True, enable_seq=True):
    """Returns the set of (path, line) of collectives inside rank-symmetric
    matched arms -- the driver drops lexical MC-COLL-001 findings there."""
    symmetric = set()
    for fn in index.functions:
        model = index.models[fn.path]
        _walk_coll(index, fn, model, fn.events, None, None, findings,
                   enable_coll, enable_seq, symmetric)
    return symmetric


def _walk_coll(index, fn, model, events, rank_line, divergent_line,
               findings, enable_coll, enable_seq, symmetric):
    """Returns the (possibly updated) divergent_line after these events."""
    for ev in events:
        kind = ev[0]
        if kind == "branch":
            _, ln, cond, cond_calls, then_ev, else_ev = ev
            rank_dep = index.cond_is_rank_dep(cond, cond_calls)
            if rank_dep:
                tseq = index.events_seq(then_ev)
                eseq = index.events_seq(else_ev)
                matched = tseq == eseq
                if matched and tseq:
                    # Both arms expand to the same collective sequence:
                    # every rank issues it regardless of the arm taken,
                    # so the direct collectives inside are not findings.
                    for sub in walk_events(then_ev + else_ev):
                        if sub[0] == "coll":
                            symmetric.add((fn.path, sub[2]))
                if (enable_seq and tseq and eseq and not matched
                        and "<ambig>" not in tseq + eseq):
                    if not model.allowed("MC-SEQ-005", ln):
                        findings.append(Finding(
                            "MC-SEQ-005", fn.path, ln,
                            "rank-dependent sibling branches execute "
                            "divergent collective sequences: "
                            f"then {_fmt_seq(tseq)} vs else {_fmt_seq(eseq)}"
                            " -- ranks taking different arms interlock on "
                            "different collectives"))
                if not matched:
                    _walk_coll(index, fn, model, then_ev, ln,
                               divergent_line, findings, enable_coll,
                               enable_seq, symmetric)
                    _walk_coll(index, fn, model, else_ev, ln,
                               divergent_line, findings, enable_coll,
                               enable_seq, symmetric)
                t_exit = _arm_has_exit(then_ev)
                e_exit = _arm_has_exit(else_ev)
                if t_exit != e_exit:
                    divergent_line = ln
            else:
                d1 = _walk_coll(index, fn, model, then_ev, rank_line,
                                divergent_line, findings, enable_coll,
                                enable_seq, symmetric)
                d2 = _walk_coll(index, fn, model, else_ev, rank_line,
                                divergent_line, findings, enable_coll,
                                enable_seq, symmetric)
                divergent_line = d1 or d2 or divergent_line
        elif kind == "call" and enable_coll:
            name, ln = ev[1], ev[2]
            colly = [c for c in index.resolve(name) if index.may_coll(c)]
            if not colly:
                continue
            chain = index.coll_chain(colly[0]) or [colly[0].qual, "?"]
            if rank_line is not None:
                if not model.allowed("MC-COLL-001", ln):
                    findings.append(Finding(
                        "MC-COLL-001", fn.path, ln,
                        f"call to '{name}' inside the rank-dependent "
                        f"branch opened at line {rank_line} transitively "
                        f"issues a collective ({_fmt_chain(chain)}): not "
                        "every rank executes it (deadlock)"))
            elif divergent_line is not None:
                if not model.allowed("MC-COLL-001", ln):
                    findings.append(Finding(
                        "MC-COLL-001", fn.path, ln,
                        f"call to '{name}' transitively issues a "
                        f"collective ({_fmt_chain(chain)}) that is "
                        "unreachable on some ranks: the rank-dependent "
                        f"branch at line {divergent_line} returns/throws "
                        "before it"))
    return divergent_line


# --------------------------------------------------------------------------
# MC-WIN-004 v2
# --------------------------------------------------------------------------


# Functions *named* like the one-sided primitives are facade forwarders
# (par::Ddi::put -> Comm::win_put): every call site is already recorded
# as a direct win event, so the epoch obligation is checked at each
# caller and the forwarder body itself owes no fence.
_FACADE_NAMES = frozenset(
    {"put", "get", "acc", "win_put", "win_get", "win_acc"})


def check_win(index, findings):
    for fn in index.functions:
        direct_wins = [ev for ev in walk_events(fn.events)
                       if ev[0] == "win"]
        if direct_wins and fn.name not in _FACADE_NAMES:
            _check_win_unfenced_chain(index, fn, direct_wins, findings)
        if any(ev[0] == "free" for ev in walk_events(fn.events)):
            _check_win_epochs(index, fn, findings)


def _check_win_unfenced_chain(index, fn, wins, findings):
    reach = index.transitive_callers(fn)  # includes fn itself
    if any(index.fences_down(g) for g in reach):
        return
    model = index.models[fn.path]
    callers = sorted({g.qual for g in reach if g is not fn})
    via = (f" (callers checked: {', '.join(callers[:4])})" if callers
           else " (no callers fence on its behalf either)")
    for ev in wins:
        op, line = ev[1], ev[3]
        if not model.allowed("MC-WIN-004", line):
            findings.append(Finding(
                "MC-WIN-004", fn.path, line,
                f"one-sided '{op}' in '{fn.qual}' with no fence epoch "
                "anywhere on its call paths -- put/get visibility is "
                "ordered only by win_fence epochs (win_acc is "
                "element-atomic but still needs a closing fence before "
                f"readers){via}"))


def _check_win_epochs(index, fn, findings):
    """Per-window epoch state machine over the linearized, call-inlined
    event stream of a window-freeing function."""
    model = index.models[fn.path]
    stream = index.inline_stream(fn)
    pending = {}   # window name -> (count, first_line)
    freed = {}     # window name -> free line
    for ev in stream:
        kind = ev[0]
        if kind == "win":
            _, op, win, line = ev
            if win in freed:
                if not model.allowed("MC-WIN-004", line):
                    findings.append(Finding(
                        "MC-WIN-004", fn.path, line,
                        f"one-sided '{op}' to window '{win}' after its "
                        f"win_free at line {freed[win]}"))
                continue
            cnt, first = pending.get(win, (0, line))
            pending[win] = (cnt + 1, first)
        elif kind == "fence":
            win = ev[1]
            if win == "?":
                pending.clear()
            else:
                pending.pop(win, None)
                pending.pop("?", None)
        elif kind == "create":
            # Re-creating a window handle (same variable, fresh storage)
            # ends its freed state; an anonymous create conservatively
            # resets every freed window.
            win = ev[1]
            if win == "?":
                freed.clear()
            else:
                freed.pop(win, None)
        elif kind == "free":
            win, line = ev[1], ev[2]
            if win == "?":
                continue
            if win in pending:
                cnt, first = pending.pop(win)
                if not model.allowed("MC-WIN-004", line):
                    findings.append(Finding(
                        "MC-WIN-004", fn.path, line,
                        f"win_free of '{win}' inside an open epoch: "
                        f"{cnt} access(es) since the last fence (first "
                        f"at line {first}) are never closed by a fence "
                        "before the window is destroyed"))
            freed[win] = line


# --------------------------------------------------------------------------
# MC-FP-006
# --------------------------------------------------------------------------


def check_fp(index, findings, sink_regex=None):
    sink_re = re.compile(sink_regex or GOLDEN_SINKS_DEFAULT)
    seen = set()
    for fn in index.functions:
        if not sink_re.search(fn.qual):
            continue
        model = index.models[fn.path]
        for ev in walk_events(fn.events):
            if ev[0] != "call":
                continue
            name, ln = ev[1], ev[2]
            for cand in index.resolve(name):
                if not index.fp_down(cand):
                    continue
                chain = index.fp_chain(cand)
                if chain is None:
                    continue
                names, fp_path, fp_line, fp_desc = chain
                key = (fn.path, ln, fp_path, fp_line)
                if key in seen:
                    continue
                seen.add(key)
                if not model.allowed("MC-FP-006", ln):
                    findings.append(Finding(
                        "MC-FP-006", fn.path, ln,
                        f"unordered FP accumulation ({fp_desc} at "
                        f"{fp_path}:{fp_line}) flows into "
                        f"golden-trajectory-checked '{fn.qual}' via "
                        f"{_fmt_chain([fn.qual] + names)} -- ordered "
                        "reduction helpers keep golden trajectories "
                        "bit-reproducible"))
                break
