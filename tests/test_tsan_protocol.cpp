// Compact concurrency-protocol exercise for sanitizer runs (`ctest -L
// tsan`). The full equivalence sweep is too slow under ThreadSanitizer's
// ~10x slowdown, so this file drives exactly the configurations whose
// synchronization protocols differ -- each of the paper's three Fock
// builders at multiple ranks x multiple threads, both schedules, lazy FI
// flushing on and off -- once each, on a small system. Under MC_SANITIZE=
// thread this validates the race-freedom-by-construction argument of
// Algorithm 3 (direct shared-G writes to distinct kl blocks + buffered
// i/j columns); in a normal build it is a fast smoke test.

#include <gtest/gtest.h>

#include <memory>

#include "fock_fixture.hpp"

namespace mc::core {
namespace {

FockFixture& fx() {
  static FockFixture f(chem::builders::water(), "STO-3G");
  return f;
}

TEST(TsanProtocol, MpiDlbCounterTwoRanks) {
  la::Matrix g = build_distributed(fx(), 2, [&](par::Ddi& ddi) {
    return std::make_unique<FockBuilderMpi>(fx().eri, fx().screen, ddi);
  });
  expect_bit_comparable(g, fx().g_ref, kMaxSkeletonUlps, "mpi dlb r=2");
}

TEST(TsanProtocol, MpiWorkStealingThreeRanks) {
  la::Matrix g = build_distributed(fx(), 3, [&](par::Ddi& ddi) {
    return std::make_unique<FockBuilderMpi>(fx().eri, fx().screen, ddi,
                                            MpiLoadBalance::kWorkStealing);
  });
  expect_bit_comparable(g, fx().g_ref, kMaxSkeletonUlps, "mpi steal r=3");
}

TEST(TsanProtocol, PrivateFockTwoRanksFourThreads) {
  for (bool dyn : {true, false}) {
    la::Matrix g = build_distributed(fx(), 2, [&](par::Ddi& ddi) {
      PrivateFockOptions opt;
      opt.nthreads = 4;
      opt.dynamic_schedule = dyn;
      return std::make_unique<FockBuilderPrivate>(fx().eri, fx().screen,
                                                  ddi, opt);
    });
    expect_bit_comparable(g, fx().g_ref, kMaxSkeletonUlps,
                          dyn ? "private dyn" : "private stat");
  }
}

TEST(TsanProtocol, SharedFockTwoRanksFourThreads) {
  for (bool lazy : {true, false}) {
    la::Matrix g = build_distributed(fx(), 2, [&](par::Ddi& ddi) {
      SharedFockOptions opt;
      opt.nthreads = 4;
      opt.lazy_fi_flush = lazy;
      return std::make_unique<FockBuilderShared>(fx().eri, fx().screen, ddi,
                                                 opt);
    });
    expect_bit_comparable(g, fx().g_ref, kMaxSkeletonUlps,
                          lazy ? "shared lazy" : "shared eager");
  }
}

TEST(TsanProtocol, DistFockWindowsThreeRanks) {
  // The one-sided window layer: concurrent put/get into disjoint segments,
  // striped-lock acc from every rank into every segment, and the fence
  // epochs separating them. Tight budgets force evictions and early
  // acc-flushes so the LRU paths run under TSan too; both load-balance
  // modes are driven because the static path skips the DLB counter.
  for (bool dyn : {true, false}) {
    la::Matrix g = build_distributed(fx(), 3, [&](par::Ddi& ddi) {
      DistFockOptions opt;
      opt.dynamic_lb = dyn;
      opt.tile_rows = 3;
      opt.max_cached_tiles = 2;
      opt.max_open_f_tiles = 2;
      return std::make_unique<FockBuilderDist>(fx().eri, fx().screen, ddi,
                                               opt);
    });
    expect_bit_comparable(g, fx().g_ref, kMaxSkeletonUlps,
                          dyn ? "dist dlb r=3" : "dist static r=3");
  }
}

TEST(TsanProtocol, WeightedDeltaBuildsAcrossAllThreeBuilders) {
  // The incremental path adds the density-weighted prescreens and the
  // density_screened counter accumulation to every builder's parallel
  // region; drive each one under ranks x threads so TSan sees the new
  // branches and the atomic counter update.
  la::Matrix g_mpi = build_distributed_delta(fx(), 2, [&](par::Ddi& ddi) {
    return std::make_unique<FockBuilderMpi>(fx().eri, fx().screen, ddi);
  });
  expect_bit_comparable(g_mpi, fx().g_ref_delta, kMaxSkeletonUlps,
                        "mpi weighted delta");
  la::Matrix g_priv = build_distributed_delta(fx(), 2, [&](par::Ddi& ddi) {
    PrivateFockOptions opt;
    opt.nthreads = 4;
    return std::make_unique<FockBuilderPrivate>(fx().eri, fx().screen, ddi,
                                                opt);
  });
  expect_bit_comparable(g_priv, fx().g_ref_delta, kMaxSkeletonUlps,
                        "private weighted delta");
  la::Matrix g_sh = build_distributed_delta(fx(), 2, [&](par::Ddi& ddi) {
    SharedFockOptions opt;
    opt.nthreads = 4;
    return std::make_unique<FockBuilderShared>(fx().eri, fx().screen, ddi,
                                               opt);
  });
  expect_bit_comparable(g_sh, fx().g_ref_delta, kMaxSkeletonUlps,
                        "shared weighted delta");
  la::Matrix g_dist = build_distributed_delta(fx(), 2, [&](par::Ddi& ddi) {
    DistFockOptions opt;
    opt.tile_rows = 3;
    return std::make_unique<FockBuilderDist>(fx().eri, fx().screen, ddi,
                                             opt);
  });
  expect_bit_comparable(g_dist, fx().g_ref_delta, kMaxSkeletonUlps,
                        "dist weighted delta");
}

TEST(TsanProtocol, SharedFockStaticScheduleUnpadded) {
  // padding=0 maximizes adjacent-column traffic in the buffer reduction:
  // false sharing is a performance bug, not a correctness bug, and TSan
  // must stay silent on it.
  la::Matrix g = build_distributed(fx(), 1, [&](par::Ddi& ddi) {
    SharedFockOptions opt;
    opt.nthreads = 4;
    opt.dynamic_schedule = false;
    opt.padding_doubles = 0;
    return std::make_unique<FockBuilderShared>(fx().eri, fx().screen, ddi,
                                               opt);
  });
  expect_bit_comparable(g, fx().g_ref, kMaxSkeletonUlps, "shared pad=0");
}

}  // namespace
}  // namespace mc::core
