// Tests of the SCF job server stack (DESIGN.md section 15): the world
// pool, the admission-controlled priority queue, the warm caches and
// their fingerprints, and the server end to end -- including the ISSUE 10
// acceptance gates: a smoke batch of >= 8 concurrent jobs across >= 2
// pooled worlds, clean rejection reporting, and the warm-cache regression
// (a repeat job reaches the same energy in strictly fewer iterations).

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "chem/builders.hpp"
#include "common/error.hpp"
#include "core/parallel_scf.hpp"
#include "golden_trajectories.hpp"
#include "par/runtime.hpp"
#include "par/world_pool.hpp"
#include "serve/job_queue.hpp"
#include "serve/server.hpp"
#include "serve/warm_cache.hpp"

namespace {

using mc::testing::kGoldenEnergyTolerance;

// ---------------------------------------------------------------------------
// WorldPool

TEST(WorldPool, RunsEveryTaskAndReportsWorldsUsed) {
  std::atomic<int> next{0};
  std::atomic<int> ran{0};
  const int ntasks = 12;
  mc::par::WorldPool pool(3, [&](int /*world*/) -> mc::par::PooledTask {
    if (next.fetch_add(1) >= ntasks) return {};
    return [&ran] { ran.fetch_add(1); };
  });
  pool.join();
  EXPECT_EQ(ran.load(), ntasks);
  long total = 0;
  for (int w = 0; w < pool.nworlds(); ++w) total += pool.tasks_run(w);
  EXPECT_EQ(total, ntasks);
  EXPECT_GE(pool.worlds_used(), 1);
  EXPECT_LE(pool.worlds_used(), 3);
  EXPECT_EQ(pool.tasks_failed(), 0);
}

TEST(WorldPool, SurvivesThrowingTasks) {
  std::atomic<int> next{0};
  mc::par::WorldPool pool(2, [&](int) -> mc::par::PooledTask {
    const int i = next.fetch_add(1);
    if (i >= 6) return {};
    if (i % 2 == 0) return [] { throw std::runtime_error("task bug"); };
    return [] {};
  });
  pool.join();
  EXPECT_EQ(pool.tasks_failed(), 3);
}

TEST(WorldPool, ConcurrentSpmdWorldsAreAllowed) {
  // The relaxed run_spmd contract behind the pool: two worlds may run
  // SPMD jobs at the same time from different host threads.
  std::atomic<int> peak{0};
  std::atomic<int> next{0};
  mc::par::WorldPool pool(2, [&](int) -> mc::par::PooledTask {
    if (next.fetch_add(1) >= 2) return {};
    return [&peak] {
      mc::par::run_spmd(2, [&peak](mc::par::Comm& comm) {
        const int active = mc::par::active_spmd_worlds();
        int seen = peak.load();
        while (active > seen && !peak.compare_exchange_weak(seen, active)) {
        }
        comm.barrier();
      });
    };
  });
  pool.join();
  EXPECT_EQ(pool.tasks_failed(), 0);
  EXPECT_GE(peak.load(), 1);
}

// ---------------------------------------------------------------------------
// JobQueue

mc::serve::QueuedJob make_job(long id, int priority,
                              const std::string& tenant = "t") {
  mc::serve::QueuedJob j;
  j.id = id;
  j.spec.priority = priority;
  j.spec.tenant = tenant;
  return j;
}

TEST(JobQueue, DequeuesByPriorityThenSubmissionOrder) {
  mc::serve::JobQueue q(16, 0);
  ASSERT_TRUE(q.push(make_job(0, 0)).accepted);
  ASSERT_TRUE(q.push(make_job(1, 5)).accepted);
  ASSERT_TRUE(q.push(make_job(2, 5)).accepted);
  ASSERT_TRUE(q.push(make_job(3, 1)).accepted);
  q.close();
  std::vector<long> order;
  mc::serve::QueuedJob j;
  while (q.pop(j)) order.push_back(j.id);
  EXPECT_EQ(order, (std::vector<long>{1, 2, 3, 0}));
}

TEST(JobQueue, RejectsWhenFullWithReason) {
  mc::serve::JobQueue q(2, 0);
  ASSERT_TRUE(q.push(make_job(0, 0)).accepted);
  ASSERT_TRUE(q.push(make_job(1, 0)).accepted);
  const auto a = q.push(make_job(2, 0));
  EXPECT_FALSE(a.accepted);
  EXPECT_NE(a.reason.find("queue full"), std::string::npos);
  EXPECT_EQ(q.depth(), 2u);
}

TEST(JobQueue, EnforcesPerTenantCap) {
  mc::serve::JobQueue q(16, 1);
  ASSERT_TRUE(q.push(make_job(0, 0, "alice")).accepted);
  const auto a = q.push(make_job(1, 0, "alice"));
  EXPECT_FALSE(a.accepted);
  EXPECT_NE(a.reason.find("alice"), std::string::npos);
  EXPECT_TRUE(q.push(make_job(2, 0, "bob")).accepted);
  // Popping alice's job frees her slot.
  mc::serve::QueuedJob j;
  ASSERT_TRUE(q.pop(j));
  EXPECT_TRUE(q.push(make_job(3, 0, "alice")).accepted);
}

TEST(JobQueue, CloseDrainsAdmittedJobsThenReleasesPoppers) {
  mc::serve::JobQueue q(8, 0);
  ASSERT_TRUE(q.push(make_job(0, 0)).accepted);
  q.close();
  EXPECT_FALSE(q.push(make_job(1, 0)).accepted);
  mc::serve::QueuedJob j;
  EXPECT_TRUE(q.pop(j));   // the admitted job still comes out
  EXPECT_FALSE(q.pop(j));  // then poppers are released
}

// ---------------------------------------------------------------------------
// Warm caches and fingerprints

TEST(WarmCache, FingerprintsSeparateGeometryBasisAndThreshold) {
  const auto water = mc::chem::builders::water();
  const auto methane = mc::chem::builders::methane();
  const auto k1 = mc::serve::setup_fingerprint(water, "STO-3G", {}, 1e-10);
  EXPECT_EQ(k1, mc::serve::setup_fingerprint(water, "STO-3G", {}, 1e-10));
  EXPECT_NE(k1, mc::serve::setup_fingerprint(methane, "STO-3G", {}, 1e-10));
  EXPECT_NE(k1, mc::serve::setup_fingerprint(water, "6-31G", {}, 1e-10));
  EXPECT_NE(k1, mc::serve::setup_fingerprint(water, "STO-3G", {}, 1e-8));
  const std::vector<std::string> mixed = {"STO-3G", "6-31G", "STO-3G"};
  EXPECT_NE(k1, mc::serve::setup_fingerprint(water, "STO-3G", mixed, 1e-10));
  // The density key refines the setup key by charge.
  EXPECT_NE(mc::serve::density_fingerprint(k1, 0),
            mc::serve::density_fingerprint(k1, 2));
}

TEST(WarmCache, LruEvictsOldestAndCountsHits) {
  mc::serve::WarmCache<int> cache(2);
  cache.put(1, std::make_shared<const int>(10));
  cache.put(2, std::make_shared<const int>(20));
  ASSERT_NE(cache.get(1), nullptr);  // refreshes key 1
  cache.put(3, std::make_shared<const int>(30));  // evicts key 2
  EXPECT_EQ(cache.get(2), nullptr);
  ASSERT_NE(cache.get(1), nullptr);
  ASSERT_NE(cache.get(3), nullptr);
  EXPECT_EQ(*cache.get(3), 30);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 4);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(WarmCache, CapacityZeroDisablesCaching) {
  mc::serve::WarmCache<int> cache(0);
  cache.put(1, std::make_shared<const int>(10));
  EXPECT_EQ(cache.get(1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// ScfJobServer

TEST(ScfJobServer, SmokeBatchRunsConcurrentlyAcrossWorlds) {
  // ISSUE 10 acceptance gate: >= 8 concurrent jobs across >= 2 pooled
  // worlds, every job terminal, zero hangs (the ctest TIMEOUT converts a
  // hang into a failure).
  mc::serve::ServerOptions opt;
  opt.nworlds = 2;
  mc::serve::ScfJobServer server(opt);

  const mc::chem::Molecule mols[] = {
      mc::chem::builders::water(), mc::chem::builders::methane(),
      mc::chem::builders::h2()};
  std::vector<long> ids;
  for (int j = 0; j < 8; ++j) {
    mc::serve::JobSpec spec;
    spec.tenant = (j % 2 == 0) ? "alice" : "bob";
    spec.priority = j % 3;
    spec.mol = mols[j % 3];
    spec.nranks = 2;
    const auto r = server.submit(spec);
    ASSERT_TRUE(r.accepted) << r.reason;
    ids.push_back(r.job_id);
  }
  for (const long id : ids) {
    const auto out = server.wait(id);
    EXPECT_EQ(out.outcome, mc::obs::JobOutcomeKind::kConverged)
        << "job " << id << ": " << out.error;
    EXPECT_GT(out.iterations, 0);
  }
  const auto s = server.shutdown();
  EXPECT_EQ(s.accepted, 8);
  EXPECT_EQ(s.converged, 8);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.aborted, 0);
  EXPECT_GE(server.worlds_used(), 2);
  EXPECT_EQ(server.records().size(), 8u);
}

TEST(ScfJobServer, WarmRepeatConvergesFasterToTheSameEnergy) {
  // The warm-cache regression gate: a repeat (molecule, basis) job is
  // seeded from the cached converged density and must reach the same
  // energy (golden tolerance) in strictly fewer iterations, with both
  // cache-hit flags set.
  mc::serve::ServerOptions opt;
  opt.nworlds = 1;  // serialize so the repeat sees the first job's density
  mc::serve::ScfJobServer server(opt);

  mc::serve::JobSpec spec;
  spec.molecule_label = "water";
  spec.mol = mc::chem::builders::water();
  spec.nranks = 2;

  const auto cold = server.submit(spec);
  ASSERT_TRUE(cold.accepted);
  const auto cold_out = server.wait(cold.job_id);
  ASSERT_EQ(cold_out.outcome, mc::obs::JobOutcomeKind::kConverged);
  EXPECT_FALSE(cold_out.setup_cache_hit);
  EXPECT_FALSE(cold_out.density_cache_hit);

  const auto warm = server.submit(spec);
  ASSERT_TRUE(warm.accepted);
  const auto warm_out = server.wait(warm.job_id);
  ASSERT_EQ(warm_out.outcome, mc::obs::JobOutcomeKind::kConverged);
  EXPECT_TRUE(warm_out.setup_cache_hit);
  EXPECT_TRUE(warm_out.density_cache_hit);
  EXPECT_NEAR(warm_out.energy, cold_out.energy, kGoldenEnergyTolerance);
  EXPECT_LT(warm_out.iterations, cold_out.iterations);

  const auto s = server.shutdown();
  EXPECT_GE(s.setup_cache_hits, 1);
  EXPECT_GE(s.density_cache_hits, 1);
}

TEST(ScfJobServer, ColdModeNeverWarmStarts) {
  mc::serve::ServerOptions opt;
  opt.nworlds = 1;
  opt.warm_start = false;
  mc::serve::ScfJobServer server(opt);
  mc::serve::JobSpec spec;
  spec.mol = mc::chem::builders::h2();
  const auto a = server.submit(spec);
  const auto b = server.submit(spec);
  ASSERT_TRUE(a.accepted);
  ASSERT_TRUE(b.accepted);
  const auto out_a = server.wait(a.job_id);
  const auto out_b = server.wait(b.job_id);
  EXPECT_FALSE(out_a.density_cache_hit);
  EXPECT_FALSE(out_b.density_cache_hit);
  EXPECT_TRUE(out_b.setup_cache_hit);  // setup reuse is independent
  EXPECT_EQ(out_a.iterations, out_b.iterations);
  server.shutdown();
}

TEST(ScfJobServer, RejectsWhenQueueOverflows) {
  // One world busy + tiny queue: overflow submissions come back rejected
  // with the queue-full reason, and their records land in the log.
  mc::serve::ServerOptions opt;
  opt.nworlds = 1;
  opt.max_queue_depth = 1;
  mc::serve::ScfJobServer server(opt);

  mc::serve::JobSpec spec;
  spec.mol = mc::chem::builders::benzene();  // long enough to hold the world
  std::vector<long> accepted;
  long rejected = 0;
  for (int j = 0; j < 8; ++j) {
    const auto r = server.submit(spec);
    if (r.accepted) {
      accepted.push_back(r.job_id);
    } else {
      ++rejected;
      EXPECT_NE(r.reason.find("queue full"), std::string::npos) << r.reason;
      const auto out = server.wait(r.job_id);  // terminal immediately
      EXPECT_EQ(out.outcome, mc::obs::JobOutcomeKind::kRejected);
    }
  }
  for (const long id : accepted) server.wait(id);
  const auto s = server.shutdown();
  EXPECT_EQ(s.submitted, 8);
  EXPECT_EQ(s.rejected, rejected);
  EXPECT_EQ(s.accepted + s.rejected, 8);
  EXPECT_GE(rejected, 1);
}

TEST(ScfJobServer, RejectsInvalidSpecsWithoutRunningThem) {
  mc::serve::ScfJobServer server;

  mc::serve::JobSpec odd;
  odd.mol = mc::chem::builders::water();
  odd.charge = 1;  // odd electron count: not closed-shell
  const auto r1 = server.submit(odd);
  EXPECT_FALSE(r1.accepted);
  EXPECT_NE(r1.reason.find("electron"), std::string::npos) << r1.reason;

  mc::serve::JobSpec profiled;
  profiled.mol = mc::chem::builders::water();
  profiled.scf.profile_path = "/tmp/should-not-happen";
  const auto r2 = server.submit(profiled);
  EXPECT_FALSE(r2.accepted);

  mc::serve::JobSpec mismatched;
  mismatched.mol = mc::chem::builders::water();
  mismatched.basis_per_atom = {"STO-3G"};  // water has 3 atoms
  const auto r3 = server.submit(mismatched);
  EXPECT_FALSE(r3.accepted);

  const auto s = server.shutdown();
  EXPECT_EQ(s.rejected, 3);
  EXPECT_EQ(s.accepted, 0);
}

TEST(ScfJobServer, AbortedJobDoesNotPoisonTheWorld) {
  // A job that throws mid-run (unknown basis name surfaces inside the
  // world, past admission) must come back kAborted while later jobs on
  // the same world still run.
  mc::serve::ServerOptions opt;
  opt.nworlds = 1;
  mc::serve::ScfJobServer server(opt);

  mc::serve::JobSpec bad;
  bad.mol = mc::chem::builders::water();
  bad.basis = "NO-SUCH-BASIS";
  const auto rb = server.submit(bad);
  ASSERT_TRUE(rb.accepted);
  const auto bad_out = server.wait(rb.job_id);
  EXPECT_EQ(bad_out.outcome, mc::obs::JobOutcomeKind::kAborted);
  EXPECT_FALSE(bad_out.error.empty());

  mc::serve::JobSpec good;
  good.mol = mc::chem::builders::water();
  const auto rg = server.submit(good);
  ASSERT_TRUE(rg.accepted);
  EXPECT_EQ(server.wait(rg.job_id).outcome,
            mc::obs::JobOutcomeKind::kConverged);
  const auto s = server.shutdown();
  EXPECT_EQ(s.aborted, 1);
  EXPECT_EQ(s.converged, 1);
}

TEST(ScfJobServer, MixedBasisJobMatchesDirectMixedRun) {
  // The mixed-basis entry point end to end: a served per-atom basis job
  // reproduces a direct run_parallel_scf with the same assignment.
  const auto water = mc::chem::builders::water();
  const std::vector<std::string> mixed = {"6-31G", "STO-3G", "STO-3G"};

  mc::core::ParallelScfConfig config;
  config.basis_per_atom = mixed;
  config.nranks = 1;
  const auto reference = mc::core::run_parallel_scf(water, config);
  ASSERT_TRUE(reference.scf.converged);

  mc::serve::ScfJobServer server;
  mc::serve::JobSpec spec;
  spec.mol = water;
  spec.basis_per_atom = mixed;
  const auto r = server.submit(spec);
  ASSERT_TRUE(r.accepted);
  const auto out = server.wait(r.job_id);
  server.shutdown();
  ASSERT_EQ(out.outcome, mc::obs::JobOutcomeKind::kConverged);
  EXPECT_NEAR(out.energy, reference.scf.energy, kGoldenEnergyTolerance);
}

TEST(ScfJobServer, TelemetryStreamHasOneLinePerTerminalJob) {
  const std::string path =
      ::testing::TempDir() + "test_serve_telemetry.jsonl";
  {
    mc::serve::ServerOptions opt;
    opt.nworlds = 1;
    opt.telemetry_path = path;
    mc::serve::ScfJobServer server(opt);
    mc::serve::JobSpec spec;
    spec.mol = mc::chem::builders::h2();
    const auto a = server.submit(spec);
    const auto b = server.submit(spec);
    ASSERT_TRUE(a.accepted);
    ASSERT_TRUE(b.accepted);
    server.wait(a.job_id);
    server.wait(b.job_id);
    mc::serve::JobSpec invalid;
    invalid.mol = mc::chem::builders::water();
    invalid.charge = 1;
    EXPECT_FALSE(server.submit(invalid).accepted);
    server.shutdown();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  int rejected = 0;
  while (std::getline(in, line)) {
    EXPECT_NE(line.find("\"type\":\"scf_job\""), std::string::npos);
    if (line.find("\"outcome\":\"rejected\"") != std::string::npos) {
      ++rejected;
    }
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(rejected, 1);
}

TEST(ScfJobServer, ShutdownIsIdempotentAndWaitRejectsUnknownIds) {
  mc::serve::ScfJobServer server;
  EXPECT_THROW(server.wait(0), mc::Error);
  const auto s1 = server.shutdown();
  const auto s2 = server.shutdown();
  EXPECT_EQ(s1.submitted, s2.submitted);
  EXPECT_FALSE(server.submit({}).accepted);  // post-shutdown submissions
}

}  // namespace
