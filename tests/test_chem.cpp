// Tests for molecules, geometry builders (including the paper's graphene
// datasets) and XYZ I/O.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "chem/builders.hpp"
#include "chem/element.hpp"
#include "chem/molecule.hpp"
#include "chem/xyz_io.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"

namespace mc::chem {
namespace {

TEST(Element, SymbolRoundTrip) {
  EXPECT_EQ(atomic_number("H"), 1);
  EXPECT_EQ(atomic_number("C"), 6);
  EXPECT_EQ(atomic_number("O"), 8);
  EXPECT_EQ(element_symbol(7), "N");
  EXPECT_THROW(atomic_number("Xx"), Error);
  EXPECT_THROW(element_symbol(99), Error);
}

TEST(Element, MassesAndRadii) {
  EXPECT_NEAR(atomic_mass(6), 12.0107, 1e-4);
  EXPECT_GT(covalent_radius(6), covalent_radius(1));
}

TEST(Molecule, CountsAndCharge) {
  Molecule m = builders::water();
  EXPECT_EQ(m.natoms(), 3u);
  EXPECT_EQ(m.total_z(), 10);
  EXPECT_EQ(m.nelectrons(), 10);
  EXPECT_EQ(m.nelectrons(+1), 9);
}

TEST(Molecule, NuclearRepulsionH2) {
  // Two protons at R = 1.4 bohr: E_nn = 1/1.4.
  Molecule m = builders::h2(1.4);
  EXPECT_NEAR(m.nuclear_repulsion(), 1.0 / 1.4, 1e-14);
}

TEST(Molecule, NuclearRepulsionInvariantUnderRotationTranslation) {
  Molecule m = builders::water();
  const double e0 = m.nuclear_repulsion();
  EXPECT_NEAR(m.translated(1.0, -2.0, 3.0).nuclear_repulsion(), e0, 1e-12);
  EXPECT_NEAR(m.rotated(0.7, 0.3).nuclear_repulsion(), e0, 1e-12);
}

TEST(Molecule, CentroidAndDistance) {
  Molecule m = builders::h2(2.0);
  const auto c = m.centroid();
  EXPECT_NEAR(c[2], 1.0, 1e-14);
  EXPECT_NEAR(m.distance(0, 1), 2.0, 1e-14);
}

TEST(Builders, GrapheneFlakeHasExactCountAndValidGeometry) {
  for (std::size_t n : {22u, 60u, 110u, 178u}) {
    Molecule m = builders::graphene_flake(n);
    EXPECT_EQ(m.natoms(), n);
    // Nearest-neighbour distance must be the C-C bond (1.42 A).
    EXPECT_NEAR(m.min_distance(), 1.42 * kBohrPerAngstrom, 1e-8);
  }
}

TEST(Builders, GrapheneBilayerStacksTwoLayers) {
  Molecule m = builders::graphene_bilayer(22);
  EXPECT_EQ(m.natoms(), 44u);
  // Layers separated by 3.35 A in z.
  double zmin = 1e9, zmax = -1e9;
  for (const Atom& a : m.atoms()) {
    zmin = std::min(zmin, a.xyz[2]);
    zmax = std::max(zmax, a.xyz[2]);
  }
  EXPECT_NEAR(zmax - zmin, 3.35 * kBohrPerAngstrom, 1e-10);
  // No steric clash between layers.
  EXPECT_GT(m.min_distance(), 1.0);
}

TEST(Builders, PaperDatasetsMatchTable4AtomCounts) {
  // Paper Table 4: atoms per dataset.
  EXPECT_EQ(builders::paper_dataset("0.5nm").natoms(), 44u);
  EXPECT_EQ(builders::paper_dataset("1.0nm").natoms(), 120u);
  EXPECT_EQ(builders::paper_dataset("1.5nm").natoms(), 220u);
  EXPECT_EQ(builders::paper_dataset("2.0nm").natoms(), 356u);
  EXPECT_EQ(builders::paper_dataset_natoms("5.0nm"), 2016u);
  EXPECT_THROW(builders::paper_dataset("3.7nm"), Error);
}

TEST(Builders, PaperDatasetNamesSortedBySize) {
  const auto names = builders::paper_dataset_names();
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names.front(), "0.5nm");
  EXPECT_EQ(names.back(), "5.0nm");
}

TEST(Builders, SmallMoleculeFixtures) {
  EXPECT_EQ(builders::methane().natoms(), 5u);
  EXPECT_EQ(builders::benzene().natoms(), 12u);
  EXPECT_EQ(builders::heh_plus().natoms(), 2u);
  Molecule hexane = builders::alkane(6);
  EXPECT_EQ(hexane.natoms(), 6u + 14u);  // C6H14
  EXPECT_GT(hexane.min_distance(), 1.0);
}

TEST(Builders, MethaneIsTetrahedral) {
  Molecule m = builders::methane();
  const double r01 = m.distance(0, 1);
  for (std::size_t h = 2; h < 5; ++h) {
    EXPECT_NEAR(m.distance(0, h), r01, 1e-12);
  }
  // H-H distances all equal.
  const double rhh = m.distance(1, 2);
  EXPECT_NEAR(m.distance(1, 3), rhh, 1e-12);
  EXPECT_NEAR(m.distance(3, 4), rhh, 1e-12);
}

TEST(XyzIo, RoundTrip) {
  Molecule m = builders::water();
  std::ostringstream os;
  write_xyz(os, m, "water test");
  std::istringstream is(os.str());
  Molecule m2 = read_xyz(is);
  ASSERT_EQ(m2.natoms(), m.natoms());
  for (std::size_t i = 0; i < m.natoms(); ++i) {
    EXPECT_EQ(m2.atom(i).z, m.atom(i).z);
    for (int k = 0; k < 3; ++k) {
      EXPECT_NEAR(m2.atom(i).xyz[k], m.atom(i).xyz[k], 1e-7);
    }
  }
}

TEST(XyzIo, MalformedInputThrows) {
  std::istringstream empty("");
  EXPECT_THROW(read_xyz(empty), Error);
  std::istringstream bad_count("zzz\ncomment\n");
  EXPECT_THROW(read_xyz(bad_count), Error);
  std::istringstream truncated("2\ncomment\nH 0 0 0\n");
  EXPECT_THROW(read_xyz(truncated), Error);
}

}  // namespace
}  // namespace mc::chem
