// Cross-algorithm equivalence harness (the tentpole invariant): the raw
// 2e-skeleton Fock matrix from all three of the paper's builders must be
// bit-comparable (ULP-bounded; see fock_fixture.hpp) to the serial
// reference across the full {ranks} x {threads} x {schedule} x {lazy-flush}
// sweep, and bit-IDENTICAL wherever the summation order is deterministic.
// A lost update, duplicated flush, or misrouted buffer contribution anywhere
// in Algorithm 1-3's protocol fails these tests; rounding cannot.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <tuple>

#include "common/error.hpp"
#include "fock_fixture.hpp"

namespace mc::core {
namespace {

enum class Alg { kMpi, kPrivate, kShared, kDist };

const char* alg_name(Alg a) {
  switch (a) {
    case Alg::kMpi: return "mpi";
    case Alg::kPrivate: return "private";
    case Alg::kShared: return "shared";
    case Alg::kDist: return "dist";
  }
  return "?";
}

// Long-lived fixtures: ERI engines and serial references are expensive and
// strictly read-only during builds, so share one instance per system.
FockFixture& water_sto3g() {
  static FockFixture fx(chem::builders::water(), "STO-3G");
  return fx;
}
FockFixture& water_631g() {
  static FockFixture fx(chem::builders::water(), "6-31G");
  return fx;
}
FockFixture& methane_631gd() {
  static FockFixture fx(chem::builders::methane(), "6-31G(d)");
  return fx;
}

la::Matrix build(const FockFixture& fx, Alg alg, int nranks, int nthreads,
                 bool dynamic_schedule, bool lazy_fi_flush) {
  return build_distributed(
      fx, nranks, [&](par::Ddi& ddi) -> std::unique_ptr<scf::FockBuilder> {
        switch (alg) {
          case Alg::kMpi:
            return std::make_unique<FockBuilderMpi>(fx.eri, fx.screen, ddi);
          case Alg::kPrivate: {
            PrivateFockOptions opt;
            opt.nthreads = nthreads;
            opt.dynamic_schedule = dynamic_schedule;
            return std::make_unique<FockBuilderPrivate>(fx.eri, fx.screen,
                                                        ddi, opt);
          }
          case Alg::kShared: {
            SharedFockOptions opt;
            opt.nthreads = nthreads;
            opt.dynamic_schedule = dynamic_schedule;
            opt.lazy_fi_flush = lazy_fi_flush;
            return std::make_unique<FockBuilderShared>(fx.eri, fx.screen,
                                                       ddi, opt);
          }
          case Alg::kDist: {
            // Reuse the sweep dimensions: `dynamic_schedule` selects DLB vs
            // the static cyclic pair split, and `lazy_fi_flush` pressure-
            // tests the tile/panel budgets (evictions + early acc-flushes
            // must not change a single summed term).
            DistFockOptions opt;
            opt.dynamic_lb = dynamic_schedule;
            if (lazy_fi_flush) {
              opt.tile_rows = 3;
              opt.max_cached_tiles = 2;
              opt.max_open_f_tiles = 2;
            }
            return std::make_unique<FockBuilderDist>(fx.eri, fx.screen, ddi,
                                                     opt);
          }
        }
        throw mc::Error("unreachable");
      });
}

// ---- The sweep: (alg, nranks, nthreads, dynamic, lazy) ----

using SweepParam = std::tuple<Alg, int, int, bool, bool>;

class EquivalenceSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  // MPI-only has no thread/schedule/flush dimensions: keep exactly one
  // representative per rank count so the sweep has no duplicate work.
  static bool redundant(const SweepParam& p) {
    const auto [alg, nranks, nthreads, dyn, lazy] = p;
    if (alg == Alg::kMpi) return nthreads != 1 || dyn || lazy;
    if (alg == Alg::kPrivate) return lazy;  // no FI buffer to flush lazily
    if (alg == Alg::kDist) return nthreads != 1;  // single-threaded ranks
    return false;
  }
};

TEST_P(EquivalenceSweep, SkeletonBitComparableToSerial) {
  const auto [alg, nranks, nthreads, dyn, lazy] = GetParam();
  if (redundant(GetParam())) {
    GTEST_SKIP() << "dimension not applicable to " << alg_name(alg);
  }
  const FockFixture& fx = water_sto3g();
  const la::Matrix g = build(fx, alg, nranks, nthreads, dyn, lazy);
  const std::string what =
      std::string(alg_name(alg)) + " r=" + std::to_string(nranks) +
      " t=" + std::to_string(nthreads) + (dyn ? " dyn" : " stat") +
      (lazy ? " lazy" : " eager");
  expect_bit_comparable(g, fx.g_ref, kMaxSkeletonUlps, what);
}

INSTANTIATE_TEST_SUITE_P(
    RankThreadScheduleGrid, EquivalenceSweep,
    ::testing::Combine(::testing::Values(Alg::kMpi, Alg::kPrivate,
                                         Alg::kShared, Alg::kDist),
                       ::testing::Values(1, 2, 4),   // ranks
                       ::testing::Values(1, 2, 4),   // threads
                       ::testing::Bool(),            // dynamic schedule
                       ::testing::Bool()));          // lazy FI flush

// ---- Deterministic configurations must reproduce the serial bits ----

TEST(EquivalenceExact, SingleRankMpiIsBitIdenticalToSerial) {
  // One rank, one thread: the DLB counter walks the same Schwarz-sorted
  // pair list the serial builder iterates, in the same order, so the
  // result must match bit for bit.
  const FockFixture& fx = water_631g();
  const la::Matrix g = build(fx, Alg::kMpi, 1, 1, false, false);
  expect_bit_comparable(g, fx.g_ref, 0, "mpi r=1 exact");
}

TEST(EquivalenceExact, SingleThreadPrivateIsRunToRunDeterministic) {
  // One rank x one thread private-Fock claims bra shells in the screening's
  // work-sorted order and sweeps (j,k) ascending -- a different (but fixed)
  // summation order from the serial builder's Schwarz-sorted pair list. So
  // it is NOT bit-equal to serial, but repeated builds must agree bit for
  // bit, and the skeleton stays within the rounding envelope.
  const FockFixture& fx = water_631g();
  const la::Matrix g1 = build(fx, Alg::kPrivate, 1, 1, false, false);
  const la::Matrix g2 = build(fx, Alg::kPrivate, 1, 1, false, false);
  expect_bit_comparable(g1, g2, 0, "private r=1 t=1 repeat");
  expect_bit_comparable(g1, fx.g_ref, kMaxSkeletonUlps, "private r=1 t=1");
}

TEST(EquivalenceExact, SharedFockSingleThreadIsRunToRunDeterministic) {
  // One rank x one thread shared-Fock reorders additions through the FI/FJ
  // buffers (so it is NOT bit-equal to serial), but the order is fixed:
  // repeated builds must agree bit for bit.
  const FockFixture& fx = water_631g();
  const la::Matrix g1 = build(fx, Alg::kShared, 1, 1, false, true);
  const la::Matrix g2 = build(fx, Alg::kShared, 1, 1, false, true);
  expect_bit_comparable(g1, g2, 0, "shared r=1 t=1 repeat");
  expect_bit_comparable(g1, fx.g_ref, kMaxSkeletonUlps, "shared r=1 t=1");
}

TEST(EquivalenceExact, SingleRankDistIsBitIdenticalToSerial) {
  // One rank, dynamic LB: the DLB counter walks the serial builder's
  // Schwarz-sorted pair list in order, every density row is a local tile,
  // and each F element is accumulated in one panel then acc'd once -- the
  // same additions in the same order, so the result must match bit for
  // bit. This also holds with tight budgets: evictions refetch identical
  // tile bytes and an early acc-flush only splits a sum that is later
  // completed by the same +=.
  const FockFixture& fx = water_631g();
  const la::Matrix g = build(fx, Alg::kDist, 1, 1, true, false);
  expect_bit_comparable(g, fx.g_ref, 0, "dist r=1 exact");
  const la::Matrix g_tight = build(fx, Alg::kDist, 1, 1, true, true);
  expect_bit_comparable(g_tight, fx.g_ref, 0, "dist r=1 tight budgets");
}

// ---- Larger systems: d shells and richer screening structure ----

TEST(EquivalenceSystems, Water631GAllThreeAcrossRanksAndThreads) {
  const FockFixture& fx = water_631g();
  for (int nranks : {1, 2}) {
    for (int nthreads : {1, 4}) {
      for (Alg alg : {Alg::kMpi, Alg::kPrivate, Alg::kShared, Alg::kDist}) {
        if ((alg == Alg::kMpi || alg == Alg::kDist) && nthreads != 1) {
          continue;
        }
        const la::Matrix g = build(fx, alg, nranks, nthreads, true, true);
        expect_bit_comparable(
            g, fx.g_ref, kMaxSkeletonUlps,
            std::string("6-31G ") + alg_name(alg) + " r=" +
                std::to_string(nranks) + " t=" + std::to_string(nthreads));
      }
    }
  }
}

TEST(EquivalenceSystems, MethaneDShellsAllThreeAgree) {
  const FockFixture& fx = methane_631gd();
  for (Alg alg : {Alg::kMpi, Alg::kPrivate, Alg::kShared, Alg::kDist}) {
    const int nthreads = (alg == Alg::kMpi || alg == Alg::kDist) ? 1 : 2;
    const la::Matrix g = build(fx, alg, 2, nthreads, true, true);
    expect_bit_comparable(g, fx.g_ref, kMaxSkeletonUlps,
                          std::string("6-31G(d) ") + alg_name(alg));
  }
}

}  // namespace
}  // namespace mc::core
