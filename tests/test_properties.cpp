// Tests for dipole integrals, molecular properties (dipole moment,
// Mulliken populations), and the UHF extension.

#include <gtest/gtest.h>

#include <cmath>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "common/error.hpp"
#include "ints/multipole.hpp"
#include "ints/one_electron.hpp"
#include "ints/screening.hpp"
#include "common/constants.hpp"
#include "la/blas_lite.hpp"
#include "la/orthogonalizer.hpp"
#include "scf/properties.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"
#include "scf/uhf.hpp"

namespace mc::scf {
namespace {

ScfResult rhf(const chem::Molecule& mol, const std::string& basis) {
  auto bs = basis::BasisSet::build(mol, basis);
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-12);
  SerialFockBuilder builder(eri, screen);
  return run_scf(mol, bs, builder);
}

// ---- Dipole integrals ----

TEST(Multipole, DiagonalOfCenteredFunctionIsCenterCoordinate) {
  // <a| r - O |a> for any basis function centered at C equals C - O
  // (by symmetry of |a|^2 about its center) for s functions.
  chem::Molecule m;
  m.add_atom(1, 0.7, -0.3, 1.9);
  auto bs = basis::BasisSet::build(m, "STO-3G");
  auto d = ints::dipole_matrices(bs, {0.0, 0.0, 0.0});
  EXPECT_NEAR(d[0](0, 0), 0.7, 1e-10);
  EXPECT_NEAR(d[1](0, 0), -0.3, 1e-10);
  EXPECT_NEAR(d[2](0, 0), 1.9, 1e-10);
}

TEST(Multipole, OriginShiftMovesDiagonalByOverlap) {
  // M(O') = M(O) - (O' - O) S, elementwise.
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "6-31G");
  la::Matrix s = ints::overlap_matrix(bs);
  auto m0 = ints::dipole_matrices(bs, {0.0, 0.0, 0.0});
  auto m1 = ints::dipole_matrices(bs, {0.5, -1.0, 2.0});
  const double shifts[3] = {0.5, -1.0, 2.0};
  for (int dd = 0; dd < 3; ++dd) {
    la::Matrix expect = m0[static_cast<std::size_t>(dd)];
    la::Matrix ss = s;
    ss *= shifts[dd];
    expect -= ss;
    EXPECT_NEAR(
        expect.max_abs_diff(m1[static_cast<std::size_t>(dd)]), 0.0, 1e-10);
  }
}

TEST(Multipole, MatricesAreSymmetric) {
  auto bs =
      basis::BasisSet::build(chem::builders::methane(), "6-31G(d)");
  for (const auto& m : ints::dipole_matrices(bs)) {
    EXPECT_TRUE(m.is_symmetric(1e-10));
  }
}

// ---- Dipole moment ----

TEST(Dipole, SymmetricMoleculesHaveZeroDipole) {
  for (auto make : {+[] { return chem::builders::h2(); },
                    +[] { return chem::builders::methane(); },
                    +[] { return chem::builders::benzene(); }}) {
    auto mol = make();
    auto bs = basis::BasisSet::build(mol, "STO-3G");
    ScfResult r = rhf(mol, "STO-3G");
    ASSERT_TRUE(r.converged);
    DipoleMoment dm = dipole_moment(mol, bs, r.density);
    EXPECT_LT(dm.magnitude_au(), 1e-5);
  }
}

TEST(Dipole, WaterSto3gNearLiteratureValue) {
  // RHF/STO-3G water dipole is ~1.7 D in the literature.
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ScfResult r = rhf(mol, "STO-3G");
  ASSERT_TRUE(r.converged);
  DipoleMoment dm = dipole_moment(mol, bs, r.density);
  EXPECT_GT(dm.magnitude_debye(), 1.3);
  EXPECT_LT(dm.magnitude_debye(), 2.1);
  // Symmetry: our water lies in the xz plane, C2 axis along z -> no y
  // component (and no x by mirror symmetry of the two hydrogens).
  EXPECT_NEAR(dm.total()[1], 0.0, 1e-8);
}

TEST(Dipole, InvariantUnderTranslationForNeutralMolecule) {
  auto mol = chem::builders::water();
  auto mol2 = mol.translated(3.0, -2.0, 1.0);
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  auto bs2 = basis::BasisSet::build(mol2, "STO-3G");
  ScfResult r = rhf(mol, "STO-3G");
  ScfResult r2 = rhf(mol2, "STO-3G");
  DipoleMoment a = dipole_moment(mol, bs, r.density);
  DipoleMoment b = dipole_moment(mol2, bs2, r2.density);
  EXPECT_NEAR(a.magnitude_au(), b.magnitude_au(), 1e-8);
}

// ---- Mulliken ----

TEST(Mulliken, ChargesSumToMolecularCharge) {
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "6-31G");
  ScfResult r = rhf(mol, "6-31G");
  la::Matrix s = ints::overlap_matrix(bs);
  MullikenAnalysis m = mulliken_analysis(mol, bs, r.density, s);
  double qsum = 0.0, psum = 0.0;
  for (double q : m.charges) qsum += q;
  for (double p : m.populations) psum += p;
  EXPECT_NEAR(qsum, 0.0, 1e-8);
  EXPECT_NEAR(psum, 10.0, 1e-8);
}

TEST(Mulliken, OxygenIsNegativeInWater) {
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ScfResult r = rhf(mol, "STO-3G");
  la::Matrix s = ints::overlap_matrix(bs);
  MullikenAnalysis m = mulliken_analysis(mol, bs, r.density, s);
  EXPECT_LT(m.charges[0], -0.1);  // O pulls charge
  EXPECT_GT(m.charges[1], 0.05);  // H donates
  EXPECT_NEAR(m.charges[1], m.charges[2], 1e-8);  // equivalent hydrogens
}

TEST(Mulliken, IdenticalAtomsShareChargeEqually) {
  auto mol = chem::builders::h2();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ScfResult r = rhf(mol, "STO-3G");
  la::Matrix s = ints::overlap_matrix(bs);
  MullikenAnalysis m = mulliken_analysis(mol, bs, r.density, s);
  EXPECT_NEAR(m.charges[0], 0.0, 1e-10);
  EXPECT_NEAR(m.charges[1], 0.0, 1e-10);
}

// ---- UHF ----

struct UhfFixture {
  chem::Molecule mol;
  basis::BasisSet bs;
  ints::EriEngine eri;
  ints::Screening screen;
  UhfFixture(const chem::Molecule& m, const std::string& basis)
      : mol(m),
        bs(basis::BasisSet::build(m, basis)),
        eri(bs),
        screen(eri, 1e-12) {}
};

TEST(Uhf, ClosedShellMatchesRhf) {
  for (const char* basis : {"STO-3G", "6-31G"}) {
    UhfFixture f(chem::builders::water(), basis);
    UhfResult u = run_uhf(f.mol, f.bs, f.eri, f.screen);
    ScfResult r = rhf(f.mol, basis);
    ASSERT_TRUE(u.converged) << basis;
    ASSERT_TRUE(r.converged) << basis;
    EXPECT_NEAR(u.energy, r.energy, 1e-8) << basis;
    EXPECT_NEAR(u.s_squared, 0.0, 1e-8);
    EXPECT_EQ(u.nalpha, 5);
    EXPECT_EQ(u.nbeta, 5);
  }
}

TEST(Uhf, HydrogenAtomDoublet) {
  chem::Molecule m;
  m.add_atom(1, 0.0, 0.0, 0.0);
  UhfFixture f(m, "STO-3G");
  UhfOptions opt;
  opt.multiplicity = 2;
  UhfResult u = run_uhf(f.mol, f.bs, f.eri, f.screen, opt);
  ASSERT_TRUE(u.converged);
  // One electron: UHF energy equals the lowest core-Hamiltonian eigenvalue
  // (-0.46658 Eh for STO-3G H), and <S^2> = 0.75 exactly.
  EXPECT_NEAR(u.energy, -0.46658185, 1e-6);
  EXPECT_NEAR(u.s_squared, 0.75, 1e-10);
  EXPECT_EQ(u.nalpha, 1);
  EXPECT_EQ(u.nbeta, 0);
}

TEST(Uhf, LithiumDoubletInKnownRange) {
  chem::Molecule m;
  m.add_atom(3, 0.0, 0.0, 0.0);
  // Li needs a basis: STO-3G has no Li entry in this library -> expect a
  // clean error rather than silence.
  EXPECT_THROW(basis::BasisSet::build(m, "STO-3G"), mc::Error);
}

TEST(Uhf, StretchedH2BreaksSymmetryBelowRhf) {
  // Past the Coulson-Fischer point (~2.3 a0), spin-symmetry-broken UHF
  // drops below RHF. At R = 4 a0 the effect is large (~0.1 Eh).
  auto mol = chem::builders::h2(4.0);
  UhfFixture f(mol, "STO-3G");
  ScfResult r = rhf(mol, "STO-3G");
  ASSERT_TRUE(r.converged);

  UhfOptions opt;
  opt.guess_mix = true;
  UhfResult u = run_uhf(f.mol, f.bs, f.eri, f.screen, opt);
  ASSERT_TRUE(u.converged);
  EXPECT_LT(u.energy, r.energy - 0.01);
  // The broken-symmetry solution is heavily spin-contaminated
  // (<S^2> ~ 1 for a singlet diradical).
  EXPECT_GT(u.s_squared, 0.5);

  // Without guess mixing, UHF stays on the RHF solution.
  UhfOptions no_mix;
  UhfResult u2 = run_uhf(f.mol, f.bs, f.eri, f.screen, no_mix);
  ASSERT_TRUE(u2.converged);
  EXPECT_NEAR(u2.energy, r.energy, 1e-7);
}

TEST(Uhf, TripletMethyleneConverges) {
  // CH2 triplet (a classic open-shell case). No reference energy assert;
  // verify convergence, <S^2> near 2.0, and the energy below the atomized
  // limit sanity bound.
  chem::Molecule m;
  const double r = 2.05, half_angle = 0.5 * 134.0 * kPi / 180.0;
  m.add_atom(6, 0.0, 0.0, 0.0);
  m.add_atom(1, r * std::sin(half_angle), 0.0, r * std::cos(half_angle));
  m.add_atom(1, -r * std::sin(half_angle), 0.0, r * std::cos(half_angle));
  UhfFixture f(m, "STO-3G");
  UhfOptions opt;
  opt.multiplicity = 3;
  UhfResult u = run_uhf(f.mol, f.bs, f.eri, f.screen, opt);
  ASSERT_TRUE(u.converged);
  EXPECT_EQ(u.nalpha, 5);
  EXPECT_EQ(u.nbeta, 3);
  EXPECT_NEAR(u.s_squared, 2.0, 0.1);  // mild contamination allowed
  EXPECT_LT(u.energy, -38.0);
  EXPECT_GT(u.energy, -39.5);
}

TEST(Uhf, InvalidMultiplicityThrows) {
  UhfFixture f(chem::builders::water(), "STO-3G");
  UhfOptions opt;
  opt.multiplicity = 2;  // 10 electrons cannot be a doublet
  EXPECT_THROW(run_uhf(f.mol, f.bs, f.eri, f.screen, opt), mc::Error);
  opt.multiplicity = 0;
  EXPECT_THROW(run_uhf(f.mol, f.bs, f.eri, f.screen, opt), mc::Error);
}

TEST(Uhf, BuildJkMatchesRhfSkeletonCombination) {
  // For D_j = D_k = D: G = J - K/2 must equal the RHF skeleton result.
  UhfFixture f(chem::builders::water(), "6-31G");
  la::Matrix h = ints::core_hamiltonian(f.bs, f.mol);
  la::Matrix s = ints::overlap_matrix(f.bs);
  la::Matrix x = la::canonical_orthogonalizer(s);
  la::Matrix d = core_guess_density(h, x, 5);

  la::Matrix j(f.bs.nbf(), f.bs.nbf()), k(f.bs.nbf(), f.bs.nbf());
  build_jk(f.eri, f.screen, d, d, j, k);
  j.symmetrize();
  k.symmetrize();
  la::Matrix g_from_jk = j;
  la::Matrix khalf = k;
  khalf *= 0.5;
  g_from_jk -= khalf;

  la::Matrix g(f.bs.nbf(), f.bs.nbf());
  SerialFockBuilder serial(f.eri, f.screen);
  serial.build(d, g);
  g.symmetrize();
  EXPECT_NEAR(g_from_jk.max_abs_diff(g), 0.0, 1e-10);
}

}  // namespace
}  // namespace mc::scf
