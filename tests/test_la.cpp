// Unit and property tests for the dense linear algebra module.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "common/error.hpp"
#include "la/blas_lite.hpp"
#include "la/matrix.hpp"
#include "la/orthogonalizer.hpp"
#include "la/packed.hpp"
#include "la/solve.hpp"
#include "la/sym_eig.hpp"

namespace mc::la {
namespace {

Matrix random_symmetric(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = dist(rng);
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

Matrix random_spd(std::size_t n, unsigned seed) {
  Matrix a = random_symmetric(n, seed);
  Matrix s = gemm_nt(a, a);  // A A^T is PSD
  for (std::size_t i = 0; i < n; ++i) s(i, i) += static_cast<double>(n);
  return s;
}

TEST(Matrix, BasicOps) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a + b;
  EXPECT_DOUBLE_EQ(c(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 12.0);
  c -= a;
  EXPECT_NEAR(c.max_abs_diff(b), 0.0, 1e-15);
  c *= 2.0;
  EXPECT_DOUBLE_EQ(c(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(a.trace(), 5.0);
  EXPECT_DOUBLE_EQ(a.transposed()(0, 1), 3.0);
}

TEST(Matrix, IdentityAndSymmetrize) {
  Matrix i = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i.trace(), 3.0);
  Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_TRUE(a.is_symmetric());
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  EXPECT_THROW(a += b, Error);
  EXPECT_THROW((void)a.trace(), Error);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.norm_frobenius(), 5.0);
}

TEST(BlasLite, GemmMatchesHandComputation) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  Matrix c = gemm(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(BlasLite, TransposedVariantsAgree) {
  Matrix a = random_symmetric(7, 11);
  Matrix b = random_symmetric(7, 13);
  Matrix ab = gemm(a, b);
  EXPECT_NEAR(gemm_tn(a.transposed(), b).max_abs_diff(ab), 0.0, 1e-12);
  EXPECT_NEAR(gemm_nt(a, b.transposed()).max_abs_diff(ab), 0.0, 1e-12);
}

TEST(BlasLite, DotIsFrobeniusInnerProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(dot(a, a), 30.0);
}

TEST(BlasLite, TransformIsSimilarity) {
  Matrix a = random_symmetric(5, 3);
  Matrix x = random_symmetric(5, 5);
  Matrix t1 = transform(x, a);
  Matrix t2 = gemm_tn(x, gemm(a, x));
  EXPECT_NEAR(t1.max_abs_diff(t2), 0.0, 1e-12);
}

// ---- Eigensolver ----

TEST(SymEig, DiagonalMatrix) {
  Matrix a{{3.0, 0.0, 0.0}, {0.0, 1.0, 0.0}, {0.0, 0.0, 2.0}};
  SymEigResult r = eigh(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-14);
  EXPECT_NEAR(r.values[1], 2.0, 1e-14);
  EXPECT_NEAR(r.values[2], 3.0, 1e-14);
}

TEST(SymEig, KnownTwoByTwo) {
  // Eigenvalues of [[2,1],[1,2]] are 1 and 3.
  Matrix a{{2.0, 1.0}, {1.0, 2.0}};
  SymEigResult r = eigh(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-14);
  EXPECT_NEAR(r.values[1], 3.0, 1e-14);
}

class SymEigProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SymEigProperty, ResidualAndOrthonormality) {
  const std::size_t n = GetParam();
  Matrix a = random_symmetric(n, static_cast<unsigned>(n) * 7 + 1);
  SymEigResult r = eigh(a);

  // Ascending eigenvalues.
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_LE(r.values[k - 1], r.values[k] + 1e-14);
  }
  // A v = lambda v.
  Matrix av = gemm(a, r.vectors);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av(i, k), r.values[k] * r.vectors(i, k), 1e-10)
          << "n=" << n << " k=" << k << " i=" << i;
    }
  }
  // V^T V = I.
  Matrix vtv = gemm_tn(r.vectors, r.vectors);
  EXPECT_NEAR(vtv.max_abs_diff(Matrix::identity(n)), 0.0, 1e-12);
  // Trace preserved.
  double sum = 0.0;
  for (double v : r.values) sum += v;
  EXPECT_NEAR(sum, a.trace(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymEigProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 24, 60));

TEST(SymEig, DegenerateEigenvalues) {
  // 3x identity plus rank-1: eigenvalues {1, 1, 4}.
  Matrix a{{2.0, 1.0, 1.0}, {1.0, 2.0, 1.0}, {1.0, 1.0, 2.0}};
  SymEigResult r = eigh(a);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 1.0, 1e-12);
  EXPECT_NEAR(r.values[2], 4.0, 1e-12);
}

TEST(SymEig, RejectsNonSymmetric) {
  Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  EXPECT_THROW(eigh(a), Error);
}

TEST(SymEig, GeneralizedReproducesStandardWithIdentity) {
  Matrix a = random_symmetric(6, 42);
  Matrix x = Matrix::identity(6);
  SymEigResult r1 = eigh(a);
  SymEigResult r2 = eigh_generalized(a, x);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_NEAR(r1.values[k], r2.values[k], 1e-12);
  }
}

// ---- Solvers ----

TEST(Solve, KnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  std::vector<double> x = solve(a, {3.0, 5.0});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Solve, RandomRoundTrip) {
  const std::size_t n = 12;
  Matrix a = random_spd(n, 9);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i) x_true[i] = std::sin(1.0 + i);
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x_true[j];
  }
  std::vector<double> x = solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Solve, SingularThrows) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(solve(a, {1.0, 2.0}), Error);
}

TEST(Cholesky, ReconstructsMatrix) {
  Matrix a = random_spd(8, 21);
  Matrix l = cholesky(a);
  EXPECT_NEAR(gemm_nt(l, l).max_abs_diff(a), 0.0, 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a), Error);
}

TEST(Cholesky, TriangularInverse) {
  Matrix a = random_spd(6, 33);
  Matrix l = cholesky(a);
  Matrix linv = invert_lower_triangular(l);
  EXPECT_NEAR(gemm(l, linv).max_abs_diff(Matrix::identity(6)), 0.0, 1e-10);
}

// ---- Orthogonalizers ----

TEST(Orthogonalizer, LoewdinSatisfiesMetricCondition) {
  Matrix s = random_spd(10, 5);
  Matrix x = loewdin_orthogonalizer(s);
  Matrix xtsx = transform(x, s);
  EXPECT_NEAR(xtsx.max_abs_diff(Matrix::identity(10)), 0.0, 1e-9);
}

TEST(Orthogonalizer, CanonicalSatisfiesMetricCondition) {
  Matrix s = random_spd(10, 6);
  Matrix x = canonical_orthogonalizer(s);
  Matrix xtsx = transform(x, s);
  EXPECT_NEAR(xtsx.max_abs_diff(Matrix::identity(x.cols())), 0.0, 1e-9);
}

TEST(Orthogonalizer, CanonicalDropsLinearDependence) {
  // Build an S with one tiny eigenvalue by duplicating a direction.
  Matrix s = random_spd(4, 8);
  // Add a near-duplicate row/col structure: S' = S + large * u u^T keeps
  // full rank, so instead construct from eigen-decomposition directly.
  SymEigResult e = eigh(s);
  Matrix d(4, 4);
  d(0, 0) = 1e-12;  // nearly dependent direction
  d(1, 1) = 1.0;
  d(2, 2) = 2.0;
  d(3, 3) = 3.0;
  Matrix s2 = gemm(e.vectors, gemm_nt(d, e.vectors));
  s2.symmetrize();
  Matrix x = canonical_orthogonalizer(s2, 1e-8);
  EXPECT_EQ(x.cols(), 3u);
  EXPECT_THROW(loewdin_orthogonalizer(s2, 1e-8), Error);
}

TEST(Orthogonalizer, SymPowInverseSquareRootSquares) {
  Matrix s = random_spd(7, 12);
  Matrix shalf = sym_pow(s, 0.5);
  EXPECT_NEAR(gemm(shalf, shalf).max_abs_diff(s), 0.0, 1e-9);
}

// ---- Packed storage ----

TEST(Packed, RoundTrip) {
  Matrix a = random_symmetric(9, 77);
  PackedSymMatrix p = PackedSymMatrix::pack(a);
  EXPECT_EQ(p.packed_size(), 45u);
  EXPECT_NEAR(p.unpack().max_abs_diff(a), 0.0, 1e-15);
}

TEST(Packed, IndexConvention) {
  EXPECT_EQ(PackedSymMatrix::index(0, 0), 0u);
  EXPECT_EQ(PackedSymMatrix::index(1, 0), 1u);
  EXPECT_EQ(PackedSymMatrix::index(1, 1), 2u);
  EXPECT_EQ(PackedSymMatrix::index(0, 1), 1u);  // symmetric access
}

}  // namespace
}  // namespace mc::la
