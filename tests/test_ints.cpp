// Validation of the integrals engine: Boys function, Hermite tables,
// one-electron integrals, the ERI engine, and Schwarz screening.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "common/constants.hpp"
#include "ints/boys.hpp"
#include "ints/eri.hpp"
#include "ints/eri_batch.hpp"
#include "ints/eri_kernel.hpp"
#include "ints/hermite.hpp"
#include "ints/one_electron.hpp"
#include "ints/screening.hpp"
#include "la/matrix.hpp"
#include "obs/metrics.hpp"

namespace mc::ints {
namespace {

// Slow but definitionally-correct Boys function by composite Simpson.
double boys_numeric(int m, double t) {
  const int n = 20000;  // even
  const double h = 1.0 / n;
  auto f = [&](double x) { return std::pow(x, 2 * m) * std::exp(-t * x * x); };
  double s = f(0.0) + f(1.0);
  for (int i = 1; i < n; ++i) {
    s += f(i * h) * ((i % 2) ? 4.0 : 2.0);
  }
  return s * h / 3.0;
}

TEST(Boys, ZeroArgument) {
  double out[9];
  boys(8, 0.0, out);
  for (int m = 0; m <= 8; ++m) {
    EXPECT_NEAR(out[m], 1.0 / (2 * m + 1), 1e-12);
  }
}

TEST(Boys, F0MatchesErfClosedForm) {
  for (double t : {0.01, 0.5, 1.0, 4.0, 17.5, 45.0, 80.0, 300.0}) {
    const double expected = 0.5 * std::sqrt(kPi / t) * std::erf(std::sqrt(t));
    EXPECT_NEAR(boys_single(0, t) / expected, 1.0, 1e-13) << "T=" << t;
  }
}

class BoysVsQuadrature
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BoysVsQuadrature, MatchesSimpson) {
  const auto [m, t] = GetParam();
  const double ref = boys_numeric(m, t);
  EXPECT_NEAR(boys_single(m, t) / ref, 1.0, 1e-9)
      << "m=" << m << " T=" << t;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BoysVsQuadrature,
    ::testing::Combine(::testing::Values(0, 1, 2, 4, 8, 12),
                       ::testing::Values(0.05, 0.9, 3.0, 12.0, 30.0, 49.0,
                                         55.0, 120.0)));

TEST(Boys, DownwardRecursionConsistency) {
  // F_{m}(T) = (2T F_{m+1} + e^-T) / (2m+1) must hold across the whole
  // output vector (internal consistency of the table).
  for (double t : {0.3, 7.0, 49.9, 51.0, 200.0}) {
    double out[13];
    boys(12, t, out);
    for (int m = 0; m < 12; ++m) {
      EXPECT_NEAR(out[m], (2.0 * t * out[m + 1] + std::exp(-t)) / (2 * m + 1),
                  1e-13 * std::abs(out[m]) + 1e-16)
          << "m=" << m << " T=" << t;
    }
  }
}

TEST(Hermite, E000IsGaussianPrefactor) {
  const double a = 1.1, b = 0.7, ab = 1.3;
  ETable e(0, 0, a, b, ab);
  EXPECT_NEAR(e(0, 0, 0), std::exp(-a * b / (a + b) * ab * ab), 1e-14);
}

TEST(Hermite, OutOfRangeTIsZero) {
  ETable e(2, 2, 1.0, 1.0, 0.5);
  EXPECT_EQ(e(1, 1, 3), 0.0);
  EXPECT_EQ(e(1, 1, -1), 0.0);
}

TEST(Hermite, RTableTopElementIsBoys) {
  const double pq[3] = {0.3, -0.2, 0.5};
  const double alpha = 0.9;
  const double r2 = pq[0] * pq[0] + pq[1] * pq[1] + pq[2] * pq[2];
  RTable r(4, alpha, pq);
  EXPECT_NEAR(r(0, 0, 0), boys_single(0, alpha * r2), 1e-13);
}

// ---- One-electron integrals ----

TEST(OneElectron, OverlapDiagonalIsOneForAllBases) {
  for (const char* basis : {"STO-3G", "6-31G", "6-31G(d)"}) {
    auto bs = basis::BasisSet::build(chem::builders::methane(), basis);
    la::Matrix s = overlap_matrix(bs);
    for (std::size_t i = 0; i < bs.nbf(); ++i) {
      EXPECT_NEAR(s(i, i), 1.0, 1e-10) << basis << " bf " << i;
    }
    EXPECT_TRUE(s.is_symmetric(1e-12));
  }
}

TEST(OneElectron, TwoCenterSPrimitiveOverlapClosedForm) {
  // Two normalized s primitives, exponents a, b, distance R:
  // S = (pi/(a+b))^{3/2} exp(-ab/(a+b) R^2) * Na * Nb.
  const double a = 0.8, b = 1.6, r = 1.7;
  chem::Molecule m;
  m.add_atom(1, 0.0, 0.0, 0.0);
  m.add_atom(1, 0.0, 0.0, r);
  // Build a fake one-primitive basis via the Shell API directly.
  basis::Shell s1, s2;
  s1.l = 0; s1.exps = {a}; s1.coefs = {1.0}; s1.center = {0, 0, 0};
  s2.l = 0; s2.exps = {b}; s2.coefs = {1.0}; s2.center = {0, 0, r};
  basis::normalize_shell(s1);
  basis::normalize_shell(s2);
  const double na = basis::primitive_norm(a, 0, 0, 0);
  const double nb = basis::primitive_norm(b, 0, 0, 0);
  const double expected = std::pow(kPi / (a + b), 1.5) *
                          std::exp(-a * b / (a + b) * r * r) * na * nb;
  // Use the ETable directly (this is what overlap_matrix does internally).
  ETable ex(0, 0, a, b, 0.0), ey(0, 0, a, b, 0.0), ez(0, 0, a, b, -r);
  const double got = s1.coefs[0] * s2.coefs[0] / (na * nb) * na * nb *
                     ex(0, 0, 0) * ey(0, 0, 0) * ez(0, 0, 0) *
                     std::pow(kPi / (a + b), 1.5);
  EXPECT_NEAR(got, expected, 1e-12);
}

TEST(OneElectron, KineticSinglePrimitiveExpectationValues) {
  // <T> for an individually-normalized Cartesian primitive (x^l, 0, 0):
  // s -> 3a/2, p_x -> 5a/2, d_xx -> 13a/6 (derived from the 1-D moment
  // ratios T^{ll}/S^{ll}; note the popular (2l+3)/2 rule fails for the
  // diagonal d components).
  const double alpha = 1.23;
  const double expect_by_l[3] = {1.5 * alpha, 2.5 * alpha,
                                 13.0 * alpha / 6.0};
  for (int l : {0, 1, 2}) {
    chem::Molecule m;
    m.add_atom(1, 0.0, 0.0, 0.0);
    // hand-build basis with one shell
    basis::BasisSet bs;
    {
      // Use BasisSet::build on H/STO-3G then overwrite? Cleaner: small local
      // computation through the public API requires a library entry, so we
      // validate via the matrix on a custom Shell by calling the kernels
      // through a 1-shell BasisSet stand-in below.
    }
    // Direct check through kinetic_matrix on a manufactured BasisSet is not
    // possible without a library entry; instead verify with the ETable
    // kinetic identity in one dimension against the closed form:
    //   T = l-dependent expectation = alpha (2l+3)/2.
    // 1-D factors: with i=j=l_x etc. Here we test the x^l 0 0 component.
    const double s1d = std::sqrt(kPi / (2.0 * alpha));
    ETable e(l, l + 2, alpha, alpha, 0.0);
    auto sfac = [&](int i, int j) {
      return (j < 0) ? 0.0 : e(i, j, 0) * s1d;
    };
    auto tfac = [&](int i, int j) {
      return -2.0 * alpha * alpha * sfac(i, j + 2) +
             alpha * (2 * j + 1) * sfac(i, j) -
             0.5 * j * (j - 1) * sfac(i, j - 2);
    };
    const double n2 = std::pow(basis::primitive_norm(alpha, l, 0, 0), 2);
    const double kin = n2 * (tfac(l, l) * sfac(0, 0) * sfac(0, 0) +
                             sfac(l, l) * tfac(0, 0) * sfac(0, 0) +
                             sfac(l, l) * sfac(0, 0) * tfac(0, 0));
    EXPECT_NEAR(kin, expect_by_l[l], 1e-11) << "l=" << l;
  }
}

TEST(OneElectron, NuclearAttractionOnCenterSPrimitive) {
  // Normalized s Gaussian centered on a Z=1 nucleus: V = -2 sqrt(2a/pi).
  // Exercise through the full matrix path with an H atom and a scaled
  // STO-3G-like single primitive: use hydrogen STO-3G and compare against
  // numerically-accumulated primitive contributions.
  chem::Molecule m;
  m.add_atom(1, 0.0, 0.0, 0.0);
  auto bs = basis::BasisSet::build(m, "STO-3G");
  la::Matrix v = nuclear_attraction_matrix(bs, m);
  // Sum over normalized primitives: V = -2 sqrt(2/pi) sum_pq c_p c_q
  //   * S-like cross terms; instead verify against direct formula
  //   V_11 = -sum_pq c_p c_q 2 pi/(p+q) * boys0(0) ... simpler:
  // For each primitive pair (a,b): contribution c_a c_b * 2pi/(a+b) *
  //   F_0(0) with F_0(0)=1 times -Z.
  const auto& sh = bs.shell(0);
  double expected = 0.0;
  for (std::size_t p = 0; p < sh.exps.size(); ++p) {
    for (std::size_t q = 0; q < sh.exps.size(); ++q) {
      expected -= sh.coefs[p] * sh.coefs[q] * 2.0 * kPi /
                  (sh.exps[p] + sh.exps[q]);
    }
  }
  EXPECT_NEAR(v(0, 0), expected, 1e-12);
  // Known reference: <V> for STO-3G hydrogen 1s in the H atom
  // is about -1.2266 Hartree? sanity-range check only:
  EXPECT_LT(v(0, 0), -1.0);
  EXPECT_GT(v(0, 0), -1.5);
}

TEST(OneElectron, HydrogenAtomSto3gEnergy) {
  // One-electron problem: lowest eigenvalue of H_core in the STO-3G basis
  // for the H atom is the well-known -0.46658 Eh variational value.
  chem::Molecule m;
  m.add_atom(1, 0.0, 0.0, 0.0);
  auto bs = basis::BasisSet::build(m, "STO-3G");
  la::Matrix h = core_hamiltonian(bs, m);
  EXPECT_NEAR(h(0, 0), -0.46658185, 1e-6);
}

TEST(OneElectron, MatricesInvariantUnderTranslation) {
  auto mol = chem::builders::water();
  auto mol2 = mol.translated(1.3, -0.4, 2.2);
  auto bs = basis::BasisSet::build(mol, "6-31G");
  auto bs2 = basis::BasisSet::build(mol2, "6-31G");
  EXPECT_NEAR(overlap_matrix(bs).max_abs_diff(overlap_matrix(bs2)), 0.0,
              1e-11);
  EXPECT_NEAR(kinetic_matrix(bs).max_abs_diff(kinetic_matrix(bs2)), 0.0,
              1e-11);
  EXPECT_NEAR(nuclear_attraction_matrix(bs, mol).max_abs_diff(
                  nuclear_attraction_matrix(bs2, mol2)),
              0.0, 1e-10);
}

// ---- ERIs ----

TEST(Eri, SameCenterSsssClosedForm) {
  // Four identical normalized s primitives (exponent a) on one center:
  // (ss|ss) = 2 pi^{5/2} / (p q sqrt(p+q)) N^4 with p = q = 2a.
  chem::Molecule m;
  m.add_atom(1, 0.0, 0.0, 0.0);
  auto bs = basis::BasisSet::build(m, "STO-3G");
  EriEngine eri(bs);
  double val = 0.0;
  eri.compute(0, 0, 0, 0, &val);

  const auto& sh = bs.shell(0);
  double expected = 0.0;
  for (std::size_t i = 0; i < sh.exps.size(); ++i) {
    for (std::size_t j = 0; j < sh.exps.size(); ++j) {
      for (std::size_t k = 0; k < sh.exps.size(); ++k) {
        for (std::size_t l = 0; l < sh.exps.size(); ++l) {
          const double p = sh.exps[i] + sh.exps[j];
          const double q = sh.exps[k] + sh.exps[l];
          expected += sh.coefs[i] * sh.coefs[j] * sh.coefs[k] * sh.coefs[l] *
                      2.0 * std::pow(kPi, 2.5) / (p * q * std::sqrt(p + q));
        }
      }
    }
  }
  EXPECT_NEAR(val, expected, 1e-10);
}

TEST(Eri, TwoCenterSsssMatchesBoysClosedForm) {
  // One primitive per center: (s_A s_A | s_B s_B) =
  //   2 pi^{5/2}/(p q sqrt(p+q)) F0(alpha R^2) N^4 with p = 2a, q = 2b.
  const double a = 0.9, b = 1.4, r = 2.1;
  basis::Shell sa, sb;
  sa.l = 0; sa.exps = {a}; sa.coefs = {1.0}; sa.center = {0, 0, 0};
  sb.l = 0; sb.exps = {b}; sb.coefs = {1.0}; sb.center = {0, 0, r};
  basis::normalize_shell(sa);
  basis::normalize_shell(sb);

  ShellPairData bra = make_shell_pair(sa, sa);
  ShellPairData ket = make_shell_pair(sb, sb);
  // Go through the low-level path used by EriEngine: single prim pair each.
  ASSERT_EQ(bra.prims.size(), 1u);
  const double p = 2 * a, q = 2 * b;
  const double alpha = p * q / (p + q);
  const double f0 = boys_single(0, alpha * r * r);
  const double n4 = bra.prims[0].coef * ket.prims[0].coef;
  const double expected =
      2.0 * std::pow(kPi, 2.5) / (p * q * std::sqrt(p + q)) * f0 * n4;

  // Evaluate via a 2-shell engine (H2-like fake molecule, custom basis is
  // awkward; use the hermite data directly):
  const double pq[3] = {bra.prims[0].P[0] - ket.prims[0].P[0],
                        bra.prims[0].P[1] - ket.prims[0].P[1],
                        bra.prims[0].P[2] - ket.prims[0].P[2]};
  RTable rt(0, alpha, pq);
  const double got = 2.0 * std::pow(kPi, 2.5) / (p * q * std::sqrt(p + q)) *
                     bra.prims[0].hermite[0] * ket.prims[0].hermite[0] *
                     rt(0, 0, 0);
  EXPECT_NEAR(got, expected, 1e-12);
}

class EriPermutation : public ::testing::TestWithParam<const char*> {};

TEST_P(EriPermutation, EightFoldSymmetry) {
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, GetParam());
  EriEngine eri(bs);
  const std::size_t ns = bs.nshells();

  // A handful of representative quartets, including d shells for 6-31G(d).
  std::vector<std::array<std::size_t, 4>> quartets;
  for (std::size_t i = 0; i < ns; i += 2) {
    for (std::size_t k = 0; k < ns; k += 3) {
      quartets.push_back({i, (i + 1) % ns, k, (k + 2) % ns});
    }
  }

  std::vector<double> ref, perm;
  for (const auto& qt : quartets) {
    const auto [i, j, k, l] = std::tuple{qt[0], qt[1], qt[2], qt[3]};
    const int ni = bs.shell(i).nfunc(), nj = bs.shell(j).nfunc(),
              nk = bs.shell(k).nfunc(), nl = bs.shell(l).nfunc();
    ref.assign(eri.batch_size(i, j, k, l), 0.0);
    eri.compute(i, j, k, l, ref.data());

    auto at = [&](const std::vector<double>& buf, int a, int b, int c, int d,
                  int n2, int n3, int n4) {
      return buf[((static_cast<std::size_t>(a) * n2 + b) * n3 + c) * n4 + d];
    };

    // (ij|kl) = (ji|kl) = (ij|lk) = (kl|ij) spot checks, full batches.
    perm.assign(eri.batch_size(j, i, k, l), 0.0);
    eri.compute(j, i, k, l, perm.data());
    for (int a = 0; a < ni; ++a)
      for (int b = 0; b < nj; ++b)
        for (int c = 0; c < nk; ++c)
          for (int d = 0; d < nl; ++d)
            EXPECT_NEAR(at(ref, a, b, c, d, nj, nk, nl),
                        at(perm, b, a, c, d, ni, nk, nl), 1e-11);

    perm.assign(eri.batch_size(i, j, l, k), 0.0);
    eri.compute(i, j, l, k, perm.data());
    for (int a = 0; a < ni; ++a)
      for (int b = 0; b < nj; ++b)
        for (int c = 0; c < nk; ++c)
          for (int d = 0; d < nl; ++d)
            EXPECT_NEAR(at(ref, a, b, c, d, nj, nk, nl),
                        at(perm, a, b, d, c, nj, nl, nk), 1e-11);

    perm.assign(eri.batch_size(k, l, i, j), 0.0);
    eri.compute(k, l, i, j, perm.data());
    for (int a = 0; a < ni; ++a)
      for (int b = 0; b < nj; ++b)
        for (int c = 0; c < nk; ++c)
          for (int d = 0; d < nl; ++d)
            EXPECT_NEAR(at(ref, a, b, c, d, nj, nk, nl),
                        at(perm, c, d, a, b, nl, ni, nj), 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, EriPermutation,
                         ::testing::Values("STO-3G", "6-31G", "6-31G(d)"));

TEST(Eri, DiagonalElementsNonNegative) {
  // (ab|ab) >= 0 (it is a self-Coulomb repulsion of a charge distribution).
  auto bs = basis::BasisSet::build(chem::builders::water(), "6-31G(d)");
  EriEngine eri(bs);
  std::vector<double> batch;
  for (std::size_t i = 0; i < bs.nshells(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      batch.assign(eri.batch_size(i, j, i, j), 0.0);
      eri.compute(i, j, i, j, batch.data());
      const int ni = bs.shell(i).nfunc(), nj = bs.shell(j).nfunc();
      for (int a = 0; a < ni; ++a) {
        for (int b = 0; b < nj; ++b) {
          const std::size_t ab = static_cast<std::size_t>(a) * nj + b;
          EXPECT_GE(batch[(ab * ni + a) * nj + b], -1e-14);
        }
      }
    }
  }
}

TEST(Eri, ComputeIsThreadSafe) {
  // The hybrid Fock builders call compute() concurrently from OpenMP
  // threads; concurrent batches must match the serial results exactly.
  auto bs = basis::BasisSet::build(chem::builders::methane(), "6-31G(d)");
  EriEngine eri(bs);
  const std::size_t ns = bs.nshells();

  struct Quartet {
    std::size_t i, j, k, l;
  };
  std::vector<Quartet> quartets;
  for (std::size_t i = 0; i < ns; i += 2) {
    for (std::size_t k = 0; k < ns; k += 3) {
      quartets.push_back({i, (i + 3) % ns, k, (k + 1) % ns});
    }
  }
  // Serial reference.
  std::vector<std::vector<double>> ref(quartets.size());
  for (std::size_t q = 0; q < quartets.size(); ++q) {
    const auto& t = quartets[q];
    ref[q].assign(eri.batch_size(t.i, t.j, t.k, t.l), 0.0);
    eri.compute(t.i, t.j, t.k, t.l, ref[q].data());
  }
  // Concurrent recomputation (each thread loops all quartets so batches
  // interleave differently per thread).
  std::atomic<int> mismatches{0};
#pragma omp parallel num_threads(4)
  {
    std::vector<double> buf;
    for (std::size_t q = 0; q < quartets.size(); ++q) {
      const auto& t = quartets[q];
      buf.assign(eri.batch_size(t.i, t.j, t.k, t.l), 0.0);
      eri.compute(t.i, t.j, t.k, t.l, buf.data());
      for (std::size_t e = 0; e < buf.size(); ++e) {
        if (buf[e] != ref[q][e]) ++mismatches;
      }
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
}

// ---- Screening ----

TEST(Screening, SchwarzIsATrueUpperBound) {
  auto bs = basis::BasisSet::build(chem::builders::water(), "STO-3G");
  EriEngine eri(bs);
  Screening sc(eri, 1e-12);
  std::vector<double> batch;
  for (std::size_t i = 0; i < bs.nshells(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      for (std::size_t k = 0; k < bs.nshells(); ++k) {
        for (std::size_t l = 0; l <= k; ++l) {
          batch.assign(eri.batch_size(i, j, k, l), 0.0);
          eri.compute(i, j, k, l, batch.data());
          double mx = 0.0;
          for (double v : batch) mx = std::max(mx, std::abs(v));
          EXPECT_LE(mx, sc.q(i, j) * sc.q(k, l) * (1.0 + 1e-10) + 1e-14)
              << i << " " << j << " " << k << " " << l;
        }
      }
    }
  }
}

TEST(Screening, ThresholdMonotonicity) {
  auto bs = basis::BasisSet::build(chem::builders::benzene(), "STO-3G");
  EriEngine eri(bs);
  Screening loose(eri, 1e-6);
  Screening tight(eri, 1e-12);
  EXPECT_LE(loose.count_surviving_quartets(),
            tight.count_surviving_quartets());
  EXPECT_LE(tight.count_surviving_quartets(), tight.total_quartets());
  EXPECT_GT(loose.count_surviving_quartets(), 0u);
}

TEST(Screening, PairPrescreenIsConsistent) {
  auto bs = basis::BasisSet::build(chem::builders::benzene(), "STO-3G");
  EriEngine eri(bs);
  Screening sc(eri, 1e-8);
  for (std::size_t i = 0; i < bs.nshells(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      if (!sc.keep_pair(i, j)) {
        // If the pair fails against the *best possible* partner, every
        // quartet containing it must fail too.
        for (std::size_t k = 0; k < bs.nshells(); ++k) {
          for (std::size_t l = 0; l <= k; ++l) {
            EXPECT_FALSE(sc.keep(i, j, k, l));
          }
        }
      }
    }
  }
}

TEST(Screening, DistantPairsAreScreenedOut) {
  // Two far-apart water molecules: cross pairs must screen to zero.
  auto m1 = chem::builders::water();
  auto m2 = m1.translated(50.0, 0.0, 0.0);
  chem::Molecule big;
  for (const auto& a : m1.atoms()) big.add_atom(a.z, a.xyz[0], a.xyz[1], a.xyz[2]);
  for (const auto& a : m2.atoms()) big.add_atom(a.z, a.xyz[0], a.xyz[1], a.xyz[2]);
  auto bs = basis::BasisSet::build(big, "STO-3G");
  EriEngine eri(bs);
  Screening sc(eri, 1e-10);
  // Shell 0 is on molecule 1, last shell on molecule 2.
  EXPECT_LT(sc.q(0, bs.nshells() - 1), 1e-12);
  const std::size_t kept = sc.count_surviving_quartets();
  EXPECT_LT(kept, sc.total_quartets() / 2);
}

// ---- Batched ERI pipeline (DESIGN.md section 12) ----

// Deterministic 64-bit LCG (Knuth constants); fixed seeds keep these tests
// reproducible run to run and machine to machine.
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 11;
  }
  double uniform() {  // in [0, 1)
    return static_cast<double>(next() % 1000000007ull) / 1000000007.0;
  }
};

TEST(Boys, BatchMatchesScalarBitwiseAllTable) {
  // All arguments below the table/asymptotic switch: exercises the
  // branch-free SIMD recursion. Every element must match boys() exactly.
  Lcg rng{0x243f6a8885a308d3ull};
  for (int mmax : {0, 1, 4, 8, 16, kMaxBoysOrder}) {
    const std::size_t n = 97;
    std::vector<double> t(n), fm(static_cast<std::size_t>(mmax + 1) * n);
    for (std::size_t e = 0; e < n; ++e) t[e] = rng.uniform() * 49.99;
    boys_batch(mmax, n, t.data(), fm.data());
    for (std::size_t e = 0; e < n; ++e) {
      double ref[kMaxBoysOrder + 1];
      boys(mmax, t[e], ref);
      for (int m = 0; m <= mmax; ++m) {
        EXPECT_EQ(fm[static_cast<std::size_t>(m) * n + e], ref[m])
            << "mmax=" << mmax << " m=" << m << " T=" << t[e];
      }
    }
  }
}

TEST(Boys, BatchMatchesScalarBitwiseMixedAsymptotic) {
  // Arguments straddling kBoysTableTmax: exercises the per-element
  // fallback that skips completed asymptotic elements. Still exact.
  Lcg rng{0x13198a2e03707344ull};
  const int mmax = 12;
  const std::size_t n = 64;
  std::vector<double> t(n), fm(static_cast<std::size_t>(mmax + 1) * n);
  for (std::size_t e = 0; e < n; ++e) {
    t[e] = (e % 3 == 0) ? kBoysTableTmax + rng.uniform() * 200.0
                        : rng.uniform() * kBoysTableTmax;
  }
  boys_batch(mmax, n, t.data(), fm.data());
  for (std::size_t e = 0; e < n; ++e) {
    double ref[kMaxBoysOrder + 1];
    boys(mmax, t[e], ref);
    for (int m = 0; m <= mmax; ++m) {
      EXPECT_EQ(fm[static_cast<std::size_t>(m) * n + e], ref[m])
          << "m=" << m << " T=" << t[e];
    }
  }
}

TEST(EriBatch, BatchedMatchesScalarWithinOneUlpAllClasses) {
  // Randomized shell quartets on C2/6-31G(d) (s, p, and d shells on both
  // atoms), compared entry by entry against the scalar EriEngine::compute
  // path at a 1-ULP bound. The quartets are drawn in arbitrary caller
  // orientation, so the batch's permutation path is covered too, and the
  // mixed-class fills exercise the (Lbra, Lket) grouping. The 1-ULP bound
  // (instead of EXPECT_EQ) exists only for signed zeros: the triangle-
  // bounded kernel can produce -0.0 where an older full-cube sweep made
  // +0.0; every nonzero element must agree exactly.
  chem::Molecule mol;
  mol.add_atom(6, 0.0, 0.0, 0.0);
  mol.add_atom(6, 0.0, 0.0, 2.68);
  auto bs = basis::BasisSet::build(mol, "6-31G(d)");
  EriEngine eri(bs);
  const std::size_t ns = bs.nshells();

  QuartetBatch batch(eri, 32);
  Lcg rng{0xa4093822299f31d0ull};
  std::vector<std::array<std::size_t, 4>> pending;
  std::vector<double> ref;
  std::set<std::pair<int, int>> classes_seen;

  auto check_flush = [&]() {
    batch.evaluate();
    ASSERT_EQ(batch.size(), pending.size());
    for (std::size_t qi = 0; qi < batch.size(); ++qi) {
      const auto [i, j, k, l] = std::tuple{pending[qi][0], pending[qi][1],
                                           pending[qi][2], pending[qi][3]};
      ref.assign(eri.batch_size(i, j, k, l), 0.0);
      eri.compute(i, j, k, l, ref.data());
      const double* got = batch.result(qi);
      for (std::size_t x = 0; x < ref.size(); ++x) {
        EXPECT_LE(la::ulp_distance(got[x], ref[x]), 1u)
            << "(" << i << j << "|" << k << l << ") element " << x << ": "
            << got[x] << " vs " << ref[x];
      }
    }
    batch.clear();
    pending.clear();
  };

  const std::size_t kQuartets = 400;
  for (std::size_t q = 0; q < kQuartets; ++q) {
    const std::size_t i = rng.next() % ns;
    const std::size_t j = rng.next() % ns;
    const std::size_t k = rng.next() % ns;
    const std::size_t l = rng.next() % ns;
    const int lb = bs.shell(i).l + bs.shell(j).l;
    const int lk = bs.shell(k).l + bs.shell(l).l;
    classes_seen.insert({lb, lk});
    batch.add(i, j, k, l, q);
    pending.push_back({i, j, k, l});
    if (batch.full()) check_flush();
  }
  check_flush();

  // C2/6-31G(d) spans l = 0, 1, 2 per shell, so Lbra and Lket each reach
  // 0..4: all 25 angular classes must have been sampled (deterministic
  // given the fixed seed).
  EXPECT_EQ(classes_seen.size(), 25u);
}

TEST(Eri, RestructuredKernelMatchesReferenceExactly) {
  // The compact-triangle kernel (including its (ssss) fast path and
  // constant-L class dispatch) against the original nested-loop reference
  // form, over every canonical (bra, ket) pair combination of C2/6-31G(d)
  // -- classes (0..4, 0..4), so both the static instantiations and the
  // runtime-L fallback run. Iteration orders and product associations were
  // preserved exactly, so every element must be bit-identical, signed
  // zeros included.
  chem::Molecule mol;
  mol.add_atom(6, 0.0, 0.0, 0.0);
  mol.add_atom(6, 0.0, 0.0, 2.68);
  auto bs = basis::BasisSet::build(mol, "6-31G(d)");
  ShellPairList pairs(bs);
  std::vector<const ShellPairData*> plist;
  for (std::size_t s1 = 0; s1 < bs.nshells(); ++s1) {
    for (std::size_t s2 = 0; s2 <= s1; ++s2) {
      plist.push_back(&pairs.pair(s1, s2));
    }
  }
  const std::size_t np = plist.size();

  std::vector<double> g_new, rmat, g_ref, out_new, out_ref;
  RTable r_new, r_ref;
  for (std::size_t pb = 0; pb < np; ++pb) {
    for (std::size_t pk = 0; pk < np; ++pk) {
      const ShellPairData& bra = *plist[pb];
      const ShellPairData& ket = *plist[pk];
      const std::size_t n = static_cast<std::size_t>(bra.ncomp()) *
                            static_cast<std::size_t>(ket.ncomp());
      // Distinct sentinel prefills verify both kernels fully initialize
      // their output.
      out_new.assign(n, 7.5);
      out_ref.assign(n, -3.25);

      detail::ScalarPrimSource src_new;
      src_new.ltot = bra.lsum() + ket.lsum();
      detail::eri_quartet_kernel(bra, ket, src_new, g_new, rmat, r_new,
                                 out_new.data());

      detail::ScalarBoys src_ref;
      src_ref.ltot = bra.lsum() + ket.lsum();
      detail::eri_quartet_kernel_ref(bra, ket, src_ref, g_ref, r_ref,
                                     out_ref.data());

      for (std::size_t x = 0; x < n; ++x) {
        ASSERT_EQ(std::bit_cast<std::uint64_t>(out_new[x]),
                  std::bit_cast<std::uint64_t>(out_ref[x]))
            << "pair (" << pb << ", " << pk << ") element " << x << ": "
            << out_new[x] << " vs " << out_ref[x];
      }
    }
  }
}

TEST(EriBatch, EightFoldSymmetryAudit) {
  // All eight permutational images of representative quartets evaluated
  // *through the batched path* in a single batch: the (ij|kl) = (ji|kl) =
  // (ij|lk) = (kl|ij) = ... physics must survive the class grouping and
  // the canonical-orientation + permute-back plumbing. Tolerance matches
  // the scalar permutation audit (the images are distinct floating-point
  // summations, not bitwise copies).
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "6-31G(d)");
  EriEngine eri(bs);
  const std::size_t ns = bs.nshells();
  QuartetBatch batch(eri, 16);

  for (std::size_t i = 0; i < ns; i += 2) {
    for (std::size_t k = 0; k < ns; k += 3) {
      const std::size_t j = (i + 1) % ns;
      const std::size_t l = (k + 2) % ns;

      // ax[t] = which axis of the reference (ij|kl) batch the t-th axis of
      // this permutational image corresponds to.
      struct Image {
        std::array<std::size_t, 4> sh;
        std::array<int, 4> ax;
      };
      const std::array<Image, 8> images = {{
          {{i, j, k, l}, {0, 1, 2, 3}},
          {{j, i, k, l}, {1, 0, 2, 3}},
          {{i, j, l, k}, {0, 1, 3, 2}},
          {{j, i, l, k}, {1, 0, 3, 2}},
          {{k, l, i, j}, {2, 3, 0, 1}},
          {{l, k, i, j}, {3, 2, 0, 1}},
          {{k, l, j, i}, {2, 3, 1, 0}},
          {{l, k, j, i}, {3, 2, 1, 0}},
      }};

      batch.clear();
      for (const Image& im : images) {
        batch.add(im.sh[0], im.sh[1], im.sh[2], im.sh[3]);
      }
      batch.evaluate();

      const double* ref = batch.result(0);
      const int nd[4] = {bs.shell(i).nfunc(), bs.shell(j).nfunc(),
                         bs.shell(k).nfunc(), bs.shell(l).nfunc()};
      for (std::size_t m = 1; m < images.size(); ++m) {
        const Image& im = images[m];
        const double* got = batch.result(m);
        const int pd[4] = {
            bs.shell(im.sh[0]).nfunc(), bs.shell(im.sh[1]).nfunc(),
            bs.shell(im.sh[2]).nfunc(), bs.shell(im.sh[3]).nfunc()};
        int idx[4];
        for (idx[0] = 0; idx[0] < nd[0]; ++idx[0])
          for (idx[1] = 0; idx[1] < nd[1]; ++idx[1])
            for (idx[2] = 0; idx[2] < nd[2]; ++idx[2])
              for (idx[3] = 0; idx[3] < nd[3]; ++idx[3]) {
                const std::size_t rflat =
                    ((static_cast<std::size_t>(idx[0]) * nd[1] + idx[1]) *
                         nd[2] +
                     idx[2]) *
                        nd[3] +
                    idx[3];
                const std::size_t pflat =
                    ((static_cast<std::size_t>(idx[im.ax[0]]) * pd[1] +
                      idx[im.ax[1]]) *
                         pd[2] +
                     idx[im.ax[2]]) *
                        pd[3] +
                    idx[im.ax[3]];
                EXPECT_NEAR(ref[rflat], got[pflat], 1e-11)
                    << "image " << m << " of (" << i << j << "|" << k << l
                    << ")";
              }
      }
    }
  }
}

TEST(EriBatch, ClassCountersTrackQuartetsAndBoysElements) {
  // With metrics enabled, each class-group evaluation records its quartet
  // and boys_batch element counts; totals must add up across flushes.
  chem::Molecule mol;
  mol.add_atom(6, 0.0, 0.0, 0.0);
  mol.add_atom(6, 0.0, 0.0, 2.68);
  auto bs = basis::BasisSet::build(mol, "6-31G(d)");
  EriEngine eri(bs);
  const std::size_t ns = bs.nshells();

  const bool prev = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  obs::reset_metrics();

  QuartetBatch batch(eri, 8);
  std::size_t added = 0;
  for (std::size_t i = 0; i < ns; ++i) {
    for (std::size_t k = 0; k < ns; k += 2) {
      batch.add(i, i, k, k);
      ++added;
      if (batch.full()) {
        batch.evaluate();
        batch.clear();
      }
    }
  }
  batch.evaluate();
  batch.clear();

  const obs::EriClassStats totals = obs::eri_class_totals();
  obs::set_metrics_enabled(prev);
  EXPECT_EQ(totals.quartets, added);
  EXPECT_GT(totals.boys_elements, 0u);
  // (ss|ss) quartets exist in this sweep, and their class slot must have
  // been hit specifically (not just the aggregate).
  EXPECT_GT(obs::eri_class_stats(0, 0).quartets, 0u);
}

}  // namespace
}  // namespace mc::ints
