// Tests for the basis-set machinery: shell normalization, the built-in
// libraries, SP expansion, and the paper's Table 4 shell / basis-function
// accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "basis/basis_library.hpp"
#include "basis/basis_set.hpp"
#include "basis/shell.hpp"
#include "chem/builders.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"

namespace mc::basis {
namespace {

TEST(Shell, CartesianComponentCounts) {
  EXPECT_EQ(ncart(0), 1);
  EXPECT_EQ(ncart(1), 3);
  EXPECT_EQ(ncart(2), 6);
  EXPECT_EQ(ncart(3), 10);
  EXPECT_EQ(cartesian_components(2).size(), 6u);
  // Canonical d order: xx, xy, xz, yy, yz, zz.
  const auto d = cartesian_components(2);
  EXPECT_EQ(d[0], (std::array<int, 3>{2, 0, 0}));
  EXPECT_EQ(d[1], (std::array<int, 3>{1, 1, 0}));
  EXPECT_EQ(d[5], (std::array<int, 3>{0, 0, 2}));
}

TEST(Shell, DoubleFactorial) {
  EXPECT_DOUBLE_EQ(dfact(-1), 1.0);
  EXPECT_DOUBLE_EQ(dfact(1), 1.0);
  EXPECT_DOUBLE_EQ(dfact(3), 3.0);
  EXPECT_DOUBLE_EQ(dfact(5), 15.0);
  EXPECT_DOUBLE_EQ(dfact(7), 105.0);
}

TEST(Shell, PrimitiveNormIsUnitSelfOverlap) {
  // <g|g> for normalized primitive must be 1: check s, p, d components.
  for (auto [i, j, k] : {std::array<int, 3>{0, 0, 0},
                         std::array<int, 3>{1, 0, 0},
                         std::array<int, 3>{2, 0, 0},
                         std::array<int, 3>{1, 1, 0}}) {
    const double a = 1.37;
    const double n = primitive_norm(a, i, j, k);
    const int l = i + j + k;
    // Self overlap of unnormalized x^i y^j z^k exp(-a r^2):
    const double s =
        std::pow(kPi / (2 * a), 1.5) *
        dfact(2 * i - 1) * dfact(2 * j - 1) * dfact(2 * k - 1) /
        std::pow(4.0 * a, l);
    EXPECT_NEAR(n * n * s, 1.0, 1e-12) << i << j << k;
  }
}

TEST(Shell, ComponentNormRatioForD) {
  // xx vs xy: ratio sqrt(3!! / 1) = sqrt(3).
  EXPECT_NEAR(component_norm_ratio(2, 1, 1, 0), std::sqrt(3.0), 1e-14);
  EXPECT_DOUBLE_EQ(component_norm_ratio(2, 2, 0, 0), 1.0);
  EXPECT_THROW(component_norm_ratio(2, 1, 0, 0), mc::Error);
}

TEST(BasisLibrary, KnownSets) {
  EXPECT_EQ(available_basis_sets().size(), 4u);
  EXPECT_TRUE(has_element_basis("STO-3G", 1));
  EXPECT_TRUE(has_element_basis("6-31G(d)", 6));
  EXPECT_FALSE(has_element_basis("STO-3G", 15));
  EXPECT_THROW(element_basis("STO-99G", 1), mc::Error);
  EXPECT_THROW(element_basis("STO-3G", 15), mc::Error);
}

TEST(BasisLibrary, CarbonSto3gStructure) {
  const auto shells = element_basis("STO-3G", 6);
  ASSERT_EQ(shells.size(), 2u);
  EXPECT_EQ(shells[0].type, 'S');
  EXPECT_EQ(shells[1].type, 'L');
  EXPECT_EQ(shells[1].coefs_p.size(), 3u);
}

TEST(BasisLibrary, Pople631GdpAddsPOnHydrogen) {
  // 6-31G(d,p): hydrogen gains a p shell (exponent 1.1), heavy atoms are
  // identical to 6-31G(d).
  const auto h = element_basis("6-31G(d,p)", 1);
  ASSERT_EQ(h.size(), 3u);  // S, S, P
  EXPECT_EQ(h.back().type, 'P');
  EXPECT_DOUBLE_EQ(h.back().exps[0], 1.1);
  EXPECT_EQ(element_basis("6-31G(d,p)", 6).size(),
            element_basis("6-31G(d)", 6).size());
  // Aliases resolve to the same tables.
  EXPECT_EQ(element_basis("6-31G**", 1).size(), 3u);
  EXPECT_TRUE(has_element_basis("6-31G(d,p)", 8));
}

TEST(BasisLibrary, Carbon631GdHasPolarization) {
  const auto shells = element_basis("6-31G(d)", 6);
  ASSERT_EQ(shells.size(), 4u);  // S, L, L, D
  EXPECT_EQ(shells.back().type, 'D');
  EXPECT_DOUBLE_EQ(shells.back().exps[0], 0.8);
  // Hydrogen gets no d.
  EXPECT_EQ(element_basis("6-31G(d)", 1).size(), 2u);
}

TEST(BasisSet, WaterSto3gCounts) {
  auto bs = BasisSet::build(chem::builders::water(), "STO-3G");
  // O: s + (s,p from L); H: s each => 5 + 2*1... shells after SP expansion:
  // O: 1s, 2s, 2p -> 3; H: 1 each -> total 5 expanded shells.
  EXPECT_EQ(bs.nshells(), 5u);
  // GAMESS convention: O has 2 shells (S, L), H one each -> 4.
  EXPECT_EQ(bs.nshells_gamess(), 4u);
  EXPECT_EQ(bs.nbf(), 7u);  // O: 1+1+3, H: 1+1
  EXPECT_EQ(bs.max_l(), 1);
  EXPECT_EQ(bs.max_shell_size(), 3);
}

TEST(BasisSet, CarbonPerAtomCountsMatchPaper) {
  // Paper Table 4: 6-31G(d) graphene has 4 GAMESS shells and 15 basis
  // functions per carbon (Cartesian d).
  chem::Molecule c1;
  c1.add_atom(6, 0.0, 0.0, 0.0);
  auto bs = BasisSet::build(c1, "6-31G(d)");
  EXPECT_EQ(bs.nshells_gamess(), 4u);
  EXPECT_EQ(bs.nbf(), 15u);
  EXPECT_EQ(bs.max_l(), 2);
}

TEST(BasisSet, PaperDatasetTable4) {
  // 0.5 nm dataset: 44 atoms, 176 GAMESS shells, 660 basis functions.
  auto mol = chem::builders::paper_dataset("0.5nm");
  auto bs = BasisSet::build(mol, "6-31G(d)");
  EXPECT_EQ(bs.nshells_gamess(), 176u);
  EXPECT_EQ(bs.nbf(), 660u);
}

TEST(BasisSet, FirstBfOffsetsAreContiguous) {
  auto bs = BasisSet::build(chem::builders::methane(), "6-31G(d)");
  std::size_t expected = 0;
  for (const Shell& sh : bs.shells()) {
    EXPECT_EQ(sh.first_bf, expected);
    expected += static_cast<std::size_t>(sh.nfunc());
  }
  EXPECT_EQ(expected, bs.nbf());
}

TEST(BasisSet, ShellOfBfInverse) {
  auto bs = BasisSet::build(chem::builders::water(), "6-31G");
  for (std::size_t bf = 0; bf < bs.nbf(); ++bf) {
    const std::size_t s = bs.shell_of_bf(bf);
    const Shell& sh = bs.shell(s);
    EXPECT_GE(bf, sh.first_bf);
    EXPECT_LT(bf, sh.first_bf + static_cast<std::size_t>(sh.nfunc()));
  }
  EXPECT_THROW((void)bs.shell_of_bf(bs.nbf()), mc::Error);
}

TEST(BasisSet, SpExpansionSharesExponents) {
  chem::Molecule c1;
  c1.add_atom(6, 0.0, 0.0, 0.0);
  auto bs = BasisSet::build(c1, "STO-3G");
  // Shells: S(core), S(from L), P(from L).
  ASSERT_EQ(bs.nshells(), 3u);
  EXPECT_FALSE(bs.shell(0).from_sp);
  EXPECT_TRUE(bs.shell(1).from_sp);
  EXPECT_TRUE(bs.shell(2).from_sp);
  EXPECT_EQ(bs.shell(1).l, 0);
  EXPECT_EQ(bs.shell(2).l, 1);
  EXPECT_EQ(bs.shell(1).exps, bs.shell(2).exps);
}

}  // namespace
}  // namespace mc::basis
