// Golden-trajectory regression suite (DESIGN.md section 10.4): every
// builder -- serial reference, MPI-only, private-Fock hybrid, shared-Fock
// hybrid -- must reproduce the committed per-iteration SCF energies of
// tests/golden_trajectories.hpp for benzene/STO-3G and water/6-31G, with
// and without incremental delta-density builds. The SCF trajectory is the
// most sensitive end-to-end observable the code has: it folds the quartet
// set, the screening decisions, the reduction protocol, DIIS, and the
// rebuild policy into one sequence of numbers, so a regression anywhere
// upstream moves some iteration's energy by far more than the tolerance.
//
// Regenerate the golden arrays (only after an intentional numerics
// change) with MC_GOLDEN_DUMP=1: the serial tests print ready-to-paste
// array literals.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "core/parallel_scf.hpp"
#include "golden_trajectories.hpp"
#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"

namespace mc::core {
namespace {

using mc::testing::GoldenIter;
using mc::testing::kGoldenEnergyTolerance;

constexpr double kSchwarzThreshold = 1e-10;  // golden-generation setting

scf::ScfResult run_serial(const chem::Molecule& mol, const std::string& basis,
                          bool incremental) {
  auto bs = basis::BasisSet::build(mol, basis);
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, kSchwarzThreshold);
  scf::SerialFockBuilder builder(eri, screen);
  scf::ScfOptions opt;
  opt.incremental_fock = incremental;
  return scf::run_scf(mol, bs, builder, opt);
}

scf::ScfResult run_parallel(ScfAlgorithm alg, const chem::Molecule& mol,
                            const std::string& basis, bool incremental) {
  ParallelScfConfig cfg;
  cfg.algorithm = alg;
  cfg.nranks = 2;
  cfg.nthreads = (alg == ScfAlgorithm::kMpiOnly ||
                  alg == ScfAlgorithm::kDistFock)
                     ? 1
                     : 2;
  cfg.basis = basis;
  cfg.schwarz_threshold = kSchwarzThreshold;
  cfg.scf.incremental_fock = incremental;
  return run_parallel_scf(mol, cfg).scf;
}

/// MC_GOLDEN_DUMP=1: print the run as a paste-ready golden array literal.
void maybe_dump(const char* name, const scf::ScfResult& res) {
  if (std::getenv("MC_GOLDEN_DUMP") == nullptr) return;
  std::printf("inline constexpr GoldenIter %s[] = {\n", name);
  for (const auto& it : res.history) {
    std::printf("    {%.17g, %s},\n", it.energy,
                it.full_rebuild ? "true" : "false");
  }
  std::printf("};\n");
}

template <std::size_t N>
void expect_matches_golden(const scf::ScfResult& res,
                           const GoldenIter (&ref)[N],
                           const std::string& what) {
  EXPECT_TRUE(res.converged) << what;
  ASSERT_EQ(res.history.size(), N)
      << what << ": iteration count diverged from the golden trajectory";
  for (std::size_t i = 0; i < N; ++i) {
    const auto& it = res.history[i];
    EXPECT_NEAR(it.energy, ref[i].energy, kGoldenEnergyTolerance)
        << what << ": iteration " << it.iteration;
    EXPECT_EQ(it.full_rebuild, ref[i].full_rebuild)
        << what << ": iteration " << it.iteration
        << " took a different full-vs-delta rebuild decision";
  }
}

const chem::Molecule kBenzene = chem::builders::benzene();
const chem::Molecule kWater = chem::builders::water();

// --- benzene / STO-3G ------------------------------------------------------

TEST(GoldenBenzene, SerialFull) {
  const auto res = run_serial(kBenzene, "STO-3G", false);
  maybe_dump("kBenzeneSto3gFull", res);
  expect_matches_golden(res, mc::testing::kBenzeneSto3gFull, "serial full");
}

TEST(GoldenBenzene, SerialIncremental) {
  const auto res = run_serial(kBenzene, "STO-3G", true);
  maybe_dump("kBenzeneSto3gIncremental", res);
  expect_matches_golden(res, mc::testing::kBenzeneSto3gIncremental,
                        "serial incremental");
}

TEST(GoldenBenzene, MpiFull) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kMpiOnly, kBenzene, "STO-3G", false),
      mc::testing::kBenzeneSto3gFull, "mpi-only full");
}

TEST(GoldenBenzene, MpiIncremental) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kMpiOnly, kBenzene, "STO-3G", true),
      mc::testing::kBenzeneSto3gIncremental, "mpi-only incremental");
}

TEST(GoldenBenzene, PrivateFockFull) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kPrivateFock, kBenzene, "STO-3G", false),
      mc::testing::kBenzeneSto3gFull, "private-fock full");
}

TEST(GoldenBenzene, PrivateFockIncremental) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kPrivateFock, kBenzene, "STO-3G", true),
      mc::testing::kBenzeneSto3gIncremental, "private-fock incremental");
}

TEST(GoldenBenzene, SharedFockFull) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kSharedFock, kBenzene, "STO-3G", false),
      mc::testing::kBenzeneSto3gFull, "shared-fock full");
}

TEST(GoldenBenzene, DistFockFull) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kDistFock, kBenzene, "STO-3G", false),
      mc::testing::kBenzeneSto3gFull, "dist-fock full");
}

TEST(GoldenBenzene, DistFockIncremental) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kDistFock, kBenzene, "STO-3G", true),
      mc::testing::kBenzeneSto3gIncremental, "dist-fock incremental");
}

TEST(GoldenBenzene, SharedFockIncremental) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kSharedFock, kBenzene, "STO-3G", true),
      mc::testing::kBenzeneSto3gIncremental, "shared-fock incremental");
}

// --- water / 6-31G ---------------------------------------------------------

TEST(GoldenWater, SerialFull) {
  const auto res = run_serial(kWater, "6-31G", false);
  maybe_dump("kWater631gFull", res);
  expect_matches_golden(res, mc::testing::kWater631gFull, "serial full");
}

TEST(GoldenWater, SerialIncremental) {
  const auto res = run_serial(kWater, "6-31G", true);
  maybe_dump("kWater631gIncremental", res);
  expect_matches_golden(res, mc::testing::kWater631gIncremental,
                        "serial incremental");
}

TEST(GoldenWater, MpiFull) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kMpiOnly, kWater, "6-31G", false),
      mc::testing::kWater631gFull, "mpi-only full");
}

TEST(GoldenWater, MpiIncremental) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kMpiOnly, kWater, "6-31G", true),
      mc::testing::kWater631gIncremental, "mpi-only incremental");
}

TEST(GoldenWater, PrivateFockFull) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kPrivateFock, kWater, "6-31G", false),
      mc::testing::kWater631gFull, "private-fock full");
}

TEST(GoldenWater, PrivateFockIncremental) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kPrivateFock, kWater, "6-31G", true),
      mc::testing::kWater631gIncremental, "private-fock incremental");
}

TEST(GoldenWater, DistFockFull) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kDistFock, kWater, "6-31G", false),
      mc::testing::kWater631gFull, "dist-fock full");
}

TEST(GoldenWater, DistFockIncremental) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kDistFock, kWater, "6-31G", true),
      mc::testing::kWater631gIncremental, "dist-fock incremental");
}

TEST(GoldenWater, SharedFockFull) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kSharedFock, kWater, "6-31G", false),
      mc::testing::kWater631gFull, "shared-fock full");
}

TEST(GoldenWater, SharedFockIncremental) {
  expect_matches_golden(
      run_parallel(ScfAlgorithm::kSharedFock, kWater, "6-31G", true),
      mc::testing::kWater631gIncremental, "shared-fock incremental");
}

}  // namespace
}  // namespace mc::core
