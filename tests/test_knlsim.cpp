// Tests for the KNL performance model: workload construction against exact
// screening, cost-model properties, simulator feasibility logic, and the
// qualitative shape criteria of the paper's figures.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "common/error.hpp"
#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "knlsim/cost_model.hpp"
#include "knlsim/experiments.hpp"
#include "knlsim/knl_config.hpp"
#include "knlsim/simulator.hpp"
#include "knlsim/workload.hpp"
#include "scf/fock_builder.hpp"

namespace mc::knlsim {
namespace {

using core::ScfAlgorithm;

const Workload& small_workload() {
  // 0.5 nm paper dataset: 264 expanded shells -- fast enough to build once.
  static Workload wl(chem::builders::paper_dataset("0.5nm"), "6-31G(d)",
                     EriCostTable::host_default());
  return wl;
}

// ---- Config / naming ----

TEST(KnlConfig, Names) {
  EXPECT_EQ(memory_mode_name(MemoryMode::kCache), "cache");
  EXPECT_EQ(cluster_mode_name(ClusterMode::kSnc4), "SNC-4");
  EXPECT_EQ(affinity_name(Affinity::kBalanced), "balanced");
}

TEST(KnlConfig, NodeParametersMatchPaperTable1) {
  KnlNode node;
  EXPECT_EQ(node.cores, 64);
  EXPECT_EQ(node.hw_threads(), 256);
  EXPECT_NEAR(node.mcdram_bw / node.ddr_bw, 4.0, 0.1);  // 400 vs 100 GB/s
  EXPECT_GT(node.capacity_bytes(MemoryMode::kCache),
            node.capacity_bytes(MemoryMode::kFlatMcdram));
}

// ---- Cost model ----

TEST(CostModel, EriCostGrowsWithAngularMomentum) {
  EriCostTable t = EriCostTable::host_default();
  for (int b = 0; b + 1 < kNumPairClasses; ++b) {
    for (int k = 0; k + 1 < kNumPairClasses; ++k) {
      EXPECT_LT(t.s_per_unit[b][k], t.s_per_unit[b + 1][k]);
      EXPECT_LT(t.s_per_unit[b][k], t.s_per_unit[b][k + 1]);
    }
  }
}

TEST(CostModel, BarrierGrowsWithThreads) {
  KnlCalibration c;
  EXPECT_EQ(c.barrier_seconds(1), 0.0);
  EXPECT_GT(c.barrier_seconds(64), c.barrier_seconds(2));
}

TEST(CostModel, SmtYieldPeaksBeyondOneThread) {
  KnlCalibration c;
  // The paper: biggest gain at 2 threads/core, diminishing at 3-4.
  EXPECT_GT(c.smt_yield[2], c.smt_yield[1]);
  EXPECT_GE(c.smt_yield[3], c.smt_yield[2]);
  EXPECT_GE(c.smt_yield[4], c.smt_yield[3]);
  EXPECT_LT(c.smt_yield[4] - c.smt_yield[2], c.smt_yield[2] - c.smt_yield[1]);
}

TEST(CostModel, EffectiveBandwidthDegradesPastMcdram) {
  KnlCalibration c;
  KnlNode node;
  const double small = c.effective_bandwidth(node, MemoryMode::kCache, 1e9);
  const double big = c.effective_bandwidth(node, MemoryMode::kCache, 1e11);
  EXPECT_GT(small, big);
  EXPECT_GE(big, node.ddr_bw * 0.9);
  EXPECT_DOUBLE_EQ(
      c.effective_bandwidth(node, MemoryMode::kFlatDdr, 1e9), node.ddr_bw);
}

TEST(CostModel, AllreduceScalesWithBytesAndRanks) {
  KnlCalibration c;
  AriesNetwork net;
  const double t1 = c.allreduce_seconds(net, 1e6, 64, 4);
  const double t2 = c.allreduce_seconds(net, 1e8, 64, 4);
  const double t3 = c.allreduce_seconds(net, 1e6, 4096, 4);
  EXPECT_GT(t2, t1);
  EXPECT_GT(t3, t1);
  EXPECT_EQ(c.allreduce_seconds(net, 1e6, 1, 1), 0.0);
}

TEST(CostModel, ClusterFactorsOrdering) {
  KnlCalibration c;
  EXPECT_LT(c.cluster_factor(ClusterMode::kSnc4),
            c.cluster_factor(ClusterMode::kQuadrant) + 1e-12);
  EXPECT_GT(c.cluster_factor(ClusterMode::kAllToAll),
            c.cluster_factor(ClusterMode::kQuadrant));
  EXPECT_GT(c.shared_write_penalty(ClusterMode::kAllToAll), 1.0);
  EXPECT_DOUBLE_EQ(c.shared_write_penalty(ClusterMode::kQuadrant), 1.0);
}

// ---- Workload ----

TEST(Workload, CountsMatchBasis) {
  const Workload& wl = small_workload();
  auto bs = basis::BasisSet::build(chem::builders::paper_dataset("0.5nm"),
                                   "6-31G(d)");
  EXPECT_EQ(wl.nshells(), bs.nshells());
  EXPECT_EQ(wl.nbf(), 660u);
  EXPECT_EQ(wl.npairs_total(), bs.nshells() * (bs.nshells() + 1) / 2);
  EXPECT_GT(wl.npairs_surviving(), 0u);
  EXPECT_LE(wl.npairs_surviving(), wl.npairs_total());
  EXPECT_GT(wl.total_host_seconds(), 0.0);
  EXPECT_GT(wl.quartets_estimate(), 0.0);
}

TEST(Workload, PairsAreInCanonicalIndexOrder) {
  const Workload& wl = small_workload();
  for (std::size_t p = 1; p < wl.pairs().size(); ++p) {
    EXPECT_LT(wl.pairs()[p - 1].idx, wl.pairs()[p].idx);
  }
}

TEST(Workload, RadialQBoundsMatchExactSchwarz) {
  // Compare the interpolated Q table against the exact Schwarz bounds on a
  // small system where we can afford the exact computation.
  auto mol = chem::builders::graphene_flake(12);
  auto bs = basis::BasisSet::build(mol, "6-31G(d)");
  ints::EriEngine eri(bs);
  ints::Screening exact(eri, 1e-10);

  Workload wl(mol, "6-31G(d)", EriCostTable::host_default());
  // s-s pairs are orientation-free: the radial table must match exactly
  // (to interpolation error). Pairs with p/d shells sample the bound with
  // the separation along z while the real pair is rotated, so the
  // max-component bound can differ by tens of percent -- but it must stay
  // a sane factor, and in the safe (over-estimating) direction on average.
  std::size_t checked = 0;
  double log_ratio_sum = 0.0;
  for (const PairTask& t : wl.pairs()) {
    std::size_t i, j;
    mc::scf::unpack_pair(t.idx, i, j);
    const double qe = exact.q(i, j);
    if (qe < 1e-8) continue;  // interpolation noise region
    const double ratio = t.q / qe;
    if (bs.shell(i).l == 0 && bs.shell(j).l == 0) {
      EXPECT_NEAR(ratio, 1.0, 0.02) << "s-s pair " << i << "," << j;
    }
    EXPECT_GT(ratio, 0.5) << "pair " << i << "," << j;
    EXPECT_LT(ratio, 2.5) << "pair " << i << "," << j;
    log_ratio_sum += std::log(ratio);
    ++checked;
  }
  EXPECT_GT(checked, 100u);
  // Net bias is small and non-negative (bounds err on the safe side).
  EXPECT_GT(log_ratio_sum / static_cast<double>(checked), -0.02);
}

TEST(Workload, TaskCostsSumToTotal) {
  const Workload& wl = small_workload();
  const double sum = std::accumulate(wl.task_cost().begin(),
                                     wl.task_cost().end(), 0.0);
  EXPECT_NEAR(sum, wl.total_host_seconds(), 1e-9 * sum);
  const double isum = std::accumulate(wl.i_task_cost().begin(),
                                      wl.i_task_cost().end(), 0.0);
  EXPECT_NEAR(isum, sum, 1e-9 * sum);
}

TEST(Workload, ScreeningShrinksWithDistance) {
  // A stretched system must have a smaller surviving fraction than a
  // compact one with the same shell count.
  auto compact = chem::builders::graphene_flake(16);
  chem::Molecule stretched;  // same atoms, 3x the spacing
  for (const auto& a : compact.atoms()) {
    stretched.add_atom(a.z, 3 * a.xyz[0], 3 * a.xyz[1], 3 * a.xyz[2]);
  }
  EriCostTable costs = EriCostTable::host_default();
  Workload w1(compact, "6-31G(d)", costs);
  Workload w2(stretched, "6-31G(d)", costs);
  EXPECT_LT(static_cast<double>(w2.npairs_surviving()),
            static_cast<double>(w1.npairs_surviving()));
}

// ---- Simulator ----

class SimTest : public ::testing::Test {
 protected:
  Simulator sim{small_workload()};
};

TEST_F(SimTest, MoreNodesNeverSlowerUntilPlateau) {
  double prev = 1e300;
  for (int nodes : {1, 2, 4, 8}) {
    SimConfig cfg;
    cfg.algorithm = ScfAlgorithm::kSharedFock;
    cfg.nodes = nodes;
    SimResult r = sim.run(cfg);
    ASSERT_TRUE(r.feasible);
    EXPECT_LT(r.seconds, prev * 1.02);
    prev = r.seconds;
  }
}

TEST_F(SimTest, HybridUsesAllHardwareThreadsByDefault) {
  SimConfig cfg;
  cfg.algorithm = ScfAlgorithm::kSharedFock;
  SimResult r = sim.run(cfg);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.ranks_per_node, 4);
  EXPECT_EQ(r.threads_per_rank, 64);
}

TEST_F(SimTest, MpiOnlyIsMemoryCapped) {
  SimConfig cfg;
  cfg.algorithm = ScfAlgorithm::kMpiOnly;
  SimResult r = sim.run(cfg);
  ASSERT_TRUE(r.feasible);
  // 256 ranks x (1.2 GB fixed + matrices) exceeds 192 GB: capped at 128.
  EXPECT_LE(r.ranks_per_node, 128);
  EXPECT_EQ(r.threads_per_rank, 1);
}

TEST_F(SimTest, FlatMcdramInfeasibleForBigFootprints) {
  SimConfig cfg;
  cfg.algorithm = ScfAlgorithm::kPrivateFock;
  cfg.memory_mode = MemoryMode::kFlatMcdram;
  cfg.ranks_per_node = 4;
  cfg.threads_per_rank = 64;
  // 0.5 nm private-Fock footprint is ~5.7 GB: fits 16 GB MCDRAM.
  EXPECT_TRUE(sim.run(cfg).feasible);

  // But not with an absurd thread count driving (2+T) N^2 up.
  Workload big(chem::builders::paper_dataset("1.5nm"), "6-31G(d)",
               EriCostTable::host_default());
  Simulator bigger(big);
  SimResult r2 = bigger.run(cfg);
  EXPECT_FALSE(r2.feasible);
  EXPECT_FALSE(r2.infeasible_reason.empty());
}

TEST_F(SimTest, BreakdownSumsBelowTotal) {
  SimConfig cfg;
  cfg.algorithm = ScfAlgorithm::kSharedFock;
  cfg.nodes = 2;
  SimResult r = sim.run(cfg);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.breakdown.eri_s, 0.0);
  EXPECT_GE(r.breakdown.imbalance_s, 0.0);
  EXPECT_LE(r.breakdown.eri_s, r.seconds * 1.0001);
}

TEST_F(SimTest, AllToAllSlowerThanQuadrant) {
  for (ScfAlgorithm alg : {ScfAlgorithm::kMpiOnly, ScfAlgorithm::kPrivateFock,
                           ScfAlgorithm::kSharedFock}) {
    SimConfig quad;
    quad.algorithm = alg;
    SimConfig a2a = quad;
    a2a.cluster_mode = ClusterMode::kAllToAll;
    EXPECT_GT(sim.run(a2a).seconds, sim.run(quad).seconds)
        << algorithm_name(alg);
  }
}

TEST_F(SimTest, SharedFockSuffersMostInAllToAll) {
  // The paper: only in A2A does MPI-only beat shared Fock (small data).
  auto ratio = [&](ScfAlgorithm alg) {
    SimConfig quad;
    quad.algorithm = alg;
    SimConfig a2a = quad;
    a2a.cluster_mode = ClusterMode::kAllToAll;
    return sim.run(a2a).seconds / sim.run(quad).seconds;
  };
  EXPECT_GT(ratio(ScfAlgorithm::kSharedFock),
            ratio(ScfAlgorithm::kMpiOnly) * 1.05);
}

TEST_F(SimTest, SmtYieldVisibleInThreadScaling) {
  // 64 -> 128 hardware threads must gain less than 2x (SMT yield), and
  // 128 -> 256 even less.
  auto time_at = [&](int threads_per_rank) {
    SimConfig cfg;
    cfg.algorithm = ScfAlgorithm::kPrivateFock;
    cfg.ranks_per_node = 4;
    cfg.threads_per_rank = threads_per_rank;
    return sim.run(cfg).seconds;
  };
  const double t16 = time_at(16);  // 64 HW threads: 1/core
  const double t32 = time_at(32);  // 2/core
  const double t64 = time_at(64);  // 4/core
  EXPECT_GT(t16 / t32, 1.1);
  EXPECT_LT(t16 / t32, 1.9);
  EXPECT_LT(t32 / t64, t16 / t32);
}

TEST_F(SimTest, CompactAffinityHurtsAtLowThreadCounts) {
  auto time_with = [&](Affinity aff) {
    SimConfig cfg;
    cfg.algorithm = ScfAlgorithm::kSharedFock;
    cfg.ranks_per_node = 4;
    cfg.threads_per_rank = 8;  // 32 HW threads: compact packs 8 cores
    cfg.affinity = aff;
    return sim.run(cfg).seconds;
  };
  EXPECT_GT(time_with(Affinity::kCompact),
            2.0 * time_with(Affinity::kScatter));
  EXPECT_GT(time_with(Affinity::kNone), time_with(Affinity::kScatter));
  EXPECT_LE(time_with(Affinity::kBalanced),
            time_with(Affinity::kScatter) * 1.001);
}

TEST_F(SimTest, StaticDecompositionNeverBeatsDlb) {
  for (ScfAlgorithm alg : {ScfAlgorithm::kMpiOnly, ScfAlgorithm::kPrivateFock,
                           ScfAlgorithm::kSharedFock}) {
    SimConfig cfg;
    cfg.algorithm = alg;
    cfg.nodes = 8;
    const SimResult dyn = sim.run(cfg);
    cfg.dynamic_load_balance = false;
    const SimResult sta = sim.run(cfg);
    ASSERT_TRUE(dyn.feasible && sta.feasible);
    EXPECT_GE(sta.seconds, dyn.seconds * 0.999) << algorithm_name(alg);
    // The triangular task-size growth makes static blocks clearly worse
    // for the pair-indexed loops.
    if (alg != ScfAlgorithm::kPrivateFock) {
      EXPECT_GT(sta.seconds, dyn.seconds * 1.2) << algorithm_name(alg);
    }
  }
}

TEST_F(SimTest, InvalidConfigsThrow) {
  SimConfig cfg;
  cfg.nodes = 0;
  EXPECT_THROW((void)sim.run(cfg), mc::Error);
  cfg.nodes = 100000;
  EXPECT_THROW((void)sim.run(cfg), mc::Error);
}

// ---- Experiment drivers (shape assertions on the real datasets are in
// the bench harness; here we exercise the cheap drivers end to end) ----

TEST(Experiments, Table2RowsAndHeadlineRatio) {
  Table t = table2_memory_footprint();
  EXPECT_EQ(t.rows(), 5u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("5.0nm"), std::string::npos);
  EXPECT_NE(s.find("45.7"), std::string::npos);  // MPI/Sh.F. model ratio
}

TEST(CostModel, DistFockFootprintShrinksWithScaleAndFitsMcdram) {
  // The dist-Fock model is the only one that decreases with node count.
  const std::size_t nbf = 30240;  // the paper's 5.0 nm dataset
  const core::NodeLayout l{64, 1};
  const double m1 = core::model_dist_fock_bytes_per_node(nbf, l, 1);
  const double m256 = core::model_dist_fock_bytes_per_node(nbf, l, 256);
  const double m3000 = core::model_dist_fock_bytes_per_node(nbf, l, 3000);
  EXPECT_GT(m1, m256);
  EXPECT_GT(m256, m3000);
  // The replicated models are node-count independent; at 3,000 nodes the
  // dist windows' share per node is far below even one replicated copy.
  const double repl =
      core::model_bytes_per_node(core::ScfAlgorithm::kMpiOnly, nbf, l);
  EXPECT_LT(m3000, repl);
  // The paper's Figure 7 scenario: 30,240 BF cannot fit flat MCDRAM with
  // any replicated code (one N^2 matrix alone is ~7.3 GB, and eq. 3a-3c
  // footprints start at 2.5x that per rank), but the distributed windows
  // plus the ~N^2/2 working set do at 3,000 nodes.
  const double mcdram = 16.0 * 1024.0 * 1024.0 * 1024.0;
  EXPECT_GT(core::model_bytes_per_node(core::ScfAlgorithm::kSharedFock, nbf,
                                       {4, 64}),
            mcdram);
  EXPECT_LT(core::model_dist_fock_bytes_per_node(nbf, {4, 1}, 3000), mcdram);
}

TEST(Experiments, Table4MatchesPaperExactly) {
  Table t = table4_dataset_characteristics();
  const std::string s = t.to_string();
  // Paper Table 4 rows.
  EXPECT_NE(s.find("| 0.5nm | 44      | 176      | 660"), std::string::npos)
      << s;
  EXPECT_NE(s.find("| 5.0nm | 2016    | 8064     | 30240"),
            std::string::npos)
      << s;
}

}  // namespace
}  // namespace mc::knlsim
