// Fault-injection tests for the minimpi abort protocol: a rank made to
// throw inside any collective (or in recv, or during thread spawn) must
// never hang a peer that is already blocked in a different call, and
// run_spmd must rethrow the first error after every rank has unwound.
// Every test in this file doubles as a no-deadlock check -- the tsan ctest
// label carries a timeout, so a hang is a failure, not a stuck CI job.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "par/fault_injection.hpp"
#include "par/runtime.hpp"

namespace mc::par {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { clear_fault_plan(); }

  static void expect_fault_rethrown(int nranks,
                                    const std::function<void(Comm&)>& body) {
    try {
      run_spmd(nranks, body);
      FAIL() << "run_spmd should have rethrown the injected fault";
    } catch (const mc::Error& e) {
      // The injected error or a peer's abort-unwind error may win the race
      // to be "first"; both prove propagation worked.
      EXPECT_TRUE(std::string(e.what()).find("fault injection") !=
                      std::string::npos ||
                  std::string(e.what()).find("abort") != std::string::npos)
          << e.what();
    }
  }
};

// ---- One rank failing inside each collective, peers already blocked ----

TEST_F(FaultInjectionTest, BarrierFaultDoesNotHangPeers) {
  set_fault_plan({1, FaultOp::kBarrier, 0});
  expect_fault_rethrown(4, [](Comm& comm) { comm.barrier(); });
}

TEST_F(FaultInjectionTest, AllreduceSumFaultDoesNotHangPeers) {
  set_fault_plan({1, FaultOp::kAllreduceSum, 0});
  expect_fault_rethrown(4, [](Comm& comm) {
    std::vector<double> buf(64, static_cast<double>(comm.rank()));
    comm.allreduce_sum(buf.data(), buf.size());
  });
}

TEST_F(FaultInjectionTest, AllreduceMaxFaultDoesNotHangPeers) {
  set_fault_plan({2, FaultOp::kAllreduceMax, 0});
  expect_fault_rethrown(4, [](Comm& comm) {
    (void)comm.allreduce_max(static_cast<double>(comm.rank()));
  });
}

TEST_F(FaultInjectionTest, BroadcastFaultDoesNotHangPeers) {
  set_fault_plan({1, FaultOp::kBroadcast, 0});
  expect_fault_rethrown(4, [](Comm& comm) {
    std::vector<double> buf(16, comm.rank() == 0 ? 42.0 : 0.0);
    comm.broadcast(buf.data(), buf.size(), 0);
  });
}

TEST_F(FaultInjectionTest, DlbResetFaultDoesNotHangPeers) {
  set_fault_plan({3, FaultOp::kDlbReset, 0});
  expect_fault_rethrown(4, [](Comm& comm) { comm.dlb_reset(); });
}

// ---- Point-to-point: blocked recv must observe the abort ----

TEST_F(FaultInjectionTest, RecvBlockedOnDeadSenderIsWoken) {
  // Rank 0 blocks in recv for a message rank 1 will never send, because
  // rank 1 faults at its barrier. The abort must wake rank 0's mailbox
  // wait -- with the old 50ms polling loop this "worked" by accident; with
  // the predicate wait it works by construction.
  set_fault_plan({1, FaultOp::kBarrier, 0});
  expect_fault_rethrown(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      (void)comm.recv(1, /*tag=*/99);
    } else {
      // mc-lint: allow(MC-COLL-001): divergence is the scenario under test
      comm.barrier();  // faults here; never reaches send
    }
  });
}

TEST_F(FaultInjectionTest, RecvFaultUnblocksPeersInCollective) {
  set_fault_plan({1, FaultOp::kRecv, 0});
  expect_fault_rethrown(4, [](Comm& comm) {
    if (comm.rank() == 1) {
      (void)comm.recv(0, /*tag=*/7);  // faults at entry
    } else {
      std::vector<double> buf(8, 1.0);
      // mc-lint: allow(MC-COLL-001): divergence is the scenario under test
      comm.allreduce_sum(buf.data(), buf.size());  // must not hang
    }
  });
}

TEST_F(FaultInjectionTest, SendFaultLeavesReceiverUnblocked) {
  set_fault_plan({1, FaultOp::kSend, 0});
  expect_fault_rethrown(2, [](Comm& comm) {
    if (comm.rank() == 1) {
      const double v = 3.0;
      comm.send(0, /*tag=*/5, &v, 1);  // faults before the push
    } else {
      (void)comm.recv(1, /*tag=*/5);  // message never arrives; abort wakes
    }
  });
}

// ---- One-sided window ops: faults and abort propagation ----

TEST_F(FaultInjectionTest, WindowFenceFaultDoesNotHangPeers) {
  // The fence is the windows' collective; a rank faulting there must
  // unwind peers blocked in the same fence.
  set_fault_plan({1, FaultOp::kWinFence, 0});
  expect_fault_rethrown(4, [](Comm& comm) {
    Window w = comm.win_create("t:fault-fence", {8, 8, 8, 8});
    comm.win_fence(w);
  });
}

TEST_F(FaultInjectionTest, WindowPutFaultAbortsPeersAtNextFence) {
  // put/get/acc are one-sided: the fault fires on the calling rank only,
  // and the peers -- already blocked in the epoch-closing fence -- must be
  // woken by abort propagation, not left waiting for the dead rank.
  set_fault_plan({2, FaultOp::kWinPut, 0});
  expect_fault_rethrown(4, [](Comm& comm) {
    Window w = comm.win_create("t:fault-put", {4, 4, 4, 4});
    const double v = 1.0;
    comm.win_put(w, w.rank_base(comm.rank()), &v, 1);  // rank 2 faults here
    comm.win_fence(w);
  });
}

TEST_F(FaultInjectionTest, WindowGetFaultAbortsPeersAtNextFence) {
  set_fault_plan({0, FaultOp::kWinGet, 0});
  expect_fault_rethrown(3, [](Comm& comm) {
    Window w = comm.win_create("t:fault-get", {4, 4, 4});
    double buf[4];
    comm.win_get(w, 0, buf, 4);
    comm.win_fence(w);
  });
}

TEST_F(FaultInjectionTest, WindowAccFaultAbortsPeersAtNextFence) {
  set_fault_plan({1, FaultOp::kWinAcc, 0});
  expect_fault_rethrown(3, [](Comm& comm) {
    Window w = comm.win_create("t:fault-acc", {4, 4, 4});
    const double v = 2.0;
    comm.win_acc(w, 0, &v, 1);
    comm.win_fence(w);
  });
}

TEST_F(FaultInjectionTest, DelayedAccChangesNothingBeforeTheFence) {
  // MC_FAULT_DELAY_MS turns the fault into a stall instead of a throw: a
  // delayed one-sided acc must be fully absorbed by the next fence --
  // correctness depends only on the fence, never on timing.
  FaultPlan plan{1, FaultOp::kWinAcc, 0};
  plan.delay_ms = 50;
  set_fault_plan(plan);
  std::vector<double> out(4, -1.0);
  run_spmd(2, [&](Comm& comm) {
    Window w = comm.win_create("t:delay-acc", {2, 2});
    const double ones[2] = {1.0, 1.0};
    comm.win_acc(w, 0, ones, 2);  // rank 1 stalls 50ms first
    comm.win_acc(w, 2, ones, 2);
    comm.win_fence(w);
    if (comm.rank() == 0) {
      comm.win_get(w, 0, out.data(), 4);
    }
    comm.win_fence(w);
    comm.win_free(w);
  });
  for (double v : out) EXPECT_DOUBLE_EQ(v, 2.0);
}

// ---- call_index semantics ----

TEST_F(FaultInjectionTest, CallIndexCountsOnlyTargetRankCalls) {
  // Fail rank 0 on its SECOND explicit barrier. The first barrier must
  // complete on every rank, proving the counter is per-matching-call and
  // composite collectives' internal syncs don't advance it.
  set_fault_plan({0, FaultOp::kBarrier, 1});
  std::atomic<int> past_first{0};
  expect_fault_rethrown(4, [&](Comm& comm) {
    std::vector<double> buf(4, 1.0);
    comm.allreduce_sum(buf.data(), buf.size());  // internal syncs don't count
    comm.barrier();                              // call 0: succeeds
    past_first.fetch_add(1);
    comm.barrier();  // call 1: rank 0 faults
  });
  EXPECT_EQ(past_first.load(), 4);
}

TEST_F(FaultInjectionTest, OnlyTargetRankThrowsTheInjectedError) {
  set_fault_plan({2, FaultOp::kBarrier, 0});
  std::atomic<int> injected{0}, aborted{0};
  try {
    run_spmd(4, [&](Comm& comm) {
      try {
        comm.barrier();
      } catch (const mc::Error& e) {
        const bool is_injected =
            std::string(e.what()).find("fault injection") !=
            std::string::npos;
        (is_injected ? injected : aborted).fetch_add(1);
        throw;
      }
    });
    FAIL() << "expected rethrow";
  } catch (const mc::Error&) {
  }
  EXPECT_EQ(injected.load(), 1);
  EXPECT_EQ(aborted.load(), 3);
}

// ---- Spawn failure and the job-active guard ----

TEST_F(FaultInjectionTest, SpawnFailureJoinsStartedRanksAndReleasesJob) {
  // Rank 1's std::thread construction "fails": rank 0 is already running
  // and possibly blocked in the barrier. run_spmd must abort it, join it,
  // rethrow -- and clear the job-active flag so the runtime is usable
  // again (regression: the flag used to leak, making every subsequent
  // run_spmd fail with "a job is already active").
  set_fault_plan({1, FaultOp::kSpawn, 0});
  EXPECT_THROW(run_spmd(2, [](Comm& comm) { comm.barrier(); }), mc::Error);

  clear_fault_plan();
  std::atomic<int> ran{0};
  run_spmd(2, [&](Comm& comm) {
    comm.barrier();
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 2);
}

// ---- Plan management and the environment form ----

TEST_F(FaultInjectionTest, ClearRestoresNormalOperation) {
  set_fault_plan({0, FaultOp::kAllreduceSum, 0});
  clear_fault_plan();
  std::vector<double> out(2, 0.0);
  run_spmd(3, [&](Comm& comm) {
    std::vector<double> buf(2, 1.0);
    comm.allreduce_sum(buf.data(), buf.size());
    if (comm.rank() == 0) out = buf;
  });
  EXPECT_EQ(out[0], 3.0);
}

TEST_F(FaultInjectionTest, PlanIsReArmedOnEachInstall) {
  // The same plan installed twice must fire twice (set resets the counter).
  for (int round = 0; round < 2; ++round) {
    set_fault_plan({0, FaultOp::kBarrier, 0});
    EXPECT_THROW(run_spmd(2, [](Comm& comm) { comm.barrier(); }), mc::Error)
        << "round " << round;
  }
}

TEST_F(FaultInjectionTest, OpNamesRoundTrip) {
  for (FaultOp op :
       {FaultOp::kSpawn, FaultOp::kBarrier, FaultOp::kAllreduceSum,
        FaultOp::kAllreduceMax, FaultOp::kBroadcast, FaultOp::kDlbReset,
        FaultOp::kSend, FaultOp::kRecv, FaultOp::kWinPut, FaultOp::kWinGet,
        FaultOp::kWinAcc, FaultOp::kWinFence}) {
    EXPECT_EQ(fault_op_from_name(fault_op_name(op)), op);
  }
  EXPECT_THROW((void)fault_op_from_name("no-such-op"), mc::Error);
}

TEST_F(FaultInjectionTest, EnvPlanParsing) {
  ::unsetenv("MC_FAULT_RANK");
  ::unsetenv("MC_FAULT_OP");
  ::unsetenv("MC_FAULT_CALL");
  EXPECT_FALSE(fault_plan_from_env().enabled());

  ::setenv("MC_FAULT_RANK", "2", 1);
  ::setenv("MC_FAULT_OP", "allreduce_sum", 1);
  ::setenv("MC_FAULT_CALL", "3", 1);
  const FaultPlan p = fault_plan_from_env();
  EXPECT_TRUE(p.enabled());
  EXPECT_EQ(p.rank, 2);
  EXPECT_EQ(p.op, FaultOp::kAllreduceSum);
  EXPECT_EQ(p.call_index, 3);

  ::setenv("MC_FAULT_OP", "win_acc", 1);
  ::setenv("MC_FAULT_DELAY_MS", "25", 1);
  const FaultPlan pd = fault_plan_from_env();
  EXPECT_EQ(pd.op, FaultOp::kWinAcc);
  EXPECT_EQ(pd.delay_ms, 25);
  ::unsetenv("MC_FAULT_DELAY_MS");

  ::setenv("MC_FAULT_OP", "bogus", 1);
  EXPECT_THROW((void)fault_plan_from_env(), mc::Error);
  ::unsetenv("MC_FAULT_RANK");
  ::unsetenv("MC_FAULT_OP");
  ::unsetenv("MC_FAULT_CALL");
}

}  // namespace
}  // namespace mc::par
