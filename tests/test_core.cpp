// Tests for the paper's three Fock-build algorithms: cross-algorithm
// equivalence over rank x thread grids (the central correctness invariant),
// the shared-Fock buffer machinery and its ablations, the memory model
// (eqs. 3a-3c), and the end-to-end distributed SCF.

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "core/memory_model.hpp"
#include "core/parallel_scf.hpp"
#include "fock_fixture.hpp"

namespace mc::core {
namespace {

using Fixture = FockFixture;

class AlgorithmGrid
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AlgorithmGrid, MpiOnlyMatchesSerial) {
  const auto [nranks, nthreads] = GetParam();
  if (nthreads > 1) GTEST_SKIP() << "MPI-only has no thread dimension";
  Fixture fx(chem::builders::water(), "6-31G");
  la::Matrix g = build_distributed(fx, nranks, [&](par::Ddi& ddi) {
    return std::make_unique<FockBuilderMpi>(fx.eri, fx.screen, ddi);
  });
  EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10);
}

TEST_P(AlgorithmGrid, PrivateFockMatchesSerial) {
  const auto [nranks, nthreads] = GetParam();
  Fixture fx(chem::builders::water(), "6-31G");
  la::Matrix g = build_distributed(fx, nranks, [&](par::Ddi& ddi) {
    PrivateFockOptions opt;
    opt.nthreads = nthreads;
    return std::make_unique<FockBuilderPrivate>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10);
}

TEST_P(AlgorithmGrid, SharedFockMatchesSerial) {
  const auto [nranks, nthreads] = GetParam();
  Fixture fx(chem::builders::water(), "6-31G");
  la::Matrix g = build_distributed(fx, nranks, [&](par::Ddi& ddi) {
    SharedFockOptions opt;
    opt.nthreads = nthreads;
    return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RankThreadGrid, AlgorithmGrid,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 4)));

TEST(AlgorithmEquivalence, DShellSystemAllThreeAgree) {
  // 6-31G(d) methane exercises d-function quartets through every code path.
  Fixture fx(chem::builders::methane(), "6-31G(d)");
  la::Matrix g_mpi = build_distributed(fx, 2, [&](par::Ddi& ddi) {
    return std::make_unique<FockBuilderMpi>(fx.eri, fx.screen, ddi);
  });
  la::Matrix g_priv = build_distributed(fx, 2, [&](par::Ddi& ddi) {
    PrivateFockOptions opt;
    opt.nthreads = 2;
    return std::make_unique<FockBuilderPrivate>(fx.eri, fx.screen, ddi, opt);
  });
  la::Matrix g_sh = build_distributed(fx, 2, [&](par::Ddi& ddi) {
    SharedFockOptions opt;
    opt.nthreads = 2;
    return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_NEAR(g_mpi.max_abs_diff(fx.g_ref), 0.0, 1e-10);
  EXPECT_NEAR(g_priv.max_abs_diff(fx.g_ref), 0.0, 1e-10);
  EXPECT_NEAR(g_sh.max_abs_diff(fx.g_ref), 0.0, 1e-10);
}

TEST(WorkStealingBuilder, MatchesSerialAndRecordsSteals) {
  Fixture fx(chem::builders::benzene(), "STO-3G");
  std::mutex mu;
  std::size_t total_steals = 0;
  std::size_t total_pairs = 0;
  la::Matrix out(fx.bs.nbf(), fx.bs.nbf());
  par::run_spmd(3, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    FockBuilderMpi b(fx.eri, fx.screen, ddi, MpiLoadBalance::kWorkStealing);
    la::Matrix g(fx.bs.nbf(), fx.bs.nbf());
    b.build(fx.d, g);
    std::lock_guard<std::mutex> lk(mu);
    total_steals += b.last_pairs_stolen();
    total_pairs += b.last_pairs_claimed();
    if (comm.rank() == 0) out = g;
  });
  EXPECT_NEAR(out.max_abs_diff(fx.g_ref), 0.0, 1e-10);
  // Every surviving pair of the compacted Schwarz-sorted list processed
  // exactly once across ranks.
  EXPECT_EQ(total_pairs, fx.screen.sorted_pairs().size());
  // With triangular task sizes, the rank owning the cheap low-index slice
  // finishes early and steals (overwhelmingly likely; not strictly
  // deterministic, so only assert when it happened on >=0 pairs).
  SUCCEED() << "steals observed: " << total_steals;
}

TEST(WorkStealingBuilder, RepeatedBuildsStayCorrect) {
  // The shared counters are keyed per job; two consecutive builds must not
  // interfere (regression guard for blackboard reuse).
  Fixture fx(chem::builders::water(), "STO-3G");
  par::run_spmd(2, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    FockBuilderMpi b(fx.eri, fx.screen, ddi, MpiLoadBalance::kWorkStealing);
    la::Matrix g(fx.bs.nbf(), fx.bs.nbf());
    for (int rep = 0; rep < 3; ++rep) {
      g.set_zero();
      b.build(fx.d, g);
      EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10) << "rep " << rep;
    }
  });
}

// ---- Shared-Fock internals and ablations ----

TEST(SharedFockAblation, EagerFiFlushGivesSameResult) {
  Fixture fx(chem::builders::water(), "STO-3G");
  for (bool lazy : {true, false}) {
    la::Matrix g = build_distributed(fx, 1, [&](par::Ddi& ddi) {
      SharedFockOptions opt;
      opt.nthreads = 3;
      opt.lazy_fi_flush = lazy;
      return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi,
                                                 opt);
    });
    EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10) << "lazy=" << lazy;
  }
}

TEST(SharedFockAblation, PaddingAndScheduleDoNotChangeResult) {
  Fixture fx(chem::builders::water(), "STO-3G");
  for (int pad : {0, 8, 64}) {
    for (bool dyn : {true, false}) {
      la::Matrix g = build_distributed(fx, 1, [&](par::Ddi& ddi) {
        SharedFockOptions opt;
        opt.nthreads = 2;
        opt.padding_doubles = pad;
        opt.dynamic_schedule = dyn;
        return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi,
                                                   opt);
      });
      EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10)
          << "pad=" << pad << " dyn=" << dyn;
    }
  }
}

TEST(SharedFock, LazyFlushingFlushesPerIChangeNotPerPair) {
  Fixture fx(chem::builders::benzene(), "STO-3G");
  std::size_t flushes = 0, pairs = 0;
  par::run_spmd(1, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    SharedFockOptions opt;
    opt.nthreads = 2;
    FockBuilderShared b(fx.eri, fx.screen, ddi, opt);
    la::Matrix g(fx.bs.nbf(), fx.bs.nbf());
    b.build(fx.d, g);
    flushes = b.last_fi_flushes();
    pairs = b.last_pairs_claimed();
  });
  EXPECT_GT(pairs, fx.bs.nshells());
  // With one rank, i changes exactly nshells times across the pair sweep.
  EXPECT_LE(flushes, fx.bs.nshells());
  EXPECT_LT(flushes, pairs / 2);
}

TEST(SharedFockEdgeCases, SingleThreadDegeneratesToSerialProtocol) {
  // nthreads=1 means every buffer column, flush chunk, and kl pair belongs
  // to the one thread: the full protocol still runs but with no concurrency.
  Fixture fx(chem::builders::water(), "STO-3G");
  for (bool lazy : {true, false}) {
    la::Matrix g = build_distributed(fx, 2, [&](par::Ddi& ddi) {
      SharedFockOptions opt;
      opt.nthreads = 1;
      opt.lazy_fi_flush = lazy;
      return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi,
                                                 opt);
    });
    expect_bit_comparable(g, fx.g_ref, kMaxSkeletonUlps,
                          lazy ? "1-thread lazy" : "1-thread eager");
  }
}

TEST(SharedFockEdgeCases, ScreeningEverythingLeavesGZeroWithoutFlushing) {
  // An absurd threshold kills every (i,j) pair before the kl loop: the lazy
  // FI buffer is never dirtied (iold stays -1) and the no-final-flush path
  // must still produce a well-defined all-zero skeleton on every rank.
  Fixture fx(chem::builders::water(), "STO-3G", /*screen_threshold=*/1e30);
  ASSERT_EQ(fx.g_ref.max_abs(), 0.0);
  la::Matrix g = build_distributed(fx, 2, [&](par::Ddi& ddi) {
    SharedFockOptions opt;
    opt.nthreads = 2;
    return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_EQ(g.max_abs(), 0.0);
}

TEST(SharedFockEdgeCases, SingleShellMoleculeHasOnePair) {
  // He/STO-3G is one s shell: npairs=1, the kl loop is the single pair
  // (0,0), and most threads get no work at all.
  chem::Molecule he;
  he.add_atom(2, 0.0, 0.0, 0.0);
  Fixture fx(he, "STO-3G");
  std::size_t pairs = 0;
  la::Matrix out(fx.bs.nbf(), fx.bs.nbf());
  par::run_spmd(2, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    SharedFockOptions opt;
    opt.nthreads = 4;
    FockBuilderShared b(fx.eri, fx.screen, ddi, opt);
    la::Matrix g(fx.bs.nbf(), fx.bs.nbf());
    b.build(fx.d, g);
    if (comm.rank() == 0) {
      out = g;
      pairs = b.last_pairs_claimed();
    }
    comm.barrier();
  });
  expect_bit_comparable(out, fx.g_ref, kMaxSkeletonUlps, "He single shell");
  EXPECT_LE(pairs, 1u);  // rank 0 claimed the lone pair or lost the race
}

TEST(PrivateFock, StaticScheduleGivesSameResult) {
  Fixture fx(chem::builders::water(), "6-31G");
  la::Matrix g = build_distributed(fx, 2, [&](par::Ddi& ddi) {
    PrivateFockOptions opt;
    opt.nthreads = 2;
    opt.dynamic_schedule = false;
    return std::make_unique<FockBuilderPrivate>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10);
}

TEST(LoadStats, QuartetsPartitionAcrossRanks) {
  // The union of per-rank work must equal the serial quartet count.
  Fixture fx(chem::builders::benzene(), "STO-3G");
  scf::SerialFockBuilder serial(fx.eri, fx.screen);
  la::Matrix gtmp(fx.bs.nbf(), fx.bs.nbf());
  serial.build(fx.d, gtmp);
  const std::size_t total = serial.last_quartets_computed();

  std::mutex mu;
  std::size_t sum = 0;
  par::run_spmd(3, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    FockBuilderMpi b(fx.eri, fx.screen, ddi);
    la::Matrix g(fx.bs.nbf(), fx.bs.nbf());
    b.build(fx.d, g);
    std::lock_guard<std::mutex> lk(mu);
    sum += b.last_quartets_computed();
  });
  EXPECT_EQ(sum, total);
}

// ---- Memory model ----

TEST(MemoryModel, FormulasMatchPaperEquations) {
  const std::size_t n = 1800;  // 1.0 nm dataset
  const double n2 = 1800.0 * 1800.0 * 8.0;
  EXPECT_DOUBLE_EQ(
      model_bytes_per_node(ScfAlgorithm::kMpiOnly, n, {256, 1}),
      2.5 * n2 * 256);
  EXPECT_DOUBLE_EQ(
      model_bytes_per_node(ScfAlgorithm::kPrivateFock, n, {4, 64}),
      66.0 * n2 * 4);
  EXPECT_DOUBLE_EQ(
      model_bytes_per_node(ScfAlgorithm::kSharedFock, n, {4, 64}),
      3.5 * n2 * 4);
}

TEST(MemoryModel, PaperHeadlineRatios) {
  // "256 MPI ranks ... versus 1 MPI rank with 256 threads": the ideal
  // difference is 256x; the model gives ~183x for shared Fock (the paper
  // reports 'about 200 times') and the hybrid codes always beat MPI-only.
  const std::size_t n = 5340;
  const double shared_ratio =
      footprint_ratio_vs_mpi(ScfAlgorithm::kSharedFock, {1, 256}, n, 256);
  EXPECT_NEAR(shared_ratio, 2.5 * 256 / 3.5, 1e-9);
  EXPECT_GT(shared_ratio, 150.0);
  EXPECT_LT(shared_ratio, 256.0);

  const double priv_ratio =
      footprint_ratio_vs_mpi(ScfAlgorithm::kPrivateFock, {4, 64}, n, 256);
  EXPECT_GT(priv_ratio, 2.0);
  EXPECT_GT(shared_ratio, priv_ratio);
}

TEST(MemoryModel, FeasibleLayoutCapsMpiRanks) {
  // 2.0 nm dataset (N=5340) on a 192 GB node: 256 MPI ranks need
  // 2.5 * 228 MB * 256 = 146 GB (fits), but the 5.0 nm dataset (N=30240)
  // needs 2.5 * 7.3 GB per rank -- only a handful of ranks fit.
  const double gb = 1024.0 * 1024.0 * 1024.0;
  NodeLayout l2nm =
      max_feasible_layout(ScfAlgorithm::kMpiOnly, 5340, 192 * gb, 256);
  EXPECT_EQ(l2nm.ranks_per_node, 256);

  NodeLayout l5nm =
      max_feasible_layout(ScfAlgorithm::kMpiOnly, 30240, 192 * gb, 256);
  EXPECT_LT(l5nm.ranks_per_node, 16);
  EXPECT_GE(l5nm.ranks_per_node, 1);

  // Shared Fock fits the 5 nm system comfortably at 4 ranks/node
  // (paper: ~208 GB total footprint per node at 4 ranks with data; our
  // asymptotic model: 3.5 * 7.3 GB * 4 = 102 GB < 192 GB).
  NodeLayout sh5nm =
      max_feasible_layout(ScfAlgorithm::kSharedFock, 30240, 192 * gb, 256);
  EXPECT_GE(sh5nm.ranks_per_node, 4);

  // Infeasible case: tiny capacity.
  NodeLayout none =
      max_feasible_layout(ScfAlgorithm::kMpiOnly, 30240, 1 * gb, 256);
  EXPECT_EQ(none.ranks_per_node, 0);
}

TEST(MemoryModel, AlgorithmNames) {
  EXPECT_EQ(algorithm_name(ScfAlgorithm::kMpiOnly), "mpi-only");
  EXPECT_EQ(algorithm_name(ScfAlgorithm::kPrivateFock), "private-fock");
  EXPECT_EQ(algorithm_name(ScfAlgorithm::kSharedFock), "shared-fock");
}

// ---- End-to-end distributed SCF ----

class ParallelScfEndToEnd : public ::testing::TestWithParam<ScfAlgorithm> {};

TEST_P(ParallelScfEndToEnd, ConvergesToSerialEnergy) {
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-11);
  scf::SerialFockBuilder serial(eri, screen);
  scf::ScfResult ref = scf::run_scf(mol, bs, serial);
  ASSERT_TRUE(ref.converged);

  ParallelScfConfig cfg;
  cfg.algorithm = GetParam();
  cfg.nranks = 2;
  cfg.nthreads = 2;
  cfg.basis = "STO-3G";
  ParallelScfResult res = run_parallel_scf(mol, cfg);
  EXPECT_TRUE(res.scf.converged);
  EXPECT_NEAR(res.scf.energy, ref.energy, 1e-8);
  EXPECT_GT(res.scf.fock_build_seconds, 0.0);
  EXPECT_EQ(res.quartets_per_rank.size(), 2u);
  EXPECT_GT(res.load_imbalance(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ParallelScfEndToEnd,
                         ::testing::Values(ScfAlgorithm::kMpiOnly,
                                           ScfAlgorithm::kPrivateFock,
                                           ScfAlgorithm::kSharedFock));

TEST(ParallelScf, MemoryFootprintOrderingMatchesPaper) {
  // Measured (tracked) per-rank peaks: private Fock with T threads must
  // exceed shared Fock (thread-replicated G vs shared G + small buffers),
  // which is the whole point of Algorithm 3.
  auto mol = chem::builders::water();

  auto run = [&](ScfAlgorithm alg, int nthreads) {
    ParallelScfConfig cfg;
    cfg.algorithm = alg;
    cfg.nranks = 1;
    cfg.nthreads = nthreads;
    cfg.basis = "6-31G";
    ParallelScfResult r = run_parallel_scf(mol, cfg);
    EXPECT_TRUE(r.scf.converged);
    return r.peak_bytes_per_rank[0];
  };

  const std::size_t priv4 = run(ScfAlgorithm::kPrivateFock, 4);
  const std::size_t shared4 = run(ScfAlgorithm::kSharedFock, 4);
  EXPECT_GT(priv4, shared4);

  // Private-Fock footprint grows with thread count; shared-Fock barely.
  const std::size_t priv1 = run(ScfAlgorithm::kPrivateFock, 1);
  const std::size_t shared1 = run(ScfAlgorithm::kSharedFock, 1);
  EXPECT_GT(priv4, priv1 + 2 * (priv4 - shared4) / 4);
  EXPECT_LT(static_cast<double>(shared4),
            1.5 * static_cast<double>(shared1));
}

TEST(ParallelScf, DShellFullScfAcrossAlgorithms) {
  // Full SCF with d functions through every parallel code path (the grid
  // tests cover single G builds; this drives whole iterations).
  auto mol = chem::builders::methane();
  auto bs = basis::BasisSet::build(mol, "6-31G(d)");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-11);
  scf::SerialFockBuilder serial(eri, screen);
  scf::ScfResult ref = scf::run_scf(mol, bs, serial);
  ASSERT_TRUE(ref.converged);

  for (auto alg :
       {ScfAlgorithm::kMpiOnly, ScfAlgorithm::kPrivateFock,
        ScfAlgorithm::kSharedFock}) {
    ParallelScfConfig cfg;
    cfg.algorithm = alg;
    cfg.nranks = 2;
    cfg.nthreads = 2;
    cfg.basis = "6-31G(d)";
    ParallelScfResult res = run_parallel_scf(mol, cfg);
    EXPECT_TRUE(res.scf.converged) << algorithm_name(alg);
    EXPECT_NEAR(res.scf.energy, ref.energy, 1e-8) << algorithm_name(alg);
  }
}

TEST(ParallelScf, RejectsInvalidConfigs) {
  ParallelScfConfig cfg;
  cfg.nranks = 0;
  EXPECT_THROW(run_parallel_scf(chem::builders::water(), cfg), mc::Error);
  cfg.nranks = 1;
  cfg.nthreads = 0;
  EXPECT_THROW(run_parallel_scf(chem::builders::water(), cfg), mc::Error);
  cfg.nthreads = 1;
  EXPECT_THROW(run_parallel_scf(chem::builders::heh_plus(), cfg),
               mc::Error);  // odd electron count
}

}  // namespace
}  // namespace mc::core
