// Unit tests for the fuzz subsystem (DESIGN.md section 14): generator
// determinism, the mixed-basis builder, the ULP separation check's power
// to catch injected protocol bugs, the empty-screening / empty-primitive
// regression guards the generator's corners demand, the dist-fock LRU
// cache under adversarial budgets, and window key reuse across
// consecutive SPMD fuzz jobs.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fock_fixture.hpp"
#include "fuzz/differential_harness.hpp"
#include "fuzz/fuzz_rng.hpp"
#include "fuzz/molecule_generator.hpp"
#include "ints/eri_batch.hpp"

namespace mc {
namespace {

TEST(FuzzGenerator, SameSeedReplaysTheIdenticalSample) {
  const fuzz::MoleculeGenerator gen;
  for (std::uint64_t s : {0x1ULL, 0xDEADBEEFULL, 0x123456789ABCDEF0ULL}) {
    const fuzz::FuzzSample a = gen.from_seed(s);
    const fuzz::FuzzSample b = gen.from_seed(s);
    ASSERT_EQ(a.template_name, b.template_name);
    ASSERT_EQ(a.charge, b.charge);
    ASSERT_EQ(a.nocc, b.nocc);
    ASSERT_EQ(a.basis_per_atom, b.basis_per_atom);
    ASSERT_EQ(a.schwarz_threshold, b.schwarz_threshold);  // bitwise
    ASSERT_EQ(a.mol.natoms(), b.mol.natoms());
    for (std::size_t at = 0; at < a.mol.natoms(); ++at) {
      ASSERT_EQ(a.mol.atom(at).z, b.mol.atom(at).z);
      for (int c = 0; c < 3; ++c) {
        ASSERT_EQ(a.mol.atom(at).xyz[c], b.mol.atom(at).xyz[c]);  // bitwise
      }
    }
  }
}

TEST(FuzzGenerator, SampleSpaceRoamsTemplatesChargesAndBases) {
  const fuzz::MoleculeGenerator gen;
  std::set<std::string> templates;
  bool saw_mixed = false;
  bool saw_charge = false;
  bool saw_degenerate = false;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const fuzz::FuzzSample s = gen.sample(/*master_seed=*/42, i);
    templates.insert(s.template_name);
    if (s.basis_label().rfind("mixed[", 0) == 0) saw_mixed = true;
    if (s.charge != 0) saw_charge = true;
    if (s.degenerate) saw_degenerate = true;
    // Every sample must satisfy its own validity contract.
    EXPECT_GE(s.nocc, 1) << s.describe();
    EXPECT_EQ(s.mol.nelectrons(s.charge) % 2, 0) << s.describe();
    EXPECT_EQ(s.basis_per_atom.size(), s.mol.natoms()) << s.describe();
  }
  EXPECT_GE(templates.size(), 4u);
  EXPECT_TRUE(saw_mixed);
  EXPECT_TRUE(saw_charge);
  EXPECT_TRUE(saw_degenerate);
}

TEST(BuildMixed, UniformAssignmentIsIdenticalToBuild) {
  const chem::Molecule mol = chem::builders::water();
  const basis::BasisSet plain = basis::BasisSet::build(mol, "6-31G");
  const basis::BasisSet mixed = basis::BasisSet::build_mixed(
      mol, std::vector<std::string>(mol.natoms(), "6-31G"));
  ASSERT_EQ(plain.nshells(), mixed.nshells());
  ASSERT_EQ(plain.nbf(), mixed.nbf());
  ASSERT_EQ(plain.name(), mixed.name());
  ASSERT_EQ(plain.nshells_gamess(), mixed.nshells_gamess());
  for (std::size_t s = 0; s < plain.nshells(); ++s) {
    EXPECT_EQ(plain.shell(s).l, mixed.shell(s).l);
    EXPECT_EQ(plain.shell(s).first_bf, mixed.shell(s).first_bf);
    EXPECT_EQ(plain.shell(s).atom, mixed.shell(s).atom);
    ASSERT_EQ(plain.shell(s).exps, mixed.shell(s).exps);
    ASSERT_EQ(plain.shell(s).coefs, mixed.shell(s).coefs);
  }
}

TEST(BuildMixed, PerAtomAssignmentFollowsTheAtomList) {
  const chem::Molecule mol = chem::builders::water();
  const std::vector<std::string> names = {"6-31G", "STO-3G", "6-31G(d)"};
  const basis::BasisSet mixed = basis::BasisSet::build_mixed(mol, names);
  EXPECT_EQ(mixed.name(), "mixed[6-31G,6-31G(d),STO-3G]");
  // The mixed set is the concatenation of each atom's own basis: function
  // counts must add up atom by atom.
  std::size_t expected_nbf = 0;
  for (std::size_t a = 0; a < mol.natoms(); ++a) {
    chem::Molecule one;
    const chem::Atom& atom = mol.atom(a);
    one.add_atom(atom.z, atom.xyz[0], atom.xyz[1], atom.xyz[2]);
    expected_nbf += basis::BasisSet::build(one, names[a]).nbf();
  }
  EXPECT_EQ(mixed.nbf(), expected_nbf);
  for (const basis::Shell& sh : mixed.shells()) {
    ASSERT_GE(sh.atom, 0);
    ASSERT_LT(static_cast<std::size_t>(sh.atom), mol.natoms());
  }
}

TEST(FuzzHarness, QuartetScalePerturbationIsCaught) {
  // The separation argument in action: a perturbation the size of one
  // screened-out quartet contribution (1e-9, an order above the loosest
  // generated threshold) must blow the ULP budget, while the unperturbed
  // matrix passes bit-identically.
  core::FockFixture fx(chem::builders::water(), "STO-3G");
  core::UlpComparison same =
      core::compare_bit_comparable(fx.g_ref, fx.g_ref, core::kMaxSkeletonUlps);
  EXPECT_TRUE(same.ok);
  EXPECT_EQ(same.worst_ulps, 0u);

  la::Matrix bad = fx.g_ref;
  bad.data()[3] += 1e-9;
  core::UlpComparison cmp =
      core::compare_bit_comparable(bad, fx.g_ref, core::kMaxSkeletonUlps);
  EXPECT_FALSE(cmp.ok);
  EXPECT_FALSE(core::describe_ulp_failure(cmp, "injected").empty());
}

TEST(FuzzHarness, SmokeSamplesPassTheFullSweep) {
  // A miniature of the fuzz_smoke ctest lane, inside the gtest matrix so
  // sanitizer builds sweep the harness plumbing too.
  const fuzz::MoleculeGenerator gen;
  fuzz::HarnessOptions opt;
  opt.max_ranks = 3;
  opt.configs_per_algorithm = 1;
  const fuzz::DifferentialHarness harness(opt);
  for (std::uint64_t i = 0; i < 2; ++i) {
    const fuzz::SampleReport rep = harness.run(gen.sample(7, i));
    EXPECT_TRUE(rep.ok()) << rep.sample.describe() << "\n"
                          << (rep.failures.empty() ? ""
                                                   : rep.failures.front());
    EXPECT_GE(rep.engines_run, 12u);
    EXPECT_FALSE(rep.json().empty());
  }
}

TEST(FuzzRegression, ZeroSurvivingPairsBuildsAZeroFock) {
  // A tight threshold (or a tiny delta density) can kill *every* shell
  // pair; all builders must return a zero matrix without touching the
  // quartet pipeline. Regression guard for the generated sparse corner.
  const chem::Molecule mol = chem::builders::water();
  const basis::BasisSet bs = basis::BasisSet::build(mol, "STO-3G");
  const ints::EriEngine eri(bs);
  const ints::Screening screen(eri, /*threshold=*/1e3);
  ASSERT_TRUE(screen.sorted_pairs().empty());
  ASSERT_EQ(screen.count_surviving_quartets(), 0u);
  ASSERT_TRUE(screen.sorted_bra_shells().empty());

  la::Matrix d(bs.nbf(), bs.nbf());
  d.fill(0.5);
  for (std::size_t cap : {std::size_t{0}, std::size_t{8}}) {
    scf::SerialFockBuilder serial(eri, screen, cap);
    la::Matrix g(bs.nbf(), bs.nbf());
    serial.build(d, g);
    EXPECT_EQ(serial.last_quartets_computed(), 0u);
    for (std::size_t i = 0; i < g.size(); ++i) ASSERT_EQ(g.data()[i], 0.0);
  }

  core::FockFixture fx(mol, "STO-3G");  // reuse the distributed helpers
  const ints::Screening empty_screen(fx.eri, 1e3);
  for (int alg = 0; alg < 4; ++alg) {
    la::Matrix g = core::build_distributed(fx, 2, [&](par::Ddi& ddi)
                                               -> std::unique_ptr<
                                                   scf::FockBuilder> {
      switch (alg) {
        case 0:
          return std::make_unique<core::FockBuilderMpi>(fx.eri, empty_screen,
                                                        ddi);
        case 1:
          return std::make_unique<core::FockBuilderPrivate>(
              fx.eri, empty_screen, ddi);
        case 2:
          return std::make_unique<core::FockBuilderShared>(
              fx.eri, empty_screen, ddi);
        default:
          return std::make_unique<core::FockBuilderDist>(fx.eri,
                                                         empty_screen, ddi);
      }
    });
    for (std::size_t i = 0; i < g.size(); ++i) {
      ASSERT_EQ(g.data()[i], 0.0) << "algorithm " << alg;
    }
  }
}

TEST(FuzzRegression, AllPrimitivesPrescreenedStillYieldsZeros) {
  // Two hydrogens 60 bohr apart: every primitive product of the cross
  // shell pair underflows the pair cutoff, so its quartet reaches the
  // kernel with an empty survivor set. The batched path must return exact
  // zeros (the kernel zero-fills its accumulator), not stale or
  // uninitialized values.
  chem::Molecule mol;
  mol.add_atom(1, 0.0, 0.0, 0.0);
  mol.add_atom(1, 60.0, 0.0, 0.0);
  const basis::BasisSet bs = basis::BasisSet::build(mol, "STO-3G");
  const ints::EriEngine eri(bs);
  ASSERT_EQ(bs.nshells(), 2u);

  ints::QuartetBatch batch(eri, 4);
  batch.add(0, 1, 0, 1);  // all-cross quartet: empty primitive set
  batch.add(0, 0, 0, 1);  // mixed: live bra, dead ket
  batch.add(0, 0, 0, 0);  // control: fully alive
  batch.evaluate();
  for (std::size_t q = 0; q < 2; ++q) {
    const auto& entry = batch.quartets()[q];
    const double* res = batch.result(q);
    for (std::size_t x = 0; x < entry.size; ++x) {
      ASSERT_EQ(res[x], 0.0) << "quartet " << q << " element " << x;
    }
  }
  EXPECT_GT(std::abs(batch.result(2)[0]), 0.1);  // (ss|ss) on-site
}

TEST(DistFockCache, CapacityOneWithZeroHeadroomPinningStaysExact) {
  // Adversarial LRU budget: one resident tile, but every batch scatter
  // pins up to three tiles at once, so the cache *must* run over budget
  // while pins are live (evict_lru refuses to evict pinned tiles) and
  // shrink back after. Correctness must be unaffected: same ULP contract
  // as the roomy-cache runs.
  core::FockFixture fx(chem::builders::water(), "6-31G");
  for (std::size_t cache : {std::size_t{1}, std::size_t{2}}) {
    core::DistFockOptions opt;
    opt.tile_rows = 1;  // shell-boundary tiles: maximal tile count
    opt.max_cached_tiles = cache;
    opt.max_open_f_tiles = 1;
    opt.prefetch_depth = 2;
    la::Matrix g = core::build_distributed(fx, 3, [&](par::Ddi& ddi) {
      return std::make_unique<core::FockBuilderDist>(fx.eri, fx.screen, ddi,
                                                     opt);
    });
    core::expect_bit_comparable(
        g, fx.g_ref, core::kMaxSkeletonUlps,
        "dist-fock full, cache=" + std::to_string(cache));

    la::Matrix gd = core::build_distributed_delta(fx, 3, [&](par::Ddi& ddi) {
      return std::make_unique<core::FockBuilderDist>(fx.eri, fx.screen, ddi,
                                                     opt);
    });
    core::expect_bit_comparable(
        gd, fx.g_ref_delta, core::kMaxSkeletonUlps,
        "dist-fock delta, cache=" + std::to_string(cache));
  }
}

TEST(WindowReuse, SameKeyAcrossConsecutiveSpmdJobsGetsFreshStorage) {
  // Consecutive fuzz/soak jobs run run_spmd back to back and the dist
  // builder keys its windows by fixed blackboard strings ("fock-dist:D"),
  // so stale segments surviving a job boundary would corrupt the next
  // job. Two jobs of *different* rank counts reuse one key: the second
  // must see fresh zeroed storage sized for its own layout.
  const std::string key = "fuzz:job-window";
  par::run_spmd(2, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    par::Window w = ddi.create(key, {3, 3});
    const double v = 41.0 + comm.rank();
    ddi.put(w, static_cast<std::size_t>(comm.rank()) * 3, &v, 1);
    ddi.fence(w);
    ddi.destroy(w);
  });
  par::run_spmd(3, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    par::Window w = ddi.create(key, {2, 2, 2});
    double out[6];
    ddi.get(w, 0, out, 6);
    for (double x : out) EXPECT_DOUBLE_EQ(x, 0.0);  // fresh, zeroed
    ddi.fence(w);
    // Re-create after destroy *within* the same job, too (a fuzz job can
    // rebuild its screening mid-run): also fresh.
    ddi.destroy(w);
    par::Window w2 = ddi.create(key, {2, 2, 2});
    const double v = 7.0;
    ddi.acc(w2, static_cast<std::size_t>(comm.rank()) * 2, &v, 1);
    ddi.fence(w2);
    double got[6];
    ddi.get(w2, 0, got, 6);
    EXPECT_DOUBLE_EQ(got[0], 7.0);
    EXPECT_DOUBLE_EQ(got[2], 7.0);
    EXPECT_DOUBLE_EQ(got[4], 7.0);
    ddi.fence(w2);
    ddi.destroy(w2);
  });
}

}  // namespace
}  // namespace mc
