// SCF validation: reference energies from the literature, internal
// invariants (idempotency, rotational invariance), DIIS behaviour, and the
// equivalence of the serial skeleton builder with the brute-force builder.

#include <gtest/gtest.h>

#include <cmath>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "common/error.hpp"
#include "ints/eri.hpp"
#include "ints/one_electron.hpp"
#include "ints/screening.hpp"
#include "la/blas_lite.hpp"
#include "la/orthogonalizer.hpp"
#include "scf/diis.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"

namespace mc::scf {
namespace {

ScfResult run_serial(const chem::Molecule& mol, const std::string& basis,
                     ScfOptions opt = {}) {
  auto bs = basis::BasisSet::build(mol, basis);
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-12);
  SerialFockBuilder builder(eri, screen);
  return run_scf(mol, bs, builder, opt);
}

// The standard tutorial geometry (T. D. Crawford's programming projects),
// coordinates in Bohr; STO-3G RHF total energy -74.942079928192 Eh.
chem::Molecule water_crawford() {
  chem::Molecule m;
  m.add_atom(8, 0.000000000000, -0.143225816552, 0.000000000000);
  m.add_atom(1, 1.638036840407, 1.136548822547, 0.000000000000);
  m.add_atom(1, -1.638036840407, 1.136548822547, 0.000000000000);
  return m;
}

TEST(Scf, H2Sto3gMatchesSzaboOstlund) {
  // Szabo & Ostlund, Table 3.5: H2 at R = 1.4 a0, STO-3G: E = -1.1167 Eh.
  ScfResult r = run_serial(chem::builders::h2(1.4), "STO-3G");
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, -1.1167, 2e-4);
  // Occupied orbital energy about -0.578 Eh.
  EXPECT_NEAR(r.orbital_energies[0], -0.578, 5e-3);
}

TEST(Scf, HeHPlusSto3gMatchesSzaboOstlund) {
  // Szabo & Ostlund: HeH+ at R = 1.4632 a0, STO-3G: E_total ~ -2.841 Eh
  // for scaled exponents; with standard STO-3G tables the value is near
  // -2.84 to -2.86. Assert the robust range and convergence behaviour.
  ScfOptions opt;
  opt.charge = +1;
  ScfResult r = run_serial(chem::builders::heh_plus(), "STO-3G", opt);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, -2.85, 0.03);
}

TEST(Scf, WaterSto3gMatchesCrawfordReference) {
  ScfResult r = run_serial(water_crawford(), "STO-3G");
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.energy, -74.942079928192, 1e-6);
  // Nuclear repulsion for this geometry is 8.002367061811 Eh.
  EXPECT_NEAR(r.nuclear_repulsion, 8.002367061811, 1e-9);
}

TEST(Scf, MethaneSto3gInKnownRange) {
  ScfResult r = run_serial(chem::builders::methane(), "STO-3G");
  EXPECT_TRUE(r.converged);
  // Literature RHF/STO-3G CH4 total energy is about -39.727 Eh.
  EXPECT_NEAR(r.energy, -39.727, 0.01);
}

TEST(Scf, Water631GIsBelowSto3g) {
  // Variational principle across basis sets (6-31G strictly larger
  // variational space per atom type here).
  ScfResult small = run_serial(chem::builders::water(), "STO-3G");
  ScfResult big = run_serial(chem::builders::water(), "6-31G");
  ScfResult pol = run_serial(chem::builders::water(), "6-31G(d)");
  EXPECT_TRUE(big.converged);
  EXPECT_TRUE(pol.converged);
  EXPECT_LT(big.energy, small.energy);
  EXPECT_LT(pol.energy, big.energy);  // d functions lower the energy further
  // 6-31G(d) water RHF energy is around -76.01 Eh in the literature.
  EXPECT_NEAR(pol.energy, -76.01, 0.02);
  // p functions on hydrogen lower it a little more (variational chain).
  ScfResult dp = run_serial(chem::builders::water(), "6-31G(d,p)");
  EXPECT_TRUE(dp.converged);
  EXPECT_LT(dp.energy, pol.energy);
  EXPECT_NEAR(dp.energy, -76.02, 0.02);
}

TEST(Scf, EnergyInvariantUnderRotationAndTranslation) {
  // Strong whole-stack test: exercises p and d integrals under rotation.
  for (const char* basis : {"STO-3G", "6-31G(d)"}) {
    ScfResult a = run_serial(chem::builders::water(), basis);
    ScfResult b = run_serial(
        chem::builders::water().rotated(0.63, 0.41).translated(1.0, 2.0, -0.5),
        basis);
    EXPECT_TRUE(a.converged);
    EXPECT_TRUE(b.converged);
    EXPECT_NEAR(a.energy, b.energy, 1e-8) << basis;
  }
}

TEST(Scf, DensityIdempotentInOverlapMetric) {
  // Converged closed-shell density satisfies D S D = 2 D.
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ScfResult r = run_serial(mol, "STO-3G");
  la::Matrix s = ints::overlap_matrix(bs);
  la::Matrix dsd = la::gemm(r.density, la::gemm(s, r.density));
  la::Matrix two_d = r.density;
  two_d *= 2.0;
  EXPECT_NEAR(dsd.max_abs_diff(two_d), 0.0, 1e-6);
}

TEST(Scf, TraceDSEqualsElectronCount) {
  auto mol = chem::builders::methane();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ScfResult r = run_serial(mol, "STO-3G");
  la::Matrix ds = la::gemm(r.density, ints::overlap_matrix(bs));
  EXPECT_NEAR(ds.trace(), 10.0, 1e-8);
}

TEST(Scf, KoopmansHomoIsNegativeForNeutralMolecules) {
  ScfResult r = run_serial(chem::builders::water(), "STO-3G");
  const int nocc = 5;
  EXPECT_LT(r.orbital_energies[nocc - 1], 0.0);  // HOMO bound
  EXPECT_GT(r.orbital_energies[nocc], r.orbital_energies[nocc - 1]);
}

TEST(Scf, OpenShellElectronCountRejected) {
  chem::Molecule li;
  li.add_atom(3, 0.0, 0.0, 0.0);
  EXPECT_THROW(run_serial(li, "STO-3G"), mc::Error);
}

TEST(Scf, DiisConvergesFasterThanPlainIteration) {
  auto mol = water_crawford();
  ScfOptions diis_opt;
  ScfOptions plain_opt;
  plain_opt.use_diis = false;
  plain_opt.max_iterations = 200;
  ScfResult with_diis = run_serial(mol, "STO-3G", diis_opt);
  ScfResult without = run_serial(mol, "STO-3G", plain_opt);
  EXPECT_TRUE(with_diis.converged);
  EXPECT_TRUE(without.converged);
  EXPECT_LE(with_diis.iterations, without.iterations);
  EXPECT_NEAR(with_diis.energy, without.energy, 1e-7);
}

TEST(Scf, HistoryRecordsMonotoneConvergence) {
  ScfResult r = run_serial(chem::builders::water(), "STO-3G");
  ASSERT_GE(r.history.size(), 3u);
  // Density RMS at the last iteration is below tolerance.
  EXPECT_LT(r.history.back().density_rms, 1e-8);
  // Fock build time was measured.
  EXPECT_GT(r.fock_build_seconds, 0.0);
}

TEST(Scf, CallbackSeesEveryIteration) {
  int count = 0;
  ScfCallbacks cb;
  cb.on_iteration = [&](const ScfIterationInfo& info) {
    EXPECT_EQ(info.iteration, count + 1);
    ++count;
  };
  auto mol = chem::builders::h2();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-12);
  SerialFockBuilder builder(eri, screen);
  ScfResult r = run_scf(mol, bs, builder, {}, cb);
  EXPECT_EQ(count, r.iterations);
}

TEST(Scf, DampingConvergesToSameEnergy) {
  ScfOptions plain;
  plain.use_diis = false;
  plain.max_iterations = 300;
  ScfOptions damped = plain;
  damped.damping = 0.3;
  ScfResult a = run_serial(water_crawford(), "STO-3G", plain);
  ScfResult b = run_serial(water_crawford(), "STO-3G", damped);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  EXPECT_NEAR(a.energy, b.energy, 1e-7);
}

TEST(Scf, LevelShiftConvergesToSameEnergy) {
  ScfOptions opt;
  opt.level_shift = 0.5;
  ScfResult shifted = run_serial(water_crawford(), "STO-3G", opt);
  ScfResult plain = run_serial(water_crawford(), "STO-3G");
  ASSERT_TRUE(shifted.converged);
  EXPECT_NEAR(shifted.energy, plain.energy, 1e-7);
}

TEST(Scf, BadDampingRejected) {
  ScfOptions opt;
  opt.use_diis = false;
  opt.damping = 1.5;
  EXPECT_THROW(run_serial(chem::builders::h2(), "STO-3G", opt), mc::Error);
}

// ---- Builder equivalence ----

class BuilderEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(BuilderEquivalence, SkeletonMatchesBruteForce) {
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, GetParam());
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-14);

  // A plausible (non-converged) symmetric density to contract with.
  la::Matrix h = ints::core_hamiltonian(bs, mol);
  la::Matrix s = ints::overlap_matrix(bs);
  la::Matrix x = la::canonical_orthogonalizer(s);
  la::Matrix d = core_guess_density(h, x, mol.nelectrons() / 2);

  la::Matrix g1(bs.nbf(), bs.nbf());
  SerialFockBuilder serial(eri, screen);
  serial.build(d, g1);
  g1.symmetrize();

  la::Matrix g2(bs.nbf(), bs.nbf());
  BruteForceFockBuilder brute(eri);
  brute.build(d, g2);
  g2.symmetrize();  // brute result is already symmetric; harmless

  EXPECT_NEAR(g1.max_abs_diff(g2), 0.0, 1e-9) << GetParam();
  EXPECT_GT(serial.last_quartets_computed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Bases, BuilderEquivalence,
                         ::testing::Values("STO-3G", "6-31G", "6-31G(d)"));

TEST(Scf, ScreeningDoesNotChangeEnergy) {
  auto mol = chem::builders::benzene();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ints::EriEngine eri(bs);
  ints::Screening tight(eri, 1e-14);
  ints::Screening normal(eri, 1e-10);
  SerialFockBuilder b1(eri, tight);
  SerialFockBuilder b2(eri, normal);
  ScfResult r1 = run_scf(mol, bs, b1);
  ScfResult r2 = run_scf(mol, bs, b2);
  EXPECT_TRUE(r1.converged);
  EXPECT_TRUE(r2.converged);
  EXPECT_NEAR(r1.energy, r2.energy, 1e-7);
  // And the looser threshold actually skipped quartets.
  la::Matrix g(bs.nbf(), bs.nbf());
  b1.build(r1.density, g);
  const std::size_t tight_quartets = b1.last_quartets_computed();
  g.set_zero();
  b2.build(r1.density, g);
  EXPECT_LT(b2.last_quartets_computed(), tight_quartets);
}

// ---- Helpers: pair index round trip ----

TEST(FockCommon, PairIndexRoundTrip) {
  std::size_t pair = 0;
  for (std::size_t i = 0; i < 80; ++i) {
    for (std::size_t j = 0; j <= i; ++j, ++pair) {
      std::size_t ii, jj;
      unpack_pair(pair, ii, jj);
      EXPECT_EQ(ii, i);
      EXPECT_EQ(jj, j);
    }
  }
}

TEST(FockCommon, KlCountMatchesEnumeration) {
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      std::size_t n = 0;
      for_each_kl(i, j, [&](std::size_t, std::size_t) { ++n; });
      EXPECT_EQ(n, kl_count(i, j));
    }
  }
}

TEST(FockCommon, QuartetDegeneracyValues) {
  EXPECT_DOUBLE_EQ(quartet_degeneracy(0, 0, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(quartet_degeneracy(1, 0, 0, 0), 4.0);
  EXPECT_DOUBLE_EQ(quartet_degeneracy(1, 0, 1, 0), 4.0);
  EXPECT_DOUBLE_EQ(quartet_degeneracy(2, 1, 1, 0), 8.0);
  EXPECT_DOUBLE_EQ(quartet_degeneracy(1, 1, 0, 0), 2.0);
}

TEST(Diis, ExtrapolationReducesToSingleVector) {
  Diis diis(4);
  la::Matrix f{{1.0, 0.0}, {0.0, 2.0}};
  la::Matrix e{{0.1, 0.0}, {0.0, 0.1}};
  diis.push(f, e);
  EXPECT_NEAR(diis.extrapolate().max_abs_diff(f), 0.0, 1e-15);
}

TEST(Diis, HistoryCapRespected) {
  Diis diis(3);
  for (int i = 0; i < 10; ++i) {
    la::Matrix f{{static_cast<double>(i)}};
    la::Matrix e{{1.0 / (1 + i)}};
    diis.push(f, e);
  }
  EXPECT_EQ(diis.size(), 3u);
  diis.clear();
  EXPECT_EQ(diis.size(), 0u);
  EXPECT_THROW(diis.extrapolate(), mc::Error);
}

TEST(Diis, ExactCombinationRecovered) {
  // Two error vectors that cancel: e1 = -e2 => c = (0.5, 0.5), and the
  // extrapolated Fock is the average.
  Diis diis(4);
  la::Matrix f1{{2.0}};
  la::Matrix f2{{4.0}};
  la::Matrix e1{{0.3}};
  la::Matrix e2{{-0.3}};
  diis.push(f1, e1);
  diis.push(f2, e2);
  EXPECT_NEAR(diis.extrapolate()(0, 0), 3.0, 1e-10);
}

}  // namespace
}  // namespace mc::scf
