// Tests for the MC_CHECK shadow-ownership verifier (DESIGN.md section
// 11.3) and the typed access-annotation layer (11.2).
//
// This translation unit is compiled with MC_ACCESS_CHECK=1 regardless of
// the library's build mode (see tests/CMakeLists.txt), so the *checked*
// instantiations of the annotation types are always exercised: ledger
// unit semantics, the BuildChecker runtime gating, and a deliberately
// broken toy protocol that must be caught at its first bad access. The
// annotation types are templates on `bool Checked`, so this TU's checked
// instantiations are distinct types from the library's -- no ODR hazard.
//
// Assertions that need the *builders'* hooks live (benzene zero-violations
// through the real shared-Fock build) skip unless the library itself was
// configured with -DMC_CHECK=ON; check::core_hooks_compiled() reports
// which world we are in.

#include <gtest/gtest.h>
#include <omp.h>

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/access.hpp"
#include "common/access_check.hpp"
#include "common/error.hpp"
#include "fock_fixture.hpp"

namespace mc::core {
namespace {

// ---- Zero-overhead proof for the unchecked instantiations ----

TEST(AccessTypes, UncheckedInstantiationsAreBareViews) {
  static_assert(sizeof(acc::OwnedSlice<double, false>) ==
                    sizeof(double*) + sizeof(std::size_t),
                "unchecked OwnedSlice must be pointer + length");
  static_assert(sizeof(acc::ThreadPrivate<double, false>) ==
                    sizeof(double*) + sizeof(std::size_t),
                "unchecked ThreadPrivate must be pointer + length");
  static_assert(sizeof(acc::TeamBuffer<double, false>) ==
                    sizeof(double*) + 2 * sizeof(std::size_t),
                "unchecked TeamBuffer must be pointer + lanes + stride");
  static_assert(sizeof(acc::SharedReadOnly<long, false>) == sizeof(long),
                "unchecked SharedReadOnly must be the bare value");
  static_assert(sizeof(acc::BuildChecker<false>) == 1, "must be empty");
  static_assert(sizeof(acc::ThreadCtx<false>) == 1, "must be empty");
  SUCCEED();
}

// ---- ShadowLedger unit semantics (driven directly, single-threaded;
// the epoch algebra does not care which OS thread calls the handles) ----

TEST(ShadowLedger, FirstConflictingWriteIsCaughtExactly) {
  check::Registry::instance().reset();
  check::ShadowLedger ledger(/*rank=*/3, /*nthreads=*/2);
  const int f = ledger.add_region("F", 64);
  auto t0 = ledger.thread(0);
  auto t1 = ledger.thread(1);

  t0.set_task(11);
  t0.on_write(f, 7);
  EXPECT_EQ(ledger.violations(), 0u) << "a single writer is not a conflict";

  t1.set_task(12);
  t1.on_write(f, 7);  // same element, same epoch, different thread
  ASSERT_EQ(ledger.violations(), 1u);

  const check::Violation v = ledger.first_violation();
  EXPECT_EQ(v.rank, 3);
  EXPECT_EQ(v.region, "F");
  EXPECT_EQ(v.index, 7u);
  EXPECT_EQ(v.tid_a, 0);
  EXPECT_EQ(v.tid_b, 1);
  EXPECT_EQ(v.task_a, 11);
  EXPECT_EQ(v.task_b, 12);
  EXPECT_FALSE(v.read_write);
  EXPECT_EQ(check::Registry::instance().count(), 1u);
  check::Registry::instance().reset();
}

TEST(ShadowLedger, BarrierSeparatedWritesAreOrdered) {
  check::Registry::instance().reset();
  check::ShadowLedger ledger(0, 2);
  const int f = ledger.add_region("F", 8);
  auto t0 = ledger.thread(0);
  auto t1 = ledger.thread(1);

  t0.on_write(f, 3);
  // Both threads pass the team barrier: happens-before edge.
  t0.barrier();
  t1.barrier();
  t1.on_write(f, 3);
  EXPECT_EQ(ledger.violations(), 0u);
  check::Registry::instance().reset();
}

TEST(ShadowLedger, SameEpochWriteThenReadConflicts) {
  check::ShadowLedger ledger(0, 2);
  const int f = ledger.add_region("FI", 8);
  auto t0 = ledger.thread(0);
  auto t1 = ledger.thread(1);
  t0.on_write(f, 5);
  t1.on_read(f, 5);
  ASSERT_EQ(ledger.violations(), 1u);
  EXPECT_TRUE(ledger.first_violation().read_write);
  check::Registry::instance().reset();
}

TEST(ShadowLedger, SameEpochReadThenWriteConflicts) {
  check::ShadowLedger ledger(0, 2);
  const int f = ledger.add_region("FI", 8);
  auto t0 = ledger.thread(0);
  auto t1 = ledger.thread(1);
  t0.on_read(f, 5);
  t1.on_write(f, 5);
  ASSERT_EQ(ledger.violations(), 1u);
  EXPECT_TRUE(ledger.first_violation().read_write);
  check::Registry::instance().reset();
}

TEST(ShadowLedger, ConcurrentReadsAreAllowed) {
  check::ShadowLedger ledger(0, 4);
  const int f = ledger.add_region("D", 8);
  for (int t = 0; t < 4; ++t) ledger.thread(t).on_read(f, 2);
  EXPECT_EQ(ledger.violations(), 0u);
}

TEST(ShadowLedger, OneThreadMayRewriteFreely) {
  check::ShadowLedger ledger(0, 2);
  const int f = ledger.add_region("F", 8);
  auto t0 = ledger.thread(0);
  t0.on_write(f, 1);
  t0.on_write(f, 1);
  t0.on_read(f, 1);
  EXPECT_EQ(ledger.violations(), 0u);
}

TEST(ShadowLedger, DistinctElementsNeverConflict) {
  check::ShadowLedger ledger(0, 2);
  const int f = ledger.add_region("F", 8);
  auto t0 = ledger.thread(0);
  auto t1 = ledger.thread(1);
  t0.on_write(f, 0);
  t1.on_write(f, 1);
  EXPECT_EQ(ledger.violations(), 0u);
}

TEST(ShadowLedger, TaskSentinelRoundTripsAsMinusOne) {
  // No set_task call: the packed record's task sentinel must come back
  // as -1 in the diagnostic, not as the raw 2^30-1 bit pattern.
  check::ShadowLedger ledger(0, 2);
  const int f = ledger.add_region("F", 4);
  ledger.thread(0).on_write(f, 2);
  ledger.thread(1).on_write(f, 2);
  ASSERT_EQ(ledger.violations(), 1u);
  EXPECT_EQ(ledger.first_violation().task_a, -1);
  EXPECT_EQ(ledger.first_violation().task_b, -1);
  check::Registry::instance().reset();
}

TEST(ShadowLedger, OutOfRegionAccessTraps) {
  check::ShadowLedger ledger(0, 1);
  const int f = ledger.add_region("F", 4);
  auto t0 = ledger.thread(0);
  EXPECT_THROW(t0.on_write(f, 4), mc::Error);
}

// ---- Runtime gating ----

TEST(ScopedForce, OverridesNestAndRestore) {
  check::ScopedForce on(true);
  EXPECT_TRUE(check::enabled());
  {
    check::ScopedForce off(false);
    EXPECT_FALSE(check::enabled());
  }
  EXPECT_TRUE(check::enabled());
}

TEST(BuildChecker, RuntimeDisabledCheckerIsInert) {
  check::ScopedForce off(false);
  acc::BuildChecker<true> checker(0, 4);
  EXPECT_FALSE(checker.active());
  EXPECT_EQ(checker.region("F", 8), -1);
  EXPECT_FALSE(checker.thread(0).active());
  EXPECT_EQ(checker.violations(), 0u);
  checker.finalize();  // must not throw
}

TEST(BuildChecker, FinalizeThrowsOnViolation) {
  check::ScopedForce on(true);
  check::Registry::instance().reset();
  acc::BuildChecker<true> checker(0, 2);
  const int f = checker.region("F", 16);
  auto t0 = checker.thread(0);
  auto t1 = checker.thread(1);
  t0.on_write(f, 2);
  t1.on_write(f, 2);
  EXPECT_EQ(checker.violations(), 1u);
  EXPECT_THROW(checker.finalize(), mc::Error);

  // MC_CHECK_KEEP_GOING downgrades the throw so a harness can inspect the
  // Registry instead of unwinding.
  ::setenv("MC_CHECK_KEEP_GOING", "1", 1);
  EXPECT_NO_THROW(checker.finalize());
  ::unsetenv("MC_CHECK_KEEP_GOING");
  check::Registry::instance().reset();
}

// ---- Checked annotation types trap misuse ----

TEST(SharedReadOnly, TwoPhaseInitTrapsMisuse) {
  acc::SharedReadOnly<long, true> v;
  EXPECT_THROW((void)v.get(), mc::Error);
  v.init_once(42);
  EXPECT_EQ(v.get(), 42);
  EXPECT_THROW(v.init_once(43), mc::Error);
}

// ---- A toy Algorithm-3-style protocol through the checked types ----
//
// Each thread accumulates into its own team-buffer lane, then the lanes
// are flush-reduced into disjoint column chunks of the shared vector --
// the shape of the paper's Figure 1B. With `skip_barrier` the sync
// separating lane writes from the cross-lane flush reads is omitted: the
// classic protocol regression. The ledger must catch it on ANY schedule
// (each cross-lane read meets the lane owner's same-epoch write), which
// is the exactness claim TSan cannot make.

std::size_t run_toy_flush(int nt, bool skip_barrier) {
  check::ScopedForce force(true);
  const std::size_t stride = 16;
  std::vector<double> f(stride, 0.0);
  std::vector<double> lanes(static_cast<std::size_t>(nt) * stride, 0.0);
  acc::BuildChecker<true> checker(/*rank=*/0, nt);
  const int reg_f = checker.region("F", f.size());
  const int reg_fi = checker.region("FI", lanes.size());
#pragma omp parallel num_threads(nt)
  {
    const int tid = omp_get_thread_num();
    acc::ThreadCtx<true> th(checker, tid);
    const acc::TeamBuffer<double, true> buf(lanes.data(), nt, stride, &th,
                                            reg_fi);
    const acc::ThreadPrivate<double, true> mine = buf.lane(tid);
    const acc::OwnedSlice<double, true> facc(f.data(), f.size(), &th, reg_f,
                                             0);
    th.set_task(tid);
    for (std::size_t i = 0; i < stride; ++i) mine.add(i, 1.0);
    if (!skip_barrier) MC_PROTOCOL_BARRIER(f.data(), th);
#pragma omp for
    for (int c = 0; c < static_cast<int>(stride); ++c) {
      double sum = 0.0;
      for (int t = 0; t < nt; ++t) {
        sum += buf.read(t, static_cast<std::size_t>(c));
      }
      facc.add(static_cast<std::size_t>(c), sum);
    }
  }
  const std::size_t violations = checker.violations();
  if (violations != 0) {
    EXPECT_THROW(checker.finalize(), mc::Error);
  } else {
    checker.finalize();
  }
  return violations;
}

TEST(ToyProtocol, CorrectBarrierPlacementIsClean) {
  check::Registry::instance().reset();
  EXPECT_EQ(run_toy_flush(/*nt=*/4, /*skip_barrier=*/false), 0u);
  EXPECT_EQ(check::Registry::instance().count(), 0u);
}

TEST(ToyProtocol, MissingFlushBarrierCaughtDeterministically) {
  check::Registry::instance().reset();
  const std::size_t violations = run_toy_flush(/*nt=*/2, /*skip_barrier=*/true);
  // Deterministic lower bound: every cross-lane flush read meets the
  // owner's same-epoch lane write. nt=2 -> one foreign lane per column.
  EXPECT_GE(violations, 16u);
  bool found = false;
  for (const check::Violation& v : check::Registry::instance().violations()) {
    if (v.region == "FI" && v.read_write) found = true;
  }
  EXPECT_TRUE(found) << "expected a write/read conflict on the lane buffer";
  check::Registry::instance().reset();
}

// ---- The real builders under a live ledger ----

TEST(McCheckBuilders, SharedFockBenzeneHasZeroViolations) {
  if (!check::core_hooks_compiled()) {
    GTEST_SKIP() << "library built without -DMC_CHECK=ON";
  }
  check::ScopedForce on(true);
  check::Registry::instance().reset();
  FockFixture fx(chem::builders::benzene(), "STO-3G");
  la::Matrix g = build_distributed(fx, 2, [&](par::Ddi& ddi) {
    SharedFockOptions opt;
    opt.nthreads = 4;
    return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10);
  EXPECT_EQ(check::Registry::instance().count(), 0u)
      << check::Registry::instance().violations().front().to_string();
}

TEST(McCheckBuilders, PrivateFockBenzeneHasZeroViolations) {
  if (!check::core_hooks_compiled()) {
    GTEST_SKIP() << "library built without -DMC_CHECK=ON";
  }
  check::ScopedForce on(true);
  check::Registry::instance().reset();
  FockFixture fx(chem::builders::benzene(), "STO-3G");
  la::Matrix g = build_distributed(fx, 2, [&](par::Ddi& ddi) {
    PrivateFockOptions opt;
    opt.nthreads = 4;
    return std::make_unique<FockBuilderPrivate>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10);
  EXPECT_EQ(check::Registry::instance().count(), 0u)
      << check::Registry::instance().violations().front().to_string();
}

TEST(McCheckBuilders, DistFockBenzeneHasZeroViolations) {
  // The dist builder's F panels are written through OwnedSlice with one
  // ledger region per open panel; a panel flushed early and reopened gets
  // a fresh region, so a write routed to a stale (already-acc'd) panel
  // would trap as out-of-region. Budgets force that reopen path.
  if (!check::core_hooks_compiled()) {
    GTEST_SKIP() << "library built without -DMC_CHECK=ON";
  }
  check::ScopedForce on(true);
  check::Registry::instance().reset();
  FockFixture fx(chem::builders::benzene(), "STO-3G");
  la::Matrix g = build_distributed(fx, 2, [&](par::Ddi& ddi) {
    DistFockOptions opt;
    opt.tile_rows = 4;
    opt.max_cached_tiles = 3;
    opt.max_open_f_tiles = 3;
    return std::make_unique<FockBuilderDist>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_NEAR(g.max_abs_diff(fx.g_ref), 0.0, 1e-10);
  EXPECT_EQ(check::Registry::instance().count(), 0u)
      << check::Registry::instance().violations().front().to_string();
}

TEST(McCheckBuilders, DisablingTheLedgerIsZeroUlp) {
  // The ledger reads and records; it never touches the arithmetic. With a
  // deterministic configuration (one rank, static kl schedule -- the only
  // run-to-run nondeterminism in the shared build is dynamic work
  // assignment), the forced-on and forced-off builds must agree to the
  // bit. In normal builds both runs compile the hooks out and this is a
  // trivial determinism check; in -DMC_CHECK=ON builds it is the measured
  // 0-ULP claim of DESIGN.md 11.3.
  FockFixture fx(chem::builders::water(), "6-31G");
  const auto build_once = [&]() {
    return build_distributed(fx, 1, [&](par::Ddi& ddi) {
      SharedFockOptions opt;
      opt.nthreads = 4;
      opt.dynamic_schedule = false;
      return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi, opt);
    });
  };
  la::Matrix g_off;
  la::Matrix g_on;
  {
    check::ScopedForce off(false);
    g_off = build_once();
  }
  {
    check::ScopedForce on(true);
    check::Registry::instance().reset();
    g_on = build_once();
    EXPECT_EQ(check::Registry::instance().count(), 0u);
  }
  EXPECT_EQ(la::max_ulp_diff(g_on, g_off), 0u);
  EXPECT_NEAR(g_on.max_abs_diff(fx.g_ref), 0.0, 1e-10);
}

}  // namespace
}  // namespace mc::core
