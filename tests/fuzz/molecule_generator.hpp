#pragma once
// Seeded random sample space for the differential fuzz harness (DESIGN.md
// section 14): template molecules under geometry jitter, random net
// charge, per-atom mixed basis assignment, random Schwarz threshold, and
// deliberately degenerate / near-linearly-dependent geometries. Every
// sample is a pure function of its 64-bit seed, so a seed printed by a
// failing CI run rebuilds the identical molecule anywhere.

#include <cstdint>
#include <string>
#include <vector>

#include "chem/molecule.hpp"

namespace mc::fuzz {

/// One generated job: everything the harness needs to build the basis,
/// screening, and densities. `seed` replays it via
/// MoleculeGenerator::from_seed.
struct FuzzSample {
  std::uint64_t seed = 0;
  std::string template_name;
  chem::Molecule mol;
  std::vector<std::string> basis_per_atom;
  int charge = 0;
  int nocc = 0;  ///< occupied orbitals (validated: fits the orthogonalizer)
  double schwarz_threshold = 1e-10;
  /// True for samples built from a deliberately degenerate template
  /// (compressed bonds / near-linear chains): expect dropped columns in
  /// the canonical orthogonalizer.
  bool degenerate = false;

  /// Uniform basis name, or "mixed[...]" (matches BasisSet::name()).
  [[nodiscard]] std::string basis_label() const;
  /// One-line description for failure messages and the JSONL log.
  [[nodiscard]] std::string describe() const;
};

struct GeneratorOptions {
  /// Max per-coordinate jitter (Bohr) applied to every template geometry.
  double max_jitter_bohr = 0.25;
  /// Assign random bases per atom (about 2/3 of samples); false = uniform.
  bool mixed_basis = true;
  /// Draw a random valid net charge; false = smallest valid |charge|.
  bool random_charge = true;
  /// Include the compressed/near-linear templates.
  bool degenerate_geometries = true;
  /// Reject samples above this many basis functions (cost cap: the
  /// harness runs ~20 full Fock builds per sample).
  std::size_t max_nbf = 60;
};

class MoleculeGenerator {
 public:
  explicit MoleculeGenerator(GeneratorOptions opt = {}) : opt_(opt) {}

  /// The sample named by `sample_seed` -- deterministic, including the
  /// bounded rejection loop for geometries that fail validation (atom
  /// fusion, odd electron count with no valid charge, nbf cap). Throws
  /// mc::Error only if every attempt is rejected, which a correct
  /// template set cannot produce.
  [[nodiscard]] FuzzSample from_seed(std::uint64_t sample_seed) const;

  /// Sample `index` of the run named by `master_seed`:
  /// from_seed(derive_seed(master_seed, index)).
  [[nodiscard]] FuzzSample sample(std::uint64_t master_seed,
                                  std::uint64_t index) const;

 private:
  GeneratorOptions opt_;
};

}  // namespace mc::fuzz
