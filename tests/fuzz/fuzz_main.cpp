// Differential fuzz driver (DESIGN.md section 14).
//
//   fuzz_differential [--samples N] [--seed S] [--replay SAMPLE_SEED]
//                     [--replay-env] [--jsonl PATH] [--max-ranks R]
//
// Default: N samples derived from the master seed (MC_FUZZ_SEED env or
// --seed; both accept 0x-hex), each run through the full cross-builder
// differential sweep. Every failure prints the sample's own seed and the
// one-line replay command, so a red CI run is a deterministic unit test:
//
//   MC_FUZZ_SEED=0x0123456789abcdef ctest --test-dir build -R fuzz_replay
//
// --replay runs exactly one sample from its printed seed; --replay-env
// does the same from MC_FUZZ_SEED and exits 77 ("skip" to ctest) when the
// variable is unset, which is how the fuzz_replay ctest entry stays green
// until someone hands it a seed to reproduce.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "fuzz/differential_harness.hpp"
#include "fuzz/fuzz_rng.hpp"
#include "fuzz/molecule_generator.hpp"

namespace {

constexpr int kSkipExitCode = 77;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--samples N] [--seed S] [--replay SAMPLE_SEED]\n"
               "          [--replay-env] [--jsonl PATH] [--max-ranks R]\n",
               argv0);
  return 2;
}

struct Args {
  std::uint64_t master_seed = 0x4D43485546ULL;  // default fixed seed
  std::uint64_t replay_seed = 0;
  bool replay = false;
  bool replay_env = false;
  long samples = 20;
  int max_ranks = 4;
  std::string jsonl_path;
};

void report_failure(const mc::fuzz::SampleReport& rep) {
  std::fprintf(stderr, "FAIL %s\n", rep.sample.describe().c_str());
  for (const std::string& f : rep.failures) {
    std::fprintf(stderr, "  %s\n", f.c_str());
  }
  std::fprintf(stderr,
               "  replay: MC_FUZZ_SEED=%s ctest --test-dir build -R "
               "fuzz_replay\n",
               mc::fuzz::format_seed(rep.sample.seed).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (const char* env = std::getenv("MC_FUZZ_SEED")) {
    if (!mc::fuzz::parse_seed(env, args.master_seed)) {
      std::fprintf(stderr, "bad MC_FUZZ_SEED '%s'\n", env);
      return 2;
    }
  }
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    auto next = [&]() -> const char* {
      return (a + 1 < argc) ? argv[++a] : nullptr;
    };
    if (std::strcmp(arg, "--samples") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      args.samples = std::strtol(v, nullptr, 10);
      if (args.samples < 1) return usage(argv[0]);
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* v = next();
      if (v == nullptr || !mc::fuzz::parse_seed(v, args.master_seed)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--replay") == 0) {
      const char* v = next();
      if (v == nullptr || !mc::fuzz::parse_seed(v, args.replay_seed)) {
        return usage(argv[0]);
      }
      args.replay = true;
    } else if (std::strcmp(arg, "--replay-env") == 0) {
      args.replay_env = true;
    } else if (std::strcmp(arg, "--jsonl") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      args.jsonl_path = v;
    } else if (std::strcmp(arg, "--max-ranks") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      args.max_ranks = static_cast<int>(std::strtol(v, nullptr, 10));
      if (args.max_ranks < 1) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }

  if (args.replay_env) {
    const char* env = std::getenv("MC_FUZZ_SEED");
    if (env == nullptr) {
      std::fprintf(stderr,
                   "fuzz_replay: MC_FUZZ_SEED unset, nothing to replay "
                   "(skip)\n");
      return kSkipExitCode;
    }
    if (!mc::fuzz::parse_seed(env, args.replay_seed)) {
      std::fprintf(stderr, "bad MC_FUZZ_SEED '%s'\n", env);
      return 2;
    }
    args.replay = true;
  }

  mc::fuzz::MoleculeGenerator gen;
  mc::fuzz::HarnessOptions hopt;
  hopt.max_ranks = args.max_ranks;
  const mc::fuzz::DifferentialHarness harness(hopt);

  std::ofstream jsonl;
  if (!args.jsonl_path.empty()) {
    jsonl.open(args.jsonl_path);
    if (!jsonl) {
      std::fprintf(stderr, "cannot open %s\n", args.jsonl_path.c_str());
      return 2;
    }
  }

  long failed = 0;
  const long total = args.replay ? 1 : args.samples;
  for (long i = 0; i < total; ++i) {
    const std::uint64_t sample_seed =
        args.replay ? args.replay_seed
                    : mc::fuzz::derive_seed(args.master_seed,
                                            static_cast<std::uint64_t>(i));
    mc::fuzz::SampleReport rep;
    try {
      rep = harness.run(gen.from_seed(sample_seed));
    } catch (const std::exception& e) {
      rep.sample.seed = sample_seed;
      rep.failures.push_back(std::string("generator threw: ") + e.what());
    }
    if (jsonl.is_open()) jsonl << rep.json() << "\n";
    if (!rep.ok()) {
      ++failed;
      report_failure(rep);
    } else {
      std::printf("ok   %s engines=%zu worst_ulps=%llu\n",
                  rep.sample.describe().c_str(), rep.engines_run,
                  static_cast<unsigned long long>(rep.worst_ulps));
    }
  }

  std::printf("%ld/%ld samples passed (master seed %s)\n", total - failed,
              total, mc::fuzz::format_seed(args.master_seed).c_str());
  return failed == 0 ? 0 : 1;
}
