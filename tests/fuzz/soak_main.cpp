// Long-haul fault-injected soak driver (DESIGN.md section 14).
//
//   fuzz_soak [--jobs N] [--seed S] [--replay JOB_SEED] [--replay-env]
//             [--jsonl PATH] [--max-ranks R] [--fault-percent P] [--serve]
//
// Each job runs one randomized SCF (random molecule, per-atom mixed
// basis, charge, algorithm, rank/thread counts, incremental policy)
// through run_parallel_scf, under a randomized MC_FAULT_* plan about
// --fault-percent of the time (window verbs and delay mode included).
// With --serve the job goes through the SCF job server's submit path
// instead (admission -> queue -> pooled world -> run_parallel_scf), the
// nightly serving-lane configuration: the fault plan is process-global,
// so the soak keeps exactly one job in flight for deterministic fault
// attribution, and an aborted job must come back as a clean kAborted
// outcome while the server keeps serving.
// Invariants asserted per job:
//
//   * no fault armed, or delay-only fault -> the job completes cleanly
//     and its final energy matches an independent serial reference run
//     (no silent divergence, and one-sided completion timing must not
//     change results);
//   * hard fault armed -> either a clean mc::Error propagates from the
//     SPMD job (abort protocol worked) or the fault never triggered
//     (call_index past the op's call count), in which case the result
//     must again match the reference;
//   * never a hang: the binary runs under a ctest/CI timeout, so a stuck
//     barrier is a failure, not a wedged pipeline.
//
// Every failure prints the job seed and replay command
// (MC_FUZZ_SEED=<seed> ctest --test-dir build -R fuzz_soak_replay).

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "basis/basis_set.hpp"
#include "core/parallel_scf.hpp"
#include "fuzz/fuzz_rng.hpp"
#include "fuzz/molecule_generator.hpp"
#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "par/fault_injection.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"
#include "serve/server.hpp"

namespace {

constexpr int kSkipExitCode = 77;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--jobs N] [--seed S] [--replay JOB_SEED] [--replay-env]\n"
      "          [--jsonl PATH] [--max-ranks R] [--fault-percent P] "
      "[--serve]\n",
      argv0);
  return 2;
}

struct JobConfig {
  mc::core::ParallelScfConfig scf;
  mc::par::FaultPlan fault;
};

/// Draw the run configuration for one job (everything except the molecule,
/// which the shared MoleculeGenerator owns).
JobConfig draw_job(const mc::fuzz::FuzzSample& sample, std::uint64_t job_seed,
                   int max_ranks, int fault_percent) {
  mc::fuzz::Rng r(mc::fuzz::derive_seed(job_seed, 0x50AC));
  JobConfig job;
  const std::array<mc::core::ScfAlgorithm, 4> algs = {
      mc::core::ScfAlgorithm::kMpiOnly, mc::core::ScfAlgorithm::kPrivateFock,
      mc::core::ScfAlgorithm::kSharedFock, mc::core::ScfAlgorithm::kDistFock};
  job.scf.algorithm = algs[r.below(algs.size())];
  job.scf.nranks =
      1 + static_cast<int>(r.below(static_cast<std::uint64_t>(max_ranks)));
  job.scf.nthreads = 1 + static_cast<int>(r.below(3));
  // Per-atom assignment straight from the generator: uniform samples are
  // the all-same vector, mixed samples exercise build_mixed end to end.
  job.scf.basis_per_atom = sample.basis_per_atom;
  job.scf.basis = sample.basis_per_atom.front();
  job.scf.schwarz_threshold = sample.schwarz_threshold;
  job.scf.scf.charge = sample.charge;
  job.scf.scf.max_iterations = 25;
  job.scf.scf.density_tolerance = 1e-7;
  job.scf.scf.incremental_fock = r.chance(2, 3);
  job.scf.scf.use_diis = r.chance(9, 10);
  // Adversarial dist-fock budgets ride along on every dist job.
  const std::array<std::size_t, 4> caches = {0, 1, 2, 8};
  job.scf.dist_options.max_cached_tiles = caches[r.below(caches.size())];
  job.scf.dist_options.prefetch_depth = static_cast<int>(r.below(4));
  job.scf.dist_options.dynamic_lb = r.chance(1, 2);

  if (r.chance(static_cast<std::uint64_t>(fault_percent), 100)) {
    job.fault = mc::par::random_fault_plan(r.next(), job.scf.nranks);
  }
  return job;
}

struct JobResult {
  std::string outcome;  // converged|unconverged|aborted|untriggered
  double energy = 0.0;
  double ref_energy = 0.0;
  int iterations = 0;
  std::vector<std::string> failures;
};

/// Independent single-process reference: serial builder, same molecule,
/// per-atom basis assignment, threshold, and SCF options.
mc::scf::ScfResult reference_run(const mc::fuzz::FuzzSample& sample,
                                 const JobConfig& job) {
  const mc::basis::BasisSet bs =
      mc::basis::BasisSet::build_mixed(sample.mol, sample.basis_per_atom);
  const mc::ints::EriEngine eri(bs);
  const mc::ints::Screening screen(eri, job.scf.schwarz_threshold);
  mc::scf::SerialFockBuilder builder(eri, screen);
  return mc::scf::run_scf(sample.mol, bs, builder, job.scf.scf);
}

/// Replay one job through the server's submit path. The caller keeps the
/// server alive across jobs (warm caches and worlds persist, as in
/// production serving) but submits one job at a time so the process-global
/// fault plan is attributable to exactly this job.
void run_served(mc::serve::ScfJobServer& server,
                const mc::fuzz::FuzzSample& sample, const JobConfig& job,
                bool& aborted, std::string& abort_what,
                mc::core::ParallelScfResult& par, JobResult& res) {
  mc::serve::JobSpec spec;
  spec.molecule_label = sample.describe();
  spec.mol = sample.mol;
  spec.basis = job.scf.basis;
  spec.basis_per_atom = job.scf.basis_per_atom;
  spec.charge = sample.charge;
  spec.algorithm = job.scf.algorithm;
  spec.nranks = job.scf.nranks;
  spec.nthreads = job.scf.nthreads;
  spec.schwarz_threshold = job.scf.schwarz_threshold;
  spec.scf = job.scf.scf;
  const mc::serve::SubmitResult sub = server.submit(spec);
  if (!sub.accepted) {
    // The generator only emits servable specs; a rejection is a bug.
    res.failures.push_back("server rejected soak job: " + sub.reason);
    aborted = true;
    abort_what = sub.reason;
    return;
  }
  const mc::serve::JobOutcome out = server.wait(sub.job_id);
  if (out.outcome == mc::obs::JobOutcomeKind::kAborted) {
    aborted = true;
    abort_what = out.error;
    return;
  }
  par.scf.converged = out.outcome == mc::obs::JobOutcomeKind::kConverged;
  par.scf.energy = out.energy;
  par.scf.iterations = out.iterations;
}

JobResult run_job(const mc::fuzz::FuzzSample& sample, const JobConfig& job,
                  mc::serve::ScfJobServer* server) {
  JobResult res;
  const bool hard_fault = job.fault.enabled() && job.fault.delay_ms == 0;
  mc::par::set_fault_plan(job.fault);
  bool aborted = false;
  std::string abort_what;
  mc::core::ParallelScfResult par;
  if (server != nullptr) {
    run_served(*server, sample, job, aborted, abort_what, par, res);
  } else {
    try {
      par = mc::core::run_parallel_scf(sample.mol, job.scf);
    } catch (const std::exception& e) {
      aborted = true;
      abort_what = e.what();
    }
  }
  mc::par::clear_fault_plan();

  if (aborted) {
    res.outcome = "aborted";
    if (!hard_fault) {
      res.failures.push_back(
          "job aborted with no hard fault armed: " + abort_what);
    }
    // A hard-fault abort is the protocol working: mc::Error propagated out
    // of the SPMD job instead of a hang or corruption. Nothing to compare.
    return res;
  }

  res.outcome = par.scf.converged ? "converged" : "unconverged";
  if (hard_fault) res.outcome = "untriggered";
  res.energy = par.scf.energy;
  res.iterations = par.scf.iterations;

  // The job completed (no fault, delay fault, or untriggered hard fault):
  // its answer must match the serial reference -- the silent-divergence
  // check. Matching convergence flags demand tight energy agreement; a
  // flag that flipped across the tolerance boundary still has to land
  // within a gross bound.
  try {
    const mc::scf::ScfResult ref = reference_run(sample, job);
    res.ref_energy = ref.energy;
    const double gap = std::abs(par.scf.energy - ref.energy);
    const double scale = std::max(1.0, std::abs(ref.energy));
    if (ref.converged == par.scf.converged) {
      if (gap > 1e-6 * scale) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "energy diverged from serial reference: %.12f vs "
                      "%.12f (gap %.3e)",
                      par.scf.energy, ref.energy, gap);
        res.failures.push_back(buf);
      }
    } else if (gap > 1e-4 * scale) {
      char buf[200];
      std::snprintf(buf, sizeof buf,
                    "convergence flags disagree (parallel %s, serial %s) "
                    "with gross energy gap %.3e",
                    par.scf.converged ? "converged" : "unconverged",
                    ref.converged ? "converged" : "unconverged", gap);
      res.failures.push_back(buf);
    }
  } catch (const std::exception& e) {
    res.failures.push_back(std::string("reference run threw: ") + e.what());
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t master_seed = 0x50414B4D43ULL;  // default fixed seed
  std::uint64_t replay_seed = 0;
  bool replay = false;
  bool replay_env = false;
  long jobs = 200;
  int max_ranks = 4;
  int fault_percent = 40;
  bool serve_mode = false;
  std::string jsonl_path;

  if (const char* env = std::getenv("MC_FUZZ_SEED")) {
    if (!mc::fuzz::parse_seed(env, master_seed)) {
      std::fprintf(stderr, "bad MC_FUZZ_SEED '%s'\n", env);
      return 2;
    }
  }
  for (int a = 1; a < argc; ++a) {
    const char* arg = argv[a];
    auto next = [&]() -> const char* {
      return (a + 1 < argc) ? argv[++a] : nullptr;
    };
    if (std::strcmp(arg, "--jobs") == 0) {
      const char* v = next();
      if (v == nullptr || (jobs = std::strtol(v, nullptr, 10)) < 1) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--seed") == 0) {
      const char* v = next();
      if (v == nullptr || !mc::fuzz::parse_seed(v, master_seed)) {
        return usage(argv[0]);
      }
    } else if (std::strcmp(arg, "--replay") == 0) {
      const char* v = next();
      if (v == nullptr || !mc::fuzz::parse_seed(v, replay_seed)) {
        return usage(argv[0]);
      }
      replay = true;
    } else if (std::strcmp(arg, "--replay-env") == 0) {
      replay_env = true;
    } else if (std::strcmp(arg, "--jsonl") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      jsonl_path = v;
    } else if (std::strcmp(arg, "--max-ranks") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      max_ranks = static_cast<int>(std::strtol(v, nullptr, 10));
      if (max_ranks < 1) return usage(argv[0]);
    } else if (std::strcmp(arg, "--fault-percent") == 0) {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      fault_percent = static_cast<int>(std::strtol(v, nullptr, 10));
      if (fault_percent < 0 || fault_percent > 100) return usage(argv[0]);
    } else if (std::strcmp(arg, "--serve") == 0) {
      serve_mode = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (replay_env) {
    const char* env = std::getenv("MC_FUZZ_SEED");
    if (env == nullptr) {
      std::fprintf(stderr,
                   "fuzz_soak_replay: MC_FUZZ_SEED unset, nothing to "
                   "replay (skip)\n");
      return kSkipExitCode;
    }
    if (!mc::fuzz::parse_seed(env, replay_seed)) {
      std::fprintf(stderr, "bad MC_FUZZ_SEED '%s'\n", env);
      return 2;
    }
    replay = true;
    // Replay a serve-mode failure through the serve path (the replay
    // command a serve-mode soak prints sets this variable).
    if (std::getenv("MC_FUZZ_SERVE") != nullptr) serve_mode = true;
  }

  // Mixed per-atom bases flow through run_parallel_scf's basis_per_atom
  // entry point; samples stay modest-sized because the soak owns volume
  // and fault plans, not cost-heavy corners.
  mc::fuzz::GeneratorOptions gopt;
  gopt.mixed_basis = true;
  gopt.max_nbf = 40;
  const mc::fuzz::MoleculeGenerator gen(gopt);

  // Serve mode: one long-lived server for the whole soak (warm caches and
  // pool worlds persist across jobs) submitted to one job at a time so
  // every armed fault is attributable to the in-flight job.
  std::unique_ptr<mc::serve::ScfJobServer> server;
  if (serve_mode) {
    mc::serve::ServerOptions sopt;
    sopt.nworlds = 2;  // idle second world: shutdown must still be clean
    server = std::make_unique<mc::serve::ScfJobServer>(sopt);
  }

  std::ofstream jsonl;
  if (!jsonl_path.empty()) {
    jsonl.open(jsonl_path);
    if (!jsonl) {
      std::fprintf(stderr, "cannot open %s\n", jsonl_path.c_str());
      return 2;
    }
  }

  long failed = 0;
  const long total = replay ? 1 : jobs;
  for (long j = 0; j < total; ++j) {
    const std::uint64_t job_seed =
        replay ? replay_seed
               : mc::fuzz::derive_seed(master_seed,
                                       static_cast<std::uint64_t>(j));
    JobResult res;
    std::string describe;
    std::string fault_desc;
    try {
      const mc::fuzz::FuzzSample sample = gen.from_seed(job_seed);
      const JobConfig job =
          draw_job(sample, job_seed, max_ranks, fault_percent);
      describe = sample.describe() + " alg=" +
                 mc::core::algorithm_name(job.scf.algorithm) + " ranks=" +
                 std::to_string(job.scf.nranks) + " threads=" +
                 std::to_string(job.scf.nthreads);
      fault_desc = mc::par::fault_plan_env_string(job.fault);
      if (!fault_desc.empty()) describe += " fault{" + fault_desc + "}";
      res = run_job(sample, job, server.get());
    } catch (const std::exception& e) {
      res.failures.push_back(std::string("job setup threw: ") + e.what());
    }

    if (jsonl.is_open()) {
      jsonl << "{\"job\":" << j << ",\"seed\":\""
            << mc::fuzz::format_seed(job_seed) << "\",\"outcome\":\""
            << res.outcome << "\",\"fault\":\"" << fault_desc
            << "\",\"energy\":" << res.energy << ",\"ref_energy\":"
            << res.ref_energy << ",\"iterations\":" << res.iterations
            << ",\"ok\":" << (res.failures.empty() ? "true" : "false")
            << "}\n";
    }
    if (!res.failures.empty()) {
      ++failed;
      std::fprintf(stderr, "FAIL job %ld %s\n", j, describe.c_str());
      for (const std::string& f : res.failures) {
        std::fprintf(stderr, "  %s\n", f.c_str());
      }
      std::fprintf(stderr,
                   "  replay: %sMC_FUZZ_SEED=%s ctest --test-dir build -R "
                   "fuzz_soak_replay\n",
                   serve_mode ? "MC_FUZZ_SERVE=1 " : "",
                   mc::fuzz::format_seed(job_seed).c_str());
    } else if ((j + 1) % 50 == 0 || replay) {
      std::printf("job %ld/%ld ok (%s)\n", j + 1, total,
                  res.outcome.c_str());
    }
  }

  if (server != nullptr) {
    const mc::serve::ServerSummary s = server->shutdown();
    std::printf(
        "serve-mode summary: %ld submitted (%ld converged, %ld unconverged, "
        "%ld aborted), setup cache %ld/%ld hits, density cache %ld/%ld "
        "hits\n",
        s.submitted, s.converged, s.unconverged, s.aborted,
        s.setup_cache_hits, s.setup_cache_hits + s.setup_cache_misses,
        s.density_cache_hits, s.density_cache_hits + s.density_cache_misses);
  }
  std::printf("%ld/%ld soak jobs passed (master seed %s)\n", total - failed,
              total, mc::fuzz::format_seed(master_seed).c_str());
  return failed == 0 ? 0 : 1;
}
