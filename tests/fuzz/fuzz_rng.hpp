#pragma once
// Deterministic RNG for the fuzz harness. splitmix64 (Steele, Lea &
// Flood's SplittableRandom finalizer) rather than <random> distributions:
// std::uniform_*_distribution draws are stdlib-specific, and the whole
// point of MC_FUZZ_SEED is that a seed printed by a CI failure replays the
// identical sample on any machine. Every derived quantity here is a pure
// function of 64-bit integer arithmetic.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace mc::fuzz {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next 64 uniform bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). n == 0 returns 0. The modulo bias at
  /// n << 2^64 is far below anything the harness could observe.
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }

  /// Uniform double in [lo, hi) from the top 53 bits.
  double uniform(double lo, double hi) {
    const double u =
        static_cast<double>(next() >> 11) * 0x1.0p-53;  // [0, 1)
    return lo + u * (hi - lo);
  }

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  std::uint64_t state_;
};

/// Per-sample seed derived from the master seed and the sample index, so
/// one master seed names a whole run while each sample remains
/// independently replayable (`--replay <sample seed>`).
inline std::uint64_t derive_seed(std::uint64_t master, std::uint64_t index) {
  Rng r(master ^ (index + 1) * 0xD1B54A32D192ED03ULL);
  r.next();
  return r.next();
}

/// Seeds render as 0x-hex everywhere (failure messages, JSONL, --replay)
/// so they round-trip through shells and logs without sign or base
/// ambiguity.
inline std::string format_seed(std::uint64_t seed) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(seed));
  return buf;
}

/// Parse a seed as printed by format_seed (or any strtoull base-0 form).
/// Returns false on garbage rather than throwing: callers turn it into a
/// usage error with context.
inline bool parse_seed(const char* text, std::uint64_t& seed) {
  if (text == nullptr || *text == '\0') return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') return false;
  seed = static_cast<std::uint64_t>(v);
  return true;
}

}  // namespace mc::fuzz
