#pragma once
// The bit-comparability predicate shared by the gtest equivalence suites
// (tests/fock_fixture.hpp wraps it in ASSERT/EXPECT) and the fuzz/soak
// binaries, which have no gtest and report through their own replay-seed
// machinery.
//
// Separation argument (DESIGN.md section 14): a race-free parallel Fock
// build computes exactly the serial quartet set and only reassociates the
// additions, so every element lands within a few dozen ULPs of the serial
// reference. A protocol regression -- a lost update, a buffer flushed
// twice, a misrouted contribution -- changes the *set* of summed terms and
// moves elements by whole quartet contributions, i.e. >= the screening
// threshold and billions of ULPs. kMaxSkeletonUlps sits orders of
// magnitude above rounding and orders of magnitude below the smallest
// possible protocol error, and the randomized fuzz sweep checks that the
// separation holds across the whole generated sample space, not just the
// hand-picked fixture molecules.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "la/matrix.hpp"

namespace mc::core {

/// ULP budget for a race-free parallel skeleton against the serial
/// reference (see the header comment for the separation argument).
inline constexpr std::uint64_t kMaxSkeletonUlps = 4096;

/// Elements whose absolute gap is below this are compared as equal without
/// consulting ULPs: around a catastrophic cancellation the same set of
/// terms can sum to 1e-16-ish residuals of opposite sign, which are
/// physically identical but ULP-distant.
inline constexpr double kCancellationFloor = 1e-13;

/// Result of comparing a candidate matrix against the reference.
struct UlpComparison {
  bool ok = false;
  std::uint64_t worst_ulps = 0;  ///< worst element's ULP distance
  std::size_t worst_index = 0;   ///< flat index of the worst element
  double got = 0.0;              ///< candidate value at worst_index
  double want = 0.0;             ///< reference value at worst_index
  std::string shape_error;       ///< non-empty if the shapes disagree
};

/// Compare every element of `g` against `ref` under the skeleton
/// equivalence contract: equal bits pass, gaps inside the cancellation
/// floor pass (unless max_ulps == 0, which demands bit-identity), and
/// otherwise the ULP distance must not exceed `max_ulps`.
inline UlpComparison compare_bit_comparable(const la::Matrix& g,
                                            const la::Matrix& ref,
                                            std::uint64_t max_ulps) {
  UlpComparison cmp;
  if (g.rows() != ref.rows() || g.cols() != ref.cols()) {
    std::ostringstream os;
    os << "shape mismatch: " << g.rows() << "x" << g.cols() << " vs "
       << ref.rows() << "x" << ref.cols();
    cmp.shape_error = os.str();
    return cmp;
  }
  std::uint64_t worst = 0;
  std::size_t worst_i = 0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double a = g.data()[i];
    const double b = ref.data()[i];
    if (a == b) continue;
    if (std::abs(a - b) <= kCancellationFloor && max_ulps > 0) continue;
    const std::uint64_t u = la::ulp_distance(a, b);
    if (u > worst) {
      worst = u;
      worst_i = i;
    }
  }
  cmp.worst_ulps = worst;
  cmp.worst_index = worst_i;
  cmp.got = g.data()[worst_i];
  cmp.want = ref.data()[worst_i];
  cmp.ok = worst <= max_ulps;
  return cmp;
}

/// Human-readable failure description ("" when cmp.ok).
inline std::string describe_ulp_failure(const UlpComparison& cmp,
                                        const std::string& what) {
  if (cmp.ok) return "";
  if (!cmp.shape_error.empty()) return what + ": " + cmp.shape_error;
  std::ostringstream os;
  os << what << ": element " << cmp.worst_index << " differs by "
     << cmp.worst_ulps << " ULPs (" << cmp.got << " vs " << cmp.want
     << ") -- a gap this large means a lost or duplicated contribution, "
        "not rounding";
  return os.str();
}

}  // namespace mc::core
