#pragma once
// The cross-builder differential check: one FuzzSample in, every Fock
// builder out, all answers compared pairwise against the serial scalar
// reference under the ULP-separation contract of fuzz/ulp_compare.hpp,
// plus the screening-counter and 8-fold symmetry identities (DESIGN.md
// section 14). No gtest: failures come back as strings so the fuzz and
// soak mains can attach replay seeds and keep going.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/molecule_generator.hpp"

namespace mc::fuzz {

struct HarnessOptions {
  /// Rank counts are drawn from [1, max_ranks]; at least one multi-rank
  /// configuration is forced per algorithm.
  int max_ranks = 4;
  /// ULP budget for parallel-vs-serial agreement (core::kMaxSkeletonUlps).
  std::uint64_t max_ulps = 4096;
  /// Run the 8-fold permutational-symmetry audit on sampled quartets.
  bool symmetry_audit = true;
  /// Engine configurations drawn per algorithm (>= 1; the first is forced
  /// multi-rank).
  int configs_per_algorithm = 2;
};

/// Everything the harness concluded about one sample. `failures` is empty
/// on success; each entry is self-contained (engine label + what broke).
struct SampleReport {
  FuzzSample sample;
  std::size_t nbf = 0;
  std::size_t nshells = 0;
  std::size_t survivors = 0;     ///< static-screening surviving quartets
  std::size_t engines_run = 0;   ///< builder configurations exercised
  std::uint64_t worst_ulps = 0;  ///< worst passing ULP gap seen
  std::vector<std::string> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// One JSONL record (the sample log line).
  [[nodiscard]] std::string json() const;
};

class DifferentialHarness {
 public:
  explicit DifferentialHarness(HarnessOptions opt = {}) : opt_(opt) {}

  /// Run the full differential sweep on one sample. Exceptions from any
  /// builder are caught and reported as failures, not propagated: a crash
  /// in one engine must not hide what the others say.
  [[nodiscard]] SampleReport run(const FuzzSample& sample) const;

 private:
  HarnessOptions opt_;
};

}  // namespace mc::fuzz
