#include "fuzz/molecule_generator.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "basis/basis_library.hpp"
#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "common/error.hpp"
#include "fuzz/fuzz_rng.hpp"
#include "ints/one_electron.hpp"
#include "la/orthogonalizer.hpp"

namespace mc::fuzz {

namespace {

// Template ids. Order is part of the seed contract: reordering changes
// what every existing seed replays to.
enum class Template {
  kH2,
  kHehPlus,
  kWater,
  kMethane,
  kEthane,
  kHChain,       // near-linear H chain (degenerate)
  kWaterDimer,   // far-separated pair (screening sparsity)
  kTightWater,   // compressed O-H bond (degenerate)
  kCount,
};

const char* template_name(Template t) {
  switch (t) {
    case Template::kH2: return "h2";
    case Template::kHehPlus: return "heh+";
    case Template::kWater: return "water";
    case Template::kMethane: return "methane";
    case Template::kEthane: return "ethane";
    case Template::kHChain: return "h-chain";
    case Template::kWaterDimer: return "water-dimer";
    case Template::kTightWater: return "tight-water";
    case Template::kCount: break;
  }
  return "unknown";
}

bool is_degenerate(Template t) {
  return t == Template::kHChain || t == Template::kTightWater;
}

/// Build the base geometry for a template (before global jitter).
chem::Molecule build_template(Template t, Rng& r, int& base_charge) {
  namespace b = chem::builders;
  base_charge = 0;
  switch (t) {
    case Template::kH2:
      return b::h2(r.uniform(1.0, 2.2));
    case Template::kHehPlus:
      base_charge = 1;
      return b::heh_plus(r.uniform(1.2, 1.8));
    case Template::kWater:
      return b::water();
    case Template::kMethane:
      return b::methane();
    case Template::kEthane:
      return b::alkane(2);
    case Template::kHChain: {
      // 3..5 hydrogens along x at near-bonding spacing with only a tiny
      // transverse displacement: overlapping diffuse functions drive S
      // toward singularity, the canonical-orthogonalizer stress case.
      const std::size_t n = 3 + r.below(3);
      const double spacing = r.uniform(1.3, 1.8);
      chem::Molecule mol;
      for (std::size_t a = 0; a < n; ++a) {
        mol.add_atom(1, static_cast<double>(a) * spacing,
                     r.uniform(-0.05, 0.05), r.uniform(-0.05, 0.05));
      }
      return mol;
    }
    case Template::kWaterDimer: {
      chem::Molecule w1 = b::water();
      chem::Molecule w2 =
          b::water().rotated(r.uniform(0.0, 3.1), r.uniform(0.0, 1.5));
      w2 = w2.translated(r.uniform(6.0, 14.0), 0.4, 0.2);
      chem::Molecule mol = w1;
      for (const chem::Atom& atom : w2.atoms()) {
        mol.add_atom(atom.z, atom.xyz[0], atom.xyz[1], atom.xyz[2]);
      }
      return mol;
    }
    case Template::kTightWater: {
      // Pull one hydrogen radially toward the oxygen to ~25-45% of its
      // bond length: severely overlapping shells without fusing atoms.
      chem::Molecule w = b::water();
      const double f = r.uniform(0.25, 0.45);
      chem::Molecule mol;
      const chem::Atom& o = w.atom(0);
      mol.add_atom(o.z, o.xyz[0], o.xyz[1], o.xyz[2]);
      for (std::size_t a = 1; a < w.natoms(); ++a) {
        const chem::Atom& h = w.atom(a);
        if (a == 1) {
          mol.add_atom(h.z, o.xyz[0] + f * (h.xyz[0] - o.xyz[0]),
                       o.xyz[1] + f * (h.xyz[1] - o.xyz[1]),
                       o.xyz[2] + f * (h.xyz[2] - o.xyz[2]));
        } else {
          mol.add_atom(h.z, h.xyz[0], h.xyz[1], h.xyz[2]);
        }
      }
      return mol;
    }
    case Template::kCount: break;
  }
  throw mc::Error("fuzz: bad template id");
}

chem::Molecule jittered(const chem::Molecule& mol, Rng& r, double max_jitter) {
  const double j = r.uniform(0.0, max_jitter);
  chem::Molecule out;
  for (const chem::Atom& atom : mol.atoms()) {
    out.add_atom(atom.z, atom.xyz[0] + r.uniform(-j, j),
                 atom.xyz[1] + r.uniform(-j, j),
                 atom.xyz[2] + r.uniform(-j, j));
  }
  return out;
}

/// Net charges giving an even, positive electron count, nearest-first.
std::vector<int> valid_charges(const chem::Molecule& mol, int base_charge) {
  std::vector<int> out;
  for (int d : {0, 1, -1, 2, -2}) {
    const int c = base_charge + d;
    const int nelec = mol.nelectrons(c);
    if (nelec > 0 && nelec % 2 == 0) out.push_back(c);
  }
  return out;
}

}  // namespace

std::string FuzzSample::basis_label() const {
  std::vector<std::string> distinct(basis_per_atom);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (distinct.size() == 1) return distinct.front();
  std::string label = "mixed[";
  for (std::size_t n = 0; n < distinct.size(); ++n) {
    if (n > 0) label += ",";
    label += distinct[n];
  }
  return label + "]";
}

std::string FuzzSample::describe() const {
  std::ostringstream os;
  os << "seed=" << format_seed(seed) << " template=" << template_name
     << " natoms=" << mol.natoms() << " charge=" << charge
     << " basis=" << basis_label() << " threshold=" << schwarz_threshold;
  if (degenerate) os << " degenerate";
  return os.str();
}

FuzzSample MoleculeGenerator::from_seed(std::uint64_t sample_seed) const {
  // Bounded, deterministic rejection loop: each attempt re-derives its RNG
  // from (seed, attempt) so a rejected candidate never perturbs the next
  // one's stream.
  for (std::uint64_t attempt = 0; attempt < 32; ++attempt) {
    Rng r(derive_seed(sample_seed, 0x5EED0000 + attempt));

    Template t = static_cast<Template>(
        r.below(static_cast<std::size_t>(Template::kCount)));
    if (!opt_.degenerate_geometries && is_degenerate(t)) {
      t = Template::kWater;  // deterministic stand-in, not a reroll
    }

    int base_charge = 0;
    chem::Molecule mol = build_template(t, r, base_charge);
    mol = jittered(mol, r, opt_.max_jitter_bohr);
    if (mol.min_distance() < 0.3) continue;  // fused atoms: singular pairs

    const std::vector<int> charges = valid_charges(mol, base_charge);
    if (charges.empty()) continue;
    const int charge =
        opt_.random_charge
            ? charges[r.below(charges.size())]
            : charges.front();

    // Per-atom basis: the subset of built-in sets covering this element.
    // About a third of samples stay uniform so the plain-basis path keeps
    // getting fuzzed too.
    const std::vector<std::string> all = basis::available_basis_sets();
    const bool uniform = !opt_.mixed_basis || r.chance(1, 3);
    std::string uniform_name;
    if (uniform) {
      std::vector<std::string> usable;
      for (const std::string& name : all) {
        bool ok = true;
        for (const chem::Atom& atom : mol.atoms()) {
          if (!basis::has_element_basis(name, atom.z)) ok = false;
        }
        if (ok) usable.push_back(name);
      }
      if (usable.empty()) continue;
      uniform_name = usable[r.below(usable.size())];
    }
    std::vector<std::string> basis_per_atom;
    basis_per_atom.reserve(mol.natoms());
    bool basis_ok = true;
    for (const chem::Atom& atom : mol.atoms()) {
      if (uniform) {
        basis_per_atom.push_back(uniform_name);
        continue;
      }
      std::vector<std::string> usable;
      for (const std::string& name : all) {
        if (basis::has_element_basis(name, atom.z)) usable.push_back(name);
      }
      if (usable.empty()) {
        basis_ok = false;
        break;
      }
      basis_per_atom.push_back(usable[r.below(usable.size())]);
    }
    if (!basis_ok) continue;

    basis::BasisSet bs;
    try {
      bs = basis::BasisSet::build_mixed(mol, basis_per_atom);
    } catch (const mc::Error&) {
      continue;
    }
    if (bs.nbf() > opt_.max_nbf || bs.nbf() == 0) continue;

    const int nocc = mol.nelectrons(charge) / 2;
    // The orthogonalizer may drop near-dependent columns (the degenerate
    // templates exist to force exactly that); the sample is only valid if
    // the occupied space still fits.
    la::Matrix s = ints::overlap_matrix(bs);
    la::Matrix x = la::canonical_orthogonalizer(s);
    if (static_cast<std::size_t>(nocc) > x.cols() || nocc < 1) continue;

    FuzzSample sample;
    sample.seed = sample_seed;
    sample.template_name = template_name(t);
    sample.mol = std::move(mol);
    sample.basis_per_atom = std::move(basis_per_atom);
    sample.charge = charge;
    sample.nocc = nocc;
    // Log-uniform Schwarz threshold over three decades around the GAMESS
    // default: exercises both dense (keep everything) and sparse regimes.
    sample.schwarz_threshold = std::pow(10.0, r.uniform(-11.0, -8.0));
    sample.degenerate = is_degenerate(t);
    return sample;
  }
  throw mc::Error("fuzz: seed " + format_seed(sample_seed) +
                  " rejected 32 consecutive candidates -- generator bug");
}

FuzzSample MoleculeGenerator::sample(std::uint64_t master_seed,
                                     std::uint64_t index) const {
  return from_seed(derive_seed(master_seed, index));
}

}  // namespace mc::fuzz
