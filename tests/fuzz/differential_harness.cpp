#include "fuzz/differential_harness.hpp"

#include <array>
#include <cmath>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "basis/basis_set.hpp"
#include "core/fock_dist.hpp"
#include "core/fock_mpi.hpp"
#include "core/fock_private.hpp"
#include "core/fock_shared.hpp"
#include "core/memory_model.hpp"
#include "fuzz/fuzz_rng.hpp"
#include "fuzz/ulp_compare.hpp"
#include "ints/eri_batch.hpp"
#include "ints/one_electron.hpp"
#include "ints/screening.hpp"
#include "la/orthogonalizer.hpp"
#include "la/sym_eig.hpp"
#include "par/ddi.hpp"
#include "par/runtime.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"

namespace mc::fuzz {

namespace {

/// One parallel-builder configuration of the sweep.
struct SweepConfig {
  core::ScfAlgorithm alg = core::ScfAlgorithm::kMpiOnly;
  int nranks = 1;
  int nthreads = 1;
  bool dynamic_schedule = true;
  bool lazy_fi_flush = true;
  bool work_stealing = false;
  core::DistFockOptions dist;

  [[nodiscard]] std::string label() const {
    std::ostringstream os;
    os << core::algorithm_name(alg) << "[r" << nranks;
    if (nthreads > 1) os << ",t" << nthreads;
    if (work_stealing) os << ",steal";
    if (!dynamic_schedule) os << ",static";
    if (!lazy_fi_flush) os << ",eager-fi";
    if (alg == core::ScfAlgorithm::kDistFock) {
      os << ",cache" << dist.max_cached_tiles << ",pf"
         << dist.prefetch_depth << (dist.dynamic_lb ? "" : ",cyclic");
    }
    os << "]";
    return os.str();
  }
};

/// Draw the configuration sweep for one algorithm. The first draw is
/// forced multi-rank so every algorithm's cross-rank protocol runs on
/// every sample; the rest roam the whole option space.
std::vector<SweepConfig> draw_configs(core::ScfAlgorithm alg,
                                      std::uint64_t sample_seed,
                                      const HarnessOptions& opt) {
  Rng r(derive_seed(sample_seed,
                    0xC0DE0000 + static_cast<std::uint64_t>(alg)));
  std::vector<SweepConfig> out;
  const int n = opt.configs_per_algorithm < 1 ? 1 : opt.configs_per_algorithm;
  for (int c = 0; c < n; ++c) {
    SweepConfig cfg;
    cfg.alg = alg;
    if (c == 0 && opt.max_ranks >= 2) {
      cfg.nranks = 2 + static_cast<int>(r.below(
                           static_cast<std::uint64_t>(opt.max_ranks - 1)));
    } else {
      cfg.nranks = 1 + static_cast<int>(
                           r.below(static_cast<std::uint64_t>(opt.max_ranks)));
    }
    cfg.nthreads = 1 + static_cast<int>(r.below(3));
    cfg.dynamic_schedule = r.chance(1, 2);
    cfg.lazy_fi_flush = r.chance(3, 4);
    cfg.work_stealing = r.chance(1, 3);
    cfg.dist.prefetch_depth = static_cast<int>(r.below(4));
    cfg.dist.dynamic_lb = r.chance(1, 2);
    // Adversarially small tile caches included: 1-tile and 2-tile budgets
    // force constant eviction and pinned-over-budget scatter.
    const std::array<std::size_t, 4> caches = {0, 1, 2, 8};
    cfg.dist.max_cached_tiles = caches[r.below(caches.size())];
    const std::array<std::size_t, 3> panels = {0, 1, 4};
    cfg.dist.max_open_f_tiles = panels[r.below(panels.size())];
    out.push_back(cfg);
  }
  return out;
}

struct BuildOutcome {
  la::Matrix g;
  std::size_t quartets = 0;
  std::size_t density_screened = 0;
  std::string error;  ///< non-empty if the build threw
};

/// Collective build under `nranks` in-process ranks: rank 0's reduced G
/// plus rank-summed counters.
BuildOutcome run_build(const SweepConfig& cfg, const ints::EriEngine& eri,
                       const ints::Screening& screen, std::size_t nbf,
                       const la::Matrix& d, const scf::FockContext& ctx) {
  BuildOutcome out;
  out.g = la::Matrix(nbf, nbf);
  std::mutex mu;
  try {
    par::run_spmd(cfg.nranks, [&](par::Comm& comm) {
      par::Ddi ddi(comm);
      std::unique_ptr<scf::FockBuilder> builder;
      switch (cfg.alg) {
        case core::ScfAlgorithm::kMpiOnly:
          builder = std::make_unique<core::FockBuilderMpi>(
              eri, screen, ddi,
              cfg.work_stealing ? core::MpiLoadBalance::kWorkStealing
                                : core::MpiLoadBalance::kDlbCounter);
          break;
        case core::ScfAlgorithm::kPrivateFock: {
          core::PrivateFockOptions po;
          po.nthreads = cfg.nthreads;
          po.dynamic_schedule = cfg.dynamic_schedule;
          builder = std::make_unique<core::FockBuilderPrivate>(eri, screen,
                                                               ddi, po);
          break;
        }
        case core::ScfAlgorithm::kSharedFock: {
          core::SharedFockOptions so;
          so.nthreads = cfg.nthreads;
          so.dynamic_schedule = cfg.dynamic_schedule;
          so.lazy_fi_flush = cfg.lazy_fi_flush;
          builder = std::make_unique<core::FockBuilderShared>(eri, screen,
                                                              ddi, so);
          break;
        }
        case core::ScfAlgorithm::kDistFock:
          builder = std::make_unique<core::FockBuilderDist>(eri, screen, ddi,
                                                            cfg.dist);
          break;
      }
      la::Matrix g(nbf, nbf);
      builder->build(d, g, ctx);
      {
        std::lock_guard<std::mutex> lk(mu);
        out.quartets += builder->last_quartets_computed();
        out.density_screened += builder->last_density_screened();
        if (comm.rank() == 0) out.g = g;
      }
      comm.barrier();
    });
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

/// 8-fold permutational-symmetry audit through the batched path on up to
/// `max_quartets` surviving quartets (deterministic picks). Appends a
/// failure string per violated identity.
void symmetry_audit(const basis::BasisSet& bs, const ints::EriEngine& eri,
                    const ints::Screening& screen, std::uint64_t sample_seed,
                    std::size_t max_quartets,
                    std::vector<std::string>& failures) {
  const auto& pairs = screen.sorted_pairs();
  if (pairs.empty()) return;
  Rng r(derive_seed(sample_seed, 0x5A117));
  for (std::size_t pick = 0; pick < max_quartets; ++pick) {
    const ints::ScreenedPair& bra = pairs[r.below(pairs.size())];
    const ints::ScreenedPair& ket = pairs[r.below(pairs.size())];
    const std::size_t i = bra.i, j = bra.j, k = ket.i, l = ket.j;

    struct Image {
      std::array<std::size_t, 4> sh;
      std::array<int, 4> ax;
    };
    const std::array<Image, 8> images = {{
        {{i, j, k, l}, {0, 1, 2, 3}},
        {{j, i, k, l}, {1, 0, 2, 3}},
        {{i, j, l, k}, {0, 1, 3, 2}},
        {{j, i, l, k}, {1, 0, 3, 2}},
        {{k, l, i, j}, {2, 3, 0, 1}},
        {{l, k, i, j}, {3, 2, 0, 1}},
        {{k, l, j, i}, {2, 3, 1, 0}},
        {{l, k, j, i}, {3, 2, 1, 0}},
    }};
    ints::QuartetBatch batch(eri, images.size());
    for (const Image& im : images) {
      batch.add(im.sh[0], im.sh[1], im.sh[2], im.sh[3]);
    }
    batch.evaluate();

    const double* ref = batch.result(0);
    const int nd[4] = {bs.shell(i).nfunc(), bs.shell(j).nfunc(),
                       bs.shell(k).nfunc(), bs.shell(l).nfunc()};
    for (std::size_t m = 1; m < images.size(); ++m) {
      const Image& im = images[m];
      const double* got = batch.result(m);
      const int pd[4] = {
          bs.shell(im.sh[0]).nfunc(), bs.shell(im.sh[1]).nfunc(),
          bs.shell(im.sh[2]).nfunc(), bs.shell(im.sh[3]).nfunc()};
      int idx[4];
      for (idx[0] = 0; idx[0] < nd[0]; ++idx[0])
        for (idx[1] = 0; idx[1] < nd[1]; ++idx[1])
          for (idx[2] = 0; idx[2] < nd[2]; ++idx[2])
            for (idx[3] = 0; idx[3] < nd[3]; ++idx[3]) {
              const std::size_t rflat =
                  ((static_cast<std::size_t>(idx[0]) * nd[1] + idx[1]) *
                       nd[2] +
                   idx[2]) *
                      nd[3] +
                  idx[3];
              const std::size_t pflat =
                  ((static_cast<std::size_t>(idx[im.ax[0]]) * pd[1] +
                    idx[im.ax[1]]) *
                       pd[2] +
                   idx[im.ax[2]]) *
                      pd[3] +
                  idx[im.ax[3]];
              const double gap = std::abs(ref[rflat] - got[pflat]);
              if (gap > 1e-10) {
                std::ostringstream os;
                os << "symmetry-audit: image " << m << " of (" << i << ","
                   << j << "|" << k << "," << l << ") differs by " << gap;
                failures.push_back(os.str());
                return;  // one violation is conclusive; stop the audit
              }
            }
    }
  }
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

}  // namespace

std::string SampleReport::json() const {
  std::ostringstream os;
  os << "{\"seed\":\"" << format_seed(sample.seed) << "\",\"template\":\""
     << sample.template_name << "\",\"natoms\":" << sample.mol.natoms()
     << ",\"charge\":" << sample.charge << ",\"basis\":\""
     << sample.basis_label() << "\",\"threshold\":"
     << sample.schwarz_threshold << ",\"nbf\":" << nbf
     << ",\"nshells\":" << nshells << ",\"survivors\":" << survivors
     << ",\"engines\":" << engines_run << ",\"worst_ulps\":" << worst_ulps
     << ",\"ok\":" << (ok() ? "true" : "false") << ",\"failures\":[";
  std::string body;
  for (std::size_t f = 0; f < failures.size(); ++f) {
    if (f > 0) body += ",";
    body += '"';
    append_escaped(body, failures[f]);
    body += '"';
  }
  os << body << "]}";
  return os.str();
}

SampleReport DifferentialHarness::run(const FuzzSample& sample) const {
  SampleReport rep;
  rep.sample = sample;
  try {
    const basis::BasisSet bs =
        basis::BasisSet::build_mixed(sample.mol, sample.basis_per_atom);
    rep.nbf = bs.nbf();
    rep.nshells = bs.nshells();
    const ints::EriEngine eri(bs);
    const ints::Screening screen(eri, sample.schwarz_threshold);
    rep.survivors = screen.count_surviving_quartets();

    // Densities: core guess, and the delta to the next Roothaan iterate
    // (the incremental build's input), exactly as tests/fock_fixture.hpp
    // constructs them.
    la::Matrix h = ints::core_hamiltonian(bs, sample.mol);
    la::Matrix s = ints::overlap_matrix(bs);
    la::Matrix x = la::canonical_orthogonalizer(s);
    la::Matrix d = scf::core_guess_density(h, x, sample.nocc);

    // Reference: the serial *scalar* ERI path (batch capacity 0).
    scf::SerialFockBuilder scalar(eri, screen, /*batch_capacity=*/0);
    la::Matrix g_ref(bs.nbf(), bs.nbf());
    scalar.build(d, g_ref);
    const std::size_t ref_quartets = scalar.last_quartets_computed();
    ++rep.engines_run;
    if (ref_quartets != rep.survivors) {
      std::ostringstream os;
      os << "serial-scalar full: computed " << ref_quartets
         << " quartets, screening predicts " << rep.survivors;
      rep.failures.push_back(os.str());
    }

    la::Matrix g_sym = g_ref;
    g_sym.symmetrize();
    la::Matrix f = h;
    f += g_sym;
    la::SymEigResult eig = la::eigh_generalized(f, x);
    la::Matrix d_delta = scf::density_from_coefficients(eig.vectors,
                                                        sample.nocc);
    d_delta -= d;
    const scf::FockContext delta_ctx =
        scf::FockContext::from_density(bs, d_delta, /*incremental=*/true);
    la::Matrix g_ref_delta(bs.nbf(), bs.nbf());
    scalar.build(d_delta, g_ref_delta, delta_ctx);
    const std::size_t ref_quartets_delta = scalar.last_quartets_computed();
    const std::size_t ref_screened_delta = scalar.last_density_screened();
    ++rep.engines_run;
    if (ref_quartets_delta + ref_screened_delta > rep.survivors) {
      std::ostringstream os;
      os << "serial-scalar delta: computed " << ref_quartets_delta
         << " + density-screened " << ref_screened_delta
         << " exceeds the static survivor count " << rep.survivors;
      rep.failures.push_back(os.str());
    }

    // The batched ERI pipeline must be *bitwise* the scalar path (its
    // determinism contract), at a seed-drawn batch capacity so flush
    // boundaries roam too.
    {
      Rng r(derive_seed(sample.seed, 0xBA7C4));
      const std::array<std::size_t, 4> caps = {1, 3, 8, 64};
      const std::size_t cap = caps[r.below(caps.size())];
      scf::SerialFockBuilder batched(eri, screen, cap);
      la::Matrix g(bs.nbf(), bs.nbf());
      batched.build(d, g);
      ++rep.engines_run;
      std::ostringstream tag;
      tag << "serial-batched[cap" << cap << "]";
      core::UlpComparison cmp = core::compare_bit_comparable(g, g_ref, 0);
      if (!cmp.ok) {
        rep.failures.push_back(
            core::describe_ulp_failure(cmp, tag.str() + " full vs scalar"));
      }
      g.set_zero();
      batched.build(d_delta, g, delta_ctx);
      ++rep.engines_run;
      cmp = core::compare_bit_comparable(g, g_ref_delta, 0);
      if (!cmp.ok) {
        rep.failures.push_back(
            core::describe_ulp_failure(cmp, tag.str() + " delta vs scalar"));
      }
      if (batched.last_quartets_computed() != ref_quartets_delta) {
        std::ostringstream os;
        os << tag.str() << " delta computed "
           << batched.last_quartets_computed() << " quartets, scalar "
           << ref_quartets_delta;
        rep.failures.push_back(os.str());
      }
    }

    // The four parallel builders under the rank/thread/schedule sweep.
    const std::array<core::ScfAlgorithm, 4> algs = {
        core::ScfAlgorithm::kMpiOnly, core::ScfAlgorithm::kPrivateFock,
        core::ScfAlgorithm::kSharedFock, core::ScfAlgorithm::kDistFock};
    for (core::ScfAlgorithm alg : algs) {
      for (const SweepConfig& cfg : draw_configs(alg, sample.seed, opt_)) {
        // Full build: ULP-bounded vs the scalar reference, and the
        // rank-summed quartet count must hit the static survivor count
        // exactly (every builder computes the identical quartet set).
        BuildOutcome full = run_build(cfg, eri, screen, bs.nbf(), d,
                                      scf::FockContext{});
        ++rep.engines_run;
        if (!full.error.empty()) {
          rep.failures.push_back(cfg.label() + " full threw: " + full.error);
        } else {
          const core::UlpComparison cmp =
              core::compare_bit_comparable(full.g, g_ref, opt_.max_ulps);
          if (!cmp.ok) {
            rep.failures.push_back(
                core::describe_ulp_failure(cmp, cfg.label() + " full"));
          } else if (cmp.worst_ulps > rep.worst_ulps) {
            rep.worst_ulps = cmp.worst_ulps;
          }
          if (full.quartets != rep.survivors) {
            std::ostringstream os;
            os << cfg.label() << " full: rank-summed quartets "
               << full.quartets << " != static survivors " << rep.survivors;
            rep.failures.push_back(os.str());
          }
        }

        // Incremental build: same contract against the delta reference,
        // and the computed-set identity -- the screening cascade is
        // shared, so the rank-summed computed and density-screened counts
        // must match the serial scalar's exactly.
        BuildOutcome delta = run_build(cfg, eri, screen, bs.nbf(), d_delta,
                                       delta_ctx);
        ++rep.engines_run;
        if (!delta.error.empty()) {
          rep.failures.push_back(cfg.label() +
                                 " delta threw: " + delta.error);
        } else {
          const core::UlpComparison cmp = core::compare_bit_comparable(
              delta.g, g_ref_delta, opt_.max_ulps);
          if (!cmp.ok) {
            rep.failures.push_back(
                core::describe_ulp_failure(cmp, cfg.label() + " delta"));
          } else if (cmp.worst_ulps > rep.worst_ulps) {
            rep.worst_ulps = cmp.worst_ulps;
          }
          if (delta.quartets != ref_quartets_delta) {
            std::ostringstream os;
            os << cfg.label() << " delta: rank-summed quartets "
               << delta.quartets << " != serial " << ref_quartets_delta;
            rep.failures.push_back(os.str());
          }
          if (delta.density_screened != ref_screened_delta) {
            std::ostringstream os;
            os << cfg.label() << " delta: rank-summed density-screened "
               << delta.density_screened << " != serial "
               << ref_screened_delta;
            rep.failures.push_back(os.str());
          }
        }
      }
    }

    if (opt_.symmetry_audit) {
      symmetry_audit(bs, eri, screen, sample.seed, /*max_quartets=*/2,
                     rep.failures);
    }
  } catch (const std::exception& e) {
    rep.failures.push_back(std::string("harness threw: ") + e.what());
  }
  return rep;
}

}  // namespace mc::fuzz
