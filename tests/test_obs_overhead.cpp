// Observability overhead guarantees (DESIGN.md section 10.3). This file is
// compiled twice: as test_obs_overhead with the build default MC_OBS=1,
// and as test_obs_overhead_off with -DMC_OBS=0 (ctest prefix "obs_off.").
// The off build asserts -- at compile time -- that the trace/metrics RAII
// types collapse to empty no-ops and that MC_OBS_TRACE generates no code,
// so an MC_OBS=0 translation unit carries zero tracing on its hot path
// even though the prebuilt libraries keep the (runtime-gated) probes.
// Both builds assert the runtime guarantee: enabling tracing + metrics
// perturbs the SCF trajectory by exactly 0 ULP, because the probes only
// read clocks and counters and never touch a floating-point input.

#include <gtest/gtest.h>

#include <type_traits>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "la/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"

namespace mc::obs {
namespace {

#if !MC_OBS
// The MC_OBS=0 contract, enforced where it matters -- at compile time.
static_assert(std::is_same_v<ScopedTrace, ScopedTraceNoop>,
              "MC_OBS=0 must select the no-op trace type");
static_assert(std::is_empty_v<ScopedTrace>,
              "the no-op trace type must carry no state");
static_assert(std::is_same_v<ScopedChannelTimer, ScopedChannelTimerNoop>,
              "MC_OBS=0 must select the no-op channel timer");
static_assert(std::is_empty_v<ScopedChannelTimer>,
              "the no-op channel timer must carry no state");

TEST(ObsOff, TraceMacroGeneratesNoEvents) {
  // The libraries are built with MC_OBS=1, so the global trace machinery
  // exists and is queryable -- but this TU's MC_OBS_TRACE is a no-op even
  // with tracing force-enabled.
  const bool prev = trace_enabled();
  set_trace_enabled(true);
  reset_trace();
  {
    MC_OBS_TRACE("must-not-appear");
    MC_OBS_TRACE("must-not-appear-either");
  }
  set_trace_enabled(prev);
  EXPECT_EQ(trace_event_count(), 0u);
}
#else
TEST(ObsOn, TraceMacroRecords) {
  const bool prev = trace_enabled();
  set_trace_enabled(true);
  reset_trace();
  { MC_OBS_TRACE("appears"); }
  set_trace_enabled(prev);
  EXPECT_EQ(trace_event_count(), 1u);
}
#endif

/// Benzene/STO-3G SCF prefix (4 iterations, the checks don't need
/// convergence); returns the last iteration's total energy.
double benzene_energy_prefix() {
  auto mol = chem::builders::benzene();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-10);
  scf::SerialFockBuilder builder(eri, screen);
  scf::ScfOptions opt;
  opt.max_iterations = 4;
  return scf::run_scf(mol, bs, builder, opt).energy;
}

TEST(ObsOverhead, TracingPerturbsBenzeneEnergyByZeroUlp) {
  const bool prev_trace = trace_enabled();
  const bool prev_metrics = metrics_enabled();

  set_trace_enabled(false);
  set_metrics_enabled(false);
  const double e_off = benzene_energy_prefix();

  set_trace_enabled(true);
  set_metrics_enabled(true);
  reset_trace();
  reset_metrics();
  const double e_on = benzene_energy_prefix();

  set_trace_enabled(prev_trace);
  set_metrics_enabled(prev_metrics);

  EXPECT_EQ(la::ulp_distance(e_off, e_on), 0u)
      << "tracing must not perturb the SCF numerics: " << e_off << " vs "
      << e_on;
  EXPECT_EQ(e_off, e_on);
}

}  // namespace
}  // namespace mc::obs
