// Incremental delta-density Fock builds (DESIGN.md section 9): the
// precomputed screened pair lists must cover exactly the statically
// surviving quartet set, the density-weighted bound must only ever drop
// below-threshold contributions, and an incremental SCF -- including
// forced mid-run full rebuilds -- must converge to the full-rebuild energy
// while computing measurably fewer quartets by the final iteration.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "core/parallel_scf.hpp"
#include "fock_fixture.hpp"
#include "scf/stored_integrals.hpp"

namespace mc::core {
namespace {

using Quartet = std::tuple<std::size_t, std::size_t, std::size_t,
                           std::size_t>;

std::set<Quartet> quartets_from_pairs(
    const ints::Screening& screen,
    const std::vector<ints::ScreenedPair>& pairs) {
  std::set<Quartet> out;
  for (const ints::ScreenedPair& pr : pairs) {
    scf::for_each_kl(pr.i, pr.j, [&](std::size_t k, std::size_t l) {
      if (screen.keep(pr.i, pr.j, k, l)) out.insert({pr.i, pr.j, k, l});
    });
  }
  return out;
}

std::set<Quartet> quartets_canonical(const ints::Screening& screen) {
  std::set<Quartet> out;
  for (std::size_t i = 0; i < screen.nshells(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      scf::for_each_kl(i, j, [&](std::size_t k, std::size_t l) {
        if (screen.keep(i, j, k, l)) out.insert({i, j, k, l});
      });
    }
  }
  return out;
}

// Benzene is the smallest built-in system with genuinely distant shell
// pairs (small Schwarz products), which both static and density-weighted
// screening need to show any effect; share one fixture across those tests.
FockFixture& benzene_fx() {
  static FockFixture fx(chem::builders::benzene(), "STO-3G");
  return fx;
}

// ---- Pair-list structure ----

TEST(PairLists, CompactionCoversExactlyTheSurvivingQuartetSet) {
  const FockFixture& fx = benzene_fx();
  const auto ref = quartets_canonical(fx.screen);
  ASSERT_EQ(ref.size(), fx.screen.count_surviving_quartets());
  // Benzene must actually screen something, or this test is vacuous.
  ASSERT_LT(ref.size(), fx.screen.total_quartets());

  EXPECT_EQ(quartets_from_pairs(fx.screen, fx.screen.sorted_pairs()), ref);
  EXPECT_EQ(quartets_from_pairs(fx.screen, fx.screen.bra_grouped_pairs()),
            ref);
}

TEST(PairLists, SortedDescendingWithDeterministicTies) {
  FockFixture fx(chem::builders::water(), "6-31G");
  const auto& pairs = fx.screen.sorted_pairs();
  ASSERT_FALSE(pairs.empty());
  std::set<std::size_t> seen;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    EXPECT_TRUE(seen.insert(pairs[p].canonical).second) << "dup pair";
    EXPECT_GE(pairs[p].i, pairs[p].j);
    EXPECT_EQ(pairs[p].canonical,
              pairs[p].i * (pairs[p].i + 1) / 2 + pairs[p].j);
    EXPECT_DOUBLE_EQ(pairs[p].q, fx.screen.q(pairs[p].i, pairs[p].j));
    if (p > 0) {
      const bool descending =
          pairs[p - 1].q > pairs[p].q ||
          (pairs[p - 1].q == pairs[p].q &&
           pairs[p - 1].canonical < pairs[p].canonical);
      EXPECT_TRUE(descending) << "order violated at position " << p;
    }
  }
}

TEST(PairLists, BraGroupedKeepsEachShellContiguous) {
  const FockFixture& fx = benzene_fx();
  const auto& pairs = fx.screen.bra_grouped_pairs();
  ASSERT_FALSE(pairs.empty());
  std::set<std::size_t> closed_groups;
  std::size_t current = pairs.front().i;
  for (const auto& pr : pairs) {
    if (pr.i != current) {
      EXPECT_TRUE(closed_groups.insert(current).second)
          << "bra shell " << current << " split into multiple groups";
      current = pr.i;
    }
  }
  EXPECT_TRUE(closed_groups.insert(current).second);
}

TEST(PairLists, DecodeTableMatchesUnpackPair) {
  FockFixture fx(chem::builders::water(), "6-31G");
  const std::size_t ns = fx.screen.nshells();
  for (std::size_t p = 0; p < ns * (ns + 1) / 2; ++p) {
    std::size_t i, j;
    scf::unpack_pair(p, i, j);
    EXPECT_EQ(fx.screen.pair_shells(p), std::make_pair(i, j));
  }
}

// ---- Density-weighted screening ----

TEST(WeightedScreening, ContextBlockNormsMatchDensity) {
  FockFixture fx(chem::builders::water(), "6-31G");
  const auto& ctx = fx.delta_ctx;
  ASSERT_TRUE(ctx.weighted());
  EXPECT_TRUE(ctx.incremental);
  EXPECT_EQ(ctx.nshells, fx.bs.nshells());
  double mx = 0.0;
  for (std::size_t a = 0; a < ctx.nshells; ++a) {
    for (std::size_t b = 0; b < ctx.nshells; ++b) {
      EXPECT_DOUBLE_EQ(ctx.pair_dmax(a, b), ctx.pair_dmax(b, a));
      mx = std::max(mx, ctx.pair_dmax(a, b));
    }
  }
  EXPECT_DOUBLE_EQ(ctx.dmax_max, mx);
  EXPECT_GT(mx, 0.0);
}

TEST(WeightedScreening, WeightedKeptIsSubsetOfStaticKept) {
  // Builders check the static bound first, so the computed set under any
  // context is a subset of the static survivors; verify the bound itself
  // honors that containment for the fixture's delta context.
  FockFixture fx(chem::builders::water(), "6-31G");
  const auto& ctx = fx.delta_ctx;
  std::size_t weighted_kept = 0, static_kept = 0;
  for (std::size_t i = 0; i < fx.bs.nshells(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      scf::for_each_kl(i, j, [&](std::size_t k, std::size_t l) {
        const bool stat = fx.screen.keep(i, j, k, l);
        const bool weighted =
            stat && fx.screen.keep(i, j, k, l, ctx.quartet_dmax(i, j, k, l),
                                   ctx.threshold_scale);
        static_kept += stat;
        weighted_kept += weighted;
        EXPECT_LE(weighted, stat);
      });
    }
  }
  EXPECT_LE(weighted_kept, static_kept);
  EXPECT_GT(weighted_kept, 0u);
}

TEST(WeightedScreening, PairPrescreenNeverDropsASurvivingQuartet) {
  // The pair-level bound q_ij * qmax * 4*dmax_max must dominate every
  // quartet-level bound under that pair -- a pair the prescreen kills must
  // have no weighted-surviving quartet.
  const FockFixture& fx = benzene_fx();
  const auto& ctx = fx.delta_ctx;
  for (const auto& pr : fx.screen.sorted_pairs()) {
    if (fx.screen.keep_pair(pr.i, pr.j, 4.0 * ctx.dmax_max,
                            ctx.threshold_scale)) {
      continue;
    }
    scf::for_each_kl(pr.i, pr.j, [&](std::size_t k, std::size_t l) {
      EXPECT_FALSE(fx.screen.keep(pr.i, pr.j, k, l,
                                  ctx.quartet_dmax(pr.i, pr.j, k, l),
                                  ctx.threshold_scale));
    });
  }
}

TEST(WeightedScreening, SerialWeightedDeltaMatchesUnweightedDelta) {
  // Density-weighted screening may only drop below-threshold contributions:
  // the weighted delta skeleton must match the unweighted one to a bound
  // set by the screening threshold, far above rounding.
  const FockFixture& fx = benzene_fx();
  scf::SerialFockBuilder serial(fx.eri, fx.screen);
  la::Matrix g_unweighted(fx.bs.nbf(), fx.bs.nbf());
  serial.build(fx.d_delta, g_unweighted);  // trivial ctx: static bound only
  EXPECT_LT(fx.g_ref_delta.max_abs_diff(g_unweighted), 1e-8);

  // The fixture's first-iteration delta is too large for the weighted
  // bound to bite; a near-convergence-sized delta (scaled down to ~1e-8)
  // makes screening fire, and the weighted result must still track the
  // unweighted one within the screened-error budget.
  la::Matrix d_small = fx.d_delta;
  d_small *= 1e-8;
  const scf::FockContext small_ctx =
      scf::FockContext::from_density(fx.bs, d_small, /*incremental=*/true);
  la::Matrix g_small_unweighted(fx.bs.nbf(), fx.bs.nbf());
  la::Matrix g_small_weighted(fx.bs.nbf(), fx.bs.nbf());
  serial.build(d_small, g_small_unweighted);
  serial.build(d_small, g_small_weighted, small_ctx);
  EXPECT_GT(serial.last_density_screened(), 0u);
  EXPECT_LT(g_small_weighted.max_abs_diff(g_small_unweighted), 1e-10);
}

TEST(WeightedScreening, BatchedEngineScreensIdenticallyToScalar) {
  // The batched ERI pipeline queues quartets *after* every screening
  // decision, so the scalar (batch capacity 0) and batched serial builders
  // must agree exactly: same pair/static/density-weighted skip counters,
  // same surviving-quartet count, and -- since the batch digests in
  // discovery order with bitwise-identical integrals -- the same G to the
  // bit. Run on a near-convergence delta so the density-weighted bound
  // actually fires.
  const FockFixture& fx = benzene_fx();
  la::Matrix d_small = fx.d_delta;
  d_small *= 1e-8;
  const scf::FockContext small_ctx =
      scf::FockContext::from_density(fx.bs, d_small, /*incremental=*/true);

  scf::SerialFockBuilder scalar(fx.eri, fx.screen, /*batch_capacity=*/0);
  scf::SerialFockBuilder batched(fx.eri, fx.screen);
  la::Matrix g_scalar(fx.bs.nbf(), fx.bs.nbf());
  la::Matrix g_batched(fx.bs.nbf(), fx.bs.nbf());
  scalar.build(d_small, g_scalar, small_ctx);
  batched.build(d_small, g_batched, small_ctx);

  EXPECT_GT(scalar.last_density_screened(), 0u);
  EXPECT_EQ(batched.last_density_screened(), scalar.last_density_screened());
  EXPECT_EQ(batched.last_static_screened(), scalar.last_static_screened());
  EXPECT_EQ(batched.last_quartets_computed(),
            scalar.last_quartets_computed());
  EXPECT_EQ(batched.last_pairs_claimed(), scalar.last_pairs_claimed());
  expect_bit_comparable(g_batched, g_scalar, 0,
                        "batched vs scalar serial delta exact");
}

// ---- Incremental equivalence across the parallel builders ----

TEST(IncrementalEquivalence, SingleRankMpiDeltaIsBitIdenticalToSerial) {
  FockFixture fx(chem::builders::water(), "6-31G");
  const la::Matrix g = build_distributed_delta(fx, 1, [&](par::Ddi& ddi) {
    return std::make_unique<FockBuilderMpi>(fx.eri, fx.screen, ddi);
  });
  expect_bit_comparable(g, fx.g_ref_delta, 0, "mpi delta r=1 exact");
}

TEST(IncrementalEquivalence, AllThreeBuildersMatchSerialDelta) {
  FockFixture fx(chem::builders::water(), "6-31G");
  const la::Matrix g_mpi =
      build_distributed_delta(fx, 2, [&](par::Ddi& ddi) {
        return std::make_unique<FockBuilderMpi>(fx.eri, fx.screen, ddi);
      });
  const la::Matrix g_priv =
      build_distributed_delta(fx, 2, [&](par::Ddi& ddi) {
        PrivateFockOptions opt;
        opt.nthreads = 2;
        return std::make_unique<FockBuilderPrivate>(fx.eri, fx.screen, ddi,
                                                    opt);
      });
  const la::Matrix g_sh =
      build_distributed_delta(fx, 2, [&](par::Ddi& ddi) {
        SharedFockOptions opt;
        opt.nthreads = 2;
        return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi,
                                                   opt);
      });
  expect_bit_comparable(g_mpi, fx.g_ref_delta, kMaxSkeletonUlps,
                        "mpi delta r=2");
  expect_bit_comparable(g_priv, fx.g_ref_delta, kMaxSkeletonUlps,
                        "private delta r=2 t=2");
  expect_bit_comparable(g_sh, fx.g_ref_delta, kMaxSkeletonUlps,
                        "shared delta r=2 t=2");
}

TEST(IncrementalEquivalence, DistDeltaMatchesSerial) {
  // The dist builder must contract the delta density through the identical
  // screening cascade: ULP-bounded at 2 ranks, bit-identical at 1.
  FockFixture fx(chem::builders::water(), "6-31G");
  const la::Matrix g = build_distributed_delta(fx, 2, [&](par::Ddi& ddi) {
    DistFockOptions opt;
    opt.tile_rows = 3;  // several tiles even on a small basis
    return std::make_unique<FockBuilderDist>(fx.eri, fx.screen, ddi, opt);
  });
  expect_bit_comparable(g, fx.g_ref_delta, kMaxSkeletonUlps, "dist delta r=2");

  const la::Matrix g1 = build_distributed_delta(fx, 1, [&](par::Ddi& ddi) {
    return std::make_unique<FockBuilderDist>(fx.eri, fx.screen, ddi);
  });
  expect_bit_comparable(g1, fx.g_ref_delta, 0, "dist delta r=1 exact");
}

TEST(IncrementalEquivalence, DistZeroTileShortcutSkipsFetchesExactly) {
  // A delta density that is nonzero only in the first shell block makes
  // every other row tile's block norms exactly zero, so the dist builder
  // must serve those tiles from the zero shortcut (no fetch) -- and the
  // result must still match a serial build of the same sparse delta.
  FockFixture fx(chem::builders::water(), "6-31G");
  const std::size_t nbf = fx.bs.nbf();
  la::Matrix d_sparse(nbf, nbf);
  const int n0 = fx.bs.shell(0).nfunc();
  for (int a = 0; a < n0; ++a) {
    for (int b = 0; b < n0; ++b) {
      d_sparse(static_cast<std::size_t>(a), static_cast<std::size_t>(b)) =
          fx.d(static_cast<std::size_t>(a), static_cast<std::size_t>(b));
    }
  }
  const scf::FockContext ctx =
      scf::FockContext::from_density(fx.bs, d_sparse, /*incremental=*/true);
  scf::SerialFockBuilder serial(fx.eri, fx.screen);
  la::Matrix g_ref(nbf, nbf);
  serial.build(d_sparse, g_ref, ctx);

  la::Matrix g(nbf, nbf);
  std::size_t zero_hits = 0;
  std::size_t misses = 0;
  std::mutex mu;
  par::run_spmd(2, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    DistFockOptions opt;
    opt.tile_rows = 3;
    FockBuilderDist builder(fx.eri, fx.screen, ddi, opt);
    la::Matrix mine(nbf, nbf);
    builder.build(d_sparse, mine, ctx);
    std::lock_guard<std::mutex> lk(mu);
    zero_hits += builder.last_zero_tile_hits();
    misses += builder.last_tile_cache_misses();
    if (comm.rank() == 0) g = mine;
  });
  expect_bit_comparable(g, g_ref, kMaxSkeletonUlps, "dist sparse delta r=2");
  EXPECT_GT(zero_hits, 0u) << "zero tiles should be served without fetching";
  // Only the tile holding shell 0's rows (plus any tile sharing it) can
  // miss; with 3-row tiles over this basis that is a strict subset.
  EXPECT_GT(zero_hits, misses);
}

// ---- Incremental SCF convergence ----

TEST(IncrementalScf, ConvergesToFullRebuildEnergy) {
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "6-31G");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-10);
  scf::SerialFockBuilder builder(eri, screen);

  scf::ScfOptions full_opt;
  full_opt.incremental_fock = false;
  scf::ScfResult full = scf::run_scf(mol, bs, builder, full_opt);
  ASSERT_TRUE(full.converged);

  scf::ScfOptions inc_opt;  // incremental on by default
  ASSERT_TRUE(inc_opt.incremental_fock);
  scf::ScfResult inc = scf::run_scf(mol, bs, builder, inc_opt);
  ASSERT_TRUE(inc.converged);

  EXPECT_NEAR(inc.energy, full.energy, inc_opt.energy_tolerance);
  // The run must actually have used delta builds.
  std::size_t delta_builds = 0;
  for (const auto& it : inc.history) delta_builds += !it.full_rebuild;
  EXPECT_GT(delta_builds, 0u);
  EXPECT_TRUE(inc.history.front().full_rebuild);
}

TEST(IncrementalScf, ForcedMidRunFullRebuildStaysOnTrack) {
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "6-31G");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-10);
  scf::SerialFockBuilder builder(eri, screen);

  scf::ScfOptions full_opt;
  full_opt.incremental_fock = false;
  scf::ScfResult full = scf::run_scf(mol, bs, builder, full_opt);
  ASSERT_TRUE(full.converged);

  scf::ScfOptions inc_opt;
  inc_opt.fock_rebuild_interval = 2;  // full, inc, inc, full, inc, inc, ...
  scf::ScfResult inc = scf::run_scf(mol, bs, builder, inc_opt);
  ASSERT_TRUE(inc.converged);
  EXPECT_NEAR(inc.energy, full.energy, inc_opt.energy_tolerance);

  // The reset policy must have fired mid-run at least once.
  std::size_t mid_run_fulls = 0;
  for (std::size_t it = 1; it < inc.history.size(); ++it) {
    mid_run_fulls += inc.history[it].full_rebuild;
  }
  EXPECT_GT(mid_run_fulls, 0u);
  // And the interval must be honored: never more than 2 consecutive deltas.
  int consecutive = 0;
  for (const auto& it : inc.history) {
    consecutive = it.full_rebuild ? 0 : consecutive + 1;
    EXPECT_LE(consecutive, inc_opt.fock_rebuild_interval);
  }
}

TEST(IncrementalScf, FinalIterationComputesFewerQuartetsThanFirst) {
  // Needs a molecule with genuinely small Schwarz products (distant shell
  // pairs) for the density-weighted bound to bite as the delta shrinks:
  // water is too compact (every quartet survives), benzene is not.
  auto mol = chem::builders::benzene();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-10);
  scf::SerialFockBuilder builder(eri, screen);

  scf::ScfResult inc = scf::run_scf(mol, bs, builder, {});
  ASSERT_TRUE(inc.converged);
  ASSERT_GE(inc.history.size(), 3u);
  const auto& first = inc.history.front();
  const auto& last = inc.history.back();
  EXPECT_LT(last.quartets_computed, first.quartets_computed);
  EXPECT_GT(last.density_screened, 0u);
  EXPECT_FALSE(last.full_rebuild);
}

TEST(IncrementalScf, DisablingIncrementalReproducesLegacyCounters) {
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-10);
  scf::SerialFockBuilder builder(eri, screen);

  scf::ScfOptions opt;
  opt.incremental_fock = false;
  scf::ScfResult r = scf::run_scf(mol, bs, builder, opt);
  ASSERT_TRUE(r.converged);
  for (const auto& it : r.history) {
    EXPECT_TRUE(it.full_rebuild);
    EXPECT_EQ(it.density_screened, 0u);
    EXPECT_EQ(it.quartets_computed, r.history.front().quartets_computed);
  }
}

TEST(IncrementalScf, ParallelIncrementalMatchesSerialFullRebuild) {
  auto mol = chem::builders::water();
  auto bs = basis::BasisSet::build(mol, "STO-3G");
  ints::EriEngine eri(bs);
  ints::Screening screen(eri, 1e-10);
  scf::SerialFockBuilder serial(eri, screen);
  scf::ScfOptions full_opt;
  full_opt.incremental_fock = false;
  scf::ScfResult ref = scf::run_scf(mol, bs, serial, full_opt);
  ASSERT_TRUE(ref.converged);

  for (auto alg : {ScfAlgorithm::kMpiOnly, ScfAlgorithm::kPrivateFock,
                   ScfAlgorithm::kSharedFock}) {
    ParallelScfConfig cfg;
    cfg.algorithm = alg;
    cfg.nranks = 2;
    cfg.nthreads = 2;
    cfg.basis = "STO-3G";
    ASSERT_TRUE(cfg.scf.incremental_fock);
    ParallelScfResult res = run_parallel_scf(mol, cfg);
    EXPECT_TRUE(res.scf.converged) << algorithm_name(alg);
    EXPECT_NEAR(res.scf.energy, ref.energy, 1e-8) << algorithm_name(alg);
    // The incremental machinery must have engaged in lockstep across the
    // SPMD team (divergent decisions would deadlock the collectives).
    // Water is too compact for the weighted bound to drop quartets -- the
    // reduction itself is asserted on benzene below.
    std::size_t delta_builds = 0;
    for (const auto& it : res.scf.history) delta_builds += !it.full_rebuild;
    EXPECT_GT(delta_builds, 0u) << algorithm_name(alg);
    EXPECT_TRUE(res.scf.history.front().full_rebuild) << algorithm_name(alg);
  }
}

TEST(IncrementalScf, ParallelBenzeneScreensQuartetsByConvergence) {
  // Distributed counterpart of FinalIterationComputesFewerQuartetsThanFirst:
  // rank-summed counters from the shared-Fock build must show the weighted
  // bound dropping quartets as the SPMD SCF converges.
  auto mol = chem::builders::benzene();
  ParallelScfConfig cfg;
  cfg.algorithm = ScfAlgorithm::kSharedFock;
  cfg.nranks = 2;
  cfg.nthreads = 2;
  cfg.basis = "STO-3G";
  ParallelScfResult res = run_parallel_scf(mol, cfg);
  ASSERT_TRUE(res.scf.converged);
  EXPECT_LT(res.scf.history.back().quartets_computed,
            res.scf.history.front().quartets_computed);
  EXPECT_GT(res.scf.history.back().density_screened, 0u);
  EXPECT_FALSE(res.scf.history.back().full_rebuild);
}

// ---- Trivial-context compatibility of the remaining builders ----

TEST(IncrementalCompat, StoredBuilderAcceptsContexts) {
  FockFixture fx(chem::builders::water(), "STO-3G");
  scf::AoIntegralTensor tensor(fx.eri, fx.screen);
  scf::StoredFockBuilder stored(tensor, fx.bs);
  la::Matrix g2(fx.bs.nbf(), fx.bs.nbf());
  la::Matrix g3(fx.bs.nbf(), fx.bs.nbf());
  stored.build(fx.d, g2);
  stored.build(fx.d, g3, fx.delta_ctx);  // ctx accepted, ignored
  expect_bit_comparable(g2, g3, 0, "stored ctx-insensitive");
}

}  // namespace
}  // namespace mc::core
