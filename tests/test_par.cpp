// Tests for the minimpi SPMD runtime: barrier, collectives, the DDI
// dynamic-load-balance counter, point-to-point, and failure propagation.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <numeric>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "la/matrix.hpp"
#include "par/ddi.hpp"
#include "par/runtime.hpp"
#include "par/work_stealing.hpp"

namespace mc::par {
namespace {

class ParTest : public ::testing::TestWithParam<int> {};

TEST_P(ParTest, RanksSeeCorrectSizeAndDistinctIds) {
  const int n = GetParam();
  std::mutex mu;
  std::set<int> seen;
  run_spmd(n, [&](Comm& comm) {
    EXPECT_EQ(comm.size(), n);
    std::lock_guard<std::mutex> lk(mu);
    seen.insert(comm.rank());
  });
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), n - 1);
}

TEST_P(ParTest, AllreduceSumsAcrossRanks) {
  const int n = GetParam();
  run_spmd(n, [&](Comm& comm) {
    std::vector<double> data(37);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = comm.rank() + 1.0 + static_cast<double>(i);
    }
    comm.allreduce_sum(data.data(), data.size());
    const double ranksum = n * (n + 1) / 2.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_DOUBLE_EQ(data[i], ranksum + n * static_cast<double>(i));
    }
  });
}

TEST_P(ParTest, AllreduceMax) {
  const int n = GetParam();
  run_spmd(n, [&](Comm& comm) {
    const double v = 1.0 + comm.rank();
    EXPECT_DOUBLE_EQ(comm.allreduce_max(v), static_cast<double>(n));
    // Repeated use must re-initialize correctly.
    EXPECT_DOUBLE_EQ(comm.allreduce_max(0.5), 0.5);
  });
}

TEST_P(ParTest, BroadcastDistributesRootData) {
  const int n = GetParam();
  const int root = n - 1;
  run_spmd(n, [&](Comm& comm) {
    std::vector<double> data(8, static_cast<double>(comm.rank()));
    comm.broadcast(data.data(), data.size(), root);
    for (double v : data) EXPECT_DOUBLE_EQ(v, static_cast<double>(root));
  });
}

TEST_P(ParTest, DlbCounterHandsOutEachIndexExactlyOnce) {
  const int n = GetParam();
  const long ntasks = 100;
  std::mutex mu;
  std::vector<long> claimed;
  run_spmd(n, [&](Comm& comm) {
    comm.dlb_reset();
    std::vector<long> mine;
    for (;;) {
      const long task = comm.dlb_next();
      if (task >= ntasks) break;
      mine.push_back(task);
    }
    std::lock_guard<std::mutex> lk(mu);
    claimed.insert(claimed.end(), mine.begin(), mine.end());
  });
  std::sort(claimed.begin(), claimed.end());
  ASSERT_EQ(claimed.size(), static_cast<std::size_t>(ntasks));
  for (long i = 0; i < ntasks; ++i) EXPECT_EQ(claimed[static_cast<std::size_t>(i)], i);
}

TEST_P(ParTest, DlbResetRestartsAtZero) {
  const int n = GetParam();
  run_spmd(n, [&](Comm& comm) {
    comm.dlb_reset();
    comm.dlb_next();
    comm.dlb_next();
    comm.dlb_reset();
    std::atomic<long>* dummy = nullptr;
    (void)dummy;
    const long t = comm.dlb_next();
    EXPECT_LT(t, static_cast<long>(comm.size()));  // fresh counter
    comm.barrier();
  });
}

TEST_P(ParTest, SendRecvRoundTrip) {
  const int n = GetParam();
  if (n < 2) GTEST_SKIP() << "needs at least two ranks";
  run_spmd(n, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int r = 1; r < comm.size(); ++r) {
        std::vector<double> msg = {static_cast<double>(r), 42.0};
        comm.send(r, /*tag=*/7, msg.data(), msg.size());
      }
      // Collect replies (any order).
      double total = 0.0;
      for (int r = 1; r < comm.size(); ++r) {
        auto reply = comm.recv(r, /*tag=*/8);
        ASSERT_EQ(reply.size(), 1u);
        total += reply[0];
      }
      EXPECT_DOUBLE_EQ(total, (n - 1) * 43.0 + (n - 1) * n / 2.0 - (n - 1));
    } else {
      auto msg = comm.recv(0, 7);
      ASSERT_EQ(msg.size(), 2u);
      const double reply = msg[0] + msg[1];
      comm.send(0, 8, &reply, 1);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, ParTest, ::testing::Values(1, 2, 4, 7));

TEST(ParRuntime, ExceptionInOneRankPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      run_spmd(4,
               [&](Comm& comm) {
                 if (comm.rank() == 2) {
                   throw mc::Error("rank 2 exploded");
                 }
                 // Other ranks head into a barrier; the abort must wake them.
                 // mc-lint: allow(MC-COLL-001): rank 2 throws by design
                 comm.barrier();
                 // mc-lint: allow(MC-COLL-001): rank 2 throws by design
                 comm.barrier();
               }),
      mc::Error);
}

TEST(ParRuntime, ExceptionWakesBlockedRecv) {
  EXPECT_THROW(run_spmd(2,
                        [&](Comm& comm) {
                          if (comm.rank() == 0) {
                            throw mc::Error("boom");
                          }
                          (void)comm.recv(0, 1);  // never sent
                        }),
               mc::Error);
}

TEST(ParRuntime, NestedJobsRejected) {
  EXPECT_THROW(run_spmd(2,
                        [&](Comm& comm) {
                          if (comm.rank() == 0) {
                            run_spmd(1, [](Comm&) {});
                          }
                          comm.barrier();
                        }),
               mc::Error);
}

TEST(ParRuntime, MemoryAttributionPerRank) {
  MemoryTracker::instance().reset();
  run_spmd(3, [&](Comm& comm) {
    la::Matrix m(10, 10, "fock");
    comm.barrier();
    // Every rank sees its own allocation attributed to itself.
    EXPECT_EQ(MemoryTracker::instance().bytes(comm.rank(), "fock"),
              100 * sizeof(double));
    comm.barrier();
  });
  // All released after the job.
  EXPECT_EQ(MemoryTracker::instance().total_bytes(), 0u);
  MemoryTracker::instance().reset();
}


// ---- Shared-object blackboard ----

TEST(Blackboard, AllRanksSeeTheSameObject) {
  std::mutex mu;
  std::set<void*> pointers;
  run_spmd(4, [&](Comm& comm) {
    auto obj = comm.get_or_create_shared<std::atomic<long>>("counter", 0L);
    obj->fetch_add(1);
    {
      std::lock_guard<std::mutex> lk(mu);
      pointers.insert(obj.get());
    }
    comm.barrier();
    EXPECT_EQ(obj->load(), 4);
  });
  EXPECT_EQ(pointers.size(), 1u);  // one shared instance
}

TEST(Blackboard, DistinctKeysAreDistinctObjects) {
  run_spmd(2, [&](Comm& comm) {
    auto a = comm.get_or_create_shared<std::atomic<long>>("a", 0L);
    auto b = comm.get_or_create_shared<std::atomic<long>>("b", 100L);
    EXPECT_NE(a.get(), static_cast<void*>(b.get()));
    EXPECT_EQ(b->load(), 100);
    comm.barrier();
    if (comm.rank() == 0) comm.free_shared("a");
    comm.barrier();
    // Recreation after free yields a fresh object.
    auto a2 = comm.get_or_create_shared<std::atomic<long>>("a", 7L);
    EXPECT_EQ(a2->load(), 7);
  });
}

// ---- Work stealing ----

TEST(WorkStealing, EveryTaskIssuedExactlyOnce) {
  const long ntasks = 500;
  std::mutex mu;
  std::vector<long> claimed;
  run_spmd(4, [&](Comm& comm) {
    WorkStealingScheduler sched(comm, "ws-test", ntasks);
    std::vector<long> mine;
    for (long t = sched.next(); t >= 0; t = sched.next()) {
      mine.push_back(t);
    }
    sched.release();
    std::lock_guard<std::mutex> lk(mu);
    claimed.insert(claimed.end(), mine.begin(), mine.end());
  });
  std::sort(claimed.begin(), claimed.end());
  ASSERT_EQ(claimed.size(), static_cast<std::size_t>(ntasks));
  for (long t = 0; t < ntasks; ++t) {
    EXPECT_EQ(claimed[static_cast<std::size_t>(t)], t);
  }
}

TEST(WorkStealing, SlowRankGetsRobbed) {
  // Rank 0 sleeps per task; the others must steal from its slice so the
  // schedule still drains, and at least one steal is recorded.
  const long ntasks = 64;
  std::atomic<long> total_steals{0};
  run_spmd(4, [&](Comm& comm) {
    WorkStealingScheduler sched(comm, "ws-slow", ntasks);
    for (long t = sched.next(); t >= 0; t = sched.next()) {
      if (comm.rank() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    }
    total_steals += sched.steals();
    sched.release();
  });
  EXPECT_GT(total_steals.load(), 0);
}

TEST(WorkStealing, CountersUnitBehaviour) {
  StealingCounters c(2, 10);
  EXPECT_EQ(c.remaining(0), 5);
  EXPECT_EQ(c.remaining(1), 5);
  // Rank 0 drains its slice [0,5).
  for (long expect = 0; expect < 5; ++expect) {
    EXPECT_EQ(c.next(0), expect);
  }
  // Next claim steals from rank 1's slice [5,10).
  const long stolen = c.next(0);
  EXPECT_GE(stolen, 5);
  EXPECT_LT(stolen, 10);
  EXPECT_EQ(c.steals(0), 1);
  EXPECT_EQ(c.steals(1), 0);
  // Drain everything; then both get -1.
  while (c.next(0) >= 0) {
  }
  EXPECT_EQ(c.next(0), -1);
  EXPECT_EQ(c.next(1), -1);
}

TEST(WorkStealing, ZeroTasks) {
  StealingCounters c(3, 0);
  EXPECT_EQ(c.next(0), -1);
  EXPECT_EQ(c.next(2), -1);
}

TEST(Ddi, FacadeMapsToCommOperations) {
  run_spmd(3, [&](Comm& comm) {
    Ddi ddi(comm);
    EXPECT_EQ(ddi.size(), 3);
    EXPECT_EQ(ddi.rank(), comm.rank());

    la::Matrix m(4, 4);
    m.fill(1.0);
    ddi.gsumf(m);
    EXPECT_DOUBLE_EQ(m(2, 2), 3.0);

    la::Matrix b(2, 2);
    if (ddi.rank() == 0) b.fill(5.0);
    ddi.bcast(b, 0);
    EXPECT_DOUBLE_EQ(b(1, 1), 5.0);

    ddi.dlb_reset();
    const long t = ddi.dlbnext();
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 3);
    ddi.barrier();
  });
}

// ---- One-sided DDI windows ----

TEST_P(ParTest, WindowPutFenceGetRoundTrips) {
  const int n = GetParam();
  run_spmd(n, [&](Comm& comm) {
    Ddi ddi(comm);
    // Uneven layout: rank r owns 3 + r elements.
    std::vector<std::size_t> elems;
    for (int r = 0; r < n; ++r) elems.push_back(3 + static_cast<std::size_t>(r));
    Window w = ddi.create("t:roundtrip", elems);
    ASSERT_TRUE(w.valid());
    const std::size_t total = w.size();

    // Each rank puts its rank id into its own segment.
    std::vector<double> mine(elems[static_cast<std::size_t>(comm.rank())],
                             static_cast<double>(comm.rank()));
    ddi.put(w, w.rank_base(comm.rank()), mine.data(), mine.size());
    ddi.fence(w);

    // Every rank reads the whole window, including across segment
    // boundaries, and sees every peer's data.
    std::vector<double> all(total, -1.0);
    ddi.get(w, 0, all.data(), total);
    for (int r = 0; r < n; ++r) {
      for (std::size_t i = 0; i < elems[static_cast<std::size_t>(r)]; ++i) {
        EXPECT_DOUBLE_EQ(all[w.rank_base(r) + i], static_cast<double>(r));
      }
      EXPECT_EQ(w.owner_of(w.rank_base(r)), r);
    }
    ddi.fence(w);
    ddi.destroy(w);
    EXPECT_FALSE(w.valid());
  });
}

TEST_P(ParTest, WindowAccIsElementAtomicAcrossRanks) {
  const int n = GetParam();
  constexpr std::size_t kLen = 5000;  // spans multiple acc-lock stripes
  run_spmd(n, [&](Comm& comm) {
    Ddi ddi(comm);
    std::vector<std::size_t> elems(static_cast<std::size_t>(n), 0);
    elems[0] = kLen;  // all on rank 0: every acc is remote for ranks > 0
    Window w = ddi.create("t:acc", elems);
    ddi.fence(w);  // window starts zeroed

    // Every rank accumulates 1.0 everywhere, concurrently, with no fence
    // between the accs -- element atomicity is the only thing keeping the
    // count exact.
    std::vector<double> ones(kLen, 1.0);
    ddi.acc(w, 0, ones.data(), kLen);
    ddi.fence(w);

    std::vector<double> out(kLen, 0.0);
    ddi.get(w, 0, out.data(), kLen);
    for (std::size_t i = 0; i < kLen; ++i) {
      ASSERT_DOUBLE_EQ(out[i], static_cast<double>(n)) << "element " << i;
    }
    ddi.fence(w);
    ddi.destroy(w);
  });
}

TEST(Window, TrackedBytesAreChargedToTheOwningRank) {
  MemoryTracker::instance().reset();
  constexpr std::size_t kPerRank = 1000;
  run_spmd(3, [&](Comm& comm) {
    Ddi ddi(comm);
    std::vector<std::size_t> elems(3, kPerRank);
    Window w = ddi.create("t:bytes", elems);
    // Each rank's segment is charged to that rank, not to whichever rank
    // created the shared state first -- the property bench_table2_memory's
    // per-rank footprint assertion rests on.
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(MemoryTracker::instance().bytes(r, "ddi-window"),
                kPerRank * sizeof(double));
    }
    ddi.destroy(w);
    EXPECT_EQ(
        MemoryTracker::instance().bytes(comm.rank(), "ddi-window"), 0u);
    comm.barrier();
  });
}

TEST(Window, PutAndGetRangeCheck) {
  run_spmd(2, [&](Comm& comm) {
    Ddi ddi(comm);
    Window w = ddi.create("t:range", {4, 4});
    double buf[4] = {0, 0, 0, 0};
    if (comm.rank() == 0) {
      EXPECT_THROW(ddi.get(w, 6, buf, 4), mc::Error);  // runs off the end
      EXPECT_THROW(ddi.put(w, 8, buf, 1), mc::Error);  // starts past the end
    }
    ddi.fence(w);  // keep collectives matched after the local throws
    ddi.destroy(w);
  });
}

TEST(Window, ReusingAKeyAfterDestroyGetsFreshStorage) {
  run_spmd(2, [&](Comm& comm) {
    Ddi ddi(comm);
    {
      Window w = ddi.create("t:reuse", {2, 2});
      const double v = 7.0;
      ddi.put(w, static_cast<std::size_t>(comm.rank()) * 2, &v, 1);
      ddi.fence(w);
      ddi.destroy(w);
    }
    {
      Window w = ddi.create("t:reuse", {2, 2});
      double out[4] = {-1, -1, -1, -1};
      ddi.get(w, 0, out, 4);
      for (double x : out) EXPECT_DOUBLE_EQ(x, 0.0);  // fresh, zeroed
      ddi.fence(w);
      ddi.destroy(w);
    }
  });
}

}  // namespace
}  // namespace mc::par
