// Tests for the conventional (stored-integral) SCF mode and the MP2
// post-HF method -- including the hard literature anchor for MP2/STO-3G
// water from the standard tutorial reference values.

#include <gtest/gtest.h>

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "common/error.hpp"
#include "ints/one_electron.hpp"
#include "la/orthogonalizer.hpp"
#include "scf/mp2.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"
#include "scf/stored_integrals.hpp"

namespace mc::scf {
namespace {

// The standard tutorial geometry (see test_scf.cpp): STO-3G references
//   E_RHF = -74.942079928192,  E(2) = -0.049149636120.
chem::Molecule water_crawford() {
  chem::Molecule m;
  m.add_atom(8, 0.000000000000, -0.143225816552, 0.000000000000);
  m.add_atom(1, 1.638036840407, 1.136548822547, 0.000000000000);
  m.add_atom(1, -1.638036840407, 1.136548822547, 0.000000000000);
  return m;
}

struct Stack {
  chem::Molecule mol;
  basis::BasisSet bs;
  ints::EriEngine eri;
  ints::Screening screen;
  Stack(const chem::Molecule& m, const std::string& basis)
      : mol(m),
        bs(basis::BasisSet::build(m, basis)),
        eri(bs),
        screen(eri, 1e-12) {}
};

TEST(StoredIntegrals, TensorMatchesDirectBatches) {
  Stack st(chem::builders::water(), "STO-3G");
  AoIntegralTensor ao(st.eri, st.screen);
  EXPECT_EQ(ao.nbf(), 7u);
  // Spot-check every unique value against a direct computation.
  std::vector<double> batch;
  for (std::size_t si = 0; si < st.bs.nshells(); ++si) {
    for (std::size_t sj = 0; sj <= si; ++sj) {
      for (std::size_t sk = 0; sk < st.bs.nshells(); ++sk) {
        for (std::size_t sl = 0; sl <= sk; ++sl) {
          batch.assign(st.eri.batch_size(si, sj, sk, sl), 0.0);
          st.eri.compute(si, sj, sk, sl, batch.data());
          const auto& shi = st.bs.shell(si);
          const auto& shj = st.bs.shell(sj);
          const auto& shk = st.bs.shell(sk);
          const auto& shl = st.bs.shell(sl);
          std::size_t idx = 0;
          for (int a = 0; a < shi.nfunc(); ++a) {
            for (int b = 0; b < shj.nfunc(); ++b) {
              for (int c = 0; c < shk.nfunc(); ++c) {
                for (int d = 0; d < shl.nfunc(); ++d, ++idx) {
                  EXPECT_NEAR(
                      ao(shi.first_bf + a, shj.first_bf + b,
                         shk.first_bf + c, shl.first_bf + d),
                      batch[idx], 1e-12);
                }
              }
            }
          }
        }
      }
    }
  }
}

TEST(StoredIntegrals, PermutationalSymmetryByConstruction) {
  Stack st(chem::builders::water(), "STO-3G");
  AoIntegralTensor ao(st.eri, st.screen);
  EXPECT_DOUBLE_EQ(ao(1, 0, 3, 2), ao(0, 1, 3, 2));
  EXPECT_DOUBLE_EQ(ao(1, 0, 3, 2), ao(3, 2, 1, 0));
  EXPECT_DOUBLE_EQ(ao(1, 0, 3, 2), ao(2, 3, 0, 1));
}

TEST(StoredIntegrals, MemoryCapEnforced) {
  Stack st(chem::builders::water(), "STO-3G");
  EXPECT_THROW(AoIntegralTensor(st.eri, st.screen, /*max_doubles=*/10),
               mc::Error);
}

TEST(StoredIntegrals, ConventionalFockMatchesDirect) {
  Stack st(chem::builders::water(), "6-31G");
  AoIntegralTensor ao(st.eri, st.screen);

  la::Matrix h = ints::core_hamiltonian(st.bs, st.mol);
  la::Matrix s = ints::overlap_matrix(st.bs);
  la::Matrix x = la::canonical_orthogonalizer(s);
  la::Matrix d = core_guess_density(h, x, st.mol.nelectrons() / 2);

  la::Matrix g_direct(st.bs.nbf(), st.bs.nbf());
  SerialFockBuilder direct(st.eri, st.screen);
  direct.build(d, g_direct);
  g_direct.symmetrize();

  la::Matrix g_stored(st.bs.nbf(), st.bs.nbf());
  StoredFockBuilder stored(ao, st.bs);
  stored.build(d, g_stored);
  g_stored.symmetrize();

  EXPECT_NEAR(g_direct.max_abs_diff(g_stored), 0.0, 1e-10);
}

TEST(StoredIntegrals, ConventionalScfSameEnergyAsDirect) {
  Stack st(chem::builders::methane(), "STO-3G");
  AoIntegralTensor ao(st.eri, st.screen);
  StoredFockBuilder stored(ao, st.bs);
  SerialFockBuilder direct(st.eri, st.screen);
  ScfResult r1 = run_scf(st.mol, st.bs, stored);
  ScfResult r2 = run_scf(st.mol, st.bs, direct);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_NEAR(r1.energy, r2.energy, 1e-9);
}

// ---- MP2 ----

TEST(Mp2, WaterSto3gMatchesCrawfordReference) {
  Stack st(water_crawford(), "STO-3G");
  SerialFockBuilder builder(st.eri, st.screen);
  ScfOptions opt;
  opt.density_tolerance = 1e-10;
  opt.energy_tolerance = 1e-12;
  ScfResult hf = run_scf(st.mol, st.bs, builder, opt);
  ASSERT_TRUE(hf.converged);
  ASSERT_NEAR(hf.energy, -74.942079928192, 1e-6);

  AoIntegralTensor ao(st.eri, st.screen);
  Mp2Result mp2 = mp2_energy(ao, hf.mo_coefficients, hf.orbital_energies, 5,
                             hf.energy);
  EXPECT_NEAR(mp2.correlation_energy, -0.049149636120, 1e-6);
  EXPECT_NEAR(mp2.total_energy, hf.energy + mp2.correlation_energy, 1e-12);
}

TEST(Mp2, CorrelationEnergyIsNegativeAndSpinDecomposed) {
  Stack st(chem::builders::methane(), "STO-3G");
  SerialFockBuilder builder(st.eri, st.screen);
  ScfResult hf = run_scf(st.mol, st.bs, builder);
  ASSERT_TRUE(hf.converged);
  AoIntegralTensor ao(st.eri, st.screen);
  Mp2Result mp2 = mp2_energy(ao, hf.mo_coefficients, hf.orbital_energies, 5,
                             hf.energy);
  EXPECT_LT(mp2.correlation_energy, 0.0);
  EXPECT_LT(mp2.opposite_spin, 0.0);
  EXPECT_LE(mp2.same_spin, 1e-12);
  EXPECT_NEAR(mp2.correlation_energy, mp2.same_spin + mp2.opposite_spin,
              1e-12);
}

TEST(Mp2, FrozenCoreShrinksCorrelation) {
  Stack st(water_crawford(), "STO-3G");
  SerialFockBuilder builder(st.eri, st.screen);
  ScfResult hf = run_scf(st.mol, st.bs, builder);
  ASSERT_TRUE(hf.converged);
  AoIntegralTensor ao(st.eri, st.screen);
  Mp2Result all = mp2_energy(ao, hf.mo_coefficients, hf.orbital_energies, 5,
                             hf.energy, 0);
  Mp2Result fc = mp2_energy(ao, hf.mo_coefficients, hf.orbital_energies, 5,
                            hf.energy, 1);  // freeze O 1s
  EXPECT_LT(all.correlation_energy, fc.correlation_energy);
  EXPECT_LT(fc.correlation_energy, 0.0);
  // The O 1s core contributes little: the difference is small.
  EXPECT_LT(std::abs(all.correlation_energy - fc.correlation_energy), 0.01);
}

TEST(Mp2, NoVirtualsMeansZeroCorrelation) {
  // H2 in STO-3G has 2 orbitals / 1 occupied -> 1 virtual: nonzero. A
  // "minimal" edge: freeze the only occupied orbital -> zero correlation.
  Stack st(chem::builders::h2(), "STO-3G");
  SerialFockBuilder builder(st.eri, st.screen);
  ScfResult hf = run_scf(st.mol, st.bs, builder);
  AoIntegralTensor ao(st.eri, st.screen);
  Mp2Result frozen = mp2_energy(ao, hf.mo_coefficients,
                                hf.orbital_energies, 1, hf.energy, 1);
  EXPECT_DOUBLE_EQ(frozen.correlation_energy, 0.0);
  EXPECT_DOUBLE_EQ(frozen.total_energy, hf.energy);

  Mp2Result full = mp2_energy(ao, hf.mo_coefficients, hf.orbital_energies,
                              1, hf.energy, 0);
  EXPECT_LT(full.correlation_energy, 0.0);
}

TEST(Mp2, InvalidArgumentsThrow) {
  Stack st(chem::builders::h2(), "STO-3G");
  SerialFockBuilder builder(st.eri, st.screen);
  ScfResult hf = run_scf(st.mol, st.bs, builder);
  AoIntegralTensor ao(st.eri, st.screen);
  EXPECT_THROW(mp2_energy(ao, hf.mo_coefficients, hf.orbital_energies, 1,
                          hf.energy, 2),
               mc::Error);  // nfrozen > nocc
}

}  // namespace
}  // namespace mc::scf
