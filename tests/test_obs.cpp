// Observability-layer tests (DESIGN.md section 10): trace ring buffers and
// chrome-trace export, channel accumulators, the per-iteration metrics
// records, and the counter properties the profiling output relies on --
// per-thread quartet counters summing to the screening prediction, and
// rank-aggregated counters invariant under the rank count. The final test
// is the PR's acceptance criterion: a profiled benzene/STO-3G run emits a
// metrics stream whose per-rank quartet counts sum to the
// screening-predicted total, plus a chrome-trace JSON.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "chem/builders.hpp"
#include "core/parallel_scf.hpp"
#include "fock_fixture.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mc::core {
namespace {

/// Save/restore the global trace + metrics flags around a test so the
/// binary's tests stay order-independent.
struct ObsFlagGuard {
  bool trace = obs::trace_enabled();
  bool metrics = obs::metrics_enabled();
  ~ObsFlagGuard() {
    obs::set_trace_enabled(trace);
    obs::set_metrics_enabled(metrics);
  }
};

// --- trace -----------------------------------------------------------------

TEST(Trace, DisabledRecordsNothing) {
  ObsFlagGuard guard;
  obs::set_trace_enabled(false);
  obs::reset_trace();
  { MC_OBS_TRACE("should-not-appear"); }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(Trace, RecordsScopedEventsAndExportsChromeTrace) {
  ObsFlagGuard guard;
  obs::set_trace_enabled(true);
  obs::reset_trace();
  {
    MC_OBS_TRACE("outer-span");
    { MC_OBS_TRACE("inner-span"); }
  }
  obs::set_trace_enabled(false);
  EXPECT_EQ(obs::trace_event_count(), 2u);
  EXPECT_EQ(obs::trace_events_dropped(), 0u);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"outer-span\""), std::string::npos);
  EXPECT_NE(json.find("\"inner-span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);      // duration events
  EXPECT_NE(json.find("process_name"), std::string::npos);     // rank metadata
  EXPECT_EQ(json.back(), '\n');
  EXPECT_EQ(json[json.size() - 2], '}');
}

TEST(Trace, SpanDurationsAreNonNegativeAndOrdered) {
  ObsFlagGuard guard;
  obs::set_trace_enabled(true);
  obs::reset_trace();
  const std::uint64_t a = obs::monotonic_ns();
  { MC_OBS_TRACE("ordered"); }
  const std::uint64_t b = obs::monotonic_ns();
  EXPECT_LE(a, b);
  obs::set_trace_enabled(false);
  EXPECT_EQ(obs::trace_event_count(), 1u);
}

TEST(Trace, RingBufferWrapCountsDrops) {
  ObsFlagGuard guard;
  obs::set_trace_enabled(true);
  obs::reset_trace();
  // Well past the per-thread ring capacity: the newest events survive, the
  // overflow is reported instead of silently vanishing.
  constexpr int kEvents = 40000;
  for (int i = 0; i < kEvents; ++i) {
    MC_OBS_TRACE("wrap");
  }
  obs::set_trace_enabled(false);
  EXPECT_GT(obs::trace_events_dropped(), 0u);
  EXPECT_LT(obs::trace_event_count(), static_cast<std::size_t>(kEvents));
  EXPECT_EQ(obs::trace_event_count() + obs::trace_events_dropped(),
            static_cast<std::size_t>(kEvents));
}

// --- channel metrics -------------------------------------------------------

TEST(Metrics, ChannelAccumulationAndReset) {
  ObsFlagGuard guard;
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  obs::add_channel_ns(obs::Channel::kGsum, 3, 1500);
  obs::add_channel_ns(obs::Channel::kGsum, 3, 500);
  EXPECT_EQ(obs::channel_ns(obs::Channel::kGsum, 3), 2000u);
  EXPECT_DOUBLE_EQ(obs::channel_seconds(obs::Channel::kGsum, 3), 2e-6);
  EXPECT_EQ(obs::channel_ns(obs::Channel::kGsum, 4), 0u);
  EXPECT_EQ(obs::channel_ns(obs::Channel::kBarrier, 3), 0u);
  obs::reset_metrics();
  EXPECT_EQ(obs::channel_ns(obs::Channel::kGsum, 3), 0u);
}

TEST(Metrics, UnattributedAndOverflowRanksShareTheSpillSlot) {
  ObsFlagGuard guard;
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  obs::add_channel_ns(obs::Channel::kDlbWait, -1, 100);   // unattributed
  obs::add_channel_ns(obs::Channel::kDlbWait, 1000, 10);  // beyond the table
  EXPECT_EQ(obs::channel_ns(obs::Channel::kDlbWait, -1), 110u);
  EXPECT_EQ(obs::channel_ns(obs::Channel::kDlbWait, 1000), 110u);
  obs::reset_metrics();
}

TEST(Metrics, ScopedTimerIsInertWhenDisabled) {
  ObsFlagGuard guard;
  obs::set_metrics_enabled(true);
  obs::reset_metrics();
  obs::set_metrics_enabled(false);
  { obs::ScopedChannelTimer t(obs::Channel::kBarrier, 0); }
  EXPECT_EQ(obs::channel_ns(obs::Channel::kBarrier, 0), 0u);
}

TEST(Metrics, IterationJsonCarriesTheSchema) {
  obs::IterationRecord rec;
  rec.algorithm = "shared-fock";
  rec.nranks = 2;
  rec.nthreads = 2;
  rec.iteration = 3;
  rec.energy = -227.5;
  rec.full_rebuild = false;
  rec.quartets = 40;
  rec.screening_predicted_quartets = 42;
  obs::RankIterationMetrics r0;
  r0.rank = 0;
  r0.quartets = 10;
  r0.thread_quartets = {4, 6};
  obs::RankIterationMetrics r1;
  r1.rank = 1;
  r1.quartets = 30;
  r1.thread_quartets = {15, 15};
  rec.ranks = {r0, r1};

  EXPECT_DOUBLE_EQ(rec.load_imbalance(), 1.5);  // max 30 / mean 20

  const std::string json = obs::iteration_json(rec);
  EXPECT_NE(json.find("\"type\":\"scf_iteration\""), std::string::npos);
  EXPECT_NE(json.find("\"algorithm\":\"shared-fock\""), std::string::npos);
  EXPECT_NE(json.find("\"iter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"full_rebuild\":false"), std::string::npos);
  EXPECT_NE(json.find("\"screening_predicted_quartets\":42"),
            std::string::npos);
  EXPECT_NE(json.find("\"thread_quartets\":[4,6]"), std::string::npos);
  EXPECT_NE(json.find("\"thread_quartets\":[15,15]"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(Metrics, EmptyRecordHasUnitImbalance) {
  const obs::IterationRecord rec;
  EXPECT_DOUBLE_EQ(rec.load_imbalance(), 1.0);
}

// --- counter properties ----------------------------------------------------

const FockFixture& fixture() {
  static const FockFixture fx(chem::builders::water(), "6-31G");
  return fx;
}

struct BuildCounts {
  std::size_t quartets = 0;
  std::size_t static_screened = 0;
  std::size_t density_screened = 0;
  std::size_t thread_sum = 0;
  std::size_t pairs_claimed = 0;
};

/// Run one distributed build and return the rank-aggregated counters.
template <typename MakeBuilder>
BuildCounts count_distributed(const FockFixture& fx, int nranks, bool delta,
                              MakeBuilder&& make) {
  BuildCounts total;
  std::mutex mu;
  par::run_spmd(nranks, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    auto builder = make(ddi);
    la::Matrix g(fx.bs.nbf(), fx.bs.nbf());
    if (delta) {
      builder->build(fx.d_delta, g, fx.delta_ctx);
    } else {
      builder->build(fx.d, g);
    }
    std::lock_guard<std::mutex> lk(mu);
    total.quartets += builder->last_quartets_computed();
    total.static_screened += builder->last_static_screened();
    total.density_screened += builder->last_density_screened();
    total.pairs_claimed += builder->last_pairs_claimed();
    for (const std::size_t q : builder->last_thread_quartets()) {
      total.thread_sum += q;
    }
  });
  return total;
}

template <typename MakeBuilder>
void expect_rank_invariant(const char* what, MakeBuilder&& make) {
  const FockFixture& fx = fixture();
  for (const bool delta : {false, true}) {
    const BuildCounts one = count_distributed(fx, 1, delta, make);
    for (const int nranks : {2, 4}) {
      const BuildCounts many = count_distributed(fx, nranks, delta, make);
      const std::string ctx = std::string(what) +
                              (delta ? " (delta ctx, " : " (trivial ctx, ") +
                              std::to_string(nranks) + " ranks)";
      EXPECT_EQ(many.quartets, one.quartets) << ctx;
      EXPECT_EQ(many.static_screened, one.static_screened) << ctx;
      EXPECT_EQ(many.density_screened, one.density_screened) << ctx;
      EXPECT_EQ(many.thread_sum, many.quartets) << ctx;
    }
    EXPECT_EQ(one.thread_sum, one.quartets) << what;
  }
}

TEST(ObsCounters, SerialThreadSumMatchesScreeningPrediction) {
  const FockFixture& fx = fixture();
  scf::SerialFockBuilder builder(fx.eri, fx.screen);
  la::Matrix g(fx.bs.nbf(), fx.bs.nbf());
  builder.build(fx.d, g);
  const std::size_t predicted = fx.screen.count_surviving_quartets();
  EXPECT_EQ(builder.last_quartets_computed(), predicted);
  std::size_t thread_sum = 0;
  for (const std::size_t q : builder.last_thread_quartets()) thread_sum += q;
  EXPECT_EQ(thread_sum, predicted);
  EXPECT_EQ(builder.screening_predicted_quartets(), predicted);
}

TEST(ObsCounters, MpiThreadSumMatchesScreeningPrediction) {
  const FockFixture& fx = fixture();
  const BuildCounts c = count_distributed(fx, 1, false, [&](par::Ddi& ddi) {
    return std::make_unique<FockBuilderMpi>(fx.eri, fx.screen, ddi);
  });
  EXPECT_EQ(c.thread_sum, fx.screen.count_surviving_quartets());
  EXPECT_EQ(c.quartets, fx.screen.count_surviving_quartets());
}

TEST(ObsCounters, PrivateFockThreadSumMatchesScreeningPrediction) {
  const FockFixture& fx = fixture();
  const BuildCounts c = count_distributed(fx, 1, false, [&](par::Ddi& ddi) {
    PrivateFockOptions opt;
    opt.nthreads = 3;
    return std::make_unique<FockBuilderPrivate>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_EQ(c.thread_sum, fx.screen.count_surviving_quartets());
  EXPECT_EQ(c.quartets, fx.screen.count_surviving_quartets());
}

TEST(ObsCounters, SharedFockThreadSumMatchesScreeningPrediction) {
  const FockFixture& fx = fixture();
  const BuildCounts c = count_distributed(fx, 1, false, [&](par::Ddi& ddi) {
    SharedFockOptions opt;
    opt.nthreads = 3;
    return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi, opt);
  });
  EXPECT_EQ(c.thread_sum, fx.screen.count_surviving_quartets());
  EXPECT_EQ(c.quartets, fx.screen.count_surviving_quartets());
}

TEST(ObsCounters, MpiCountersInvariantUnderRankCount) {
  const FockFixture& fx = fixture();
  expect_rank_invariant("mpi-only", [&](par::Ddi& ddi) {
    return std::make_unique<FockBuilderMpi>(fx.eri, fx.screen, ddi);
  });
}

TEST(ObsCounters, PrivateFockCountersInvariantUnderRankCount) {
  const FockFixture& fx = fixture();
  expect_rank_invariant("private-fock", [&](par::Ddi& ddi) {
    PrivateFockOptions opt;
    opt.nthreads = 2;
    return std::make_unique<FockBuilderPrivate>(fx.eri, fx.screen, ddi, opt);
  });
}

TEST(ObsCounters, SharedFockCountersInvariantUnderRankCount) {
  const FockFixture& fx = fixture();
  expect_rank_invariant("shared-fock", [&](par::Ddi& ddi) {
    SharedFockOptions opt;
    opt.nthreads = 2;
    return std::make_unique<FockBuilderShared>(fx.eri, fx.screen, ddi, opt);
  });
}

// --- profile sessions ------------------------------------------------------

std::size_t extract_size(const std::string& s, const std::string& key,
                         std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = s.find(needle, from);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  return static_cast<std::size_t>(
      std::stoull(s.substr(pos + needle.size())));
}

std::vector<std::size_t> extract_all_sizes(const std::string& s,
                                           const std::string& key) {
  std::vector<std::size_t> out;
  const std::string needle = "\"" + key + "\":";
  for (std::size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + 1)) {
    out.push_back(static_cast<std::size_t>(
        std::stoull(s.substr(pos + needle.size()))));
  }
  return out;
}

std::vector<std::size_t> sum_of_each_thread_array(const std::string& s) {
  std::vector<std::size_t> sums;
  const std::string needle = "\"thread_quartets\":[";
  for (std::size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + 1)) {
    std::size_t p = pos + needle.size();
    std::size_t sum = 0;
    while (p < s.size() && s[p] != ']') {
      if (s[p] == ',') {
        ++p;
        continue;
      }
      std::size_t used = 0;
      sum += static_cast<std::size_t>(std::stoull(s.substr(p), &used));
      p += used;
    }
    sums.push_back(sum);
  }
  return sums;
}

TEST(Profile, SerialSessionEmitsMetricsAndRestoresFlags) {
  ObsFlagGuard guard;
  obs::set_trace_enabled(false);
  obs::set_metrics_enabled(false);
  const std::string base = ::testing::TempDir() + "mc_obs_serial";
  {
    auto mol = chem::builders::water();
    auto bs = basis::BasisSet::build(mol, "STO-3G");
    ints::EriEngine eri(bs);
    ints::Screening screen(eri, 1e-10);
    scf::SerialFockBuilder builder(eri, screen);
    scf::ScfOptions opt;
    opt.profile_path = base;
    const scf::ScfResult res = scf::run_scf(mol, bs, builder, opt);
    EXPECT_TRUE(res.converged);
  }
  // The session restored the flags it flipped on.
  EXPECT_FALSE(obs::trace_enabled());
  EXPECT_FALSE(obs::metrics_enabled());

  std::ifstream in(base + ".metrics.jsonl");
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line)));
  EXPECT_NE(line.find("\"algorithm\":\"serial\""), std::string::npos);
  EXPECT_NE(line.find("\"full_rebuild\":true"), std::string::npos);
  EXPECT_EQ(extract_size(line, "quartets"),
            extract_size(line, "screening_predicted_quartets"));

  std::ifstream trace(base + ".trace.json");
  ASSERT_TRUE(trace.good());
  std::stringstream buf;
  buf << trace.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buf.str().find("scf:iteration"), std::string::npos);
}

// The PR's acceptance criterion: a profiled benzene/STO-3G run emits (a) a
// metrics stream whose full-rebuild records satisfy
// sum(rank quartets) == total quartets == screening-predicted quartets and
// whose per-rank thread counters sum to the rank totals, and (b) a
// chrome-trace JSON with the per-algorithm spans.
TEST(Profile, ParallelBenzeneRunSatisfiesAcceptanceChecks) {
  ObsFlagGuard guard;
  const std::string base = ::testing::TempDir() + "mc_obs_accept";
  ParallelScfConfig cfg;
  cfg.algorithm = ScfAlgorithm::kSharedFock;
  cfg.nranks = 2;
  cfg.nthreads = 2;
  cfg.basis = "STO-3G";
  cfg.scf.max_iterations = 4;  // the checks don't need convergence
  cfg.scf.profile_path = base;
  const ParallelScfResult res =
      run_parallel_scf(chem::builders::benzene(), cfg);
  EXPECT_EQ(res.scf.iterations, 4);

  std::ifstream in(base + ".metrics.jsonl");
  ASSERT_TRUE(in.good());
  std::string line;
  int records = 0;
  while (std::getline(in, line)) {
    ++records;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_EQ(extract_size(line, "nranks"), 2u);

    const std::size_t total = extract_size(line, "quartets");
    const std::size_t ranks_start = line.find("\"ranks\":[");
    ASSERT_NE(ranks_start, std::string::npos);
    const std::string ranks = line.substr(ranks_start);
    const std::vector<std::size_t> per_rank =
        extract_all_sizes(ranks, "quartets");
    ASSERT_EQ(per_rank.size(), 2u);
    EXPECT_EQ(per_rank[0] + per_rank[1], total) << "record " << records;

    const std::vector<std::size_t> thread_sums =
        sum_of_each_thread_array(ranks);
    ASSERT_EQ(thread_sums.size(), 2u);
    EXPECT_EQ(thread_sums[0], per_rank[0]) << "record " << records;
    EXPECT_EQ(thread_sums[1], per_rank[1]) << "record " << records;

    if (line.find("\"full_rebuild\":true") != std::string::npos) {
      EXPECT_EQ(total, extract_size(line, "screening_predicted_quartets"))
          << "record " << records;
    }
  }
  EXPECT_EQ(records, 4);

  std::ifstream trace(base + ".trace.json");
  ASSERT_TRUE(trace.good());
  std::stringstream buf;
  buf << trace.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"fock:shared\""), std::string::npos);
  EXPECT_NE(json.find("\"fock:shared:ij_task\""), std::string::npos);
  EXPECT_NE(json.find("\"gsumf\""), std::string::npos);
  EXPECT_NE(json.find("\"scf:iteration\""), std::string::npos);
}

TEST(Profile, ParallelResultCarriesPerRankWaitTimes) {
  ObsFlagGuard guard;
  const std::string base = ::testing::TempDir() + "mc_obs_waits";
  ParallelScfConfig cfg;
  cfg.algorithm = ScfAlgorithm::kMpiOnly;
  cfg.nranks = 2;
  cfg.nthreads = 1;
  cfg.basis = "STO-3G";
  cfg.scf.max_iterations = 3;
  cfg.scf.profile_path = base;
  const ParallelScfResult res =
      run_parallel_scf(chem::builders::water(), cfg);
  ASSERT_EQ(res.dlb_wait_seconds_per_rank.size(), 2u);
  ASSERT_EQ(res.gsum_seconds_per_rank.size(), 2u);
  for (int r = 0; r < 2; ++r) {
    // Every rank claimed from the counter and hit the gsumf reduction at
    // least once per iteration, so both channels accumulated time.
    EXPECT_GT(res.dlb_wait_seconds_per_rank[static_cast<std::size_t>(r)],
              0.0);
    EXPECT_GT(res.gsum_seconds_per_rank[static_cast<std::size_t>(r)], 0.0);
  }
}

}  // namespace
}  // namespace mc::core
