// Unit tests for the common module: error macros, timers, memory tracking,
// table formatting.

#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace mc {
namespace {

TEST(Error, CheckThrowsWithMessage) {
  try {
    MC_CHECK(false, "something broke");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("something broke"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"),
              std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(MC_CHECK(1 + 1 == 2, "fine"));
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
  t.reset();
  EXPECT_LT(t.seconds(), 0.015);
}

TEST(Timer, ClockIsMonotonic) {
  // The timers must run on a steady clock: an NTP step during a timed
  // region would otherwise produce negative or wildly wrong durations
  // (the static_assert in timer.hpp enforces the same at compile time).
  EXPECT_TRUE(WallTimer::kIsSteady);
}

TEST(Timer, ScopedDurationsAreNonNegative) {
  for (int i = 0; i < 1000; ++i) {
    WallTimer t;
    EXPECT_GE(t.seconds(), 0.0);
  }
}

TEST(Timer, AccumTimerSumsLaps) {
  AccumTimer t;
  for (int i = 0; i < 3; ++i) {
    t.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t.stop();
  }
  EXPECT_EQ(t.laps(), 3);
  EXPECT_GE(t.total_seconds(), 0.010);
  t.reset();
  EXPECT_EQ(t.laps(), 0);
  EXPECT_EQ(t.total_seconds(), 0.0);
}

class MemoryTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { MemoryTracker::instance().reset(); }
  void TearDown() override { MemoryTracker::instance().reset(); }
};

TEST_F(MemoryTrackerTest, TracksPerRankAndCategory) {
  MemoryTracker& mt = MemoryTracker::instance();
  {
    RankScope scope(3);
    mt.add("fock", 1000);
    mt.add("density", 500);
  }
  mt.add("fock", 10);  // unattributed (rank -1)
  EXPECT_EQ(mt.rank_bytes(3), 1500u);
  EXPECT_EQ(mt.bytes(3, "fock"), 1000u);
  EXPECT_EQ(mt.bytes(-1, "fock"), 10u);
  EXPECT_EQ(mt.total_bytes(), 1510u);
}

TEST_F(MemoryTrackerTest, PeakTracksHighWaterMark) {
  MemoryTracker& mt = MemoryTracker::instance();
  mt.add("a", 100);
  mt.add("a", 200);
  mt.sub("a", 250);
  EXPECT_EQ(mt.total_bytes(), 50u);
  EXPECT_EQ(mt.peak_bytes(), 300u);
}

TEST_F(MemoryTrackerTest, CrossRankFreeDoesNotLeakTotal) {
  // Regression: a free larger than the calling rank's entry used to leave
  // total_ untouched for the unmatched part, so total_bytes() drifted
  // upward by the full allocation every SCF run. The free must drain the
  // category across ranks and mirror every released byte into total_.
  MemoryTracker& mt = MemoryTracker::instance();
  {
    RankScope s0(0);
    mt.add("buf", 60);
  }
  {
    RankScope s1(1);
    mt.add("buf", 60);
  }
  {
    RankScope s2(2);
    mt.sub("buf", 100);
  }
  EXPECT_EQ(mt.total_bytes(), 20u);
  EXPECT_EQ(mt.bytes(0, "buf") + mt.bytes(1, "buf"), 20u);
}

TEST_F(MemoryTrackerTest, OverFreeClampsToZero) {
  MemoryTracker& mt = MemoryTracker::instance();
  mt.add("a", 50);
  mt.sub("a", 60);  // 10 bytes genuinely unpaired: tolerated, clamped
  EXPECT_EQ(mt.total_bytes(), 0u);
  EXPECT_EQ(mt.bytes(-1, "a"), 0u);
  EXPECT_EQ(mt.rank_bytes(-1), 0u);
}

TEST_F(MemoryTrackerTest, ClampedFreesLeavePeakIntact) {
  MemoryTracker& mt = MemoryTracker::instance();
  mt.add("a", 300);
  mt.sub("a", 500);
  mt.add("b", 100);
  EXPECT_EQ(mt.peak_bytes(), 300u);  // not inflated by the over-free
  EXPECT_EQ(mt.total_bytes(), 100u);
}

TEST_F(MemoryTrackerTest, TrackedBufferRegistersAndReleases) {
  MemoryTracker& mt = MemoryTracker::instance();
  {
    RankScope scope(1);
    TrackedBuffer buf("matrix", 128);
    EXPECT_EQ(mt.bytes(1, "matrix"), 128 * sizeof(double));
    buf.fill(2.5);
    EXPECT_DOUBLE_EQ(buf[100], 2.5);
  }
  EXPECT_EQ(mt.bytes(1, "matrix"), 0u);
}

TEST_F(MemoryTrackerTest, TrackedBufferMoveKeepsAccounting) {
  MemoryTracker& mt = MemoryTracker::instance();
  TrackedBuffer a("x", 64);
  TrackedBuffer b = std::move(a);
  EXPECT_EQ(mt.bytes(-1, "x"), 64 * sizeof(double));
  b = TrackedBuffer("x", 32);
  EXPECT_EQ(mt.bytes(-1, "x"), 32 * sizeof(double));
}

TEST_F(MemoryTrackerTest, RanksListsChargedRanks) {
  MemoryTracker& mt = MemoryTracker::instance();
  {
    RankScope s0(0);
    mt.add("a", 1);
  }
  {
    RankScope s2(2);
    mt.add("a", 1);
  }
  const auto ranks = mt.ranks();
  EXPECT_EQ(ranks.size(), 2u);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
}

TEST(Table, NumericRowsRespectPrecision) {
  Table t({"x"});
  t.add_row_numeric({3.14159}, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Format, Bytes) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.00 KB");
  EXPECT_EQ(fmt_bytes(3.5 * 1024 * 1024 * 1024), "3.50 GB");
}

}  // namespace
}  // namespace mc
