#pragma once
// Shared fixture for the cross-algorithm Fock equivalence tests
// (test_core.cpp, test_equivalence.cpp, test_tsan_protocol.cpp): one
// molecule + basis + screened ERI engine + a plausible density, with the
// serial skeleton matrix as the reference, plus the distributed-build
// helper and the bit-level comparison the harness asserts.
//
// On "bit-comparable": a race-free parallel Fock build computes exactly the
// serial quartet set and only reassociates the additions, so every element
// lands within a few dozen ULPs of the serial reference (measured: <= ~40
// ULPs across the rank/thread/schedule sweep). The comparison core and the
// full separation argument live in tests/fuzz/ulp_compare.hpp, shared with
// the randomized differential fuzz harness; this header wraps it in gtest
// assertions.

#include <gtest/gtest.h>

#include <cstdint>
#include <mutex>
#include <string>

#include "fuzz/ulp_compare.hpp"

#include "basis/basis_set.hpp"
#include "chem/builders.hpp"
#include "core/fock_dist.hpp"
#include "core/fock_mpi.hpp"
#include "core/fock_private.hpp"
#include "core/fock_shared.hpp"
#include "ints/one_electron.hpp"
#include "la/orthogonalizer.hpp"
#include "la/sym_eig.hpp"
#include "par/ddi.hpp"
#include "par/runtime.hpp"
#include "scf/scf_driver.hpp"
#include "scf/serial_fock.hpp"

namespace mc::core {

// kMaxSkeletonUlps and kCancellationFloor come from fuzz/ulp_compare.hpp
// (same namespace), so every suite that included them from here is
// unchanged.

struct FockFixture {
  chem::Molecule mol;
  basis::BasisSet bs;
  ints::EriEngine eri;
  ints::Screening screen;
  la::Matrix d;      // plausible symmetric density (core guess)
  la::Matrix g_ref;  // serial skeleton reference
  // Incremental-build material: a realistic delta density (the change from
  // the core guess to the next SCF iterate), its density-weighted context,
  // and the serial weighted delta skeleton as the reference for the
  // incremental equivalence tests.
  la::Matrix d_delta;
  scf::FockContext delta_ctx;
  la::Matrix g_ref_delta;

  explicit FockFixture(const chem::Molecule& m, const std::string& basis,
                       double screen_threshold = 1e-11)
      : mol(m),
        bs(basis::BasisSet::build(m, basis)),
        eri(bs),
        screen(eri, screen_threshold),
        d(),
        g_ref(bs.nbf(), bs.nbf()),
        g_ref_delta(bs.nbf(), bs.nbf()) {
    la::Matrix h = ints::core_hamiltonian(bs, mol);
    la::Matrix s = ints::overlap_matrix(bs);
    la::Matrix x = la::canonical_orthogonalizer(s);
    const int nocc = mol.nelectrons() / 2;
    d = scf::core_guess_density(h, x, nocc);
    scf::SerialFockBuilder serial(eri, screen);
    serial.build(d, g_ref);

    // One Roothaan step gives the next density; its difference from the
    // guess is the delta an incremental second iteration would contract.
    la::Matrix g_sym = g_ref;
    g_sym.symmetrize();
    la::Matrix f = h;
    f += g_sym;
    la::SymEigResult eig = la::eigh_generalized(f, x);
    d_delta = scf::density_from_coefficients(eig.vectors, nocc);
    d_delta -= d;
    delta_ctx = scf::FockContext::from_density(bs, d_delta,
                                               /*incremental=*/true);
    serial.build(d_delta, g_ref_delta, delta_ctx);
  }
};

/// Build the skeleton G with a given algorithm under `nranks` ranks and
/// return rank 0's reduced result. `make(ddi)` returns the builder.
template <typename MakeBuilder>
la::Matrix build_distributed(const FockFixture& fx, int nranks,
                             MakeBuilder&& make) {
  la::Matrix out(fx.bs.nbf(), fx.bs.nbf());
  std::mutex mu;
  par::run_spmd(nranks, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    auto builder = make(ddi);
    la::Matrix g(fx.bs.nbf(), fx.bs.nbf());
    builder->build(fx.d, g);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      out = g;
    }
    comm.barrier();
  });
  return out;
}

/// Same as build_distributed, but contracts the fixture's delta density
/// under its density-weighted context (the incremental-build code path).
template <typename MakeBuilder>
la::Matrix build_distributed_delta(const FockFixture& fx, int nranks,
                                   MakeBuilder&& make) {
  la::Matrix out(fx.bs.nbf(), fx.bs.nbf());
  std::mutex mu;
  par::run_spmd(nranks, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    auto builder = make(ddi);
    la::Matrix g(fx.bs.nbf(), fx.bs.nbf());
    builder->build(fx.d_delta, g, fx.delta_ctx);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lk(mu);
      out = g;
    }
    comm.barrier();
  });
  return out;
}

/// Assert every element of `g` is within `max_ulps` representable doubles
/// of `ref` (or inside the cancellation floor). max_ulps = 0 demands
/// bit-identical matrices.
inline void expect_bit_comparable(const la::Matrix& g, const la::Matrix& ref,
                                  std::uint64_t max_ulps,
                                  const std::string& what) {
  ASSERT_EQ(g.rows(), ref.rows()) << what;
  ASSERT_EQ(g.cols(), ref.cols()) << what;
  const UlpComparison cmp = compare_bit_comparable(g, ref, max_ulps);
  EXPECT_TRUE(cmp.ok) << describe_ulp_failure(cmp, what);
}

}  // namespace mc::core
