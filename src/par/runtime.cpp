#include "par/runtime.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstring>
#include <exception>
#include <map>
#include <thread>

#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/fault_injection.hpp"

namespace mc::par {

void AbortableBarrier::arrive_and_wait() {
  std::unique_lock<std::mutex> lk(mu_);
  if (aborted_) throw mc::Error("minimpi: job aborted (peer rank failed)");
  const long gen = generation_;
  if (++waiting_ == nranks_) {
    waiting_ = 0;
    ++generation_;
    cv_.notify_all();
    return;
  }
  cv_.wait(lk, [&] { return generation_ != gen || aborted_; });
  // Only fail if this barrier never completed. If the generation advanced,
  // every rank arrived and the synchronization is valid even when an abort
  // lands immediately afterwards; the entry check above catches the abort
  // at the next collective.
  if (generation_ == gen) {
    throw mc::Error("minimpi: job aborted (peer rank failed)");
  }
}

void AbortableBarrier::abort() {
  std::lock_guard<std::mutex> lk(mu_);
  aborted_ = true;
  cv_.notify_all();
}

bool AbortableBarrier::aborted() const {
  std::lock_guard<std::mutex> lk(mu_);
  return aborted_;
}

namespace detail {

struct Message {
  int src = 0;
  int tag = 0;
  std::vector<double> payload;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> messages;
};

struct WindowState {
  WindowState(std::string key_, const std::vector<std::size_t>& elems)
      : key(std::move(key_)),
        rank_elems(elems),
        rank_base(elems.size() + 1, 0),
        segments(elems.size()) {
    for (std::size_t r = 0; r < elems.size(); ++r) {
      rank_base[r + 1] = rank_base[r] + elems[r];
    }
  }

  [[nodiscard]] int owner_of(std::size_t index) const {
    // rank_base is the prefix-sum fence list [0, e0, e0+e1, ...]; the first
    // entry strictly greater than `index` is the owner's upper fence.
    return static_cast<int>(std::upper_bound(rank_base.begin(),
                                             rank_base.end(), index) -
                            rank_base.begin()) -
           1;
  }

  std::string key;                     ///< blackboard key (for win_free)
  std::vector<std::size_t> rank_elems; ///< segment sizes, indexed by rank
  std::vector<std::size_t> rank_base;  ///< prefix sums, size nranks+1
  /// Per-rank segments; segments[r] is allocated by rank r inside
  /// win_create so MemoryTracker charges the bytes to the owning rank.
  std::vector<TrackedBuffer> segments;

  /// Striped accumulate locks: win_acc element-atomicity without a
  /// per-window giant lock. Concurrent accs to regions more than
  /// kStripeElems apart usually take different stripes.
  static constexpr std::size_t kStripeElems = 2048;
  static constexpr std::size_t kStripes = 64;
  std::array<std::mutex, kStripes> acc_mu;
  [[nodiscard]] std::mutex& stripe(std::size_t global_index) {
    return acc_mu[(global_index / kStripeElems) % kStripes];
  }
};

struct SharedState {
  explicit SharedState(int n)
      : nranks(n), barrier(n), contrib(static_cast<std::size_t>(n), nullptr),
        mailboxes(static_cast<std::size_t>(n)) {}

  int nranks;
  AbortableBarrier barrier;

  // allreduce / broadcast staging.
  std::vector<double*> contrib;
  std::vector<double> scratch;
  std::mutex scratch_mu;

  // allreduce_max staging.
  std::atomic<std::uint64_t> max_bits{0};

  std::atomic<long> dlb_counter{0};

  std::vector<Mailbox> mailboxes;

  // Shared-object blackboard.
  std::mutex board_mu;
  std::map<std::string, std::shared_ptr<void>> board;

  std::mutex err_mu;
  std::exception_ptr first_error;
};

}  // namespace detail

namespace {
// Live SPMD worlds in this process. Historically exactly one job could be
// active at a time (one MPI_COMM_WORLD); the job-server world pool
// (src/par/world_pool.hpp) runs several worlds side by side, each the
// analogue of a separate MPI communicator with its own SharedState. What
// stays forbidden is *nesting*: a rank thread launching another world
// would deadlock its own collectives, so that is detected per-thread.
std::atomic<int> g_active_worlds{0};
thread_local bool t_inside_spmd = false;
}  // namespace

int active_spmd_worlds() { return g_active_worlds.load(); }

int Comm::size() const { return st_->nranks; }

void Comm::sync() { st_->barrier.arrive_and_wait(); }

std::size_t Window::size() const { return st_->rank_base.back(); }

std::size_t Window::rank_base(int rank) const {
  return st_->rank_base[static_cast<std::size_t>(rank)];
}

std::size_t Window::rank_elems(int rank) const {
  return st_->rank_elems[static_cast<std::size_t>(rank)];
}

int Window::owner_of(std::size_t index) const {
  return st_->owner_of(index);
}

Window Comm::win_create(const std::string& key,
                        const std::vector<std::size_t>& rank_elems) {
  MC_CHECK(rank_elems.size() == static_cast<std::size_t>(st_->nranks),
           "win_create: rank_elems must have one entry per rank");
  Window w;
  w.st_ = get_or_create_shared<detail::WindowState>(key, key, rank_elems);
  detail::WindowState& ws = *w.st_;
  MC_CHECK(ws.rank_elems == rank_elems,
           "win_create: ranks disagree on the window layout for '" + key +
               "'");
  // Each rank allocates its own zeroed segment on its own thread, so
  // MemoryTracker attributes the bytes to the owning rank -- the
  // distributed-footprint accounting the memory benchmarks assert on.
  ws.segments[static_cast<std::size_t>(rank_)] = TrackedBuffer(
      "ddi-window", rank_elems[static_cast<std::size_t>(rank_)]);
  sync();  // every segment allocated before any one-sided access
  return w;
}

void Comm::win_free(Window& w) {
  MC_CHECK(w.valid(), "win_free on an invalid window");
  sync();  // all one-sided access complete
  // Release this rank's segment eagerly: the WindowState itself lives until
  // the slowest rank drops its handle, and the per-rank tracked bytes must
  // reach zero when win_free returns, not when a peer gets around to it.
  w.st_->segments[static_cast<std::size_t>(rank_)] = TrackedBuffer();
  // Single-rank erase + barrier: if every rank erased, a fast rank could
  // re-create the key and have it yanked by a slow peer's erase.
  if (rank_ == 0) free_shared(w.st_->key);
  sync();  // entry gone before the key can be reused
  w.st_.reset();
}

void Comm::win_put(const Window& w, std::size_t offset, const double* src,
                   std::size_t n) {
  obs::ScopedChannelTimer ct(obs::Channel::kPut, rank_);
  maybe_inject_fault(rank_, FaultOp::kWinPut);
  MC_CHECK(w.valid(), "win_put on an invalid window");
  detail::WindowState& ws = *w.st_;
  MC_CHECK(offset + n <= ws.rank_base.back(), "win_put out of range");
  // Shared-memory fast path (all minimpi ranks are intra-node): a straight
  // memcpy into the owner's segment, split only at segment boundaries.
  // Visibility to other ranks is ordered by win_fence.
  std::size_t done = 0;
  while (done < n) {
    const int owner = ws.owner_of(offset + done);
    const std::size_t local =
        offset + done - ws.rank_base[static_cast<std::size_t>(owner)];
    const std::size_t chunk = std::min(
        n - done,
        ws.rank_elems[static_cast<std::size_t>(owner)] - local);
    std::memcpy(ws.segments[static_cast<std::size_t>(owner)].data() + local,
                src + done, chunk * sizeof(double));
    done += chunk;
  }
}

void Comm::win_get(const Window& w, std::size_t offset, double* dst,
                   std::size_t n) {
  obs::ScopedChannelTimer ct(obs::Channel::kGet, rank_);
  maybe_inject_fault(rank_, FaultOp::kWinGet);
  MC_CHECK(w.valid(), "win_get on an invalid window");
  detail::WindowState& ws = *w.st_;
  MC_CHECK(offset + n <= ws.rank_base.back(), "win_get out of range");
  std::size_t done = 0;
  while (done < n) {
    const int owner = ws.owner_of(offset + done);
    const std::size_t local =
        offset + done - ws.rank_base[static_cast<std::size_t>(owner)];
    const std::size_t chunk = std::min(
        n - done,
        ws.rank_elems[static_cast<std::size_t>(owner)] - local);
    std::memcpy(dst + done,
                ws.segments[static_cast<std::size_t>(owner)].data() + local,
                chunk * sizeof(double));
    done += chunk;
  }
}

void Comm::win_acc(const Window& w, std::size_t offset, const double* src,
                   std::size_t n) {
  obs::ScopedChannelTimer ct(obs::Channel::kAcc, rank_);
  maybe_inject_fault(rank_, FaultOp::kWinAcc);
  MC_CHECK(w.valid(), "win_acc on an invalid window");
  detail::WindowState& ws = *w.st_;
  MC_CHECK(offset + n <= ws.rank_base.back(), "win_acc out of range");
  // Walk the range in pieces bounded by both the lock-stripe width and the
  // owning segment, taking one stripe lock at a time (never two locks held
  // at once, so concurrent accs cannot deadlock).
  std::size_t i = 0;
  while (i < n) {
    const std::size_t g0 = offset + i;
    const int owner = ws.owner_of(g0);
    const std::size_t stripe_end =
        (g0 / detail::WindowState::kStripeElems + 1) *
        detail::WindowState::kStripeElems;
    const std::size_t end =
        std::min({offset + n, stripe_end,
                  ws.rank_base[static_cast<std::size_t>(owner) + 1]});
    double* dst =
        ws.segments[static_cast<std::size_t>(owner)].data() +
        (g0 - ws.rank_base[static_cast<std::size_t>(owner)]);
    std::lock_guard<std::mutex> lk(ws.stripe(g0));
    for (std::size_t k = 0; k < end - g0; ++k) dst[k] += src[i + k];
    i += end - g0;
  }
}

void Comm::win_fence(const Window& w) {
  obs::ScopedChannelTimer ct(obs::Channel::kBarrier, rank_);
  maybe_inject_fault(rank_, FaultOp::kWinFence);
  MC_CHECK(w.valid(), "win_fence on an invalid window");
  sync();
}

void Comm::barrier() {
  obs::ScopedChannelTimer ct(obs::Channel::kBarrier, rank_);
  maybe_inject_fault(rank_, FaultOp::kBarrier);
  sync();
}

void Comm::allreduce_sum(double* data, std::size_t n) {
  obs::ScopedChannelTimer ct(obs::Channel::kGsum, rank_);
  MC_OBS_TRACE("gsumf");
  maybe_inject_fault(rank_, FaultOp::kAllreduceSum);
  detail::SharedState& st = *st_;
  st.contrib[static_cast<std::size_t>(rank_)] = data;
  if (rank_ == 0) {
    st.scratch.assign(n, 0.0);
  }
  sync();  // contributions + scratch visible

  // Chunked parallel reduction: rank r sums its contiguous slice across all
  // ranks' buffers (mirrors DDI's chunked gsum and the paper's row-chunked
  // buffer flush in Figure 1B).
  const std::size_t per =
      (n + static_cast<std::size_t>(st.nranks) - 1) /
      static_cast<std::size_t>(st.nranks);
  const std::size_t lo =
      std::min(n, per * static_cast<std::size_t>(rank_));
  const std::size_t hi = std::min(n, lo + per);
  for (std::size_t i = lo; i < hi; ++i) {
    double s = 0.0;
    for (int r = 0; r < st.nranks; ++r) s += st.contrib[static_cast<std::size_t>(r)][i];
    st.scratch[i] = s;
  }
  sync();  // all slices reduced

  std::memcpy(data, st.scratch.data(), n * sizeof(double));
  sync();  // everyone copied out before scratch is reused
}

double Comm::allreduce_max(double v) {
  obs::ScopedChannelTimer ct(obs::Channel::kGsum, rank_);
  maybe_inject_fault(rank_, FaultOp::kAllreduceMax);
  detail::SharedState& st = *st_;
  // Entry barrier: guarantees every rank has consumed the previous call's
  // result before rank 0 re-initializes the shared accumulator.
  sync();
  if (rank_ == 0) st.max_bits.store(0, std::memory_order_relaxed);
  sync();
  // Monotone CAS-max on the bit pattern (valid for non-negative doubles;
  // shift negative inputs by taking max against 0 first is NOT done --
  // callers use this for norms/errors which are >= 0).
  MC_CHECK(v >= 0.0, "allreduce_max supports non-negative values");
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  std::uint64_t cur = st.max_bits.load(std::memory_order_relaxed);
  while (bits > cur &&
         !st.max_bits.compare_exchange_weak(cur, bits,
                                            std::memory_order_relaxed)) {
  }
  sync();
  const std::uint64_t out_bits = st.max_bits.load(std::memory_order_relaxed);
  double out;
  std::memcpy(&out, &out_bits, sizeof(out));
  return out;
}

void Comm::broadcast(double* data, std::size_t n, int root) {
  obs::ScopedChannelTimer ct(obs::Channel::kBroadcast, rank_);
  maybe_inject_fault(rank_, FaultOp::kBroadcast);
  detail::SharedState& st = *st_;
  MC_CHECK(root >= 0 && root < st.nranks, "broadcast root out of range");
  st.contrib[static_cast<std::size_t>(rank_)] = data;
  sync();
  if (rank_ != root) {
    std::memcpy(data, st.contrib[static_cast<std::size_t>(root)],
                n * sizeof(double));
  }
  sync();
}

long Comm::dlb_next() {
  // The shared-counter claim is the whole DLB cost in minimpi (no message
  // round-trip); attribute it to the DLB-wait channel anyway so the metric
  // has the same meaning it would have over real DDI.
  obs::ScopedChannelTimer ct(obs::Channel::kDlbWait, rank_);
  return st_->dlb_counter.fetch_add(1, std::memory_order_relaxed);
}

void Comm::dlb_reset() {
  maybe_inject_fault(rank_, FaultOp::kDlbReset);
  sync();
  if (rank_ == 0) st_->dlb_counter.store(0, std::memory_order_relaxed);
  sync();
}

void Comm::send(int dst, int tag, const double* data, std::size_t n) {
  maybe_inject_fault(rank_, FaultOp::kSend);
  detail::SharedState& st = *st_;
  MC_CHECK(dst >= 0 && dst < st.nranks, "send destination out of range");
  detail::Mailbox& mb = st.mailboxes[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.messages.push_back({rank_, tag, std::vector<double>(data, data + n)});
  }
  mb.cv.notify_all();
}

std::vector<double> Comm::recv(int src, int tag) {
  maybe_inject_fault(rank_, FaultOp::kRecv);
  detail::SharedState& st = *st_;
  detail::Mailbox& mb = st.mailboxes[static_cast<std::size_t>(rank_)];
  std::unique_lock<std::mutex> lk(mb.mu);
  // Untimed wait: both wake sources -- send() and the abort path in
  // run_spmd -- notify while holding mb.mu, so a wakeup can never slip
  // between the checks and the wait. (The previous 50 ms wait_for poll
  // added up to 50 ms latency per lost notification and only noticed
  // aborts on timeout.)
  for (;;) {
    for (auto it = mb.messages.begin(); it != mb.messages.end(); ++it) {
      if (it->src == src && it->tag == tag) {
        std::vector<double> out = std::move(it->payload);
        mb.messages.erase(it);
        return out;
      }
    }
    if (st.barrier.aborted()) {
      throw mc::Error("minimpi: recv aborted (peer rank failed)");
    }
    mb.cv.wait(lk);
  }
}

std::shared_ptr<void> Comm::shared_lookup(const std::string& key) {
  std::lock_guard<std::mutex> lk(st_->board_mu);
  auto it = st_->board.find(key);
  return it == st_->board.end() ? nullptr : it->second;
}

std::shared_ptr<void> Comm::shared_publish(
    const std::string& key,
    const std::function<std::shared_ptr<void>()>& make) {
  std::lock_guard<std::mutex> lk(st_->board_mu);
  auto it = st_->board.find(key);
  if (it != st_->board.end()) return it->second;  // lost the race: reuse
  auto obj = make();
  st_->board.emplace(key, obj);
  return obj;
}

void Comm::free_shared(const std::string& key) {
  std::lock_guard<std::mutex> lk(st_->board_mu);
  st_->board.erase(key);
}

namespace {

/// Wake every rank blocked in recv(). The mailbox mutex is held across the
/// notify so the wakeup cannot race into the gap between a receiver's
/// abort-flag check and its wait.
void wake_all_mailboxes(detail::SharedState& st) {
  for (auto& mb : st.mailboxes) {
    std::lock_guard<std::mutex> lk(mb.mu);
    mb.cv.notify_all();
  }
}

}  // namespace

void run_spmd(int nranks, const std::function<void(Comm&)>& body) {
  MC_CHECK(nranks >= 1, "run_spmd needs at least one rank");
  install_env_fault_plan_once();
  MC_CHECK(!t_inside_spmd,
           "run_spmd: called from inside a rank body (nested SPMD not "
           "supported)");
  g_active_worlds.fetch_add(1);
  // RAII: release the world slot on *every* exit path. Before this guard, an
  // exception between the acquire above and a manual decrement (e.g. a
  // std::thread constructor failing) left the counter wedged forever.
  struct JobGuard {
    ~JobGuard() { g_active_worlds.fetch_sub(1); }
  } job_guard;

  detail::SharedState st(nranks);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));

  const auto rank_main = [&st, &body](int r) {
      t_inside_spmd = true;  // nesting guard; dies with the rank thread
      MemoryTracker::set_current_rank(r);
      try {
        Comm comm(r, &st);
        body(comm);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(st.err_mu);
          if (!st.first_error) st.first_error = std::current_exception();
        }
        st.barrier.abort();
        // Wake any rank blocked in recv.
        wake_all_mailboxes(st);
      }
      MemoryTracker::set_current_rank(-1);
  };

  for (int r = 0; r < nranks; ++r) {
    try {
      maybe_inject_fault(r, FaultOp::kSpawn);
      threads.emplace_back(rank_main, r);
    } catch (...) {
      // Thread creation failed partway: the already-running ranks would
      // block forever in a barrier sized for nranks. Tear the job down and
      // surface the spawn failure (the survivors' abort errors are
      // secondary), leaving the job slot usable again via job_guard.
      st.barrier.abort();
      wake_all_mailboxes(st);
      for (auto& t : threads) t.join();
      throw;
    }
  }
  for (auto& t : threads) t.join();

  if (st.first_error) std::rethrow_exception(st.first_error);
}

}  // namespace mc::par
