#include "par/fault_injection.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.hpp"

namespace mc::par {

namespace {

// The plan is written rarely (test setup) and read on every collective
// entry, so keep the fast path to one relaxed atomic load of `g_armed`.
std::mutex g_plan_mu;
FaultPlan g_plan;
std::atomic<bool> g_armed{false};
std::atomic<long> g_calls{0};
std::once_flag g_env_once;

}  // namespace

void set_fault_plan(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lk(g_plan_mu);
  g_plan = plan;
  g_calls.store(0, std::memory_order_relaxed);
  g_armed.store(plan.enabled(), std::memory_order_release);
}

void clear_fault_plan() { set_fault_plan(FaultPlan{}); }

FaultPlan current_fault_plan() {
  std::lock_guard<std::mutex> lk(g_plan_mu);
  return g_plan;
}

const char* fault_op_name(FaultOp op) {
  switch (op) {
    case FaultOp::kNone: return "none";
    case FaultOp::kSpawn: return "spawn";
    case FaultOp::kBarrier: return "barrier";
    case FaultOp::kAllreduceSum: return "allreduce_sum";
    case FaultOp::kAllreduceMax: return "allreduce_max";
    case FaultOp::kBroadcast: return "broadcast";
    case FaultOp::kDlbReset: return "dlb_reset";
    case FaultOp::kSend: return "send";
    case FaultOp::kRecv: return "recv";
    case FaultOp::kWinPut: return "win_put";
    case FaultOp::kWinGet: return "win_get";
    case FaultOp::kWinAcc: return "win_acc";
    case FaultOp::kWinFence: return "win_fence";
  }
  return "unknown";
}

FaultOp fault_op_from_name(const std::string& name) {
  for (FaultOp op : {FaultOp::kNone, FaultOp::kSpawn, FaultOp::kBarrier,
                     FaultOp::kAllreduceSum, FaultOp::kAllreduceMax,
                     FaultOp::kBroadcast, FaultOp::kDlbReset, FaultOp::kSend,
                     FaultOp::kRecv, FaultOp::kWinPut, FaultOp::kWinGet,
                     FaultOp::kWinAcc, FaultOp::kWinFence}) {
    if (name == fault_op_name(op)) return op;
  }
  throw mc::Error("fault injection: unknown MC_FAULT_OP '" + name + "'");
}

const std::vector<FaultOp>& injectable_fault_ops() {
  static const std::vector<FaultOp> ops = {
      FaultOp::kSpawn,        FaultOp::kBarrier,  FaultOp::kAllreduceSum,
      FaultOp::kAllreduceMax, FaultOp::kBroadcast, FaultOp::kDlbReset,
      FaultOp::kSend,         FaultOp::kRecv,     FaultOp::kWinPut,
      FaultOp::kWinGet,       FaultOp::kWinAcc,   FaultOp::kWinFence};
  return ops;
}

std::string fault_plan_env_string(const FaultPlan& plan) {
  if (!plan.enabled()) return "";
  std::ostringstream os;
  os << "MC_FAULT_RANK=" << plan.rank
     << " MC_FAULT_OP=" << fault_op_name(plan.op)
     << " MC_FAULT_CALL=" << plan.call_index;
  if (plan.delay_ms > 0) os << " MC_FAULT_DELAY_MS=" << plan.delay_ms;
  return os.str();
}

FaultPlan random_fault_plan(std::uint64_t bits, int nranks) {
  if (nranks < 1) nranks = 1;
  // Pure bit-slicing keeps the mapping identical on every platform (no
  // std::uniform_int_distribution, whose draws are stdlib-specific).
  FaultPlan plan;
  plan.rank = static_cast<int>((bits >> 0) % static_cast<std::uint64_t>(nranks));
  // kSpawn is excluded: spawn faults kill the job before the body runs, so
  // they exercise run_spmd's launch path (covered by its own test), not the
  // protocols the soak is after.
  const std::vector<FaultOp>& ops = injectable_fault_ops();
  const std::size_t nops = ops.size() - 1;  // minus kSpawn at index 0
  plan.op = ops[1 + static_cast<std::size_t>((bits >> 8) % nops)];
  plan.call_index = static_cast<long>((bits >> 16) % 8);
  if (((bits >> 24) & 0x3) == 0) {
    plan.delay_ms = 1 + static_cast<long>((bits >> 32) % 16);
  }
  return plan;
}

FaultPlan fault_plan_from_env() {
  FaultPlan plan;
  const char* rank = std::getenv("MC_FAULT_RANK");
  const char* op = std::getenv("MC_FAULT_OP");
  if (rank == nullptr || op == nullptr) return plan;  // disabled
  try {
    plan.rank = std::stoi(rank);
  } catch (const std::exception&) {
    throw mc::Error(std::string("fault injection: bad MC_FAULT_RANK '") +
                    rank + "'");
  }
  plan.op = fault_op_from_name(op);
  if (const char* call = std::getenv("MC_FAULT_CALL")) {
    try {
      plan.call_index = std::stol(call);
    } catch (const std::exception&) {
      throw mc::Error(std::string("fault injection: bad MC_FAULT_CALL '") +
                      call + "'");
    }
  }
  if (const char* delay = std::getenv("MC_FAULT_DELAY_MS")) {
    try {
      plan.delay_ms = std::stol(delay);
    } catch (const std::exception&) {
      throw mc::Error(std::string("fault injection: bad MC_FAULT_DELAY_MS '") +
                      delay + "'");
    }
  }
  return plan;
}

void install_env_fault_plan_once() {
  std::call_once(g_env_once, [] {
    const FaultPlan plan = fault_plan_from_env();
    if (plan.enabled()) set_fault_plan(plan);
  });
}

void maybe_inject_fault(int rank, FaultOp op) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  FaultPlan plan;
  {
    std::lock_guard<std::mutex> lk(g_plan_mu);
    plan = g_plan;
  }
  if (!plan.enabled() || plan.rank != rank || plan.op != op) return;
  // Only the target rank's matching calls advance the counter, so
  // call_index means "the Nth time *this rank* enters *this op*".
  const long seen = g_calls.fetch_add(1, std::memory_order_relaxed);
  if (seen != plan.call_index) return;
  if (plan.delay_ms > 0) {
    // Delay fault: the op goes through, late. One-sided semantics promise
    // callers nothing about completion timing before the next fence, so a
    // correct program is unaffected (the tests assert exactly that).
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
    return;
  }
  std::ostringstream msg;
  msg << "fault injection: rank " << rank << " failing at "
      << fault_op_name(op) << " call " << seen;
  throw mc::Error(msg.str());
}

}  // namespace mc::par
