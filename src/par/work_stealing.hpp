#pragma once
// Work-stealing task scheduler over a contiguous task range -- the
// alternative to the single global DLB counter proposed for Fock builds by
// Liu, Patel & Chow (IPDPS 2014), cited by the paper as related work.
//
// Each rank owns a contiguous slice of [0, ntasks) and claims from it with
// a local atomic; when the slice is exhausted it steals single tasks from
// the currently-richest victim. Claim *order* therefore favours locality
// (ranks sweep their own region first), while the steady-state balance
// matches the global counter's.
//
// Built on the minimpi shared-object blackboard; the counters struct is
// shared by all ranks of the job.

#include <atomic>
#include <string>
#include <vector>

#include "common/access.hpp"
#include "obs/metrics.hpp"
#include "par/runtime.hpp"

namespace mc::par {

/// Shared per-rank claim ranges. Thread-safe by construction.
class StealingCounters {
 public:
  StealingCounters(int nranks, long ntasks);

  /// Claim the next task for `rank`: own range first, then steal from the
  /// victim with the most remaining work. Returns -1 when every range is
  /// exhausted.
  long next(int rank);

  /// Remaining tasks in `rank`'s slice (approximate under concurrency).
  [[nodiscard]] long remaining(int rank) const;
  /// Tasks this rank claimed from other ranks' slices.
  [[nodiscard]] long steals(int rank) const;

 private:
  struct alignas(64) Range {
    std::atomic<long> next{0};
    // Fixed at construction, then read concurrently by every thief with no
    // ordering: correct only because it is never written again. The
    // annotation type makes that one-shot publication explicit (mutation
    // after init_once() has no API, and checked builds trap double-init).
    acc::SharedReadOnly<long> end;
    std::atomic<long> stolen_by_me{0};
  };
  std::vector<Range> ranges_;
};

/// Per-rank handle: wires a StealingCounters instance shared through the
/// communicator's blackboard under `key`. Collective construction; call
/// release() (collective) when the schedule is finished so the next build
/// can reuse the key.
class WorkStealingScheduler {
 public:
  WorkStealingScheduler(Comm& comm, const std::string& key, long ntasks);

  /// Next task index for this rank, or -1 when the whole range is done.
  /// Charged to the DLB-wait channel: same role as the global counter claim.
  long next() {
    obs::ScopedChannelTimer ct(obs::Channel::kDlbWait, comm_->rank());
    return counters_->next(comm_->rank());
  }
  [[nodiscard]] long steals() const { return counters_->steals(comm_->rank()); }

  /// Collective: drop the shared counters (barrier + erase + barrier).
  void release();

 private:
  Comm* comm_;
  std::string key_;
  std::shared_ptr<StealingCounters> counters_;
};

}  // namespace mc::par
