#pragma once
// Fault injection for the minimpi runtime.
//
// The abort protocol (AbortableBarrier + mailbox wakeup in run_spmd) is the
// only thing standing between "one rank threw" and "every surviving rank
// deadlocks inside a collective". That protocol is worthless unless it is
// exercised, so this hook lets tests (or an operator, via environment
// variables) make a chosen rank throw at a chosen call site:
//
//   FaultPlan{.rank = 1, .op = FaultOp::kAllreduceSum, .call_index = 0}
//
// makes rank 1 throw mc::Error on its first allreduce_sum entry while its
// peers are already blocked inside the collective -- exactly the scenario
// the abort propagation must survive without hanging.
//
// Environment-driven form (picked up once, at the first run_spmd):
//   MC_FAULT_RANK=1 MC_FAULT_OP=allreduce_sum MC_FAULT_CALL=0 ./app
//
// The hook is a single relaxed atomic load on the hot path when no plan is
// installed, so leaving it compiled in costs nothing measurable next to an
// ERI batch.

#include <cstdint>
#include <string>
#include <vector>

namespace mc::par {

/// Call sites that can be made to fail. kSpawn is the run_spmd thread
/// creation loop (simulates std::thread resource exhaustion); the rest are
/// the Comm entry points, including the one-sided window operations
/// (win_put/win_get/win_acc/win_fence) the distributed Fock builder uses.
enum class FaultOp {
  kNone,
  kSpawn,
  kBarrier,
  kAllreduceSum,
  kAllreduceMax,
  kBroadcast,
  kDlbReset,
  kSend,
  kRecv,
  kWinPut,
  kWinGet,
  kWinAcc,
  kWinFence,
};

/// A single planned failure: `rank` throws mc::Error on its
/// `call_index`-th (0-based) entry into `op` -- unless `delay_ms > 0`, in
/// which case the matching call *stalls* for that long instead of failing
/// (models a slow/late one-sided get or acc; correctness must not depend
/// on one-sided completion timing, only on fences).
struct FaultPlan {
  int rank = -1;
  FaultOp op = FaultOp::kNone;
  long call_index = 0;
  long delay_ms = 0;

  [[nodiscard]] bool enabled() const {
    return rank >= 0 && op != FaultOp::kNone;
  }
};

/// Install a plan (replacing any previous one) and reset the call counter.
void set_fault_plan(const FaultPlan& plan);
/// Remove the installed plan.
void clear_fault_plan();
/// The currently installed plan (disabled plan if none).
[[nodiscard]] FaultPlan current_fault_plan();

/// Parse MC_FAULT_RANK / MC_FAULT_OP / MC_FAULT_CALL / MC_FAULT_DELAY_MS.
/// Returns a disabled plan when MC_FAULT_RANK or MC_FAULT_OP is unset;
/// throws mc::Error on a malformed value.
[[nodiscard]] FaultPlan fault_plan_from_env();

/// One-shot: install fault_plan_from_env() the first time this is called
/// (run_spmd calls it so `MC_FAULT_*` works on any binary). Subsequent
/// calls are no-ops; explicit set/clear always wins.
void install_env_fault_plan_once();

/// Stable names used by MC_FAULT_OP and error messages.
[[nodiscard]] const char* fault_op_name(FaultOp op);
[[nodiscard]] FaultOp fault_op_from_name(const std::string& name);

/// Every injectable op (everything except kNone), in a stable order. The
/// soak harness draws from this list when randomizing fault plans.
[[nodiscard]] const std::vector<FaultOp>& injectable_fault_ops();

/// The MC_FAULT_* environment assignment that reproduces `plan`, e.g.
/// "MC_FAULT_RANK=1 MC_FAULT_OP=win_acc MC_FAULT_CALL=3". Disabled plans
/// render as "" (no fault). Failure messages print this so any randomized
/// soak failure is a copy-paste deterministic repro.
[[nodiscard]] std::string fault_plan_env_string(const FaultPlan& plan);

/// Deterministically derive a fault plan from 64 random bits (the soak
/// harness's per-job seed material -- pure function, no hidden RNG state):
/// rank in [0, nranks), op drawn from injectable_fault_ops() minus kSpawn,
/// call_index in [0, 8), and roughly one plan in four is a delay fault
/// (1..16 ms stall) instead of a hard failure.
[[nodiscard]] FaultPlan random_fault_plan(std::uint64_t bits, int nranks);

/// Hook placed at every injectable call site: throws mc::Error if the
/// installed plan matches (rank, op) and the call count has been reached.
void maybe_inject_fault(int rank, FaultOp op);

}  // namespace mc::par
