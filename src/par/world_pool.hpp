#pragma once
// WorldPool: a fixed set of long-lived host threads, each of which runs
// minimpi SPMD "worlds" one after another. Every pooled task typically
// calls run_spmd internally, so several worlds -- several independent Fock
// builds -- execute side by side, bounded by the pool width. This is the
// world-pool lifecycle the SCF job server (src/serve) dispatches onto: the
// spawn/fault machinery of run_spmd is exercised per job, not per pool
// thread, so a fault-injected job tears down only its own world while the
// pool thread survives to pull the next job.
//
// The pool deliberately does NOT own a queue. It pulls: each pool thread
// repeatedly asks the TaskSource for the next task and runs it. Ordering
// policy (priorities, admission control, tenant fairness) therefore lives
// entirely in the source -- for the job server, serve::JobQueue -- and is
// applied at dequeue time, which is what lets a high-priority job overtake
// work that was admitted earlier.

#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

namespace mc::par {

/// One unit of pool work. An empty function tells the pulling world thread
/// to exit its loop (the source is drained and closed).
using PooledTask = std::function<void()>;

/// Blocking task source: called by pool thread `world_id` whenever it is
/// idle. Blocks until work is available, and returns an empty PooledTask
/// once the source is closed and drained. Must be thread-safe.
using TaskSource = std::function<PooledTask(int world_id)>;

class WorldPool {
 public:
  /// Starts `nworlds` pool threads immediately; each loops pulling from
  /// `source`. Tasks must not throw -- a task that does is counted in
  /// tasks_failed() and swallowed (the pool thread survives), because one
  /// aborted world must never take the server down.
  WorldPool(int nworlds, TaskSource source);
  /// Joins (the source must already deliver empty tasks, or this blocks).
  ~WorldPool();

  WorldPool(const WorldPool&) = delete;
  WorldPool& operator=(const WorldPool&) = delete;

  /// Block until every pool thread has exited its pull loop.
  void join();

  [[nodiscard]] int nworlds() const {
    return static_cast<int>(tasks_run_.size());
  }
  /// Tasks completed (including failed ones) by world `w`.
  [[nodiscard]] long tasks_run(int world) const;
  /// Worlds that ran at least one task -- the smoke tests assert the load
  /// actually spread across the pool.
  [[nodiscard]] int worlds_used() const;
  /// Tasks that threw (a pooled task is expected to catch its own errors).
  [[nodiscard]] long tasks_failed() const { return tasks_failed_.load(); }

 private:
  void world_main(int world_id);

  TaskSource source_;
  std::vector<std::unique_ptr<std::atomic<long>>> tasks_run_;
  std::atomic<long> tasks_failed_{0};
  std::vector<std::thread> threads_;
  bool joined_ = false;
};

}  // namespace mc::par
