#pragma once
// Thin facade matching the Distributed Data Interface calls the paper's
// pseudocode uses (ddi_dlbnext, ddi_gsumf), so the Fock builders in
// src/core read like Algorithms 1-3.
//
// GAMESS's legacy DDI pairs every compute process with a data-server
// process; the paper used an experimental MPI-3 DDI without data servers.
// minimpi has no data servers either, so we model the MPI-3 variant (the
// one all three benchmarked codes used -- paper section 6.2).

#include "la/matrix.hpp"
#include "par/runtime.hpp"

namespace mc::par {

class Ddi {
 public:
  explicit Ddi(Comm& comm) : comm_(&comm) {}

  /// ddi_dlbnext: next global dynamic-load-balance task index (0-based).
  [[nodiscard]] long dlbnext() { return comm_->dlb_next(); }
  /// Collective: rewind the DLB counter (GAMESS does this between Fock
  /// builds).
  void dlb_reset() { comm_->dlb_reset(); }

  /// ddi_gsumf: global floating-point sum of a matrix over ranks.
  void gsumf(la::Matrix& m) { comm_->allreduce_sum(m.data(), m.size()); }
  /// ddi_gsumf on a raw buffer.
  void gsumf(double* data, std::size_t n) { comm_->allreduce_sum(data, n); }

  /// ddi_bcast equivalent.
  void bcast(la::Matrix& m, int root = 0) {
    comm_->broadcast(m.data(), m.size(), root);
  }

  void barrier() { comm_->barrier(); }

  [[nodiscard]] int rank() const { return comm_->rank(); }
  [[nodiscard]] int size() const { return comm_->size(); }
  [[nodiscard]] Comm& comm() { return *comm_; }

 private:
  Comm* comm_;
};

}  // namespace mc::par
