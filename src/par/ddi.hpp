#pragma once
// Thin facade matching the Distributed Data Interface calls the paper's
// pseudocode uses (ddi_dlbnext, ddi_gsumf), so the Fock builders in
// src/core read like Algorithms 1-3.
//
// GAMESS's legacy DDI pairs every compute process with a data-server
// process; the paper used an experimental MPI-3 DDI without data servers.
// minimpi has no data servers either, so we model the MPI-3 variant (the
// one all three benchmarked codes used -- paper section 6.2).

#include "la/matrix.hpp"
#include "par/runtime.hpp"

namespace mc::par {

class Ddi {
 public:
  explicit Ddi(Comm& comm) : comm_(&comm) {}

  /// ddi_dlbnext: next global dynamic-load-balance task index (0-based).
  [[nodiscard]] long dlbnext() { return comm_->dlb_next(); }
  /// Collective: rewind the DLB counter (GAMESS does this between Fock
  /// builds).
  void dlb_reset() { comm_->dlb_reset(); }

  /// ddi_gsumf: global floating-point sum of a matrix over ranks.
  void gsumf(la::Matrix& m) { comm_->allreduce_sum(m.data(), m.size()); }
  /// ddi_gsumf on a raw buffer.
  void gsumf(double* data, std::size_t n) { comm_->allreduce_sum(data, n); }

  /// ddi_bcast equivalent.
  void bcast(la::Matrix& m, int root = 0) {
    comm_->broadcast(m.data(), m.size(), root);
  }

  void barrier() { comm_->barrier(); }

  // -- One-sided distributed arrays (ddi_create / ddi_put / ddi_get /
  // ddi_acc / ddi_sync / ddi_destroy). A Window is a block-distributed
  // array of doubles, rank r owning rank_elems[r] contiguous elements;
  // see par::Window for the completion/fence semantics.

  /// ddi_create: collective; every rank passes the same per-rank layout.
  [[nodiscard]] Window create(const std::string& key,
                              const std::vector<std::size_t>& rank_elems) {
    return comm_->win_create(key, rank_elems);
  }
  /// ddi_destroy: collective.
  void destroy(Window& w) { comm_->win_free(w); }
  /// ddi_put: one-sided write (visible to peers after the next fence).
  void put(const Window& w, std::size_t offset, const double* src,
           std::size_t n) {
    comm_->win_put(w, offset, src, n);
  }
  /// ddi_get: one-sided read.
  void get(const Window& w, std::size_t offset, double* dst, std::size_t n) {
    comm_->win_get(w, offset, dst, n);
  }
  /// ddi_acc: one-sided element-atomic accumulate (+=).
  void acc(const Window& w, std::size_t offset, const double* src,
           std::size_t n) {
    comm_->win_acc(w, offset, src, n);
  }
  /// ddi_sync on a window: closes the one-sided epoch (collective).
  void fence(const Window& w) { comm_->win_fence(w); }

  [[nodiscard]] int rank() const { return comm_->rank(); }
  [[nodiscard]] int size() const { return comm_->size(); }
  [[nodiscard]] Comm& comm() { return *comm_; }

 private:
  Comm* comm_;
};

}  // namespace mc::par
