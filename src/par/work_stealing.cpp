#include "par/work_stealing.hpp"

#include "common/error.hpp"

namespace mc::par {

StealingCounters::StealingCounters(int nranks, long ntasks)
    : ranges_(static_cast<std::size_t>(nranks)) {
  MC_CHECK(nranks >= 1, "need at least one rank");
  MC_CHECK(ntasks >= 0, "negative task count");
  for (int r = 0; r < nranks; ++r) {
    const long lo = ntasks * r / nranks;
    const long hi = ntasks * (r + 1) / nranks;
    ranges_[static_cast<std::size_t>(r)].next.store(
        lo, std::memory_order_relaxed);
    ranges_[static_cast<std::size_t>(r)].end.init_once(hi);
  }
}

long StealingCounters::next(int rank) {
  Range& own = ranges_[static_cast<std::size_t>(rank)];
  const long mine = own.next.fetch_add(1, std::memory_order_relaxed);
  if (mine < own.end.get()) return mine;
  own.next.store(own.end.get(), std::memory_order_relaxed);  // undo overshoot

  // Steal: repeatedly pick the victim with the most remaining work. The
  // claim itself is a fetch_add on the victim's counter, so races with the
  // victim (or other thieves) stay correct -- at worst the claim misses
  // and we rescan.
  for (;;) {
    int victim = -1;
    long best_remaining = 0;
    for (int r = 0; r < static_cast<int>(ranges_.size()); ++r) {
      if (r == rank) continue;
      const Range& cand = ranges_[static_cast<std::size_t>(r)];
      const long rem =
          cand.end.get() - cand.next.load(std::memory_order_relaxed);
      if (rem > best_remaining) {
        best_remaining = rem;
        victim = r;
      }
    }
    if (victim < 0) return -1;  // everything exhausted
    Range& v = ranges_[static_cast<std::size_t>(victim)];
    const long got = v.next.fetch_add(1, std::memory_order_relaxed);
    if (got < v.end.get()) {
      own.stolen_by_me.fetch_add(1, std::memory_order_relaxed);
      return got;
    }
    v.next.store(v.end.get(), std::memory_order_relaxed);
  }
}

long StealingCounters::remaining(int rank) const {
  const Range& r = ranges_[static_cast<std::size_t>(rank)];
  const long rem = r.end.get() - r.next.load(std::memory_order_relaxed);
  return rem > 0 ? rem : 0;
}

long StealingCounters::steals(int rank) const {
  return ranges_[static_cast<std::size_t>(rank)].stolen_by_me.load(
      std::memory_order_relaxed);
}

WorkStealingScheduler::WorkStealingScheduler(Comm& comm,
                                             const std::string& key,
                                             long ntasks)
    : comm_(&comm), key_(key) {
  // Everyone must agree the previous user of this key is gone before the
  // first rank re-creates it.
  comm.barrier();
  counters_ =
      comm.get_or_create_shared<StealingCounters>(key, comm.size(), ntasks);
  comm.barrier();
}

void WorkStealingScheduler::release() {
  comm_->barrier();
  counters_.reset();
  if (comm_->rank() == 0) comm_->free_shared(key_);
  comm_->barrier();
}

}  // namespace mc::par
