// Ddi is header-only today; this TU anchors the library target and keeps a
// home for future out-of-line DDI features (e.g. distributed arrays).
#include "par/ddi.hpp"
