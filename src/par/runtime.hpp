#pragma once
// minimpi: an in-process SPMD runtime standing in for MPI.
//
// No MPI library is available in this reproduction environment, so "ranks"
// are std::threads executing the same function ("single program"), each with
// its own rank-private allocations (attributed via MemoryTracker). The
// communication surface is exactly what the paper's three algorithms use:
//
//   * barrier                    (implicit in DDI collectives)
//   * allreduce_sum              (= ddi_gsumf, the Fock reduction)
//   * broadcast                  (density distribution)
//   * dlb_next / dlb_reset       (= ddi_dlbnext, the global DLB counter)
//   * send/recv                  (completeness; point-to-point)
//
// The replication *structure* of the real MPI code -- every rank owning
// private copies of whatever it allocates -- is preserved, which is what
// the paper's memory-footprint analysis (eqs. 3a-3c) is about.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mc::par {

class Comm;

/// Barrier that can be torn down when a rank throws, so surviving ranks
/// don't deadlock: they observe the abort and unwind too.
class AbortableBarrier {
 public:
  explicit AbortableBarrier(int nranks) : nranks_(nranks) {}

  /// Blocks until all ranks arrive. Throws mc::Error if aborted.
  void arrive_and_wait();
  /// Wake all waiters with an error; subsequent waits also throw.
  void abort();
  [[nodiscard]] bool aborted() const;

 private:
  const int nranks_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  long generation_ = 0;
  bool aborted_ = false;
};

/// Launch `nranks` rank-threads running `body(comm)` and join them.
/// The calling thread blocks. If any rank throws, the first exception is
/// rethrown here after all ranks have unwound.
///
/// Nested runs are not allowed (one "job" at a time), matching one MPI
/// world per process.
void run_spmd(int nranks, const std::function<void(Comm&)>& body);

namespace detail {
struct SharedState;
}

/// Per-rank communicator handle. Only valid inside run_spmd's body.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Collective: block until every rank arrives.
  void barrier();
  /// Collective: element-wise sum of `data[0..n)` across ranks; every rank
  /// ends with the total. The reduction work itself is split across ranks
  /// in contiguous chunks (mirroring DDI's chunked gsum).
  void allreduce_sum(double* data, std::size_t n);
  /// Collective: max across ranks (convergence checks).
  double allreduce_max(double v);
  /// Collective: copy root's data[0..n) to every rank.
  void broadcast(double* data, std::size_t n, int root);

  /// Shared dynamic-load-balance counter (= ddi_dlbnext): atomically
  /// returns the next global task index, starting at 0 after dlb_reset.
  long dlb_next();
  /// Collective: reset the DLB counter to zero.
  void dlb_reset();

  /// Point-to-point: copies the payload into dst's mailbox. Non-blocking.
  void send(int dst, int tag, const double* data, std::size_t n);
  /// Blocks until a message with `tag` from `src` arrives.
  std::vector<double> recv(int src, int tag);

  /// Shared-object blackboard (the in-process analogue of DDI's shared
  /// memory segments): the first rank to ask for `key` constructs the
  /// object; everyone else gets the same instance. The object must be
  /// internally thread-safe. Lives until free_shared or job end.
  template <typename T, typename... Args>
  std::shared_ptr<T> get_or_create_shared(const std::string& key,
                                          Args&&... args) {
    std::shared_ptr<void> obj = shared_lookup(key);
    if (!obj) {
      obj = shared_publish(key, [&]() -> std::shared_ptr<void> {
        return std::make_shared<T>(std::forward<Args>(args)...);
      });
    }
    return std::static_pointer_cast<T>(obj);
  }
  /// Drop the blackboard entry (idempotent; typically called by one rank
  /// after a barrier).
  void free_shared(const std::string& key);

 private:
  friend void run_spmd(int, const std::function<void(Comm&)>&);
  Comm(int rank, detail::SharedState* st) : rank_(rank), st_(st) {}

  /// Barrier without the fault-injection hook: composite collectives
  /// (allreduce, broadcast, dlb_reset) synchronize through this so an
  /// injected `barrier` fault counts only explicit barrier() calls.
  void sync();

  std::shared_ptr<void> shared_lookup(const std::string& key);
  std::shared_ptr<void> shared_publish(
      const std::string& key,
      const std::function<std::shared_ptr<void>()>& make);

  int rank_;
  detail::SharedState* st_;
};

}  // namespace mc::par
