#pragma once
// minimpi: an in-process SPMD runtime standing in for MPI.
//
// No MPI library is available in this reproduction environment, so "ranks"
// are std::threads executing the same function ("single program"), each with
// its own rank-private allocations (attributed via MemoryTracker). The
// communication surface is exactly what the paper's three algorithms use:
//
//   * barrier                    (implicit in DDI collectives)
//   * allreduce_sum              (= ddi_gsumf, the Fock reduction)
//   * broadcast                  (density distribution)
//   * dlb_next / dlb_reset       (= ddi_dlbnext, the global DLB counter)
//   * send/recv                  (completeness; point-to-point)
//   * win_create/put/get/acc/fence (= ddi_create etc.: one-sided windows
//                                 over block-distributed arrays, the DDI
//                                 distributed-data layer; DESIGN.md s. 13)
//
// The replication *structure* of the real MPI code -- every rank owning
// private copies of whatever it allocates -- is preserved, which is what
// the paper's memory-footprint analysis (eqs. 3a-3c) is about. Window
// segments are the exception by design: each rank allocates (and is
// charged for) only its own block of a distributed array.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mc::par {

class Comm;

/// Barrier that can be torn down when a rank throws, so surviving ranks
/// don't deadlock: they observe the abort and unwind too.
class AbortableBarrier {
 public:
  explicit AbortableBarrier(int nranks) : nranks_(nranks) {}

  /// Blocks until all ranks arrive. Throws mc::Error if aborted.
  void arrive_and_wait();
  /// Wake all waiters with an error; subsequent waits also throw.
  void abort();
  [[nodiscard]] bool aborted() const;

 private:
  const int nranks_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int waiting_ = 0;
  long generation_ = 0;
  bool aborted_ = false;
};

/// Launch `nranks` rank-threads running `body(comm)` and join them.
/// The calling thread blocks. If any rank throws, the first exception is
/// rethrown here after all ranks have unwound.
///
/// Concurrent worlds launched from *different host threads* are allowed --
/// each run_spmd gets its own SharedState, like separate MPI communicators
/// -- and are how the job-server world pool runs several Fock builds side
/// by side (src/par/world_pool.hpp). What remains forbidden is nesting: a
/// rank thread may not start another world (its collectives would
/// deadlock), which is detected and rejected per-thread.
void run_spmd(int nranks, const std::function<void(Comm&)>& body);

/// Number of SPMD worlds currently live in this process (diagnostics and
/// world-pool tests).
[[nodiscard]] int active_spmd_worlds();

namespace detail {
struct SharedState;
struct WindowState;
}

/// Handle to a one-sided window: a global array of doubles split into one
/// contiguous segment per rank (rank r owns global indices
/// [rank_base(r), rank_base(r) + rank_elems(r))). Obtained collectively
/// from Comm::win_create; cheap to copy (shared handle, like an MPI_Win).
///
/// Semantics (the MPI-3 / DDI one-sided model, reduced to what the paper's
/// algorithms need):
///   * put/get are unordered with respect to each other until the next
///     win_fence; a get is only guaranteed to observe puts separated from
///     it by a fence.
///   * acc (+=) is element-atomic against other accs, so concurrent
///     accumulates from many ranks need no fence between them -- only a
///     fence before anyone *reads* the accumulated values.
///   * In minimpi every rank lives in one process, so each transfer takes
///     the intra-node shared-memory fast path (a memcpy into the owner's
///     segment); the API still routes everything through offsets so code
///     written against it has real one-sided structure.
class Window {
 public:
  Window() = default;
  [[nodiscard]] bool valid() const { return st_ != nullptr; }
  /// Total elements across all segments.
  [[nodiscard]] std::size_t size() const;
  /// First global element index of `rank`'s segment.
  [[nodiscard]] std::size_t rank_base(int rank) const;
  /// Elements in `rank`'s segment.
  [[nodiscard]] std::size_t rank_elems(int rank) const;
  /// Rank whose segment holds global element `index`.
  [[nodiscard]] int owner_of(std::size_t index) const;

 private:
  friend class Comm;
  std::shared_ptr<detail::WindowState> st_;
};

/// Per-rank communicator handle. Only valid inside run_spmd's body.
class Comm {
 public:
  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Collective: block until every rank arrives.
  void barrier();
  /// Collective: element-wise sum of `data[0..n)` across ranks; every rank
  /// ends with the total. The reduction work itself is split across ranks
  /// in contiguous chunks (mirroring DDI's chunked gsum).
  void allreduce_sum(double* data, std::size_t n);
  /// Collective: max across ranks (convergence checks).
  double allreduce_max(double v);
  /// Collective: copy root's data[0..n) to every rank.
  void broadcast(double* data, std::size_t n, int root);

  /// Shared dynamic-load-balance counter (= ddi_dlbnext): atomically
  /// returns the next global task index, starting at 0 after dlb_reset.
  long dlb_next();
  /// Collective: reset the DLB counter to zero.
  void dlb_reset();

  // -- One-sided windows (= DDI distributed arrays) --------------------

  /// Collective: create (or attach to) the window named `key`, with
  /// rank r owning `rank_elems[r]` doubles (identical vector on every
  /// rank). Each rank allocates its own zero-initialized segment, so the
  /// bytes are charged to the owning rank in MemoryTracker. Returns after
  /// every segment is ready for one-sided access.
  Window win_create(const std::string& key,
                    const std::vector<std::size_t>& rank_elems);
  /// Collective: release the window. No rank may access it afterwards;
  /// the handle is invalidated.
  void win_free(Window& w);
  /// One-sided write of src[0..n) to global elements [offset, offset+n).
  /// Visible to other ranks only after the next win_fence.
  void win_put(const Window& w, std::size_t offset, const double* src,
               std::size_t n);
  /// One-sided read of global elements [offset, offset+n) into dst.
  void win_get(const Window& w, std::size_t offset, double* dst,
               std::size_t n);
  /// One-sided accumulate: window[offset+i] += src[i]. Element-atomic
  /// against concurrent accs (striped locks); see Window for the fence
  /// rules.
  void win_acc(const Window& w, std::size_t offset, const double* src,
               std::size_t n);
  /// Collective: close the current one-sided access epoch. All put/get/acc
  /// issued before the fence (by any rank) are complete and visible after
  /// it.
  void win_fence(const Window& w);

  /// Point-to-point: copies the payload into dst's mailbox. Non-blocking.
  void send(int dst, int tag, const double* data, std::size_t n);
  /// Blocks until a message with `tag` from `src` arrives.
  std::vector<double> recv(int src, int tag);

  /// Shared-object blackboard (the in-process analogue of DDI's shared
  /// memory segments): the first rank to ask for `key` constructs the
  /// object; everyone else gets the same instance. The object must be
  /// internally thread-safe. Lives until free_shared or job end.
  template <typename T, typename... Args>
  std::shared_ptr<T> get_or_create_shared(const std::string& key,
                                          Args&&... args) {
    std::shared_ptr<void> obj = shared_lookup(key);
    if (!obj) {
      obj = shared_publish(key, [&]() -> std::shared_ptr<void> {
        return std::make_shared<T>(std::forward<Args>(args)...);
      });
    }
    return std::static_pointer_cast<T>(obj);
  }
  /// Drop the blackboard entry (idempotent; typically called by one rank
  /// after a barrier).
  void free_shared(const std::string& key);

 private:
  friend void run_spmd(int, const std::function<void(Comm&)>&);
  Comm(int rank, detail::SharedState* st) : rank_(rank), st_(st) {}

  /// Barrier without the fault-injection hook: composite collectives
  /// (allreduce, broadcast, dlb_reset) synchronize through this so an
  /// injected `barrier` fault counts only explicit barrier() calls.
  void sync();

  std::shared_ptr<void> shared_lookup(const std::string& key);
  std::shared_ptr<void> shared_publish(
      const std::string& key,
      const std::function<std::shared_ptr<void>()>& make);

  int rank_;
  detail::SharedState* st_;
};

}  // namespace mc::par
