#include "par/world_pool.hpp"

#include "common/error.hpp"

namespace mc::par {

WorldPool::WorldPool(int nworlds, TaskSource source)
    : source_(std::move(source)) {
  MC_CHECK(nworlds >= 1, "WorldPool needs at least one world");
  MC_CHECK(source_ != nullptr, "WorldPool needs a task source");
  tasks_run_.reserve(static_cast<std::size_t>(nworlds));
  for (int w = 0; w < nworlds; ++w) {
    tasks_run_.push_back(std::make_unique<std::atomic<long>>(0));
  }
  threads_.reserve(static_cast<std::size_t>(nworlds));
  for (int w = 0; w < nworlds; ++w) {
    threads_.emplace_back([this, w] { world_main(w); });
  }
}

WorldPool::~WorldPool() { join(); }

void WorldPool::join() {
  if (joined_) return;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  joined_ = true;
}

long WorldPool::tasks_run(int world) const {
  return tasks_run_[static_cast<std::size_t>(world)]->load();
}

int WorldPool::worlds_used() const {
  int used = 0;
  for (const auto& c : tasks_run_) {
    if (c->load() > 0) ++used;
  }
  return used;
}

void WorldPool::world_main(int world_id) {
  for (;;) {
    PooledTask task = source_(world_id);
    if (!task) return;
    try {
      task();
    } catch (...) {
      // A pooled task owns its error handling (the job server records an
      // aborted outcome inside the task); anything escaping here is a task
      // bug, but it must not kill the pool thread.
      tasks_failed_.fetch_add(1);
    }
    tasks_run_[static_cast<std::size_t>(world_id)]->fetch_add(1);
  }
}

}  // namespace mc::par
