#include "chem/builders.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace mc::chem::builders {

namespace {

struct Site {
  double x, y;
  double r2;  // distance^2 from lattice center
};

// Generate honeycomb lattice sites around the origin and keep the `natoms`
// closest to the center. Deterministic tie-breaking by (r2, x, y).
std::vector<Site> honeycomb_sites(std::size_t natoms, double bond) {
  MC_CHECK(natoms >= 1, "flake needs at least one atom");
  // Hexagonal lattice vectors for graphene: cell with 2-atom basis.
  const double a = bond * std::sqrt(3.0);  // lattice constant
  const double a1x = a, a1y = 0.0;
  const double a2x = a / 2.0, a2y = a * std::sqrt(3.0) / 2.0;
  // 2-atom basis.
  const double b2x = 0.0, b2y = bond;

  // Enough cells to cover a disk holding natoms: area per atom is
  // (3*sqrt(3)/4) * bond^2 / ... simpler: each unit cell (2 atoms) has area
  // a^2 * sqrt(3)/2. Pad generously.
  const double cell_area = a * a * std::sqrt(3.0) / 2.0;
  const double needed_area = cell_area * (static_cast<double>(natoms) / 2.0 + 8.0);
  const double radius = std::sqrt(needed_area / kPi) * 1.8 + 3.0 * a;
  const int nmax = static_cast<int>(radius / (a / 2.0)) + 2;

  std::vector<Site> sites;
  sites.reserve(static_cast<std::size_t>(4 * nmax * nmax));
  for (int i = -nmax; i <= nmax; ++i) {
    for (int j = -nmax; j <= nmax; ++j) {
      const double cx = i * a1x + j * a2x;
      const double cy = i * a1y + j * a2y;
      for (int b = 0; b < 2; ++b) {
        const double x = cx + (b ? b2x : 0.0);
        const double y = cy + (b ? b2y : 0.0);
        sites.push_back({x, y, x * x + y * y});
      }
    }
  }
  MC_CHECK(sites.size() >= natoms, "lattice patch too small (internal)");
  std::sort(sites.begin(), sites.end(), [](const Site& s, const Site& t) {
    if (s.r2 != t.r2) return s.r2 < t.r2;
    if (s.x != t.x) return s.x < t.x;
    return s.y < t.y;
  });
  sites.resize(natoms);
  return sites;
}

}  // namespace

Molecule graphene_flake(std::size_t natoms, double bond_angstrom) {
  const double bond = bond_angstrom * kBohrPerAngstrom;
  std::vector<Atom> atoms;
  atoms.reserve(natoms);
  for (const Site& s : honeycomb_sites(natoms, bond)) {
    atoms.push_back({6, {s.x, s.y, 0.0}});
  }
  return Molecule(std::move(atoms));
}

Molecule graphene_bilayer(std::size_t natoms_per_layer, double bond_angstrom,
                          double spacing_angstrom) {
  const double bond = bond_angstrom * kBohrPerAngstrom;
  const double spacing = spacing_angstrom * kBohrPerAngstrom;
  std::vector<Atom> atoms;
  atoms.reserve(2 * natoms_per_layer);
  const auto sites = honeycomb_sites(natoms_per_layer, bond);
  for (const Site& s : sites) {
    atoms.push_back({6, {s.x, s.y, 0.0}});
  }
  // AB (Bernal) stacking: second layer shifted by one bond length along y.
  for (const Site& s : sites) {
    atoms.push_back({6, {s.x, s.y + bond, spacing}});
  }
  return Molecule(std::move(atoms));
}

namespace {
const std::map<std::string, std::size_t>& dataset_atoms() {
  // Total atom counts from the paper's Table 2 / Table 4.
  static const std::map<std::string, std::size_t> kMap = {
      {"0.5nm", 44}, {"1.0nm", 120}, {"1.5nm", 220},
      {"2.0nm", 356}, {"5.0nm", 2016},
  };
  return kMap;
}
}  // namespace

Molecule paper_dataset(const std::string& name) {
  return graphene_bilayer(paper_dataset_natoms(name) / 2);
}

std::vector<std::string> paper_dataset_names() {
  std::vector<std::string> names;
  for (const auto& [k, v] : dataset_atoms()) names.push_back(k);
  std::sort(names.begin(), names.end(),
            [](const std::string& a, const std::string& b) {
              return dataset_atoms().at(a) < dataset_atoms().at(b);
            });
  return names;
}

std::size_t paper_dataset_natoms(const std::string& name) {
  auto it = dataset_atoms().find(name);
  MC_CHECK(it != dataset_atoms().end(), "unknown paper dataset: " + name);
  return it->second;
}

Molecule h2(double r_bohr) {
  Molecule m;
  m.add_atom(1, 0.0, 0.0, 0.0);
  m.add_atom(1, 0.0, 0.0, r_bohr);
  return m;
}

Molecule heh_plus(double r_bohr) {
  Molecule m;
  m.add_atom(2, 0.0, 0.0, 0.0);
  m.add_atom(1, 0.0, 0.0, r_bohr);
  return m;
}

Molecule water() {
  const double roh = 0.9584 * kBohrPerAngstrom;
  const double theta = 104.45 * kPi / 180.0;
  Molecule m;
  m.add_atom(8, 0.0, 0.0, 0.0);
  m.add_atom(1, roh * std::sin(theta / 2.0), 0.0, roh * std::cos(theta / 2.0));
  m.add_atom(1, -roh * std::sin(theta / 2.0), 0.0, roh * std::cos(theta / 2.0));
  return m;
}

Molecule methane() {
  const double rch = 1.089 * kBohrPerAngstrom;
  const double c = rch / std::sqrt(3.0);
  Molecule m;
  m.add_atom(6, 0.0, 0.0, 0.0);
  m.add_atom(1, c, c, c);
  m.add_atom(1, c, -c, -c);
  m.add_atom(1, -c, c, -c);
  m.add_atom(1, -c, -c, c);
  return m;
}

Molecule benzene() {
  const double rcc = 1.39 * kBohrPerAngstrom;
  const double rch = 1.09 * kBohrPerAngstrom;
  Molecule m;
  for (int k = 0; k < 6; ++k) {
    const double phi = kPi / 3.0 * k;
    m.add_atom(6, rcc * std::cos(phi), rcc * std::sin(phi), 0.0);
  }
  for (int k = 0; k < 6; ++k) {
    const double phi = kPi / 3.0 * k;
    const double r = rcc + rch;
    m.add_atom(1, r * std::cos(phi), r * std::sin(phi), 0.0);
  }
  return m;
}

Molecule alkane(int n_carbons) {
  MC_CHECK(n_carbons >= 1, "alkane needs at least one carbon");
  const double rcc = 1.54 * kBohrPerAngstrom;
  const double rch = 1.09 * kBohrPerAngstrom;
  const double half_angle = 0.5 * (111.0 * kPi / 180.0);
  const double dx = rcc * std::sin(half_angle);
  const double dy = rcc * std::cos(half_angle);

  Molecule m;
  // Zig-zag carbon backbone in the xz... use xy plane: y alternates.
  for (int i = 0; i < n_carbons; ++i) {
    m.add_atom(6, i * dx, (i % 2) ? dy : 0.0, 0.0);
  }
  // Hydrogens: two per carbon out of plane, plus chain-end caps.
  for (int i = 0; i < n_carbons; ++i) {
    const double x = i * dx;
    const double y = ((i % 2) ? dy : 0.0) + ((i % 2) ? 0.4 : -0.4) * rch;
    const double hz = rch * 0.9;
    m.add_atom(1, x, y, hz);
    m.add_atom(1, x, y, -hz);
  }
  // End caps along the chain axis.
  m.add_atom(1, -rch, 0.0, 0.0);
  m.add_atom(1, (n_carbons - 1) * dx + rch,
             ((n_carbons - 1) % 2) ? dy : 0.0, 0.0);
  return m;
}

}  // namespace mc::chem::builders
