#pragma once
// XYZ-format geometry I/O (coordinates in Angstrom in the file format,
// converted to/from Bohr at the boundary).

#include <iosfwd>
#include <string>

#include "chem/molecule.hpp"

namespace mc::chem {

/// Parse an XYZ stream: first line atom count, second line comment, then
/// "Sym x y z" records in Angstrom. Throws mc::Error on malformed input.
Molecule read_xyz(std::istream& in);
Molecule read_xyz_file(const std::string& path);

/// Write XYZ with the given comment line.
void write_xyz(std::ostream& out, const Molecule& mol,
               const std::string& comment = "");
void write_xyz_file(const std::string& path, const Molecule& mol,
                    const std::string& comment = "");

}  // namespace mc::chem
