#include "chem/element.hpp"

#include <array>

#include "common/error.hpp"

namespace mc::chem {

namespace {

struct ElementData {
  const char* symbol;
  double mass;            // amu
  double covalent_radius; // Angstrom
};

// Index = atomic number; index 0 is a placeholder.
constexpr std::array<ElementData, 19> kElements = {{
    {"X", 0.0, 0.0},
    {"H", 1.00794, 0.31},
    {"He", 4.002602, 0.28},
    {"Li", 6.941, 1.28},
    {"Be", 9.012182, 0.96},
    {"B", 10.811, 0.84},
    {"C", 12.0107, 0.76},
    {"N", 14.0067, 0.71},
    {"O", 15.9994, 0.66},
    {"F", 18.9984032, 0.57},
    {"Ne", 20.1797, 0.58},
    {"Na", 22.98976928, 1.66},
    {"Mg", 24.3050, 1.41},
    {"Al", 26.9815386, 1.21},
    {"Si", 28.0855, 1.11},
    {"P", 30.973762, 1.07},
    {"S", 32.065, 1.05},
    {"Cl", 35.453, 1.02},
    {"Ar", 39.948, 1.06},
}};

}  // namespace

int atomic_number(const std::string& symbol) {
  for (std::size_t z = 1; z < kElements.size(); ++z) {
    if (symbol == kElements[z].symbol) return static_cast<int>(z);
  }
  MC_CHECK(false, "unknown element symbol: " + symbol);
  return 0;  // unreachable
}

std::string element_symbol(int z) {
  MC_CHECK(z >= 1 && z < static_cast<int>(kElements.size()),
           "atomic number out of supported range");
  return kElements[static_cast<std::size_t>(z)].symbol;
}

double atomic_mass(int z) {
  MC_CHECK(z >= 1 && z < static_cast<int>(kElements.size()),
           "atomic number out of supported range");
  return kElements[static_cast<std::size_t>(z)].mass;
}

double covalent_radius(int z) {
  MC_CHECK(z >= 1 && z < static_cast<int>(kElements.size()),
           "atomic number out of supported range");
  return kElements[static_cast<std::size_t>(z)].covalent_radius;
}

}  // namespace mc::chem
