#include "chem/xyz_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "chem/element.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"

namespace mc::chem {

Molecule read_xyz(std::istream& in) {
  std::string line;
  MC_CHECK(static_cast<bool>(std::getline(in, line)), "xyz: missing count line");
  std::size_t n = 0;
  {
    std::istringstream is(line);
    MC_CHECK(static_cast<bool>(is >> n), "xyz: bad atom count");
  }
  MC_CHECK(static_cast<bool>(std::getline(in, line)), "xyz: missing comment line");

  Molecule mol;
  for (std::size_t i = 0; i < n; ++i) {
    MC_CHECK(static_cast<bool>(std::getline(in, line)),
             "xyz: truncated atom records");
    std::istringstream is(line);
    std::string sym;
    double x, y, z;
    MC_CHECK(static_cast<bool>(is >> sym >> x >> y >> z),
             "xyz: malformed atom record: " + line);
    mol.add_atom(atomic_number(sym), x * kBohrPerAngstrom,
                 y * kBohrPerAngstrom, z * kBohrPerAngstrom);
  }
  return mol;
}

Molecule read_xyz_file(const std::string& path) {
  std::ifstream f(path);
  MC_CHECK(f.good(), "cannot open xyz file: " + path);
  return read_xyz(f);
}

void write_xyz(std::ostream& out, const Molecule& mol,
               const std::string& comment) {
  out << mol.natoms() << '\n' << comment << '\n';
  out << std::fixed << std::setprecision(8);
  for (const Atom& a : mol.atoms()) {
    out << element_symbol(a.z) << ' ' << a.xyz[0] * kAngstromPerBohr << ' '
        << a.xyz[1] * kAngstromPerBohr << ' ' << a.xyz[2] * kAngstromPerBohr
        << '\n';
  }
}

void write_xyz_file(const std::string& path, const Molecule& mol,
                    const std::string& comment) {
  std::ofstream f(path);
  MC_CHECK(f.good(), "cannot open xyz file for writing: " + path);
  write_xyz(f, mol, comment);
}

}  // namespace mc::chem
