#include "chem/molecule.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace mc::chem {

int Molecule::total_z() const {
  int z = 0;
  for (const Atom& a : atoms_) z += a.z;
  return z;
}

int Molecule::nelectrons(int charge) const { return total_z() - charge; }

double Molecule::nuclear_repulsion() const {
  double e = 0.0;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      e += atoms_[i].z * atoms_[j].z / distance(i, j);
    }
  }
  return e;
}

double Molecule::distance(std::size_t i, std::size_t j) const {
  const auto& a = atoms_[i].xyz;
  const auto& b = atoms_[j].xyz;
  const double dx = a[0] - b[0];
  const double dy = a[1] - b[1];
  const double dz = a[2] - b[2];
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

std::array<double, 3> Molecule::centroid() const {
  std::array<double, 3> c{0.0, 0.0, 0.0};
  if (atoms_.empty()) return c;
  for (const Atom& a : atoms_) {
    for (int k = 0; k < 3; ++k) c[k] += a.xyz[k];
  }
  for (int k = 0; k < 3; ++k) c[k] /= static_cast<double>(atoms_.size());
  return c;
}

Molecule Molecule::translated(double dx, double dy, double dz) const {
  Molecule out = *this;
  for (Atom& a : out.atoms_) {
    a.xyz[0] += dx;
    a.xyz[1] += dy;
    a.xyz[2] += dz;
  }
  return out;
}

Molecule Molecule::rotated(double angle_z, double angle_y) const {
  const double cz = std::cos(angle_z), sz = std::sin(angle_z);
  const double cy = std::cos(angle_y), sy = std::sin(angle_y);
  Molecule out = *this;
  for (Atom& a : out.atoms_) {
    // Rotate about z.
    double x = cz * a.xyz[0] - sz * a.xyz[1];
    double y = sz * a.xyz[0] + cz * a.xyz[1];
    double z = a.xyz[2];
    // Rotate about y.
    const double x2 = cy * x + sy * z;
    const double z2 = -sy * x + cy * z;
    a.xyz = {x2, y, z2};
  }
  return out;
}

double Molecule::min_distance() const {
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      m = std::min(m, distance(i, j));
    }
  }
  return m;
}

}  // namespace mc::chem
