#pragma once
// Geometry builders: the paper's graphene-bilayer benchmark systems plus
// small fixture molecules used by tests and examples.

#include <string>
#include <vector>

#include "chem/molecule.hpp"

namespace mc::chem::builders {

/// Single graphene flake with exactly `natoms` carbon atoms: a honeycomb
/// lattice (C-C bond `bond_angstrom`) clipped to the `natoms` sites nearest
/// the lattice center, which yields a compact roughly-circular flake.
/// z = 0 plane.
Molecule graphene_flake(std::size_t natoms, double bond_angstrom = 1.42);

/// AB-stacked graphene bilayer with `natoms_per_layer` atoms in each layer
/// and interlayer spacing `spacing_angstrom` (3.35 A, graphite).
Molecule graphene_bilayer(std::size_t natoms_per_layer,
                          double bond_angstrom = 1.42,
                          double spacing_angstrom = 3.35);

/// The paper's five benchmark datasets (Table 2 / Table 4):
///   "0.5nm" -> 44 atoms, "1.0nm" -> 120, "1.5nm" -> 220, "2.0nm" -> 356,
///   "5.0nm" -> 2016; all graphene bilayers.
Molecule paper_dataset(const std::string& name);
/// Names accepted by paper_dataset(), in increasing size order.
std::vector<std::string> paper_dataset_names();
/// Total atom count for the named paper dataset.
std::size_t paper_dataset_natoms(const std::string& name);

// --- Small fixtures (coordinates in the usual literature geometries) ---

/// H2 at a given bond length in Bohr (default 1.4 a0, Szabo & Ostlund's
/// standard STO-3G test case).
Molecule h2(double r_bohr = 1.4);
/// HeH+ geometry at R = 1.4632 a0 (Szabo & Ostlund). Remember charge = +1.
Molecule heh_plus(double r_bohr = 1.4632);
/// Water, experimental-ish geometry (r_OH = 0.9584 A, angle 104.45 deg).
Molecule water();
/// Methane, tetrahedral, r_CH = 1.089 A.
Molecule methane();
/// Benzene, r_CC = 1.39 A, r_CH = 1.09 A, planar hexagon.
Molecule benzene();
/// Linear alkane chain C(n)H(2n+2), zig-zag backbone (load-imbalance tests).
Molecule alkane(int n_carbons);

}  // namespace mc::chem::builders
