#pragma once
// Periodic table data for the elements the built-in basis sets cover
// (H..Ar is plenty for the paper's hydrocarbon benchmarks).

#include <string>

namespace mc::chem {

/// Atomic number for an element symbol ("C" -> 6). Case-sensitive standard
/// symbols. Throws mc::Error for unknown symbols.
int atomic_number(const std::string& symbol);

/// Element symbol for an atomic number (6 -> "C").
std::string element_symbol(int z);

/// Standard atomic mass in amu (for reporting; HF itself only needs Z).
double atomic_mass(int z);

/// Covalent radius in Angstrom (used by geometry sanity checks).
double covalent_radius(int z);

}  // namespace mc::chem
