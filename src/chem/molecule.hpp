#pragma once
// Molecular geometry. All coordinates are in Bohr (atomic units) internally;
// builders and I/O convert from Angstrom.

#include <array>
#include <string>
#include <vector>

namespace mc::chem {

struct Atom {
  int z = 0;                          // atomic number
  std::array<double, 3> xyz{};        // position, Bohr
};

class Molecule {
 public:
  Molecule() = default;
  explicit Molecule(std::vector<Atom> atoms) : atoms_(std::move(atoms)) {}

  [[nodiscard]] std::size_t natoms() const { return atoms_.size(); }
  [[nodiscard]] const Atom& atom(std::size_t i) const { return atoms_[i]; }
  [[nodiscard]] const std::vector<Atom>& atoms() const { return atoms_; }

  void add_atom(int z, double x, double y, double z_coord) {
    atoms_.push_back({z, {x, y, z_coord}});
  }

  /// Total nuclear charge.
  [[nodiscard]] int total_z() const;
  /// Number of electrons for the given net charge.
  [[nodiscard]] int nelectrons(int charge = 0) const;

  /// Nuclear-nuclear repulsion energy, Hartree.
  [[nodiscard]] double nuclear_repulsion() const;

  /// Distance between atoms i and j, Bohr.
  [[nodiscard]] double distance(std::size_t i, std::size_t j) const;

  /// Geometric centroid, Bohr.
  [[nodiscard]] std::array<double, 3> centroid() const;

  /// Returns a copy translated by (dx, dy, dz) Bohr.
  [[nodiscard]] Molecule translated(double dx, double dy, double dz) const;
  /// Returns a copy rotated about the z axis by `angle` radians, then about
  /// the y axis by `angle2` (used by rotational-invariance property tests).
  [[nodiscard]] Molecule rotated(double angle_z, double angle_y = 0.0) const;

  /// Smallest interatomic distance, Bohr (0 atoms -> +inf). Geometry sanity.
  [[nodiscard]] double min_distance() const;

 private:
  std::vector<Atom> atoms_;
};

}  // namespace mc::chem
