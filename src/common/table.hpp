#pragma once
// Minimal fixed-width ASCII table printer used by the benchmark harnesses to
// emit paper-style tables (Table 2, Table 3, ...) and figure data series.

#include <iosfwd>
#include <string>
#include <vector>

namespace mc {

/// Builds and prints a column-aligned text table.
///
///   Table t({"# Nodes", "Time, s", "Efficiency, %"});
///   t.add_row({"4", "1318", "100"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with the given precision.
  void add_row_numeric(const std::vector<double>& cells, int precision = 3);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  /// Emit as CSV (for plotting scripts).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision into a string.
std::string fmt_double(double v, int precision = 3);
/// Format a byte count with a human-readable suffix ("1.5 GB").
std::string fmt_bytes(double bytes);

}  // namespace mc
