#pragma once
// MC_CHECK shadow-ownership verifier (DESIGN.md section 11.3).
//
// ShadowLedger is an exact, deterministic race detector specialized to the
// paper's Algorithm 3 update protocol. It shadows every element of the
// shared Fock matrix (and of the FI/FJ team buffers) with a last-accessor
// record -- (thread, kl-task, barrier-epoch) inside one rank's build -- and
// flags any pair of same-element accesses, at least one of them a write,
// performed by *different threads in the same barrier-delimited epoch*.
//
// Why epochs make this exact rather than probabilistic: every thread of the
// team passes the same ordered sequence of barriers (the protocol's phase
// structure), so two accesses carry the same epoch number if and only if no
// team barrier separates them -- i.e. if and only if the OpenMP memory model
// provides no happens-before edge between them. TSan samples interleavings
// and can miss a racy pair that happens to be scheduled apart; the ledger
// classifies every executed access pair, so a protocol violation is caught
// on its *first* occurrence, deterministically, on any schedule.
//
// The ledger is engaged by the builders only in MC_ACCESS_CHECK builds
// (-DMC_CHECK=ON), and within such builds can be disabled per-run with the
// MC_CHECK=0 environment variable (or forced either way with ScopedForce,
// which the 0-ULP impact test uses). This header is macro-independent and
// always compiled, so test binaries can drive ledgers directly whatever the
// build mode.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mc::check {

/// True when shadow-ownership checking should run. In MC_ACCESS_CHECK
/// builds defaults to on, switchable off with MC_CHECK=0 in the
/// environment; in normal builds the builders compile the hooks out, so
/// this only matters for test code driving ledgers directly.
bool enabled();

/// True when the core Fock builders were compiled with the access-check
/// hooks live (-DMC_CHECK=ON). Defined in src/core/fock_shared.cpp, so it
/// reports the *library's* build mode even when the asking test TU compiled
/// its own checked instantiations. Tests use it to skip builder-level
/// ledger assertions in normal builds.
bool core_hooks_compiled();

/// Force checking on/off for a scope regardless of build mode and
/// environment (process-global; tests are single-threaded at setup time).
class ScopedForce {
 public:
  explicit ScopedForce(bool on);
  ~ScopedForce();
  ScopedForce(const ScopedForce&) = delete;
  ScopedForce& operator=(const ScopedForce&) = delete;

 private:
  int prev_;
};

/// One detected protocol violation: two same-epoch accesses to the same
/// element from different threads, at least one of them a write.
struct Violation {
  int rank = -1;
  std::string region;     // "F", "FI", "FJ", ...
  std::size_t index = 0;  // element index within the region
  int tid_a = -1;         // earlier recorded accessor
  int tid_b = -1;         // accessor that exposed the conflict
  long task_a = -1;       // kl/ij task ids active at each access
  long task_b = -1;
  std::uint32_t epoch = 0;
  bool read_write = false;  // true: write vs read; false: write vs write
  [[nodiscard]] std::string to_string() const;
};

/// Process-global violation sink, aggregated across ranks so tests can
/// reset before a distributed build and inspect afterwards.
class Registry {
 public:
  static Registry& instance();
  void record(const Violation& v);
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::vector<Violation> violations() const;
  void reset();

 private:
  Registry() = default;
  mutable std::mutex mu_;
  std::vector<Violation> violations_;
};

/// Per-rank, per-build shadow of the protocol's shared objects. Regions are
/// registered up front (shared Fock matrix, FI/FJ buffers, per-thread
/// result slots); threads obtain a Thread handle and report barriers,
/// task claims, and element accesses through it.
class ShadowLedger {
 public:
  ShadowLedger(int rank, int nthreads);

  /// Register a shared region of `nelems` elements; returns its id.
  int add_region(std::string name, std::size_t nelems);

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] std::size_t violations() const {
    return nviolations_.load(std::memory_order_relaxed);
  }
  /// First violation recorded by this ledger (meaningful when
  /// violations() > 0; the conflicting element of the first bad write).
  [[nodiscard]] Violation first_violation() const;

  /// Per-thread reporting handle. Epoch counting is thread-local: each
  /// thread increments its own count at every team barrier it passes, so
  /// matching program points carry matching epochs with no extra
  /// synchronization (and therefore no perturbation of the schedule under
  /// test beyond the per-element atomics themselves).
  class Thread {
   public:
    Thread() = default;
    Thread(ShadowLedger* ledger, int tid) : ledger_(ledger), tid_(tid) {}

    /// Call immediately after every team barrier.
    void barrier() { ++epoch_; }
    /// Set the task id (DLB list position / kl index) attributed to
    /// subsequent accesses in diagnostics.
    void set_task(long task) { task_ = task; }

    void on_write(int region, std::size_t index) {
      if (ledger_ != nullptr) ledger_->note(region, index, tid_, task_, epoch_, true);
    }
    void on_read(int region, std::size_t index) {
      if (ledger_ != nullptr) ledger_->note(region, index, tid_, task_, epoch_, false);
    }
    [[nodiscard]] bool active() const { return ledger_ != nullptr; }
    [[nodiscard]] int tid() const { return tid_; }

   private:
    ShadowLedger* ledger_ = nullptr;
    int tid_ = 0;
    std::uint32_t epoch_ = 0;
    long task_ = -1;
  };

  [[nodiscard]] Thread thread(int tid) { return Thread(this, tid); }

 private:
  friend class Thread;

  // Packed last-accessor record: [epoch:24][tid:10][task:30]. A zero word
  // means "never accessed" -- real records always have the sentinel bit set
  // (bit 63) so epoch 0 / tid 0 / task 0 is distinguishable from empty.
  static constexpr std::uint64_t kOccupied = 1ULL << 63;
  static std::uint64_t pack(int tid, long task, std::uint32_t epoch);
  static void unpack(std::uint64_t rec, int& tid, long& task,
                     std::uint32_t& epoch);

  struct Region {
    std::string name;
    // Separate last-write and last-read shadows so write/read conflicts
    // are detected exactly (a read record never hides a write record).
    std::unique_ptr<std::atomic<std::uint64_t>[]> last_write;
    std::unique_ptr<std::atomic<std::uint64_t>[]> last_read;
    std::size_t nelems = 0;
  };

  void note(int region, std::size_t index, int tid, long task,
            std::uint32_t epoch, bool is_write);
  void report(const Region& reg, std::size_t index, std::uint64_t prev,
              int tid, long task, std::uint32_t epoch, bool read_write);

  int rank_;
  int nthreads_;
  std::vector<Region> regions_;
  std::atomic<std::size_t> nviolations_{0};
  mutable std::mutex first_mu_;
  Violation first_;
};

}  // namespace mc::check
