#include "common/access_check.hpp"

#include <cstdlib>
#include <sstream>

#include "common/error.hpp"

namespace mc::check {

namespace {

// -1 = follow build mode + environment; 0/1 = forced by ScopedForce.
std::atomic<int> g_force{-1};

bool env_default() {
#if defined(MC_ACCESS_CHECK) && MC_ACCESS_CHECK
  const bool build_default = true;
#else
  const bool build_default = false;
#endif
  const char* env = std::getenv("MC_CHECK");
  if (env == nullptr || env[0] == '\0') return build_default;
  return env[0] != '0';
}

}  // namespace

bool enabled() {
  const int f = g_force.load(std::memory_order_relaxed);
  if (f >= 0) return f != 0;
  // Re-read the environment each call (cheap relative to a Fock build's
  // setup); tests flip it between runs.
  return env_default();
}

ScopedForce::ScopedForce(bool on)
    : prev_(g_force.exchange(on ? 1 : 0, std::memory_order_relaxed)) {}

ScopedForce::~ScopedForce() { g_force.store(prev_, std::memory_order_relaxed); }

std::string Violation::to_string() const {
  std::ostringstream os;
  os << "rank " << rank << " region " << region << " element " << index
     << ": " << (read_write ? "write/read" : "write/write")
     << " conflict between thread " << tid_a << " (task " << task_a
     << ") and thread " << tid_b << " (task " << task_b << ") in epoch "
     << epoch << " -- no team barrier orders these accesses";
  return os.str();
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

void Registry::record(const Violation& v) {
  std::lock_guard<std::mutex> lk(mu_);
  violations_.push_back(v);
}

std::size_t Registry::count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return violations_.size();
}

std::vector<Violation> Registry::violations() const {
  std::lock_guard<std::mutex> lk(mu_);
  return violations_;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  violations_.clear();
}

ShadowLedger::ShadowLedger(int rank, int nthreads)
    : rank_(rank), nthreads_(nthreads) {
  MC_CHECK(nthreads >= 1, "ShadowLedger needs at least one thread");
}

int ShadowLedger::add_region(std::string name, std::size_t nelems) {
  Region reg;
  reg.name = std::move(name);
  reg.nelems = nelems;
  reg.last_write = std::make_unique<std::atomic<std::uint64_t>[]>(nelems);
  reg.last_read = std::make_unique<std::atomic<std::uint64_t>[]>(nelems);
  for (std::size_t i = 0; i < nelems; ++i) {
    reg.last_write[i].store(0, std::memory_order_relaxed);
    reg.last_read[i].store(0, std::memory_order_relaxed);
  }
  regions_.push_back(std::move(reg));
  return static_cast<int>(regions_.size()) - 1;
}

// Layout: [occupied:1][epoch:23][tid:10][task:30].
std::uint64_t ShadowLedger::pack(int tid, long task, std::uint32_t epoch) {
  const std::uint64_t t = static_cast<std::uint64_t>(tid) & 0x3FFU;
  const std::uint64_t k =
      static_cast<std::uint64_t>(task < 0 ? (1LL << 30) - 1 : task) &
      0x3FFFFFFFU;
  const std::uint64_t e = static_cast<std::uint64_t>(epoch) & 0x7FFFFFU;
  return kOccupied | (e << 40) | (t << 30) | k;
}

void ShadowLedger::unpack(std::uint64_t rec, int& tid, long& task,
                          std::uint32_t& epoch) {
  task = static_cast<long>(rec & 0x3FFFFFFFU);
  if (task == (1L << 30) - 1) task = -1;
  tid = static_cast<int>((rec >> 30) & 0x3FFU);
  epoch = static_cast<std::uint32_t>((rec >> 40) & 0x7FFFFFU);
}

void ShadowLedger::note(int region, std::size_t index, int tid, long task,
                        std::uint32_t epoch, bool is_write) {
  Region& reg = regions_[static_cast<std::size_t>(region)];
  MC_CHECK(index < reg.nelems, "shadow-ledger access out of region bounds");
  const std::uint64_t mine = pack(tid, task, epoch);
  if (is_write) {
    // Publish this write, then test the displaced write and the standing
    // read record for same-epoch/other-thread conflicts.
    const std::uint64_t prev_w =
        reg.last_write[index].exchange(mine, std::memory_order_relaxed);
    report(reg, index, prev_w, tid, task, epoch, /*read_write=*/false);
    const std::uint64_t prev_r =
        reg.last_read[index].load(std::memory_order_relaxed);
    report(reg, index, prev_r, tid, task, epoch, /*read_write=*/true);
  } else {
    reg.last_read[index].store(mine, std::memory_order_relaxed);
    const std::uint64_t prev_w =
        reg.last_write[index].load(std::memory_order_relaxed);
    report(reg, index, prev_w, tid, task, epoch, /*read_write=*/true);
  }
}

void ShadowLedger::report(const Region& reg, std::size_t index,
                          std::uint64_t prev, int tid, long task,
                          std::uint32_t epoch, bool read_write) {
  if ((prev & kOccupied) == 0) return;
  int ptid = 0;
  long ptask = 0;
  std::uint32_t pepoch = 0;
  unpack(prev, ptid, ptask, pepoch);
  if (ptid == tid || pepoch != epoch) return;  // ordered or same thread

  Violation v;
  v.rank = rank_;
  v.region = reg.name;
  v.index = index;
  v.tid_a = ptid;
  v.tid_b = tid;
  v.task_a = ptask;
  v.task_b = task;
  v.epoch = epoch;
  v.read_write = read_write;
  if (nviolations_.fetch_add(1, std::memory_order_relaxed) == 0) {
    std::lock_guard<std::mutex> lk(first_mu_);
    first_ = v;
  }
  Registry::instance().record(v);
}

Violation ShadowLedger::first_violation() const {
  std::lock_guard<std::mutex> lk(first_mu_);
  return first_;
}

}  // namespace mc::check
