#pragma once
// Error handling primitives shared by all minichem modules.
//
// Two macros are provided:
//   MC_CHECK(cond, msg)  -- always-on invariant check, throws mc::Error
//   MC_ASSERT(cond)      -- debug-only assertion (compiled out in NDEBUG)

#include <sstream>
#include <stdexcept>
#include <string>

namespace mc {

/// Exception type thrown on any violated precondition or runtime failure
/// inside minichem. Carries the source location in the message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace mc

#define MC_CHECK(cond, msg)                                      \
  do {                                                           \
    if (!(cond)) {                                               \
      ::mc::detail::throw_error(__FILE__, __LINE__,              \
                                std::string("check failed: ") +  \
                                    #cond + " -- " + (msg));     \
    }                                                            \
  } while (0)

#ifdef NDEBUG
#define MC_ASSERT(cond) ((void)0)
#else
#define MC_ASSERT(cond) MC_CHECK(cond, "assertion")
#endif
