#pragma once
// Per-rank memory accounting.
//
// The paper's central argument is about the *replication structure* of the
// large SCF data objects (density, Fock, overlap, buffers) across MPI ranks
// and OpenMP threads.  MemoryTracker lets every large allocation register
// itself under a category and a rank id, so tests and benchmarks can verify
// the asymptotic footprint formulas (paper eqs. 3a-3c) against what the code
// actually allocates.
//
// Rank attribution: mc::par::Runtime sets a thread-local "current rank" for
// each SPMD rank thread; allocations made on that thread are charged to it.
// OpenMP worker threads spawned inside a rank inherit rank -1 unless the
// caller scopes them with RankScope; Fock builders do this for their
// per-thread buffers.

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace mc {

/// Global registry of tracked allocations, keyed by (rank, category).
/// Thread-safe. Singleton (one process models one job).
class MemoryTracker {
 public:
  static MemoryTracker& instance();

  /// Charge `bytes` to (current rank, category).
  void add(const std::string& category, std::size_t bytes);
  /// Release `bytes` from (current rank, category).
  void sub(const std::string& category, std::size_t bytes);

  /// Current bytes charged to a rank (all categories). rank = -1 means
  /// "unattributed" (serial code outside any SPMD region).
  [[nodiscard]] std::size_t rank_bytes(int rank) const;
  /// Current bytes for one (rank, category).
  [[nodiscard]] std::size_t bytes(int rank, const std::string& category) const;
  /// Sum over all ranks and categories.
  [[nodiscard]] std::size_t total_bytes() const;
  /// High-water mark of total_bytes() since last reset().
  [[nodiscard]] std::size_t peak_bytes() const;
  /// High-water mark of rank_bytes(rank) since last reset().
  [[nodiscard]] std::size_t rank_peak_bytes(int rank) const;

  /// Number of ranks that have ever been charged.
  [[nodiscard]] std::vector<int> ranks() const;
  [[nodiscard]] std::vector<std::string> categories(int rank) const;

  /// Drop all records (typically between tests).
  void reset();

  /// Thread-local rank id used for attribution.
  static int current_rank();
  static void set_current_rank(int rank);

 private:
  MemoryTracker() = default;

  mutable std::mutex mu_;
  std::map<std::pair<int, std::string>, std::size_t> live_;
  std::map<int, std::size_t> rank_live_;
  std::map<int, std::size_t> rank_peak_;
  std::size_t total_ = 0;
  std::size_t peak_ = 0;
};

/// RAII: set the calling thread's rank attribution for the scope.
class RankScope {
 public:
  explicit RankScope(int rank)
      : prev_(MemoryTracker::current_rank()) {
    MemoryTracker::set_current_rank(rank);
  }
  ~RankScope() { MemoryTracker::set_current_rank(prev_); }
  RankScope(const RankScope&) = delete;
  RankScope& operator=(const RankScope&) = delete;

 private:
  int prev_;
};

/// A tracked, zero-initialized array of doubles. The workhorse storage type
/// for all large SCF objects. Registers its size with MemoryTracker under
/// the given category on construction and deregisters on destruction.
class TrackedBuffer {
 public:
  TrackedBuffer() = default;
  TrackedBuffer(std::string category, std::size_t n);
  ~TrackedBuffer();

  TrackedBuffer(TrackedBuffer&& other) noexcept;
  TrackedBuffer& operator=(TrackedBuffer&& other) noexcept;
  TrackedBuffer(const TrackedBuffer&) = delete;
  TrackedBuffer& operator=(const TrackedBuffer&) = delete;

  [[nodiscard]] double* data() { return data_; }
  [[nodiscard]] const double* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return n_; }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  void fill(double v);

 private:
  void release();

  std::string category_;
  double* data_ = nullptr;
  std::size_t n_ = 0;
  int rank_ = -1;  // rank charged at construction time
};

}  // namespace mc
