#pragma once
// Physical constants and unit conversions (CODATA-2014 values, which is
// what quantum chemistry packages of the paper's era used).

namespace mc {

/// Bohr radius in Angstrom: 1 bohr = 0.52917721067 A.
inline constexpr double kBohrPerAngstrom = 1.0 / 0.52917721067;
inline constexpr double kAngstromPerBohr = 0.52917721067;

/// Hartree in eV (for reporting only).
inline constexpr double kEvPerHartree = 27.21138602;

inline constexpr double kPi = 3.14159265358979323846;

}  // namespace mc
