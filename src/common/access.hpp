#pragma once
// Typed access annotations for the shared-memory update protocols
// (DESIGN.md section 11.2). The paper's race-freedom argument for
// Algorithm 3 is a discipline: thread-private FI/FJ accumulation, exclusive
// kl ownership of direct shared-Fock writes, and barrier-separated flush
// phases. These wrappers turn that discipline into types:
//
//   SharedReadOnly<T>  -- state published to the team before the parallel
//                         region and never mutated inside it (the density
//                         matrix). Only const access exists; assignment is
//                         deleted, so a "quick fix" that writes through it
//                         is a compile error, not a race.
//   ThreadPrivate<T>   -- one thread's lane of a team buffer (an FI/FJ
//                         column of Algorithm 3 lines 1-3). Mutation is
//                         only reachable through the owning thread's
//                         handle.
//   OwnedSlice<T>      -- a mutable window onto a shared region (the F_kl
//                         row stripe, a per-thread result slot) whose
//                         exclusivity is the protocol's claim. Writes go
//                         through add()/set(), never raw references.
//   TeamBuffer<T>      -- the whole FI/FJ lane array; hands out
//                         ThreadPrivate lanes and read-only peer access for
//                         the flush reduction.
//
// All types carry a `bool Checked` parameter defaulting to the translation
// unit's MC_ACCESS_CHECK macro. Unchecked instantiations are plain
// pointer/stride views -- every accessor is a one-line inline forwarder and
// sizeof() is asserted in tests, so the annotation layer is zero-overhead
// by construction. Checked instantiations additionally report every
// element access to the ShadowLedger (common/access_check.hpp), which
// verifies exclusive ownership per barrier epoch.
//
// mc-lint (tools/mc-lint) closes the loop statically: inside `#pragma omp
// parallel` regions of src/core, writes to shared state that do not go
// through these types (or another sanctioned construct) are MC-OMP-002
// findings.

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <type_traits>
#include <utility>

#include "common/access_check.hpp"
#include "common/error.hpp"
#include "common/tsan_annotations.hpp"

#ifndef MC_ACCESS_CHECK
#define MC_ACCESS_CHECK 0
#endif

namespace mc::acc {

/// Build-mode default for the Checked template parameters below. Evaluated
/// per translation unit, so a test TU can compile checked instantiations
/// against an unchecked library build (distinct template instantiations --
/// no ODR hazard).
inline constexpr bool kAccessChecked = MC_ACCESS_CHECK != 0;

namespace detail {
/// Zero-size stand-in for the check hooks in unchecked instantiations;
/// accepts and discards any constructor arguments so member-init lists can
/// stay uniform.
struct Empty {
  template <typename... A>
  explicit Empty(const A&...) {}
  Empty() = default;
};
}  // namespace detail

/// Build-scope handle owning (when checking is live) the ShadowLedger for
/// one rank's Fock build. Unchecked: empty. Checked but disabled at run
/// time (MC_CHECK=0): holds no ledger and every hook is a null no-op.
template <bool Checked = kAccessChecked>
class BuildChecker;

template <>
class BuildChecker<false> {
 public:
  BuildChecker(int /*rank*/, int /*nthreads*/) {}
  int region(const char* /*name*/, std::size_t /*nelems*/) { return -1; }
  [[nodiscard]] check::ShadowLedger::Thread thread(int /*tid*/) const {
    return {};
  }
  [[nodiscard]] bool active() const { return false; }
  [[nodiscard]] std::size_t violations() const { return 0; }
  /// No-op: nothing is checked in unchecked builds.
  void finalize() const {}
};

template <>
class BuildChecker<true> {
 public:
  BuildChecker(int rank, int nthreads) {
    if (check::enabled()) {
      ledger_ = std::make_unique<check::ShadowLedger>(rank, nthreads);
    }
  }
  int region(const char* name, std::size_t nelems) {
    return ledger_ ? ledger_->add_region(name, nelems) : -1;
  }
  [[nodiscard]] check::ShadowLedger::Thread thread(int tid) const {
    return ledger_ ? ledger_->thread(tid) : check::ShadowLedger::Thread();
  }
  [[nodiscard]] bool active() const { return ledger_ != nullptr; }
  [[nodiscard]] std::size_t violations() const {
    return ledger_ ? ledger_->violations() : 0;
  }
  /// Throws mc::Error on recorded ownership violations (call after the
  /// parallel region joins; minimpi's abort propagation unwinds the peer
  /// ranks). MC_CHECK_KEEP_GOING=1 downgrades to keep-running so a test
  /// can inspect the Registry instead.
  void finalize() const {
    if (ledger_ == nullptr || ledger_->violations() == 0) return;
    const char* keep = std::getenv("MC_CHECK_KEEP_GOING");
    if (keep != nullptr && keep[0] == '1') return;
    throw mc::Error("MC_CHECK ownership violation: " +
                    ledger_->first_violation().to_string());
  }

 private:
  std::unique_ptr<check::ShadowLedger> ledger_;
};

/// Per-thread protocol hook bundle: the ledger Thread handle (epoch +
/// task attribution). Unchecked: empty, all calls vanish.
template <bool Checked = kAccessChecked>
class ThreadCtx;

template <>
class ThreadCtx<false> {
 public:
  ThreadCtx() = default;
  ThreadCtx(const BuildChecker<false>& /*checker*/, int /*tid*/) {}
  void barrier() {}
  void set_task(long /*task*/) {}
  void on_write(int /*region*/, std::size_t /*index*/) {}
  void on_read(int /*region*/, std::size_t /*index*/) {}
};

template <>
class ThreadCtx<true> {
 public:
  ThreadCtx() = default;
  ThreadCtx(const BuildChecker<true>& checker, int tid)
      : th_(checker.thread(tid)) {}
  void barrier() { th_.barrier(); }
  void set_task(long task) { th_.set_task(task); }
  void on_write(int region, std::size_t index) { th_.on_write(region, index); }
  void on_read(int region, std::size_t index) { th_.on_read(region, index); }

 private:
  check::ShadowLedger::Thread th_;
};

/// An annotated team barrier: the TSan-visible `#pragma omp barrier` of
/// common/tsan_annotations.hpp plus the shadow-ledger epoch tick. Every
/// sync point of a checked protocol must advance the epoch, so the two are
/// fused in one macro (`th` is the thread's ThreadCtx).
#define MC_PROTOCOL_BARRIER(addr, th) \
  do {                                \
    MC_OMP_ANNOTATED_BARRIER(addr);   \
    (th).barrier();                   \
  } while (0)

namespace detail {
/// The per-view hook state of checked slices/lanes: the accessing thread's
/// context, the ledger region, and the view's base offset in that region.
struct ViewHook {
  ThreadCtx<true>* th = nullptr;
  int region = -1;
  std::size_t base = 0;
  ViewHook() = default;
  ViewHook(ThreadCtx<true>* t, int r, std::size_t b)
      : th(t), region(r), base(b) {}
};
}  // namespace detail

/// State the team may only read. Holds a value (or, with T = const U&, a
/// reference) fixed at construction; no non-const accessor exists and
/// assignment is deleted. Checked builds additionally trap use of the
/// two-phase init_once() path before/after its one allowed call.
template <typename T, bool Checked = kAccessChecked>
class SharedReadOnly {
  using Stored =
      std::conditional_t<std::is_reference_v<T>,
                         const std::remove_reference_t<T>*, T>;

 public:
  SharedReadOnly() = default;
  explicit SharedReadOnly(T v) {
    if constexpr (std::is_reference_v<T>) {
      v_ = &v;
    } else {
      v_ = std::move(v);
    }
    if constexpr (Checked) set_.value = true;
  }
  SharedReadOnly(const SharedReadOnly&) = delete;
  SharedReadOnly& operator=(const SharedReadOnly&) = delete;
  SharedReadOnly(SharedReadOnly&&) noexcept = default;
  SharedReadOnly& operator=(SharedReadOnly&&) noexcept = default;

  /// Two-phase construction for members filled in a constructor body
  /// (StealingCounters::Range::end). May be called once, before the value
  /// is ever shared; checked builds trap double-init.
  void init_once(T v) {
    if constexpr (Checked) {
      MC_CHECK(!set_.value, "SharedReadOnly initialized twice");
      set_.value = true;
    }
    if constexpr (std::is_reference_v<T>) {
      v_ = &v;
    } else {
      v_ = std::move(v);
    }
  }

  [[nodiscard]] const std::remove_reference_t<T>& get() const {
    if constexpr (Checked) {
      MC_CHECK(set_.value, "SharedReadOnly read before init");
    }
    if constexpr (std::is_reference_v<T>) {
      return *v_;
    } else {
      return v_;
    }
  }
  /// Forward const call syntax, e.g. density(fa, fb).
  template <typename... A>
  decltype(auto) operator()(A&&... a) const {
    return get()(std::forward<A>(a)...);
  }

 private:
  struct InitFlag {
    bool value = false;
  };
  Stored v_{};
  [[no_unique_address]]
  std::conditional_t<Checked, InitFlag, detail::Empty> set_{};
};

/// A mutable window onto a shared region whose exclusivity is claimed by
/// the update protocol (the direct F_kl stripe; a per-thread result slot).
/// All mutation goes through add()/set(); there is no way to obtain a raw
/// mutable reference, so every write is visible to the shadow ledger and
/// recognizable to mc-lint.
template <typename T, bool Checked = kAccessChecked>
class OwnedSlice {
 public:
  OwnedSlice() = default;
  /// A bare view (unchecked builds, or checked code outside any region).
  OwnedSlice(T* data, std::size_t len) : p_(data), n_(len) {}
  /// Checked view: `region` as returned by BuildChecker::region, `base`
  /// the slice's element offset within that region, `th` the accessing
  /// thread's context (must outlive the slice).
  OwnedSlice(T* data, std::size_t len, ThreadCtx<Checked>* th, int region,
             std::size_t base)
      : p_(data), n_(len), hook_(th, region, base) {}

  OwnedSlice(const OwnedSlice&) = default;
  OwnedSlice(OwnedSlice&&) noexcept = default;
  /// Re-seating an owned view is how ownership would leak between
  /// protocol phases; create a fresh slice instead.
  OwnedSlice& operator=(const OwnedSlice&) = delete;
  OwnedSlice& operator=(OwnedSlice&&) = delete;

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Sub-window (e.g. one matrix row out of a whole-matrix slice).
  [[nodiscard]] OwnedSlice slice(std::size_t offset, std::size_t len) const {
    if constexpr (Checked) {
      return OwnedSlice(p_ + offset, len, hook_.th, hook_.region,
                        hook_.base + offset);
    } else {
      return OwnedSlice(p_ + offset, len);
    }
  }

  /// The sanctioned accumulation: p[i] += v, reported as a write. (Slices
  /// are views -- like std::span, a const slice still writes through; what
  /// the types forbid is obtaining a raw mutable reference.)
  void add(std::size_t i, T v) const {
    p_[i] += v;
    if constexpr (Checked) {
      if (hook_.th != nullptr) hook_.th->on_write(hook_.region, hook_.base + i);
    }
  }
  void set(std::size_t i, T v) const {
    p_[i] = v;
    if constexpr (Checked) {
      if (hook_.th != nullptr) hook_.th->on_write(hook_.region, hook_.base + i);
    }
  }
  [[nodiscard]] T read(std::size_t i) const {
    if constexpr (Checked) {
      if (hook_.th != nullptr) hook_.th->on_read(hook_.region, hook_.base + i);
    }
    return p_[i];
  }

 private:
  T* p_ = nullptr;
  std::size_t n_ = 0;
  [[no_unique_address]]
  std::conditional_t<Checked, detail::ViewHook, detail::Empty> hook_{};
};

/// One thread's lane of a team buffer: the FI/FJ "column" of Algorithm 3.
/// Obtainable only from TeamBuffer::lane, and mutation is only reachable
/// through it -- peers reach other lanes read-only via TeamBuffer::read.
template <typename T, bool Checked = kAccessChecked>
class ThreadPrivate {
 public:
  ThreadPrivate() = default;

  void add(std::size_t i, T v) const {
    p_[i] += v;
    if constexpr (Checked) {
      if (hook_.th != nullptr) hook_.th->on_write(hook_.region, hook_.base + i);
    }
  }
  /// Owner re-zero of [0, len) (the post-flush reset, Figure 1B).
  void zero(std::size_t len) const {
    std::fill(p_, p_ + len, T{});
    if constexpr (Checked) {
      if (hook_.th != nullptr) {
        for (std::size_t i = 0; i < len; ++i) {
          hook_.th->on_write(hook_.region, hook_.base + i);
        }
      }
    }
  }
  [[nodiscard]] T read(std::size_t i) const {
    if constexpr (Checked) {
      if (hook_.th != nullptr) hook_.th->on_read(hook_.region, hook_.base + i);
    }
    return p_[i];
  }
  [[nodiscard]] std::size_t size() const { return n_; }

 private:
  template <typename U, bool C>
  friend class TeamBuffer;

  ThreadPrivate(T* lane, std::size_t len) : p_(lane), n_(len) {}

  T* p_ = nullptr;
  std::size_t n_ = 0;
  [[no_unique_address]]
  std::conditional_t<Checked, detail::ViewHook, detail::Empty> hook_{};
};

/// The whole lane array of a team buffer (nlanes x stride elements).
/// Construct one per thread inside the region (it is a cheap view); the
/// thread mutates its own lane via lane(tid) and reads peers via read()
/// during the flush reduction.
template <typename T, bool Checked = kAccessChecked>
class TeamBuffer {
 public:
  TeamBuffer() = default;
  TeamBuffer(T* base, int nlanes, std::size_t stride, ThreadCtx<Checked>* th,
             int region)
      : base_(base), nlanes_(nlanes), stride_(stride),
        hook_(th, region, std::size_t{0}) {}

  /// The calling thread's own mutable lane. `tid` must be the tid the
  /// surrounding ThreadCtx was created with -- the protocol's "mutation
  /// only through the owner" rule; under MC_CHECK the ledger attributes
  /// every write to the handle's thread, so a borrowed lane shows up as a
  /// cross-thread conflict.
  [[nodiscard]] ThreadPrivate<T, Checked> lane(int tid) const {
    ThreadPrivate<T, Checked> lp(
        base_ + static_cast<std::size_t>(tid) * stride_, stride_);
    if constexpr (Checked) {
      lp.hook_ = detail::ViewHook(hook_.th, hook_.region,
                                  static_cast<std::size_t>(tid) * stride_);
    }
    return lp;
  }

  /// Cross-lane read (the flush reduction's sum over thread columns).
  [[nodiscard]] T read(int lane, std::size_t i) const {
    const std::size_t idx = static_cast<std::size_t>(lane) * stride_ + i;
    if constexpr (Checked) {
      if (hook_.th != nullptr) hook_.th->on_read(hook_.region, idx);
    }
    return base_[idx];
  }

  [[nodiscard]] int lanes() const { return nlanes_; }
  [[nodiscard]] std::size_t stride() const { return stride_; }

 private:
  T* base_ = nullptr;
  int nlanes_ = 0;
  std::size_t stride_ = 0;
  [[no_unique_address]]
  std::conditional_t<Checked, detail::ViewHook, detail::Empty> hook_{};
};

}  // namespace mc::acc
