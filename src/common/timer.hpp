#pragma once
// Wall-clock timing. The paper's artifact appendix notes GAMESS timers
// report CPU time, which is wrong for multithreaded code; like the authors
// (who switched to omp_get_wtime) we use a monotonic wall clock everywhere.

#include <chrono>

namespace mc {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer: sums durations across start()/stop() pairs.
class AccumTimer {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) { total_ += t_.seconds(); running_ = false; ++laps_; }
  }
  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] long laps() const { return laps_; }
  void reset() { total_ = 0.0; laps_ = 0; running_ = false; }

 private:
  WallTimer t_;
  double total_ = 0.0;
  long laps_ = 0;
  bool running_ = false;
};

}  // namespace mc
