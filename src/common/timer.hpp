#pragma once
// Wall-clock timing. The paper's artifact appendix notes GAMESS timers
// report CPU time, which is wrong for multithreaded code; like the authors
// (who switched to omp_get_wtime) we use a monotonic wall clock everywhere.

#include <chrono>

namespace mc {

/// Monotonic wall-clock stopwatch.
///
/// Must stay on steady_clock: high_resolution_clock is allowed to alias
/// system_clock, which jumps under NTP adjustment -- a trace or scoped
/// duration taken across such a jump can go negative. The static_assert
/// makes the monotonicity requirement a compile error instead of a
/// comment, and the obs trace layer (obs/trace.hpp) timestamps on the
/// same clock so spans and timers are directly comparable.
class WallTimer {
 public:
  /// Monotonicity guarantee, visible to tests.
  static constexpr bool kIsSteady = std::chrono::steady_clock::is_steady;

  WallTimer() : start_(clock::now()) {}

  /// Restart the timer.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  static_assert(clock::is_steady,
                "timers must be monotonic (immune to NTP clock steps)");
  clock::time_point start_;
};

/// Accumulating timer: sums durations across start()/stop() pairs.
class AccumTimer {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) { total_ += t_.seconds(); running_ = false; ++laps_; }
  }
  [[nodiscard]] double total_seconds() const { return total_; }
  [[nodiscard]] long laps() const { return laps_; }
  void reset() { total_ = 0.0; laps_ = 0; running_ = false; }

 private:
  WallTimer t_;
  double total_ = 0.0;
  long laps_ = 0;
  bool running_ = false;
};

}  // namespace mc
