#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mc {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MC_CHECK(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MC_CHECK(cells.size() == header_.size(), "row width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_row_numeric(const std::vector<double>& cells, int precision) {
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (double v : cells) row.push_back(fmt_double(v, precision));
  add_row(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto hline = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::left << std::setw(static_cast<int>(width[c]))
         << row[c] << ' ';
    }
    os << "|\n";
  };
  hline();
  print_row(header_);
  hline();
  for (const auto& row : rows_) print_row(row);
  hline();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_bytes(double bytes) {
  static const char* kSuffix[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int s = 0;
  while (bytes >= 1024.0 && s < 5) {
    bytes /= 1024.0;
    ++s;
  }
  std::ostringstream os;
  const int precision = (s == 0) ? 0 : (bytes < 10 ? 2 : 1);
  os << std::fixed << std::setprecision(precision) << bytes << ' '
     << kSuffix[s];
  return os.str();
}

}  // namespace mc
