#include "common/memory_tracker.hpp"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/error.hpp"

namespace mc {

namespace {
thread_local int t_current_rank = -1;
}  // namespace

MemoryTracker& MemoryTracker::instance() {
  static MemoryTracker tracker;
  return tracker;
}

int MemoryTracker::current_rank() { return t_current_rank; }
void MemoryTracker::set_current_rank(int rank) { t_current_rank = rank; }

void MemoryTracker::add(const std::string& category, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  live_[{t_current_rank, category}] += bytes;
  total_ += bytes;
  peak_ = std::max(peak_, total_);
  std::size_t& rl = rank_live_[t_current_rank];
  rl += bytes;
  std::size_t& rp = rank_peak_[t_current_rank];
  rp = std::max(rp, rl);
}

void MemoryTracker::sub(const std::string& category, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  // Release up to `remaining` bytes from one (rank, category) entry,
  // clamped to what that entry actually holds, and mirror every byte
  // released into total_ and the rank's live counter. Clamping everywhere
  // is what keeps the invariant total_ == sum(live_) under unmatched or
  // cross-rank frees: the old code bailed out without touching total_
  // whenever no single entry could absorb the whole free, so total_ and
  // peak_ drifted upward across SCF runs.
  std::size_t remaining = bytes;
  const auto deduct = [&](int rank, std::size_t& val) {
    const std::size_t take = std::min(val, remaining);
    val -= take;
    remaining -= take;
    total_ -= take;
    auto rit = rank_live_.find(rank);
    if (rit != rank_live_.end()) rit->second -= std::min(rit->second, take);
  };
  auto it = live_.find({t_current_rank, category});
  if (it != live_.end()) deduct(it->first.first, it->second);
  if (remaining > 0) {
    // Deregistration on a different thread than registration is allowed
    // (buffers may be moved across ranks); drain the category under any
    // rank until the free is fully matched.
    for (auto& [key, val] : live_) {
      if (remaining == 0) break;
      if (key.second == category && val > 0) deduct(key.first, val);
    }
  }
  // Any remainder still unmatched is a genuinely unpaired free: tolerated,
  // but it no longer corrupts the global accounting.
}

std::size_t MemoryTracker::rank_bytes(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t sum = 0;
  for (const auto& [key, val] : live_) {
    if (key.first == rank) sum += val;
  }
  return sum;
}

std::size_t MemoryTracker::bytes(int rank, const std::string& category) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find({rank, category});
  return it == live_.end() ? 0 : it->second;
}

std::size_t MemoryTracker::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::size_t MemoryTracker::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

std::size_t MemoryTracker::rank_peak_bytes(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rank_peak_.find(rank);
  return it == rank_peak_.end() ? 0 : it->second;
}

std::vector<int> MemoryTracker::ranks() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::set<int> out;
  for (const auto& [key, val] : live_) {
    if (val > 0) out.insert(key.first);
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> MemoryTracker::categories(int rank) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, val] : live_) {
    if (key.first == rank && val > 0) out.push_back(key.second);
  }
  return out;
}

void MemoryTracker::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  live_.clear();
  rank_live_.clear();
  rank_peak_.clear();
  total_ = 0;
  peak_ = 0;
}

TrackedBuffer::TrackedBuffer(std::string category, std::size_t n)
    : category_(std::move(category)), n_(n), rank_(t_current_rank) {
  if (n_ == 0) return;
  data_ = new double[n_]();
  MemoryTracker::instance().add(category_, n_ * sizeof(double));
}

TrackedBuffer::~TrackedBuffer() { release(); }

void TrackedBuffer::release() {
  if (data_ != nullptr) {
    // Charge the release to the rank that owned the allocation.
    RankScope scope(rank_);
    MemoryTracker::instance().sub(category_, n_ * sizeof(double));
    delete[] data_;
    data_ = nullptr;
    n_ = 0;
  }
}

TrackedBuffer::TrackedBuffer(TrackedBuffer&& other) noexcept
    : category_(std::move(other.category_)),
      data_(other.data_),
      n_(other.n_),
      rank_(other.rank_) {
  other.data_ = nullptr;
  other.n_ = 0;
}

TrackedBuffer& TrackedBuffer::operator=(TrackedBuffer&& other) noexcept {
  if (this != &other) {
    release();
    category_ = std::move(other.category_);
    data_ = other.data_;
    n_ = other.n_;
    rank_ = other.rank_;
    other.data_ = nullptr;
    other.n_ = 0;
  }
  return *this;
}

void TrackedBuffer::fill(double v) {
  std::fill(data_, data_ + n_, v);
}

}  // namespace mc
