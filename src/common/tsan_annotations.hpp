#pragma once
// ThreadSanitizer happens-before annotations for OpenMP synchronization.
//
// TSan only understands synchronization it can see: pthread primitives,
// std::mutex/condition_variable, and C++/__atomic operations in instrumented
// translation units. GCC's libgomp is not TSan-instrumented and synchronizes
// its barriers and team fork/join through raw futexes, so a perfectly
// barrier-ordered OpenMP program (exactly the paper's Algorithm 3 protocol)
// still produces false race reports: TSan sees the conflicting accesses but
// not the barrier between them.
//
// The fix is to mirror every OpenMP synchronization point our code relies on
// with an explicit happens-before edge on a team-shared token address:
//
//   * MC_TSAN_RELEASE(tag) before the sync point publishes the thread's
//     writes into the token's vector clock;
//   * MC_TSAN_ACQUIRE(tag) after the sync point merges every published
//     clock into the acquiring thread.
//
// Since the annotations sit immediately around a *real* barrier, the edges
// they add are exactly the edges the barrier enforces at run time -- they
// never mask a genuine race across the barrier, only teach TSan about
// ordering that actually exists. MC_OMP_ANNOTATED_BARRIER bundles the
// release / omp-barrier / acquire triple; worksharing constructs whose
// implicit barrier carries cross-thread data flow must instead use `nowait`
// followed by MC_OMP_ANNOTATED_BARRIER so the edge can be expressed.
//
// All macros compile to nothing outside -fsanitize=thread builds.

#if defined(__SANITIZE_THREAD__)
#define MC_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MC_TSAN_ENABLED 1
#endif
#endif

#ifdef MC_TSAN_ENABLED
extern "C" {
void AnnotateHappensBefore(const char* file, int line,
                           const volatile void* addr);
void AnnotateHappensAfter(const char* file, int line,
                          const volatile void* addr);
}
#define MC_TSAN_RELEASE(addr) AnnotateHappensBefore(__FILE__, __LINE__, addr)
#define MC_TSAN_ACQUIRE(addr) AnnotateHappensAfter(__FILE__, __LINE__, addr)
#else
#define MC_TSAN_RELEASE(addr) static_cast<void>(addr)
#define MC_TSAN_ACQUIRE(addr) static_cast<void>(addr)
#endif

/// A `#pragma omp barrier` TSan can reason about: every thread's writes
/// before the barrier happen-before every thread's reads after it.
/// `addr` must be the same shared address for the whole team.
#define MC_OMP_ANNOTATED_BARRIER(addr) \
  do {                                 \
    MC_TSAN_RELEASE(addr);             \
    _Pragma("omp barrier")             \
    MC_TSAN_ACQUIRE(addr);             \
  } while (0)
