#pragma once
// ThreadSanitizer happens-before annotations for OpenMP synchronization.
//
// TSan only understands synchronization it can see: pthread primitives,
// std::mutex/condition_variable, and C++/__atomic operations in instrumented
// translation units. GCC's libgomp is not TSan-instrumented and synchronizes
// its barriers and team fork/join through raw futexes, so a perfectly
// barrier-ordered OpenMP program (exactly the paper's Algorithm 3 protocol)
// still produces false race reports: TSan sees the conflicting accesses but
// not the barrier between them.
//
// The fix is to mirror every OpenMP synchronization point our code relies on
// with an explicit happens-before edge on a team-shared token address:
//
//   * MC_TSAN_RELEASE(tag) before the sync point publishes the thread's
//     writes into the token's vector clock;
//   * MC_TSAN_ACQUIRE(tag) after the sync point merges every published
//     clock into the acquiring thread.
//
// Since the annotations sit immediately around a *real* barrier, the edges
// they add are exactly the edges the barrier enforces at run time -- they
// never mask a genuine race across the barrier, only teach TSan about
// ordering that actually exists. MC_OMP_ANNOTATED_BARRIER bundles the
// release / omp-barrier / acquire triple; worksharing constructs whose
// implicit barrier carries cross-thread data flow must instead use `nowait`
// followed by MC_OMP_ANNOTATED_BARRIER so the edge can be expressed.
//
// All macros compile to nothing outside -fsanitize=thread builds.

#if defined(__SANITIZE_THREAD__)
#define MC_TSAN_ENABLED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MC_TSAN_ENABLED 1
#endif
#endif

#ifdef MC_TSAN_ENABLED
extern "C" {
void AnnotateHappensBefore(const char* file, int line,
                           const volatile void* addr);
void AnnotateHappensAfter(const char* file, int line,
                          const volatile void* addr);
}
#define MC_TSAN_RELEASE(addr) AnnotateHappensBefore(__FILE__, __LINE__, addr)
#define MC_TSAN_ACQUIRE(addr) AnnotateHappensAfter(__FILE__, __LINE__, addr)
#else
#define MC_TSAN_RELEASE(addr) static_cast<void>(addr)
#define MC_TSAN_ACQUIRE(addr) static_cast<void>(addr)
#endif

/// A `#pragma omp barrier` TSan can reason about: every thread's writes
/// before the barrier happen-before every thread's reads after it.
/// `addr` must be the same shared address for the whole team.
#define MC_OMP_ANNOTATED_BARRIER(addr) \
  do {                                 \
    MC_TSAN_RELEASE(addr);             \
    _Pragma("omp barrier")             \
    MC_TSAN_ACQUIRE(addr);             \
  } while (0)

#if defined(MC_TSAN_ENABLED) && defined(_OPENMP)
#include <omp.h>
#endif

/// Placed after the join of a parallel region (never inside one), releases
/// libgomp's pooled worker threads so the *next* region on this master
/// spawns fresh pthreads. This closes the one fork edge the annotations
/// above cannot express: a reused pooled worker's prologue read of the
/// compiler-generated argument struct is handed off through an
/// uninstrumented futex and happens before any user statement where an
/// acquire could sit, so TSan reports it as a race against the forking
/// thread's struct write. A fresh thread's first region is ordered by the
/// TSan-visible pthread_create edge instead. Frees only the calling
/// thread's pool (safe concurrently from several minimpi rank threads);
/// compiles to nothing outside -fsanitize=thread builds, so release builds
/// keep the pool-reuse fast path.
#if defined(MC_TSAN_ENABLED) && defined(_OPENMP)
#define MC_TSAN_OMP_QUIESCE() \
  static_cast<void>(omp_pause_resource_all(omp_pause_soft))
#else
#define MC_TSAN_OMP_QUIESCE() static_cast<void>(0)
#endif
