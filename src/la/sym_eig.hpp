#pragma once
// Dense symmetric eigensolver: Householder tridiagonalization followed by
// the implicit-shift QL iteration (the classic EISPACK tred2/tql2 pair).
// This is the "diagonalization" step of the SCF loop (paper section 3:
// FC = eSC).  O(N^3); adequate for the functional-scale systems we run
// end-to-end here.

#include <vector>

#include "la/matrix.hpp"

namespace mc::la {

struct SymEigResult {
  /// Eigenvalues in ascending order.
  std::vector<double> values;
  /// Eigenvectors in the *columns*, same order as `values`.
  Matrix vectors;
};

/// Full eigendecomposition of a symmetric matrix. Throws mc::Error if the
/// matrix is not square or the QL iteration fails to converge.
SymEigResult eigh(const Matrix& a);

/// Solve the symmetric generalized problem F C = e S C by transforming with
/// an orthogonalizer X (S = X^-T X^-1 form is not required; any X with
/// X^T S X = I works, e.g. Loewdin S^-1/2 or canonical). Returns
/// eigenvalues ascending and C = X * C' with C' the eigenvectors of X^T F X.
SymEigResult eigh_generalized(const Matrix& f, const Matrix& x);

}  // namespace mc::la
