#include "la/packed.hpp"

#include "common/error.hpp"

namespace mc::la {

Matrix PackedSymMatrix::unpack() const {
  Matrix m(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = at(i, j);
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

PackedSymMatrix PackedSymMatrix::pack(const Matrix& m) {
  MC_CHECK(m.rows() == m.cols(), "pack requires a square matrix");
  PackedSymMatrix p(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      p.at(i, j) = 0.5 * (m(i, j) + m(j, i));
    }
  }
  return p;
}

}  // namespace mc::la
