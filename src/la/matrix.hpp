#pragma once
// Dense row-major matrix of doubles. This is the storage type for all the
// big SCF objects (overlap, core Hamiltonian, density, Fock, MO coefficients)
// whose replication pattern the paper analyzes.
//
// Large matrices should be constructed with a tracking category so their
// bytes are attributed to the owning rank in MemoryTracker (see
// common/memory_tracker.hpp).

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace mc::la {

class Matrix {
 public:
  Matrix() = default;
  /// Untracked rows x cols zero matrix.
  Matrix(std::size_t rows, std::size_t cols);
  /// Tracked variant: bytes charged to MemoryTracker under `category`.
  Matrix(std::size_t rows, std::size_t cols, const std::string& category);
  /// Tracked copy of an (possibly untracked) source matrix.
  Matrix(const Matrix& src, const std::string& category);
  /// Build from nested initializer list (tests and small fixtures).
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  Matrix(const Matrix&);
  Matrix& operator=(const Matrix&);
  Matrix(Matrix&&) noexcept;
  Matrix& operator=(Matrix&&) noexcept;
  ~Matrix();

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double* data() { return data_; }
  [[nodiscard]] const double* data() const { return data_; }
  [[nodiscard]] double* row(std::size_t i) { return data_ + i * cols_; }
  [[nodiscard]] const double* row(std::size_t i) const {
    return data_ + i * cols_;
  }

  void fill(double v);
  void set_zero() { fill(0.0); }
  /// Copy values from a same-shape matrix, keeping this matrix's identity
  /// (tracking category and allocation). Use instead of operator= when the
  /// destination is a tracked long-lived object and the source a temporary.
  void copy_values_from(const Matrix& src);
  /// Set to the identity (square only).
  void set_identity();

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  [[nodiscard]] Matrix transposed() const;
  /// In-place (A + A^T)/2. Square only.
  void symmetrize();

  [[nodiscard]] double trace() const;
  [[nodiscard]] double max_abs() const;
  /// max_ij |A_ij - B_ij|
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;
  /// Frobenius norm.
  [[nodiscard]] double norm_frobenius() const;
  /// true if max |A - A^T| <= tol.
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

  static Matrix identity(std::size_t n);

 private:
  void allocate(std::size_t rows, std::size_t cols);
  void release();

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  double* data_ = nullptr;
  std::string category_;  // non-empty => tracked
  int rank_ = -1;         // rank the allocation was charged to
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(double s, Matrix a);

/// Number of representable doubles between a and b (0 = bit-identical up to
/// the sign of zero; max() if either is NaN). The bit-level comparison the
/// cross-algorithm equivalence harness is built on: reassociating a
/// race-free parallel reduction moves a sum by a few ULPs, while a lost
/// update (a real race) moves it by an entire quartet contribution --
/// dozens of ULPs versus billions.
[[nodiscard]] std::uint64_t ulp_distance(double a, double b);
/// max over elements of ulp_distance (shapes must match).
[[nodiscard]] std::uint64_t max_ulp_diff(const Matrix& a, const Matrix& b);

}  // namespace mc::la
