#include "la/orthogonalizer.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/blas_lite.hpp"
#include "la/sym_eig.hpp"

namespace mc::la {

Matrix sym_pow(const Matrix& s, double p, double lindep_tol) {
  SymEigResult eig = eigh(s);
  const std::size_t n = s.rows();
  Matrix scaled(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    MC_CHECK(eig.values[k] > lindep_tol,
             "sym_pow: matrix not positive definite enough");
    const double f = std::pow(eig.values[k], p);
    for (std::size_t i = 0; i < n; ++i) {
      scaled(i, k) = eig.vectors(i, k) * f;
    }
  }
  return gemm_nt(scaled, eig.vectors);  // V diag(l^p) V^T
}

Matrix loewdin_orthogonalizer(const Matrix& s, double lindep_tol) {
  return sym_pow(s, -0.5, lindep_tol);
}

Matrix canonical_orthogonalizer(const Matrix& s, double lindep_tol) {
  SymEigResult eig = eigh(s);
  const std::size_t n = s.rows();
  std::size_t kept = 0;
  for (double v : eig.values) {
    if (v >= lindep_tol) ++kept;
  }
  MC_CHECK(kept > 0, "canonical orthogonalizer: empty basis");
  Matrix x(n, kept);
  std::size_t col = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (eig.values[k] < lindep_tol) continue;
    const double f = 1.0 / std::sqrt(eig.values[k]);
    for (std::size_t i = 0; i < n; ++i) x(i, col) = eig.vectors(i, k) * f;
    ++col;
  }
  return x;
}

}  // namespace mc::la
