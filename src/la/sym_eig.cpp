#include "la/sym_eig.hpp"

#include <cmath>

#include "common/error.hpp"
#include "la/blas_lite.hpp"

namespace mc::la {

namespace {

// Householder reduction of a real symmetric matrix to tridiagonal form,
// with accumulation of the orthogonal transform in v. This is a port of
// the JAMA/EISPACK tred2 routine (derived from the Algol procedures of
// Bowdler, Martin, Reinsch and Wilkinson, Handbook for Auto. Comp. II).
void tred2(Matrix& v, std::vector<double>& d, std::vector<double>& e) {
  const int n = static_cast<int>(v.rows());
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  for (int j = 0; j < n; ++j) d[j] = v(n - 1, j);

  for (int i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (int k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (int j = 0; j < i; ++j) {
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
        v(j, i) = 0.0;
      }
    } else {
      for (int k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (int j = 0; j < i; ++j) e[j] = 0.0;

      for (int j = 0; j < i; ++j) {
        f = d[j];
        v(j, i) = f;
        g = e[j] + v(j, j) * f;
        for (int k = j + 1; k <= i - 1; ++k) {
          g += v(k, j) * d[k];
          e[k] += v(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (int j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (int j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (int j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (int k = j; k <= i - 1; ++k) v(k, j) -= (f * e[k] + g * d[k]);
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations.
  for (int i = 0; i < n - 1; ++i) {
    v(n - 1, i) = v(i, i);
    v(i, i) = 1.0;
    const double h = d[i + 1];
    if (h != 0.0) {
      for (int k = 0; k <= i; ++k) d[k] = v(k, i + 1) / h;
      for (int j = 0; j <= i; ++j) {
        double g = 0.0;
        for (int k = 0; k <= i; ++k) g += v(k, i + 1) * v(k, j);
        for (int k = 0; k <= i; ++k) v(k, j) -= g * d[k];
      }
    }
    for (int k = 0; k <= i; ++k) v(k, i + 1) = 0.0;
  }
  for (int j = 0; j < n; ++j) {
    d[j] = v(n - 1, j);
    v(n - 1, j) = 0.0;
  }
  v(n - 1, n - 1) = 1.0;
  e[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal matrix from tred2, with
// eigenvector accumulation. Port of the JAMA/EISPACK tql2 routine.
void tql2(Matrix& v, std::vector<double>& d, std::vector<double>& e) {
  const int n = static_cast<int>(v.rows());
  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::ldexp(1.0, -52);
  for (int l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    int m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }

    if (m > l) {
      int iter = 0;
      do {
        MC_CHECK(++iter <= 60, "tql2: QL iteration failed to converge");
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = std::hypot(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (int i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (int i = m - 1; i >= l; --i) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = std::hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          for (int k = 0; k < n; ++k) {
            h = v(k, i + 1);
            v(k, i + 1) = s * v(k, i) + c * h;
            v(k, i) = c * v(k, i) - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  // Sort eigenvalues ascending, permuting eigenvector columns alongside.
  for (int i = 0; i < n - 1; ++i) {
    int k = i;
    double p = d[i];
    for (int j = i + 1; j < n; ++j) {
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      for (int j = 0; j < n; ++j) std::swap(v(j, i), v(j, k));
    }
  }
}

}  // namespace

SymEigResult eigh(const Matrix& a) {
  MC_CHECK(a.rows() == a.cols(), "eigh requires a square matrix");
  MC_CHECK(a.is_symmetric(1e-8 * (1.0 + a.max_abs())),
           "eigh requires a symmetric matrix");
  SymEigResult res;
  res.vectors = a;
  res.vectors.symmetrize();
  if (a.rows() == 0) return res;
  if (a.rows() == 1) {
    res.values = {a(0, 0)};
    res.vectors(0, 0) = 1.0;
    return res;
  }
  std::vector<double> e;
  tred2(res.vectors, res.values, e);
  tql2(res.vectors, res.values, e);
  return res;
}

SymEigResult eigh_generalized(const Matrix& f, const Matrix& x) {
  Matrix fp = transform(x, f);  // X^T F X
  fp.symmetrize();              // clean up rounding asymmetry
  SymEigResult res = eigh(fp);
  res.vectors = gemm(x, res.vectors);  // back-transform C = X C'
  return res;
}

}  // namespace mc::la
