#pragma once
// Small dense linear solvers: Gaussian elimination with partial pivoting
// (used by the DIIS extrapolation) and Cholesky factorization (used for
// tests and the canonical orthogonalizer fallback).

#include <vector>

#include "la/matrix.hpp"

namespace mc::la {

/// Solve A x = b by LU with partial pivoting. A is copied. Throws on a
/// (numerically) singular matrix.
std::vector<double> solve(const Matrix& a, const std::vector<double>& b);

/// Lower-triangular Cholesky factor L with A = L L^T. Throws if A is not
/// positive definite.
Matrix cholesky(const Matrix& a);

/// Inverse of a lower-triangular matrix.
Matrix invert_lower_triangular(const Matrix& l);

}  // namespace mc::la
