#pragma once
// BLAS-lite: the handful of dense kernels the SCF driver needs. Written as
// simple cache-friendly loops (ikj ordering); no external BLAS dependency.

#include "la/matrix.hpp"

namespace mc::la {

/// C = A * B
Matrix gemm(const Matrix& a, const Matrix& b);
/// C = A^T * B
Matrix gemm_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T
Matrix gemm_nt(const Matrix& a, const Matrix& b);
/// C += alpha * A * B (C must be preallocated with the right shape).
void gemm_acc(double alpha, const Matrix& a, const Matrix& b, Matrix& c);

/// y += alpha * x (flat arrays)
void axpy(double alpha, const Matrix& x, Matrix& y);

/// <A, B> = sum_ij A_ij * B_ij  (Frobenius inner product; used for the
/// SCF electronic energy E = 1/2 Tr[D (H + F)]).
double dot(const Matrix& a, const Matrix& b);

/// Similarity transform X^T * A * X.
Matrix transform(const Matrix& x, const Matrix& a);

}  // namespace mc::la
