#pragma once
// Orthogonalizers for the AO overlap metric: build X with X^T S X = 1 so the
// generalized HF eigenproblem FC = eSC becomes an ordinary symmetric one.

#include "la/matrix.hpp"

namespace mc::la {

/// Symmetric (Loewdin) orthogonalization X = S^(-1/2), computed from the
/// eigendecomposition of S. Throws if S has an eigenvalue below `lindep_tol`
/// (use canonical_orthogonalizer for near-linearly-dependent bases).
Matrix loewdin_orthogonalizer(const Matrix& s, double lindep_tol = 1e-10);

/// Canonical orthogonalization: columns X_k = v_k / sqrt(lambda_k), dropping
/// eigenpairs with lambda < lindep_tol. The result may be rectangular
/// (N x M with M <= N).
Matrix canonical_orthogonalizer(const Matrix& s, double lindep_tol = 1e-8);

/// Matrix power S^p for symmetric positive definite S via eigendecomposition
/// (p = -0.5 gives the Loewdin orthogonalizer).
Matrix sym_pow(const Matrix& s, double p, double lindep_tol = 1e-12);

}  // namespace mc::la
