#include "la/solve.hpp"

#include <cmath>

#include "common/error.hpp"

namespace mc::la {

std::vector<double> solve(const Matrix& a, const std::vector<double>& b) {
  MC_CHECK(a.rows() == a.cols(), "solve requires a square matrix");
  MC_CHECK(a.rows() == b.size(), "solve rhs size mismatch");
  const std::size_t n = a.rows();
  Matrix lu = a;
  std::vector<double> x = b;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t piv = col;
    double best = std::abs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(lu(r, col)) > best) {
        best = std::abs(lu(r, col));
        piv = r;
      }
    }
    MC_CHECK(best > 1e-14, "solve: singular matrix");
    if (piv != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu(col, j), lu(piv, j));
      std::swap(x[col], x[piv]);
    }
    // Eliminate below.
    for (std::size_t r = col + 1; r < n; ++r) {
      const double m = lu(r, col) / lu(col, col);
      if (m == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) lu(r, j) -= m * lu(col, j);
      x[r] -= m * x[col];
    }
  }
  // Back substitution.
  for (std::size_t ri = n; ri-- > 0;) {
    double s = x[ri];
    for (std::size_t j = ri + 1; j < n; ++j) s -= lu(ri, j) * x[j];
    x[ri] = s / lu(ri, ri);
  }
  return x;
}

Matrix cholesky(const Matrix& a) {
  MC_CHECK(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        MC_CHECK(s > 0.0, "cholesky: matrix not positive definite");
        l(i, i) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

Matrix invert_lower_triangular(const Matrix& l) {
  MC_CHECK(l.rows() == l.cols(), "square matrix required");
  const std::size_t n = l.rows();
  Matrix inv(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    MC_CHECK(std::abs(l(j, j)) > 1e-300, "singular triangular matrix");
    inv(j, j) = 1.0 / l(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = 0.0;
      for (std::size_t k = j; k < i; ++k) s += l(i, k) * inv(k, j);
      inv(i, j) = -s / l(i, i);
    }
  }
  return inv;
}

}  // namespace mc::la
