#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "common/memory_tracker.hpp"

namespace mc::la {

void Matrix::allocate(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  if (size() == 0) {
    data_ = nullptr;
    return;
  }
  data_ = new double[size()]();
  if (!category_.empty()) {
    rank_ = MemoryTracker::current_rank();
    MemoryTracker::instance().add(category_, size() * sizeof(double));
  }
}

void Matrix::release() {
  if (data_ != nullptr) {
    if (!category_.empty()) {
      RankScope scope(rank_);
      MemoryTracker::instance().sub(category_, size() * sizeof(double));
    }
    delete[] data_;
  }
  data_ = nullptr;
  rows_ = cols_ = 0;
}

Matrix::Matrix(std::size_t rows, std::size_t cols) { allocate(rows, cols); }

Matrix::Matrix(std::size_t rows, std::size_t cols, const std::string& category)
    : category_(category) {
  allocate(rows, cols);
}

Matrix::Matrix(const Matrix& src, const std::string& category)
    : category_(category) {
  allocate(src.rows_, src.cols_);
  if (size() != 0) std::memcpy(data_, src.data_, size() * sizeof(double));
}

void Matrix::copy_values_from(const Matrix& src) {
  MC_CHECK(rows_ == src.rows_ && cols_ == src.cols_,
           "copy_values_from shape mismatch");
  if (size() != 0) std::memcpy(data_, src.data_, size() * sizeof(double));
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  std::size_t r = init.size();
  std::size_t c = r == 0 ? 0 : init.begin()->size();
  allocate(r, c);
  std::size_t i = 0;
  for (const auto& row : init) {
    MC_CHECK(row.size() == c, "ragged initializer list");
    std::size_t j = 0;
    for (double v : row) (*this)(i, j++) = v;
    ++i;
  }
}

Matrix::Matrix(const Matrix& other) : category_(other.category_) {
  allocate(other.rows_, other.cols_);
  if (size() != 0) std::memcpy(data_, other.data_, size() * sizeof(double));
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this != &other) {
    release();
    category_ = other.category_;
    allocate(other.rows_, other.cols_);
    if (size() != 0) std::memcpy(data_, other.data_, size() * sizeof(double));
  }
  return *this;
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(other.rows_),
      cols_(other.cols_),
      data_(other.data_),
      category_(std::move(other.category_)),
      rank_(other.rank_) {
  other.data_ = nullptr;
  other.rows_ = other.cols_ = 0;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this != &other) {
    release();
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    category_ = std::move(other.category_);
    rank_ = other.rank_;
    other.data_ = nullptr;
    other.rows_ = other.cols_ = 0;
  }
  return *this;
}

Matrix::~Matrix() { release(); }

void Matrix::fill(double v) { std::fill(data_, data_ + size(), v); }

void Matrix::set_identity() {
  MC_CHECK(rows_ == cols_, "identity requires a square matrix");
  set_zero();
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) = 1.0;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  MC_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  MC_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (std::size_t i = 0; i < size(); ++i) data_[i] *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

void Matrix::symmetrize() {
  MC_CHECK(rows_ == cols_, "symmetrize requires a square matrix");
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      double v = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = v;
      (*this)(j, i) = v;
    }
  }
}

double Matrix::trace() const {
  MC_CHECK(rows_ == cols_, "trace requires a square matrix");
  double t = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (std::size_t i = 0; i < size(); ++i) m = std::max(m, std::abs(data_[i]));
  return m;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  MC_CHECK(rows_ == other.rows_ && cols_ == other.cols_, "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

std::uint64_t ulp_distance(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  // Map the IEEE-754 bit pattern onto an unsigned scale that is monotone in
  // the represented value (two's-complement-style flip of the negative
  // half), so the integer gap counts representable doubles between a and b.
  const auto ordered = [](double x) {
    std::uint64_t bits;
    std::memcpy(&bits, &x, sizeof(bits));
    const std::uint64_t sign = std::uint64_t{1} << 63;
    return (bits & sign) ? ~bits : bits | sign;
  };
  const std::uint64_t ua = ordered(a);
  const std::uint64_t ub = ordered(b);
  return ua > ub ? ua - ub : ub - ua;
}

std::uint64_t max_ulp_diff(const Matrix& a, const Matrix& b) {
  MC_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "shape mismatch");
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, ulp_distance(a.data()[i], b.data()[i]));
  }
  return m;
}

double Matrix::norm_frobenius() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += data_[i] * data_[i];
  return std::sqrt(s);
}

bool Matrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (std::abs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  m.set_identity();
  return m;
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}
Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}
Matrix operator*(double s, Matrix a) {
  a *= s;
  return a;
}

}  // namespace mc::la
