#pragma once
// Lower-triangle packed storage for symmetric matrices. GAMESS keeps its
// big symmetric SCF matrices in packed form; we provide the same layout for
// the memory-footprint studies and for interoperability tests. Element
// (i,j), i >= j, lives at index i*(i+1)/2 + j.

#include <cstddef>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace mc::la {

class PackedSymMatrix {
 public:
  PackedSymMatrix() = default;
  explicit PackedSymMatrix(std::size_t n) : n_(n), data_(n * (n + 1) / 2) {}

  [[nodiscard]] std::size_t dim() const { return n_; }
  [[nodiscard]] std::size_t packed_size() const { return data_.size(); }

  double& at(std::size_t i, std::size_t j) { return data_[index(i, j)]; }
  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return data_[index(i, j)];
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// Expand to a full square matrix.
  [[nodiscard]] Matrix unpack() const;
  /// Pack the (assumed symmetric) square matrix.
  static PackedSymMatrix pack(const Matrix& m);

  static std::size_t index(std::size_t i, std::size_t j) {
    return (i >= j) ? i * (i + 1) / 2 + j : j * (j + 1) / 2 + i;
  }

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace mc::la
