#include "la/blas_lite.hpp"

#include "common/error.hpp"

namespace mc::la {

Matrix gemm(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  gemm_acc(1.0, a, b, c);
  return c;
}

void gemm_acc(double alpha, const Matrix& a, const Matrix& b, Matrix& c) {
  MC_CHECK(a.cols() == b.rows(), "gemm inner dimension mismatch");
  MC_CHECK(c.rows() == a.rows() && c.cols() == b.cols(),
           "gemm output shape mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.row(i);
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = alpha * a(i, p);
      if (aip == 0.0) continue;
      const double* bp = b.row(p);
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

Matrix gemm_tn(const Matrix& a, const Matrix& b) {
  MC_CHECK(a.rows() == b.rows(), "gemm_tn inner dimension mismatch");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t p = 0; p < k; ++p) {
    const double* ap = a.row(p);
    const double* bp = b.row(p);
    for (std::size_t i = 0; i < m; ++i) {
      const double api = ap[i];
      if (api == 0.0) continue;
      double* ci = c.row(i);
      for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
  return c;
}

Matrix gemm_nt(const Matrix& a, const Matrix& b) {
  MC_CHECK(a.cols() == b.cols(), "gemm_nt inner dimension mismatch");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a.row(i);
    double* ci = c.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      const double* bj = b.row(j);
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += ai[p] * bj[p];
      ci[j] = s;
    }
  }
  return c;
}

void axpy(double alpha, const Matrix& x, Matrix& y) {
  MC_CHECK(x.rows() == y.rows() && x.cols() == y.cols(), "axpy shape");
  const double* xd = x.data();
  double* yd = y.data();
  for (std::size_t i = 0; i < x.size(); ++i) yd[i] += alpha * xd[i];
}

double dot(const Matrix& a, const Matrix& b) {
  MC_CHECK(a.rows() == b.rows() && a.cols() == b.cols(), "dot shape");
  const double* ad = a.data();
  const double* bd = b.data();
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += ad[i] * bd[i];
  return s;
}

Matrix transform(const Matrix& x, const Matrix& a) {
  return gemm_tn(x, gemm(a, x));
}

}  // namespace mc::la
