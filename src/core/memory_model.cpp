#include "core/memory_model.hpp"

#include "common/error.hpp"

namespace mc::core {

std::string algorithm_name(ScfAlgorithm alg) {
  switch (alg) {
    case ScfAlgorithm::kMpiOnly: return "mpi-only";
    case ScfAlgorithm::kPrivateFock: return "private-fock";
    case ScfAlgorithm::kSharedFock: return "shared-fock";
    case ScfAlgorithm::kDistFock: return "dist-fock";
  }
  MC_CHECK(false, "unknown algorithm");
  return {};
}

double model_bytes_per_node(ScfAlgorithm alg, std::size_t nbf,
                            const NodeLayout& layout) {
  const double n2 = static_cast<double>(nbf) * static_cast<double>(nbf) *
                    sizeof(double);
  const double ranks = layout.ranks_per_node;
  switch (alg) {
    case ScfAlgorithm::kMpiOnly:
      return 2.5 * n2 * ranks;  // eq. 3a
    case ScfAlgorithm::kPrivateFock:
      return (2.0 + layout.threads_per_rank) * n2 * ranks;  // eq. 3b
    case ScfAlgorithm::kSharedFock:
      return 3.5 * n2 * ranks;  // eq. 3c
    case ScfAlgorithm::kDistFock:
      return model_dist_fock_bytes_per_node(nbf, layout, /*nnodes=*/1);
  }
  MC_CHECK(false, "unknown algorithm");
  return 0.0;
}

double model_dist_fock_bytes_per_node(std::size_t nbf,
                                      const NodeLayout& layout, int nnodes) {
  MC_CHECK(nnodes >= 1, "need at least one node");
  const double n2 = static_cast<double>(nbf) * static_cast<double>(nbf) *
                    sizeof(double);
  const double ranks = layout.ranks_per_node;
  const double total_ranks = ranks * static_cast<double>(nnodes);
  return n2 * (2.0 * ranks / total_ranks + 0.5);
}

NodeLayout max_feasible_layout(ScfAlgorithm alg, std::size_t nbf,
                               double capacity_bytes, int hw_threads) {
  MC_CHECK(hw_threads >= 1, "need at least one hardware thread");
  if (alg == ScfAlgorithm::kMpiOnly) {
    // One rank per hardware thread; shrink rank count until it fits.
    for (int ranks = hw_threads; ranks >= 1; --ranks) {
      NodeLayout l{ranks, 1};
      if (model_bytes_per_node(alg, nbf, l) <= capacity_bytes) return l;
    }
    return {0, 1};
  }
  // Hybrid codes: try rank counts that divide the hardware threads,
  // preferring more ranks (the paper runs 4 ranks x 64 threads).
  for (int ranks = hw_threads; ranks >= 1; --ranks) {
    if (hw_threads % ranks != 0) continue;
    NodeLayout l{ranks, hw_threads / ranks};
    if (model_bytes_per_node(alg, nbf, l) <= capacity_bytes) return l;
  }
  return {0, hw_threads};
}

double footprint_ratio_vs_mpi(ScfAlgorithm hybrid_alg,
                              const NodeLayout& hybrid, std::size_t nbf,
                              int mpi_ranks) {
  const double mpi =
      model_bytes_per_node(ScfAlgorithm::kMpiOnly, nbf, {mpi_ranks, 1});
  const double hyb = model_bytes_per_node(hybrid_alg, nbf, hybrid);
  MC_CHECK(hyb > 0.0, "hybrid footprint must be positive");
  return mpi / hyb;
}

}  // namespace mc::core
