#pragma once
// Algorithm 3 of the paper: hybrid MPI/OpenMP SCF with *shared density and
// shared Fock* matrices -- the paper's central contribution ("To the best
// of our knowledge, having a shared Fock matrix is an unique feature of our
// implementation").
//
// MPI level: the global DLB counter hands out positions in the Screening's
// precomputed *bra-grouped* pair list (finer-grained than Algorithm 2's i
// loop -- the reason this algorithm load-balances best at scale, Table 3).
// The list keeps all pairs of one i shell contiguous -- preserving the
// lazy-FI-flush invariant of at most one flush per i change -- and orders
// the i groups by descending screened work so the DLB tail is cheap.
// OpenMP level: threads dynamically share the merged (kl) loop over
// canonical pair indices kl <= ij.
//
// Race-freedom by construction, per the paper:
//  * F_kl is written directly to the shared matrix: threads hold distinct
//    kl pairs, so the (k,l) shell blocks are disjoint.
//  * Contributions to shell-i columns (F_ij, F_ik, F_il) go to the
//    thread-private FI buffer; shell-j columns (F_jk, F_jl) to FJ.
//  * FJ is flushed (row-chunked parallel reduction over thread columns,
//    Figure 1B) after every kl loop; FI is flushed lazily, only when the
//    i index changes -- usually it does not, which is the key optimization.
//  * Thread columns are padded to cache-line multiples to avoid false
//    sharing (ablated by bench_ablations).

#include "par/ddi.hpp"
#include "scf/fock_builder.hpp"

namespace mc::core {

struct SharedFockOptions {
  int nthreads = 1;
  /// Flush FI only on i-index change (paper's optimization). Off = flush
  /// both buffers after every kl loop (the naive variant, for ablation).
  bool lazy_fi_flush = true;
  /// Padding (in doubles) appended to each thread's buffer column to avoid
  /// false sharing during the row-wise reduction (paper section 4.3).
  int padding_doubles = 8;
  /// schedule(dynamic,1) on the kl loop when true (paper's choice).
  bool dynamic_schedule = true;
};

class FockBuilderShared : public scf::FockBuilder {
 public:
  FockBuilderShared(const ints::EriEngine& eri,
                    const ints::Screening& screen, par::Ddi& ddi,
                    SharedFockOptions options = {})
      : eri_(&eri), screen_(&screen), ddi_(&ddi), opt_(options) {}

  [[nodiscard]] std::string name() const override { return "shared-fock"; }

  using FockBuilder::build;
  void build(const la::Matrix& density, la::Matrix& g,
             const scf::FockContext& ctx) override;

  [[nodiscard]] std::size_t last_pairs_claimed() const override {
    return pairs_;
  }
  [[nodiscard]] std::size_t last_quartets_computed() const override {
    return quartets_;
  }
  [[nodiscard]] std::size_t last_density_screened() const override {
    return density_screened_;
  }
  [[nodiscard]] std::size_t last_static_screened() const override {
    return static_screened_;
  }
  [[nodiscard]] std::vector<std::size_t> last_thread_quartets()
      const override {
    return thread_quartets_;
  }
  [[nodiscard]] std::size_t screening_predicted_quartets() const override {
    return screen_->count_surviving_quartets();
  }
  [[nodiscard]] double screening_threshold() const override {
    return screen_->threshold();
  }
  /// FI buffer flushes in the last build; with lazy flushing this is the
  /// number of distinct i values encountered, not the number of ij pairs.
  [[nodiscard]] std::size_t last_fi_flushes() const { return fi_flushes_; }

 private:
  const ints::EriEngine* eri_;
  const ints::Screening* screen_;
  par::Ddi* ddi_;
  SharedFockOptions opt_;
  std::size_t pairs_ = 0;
  std::size_t quartets_ = 0;
  std::size_t density_screened_ = 0;
  std::size_t static_screened_ = 0;
  std::size_t fi_flushes_ = 0;
  std::vector<std::size_t> thread_quartets_;
};

}  // namespace mc::core
