#include "core/fock_dist.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "common/access.hpp"
#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "obs/trace.hpp"

namespace mc::core {

TileLayout TileLayout::build(const basis::BasisSet& bs, int nranks,
                             int target_rows) {
  MC_CHECK(nranks >= 1, "TileLayout needs at least one rank");
  TileLayout lay;
  lay.nbf = bs.nbf();
  const std::size_t nshells = bs.nshells();
  MC_CHECK(nshells > 0, "TileLayout needs a non-empty basis");

  std::size_t target = static_cast<std::size_t>(
      target_rows > 0 ? target_rows : 0);
  if (target == 0) {
    // Auto: about four tiles per rank keeps the cyclic owner assignment
    // balanced while tiles stay panel-sized; never below a shell width.
    target = std::max<std::size_t>(
        static_cast<std::size_t>(bs.max_shell_size()),
        lay.nbf / (4 * static_cast<std::size_t>(nranks)));
    target = std::max<std::size_t>(target, 1);
  }

  // Walk shells, closing a tile at the first shell boundary at or past
  // `target` rows. Shells never straddle tiles, so a shell's rows live in
  // exactly one tile (shell_tile below is well defined).
  lay.tile_row0.push_back(0);
  lay.tile_shell0.push_back(0);
  lay.shell_tile.resize(nshells);
  std::size_t rows_in_tile = 0;
  for (std::size_t s = 0; s < nshells; ++s) {
    lay.shell_tile[s] = static_cast<std::uint32_t>(lay.tile_row0.size() - 1);
    rows_in_tile += static_cast<std::size_t>(bs.shell(s).nfunc());
    const bool last = (s + 1 == nshells);
    if (rows_in_tile >= target || last) {
      lay.tile_row0.push_back(lay.tile_row0.back() + rows_in_tile);
      lay.tile_shell0.push_back(s + 1);
      rows_in_tile = 0;
    }
  }
  lay.ntiles = lay.tile_row0.size() - 1;
  MC_CHECK(lay.tile_row0.back() == lay.nbf, "tile rows must cover the basis");

  lay.row_tile.resize(lay.nbf);
  for (std::size_t t = 0; t < lay.ntiles; ++t) {
    for (std::size_t r = lay.tile_row0[t]; r < lay.tile_row0[t + 1]; ++r) {
      lay.row_tile[r] = static_cast<std::uint32_t>(t);
    }
  }

  // Cyclic owners; window offsets rank-contiguous (each rank's segment is
  // its tiles back to back, in tile order).
  lay.owner.resize(lay.ntiles);
  lay.rank_elems.assign(static_cast<std::size_t>(nranks), 0);
  for (std::size_t t = 0; t < lay.ntiles; ++t) {
    lay.owner[t] = static_cast<int>(t % static_cast<std::size_t>(nranks));
  }
  std::vector<std::size_t> next_in_rank(static_cast<std::size_t>(nranks), 0);
  for (std::size_t t = 0; t < lay.ntiles; ++t) {
    lay.rank_elems[static_cast<std::size_t>(lay.owner[t])] +=
        lay.tile_elems(t);
  }
  std::vector<std::size_t> rank_base(static_cast<std::size_t>(nranks) + 1, 0);
  for (int r = 0; r < nranks; ++r) {
    rank_base[static_cast<std::size_t>(r) + 1] =
        rank_base[static_cast<std::size_t>(r)] +
        lay.rank_elems[static_cast<std::size_t>(r)];
  }
  lay.tile_offset.resize(lay.ntiles);
  for (std::size_t t = 0; t < lay.ntiles; ++t) {
    const auto r = static_cast<std::size_t>(lay.owner[t]);
    lay.tile_offset[t] = rank_base[r] + next_in_rank[r];
    next_in_rank[r] += lay.tile_elems(t);
  }
  return lay;
}

/// Rank-local cache of density tiles over the D window. Tiles become
/// resident via request() (a one-sided get on miss) and are only evicted
/// inside request() when a budget is set -- never while row pointers from
/// a scatter are live (flush_batch pins the batch's tiles first). Tiles
/// whose FockContext block norms are exactly zero are served from a shared
/// all-zero row and never fetched.
struct FockBuilderDist::DCache {
  DCache(const TileLayout& lay, par::Ddi& ddi, const par::Window& win,
         std::size_t budget)
      : lay_(&lay), ddi_(&ddi), win_(&win), budget_(budget),
        tiles_(lay.ntiles), stamp_(lay.ntiles, 0), pinned_(lay.ntiles, 0),
        is_zero_(lay.ntiles, 0), zero_(lay.nbf, 0.0) {}

  void request(std::uint32_t t) {
    stamp_[t] = ++clock_;
    if (is_zero_[t] != 0) {
      ++zero_hits_;
      return;
    }
    if (tiles_[t].data() != nullptr) {
      ++hits_;
      return;
    }
    ++misses_;
    if (budget_ != 0 && resident_ >= budget_) evict_lru(budget_ - 1);
    tiles_[t] = TrackedBuffer("dist-tile-cache", lay_->tile_elems(t));
    ++resident_;
    ddi_->get(*win_, lay_->tile_offset[t], tiles_[t].data(),
              lay_->tile_elems(t));
  }

  void pin(std::uint32_t t) {
    if (pinned_[t] == 0) {
      pinned_[t] = 1;
      pin_list_.push_back(t);
    }
  }
  void unpin_all() {
    for (std::uint32_t t : pin_list_) pinned_[t] = 0;
    pin_list_.clear();
  }

  /// Row base pointer; the row's tile must be resident (request()ed).
  [[nodiscard]] const double* row(std::size_t r) const {
    const std::uint32_t t = lay_->row_tile[r];
    if (is_zero_[t] != 0) return zero_.data();
    return tiles_[t].data() + (r - lay_->tile_row0[t]) * lay_->nbf;
  }

  void evict_lru(std::size_t target) {
    while (resident_ > target) {
      std::size_t victim = lay_->ntiles;
      std::uint64_t oldest = 0;
      for (std::size_t t = 0; t < lay_->ntiles; ++t) {
        if (tiles_[t].data() == nullptr || pinned_[t] != 0) continue;
        if (victim == lay_->ntiles || stamp_[t] < oldest) {
          victim = t;
          oldest = stamp_[t];
        }
      }
      if (victim == lay_->ntiles) break;  // everything resident is pinned
      tiles_[victim] = TrackedBuffer();
      --resident_;
    }
  }

  const TileLayout* lay_;
  par::Ddi* ddi_;
  const par::Window* win_;
  std::size_t budget_;
  std::vector<TrackedBuffer> tiles_;
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint8_t> pinned_;
  std::vector<std::uint8_t> is_zero_;
  std::vector<double> zero_;  ///< one all-zero row serves every zero tile
  std::vector<std::uint32_t> pin_list_;
  std::uint64_t clock_ = 0;
  std::size_t resident_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t zero_hits_ = 0;
};

/// Rank-local F panel accumulators. A panel opens zeroed on first touch
/// and is flushed to the F window with one ddi_acc -- at the end of the
/// build, or early (LRU) when max_open_f_tiles is exceeded. acc commutes,
/// so early flushes only reassociate the per-element sums. Writes go
/// through OwnedSlice so the MC_CHECK shadow ledger (and mc-lint) sees
/// every update as sanctioned.
struct FockBuilderDist::FAcc {
  FAcc(const TileLayout& lay, par::Ddi& ddi, const par::Window& win,
       std::size_t budget, acc::BuildChecker<>& checker, acc::ThreadCtx<>& th)
      : lay_(&lay), ddi_(&ddi), win_(&win), budget_(budget),
        checker_(&checker), th_(&th), tiles_(lay.ntiles),
        region_(lay.ntiles, -1), stamp_(lay.ntiles, 0),
        pinned_(lay.ntiles, 0) {}

  void request(std::uint32_t t) {
    stamp_[t] = ++clock_;
    if (tiles_[t].data() != nullptr) return;
    if (budget_ != 0 && resident_ >= budget_) {
      flush_lru(budget_ - 1);
    }
    tiles_[t] = TrackedBuffer("dist-fock-acc", lay_->tile_elems(t));
    region_[t] = checker_->region("dist-f-panel", lay_->tile_elems(t));
    ++resident_;
  }

  void pin(std::uint32_t t) {
    if (pinned_[t] == 0) {
      pinned_[t] = 1;
      pin_list_.push_back(t);
    }
  }
  void unpin_all() {
    for (std::uint32_t t : pin_list_) pinned_[t] = 0;
    pin_list_.clear();
  }

  /// The row's panel as an annotated slice; must be request()ed first.
  [[nodiscard]] acc::OwnedSlice<double> row(std::size_t r) {
    const std::uint32_t t = lay_->row_tile[r];
    const std::size_t off = (r - lay_->tile_row0[t]) * lay_->nbf;
    return acc::OwnedSlice<double>(tiles_[t].data() + off, lay_->nbf, th_,
                                   region_[t], off);
  }

  void flush_tile(std::size_t t) {
    ddi_->acc(*win_, lay_->tile_offset[t], tiles_[t].data(),
              lay_->tile_elems(t));
    tiles_[t] = TrackedBuffer();
    --resident_;
  }

  void flush_lru(std::size_t target) {
    while (resident_ > target) {
      std::size_t victim = lay_->ntiles;
      std::uint64_t oldest = 0;
      for (std::size_t t = 0; t < lay_->ntiles; ++t) {
        if (tiles_[t].data() == nullptr || pinned_[t] != 0) continue;
        if (victim == lay_->ntiles || stamp_[t] < oldest) {
          victim = t;
          oldest = stamp_[t];
        }
      }
      if (victim == lay_->ntiles) break;
      flush_tile(victim);
      ++early_flushes_;
    }
  }

  void flush_all() {
    for (std::size_t t = 0; t < lay_->ntiles; ++t) {
      if (tiles_[t].data() != nullptr) flush_tile(t);
    }
  }

  const TileLayout* lay_;
  par::Ddi* ddi_;
  const par::Window* win_;
  std::size_t budget_;
  acc::BuildChecker<>* checker_;
  acc::ThreadCtx<>* th_;
  std::vector<TrackedBuffer> tiles_;
  std::vector<int> region_;
  std::vector<std::uint64_t> stamp_;
  std::vector<std::uint8_t> pinned_;
  std::vector<std::uint32_t> pin_list_;
  std::uint64_t clock_ = 0;
  std::size_t resident_ = 0;
  std::size_t early_flushes_ = 0;
};

void FockBuilderDist::flush_batch(ints::QuartetBatch& batch, DCache& dcache,
                                  FAcc& facc) {
  if (batch.empty()) return;
  const basis::BasisSet& bs = eri_->basis_set();
  batch.evaluate();

  // Residency pass before any row pointers are taken: pin, then
  // materialize, every tile this batch touches. Rows used are those of
  // shells i, j, k -- in eqs. 2a-2f the l index only ever appears as a
  // column. Eviction/early-flush happens only here, so pointers and
  // slices stay valid across the whole scatter below.
  for (const auto& e : batch.quartets()) {
    for (std::uint32_t s : {e.si, e.sj, e.sk}) {
      const std::uint32_t t = layout_->shell_tile[s];
      dcache.pin(t);
      facc.pin(t);
    }
  }
  for (const auto& e : batch.quartets()) {
    for (std::uint32_t s : {e.si, e.sj, e.sk}) {
      const std::uint32_t t = layout_->shell_tile[s];
      dcache.request(t);
      facc.request(t);
    }
  }

  // Scatter in discovery order, mirroring scf::scatter_quartet exactly --
  // same x/x4 per element, same order -- but routed through the tile
  // caches (a -= b and a += (-b) are the same IEEE operation, so the
  // contributions are bitwise identical to the replicated path's).
  for (std::size_t idx = 0; idx < batch.size(); ++idx) {
    const ints::QuartetBatch::Entry& e = batch.quartets()[idx];
    const double* vals = batch.result(idx);
    const basis::Shell& shi = bs.shell(e.si);
    const basis::Shell& shj = bs.shell(e.sj);
    const basis::Shell& shk = bs.shell(e.sk);
    const basis::Shell& shl = bs.shell(e.sl);
    const int ni = shi.nfunc(), nj = shj.nfunc(), nk = shk.nfunc(),
              nl = shl.nfunc();
    const std::size_t oi = shi.first_bf, oj = shj.first_bf,
                      ok = shk.first_bf, ol = shl.first_bf;
    const double w = scf::quartet_degeneracy(e.si, e.sj, e.sk, e.sl);

    std::size_t q = 0;
    for (int a = 0; a < ni; ++a) {
      const std::size_t fa = oi + static_cast<std::size_t>(a);
      const double* d_a = dcache.row(fa);
      const acc::OwnedSlice<double> f_a = facc.row(fa);
      for (int b = 0; b < nj; ++b) {
        const std::size_t fb = oj + static_cast<std::size_t>(b);
        const double* d_b = dcache.row(fb);
        const acc::OwnedSlice<double> f_b = facc.row(fb);
        for (int c = 0; c < nk; ++c) {
          const std::size_t fc = ok + static_cast<std::size_t>(c);
          const double* d_c = dcache.row(fc);
          const acc::OwnedSlice<double> f_c = facc.row(fc);
          for (int dd = 0; dd < nl; ++dd, ++q) {
            const std::size_t fd = ol + static_cast<std::size_t>(dd);
            const double v = vals[q];
            if (v == 0.0) continue;
            const double x = 0.5 * w * v;
            const double x4 = 0.25 * x;
            f_a.add(fb, x * d_c[fd]);
            f_c.add(fd, x * d_a[fb]);
            f_a.add(fc, -(x4 * d_b[fd]));
            f_b.add(fd, -(x4 * d_a[fc]));
            f_a.add(fd, -(x4 * d_b[fc]));
            f_b.add(fc, -(x4 * d_a[fd]));
          }
        }
      }
    }
  }

  dcache.unpin_all();
  facc.unpin_all();
  batch.clear();
}

void FockBuilderDist::process_pair(const ints::ScreenedPair& pair,
                                   const scf::FockContext& ctx,
                                   ints::QuartetBatch& batch, DCache& dcache,
                                   FAcc& facc) {
  ++pairs_;
  const std::size_t i = pair.i;
  const std::size_t j = pair.j;
  const bool weighted = ctx.weighted();
  // Identical screening cascade to FockBuilderMpi: the set of computed
  // quartets must not depend on the data layout.
  if (weighted &&
      !screen_->keep_pair(i, j, 4.0 * ctx.dmax_max, ctx.threshold_scale)) {
    return;
  }
  scf::for_each_kl(i, j, [&](std::size_t k, std::size_t l) {
    if (!screen_->keep(i, j, k, l)) {
      ++static_screened_;
      return;
    }
    if (weighted && !screen_->keep(i, j, k, l, ctx.quartet_dmax(i, j, k, l),
                                   ctx.threshold_scale)) {
      ++density_screened_;
      return;
    }
    batch.add(i, j, k, l);
    ++quartets_;
    if (batch.full()) flush_batch(batch, dcache, facc);
  });
}

void FockBuilderDist::build_dlb(const scf::FockContext& ctx, DCache& dcache,
                                FAcc& facc) {
  const auto& pairs = screen_->sorted_pairs();
  ddi_->dlb_reset();

  // Claim-ahead pipeline: keep up to prefetch_depth claimed pairs in
  // flight, issuing their bra-tile fetches at claim time so the gets
  // overlap the ERI batches of the pairs ahead of them (the in-process
  // analogue of double-buffered async prefetch).
  const std::size_t depth =
      opt_.prefetch_depth > 0 ? static_cast<std::size_t>(opt_.prefetch_depth)
                              : 0;
  ints::QuartetBatch batch(*eri_);
  std::deque<std::size_t> claimed;
  long next = ddi_->dlbnext();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    if (static_cast<long>(p) != next) continue;
    next = ddi_->dlbnext();
    dcache.request(layout_->shell_tile[pairs[p].i]);
    dcache.request(layout_->shell_tile[pairs[p].j]);
    claimed.push_back(p);
    if (claimed.size() > depth) {
      process_pair(pairs[claimed.front()], ctx, batch, dcache, facc);
      claimed.pop_front();
    }
  }
  while (!claimed.empty()) {
    process_pair(pairs[claimed.front()], ctx, batch, dcache, facc);
    claimed.pop_front();
  }
  flush_batch(batch, dcache, facc);
}

void FockBuilderDist::build_static(const scf::FockContext& ctx,
                                   DCache& dcache, FAcc& facc) {
  // HONPAS-style static distribution: a cyclic slice of the Schwarz-sorted
  // pair list. Sorting spreads the expensive pairs evenly over ranks, so
  // the static split inherits most of the DLB counter's balance without
  // any shared-counter traffic.
  const auto& pairs = screen_->sorted_pairs();
  const auto nranks = static_cast<std::size_t>(ddi_->size());
  const auto rank = static_cast<std::size_t>(ddi_->rank());
  const std::size_t depth =
      opt_.prefetch_depth > 0 ? static_cast<std::size_t>(opt_.prefetch_depth)
                              : 0;
  ints::QuartetBatch batch(*eri_);
  std::deque<std::size_t> claimed;
  for (std::size_t p = rank; p < pairs.size(); p += nranks) {
    dcache.request(layout_->shell_tile[pairs[p].i]);
    dcache.request(layout_->shell_tile[pairs[p].j]);
    claimed.push_back(p);
    if (claimed.size() > depth) {
      process_pair(pairs[claimed.front()], ctx, batch, dcache, facc);
      claimed.pop_front();
    }
  }
  while (!claimed.empty()) {
    process_pair(pairs[claimed.front()], ctx, batch, dcache, facc);
    claimed.pop_front();
  }
  flush_batch(batch, dcache, facc);
}

void FockBuilderDist::build(const la::Matrix& density, la::Matrix& g,
                            const scf::FockContext& ctx) {
  MC_OBS_TRACE("fock:dist");
  const basis::BasisSet& bs = eri_->basis_set();
  const std::size_t nbf = bs.nbf();
  MC_CHECK(g.rows() == nbf && g.cols() == nbf, "G shape mismatch");
  pairs_ = 0;
  quartets_ = 0;
  density_screened_ = 0;
  static_screened_ = 0;
  tile_hits_ = 0;
  tile_misses_ = 0;
  zero_hits_ = 0;
  early_flushes_ = 0;

  if (!layout_) {
    layout_ = std::make_unique<TileLayout>(
        TileLayout::build(bs, ddi_->size(), opt_.tile_rows));
  }
  const TileLayout& lay = *layout_;
  const int rank = ddi_->rank();

  // One one-sided epoch per build: create, publish D, compute + acc F,
  // replicate, destroy. The windows hold 2 N^2 / nranks doubles per rank
  // -- the footprint the replicated algorithms cannot shed.
  par::Window dwin = ddi_->create("fock-dist:D", lay.rank_elems);
  par::Window fwin = ddi_->create("fock-dist:F", lay.rank_elems);

  // Publish this rank's D panels. Tiles are whole row panels, so each is
  // one contiguous block of the (replicated) input density.
  for (std::size_t t = 0; t < lay.ntiles; ++t) {
    if (lay.owner[t] != rank) continue;
    ddi_->put(dwin, lay.tile_offset[t],
              density.data() + lay.tile_row0[t] * nbf, lay.tile_elems(t));
  }
  ddi_->fence(dwin);  // D readable by every rank

  acc::BuildChecker<> checker(rank, /*nthreads=*/1);
  acc::ThreadCtx<> th(checker, /*tid=*/0);
  DCache dcache(lay, *ddi_, dwin, opt_.max_cached_tiles);
  FAcc facc(lay, *ddi_, fwin, opt_.max_open_f_tiles, checker, th);

  // Zero-tile map: a tile whose every shell-pair block norm is exactly
  // zero contains only (+/-)0.0 entries, so reads can be served from a
  // shared zero row without fetching (reassociation-safe: contributions
  // of +0.0 vs -0.0 differ by at most 1 ULP in the accumulated result).
  // This is what makes incremental builds cheap in tile traffic: most
  // delta-density tiles go all-zero as SCF converges.
  if (ctx.weighted()) {
    for (std::size_t t = 0; t < lay.ntiles; ++t) {
      bool zero = true;
      for (std::size_t s = lay.tile_shell0[t];
           zero && s < lay.tile_shell0[t + 1]; ++s) {
        for (std::size_t u = 0; u < ctx.nshells; ++u) {
          if (ctx.pair_dmax(s, u) != 0.0) {
            zero = false;
            break;
          }
        }
      }
      dcache.is_zero_[t] = zero ? 1 : 0;
    }
  }

  if (opt_.dynamic_lb) {
    build_dlb(ctx, dcache, facc);
  } else {
    build_static(ctx, dcache, facc);
  }

  facc.flush_all();
  ddi_->fence(fwin);  // every rank's contributions accumulated

  // Replicate the reduced skeleton into the caller's G (the FockBuilder
  // contract; the drivers' diagonalization is replicated like the
  // paper's codes). Panel gets write every row of G.
  for (std::size_t t = 0; t < lay.ntiles; ++t) {
    ddi_->get(fwin, lay.tile_offset[t], g.data() + lay.tile_row0[t] * nbf,
              lay.tile_elems(t));
  }
  ddi_->fence(fwin);  // all copies out before the windows go away
  ddi_->destroy(fwin);
  ddi_->destroy(dwin);

  tile_hits_ = dcache.hits_;
  tile_misses_ = dcache.misses_;
  zero_hits_ = dcache.zero_hits_;
  early_flushes_ = facc.early_flushes_;
  checker.finalize();
}

}  // namespace mc::core
