#pragma once
// Algorithm 1 of the paper: the stock GAMESS MPI-only SCF parallelization.
//
// Every rank owns fully replicated density and Fock matrices. Work is
// distributed by a global dynamic-load-balance counter over the screened,
// Schwarz-sorted (i,j) shell-pair list precomputed by ints::Screening
// (ddi_dlbnext); each claimed pair runs the full (k,l) inner loop with
// Schwarz and, when the FockContext carries density block norms,
// density-weighted screening. Claiming the most expensive pairs first
// leaves only cheap tasks for the tail of the DLB counter, which shrinks
// the load imbalance window at the barrier. The per-rank partial Fock
// matrices are summed with ddi_gsumf at the end.
//
// This is the baseline whose memory footprint (eq. 3a: 5/2 N^2 per rank)
// and coarse task granularity the hybrid algorithms improve on.

#include <vector>

#include "ints/eri_batch.hpp"
#include "par/ddi.hpp"
#include "scf/fock_builder.hpp"

namespace mc::core {

/// How the (i,j) pair loop is distributed across ranks.
enum class MpiLoadBalance {
  /// Single global counter, claims in index order (stock GAMESS;
  /// Algorithm 1's ddi_dlbnext).
  kDlbCounter,
  /// Contiguous per-rank slices with single-task stealing from the richest
  /// victim (Liu, Patel & Chow, IPDPS 2014 -- the paper's related work).
  kWorkStealing,
};

class FockBuilderMpi : public scf::FockBuilder {
 public:
  FockBuilderMpi(const ints::EriEngine& eri, const ints::Screening& screen,
                 par::Ddi& ddi,
                 MpiLoadBalance lb = MpiLoadBalance::kDlbCounter)
      : eri_(&eri), screen_(&screen), ddi_(&ddi), lb_(lb) {}

  [[nodiscard]] std::string name() const override { return "mpi-only"; }

  /// Collective over all ranks: every rank contributes its claimed pairs
  /// and receives the fully reduced skeleton matrix.
  using FockBuilder::build;
  void build(const la::Matrix& density, la::Matrix& g,
             const scf::FockContext& ctx) override;

  /// (i,j) pairs this rank processed in the last build (load statistics).
  [[nodiscard]] std::size_t last_pairs_claimed() const override {
    return pairs_;
  }
  /// Quartets this rank computed in the last build.
  [[nodiscard]] std::size_t last_quartets_computed() const override {
    return quartets_;
  }
  [[nodiscard]] std::size_t last_density_screened() const override {
    return density_screened_;
  }
  [[nodiscard]] std::size_t last_static_screened() const override {
    return static_screened_;
  }
  [[nodiscard]] std::vector<std::size_t> last_thread_quartets()
      const override {
    return {quartets_};
  }
  [[nodiscard]] std::size_t screening_predicted_quartets() const override {
    return screen_->count_surviving_quartets();
  }
  [[nodiscard]] double screening_threshold() const override {
    return screen_->threshold();
  }
  /// Pairs this rank stole from other ranks' slices in the last build
  /// (work-stealing mode only; 0 under the DLB counter).
  [[nodiscard]] std::size_t last_pairs_stolen() const { return steals_; }

 private:
  void build_dlb(const la::Matrix& density, la::Matrix& g,
                 const scf::FockContext& ctx);
  void build_stealing(const la::Matrix& density, la::Matrix& g,
                      const scf::FockContext& ctx);
  /// Queue the pair's surviving quartets into `batch`, flushing (evaluate
  /// + scatter into g, in discovery order) whenever it fills. The caller
  /// owns the batch across pairs and must flush_batch() once after its
  /// claim loop drains.
  void process_pair(const ints::ScreenedPair& pair, const la::Matrix& density,
                    la::Matrix& g, const scf::FockContext& ctx,
                    ints::QuartetBatch& batch);
  void flush_batch(ints::QuartetBatch& batch, const la::Matrix& density,
                   la::Matrix& g);

  const ints::EriEngine* eri_;
  const ints::Screening* screen_;
  par::Ddi* ddi_;
  MpiLoadBalance lb_;
  std::size_t pairs_ = 0;
  std::size_t quartets_ = 0;
  std::size_t density_screened_ = 0;
  std::size_t static_screened_ = 0;
  std::size_t steals_ = 0;
};

}  // namespace mc::core
