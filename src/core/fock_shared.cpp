#include "core/fock_shared.hpp"

#include <omp.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/access.hpp"
#include "ints/eri_batch.hpp"
#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "common/tsan_annotations.hpp"
#include "obs/trace.hpp"

namespace mc::core {

namespace {

/// Chunked parallel reduction of one buffer (all thread columns) into the
/// shell-s stripe of the shared Fock matrix, then per-thread re-zeroing.
/// Must be called by every thread of the team (contains worksharing
/// constructs). This is the tree-reduction flush of the paper's Figure 1B;
/// the "column" of the paper's Fortran storage is the row stripe
/// g(off+a, :) in our row-major matrices, which also keeps the raw
/// skeleton bit-comparable with the serial reference scatter.
///
/// Access protocol (annotated via the types, verified under MC_CHECK):
/// cross-thread reads of the lanes via TeamBuffer::read, exclusive column
/// writes into the shared matrix via OwnedSlice::add, a barrier, then the
/// owner's lane re-zero -- all reads done before anyone re-zeroes.
void flush_buffer(const acc::TeamBuffer<double>& buf,
                  const acc::ThreadPrivate<double>& mine, int nt,
                  const basis::Shell& sh, std::size_t nbf,
                  const acc::OwnedSlice<double>& f_acc,
                  acc::ThreadCtx<>& th, const volatile void* tag) {
  const int nf = sh.nfunc();
  const std::size_t off = sh.first_bf;
#pragma omp for schedule(static) nowait
  for (long col = 0; col < static_cast<long>(nbf); ++col) {
    const auto c = static_cast<std::size_t>(col);
    for (int a = 0; a < nf; ++a) {
      double sum = 0.0;
      for (int t = 0; t < nt; ++t) {
        sum += buf.read(t, static_cast<std::size_t>(a) * nbf + c);
      }
      f_acc.add((off + static_cast<std::size_t>(a)) * nbf + c, sum);
    }
  }
  // All reads done before anyone re-zeroes. Annotated (rather than the
  // worksharing construct's implicit barrier) so TSan sees the ordering
  // between cross-thread buffer reads and the owner's re-zeroing writes;
  // the same barrier advances the shadow ledger's epoch.
  MC_PROTOCOL_BARRIER(tag, th);
  mine.zero(static_cast<std::size_t>(nf) * nbf);
  MC_PROTOCOL_BARRIER(tag, th);
}

}  // namespace

void FockBuilderShared::build(const la::Matrix& density, la::Matrix& g,
                              const scf::FockContext& ctx) {
  MC_OBS_TRACE("fock:shared");
  const basis::BasisSet& bs = eri_->basis_set();
  const std::size_t nbf = bs.nbf();
  // The MPI DLB counter walks the Screening's bra-grouped pair list:
  // already compacted to Schwarz survivors, grouped by i shell (so the
  // lazy FI flush still fires at most once per i group) with the heaviest
  // groups first.
  const auto& bra_pairs = screen_->bra_grouped_pairs();
  const std::size_t nlist = bra_pairs.size();
  const bool weighted = ctx.weighted();
  const double scale = ctx.threshold_scale;
  MC_CHECK(g.rows() == nbf && g.cols() == nbf, "G shape mismatch");
  MC_CHECK(opt_.nthreads >= 1, "need at least one thread");

  ddi_->dlb_reset();
  pairs_ = 0;
  quartets_ = 0;
  density_screened_ = 0;
  static_screened_ = 0;
  fi_flushes_ = 0;

  const int nt = opt_.nthreads;
  thread_quartets_.assign(static_cast<std::size_t>(nt), 0);
  // mxsize = ubound(Fock) * shellSize (+ padding against false sharing);
  // one column per thread (Algorithm 3 lines 1-3).
  const std::size_t col_stride =
      nbf * static_cast<std::size_t>(bs.max_shell_size()) +
      static_cast<std::size_t>(opt_.padding_doubles);
  TrackedBuffer fi("fock_fi_buffer", col_stride * static_cast<std::size_t>(nt));
  TrackedBuffer fj("fock_fj_buffer", col_stride * static_cast<std::size_t>(nt));

  // Shadow-ownership verifier (MC_CHECK builds; DESIGN.md section 11.3):
  // the shared Fock matrix, both team buffers, and the per-thread result
  // slots are registered as checked regions. In normal builds BuildChecker
  // is an empty type and every hook below compiles to nothing.
  acc::BuildChecker<> checker(ddi_->rank(), nt);
  const int reg_f = checker.region("F", g.size());
  const int reg_fi = checker.region("FI", fi.size());
  const int reg_fj = checker.region("FJ", fj.size());
  const int reg_tq = checker.region("thread_quartets", thread_quartets_.size());

  // The density is team-shared and read-only for the whole region; the
  // type has no mutating accessor, so a misrouted update cannot compile.
  const acc::SharedReadOnly<const la::Matrix&> den(density);

  // Per-iteration decisions are taken once, by the master thread, and
  // published through these shared slots. Threads snapshot them between
  // two barriers, so the whole team always agrees on which worksharing
  // constructs the iteration executes. (Evaluating "did i change?" per
  // thread against a mutable iold is a divergence race: a fast thread can
  // update the state before a slow one reads it, deadlocking the team.)
  struct IterPlan {
    long ij = 0;
    bool skip = false;          // pair prescreened out
    long flush_shell = -1;      // FI flush target shell, or -1
  };
  IterPlan plan;
  long iold = -1;  // previous i index; owned by the master thread

  omp_set_schedule(opt_.dynamic_schedule ? omp_sched_dynamic
                                         : omp_sched_static,
                   1);

  // Team fork/join edges: libgomp hands threads off through futexes TSan
  // cannot see, so publish the pre-region state (density, buffers, plan)
  // to the workers and the workers' final writes back to the master.
  MC_TSAN_RELEASE(&plan);
#pragma omp parallel num_threads(nt) default(shared)
  {
    MC_TSAN_ACQUIRE(&plan);
    const int tid = omp_get_thread_num();
    // OpenMP workers do not inherit the rank thread's attribution; scope it
    // so trace events and tracked buffers land on this rank's lane.
    RankScope rank_scope(ddi_->rank());
    // Per-thread protocol views: the thread's own FI/FJ lanes (mutable
    // only through these handles), the whole-lane-array views for the
    // flush reduction, and the shared-Fock window for the direct F_kl
    // updates whose exclusivity the kl loop guarantees.
    acc::ThreadCtx<> th(checker, tid);
    const acc::TeamBuffer<double> fi_buf(fi.data(), nt, col_stride, &th,
                                         reg_fi);
    const acc::TeamBuffer<double> fj_buf(fj.data(), nt, col_stride, &th,
                                         reg_fj);
    const acc::ThreadPrivate<double> fi_lane = fi_buf.lane(tid);
    const acc::ThreadPrivate<double> fj_lane = fj_buf.lane(tid);
    const acc::OwnedSlice<double> f_acc(g.data(), g.size(), &th, reg_f, 0);
    // Thread-private quartet batch of the batched ERI pipeline. The digest
    // replays the six-update routing per entry -- including th.set_task on
    // the entry's kl tag, so the shadow ledger attributes the F_kl writes
    // to the kl task that owns them. Every batch is drained before the
    // end-of-kl-loop barrier: the direct F_kl writes rely on this thread's
    // exclusive ownership of its claimed kl values, which only holds inside
    // that epoch.
    ints::QuartetBatch qbatch(*eri_);
    auto digest_batch = [&]() {
      qbatch.evaluate();
      for (std::size_t qi = 0; qi < qbatch.size(); ++qi) {
        const ints::QuartetBatch::Entry& e = qbatch.quartets()[qi];
        th.set_task(static_cast<long>(e.tag));
        const double* vals = qbatch.result(qi);
        const basis::Shell& shi = bs.shell(e.si);
        const basis::Shell& shj = bs.shell(e.sj);
        const basis::Shell& shk = bs.shell(e.sk);
        const basis::Shell& shl = bs.shell(e.sl);
        const std::size_t oi = shi.first_bf;
        const std::size_t oj = shj.first_bf;
        const std::size_t ok = shk.first_bf;
        const std::size_t ol = shl.first_bf;
        const int ni = shi.nfunc();
        const int nj = shj.nfunc();
        const int nk = shk.nfunc();
        const int nl = shl.nfunc();
        const double w = scf::quartet_degeneracy(e.si, e.sj, e.sk, e.sl);

        // The six updates of eqs. (2a)-(2f), routed per Algorithm 3:
        //   FI (ThreadPrivate lane):   F_ij, F_ik, F_il
        //   FJ (ThreadPrivate lane):   F_jl, F_jk
        //   shared Fock (OwnedSlice):  F_kl -- distinct kl per thread, so
        //   the written row stripes are disjoint; MC_CHECK verifies it.
        std::size_t idx = 0;
        for (int a = 0; a < ni; ++a) {
          const std::size_t fa = oi + static_cast<std::size_t>(a);
          const std::size_t abase = static_cast<std::size_t>(a) * nbf;
          for (int b = 0; b < nj; ++b) {
            const std::size_t fb = oj + static_cast<std::size_t>(b);
            const std::size_t bbase = static_cast<std::size_t>(b) * nbf;
            for (int c = 0; c < nk; ++c) {
              const std::size_t fc = ok + static_cast<std::size_t>(c);
              const acc::OwnedSlice<double> gk = f_acc.slice(fc * nbf, nbf);
              for (int dd = 0; dd < nl; ++dd, ++idx) {
                const double v = vals[idx];
                if (v == 0.0) continue;
                const std::size_t fd = ol + static_cast<std::size_t>(dd);
                const double x = 0.5 * w * v;
                const double x4 = 0.25 * x;
                fi_lane.add(abase + fb, x * den(fc, fd));    // F_ij
                gk.add(fd, x * den(fa, fb));                 // F_kl (shared)
                fi_lane.add(abase + fc, -x4 * den(fb, fd));  // F_ik
                fj_lane.add(bbase + fd, -x4 * den(fa, fc));  // F_jl
                fi_lane.add(abase + fd, -x4 * den(fb, fc));  // F_il
                fj_lane.add(bbase + fc, -x4 * den(fa, fd));  // F_jk
              }
            }
          }
        }
      }
      qbatch.clear();
    };
    std::size_t my_quartets = 0;
    std::size_t my_density_screened = 0;
    std::size_t my_static_screened = 0;

    for (;;) {
#pragma omp master
      {
        plan.ij = ddi_->dlbnext();  // MPI DLB: get new list position
        plan.skip = false;
        plan.flush_shell = -1;
        if (plan.ij < static_cast<long>(nlist)) {
          ++pairs_;
          const ints::ScreenedPair& pr =
              bra_pairs[static_cast<std::size_t>(plan.ij)];
          // Static Schwarz prescreening (Algorithm 3 line 13) is already
          // baked into the list; only the density-weighted pair bound
          // remains to be checked per iteration.
          plan.skip =
              weighted &&
              !screen_->keep_pair(pr.i, pr.j, 4.0 * ctx.dmax_max, scale);
          if (!plan.skip) {
            // Lazy FI flush: only when the i index changed since the last
            // unscreened pair (Algorithm 3 lines 15-18).
            if (static_cast<long>(pr.i) != iold || !opt_.lazy_fi_flush) {
              plan.flush_shell = iold;
              if (plan.flush_shell >= 0) ++fi_flushes_;
            }
            iold = static_cast<long>(pr.i);
          }
        }
      }
      MC_PROTOCOL_BARRIER(&plan, th);
      const IterPlan my_plan = plan;
      // All snapshots taken before the master's next rewrite.
      MC_PROTOCOL_BARRIER(&plan, th);
      if (my_plan.ij >= static_cast<long>(nlist)) break;
      if (my_plan.skip) continue;
      th.set_task(my_plan.ij);

      // One span per claimed ij pair per thread: the per-thread lanes of
      // the chrome trace make the kl-loop load split visible directly.
      MC_OBS_TRACE("fock:shared:ij_task");
      const ints::ScreenedPair& my_pair =
          bra_pairs[static_cast<std::size_t>(my_plan.ij)];
      const std::size_t i = my_pair.i;
      const std::size_t j = my_pair.j;
      // Canonical pair index of (i,j); the kl loop stays triangular over
      // canonical pair indices regardless of the list's claim order.
      const long ij = static_cast<long>(my_pair.canonical);
      const basis::Shell& shj = bs.shell(j);

      if (my_plan.flush_shell >= 0) {
        flush_buffer(fi_buf, fi_lane, nt,
                     bs.shell(static_cast<std::size_t>(my_plan.flush_shell)),
                     nbf, f_acc, th, fi.data());
      }

#pragma omp for schedule(runtime) nowait
      for (long kl = 0; kl <= ij; ++kl) {
        th.set_task(kl);
        const auto [k, l] =
            screen_->pair_shells(static_cast<std::size_t>(kl));
        if (!screen_->keep(i, j, k, l)) {  // Schwartz screening
          ++my_static_screened;
          continue;
        }
        if (weighted && !screen_->keep(i, j, k, l,
                                       ctx.quartet_dmax(i, j, k, l), scale)) {
          ++my_density_screened;
          continue;
        }
        // Queue (i,j|k,l); the kl tag routes the digest's F_kl writes back
        // to this task in the shadow ledger.
        qbatch.add(i, j, k, l, static_cast<std::uint64_t>(kl));
        ++my_quartets;
        if (qbatch.full()) digest_batch();
      }
      // Drain before the epoch ends: F_kl exclusivity only holds until the
      // end-of-kl-loop barrier below.
      digest_batch();
      // End of kl loop (nowait + explicit barrier): orders the direct
      // shared-Fock F_kl writes against the FJ flush that follows.
      MC_PROTOCOL_BARRIER(&plan, th);

      // Flush FJ after every kl loop (Algorithm 3 line 31).
      flush_buffer(fj_buf, fj_lane, nt, shj, nbf, f_acc, th, fj.data());
    }

    // Flush the remaining FI contribution (Algorithm 3 line 36). iold was
    // last written by the master before the loop-exit barriers, so every
    // thread observes the same final value here.
    if (iold >= 0) {
      flush_buffer(fi_buf, fi_lane, nt,
                   bs.shell(static_cast<std::size_t>(iold)), nbf, f_acc, th,
                   fi.data());
#pragma omp master
      ++fi_flushes_;
    }

#pragma omp atomic
    quartets_ += my_quartets;
#pragma omp atomic
    density_screened_ += my_density_screened;
#pragma omp atomic
    static_screened_ += my_static_screened;
    // Distinct slot per thread, claimed through the checked slice; the
    // master reads after the join (published by the region-edge TSAN
    // annotations like the atomics above).
    const acc::OwnedSlice<std::size_t> tq(thread_quartets_.data(),
                                          thread_quartets_.size(), &th,
                                          reg_tq, 0);
    tq.set(static_cast<std::size_t>(tid), my_quartets);
    MC_TSAN_RELEASE(&plan);
  }
  MC_TSAN_ACQUIRE(&plan);
  MC_TSAN_OMP_QUIESCE();  // fresh workers for the next region under TSan

  // Surface any recorded ownership violation before the cross-rank
  // reduction publishes a corrupted matrix.
  checker.finalize();

  // 2e-Fock matrix reduction over MPI ranks.
  ddi_->gsumf(g);
}

}  // namespace mc::core

namespace mc::check {
// This TU's kAccessChecked reflects the library's build mode, which is what
// tests need to know before asserting on builder-driven ledgers.
bool core_hooks_compiled() { return acc::kAccessChecked; }
}  // namespace mc::check
