#include "core/fock_private.hpp"

#include <omp.h>

#include <vector>

#include "common/access.hpp"
#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "common/tsan_annotations.hpp"
#include "ints/eri_batch.hpp"
#include "obs/trace.hpp"

namespace mc::core {

void FockBuilderPrivate::build(const la::Matrix& density, la::Matrix& g,
                               const scf::FockContext& ctx) {
  MC_OBS_TRACE("fock:private");
  const basis::BasisSet& bs = eri_->basis_set();
  const std::size_t nbf = bs.nbf();
  MC_CHECK(g.rows() == nbf && g.cols() == nbf, "G shape mismatch");
  MC_CHECK(opt_.nthreads >= 1, "need at least one thread");

  // The MPI DLB counter claims positions in the Screening's work-sorted
  // bra-shell list (heaviest i first; shells with no surviving pair are
  // absent) instead of raw shell indices -- same largest-first rationale
  // as Algorithm 1's sorted pair list, at i-shell granularity.
  const auto& bra_order = screen_->sorted_bra_shells();
  const bool weighted = ctx.weighted();
  const double scale = ctx.threshold_scale;

  ddi_->dlb_reset();
  i_claimed_ = 0;
  quartets_ = 0;
  density_screened_ = 0;
  static_screened_ = 0;

  const int nt = opt_.nthreads;
  thread_quartets_.assign(static_cast<std::size_t>(nt), 0);
  std::vector<la::Matrix*> thread_g(static_cast<std::size_t>(nt), nullptr);
  long shared_i = 0;

  // Shadow-ownership verifier (MC_CHECK builds; DESIGN.md section 11.3).
  // Algorithm 2 touches far less shared state than Algorithm 3: the rank
  // Fock matrix (written only in the row-chunked reduction), the matrix
  // pointer slots, and the per-thread quartet counters.
  acc::BuildChecker<> checker(ddi_->rank(), nt);
  const int reg_g = checker.region("G", g.size());
  const int reg_slots = checker.region("thread_g", thread_g.size());
  const int reg_tq = checker.region("thread_quartets", thread_quartets_.size());

  // Team-shared, read-only for the whole region.
  const acc::SharedReadOnly<const la::Matrix&> den(density);

  omp_set_schedule(opt_.dynamic_schedule ? omp_sched_dynamic
                                         : omp_sched_static,
                   1);

  // Team fork/join edges for TSan (libgomp's futex-based handoff is
  // invisible to it); see common/tsan_annotations.hpp.
  MC_TSAN_RELEASE(&shared_i);
#pragma omp parallel num_threads(nt) default(shared)
  {
    MC_TSAN_ACQUIRE(&shared_i);
    const int tid = omp_get_thread_num();
    // OpenMP workers do not inherit the rank thread's memory attribution;
    // scope it so thread-private buffers are charged to this rank.
    RankScope rank_scope(ddi_->rank());
    acc::ThreadCtx<> th(checker, tid);
    // The thread-private replicated Fock matrix: the memory cost that
    // distinguishes Algorithm 2 (eq. 3b) from Algorithm 3 (eq. 3c).
    la::Matrix gp(nbf, nbf, "fock_thread_private");
    {
      // Publish this thread's copy for the end-of-region reduction:
      // distinct slot per thread, claimed through the checked slice.
      const acc::OwnedSlice<la::Matrix*> slots(thread_g.data(),
                                               thread_g.size(), &th,
                                               reg_slots, 0);
      slots.set(static_cast<std::size_t>(tid), &gp);
    }
    // Thread-private quartet batch for the batched ERI pipeline: digesting
    // into the private gp needs no synchronization, so flushes may happen
    // at any point before the end-of-region reduction. Scatter runs in
    // discovery order, keeping the per-thread summation order identical to
    // the scalar per-quartet path.
    ints::QuartetBatch batch(*eri_);
    auto flush_batch = [&](la::Matrix& gp_ref) {
      batch.evaluate();
      for (std::size_t idx = 0; idx < batch.size(); ++idx) {
        const ints::QuartetBatch::Entry& e = batch.quartets()[idx];
        scf::scatter_quartet(bs, e.si, e.sj, e.sk, e.sl, batch.result(idx),
                             den.get(), gp_ref);
      }
      batch.clear();
    };
    std::size_t my_quartets = 0;
    std::size_t my_density_screened = 0;
    std::size_t my_static_screened = 0;

    for (;;) {
#pragma omp master
      shared_i = ddi_->dlbnext();  // MPI DLB: get new I task
      MC_PROTOCOL_BARRIER(&shared_i, th);
      const long claimed = shared_i;
      if (claimed >= static_cast<long>(bra_order.size())) break;
      const long i =
          static_cast<long>(bra_order[static_cast<std::size_t>(claimed)]);
#pragma omp master
      ++i_claimed_;
      th.set_task(claimed);
      // One span per claimed i task per thread: the per-thread lanes of
      // the chrome trace make the (j,k) load split visible directly.
      MC_OBS_TRACE("fock:private:i_task");

      // OpenMP parallelization over the combined (j,k) loops; joining the
      // loops provides a larger task pool (paper section 4.3).
#pragma omp for collapse(2) schedule(runtime) nowait
      for (long j = 0; j <= i; ++j) {
        for (long k = 0; k <= i; ++k) {
          const auto si = static_cast<std::size_t>(i);
          const auto sj = static_cast<std::size_t>(j);
          // Bra-pair prescreens hoisted out of the l loop: static Schwarz
          // against qmax, then the density-weighted pair bound.
          if (!screen_->keep_pair(si, sj)) continue;
          if (weighted &&
              !screen_->keep_pair(si, sj, 4.0 * ctx.dmax_max, scale)) {
            continue;
          }
          const long lmax = (k == i) ? j : k;
          for (long l = 0; l <= lmax; ++l) {
            const auto sk = static_cast<std::size_t>(k);
            const auto sl = static_cast<std::size_t>(l);
            if (!screen_->keep(si, sj, sk, sl)) {
              ++my_static_screened;
              continue;
            }
            if (weighted &&
                !screen_->keep(si, sj, sk, sl,
                               ctx.quartet_dmax(si, sj, sk, sl), scale)) {
              ++my_density_screened;
              continue;
            }
            // Queue for batched evaluation; digest updates the *private*
            // 2e-Fock matrix, so no synchronization on flush either.
            batch.add(si, sj, sk, sl);
            ++my_quartets;
            if (batch.full()) flush_batch(gp);
          }
        }
      }
      // Keeps the team in lockstep with the master: iteration N's reads of
      // shared_i must be ordered before the master's iteration-N+1 rewrite.
      MC_PROTOCOL_BARRIER(&shared_i, th);
    }
    // Drain quartets queued by the final i tasks before gp is reduced.
    flush_batch(gp);

#pragma omp atomic
    quartets_ += my_quartets;
#pragma omp atomic
    density_screened_ += my_density_screened;
#pragma omp atomic
    static_screened_ += my_static_screened;
    // Distinct slot per thread; the master reads after the join (the
    // region-edge TSAN annotations publish it like the atomics above).
    {
      const acc::OwnedSlice<std::size_t> tq(thread_quartets_.data(),
                                            thread_quartets_.size(), &th,
                                            reg_tq, 0);
      tq.set(static_cast<std::size_t>(tid), my_quartets);
    }

    // Reduce the thread-private copies into the rank matrix, row-chunked so
    // threads write disjoint cache lines.
    MC_PROTOCOL_BARRIER(&shared_i, th);
    const acc::OwnedSlice<double> g_acc(g.data(), g.size(), &th, reg_g, 0);
#pragma omp for schedule(static) nowait
    for (long row = 0; row < static_cast<long>(nbf); ++row) {
      const acc::OwnedSlice<double> grow =
          g_acc.slice(static_cast<std::size_t>(row) * nbf, nbf);
      for (int t = 0; t < nt; ++t) {
        const double* prow =
            thread_g[static_cast<std::size_t>(t)]->row(
                static_cast<std::size_t>(row));
        for (std::size_t c = 0; c < nbf; ++c) grow.add(c, prow[c]);
      }
    }
    // Nobody frees gp before the reduction completes.
    MC_PROTOCOL_BARRIER(&shared_i, th);
    MC_TSAN_RELEASE(&shared_i);
  }
  MC_TSAN_ACQUIRE(&shared_i);
  MC_TSAN_OMP_QUIESCE();  // fresh workers for the next region under TSan

  // Surface any recorded ownership violation before the cross-rank
  // reduction publishes a corrupted matrix.
  checker.finalize();

  // 2e-Fock matrix reduction over MPI ranks.
  ddi_->gsumf(g);
}

}  // namespace mc::core
