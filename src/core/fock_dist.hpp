#pragma once
// Algorithm 4 (this repo's extension beyond the paper's three): a
// block-distributed Fock build over one-sided DDI windows, breaking the
// replicated-matrix memory ceiling of eqs. 3a-3c.
//
// The paper's builders all hold full N x N density and Fock matrices on
// every rank, which is exactly what makes its 5 nm / 30,240-BF dataset
// infeasible below the shared-Fock algorithm (Figure 7). Here D and F are
// tiled in shell-aligned row panels distributed across ranks (the
// HONPAS-style static block layout of arXiv:2009.03559 mapped onto our
// Schwarz-sorted pair lists):
//
//   * every rank puts its owned D panels into a window and fences once;
//   * the pair loop (claimed via ddi_dlbnext, or a static cyclic slice)
//     reads remote density panels through a rank-local tile cache with
//     claim-ahead prefetch, overlapping tile fetches with the batched ERI
//     pipeline;
//   * F contributions accumulate into rank-local panel buffers that are
//     flushed with one-sided ddi_acc -- there is no N^2 gsumf of a
//     replicated matrix anywhere in the build;
//   * a final fence + per-panel get replicates the reduced skeleton into
//     the caller's G (the SCF driver's diagonalization is replicated, as
//     in all the paper's codes), satisfying the FockBuilder contract.
//
// Per-rank D+F window footprint is 2 N^2 / nranks doubles (asserted by
// bench_table2_memory); the tile cache and open F panels add a bounded,
// tunable overlay (DistFockOptions). Numerics: per-quartet contributions
// are bitwise identical to the scalar path (same batch kernel, same
// discovery order); only the final per-element accumulation order differs
// (per-rank panels + acc instead of gsumf), so results stay within the
// reassociation ULP bound of the other builders -- and a 1-rank build is
// bitwise identical to SerialFockBuilder. DESIGN.md section 13.

#include <cstdint>
#include <memory>
#include <vector>

#include "ints/eri_batch.hpp"
#include "par/ddi.hpp"
#include "scf/fock_builder.hpp"

namespace mc::core {

struct DistFockOptions {
  /// Target rows per tile (rounded up to shell boundaries). 0 = auto:
  /// max(max_shell_size, nbf / (4 * nranks)), i.e. about four tiles per
  /// rank so the cyclic owner assignment stays balanced.
  int tile_rows = 0;
  /// Pairs claimed ahead of the one being processed; their bra density
  /// tiles are prefetched into the cache before the ERI pipeline needs
  /// them (>= 1 gives the double-buffered overlap, 0 disables).
  int prefetch_depth = 2;
  /// true: claim pairs with the global DLB counter (ddi_dlbnext), like
  /// Algorithm 1. false: HONPAS-style static distribution -- a cyclic
  /// slice of the Schwarz-sorted pair list, no shared counter.
  bool dynamic_lb = true;
  /// Resident density-tile budget (tiles, incl. prefetched). 0 =
  /// unlimited; small values bound cache memory at the cost of refetches.
  std::size_t max_cached_tiles = 0;
  /// Open local F panel budget. 0 = unlimited; exceeding it acc-flushes
  /// the least-recently-touched panel to the window early (correct --
  /// acc commutes -- but adds window traffic).
  std::size_t max_open_f_tiles = 0;
};

/// Shell-aligned row-panel tiling of an nbf x nbf matrix, with tiles
/// assigned cyclically to ranks and laid out rank-contiguously in a
/// window (rank r's segment holds its tiles back to back).
struct TileLayout {
  std::size_t nbf = 0;
  std::size_t ntiles = 0;
  std::vector<std::size_t> tile_row0;    ///< row fences, size ntiles+1
  std::vector<std::size_t> tile_shell0;  ///< shell fences, size ntiles+1
  std::vector<std::uint32_t> row_tile;   ///< row -> tile
  std::vector<std::uint32_t> shell_tile; ///< shell -> tile
  std::vector<int> owner;                ///< tile -> owning rank
  std::vector<std::size_t> tile_offset;  ///< tile -> window element offset
  std::vector<std::size_t> rank_elems;   ///< rank -> window segment size

  [[nodiscard]] std::size_t tile_rows(std::size_t t) const {
    return tile_row0[t + 1] - tile_row0[t];
  }
  [[nodiscard]] std::size_t tile_elems(std::size_t t) const {
    return tile_rows(t) * nbf;
  }

  /// Build the tiling: close a tile at the first shell boundary at or
  /// past `target_rows` rows (0 = auto, see DistFockOptions::tile_rows).
  static TileLayout build(const basis::BasisSet& bs, int nranks,
                          int target_rows);
};

class FockBuilderDist : public scf::FockBuilder {
 public:
  FockBuilderDist(const ints::EriEngine& eri, const ints::Screening& screen,
                  par::Ddi& ddi, DistFockOptions opt = {})
      : eri_(&eri), screen_(&screen), ddi_(&ddi), opt_(opt) {}

  [[nodiscard]] std::string name() const override { return "dist-fock"; }

  /// Collective over all ranks (window creation, fences, and the final
  /// replication are synchronization points); every rank returns the
  /// fully reduced skeleton matrix.
  using FockBuilder::build;
  void build(const la::Matrix& density, la::Matrix& g,
             const scf::FockContext& ctx) override;

  [[nodiscard]] std::size_t last_pairs_claimed() const override {
    return pairs_;
  }
  [[nodiscard]] std::size_t last_quartets_computed() const override {
    return quartets_;
  }
  [[nodiscard]] std::size_t last_density_screened() const override {
    return density_screened_;
  }
  [[nodiscard]] std::size_t last_static_screened() const override {
    return static_screened_;
  }
  [[nodiscard]] std::vector<std::size_t> last_thread_quartets()
      const override {
    return {quartets_};
  }
  [[nodiscard]] std::size_t screening_predicted_quartets() const override {
    return screen_->count_surviving_quartets();
  }
  [[nodiscard]] double screening_threshold() const override {
    return screen_->threshold();
  }
  [[nodiscard]] std::size_t last_tile_cache_hits() const override {
    return tile_hits_;
  }
  [[nodiscard]] std::size_t last_tile_cache_misses() const override {
    return tile_misses_;
  }
  /// Density-tile requests satisfied by the all-zero shortcut (tiles whose
  /// FockContext block norms are exactly zero are never fetched).
  [[nodiscard]] std::size_t last_zero_tile_hits() const { return zero_hits_; }
  /// Early acc-flushes forced by the max_open_f_tiles budget (the final
  /// flush of every open panel is not counted).
  [[nodiscard]] std::size_t last_early_flushes() const {
    return early_flushes_;
  }

  /// The tiling used by the last build (nullptr before the first build).
  [[nodiscard]] const TileLayout* layout() const { return layout_.get(); }

 private:
  struct DCache;  ///< rank-local density-tile cache over the D window
  struct FAcc;    ///< rank-local F panel accumulators, acc-flushed

  void build_dlb(const scf::FockContext& ctx, DCache& dcache, FAcc& facc);
  void build_static(const scf::FockContext& ctx, DCache& dcache, FAcc& facc);
  void process_pair(const ints::ScreenedPair& pair,
                    const scf::FockContext& ctx, ints::QuartetBatch& batch,
                    DCache& dcache, FAcc& facc);
  void flush_batch(ints::QuartetBatch& batch, DCache& dcache, FAcc& facc);

  const ints::EriEngine* eri_;
  const ints::Screening* screen_;
  par::Ddi* ddi_;
  DistFockOptions opt_;
  std::unique_ptr<TileLayout> layout_;

  std::size_t pairs_ = 0;
  std::size_t quartets_ = 0;
  std::size_t density_screened_ = 0;
  std::size_t static_screened_ = 0;
  std::size_t tile_hits_ = 0;
  std::size_t tile_misses_ = 0;
  std::size_t zero_hits_ = 0;
  std::size_t early_flushes_ = 0;
};

}  // namespace mc::core
