#include "core/parallel_scf.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <numeric>

#include "basis/basis_set.hpp"
#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "core/fock_mpi.hpp"
#include "ints/one_electron.hpp"
#include "la/blas_lite.hpp"
#include "la/orthogonalizer.hpp"
#include "la/sym_eig.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/ddi.hpp"
#include "par/runtime.hpp"
#include "scf/diis.hpp"

namespace mc::core {

double ParallelScfResult::load_imbalance() const {
  if (quartets_per_rank.empty()) return 1.0;
  const auto total = std::accumulate(quartets_per_rank.begin(),
                                     quartets_per_rank.end(), std::size_t{0});
  if (total == 0) return 1.0;
  const double mean = static_cast<double>(total) /
                      static_cast<double>(quartets_per_rank.size());
  const auto mx = *std::max_element(quartets_per_rank.begin(),
                                    quartets_per_rank.end());
  return static_cast<double>(mx) / mean;
}

namespace {

std::unique_ptr<scf::FockBuilder> make_builder(
    const ParallelScfConfig& cfg, const ints::EriEngine& eri,
    const ints::Screening& screen, par::Ddi& ddi) {
  switch (cfg.algorithm) {
    case ScfAlgorithm::kMpiOnly:
      return std::make_unique<FockBuilderMpi>(eri, screen, ddi);
    case ScfAlgorithm::kPrivateFock: {
      PrivateFockOptions opt = cfg.private_options;
      opt.nthreads = cfg.nthreads;
      return std::make_unique<FockBuilderPrivate>(eri, screen, ddi, opt);
    }
    case ScfAlgorithm::kSharedFock: {
      SharedFockOptions opt = cfg.shared_options;
      opt.nthreads = cfg.nthreads;
      return std::make_unique<FockBuilderShared>(eri, screen, ddi, opt);
    }
    case ScfAlgorithm::kDistFock:
      // Single-threaded per rank (like MPI-only); cfg.nthreads is ignored.
      return std::make_unique<FockBuilderDist>(eri, screen, ddi,
                                               cfg.dist_options);
  }
  MC_CHECK(false, "unknown algorithm");
  return nullptr;
}

}  // namespace

ParallelScfResult run_parallel_scf(const chem::Molecule& mol,
                                   const ParallelScfConfig& config) {
  return run_parallel_scf(mol, config, ParallelScfContext{});
}

ParallelScfResult run_parallel_scf(const chem::Molecule& mol,
                                   const ParallelScfConfig& config,
                                   const ParallelScfContext& ctx) {
  MC_CHECK(config.nranks >= 1, "need at least one rank");
  MC_CHECK(config.nthreads >= 1, "need at least one thread per rank");
  MC_CHECK(config.basis_per_atom.empty() ||
               config.basis_per_atom.size() == mol.natoms(),
           "basis_per_atom must name a basis for every atom");
  MC_CHECK(ctx.has_setup() ||
               (ctx.basis_set == nullptr && ctx.eri == nullptr &&
                ctx.screening == nullptr),
           "ParallelScfContext setup must be all-or-nothing (basis_set, "
           "eri, and screening together)");

  const int nelec = mol.nelectrons(config.scf.charge);
  MC_CHECK(nelec > 0 && nelec % 2 == 0,
           "closed-shell RHF requires an even, positive electron count");
  const int nocc = nelec / 2;

  ParallelScfResult result;
  result.quartets_per_rank.assign(static_cast<std::size_t>(config.nranks), 0);
  result.peak_bytes_per_rank.assign(static_cast<std::size_t>(config.nranks),
                                    0);
  result.dlb_wait_seconds_per_rank.assign(
      static_cast<std::size_t>(config.nranks), 0.0);
  result.gsum_seconds_per_rank.assign(static_cast<std::size_t>(config.nranks),
                                      0.0);
  std::mutex result_mu;

  // --profile: the session lives on the host thread; ranks deposit their
  // per-iteration metrics into distinct slots of this shared vector and
  // rank 0 assembles + writes the aggregated record. The deposit/read
  // cycle is ordered by two profiling-only barriers (gated so runs without
  // profiling -- e.g. the fault-injection tests, which count collective
  // ops -- see an unchanged op sequence).
  std::unique_ptr<obs::ProfileSession> profile;
  if (!config.scf.profile_path.empty()) {
    profile = std::make_unique<obs::ProfileSession>(config.scf.profile_path);
  }
  const bool profiling = profile != nullptr;
  std::vector<obs::RankIterationMetrics> iter_metrics(
      static_cast<std::size_t>(config.nranks));

  if (ctx.exclusive) MemoryTracker::instance().reset();
  WallTimer wall;

  par::run_spmd(config.nranks, [&](par::Comm& comm) {
    par::Ddi ddi(comm);
    const int rank = comm.rank();

    // Every rank owns replicated copies of the geometry-derived data --
    // exactly the replication pattern of the real GAMESS code. In warm
    // (server) mode the setup instead arrives prebuilt and immutable from
    // the caller's cache and is *shared* by all ranks: BasisSet, EriEngine,
    // and Screening are read-only during builds, so sharing trades the
    // replication fidelity for zero per-job setup cost.
    std::unique_ptr<basis::BasisSet> own_bs;
    std::unique_ptr<ints::EriEngine> own_eri;
    std::unique_ptr<ints::Screening> own_screen;
    if (!ctx.has_setup()) {
      own_bs = std::make_unique<basis::BasisSet>(
          config.basis_per_atom.empty()
              ? basis::BasisSet::build(mol, config.basis)
              : basis::BasisSet::build_mixed(mol, config.basis_per_atom));
      own_eri = std::make_unique<ints::EriEngine>(*own_bs);
      own_screen =
          std::make_unique<ints::Screening>(*own_eri, config.schwarz_threshold);
    }
    const basis::BasisSet& bs = ctx.has_setup() ? *ctx.basis_set : *own_bs;
    const ints::EriEngine& eri = ctx.has_setup() ? *ctx.eri : *own_eri;
    const ints::Screening& screen =
        ctx.has_setup() ? *ctx.screening : *own_screen;
    const std::size_t nbf = bs.nbf();
    auto builder = make_builder(config, eri, screen, ddi);

    const la::Matrix s(ints::overlap_matrix(bs), "overlap");
    const la::Matrix h(ints::core_hamiltonian(bs, mol), "hcore");
    la::Matrix x = la::canonical_orthogonalizer(s, config.scf.lindep_tolerance);

    la::Matrix d(nbf, nbf, "density");
    if (ctx.seed_density != nullptr) {
      MC_CHECK(ctx.seed_density->rows() == nbf &&
                   ctx.seed_density->cols() == nbf,
               "warm-start seed density has the wrong shape");
      d.copy_values_from(*ctx.seed_density);
    } else {
      d.copy_values_from(scf::core_guess_density(h, x, nocc));
    }
    la::Matrix g(nbf, nbf, "fock");
    // Incremental-build state (mirrors scf::run_scf; DESIGN.md section 9).
    // All of it is replicated and updated identically on every rank, so the
    // per-iteration full-vs-delta decision is deterministic across the
    // SPMD team -- a divergent decision would deadlock the collectives.
    la::Matrix g_acc(nbf, nbf, "fock_acc");
    la::Matrix d_last(nbf, nbf, "density_last");
    la::Matrix d_delta(nbf, nbf, "density_delta");
    int builds_since_full = 0;
    double err_acc = 0.0;
    scf::Diis diis(config.scf.diis_max_vectors);

    scf::ScfResult res;
    res.nuclear_repulsion = mol.nuclear_repulsion();

    // Profiling-time state: the screening-predicted quartet total (pure
    // local computation, identical on every rank; only rank 0 reports it)
    // and the previous channel-accumulator snapshots for per-iteration
    // deltas.
    std::size_t predicted_quartets = 0;
    if (profiling && rank == 0) {
      predicted_quartets = builder->screening_predicted_quartets();
    }
    double prev_dlb = 0.0;
    double prev_gsum = 0.0;
    double prev_barrier = 0.0;

    double e_prev = 0.0;
    for (int iter = 1; iter <= config.scf.max_iterations; ++iter) {
      MC_OBS_TRACE("scf:iteration");
      const bool full_rebuild =
          !config.scf.incremental_fock || iter == 1 ||
          builds_since_full >= config.scf.fock_rebuild_interval ||
          err_acc > config.scf.incremental_error_bound;

      WallTimer fock_timer;
      g.set_zero();
      if (full_rebuild) {
        builder->build(d, g);  // collective: includes ddi_gsumf
        g.symmetrize();
        g_acc.copy_values_from(g);
        builds_since_full = 0;
        err_acc = 0.0;
      } else {
        d_delta.copy_values_from(d);
        d_delta -= d_last;
        scf::FockContext fock_ctx =
            scf::FockContext::from_density(bs, d_delta, /*incremental=*/true);
        fock_ctx.threshold_scale = config.scf.incremental_threshold_scale;
        builder->build(d_delta, g, fock_ctx);
        g.symmetrize();
        g_acc += g;
        ++builds_since_full;
      }
      d_last.copy_values_from(d);

      // Global per-iteration counters. The screened count feeds err_acc,
      // so it must be the rank-summed value (exact: integer-valued doubles
      // well under 2^53) for all ranks to take the same rebuild decision.
      la::Matrix counts(1, 2);
      counts(0, 0) =
          static_cast<double>(builder->last_quartets_computed());
      counts(0, 1) = static_cast<double>(builder->last_density_screened());
      ddi.gsumf(counts);
      if (!full_rebuild) {
        err_acc += builder->screening_threshold() *
                   config.scf.incremental_threshold_scale * counts(0, 1) /
                   static_cast<double>(nbf);
      }
      const double t_fock = fock_timer.seconds();
      res.fock_build_seconds += t_fock;

      la::Matrix f = h;
      f += g_acc;

      const double e_elec = 0.5 * (la::dot(d, h) + la::dot(d, f));
      const double e_total = e_elec + res.nuclear_repulsion;

      la::Matrix fds = la::gemm(f, la::gemm(d, s));
      la::Matrix err_ao = fds;
      err_ao -= fds.transposed();
      la::Matrix err = la::gemm_tn(x, la::gemm(err_ao, x));

      la::Matrix f_eff = f;
      if (config.scf.use_diis) {
        diis.push(f, err);
        f_eff = diis.extrapolate();
      }

      // Diagonalization is replicated on every rank (as in GAMESS, where
      // it is a known scalability limit -- paper section 2).
      la::SymEigResult eig = la::eigh_generalized(f_eff, x);
      la::Matrix d_new = scf::density_from_coefficients(eig.vectors, nocc);

      double rms = 0.0;
      for (std::size_t q = 0; q < d.size(); ++q) {
        const double dv = d_new.data()[q] - d.data()[q];
        rms += dv * dv;
      }
      rms = std::sqrt(rms / static_cast<double>(d.size()));
      // Keep ranks in lockstep on the convergence decision even if
      // floating-point drift were to appear.
      rms = comm.allreduce_max(rms);

      scf::ScfIterationInfo info;
      info.iteration = iter;
      info.energy = e_total;
      info.delta_energy = e_total - e_prev;
      info.density_rms = rms;
      info.fock_build_seconds = t_fock;
      info.full_rebuild = full_rebuild;
      info.quartets_computed = static_cast<std::size_t>(counts(0, 0));
      info.density_screened = static_cast<std::size_t>(counts(0, 1));
      res.history.push_back(info);

      if (profiling) {
        // This rank's share of the iteration. Channel accumulators are
        // global; report deltas. The two profiling barriers below also add
        // to the barrier channel -- that time lands in the *next*
        // iteration's delta, a deliberate (and tiny) attribution skew.
        obs::RankIterationMetrics rm;
        rm.rank = rank;
        rm.pairs_claimed = builder->last_pairs_claimed();
        rm.quartets = builder->last_quartets_computed();
        rm.static_screened = builder->last_static_screened();
        rm.density_screened = builder->last_density_screened();
        rm.thread_quartets = builder->last_thread_quartets();
        rm.tile_hits = builder->last_tile_cache_hits();
        rm.tile_misses = builder->last_tile_cache_misses();
        const double dlb = obs::channel_seconds(obs::Channel::kDlbWait, rank);
        const double gsum = obs::channel_seconds(obs::Channel::kGsum, rank);
        const double bar = obs::channel_seconds(obs::Channel::kBarrier, rank);
        rm.dlb_wait_seconds = dlb - prev_dlb;
        rm.gsum_seconds = gsum - prev_gsum;
        rm.barrier_seconds = bar - prev_barrier;
        prev_dlb = dlb;
        prev_gsum = gsum;
        prev_barrier = bar;
        rm.peak_bytes = MemoryTracker::instance().rank_peak_bytes(rank);
        iter_metrics[static_cast<std::size_t>(rank)] = std::move(rm);
        comm.barrier();  // all deposits visible to rank 0
        if (rank == 0) {
          obs::IterationRecord rec;
          rec.algorithm = builder->name();
          rec.nranks = config.nranks;
          rec.nthreads = config.nthreads;
          rec.iteration = iter;
          rec.energy = e_total;
          rec.delta_energy = info.delta_energy;
          rec.density_rms = rms;
          rec.full_rebuild = full_rebuild;
          rec.fock_seconds = t_fock;
          rec.quartets = info.quartets_computed;
          rec.density_screened = info.density_screened;
          rec.screening_predicted_quartets = predicted_quartets;
          rec.ranks = iter_metrics;
          for (const auto& r : iter_metrics) {
            rec.static_screened += r.static_screened;
          }
          profile->write_iteration(rec);
        }
        comm.barrier();  // rank 0 read before the next iteration's rewrite
      }

      d.copy_values_from(d_new);
      res.iterations = iter;
      res.energy = e_total;
      res.electronic_energy = e_elec;
      res.orbital_energies = eig.values;
      res.mo_coefficients = eig.vectors;
      res.fock = std::move(f);

      if (iter > 1 && rms < config.scf.density_tolerance &&
          std::abs(e_total - e_prev) < config.scf.energy_tolerance) {
        res.converged = true;
        break;
      }
      e_prev = e_total;
    }
    res.density = d;  // keep the tracked copy alive until after snapshot

    {
      std::lock_guard<std::mutex> lk(result_mu);
      result.quartets_per_rank[static_cast<std::size_t>(rank)] =
          builder->last_quartets_computed();
      result.peak_bytes_per_rank[static_cast<std::size_t>(rank)] =
          MemoryTracker::instance().rank_peak_bytes(rank);
      result.dlb_wait_seconds_per_rank[static_cast<std::size_t>(rank)] =
          obs::channel_seconds(obs::Channel::kDlbWait, rank);
      result.gsum_seconds_per_rank[static_cast<std::size_t>(rank)] =
          obs::channel_seconds(obs::Channel::kGsum, rank);
      if (rank == 0) result.scf = std::move(res);
    }
    comm.barrier();
  });

  result.wall_seconds = wall.seconds();
  return result;
}

}  // namespace mc::core
