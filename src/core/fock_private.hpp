#pragma once
// Algorithm 2 of the paper: hybrid MPI/OpenMP SCF with a *shared density*
// and a *thread-private Fock* matrix.
//
// MPI level: the master thread of each rank claims the next i shell index
// from the global DLB counter (guarded by barriers). OpenMP level: the
// combined (j,k) loop is collapsed and dynamically scheduled across the
// rank's threads; each thread accumulates into its own replicated Fock
// copy (hence eq. 3b: (2 + T) N^2 per rank). Thread copies are reduced
// into the rank matrix, then ranks reduce with ddi_gsumf.

#include "par/ddi.hpp"
#include "scf/fock_builder.hpp"

namespace mc::core {

struct PrivateFockOptions {
  int nthreads = 1;
  /// schedule(dynamic,1) on the collapsed (j,k) loop when true, static
  /// otherwise. The paper tested both and saw no significant difference
  /// (section 4.3); the ablation bench quantifies that claim here.
  bool dynamic_schedule = true;
};

class FockBuilderPrivate : public scf::FockBuilder {
 public:
  FockBuilderPrivate(const ints::EriEngine& eri,
                     const ints::Screening& screen, par::Ddi& ddi,
                     PrivateFockOptions options = {})
      : eri_(&eri), screen_(&screen), ddi_(&ddi), opt_(options) {}

  [[nodiscard]] std::string name() const override { return "private-fock"; }

  using FockBuilder::build;
  void build(const la::Matrix& density, la::Matrix& g,
             const scf::FockContext& ctx) override;

  [[nodiscard]] std::size_t last_i_claimed() const { return i_claimed_; }
  [[nodiscard]] std::size_t last_pairs_claimed() const override {
    return i_claimed_;
  }
  [[nodiscard]] std::size_t last_quartets_computed() const override {
    return quartets_;
  }
  [[nodiscard]] std::size_t last_density_screened() const override {
    return density_screened_;
  }
  [[nodiscard]] std::size_t last_static_screened() const override {
    return static_screened_;
  }
  [[nodiscard]] std::vector<std::size_t> last_thread_quartets()
      const override {
    return thread_quartets_;
  }
  [[nodiscard]] std::size_t screening_predicted_quartets() const override {
    return screen_->count_surviving_quartets();
  }
  [[nodiscard]] double screening_threshold() const override {
    return screen_->threshold();
  }

 private:
  const ints::EriEngine* eri_;
  const ints::Screening* screen_;
  par::Ddi* ddi_;
  PrivateFockOptions opt_;
  std::size_t i_claimed_ = 0;
  std::size_t quartets_ = 0;
  std::size_t density_screened_ = 0;
  std::size_t static_screened_ = 0;
  std::vector<std::size_t> thread_quartets_;
};

}  // namespace mc::core
