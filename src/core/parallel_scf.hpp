#pragma once
// End-to-end distributed SCF: launches a minimpi SPMD job in which every
// rank runs the lockstep GAMESS-style SCF loop -- replicated one-electron
// matrices and diagonalization, cooperative two-electron Fock build with
// the selected algorithm, ddi_gsumf reduction -- and reports rank-0 results
// plus per-rank memory and load statistics.
//
// This is the public entry point a downstream user calls; the examples and
// the algorithm-comparison benchmarks are built on it.

#include <cstddef>
#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "core/fock_dist.hpp"
#include "core/fock_private.hpp"
#include "core/fock_shared.hpp"
#include "core/memory_model.hpp"
#include "scf/scf_driver.hpp"

namespace mc::core {

struct ParallelScfConfig {
  ScfAlgorithm algorithm = ScfAlgorithm::kSharedFock;
  int nranks = 1;
  /// OpenMP threads per rank; forced to 1 for the MPI-only algorithm.
  int nthreads = 1;
  std::string basis = "STO-3G";
  scf::ScfOptions scf;
  double schwarz_threshold = 1e-10;
  /// Algorithm-specific tuning (nthreads fields are overridden).
  SharedFockOptions shared_options;
  PrivateFockOptions private_options;
  DistFockOptions dist_options;
};

struct ParallelScfResult {
  scf::ScfResult scf;  ///< rank-0 result (all ranks converge identically)
  double wall_seconds = 0.0;
  /// Quartets computed by each rank in the *final* Fock build -- the load
  /// balance signature of the algorithm.
  std::vector<std::size_t> quartets_per_rank;
  /// Tracked-allocation peak per rank over the whole run.
  std::vector<std::size_t> peak_bytes_per_rank;
  /// Cumulative per-rank wait times over the whole run, from the obs
  /// channel accumulators (all zero unless metrics are enabled -- i.e. a
  /// --profile run or MC_OBS=1 in the environment).
  std::vector<double> dlb_wait_seconds_per_rank;
  std::vector<double> gsum_seconds_per_rank;
  /// max/mean of quartets_per_rank (1.0 = perfect balance).
  [[nodiscard]] double load_imbalance() const;
};

/// Run the distributed SCF. Throws mc::Error on invalid configuration or
/// non-convergence is reported via result.scf.converged.
ParallelScfResult run_parallel_scf(const chem::Molecule& mol,
                                   const ParallelScfConfig& config);

}  // namespace mc::core
