#pragma once
// End-to-end distributed SCF: launches a minimpi SPMD job in which every
// rank runs the lockstep GAMESS-style SCF loop -- replicated one-electron
// matrices and diagonalization, cooperative two-electron Fock build with
// the selected algorithm, ddi_gsumf reduction -- and reports rank-0 results
// plus per-rank memory and load statistics.
//
// This is the public entry point a downstream user calls; the examples and
// the algorithm-comparison benchmarks are built on it.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "core/fock_dist.hpp"
#include "core/fock_private.hpp"
#include "core/fock_shared.hpp"
#include "core/memory_model.hpp"
#include "ints/screening.hpp"
#include "scf/scf_driver.hpp"

namespace mc::core {

struct ParallelScfConfig {
  ScfAlgorithm algorithm = ScfAlgorithm::kSharedFock;
  int nranks = 1;
  /// OpenMP threads per rank; forced to 1 for the MPI-only algorithm.
  int nthreads = 1;
  std::string basis = "STO-3G";
  /// Mixed-basis entry point: when non-empty (size must equal
  /// mol.natoms()), every rank builds BasisSet::build_mixed with this
  /// per-atom assignment and `basis` is ignored. This is how the fuzz soak
  /// and the job server replay the differential harness's per-atom basis
  /// sampling through the full distributed SCF (ROADMAP PR-8 headroom).
  std::vector<std::string> basis_per_atom;
  scf::ScfOptions scf;
  double schwarz_threshold = 1e-10;
  /// Algorithm-specific tuning (nthreads fields are overridden).
  SharedFockOptions shared_options;
  PrivateFockOptions private_options;
  DistFockOptions dist_options;
};

/// Optional warm inputs for a run, owned by the caller (the job server's
/// warm caches). Everything here is immutable and internally thread-safe
/// for concurrent reads, so one instance may back several concurrent
/// worlds at once.
struct ParallelScfContext {
  /// Prebuilt basis/integral setup shared by every rank (replacing the
  /// per-rank replicated construction). All three must be set together and
  /// must match the config's basis assignment and Schwarz threshold --
  /// they are keyed by exactly those in the server's setup cache.
  std::shared_ptr<const basis::BasisSet> basis_set;
  std::shared_ptr<const ints::EriEngine> eri;
  std::shared_ptr<const ints::Screening> screening;
  /// Warm-start seed: replaces the core-Hamiltonian guess as the
  /// iteration-1 density on every rank (all ranks read the same matrix, so
  /// the lockstep invariant holds trivially).
  std::shared_ptr<const la::Matrix> seed_density;
  /// True when this job owns the process-global trackers: the classic
  /// one-shot mode resets MemoryTracker before running. The job server
  /// passes false so concurrent jobs never clobber each other's
  /// accounting (per-rank attribution is then co-mingled across worlds --
  /// acceptable for serving, where the JobRecord carries the telemetry).
  bool exclusive = true;

  [[nodiscard]] bool has_setup() const {
    return basis_set != nullptr && eri != nullptr && screening != nullptr;
  }
};

struct ParallelScfResult {
  scf::ScfResult scf;  ///< rank-0 result (all ranks converge identically)
  double wall_seconds = 0.0;
  /// Quartets computed by each rank in the *final* Fock build -- the load
  /// balance signature of the algorithm.
  std::vector<std::size_t> quartets_per_rank;
  /// Tracked-allocation peak per rank over the whole run.
  std::vector<std::size_t> peak_bytes_per_rank;
  /// Cumulative per-rank wait times over the whole run, from the obs
  /// channel accumulators (all zero unless metrics are enabled -- i.e. a
  /// --profile run or MC_OBS=1 in the environment).
  std::vector<double> dlb_wait_seconds_per_rank;
  std::vector<double> gsum_seconds_per_rank;
  /// max/mean of quartets_per_rank (1.0 = perfect balance).
  [[nodiscard]] double load_imbalance() const;
};

/// Run the distributed SCF. Throws mc::Error on invalid configuration or
/// non-convergence is reported via result.scf.converged.
ParallelScfResult run_parallel_scf(const chem::Molecule& mol,
                                   const ParallelScfConfig& config);

/// Warm-path variant: shared prebuilt setup and/or a seed density from
/// `ctx` (see ParallelScfContext). The job server's submit path lands
/// here; the two-argument overload forwards with a default (cold,
/// exclusive) context.
ParallelScfResult run_parallel_scf(const chem::Molecule& mol,
                                   const ParallelScfConfig& config,
                                   const ParallelScfContext& ctx);

}  // namespace mc::core
