#include "core/fock_mpi.hpp"

#include <vector>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "par/work_stealing.hpp"

namespace mc::core {

void FockBuilderMpi::process_pair(const ints::ScreenedPair& pair,
                                  const la::Matrix& density, la::Matrix& g,
                                  const scf::FockContext& ctx,
                                  std::vector<double>& batch) {
  const basis::BasisSet& bs = eri_->basis_set();
  ++pairs_;
  const std::size_t i = pair.i;
  const std::size_t j = pair.j;
  const bool weighted = ctx.weighted();
  // Pair-level density prescreen: q_ij * qmax * 4*max|D| bounds every
  // quartet bound checked below, so a failing pair has no surviving work.
  if (weighted &&
      !screen_->keep_pair(i, j, 4.0 * ctx.dmax_max, ctx.threshold_scale)) {
    return;
  }
  scf::for_each_kl(i, j, [&](std::size_t k, std::size_t l) {
    if (!screen_->keep(i, j, k, l)) {  // Schwartz screening
      ++static_screened_;
      return;
    }
    if (weighted && !screen_->keep(i, j, k, l, ctx.quartet_dmax(i, j, k, l),
                                   ctx.threshold_scale)) {
      ++density_screened_;
      return;
    }
    ints::ensure_batch_size(batch, eri_->batch_size(i, j, k, l));
    eri_->compute(i, j, k, l, batch.data());  // calculate (i,j|k,l)
    // Update the process-local replicated 2e-Fock matrix.
    scf::scatter_quartet(bs, i, j, k, l, batch.data(), density, g);
    ++quartets_;
  });
}

void FockBuilderMpi::build_dlb(const la::Matrix& density, la::Matrix& g,
                               const scf::FockContext& ctx) {
  // The DLB counter walks the precompacted Schwarz-sorted pair list --
  // screened-out pairs never hit the shared counter, and the heaviest
  // pairs are claimed first.
  const auto& pairs = screen_->sorted_pairs();
  ddi_->dlb_reset();

  // GAMESS-style DLB: the loop body runs only for iterations whose global
  // index matches the next value handed out by the shared counter.
  std::vector<double> batch;
  long next = ddi_->dlbnext();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    if (static_cast<long>(p) != next) continue;
    next = ddi_->dlbnext();
    process_pair(pairs[p], density, g, ctx, batch);
  }
}

void FockBuilderMpi::build_stealing(const la::Matrix& density, la::Matrix& g,
                                    const scf::FockContext& ctx) {
  const auto& pairs = screen_->sorted_pairs();
  par::WorkStealingScheduler sched(ddi_->comm(), "fock-mpi-ws",
                                   static_cast<long>(pairs.size()));
  std::vector<double> batch;
  for (long p = sched.next(); p >= 0; p = sched.next()) {
    process_pair(pairs[static_cast<std::size_t>(p)], density, g, ctx, batch);
  }
  steals_ = static_cast<std::size_t>(sched.steals());
  sched.release();
}

void FockBuilderMpi::build(const la::Matrix& density, la::Matrix& g,
                           const scf::FockContext& ctx) {
  MC_OBS_TRACE("fock:mpi");
  const basis::BasisSet& bs = eri_->basis_set();
  MC_CHECK(g.rows() == bs.nbf() && g.cols() == bs.nbf(), "G shape mismatch");
  pairs_ = 0;
  quartets_ = 0;
  density_screened_ = 0;
  static_screened_ = 0;
  steals_ = 0;

  if (lb_ == MpiLoadBalance::kWorkStealing) {
    build_stealing(density, g, ctx);
  } else {
    build_dlb(density, g, ctx);
  }

  // 2e-Fock matrix reduction over ranks.
  ddi_->gsumf(g);
}

}  // namespace mc::core
