#include "core/fock_mpi.hpp"

#include <vector>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "par/work_stealing.hpp"

namespace mc::core {

void FockBuilderMpi::flush_batch(ints::QuartetBatch& batch,
                                 const la::Matrix& density, la::Matrix& g) {
  const basis::BasisSet& bs = eri_->basis_set();
  batch.evaluate();
  for (std::size_t idx = 0; idx < batch.size(); ++idx) {
    const ints::QuartetBatch::Entry& e = batch.quartets()[idx];
    // Update the process-local replicated 2e-Fock matrix. Scatter runs in
    // discovery order, so G matches the scalar per-quartet path bitwise
    // (and a single rank matches SerialFockBuilder exactly).
    scf::scatter_quartet(bs, e.si, e.sj, e.sk, e.sl, batch.result(idx),
                         density, g);
  }
  batch.clear();
}

void FockBuilderMpi::process_pair(const ints::ScreenedPair& pair,
                                  const la::Matrix& density, la::Matrix& g,
                                  const scf::FockContext& ctx,
                                  ints::QuartetBatch& batch) {
  ++pairs_;
  const std::size_t i = pair.i;
  const std::size_t j = pair.j;
  const bool weighted = ctx.weighted();
  // Pair-level density prescreen: q_ij * qmax * 4*max|D| bounds every
  // quartet bound checked below, so a failing pair has no surviving work.
  if (weighted &&
      !screen_->keep_pair(i, j, 4.0 * ctx.dmax_max, ctx.threshold_scale)) {
    return;
  }
  scf::for_each_kl(i, j, [&](std::size_t k, std::size_t l) {
    if (!screen_->keep(i, j, k, l)) {  // Schwartz screening
      ++static_screened_;
      return;
    }
    if (weighted && !screen_->keep(i, j, k, l, ctx.quartet_dmax(i, j, k, l),
                                   ctx.threshold_scale)) {
      ++density_screened_;
      return;
    }
    batch.add(i, j, k, l);  // (i,j|k,l) queued for batched evaluation
    ++quartets_;
    if (batch.full()) flush_batch(batch, density, g);
  });
}

void FockBuilderMpi::build_dlb(const la::Matrix& density, la::Matrix& g,
                               const scf::FockContext& ctx) {
  // The DLB counter walks the precompacted Schwarz-sorted pair list --
  // screened-out pairs never hit the shared counter, and the heaviest
  // pairs are claimed first.
  const auto& pairs = screen_->sorted_pairs();
  ddi_->dlb_reset();

  // GAMESS-style DLB: the loop body runs only for iterations whose global
  // index matches the next value handed out by the shared counter.
  ints::QuartetBatch batch(*eri_);
  long next = ddi_->dlbnext();
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    if (static_cast<long>(p) != next) continue;
    next = ddi_->dlbnext();
    process_pair(pairs[p], density, g, ctx, batch);
  }
  flush_batch(batch, density, g);
}

void FockBuilderMpi::build_stealing(const la::Matrix& density, la::Matrix& g,
                                    const scf::FockContext& ctx) {
  const auto& pairs = screen_->sorted_pairs();
  par::WorkStealingScheduler sched(ddi_->comm(), "fock-mpi-ws",
                                   static_cast<long>(pairs.size()));
  ints::QuartetBatch batch(*eri_);
  for (long p = sched.next(); p >= 0; p = sched.next()) {
    process_pair(pairs[static_cast<std::size_t>(p)], density, g, ctx, batch);
  }
  flush_batch(batch, density, g);
  steals_ = static_cast<std::size_t>(sched.steals());
  sched.release();
}

void FockBuilderMpi::build(const la::Matrix& density, la::Matrix& g,
                           const scf::FockContext& ctx) {
  MC_OBS_TRACE("fock:mpi");
  const basis::BasisSet& bs = eri_->basis_set();
  MC_CHECK(g.rows() == bs.nbf() && g.cols() == bs.nbf(), "G shape mismatch");
  pairs_ = 0;
  quartets_ = 0;
  density_screened_ = 0;
  static_screened_ = 0;
  steals_ = 0;

  if (lb_ == MpiLoadBalance::kWorkStealing) {
    build_stealing(density, g, ctx);
  } else {
    build_dlb(density, g, ctx);
  }

  // 2e-Fock matrix reduction over ranks.
  ddi_->gsumf(g);
}

}  // namespace mc::core
