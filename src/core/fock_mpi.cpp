#include "core/fock_mpi.hpp"

#include <vector>

#include "common/error.hpp"
#include "par/work_stealing.hpp"

namespace mc::core {

void FockBuilderMpi::process_pair(std::size_t pair,
                                  const la::Matrix& density, la::Matrix& g,
                                  std::vector<double>& batch) {
  const basis::BasisSet& bs = eri_->basis_set();
  ++pairs_;
  std::size_t i, j;
  scf::unpack_pair(pair, i, j);
  scf::for_each_kl(i, j, [&](std::size_t k, std::size_t l) {
    if (!screen_->keep(i, j, k, l)) return;  // Schwartz screening
    batch.assign(eri_->batch_size(i, j, k, l), 0.0);
    eri_->compute(i, j, k, l, batch.data());  // calculate (i,j|k,l)
    // Update the process-local replicated 2e-Fock matrix.
    scf::scatter_quartet(bs, i, j, k, l, batch.data(), density, g);
    ++quartets_;
  });
}

void FockBuilderMpi::build_dlb(const la::Matrix& density, la::Matrix& g) {
  const std::size_t ns = eri_->basis_set().nshells();
  const std::size_t npairs = ns * (ns + 1) / 2;
  ddi_->dlb_reset();

  // GAMESS-style DLB: the loop body runs only for iterations whose global
  // index matches the next value handed out by the shared counter.
  std::vector<double> batch;
  long next = ddi_->dlbnext();
  for (std::size_t pair = 0; pair < npairs; ++pair) {
    if (static_cast<long>(pair) != next) continue;
    next = ddi_->dlbnext();
    process_pair(pair, density, g, batch);
  }
}

void FockBuilderMpi::build_stealing(const la::Matrix& density,
                                    la::Matrix& g) {
  const std::size_t ns = eri_->basis_set().nshells();
  const std::size_t npairs = ns * (ns + 1) / 2;
  par::WorkStealingScheduler sched(ddi_->comm(), "fock-mpi-ws",
                                   static_cast<long>(npairs));
  std::vector<double> batch;
  for (long pair = sched.next(); pair >= 0; pair = sched.next()) {
    process_pair(static_cast<std::size_t>(pair), density, g, batch);
  }
  steals_ = static_cast<std::size_t>(sched.steals());
  sched.release();
}

void FockBuilderMpi::build(const la::Matrix& density, la::Matrix& g) {
  const basis::BasisSet& bs = eri_->basis_set();
  MC_CHECK(g.rows() == bs.nbf() && g.cols() == bs.nbf(), "G shape mismatch");
  pairs_ = 0;
  quartets_ = 0;
  steals_ = 0;

  if (lb_ == MpiLoadBalance::kWorkStealing) {
    build_stealing(density, g);
  } else {
    build_dlb(density, g);
  }

  // 2e-Fock matrix reduction over ranks.
  ddi_->gsumf(g);
}

}  // namespace mc::core
