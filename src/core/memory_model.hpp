#pragma once
// The paper's asymptotic per-node memory-footprint model (eqs. 3a-3c):
//
//   M_MPI = 5/2 * N^2 * N_mpi_per_node                      (eq. 3a)
//   M_PrF = (2 + N_threads) * N^2 * N_mpi_per_node          (eq. 3b)
//   M_ShF = 7/2 * N^2 * N_mpi_per_node                      (eq. 3c)
//
// with N the number of basis functions and sizes in doubles. This module
// evaluates the model for arbitrary configurations (Table 2), and computes
// the maximum feasible ranks-per-node under a memory capacity -- the
// mechanism that caps the MPI-only code at 128 hardware threads on a
// 192 GB KNL node (Figure 4) and makes the 5 nm dataset shared-Fock-only
// (Figure 7).

#include <cstddef>
#include <string>

namespace mc::core {

enum class ScfAlgorithm { kMpiOnly, kPrivateFock, kSharedFock, kDistFock };

std::string algorithm_name(ScfAlgorithm alg);

struct NodeLayout {
  int ranks_per_node = 1;
  int threads_per_rank = 1;
  [[nodiscard]] int hardware_threads() const {
    return ranks_per_node * threads_per_rank;
  }
};

/// Paper eqs. 3a-3c: bytes per node for `nbf` basis functions. For
/// kDistFock (this repo's Algorithm 4, not in the paper) this is the
/// single-node evaluation of model_dist_fock_bytes_per_node below.
double model_bytes_per_node(ScfAlgorithm alg, std::size_t nbf,
                            const NodeLayout& layout);

/// Block-distributed Fock model (DESIGN.md section 13): the D and F
/// windows hold 2 N^2 / N_total_ranks doubles per rank (so a node's
/// ranks together hold 2 N^2 / N_nodes), plus about N^2 / 2 of
/// *node-shared* working set -- the driver's gathered G / iterated
/// density, which minimpi ranks share by construction (they are threads
/// of one process) and a multi-node port would place in an MPI-3
/// shared-memory window; symmetric, so half storage. Per node:
///
///   M_Dist = N^2 * (2 * N_mpi_per_node / N_total_ranks + 1/2)
///          = N^2 * (2 / N_nodes + 1/2)
///
/// Unlike eqs. 3a-3c this does not grow with ranks-per-node and
/// *decreases* with node count -- the terms the replicated algorithms
/// cannot shed -- which is what makes the paper's 5 nm / 30,240-BF
/// dataset fit MCDRAM at scale (knlsim experiment 8).
double model_dist_fock_bytes_per_node(std::size_t nbf,
                                      const NodeLayout& layout, int nnodes);

/// Largest ranks-per-node that fits `capacity_bytes`, assuming the node's
/// `hw_threads` hardware threads are split evenly (threads_per_rank =
/// hw_threads / ranks). Returns 0 if even one rank does not fit.
/// For the MPI-only algorithm threads_per_rank is pinned to 1 and ranks
/// may not exceed hw_threads.
NodeLayout max_feasible_layout(ScfAlgorithm alg, std::size_t nbf,
                               double capacity_bytes, int hw_threads);

/// Memory-footprint ratio of the MPI-only code at `mpi_ranks` ranks/node to
/// the given hybrid algorithm at `hybrid` layout (the paper's "about 50x /
/// 200x less footprint" comparison).
double footprint_ratio_vs_mpi(ScfAlgorithm hybrid_alg,
                              const NodeLayout& hybrid, std::size_t nbf,
                              int mpi_ranks);

}  // namespace mc::core
