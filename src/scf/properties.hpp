#pragma once
// Post-SCF molecular properties: dipole moment and Mulliken population
// analysis from the converged density. GAMESS prints both after every SCF;
// they complete the "full functionality" the paper's hybrid codes maintain.

#include <array>
#include <vector>

#include "basis/basis_set.hpp"
#include "chem/molecule.hpp"
#include "la/matrix.hpp"

namespace mc::scf {

struct DipoleMoment {
  std::array<double, 3> electronic{};  ///< a.u.
  std::array<double, 3> nuclear{};     ///< a.u.
  [[nodiscard]] std::array<double, 3> total() const {
    return {electronic[0] + nuclear[0], electronic[1] + nuclear[1],
            electronic[2] + nuclear[2]};
  }
  /// |total| in atomic units.
  [[nodiscard]] double magnitude_au() const;
  /// |total| in Debye (1 a.u. = 2.541746 D).
  [[nodiscard]] double magnitude_debye() const;
};

/// Dipole moment of a density `d` (Tr(DS) = N_elec convention), computed
/// about the center of nuclear charge so it is origin-independent for
/// neutral molecules.
DipoleMoment dipole_moment(const chem::Molecule& mol,
                           const basis::BasisSet& bs, const la::Matrix& d);

struct MullikenAnalysis {
  /// Gross electronic population per atom.
  std::vector<double> populations;
  /// Partial charge per atom: Z_A - population_A.
  std::vector<double> charges;
};

/// Mulliken population analysis: q_A = Z_A - sum_{mu in A} (D S)_{mu mu}.
MullikenAnalysis mulliken_analysis(const chem::Molecule& mol,
                                   const basis::BasisSet& bs,
                                   const la::Matrix& d,
                                   const la::Matrix& s);

}  // namespace mc::scf
