#include "scf/mp2.hpp"

#include <vector>

#include "common/error.hpp"

namespace mc::scf {

Mp2Result mp2_energy(const AoIntegralTensor& ao, const la::Matrix& c,
                     const std::vector<double>& eps, int nocc, double e_hf,
                     int nfrozen) {
  const std::size_t n = ao.nbf();
  MC_CHECK(c.rows() == n, "MO coefficient shape mismatch");
  MC_CHECK(eps.size() >= c.cols(), "orbital energy count mismatch");
  MC_CHECK(nfrozen >= 0 && nfrozen <= nocc, "bad frozen-core count");
  const int no = nocc - nfrozen;                        // correlated occ
  const int nv = static_cast<int>(c.cols()) - nocc;     // virtuals
  MC_CHECK(no >= 0 && nv >= 0, "bad occupation partition");
  if (no == 0 || nv == 0) {
    return {0.0, e_hf, 0.0, 0.0};
  }

  // Four quarter transformations, O(N^5) total. The (o,v,o,v) MO tensor is
  // small (no*nv)^2 and materialized in full.
  const std::size_t nno = static_cast<std::size_t>(no);
  const std::size_t nnv = static_cast<std::size_t>(nv);
  std::vector<double> ovov(nno * nnv * nno * nnv, 0.0);
  auto mo = [&](std::size_t i, std::size_t a, std::size_t j,
                std::size_t b) -> double& {
    return ovov[((i * nnv + a) * nno + j) * nnv + b];
  };

  // Scratch for the per-i stages.
  std::vector<double> a_qrs(n * n * n);
  std::vector<double> b_ars(nnv * n * n);
  std::vector<double> c_ajs(nnv * nno * n);

  for (int i = 0; i < no; ++i) {
    const std::size_t ci = static_cast<std::size_t>(nfrozen + i);
    // Stage 1: A[q,r,s] = sum_p C[p,i] (pq|rs).
    for (std::size_t q = 0; q < n; ++q) {
      for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t s = 0; s <= r; ++s) {
          double acc = 0.0;
          for (std::size_t p = 0; p < n; ++p) {
            acc += c(p, ci) * ao(p, q, r, s);
          }
          a_qrs[(q * n + r) * n + s] = acc;
          a_qrs[(q * n + s) * n + r] = acc;  // (rs) symmetry survives
        }
      }
    }
    // Stage 2: B[a,r,s] = sum_q C[q,a] A[q,r,s].
    std::fill(b_ars.begin(), b_ars.end(), 0.0);
    for (std::size_t q = 0; q < n; ++q) {
      const double* aq = a_qrs.data() + q * n * n;
      for (std::size_t a = 0; a < nnv; ++a) {
        const double cqa = c(q, static_cast<std::size_t>(nocc) + a);
        if (cqa == 0.0) continue;
        double* ba = b_ars.data() + a * n * n;
        for (std::size_t rs = 0; rs < n * n; ++rs) ba[rs] += cqa * aq[rs];
      }
    }
    // Stage 3: C1[a,j,s] = sum_r C[r,j] B[a,r,s].
    std::fill(c_ajs.begin(), c_ajs.end(), 0.0);
    for (std::size_t a = 0; a < nnv; ++a) {
      for (std::size_t r = 0; r < n; ++r) {
        const double* brs = b_ars.data() + (a * n + r) * n;
        for (std::size_t j = 0; j < nno; ++j) {
          const double crj = c(r, static_cast<std::size_t>(nfrozen) + j);
          if (crj == 0.0) continue;
          double* cj = c_ajs.data() + (a * nno + j) * n;
          for (std::size_t s = 0; s < n; ++s) cj[s] += crj * brs[s];
        }
      }
    }
    // Stage 4: (ia|jb) = sum_s C[s,b] C1[a,j,s].
    for (std::size_t a = 0; a < nnv; ++a) {
      for (std::size_t j = 0; j < nno; ++j) {
        const double* cj = c_ajs.data() + (a * nno + j) * n;
        for (std::size_t b = 0; b < nnv; ++b) {
          double acc = 0.0;
          for (std::size_t s = 0; s < n; ++s) {
            acc += c(s, static_cast<std::size_t>(nocc) + b) * cj[s];
          }
          mo(static_cast<std::size_t>(i), a, j, b) = acc;
        }
      }
    }
  }

  Mp2Result res;
  for (std::size_t i = 0; i < nno; ++i) {
    for (std::size_t j = 0; j < nno; ++j) {
      for (std::size_t a = 0; a < nnv; ++a) {
        for (std::size_t b = 0; b < nnv; ++b) {
          const double v = mo(i, a, j, b);
          const double vx = mo(i, b, j, a);
          const double denom =
              eps[static_cast<std::size_t>(nfrozen) + i] +
              eps[static_cast<std::size_t>(nfrozen) + j] -
              eps[static_cast<std::size_t>(nocc) + a] -
              eps[static_cast<std::size_t>(nocc) + b];
          res.opposite_spin += v * v / denom;
          res.same_spin += v * (v - vx) / denom;
        }
      }
    }
  }
  res.correlation_energy = res.opposite_spin + res.same_spin;
  res.total_energy = e_hf + res.correlation_energy;
  return res;
}

}  // namespace mc::scf
