#include "scf/scf_driver.hpp"

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/memory_tracker.hpp"
#include "common/timer.hpp"
#include "ints/one_electron.hpp"
#include "la/blas_lite.hpp"
#include "la/orthogonalizer.hpp"
#include "la/sym_eig.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scf/diis.hpp"

namespace mc::scf {

la::Matrix density_from_coefficients(const la::Matrix& c, int nocc) {
  MC_CHECK(nocc >= 0 && static_cast<std::size_t>(nocc) <= c.cols(),
           "occupation count out of range");
  const std::size_t n = c.rows();
  la::Matrix cocc(n, static_cast<std::size_t>(nocc));
  for (std::size_t i = 0; i < n; ++i) {
    for (int k = 0; k < nocc; ++k) {
      cocc(i, static_cast<std::size_t>(k)) = c(i, static_cast<std::size_t>(k));
    }
  }
  la::Matrix d = la::gemm_nt(cocc, cocc);
  d *= 2.0;
  return d;
}

la::Matrix core_guess_density(const la::Matrix& hcore, const la::Matrix& x,
                              int nocc) {
  la::SymEigResult eig = la::eigh_generalized(hcore, x);
  return density_from_coefficients(eig.vectors, nocc);
}

ScfResult run_scf(const chem::Molecule& mol, const basis::BasisSet& bs,
                  FockBuilder& builder, const ScfOptions& options,
                  const ScfCallbacks& callbacks,
                  const la::Matrix* seed_density) {
  const int nelec = mol.nelectrons(options.charge);
  MC_CHECK(nelec > 0, "no electrons");
  MC_CHECK(nelec % 2 == 0,
           "closed-shell RHF requires an even electron count");
  const int nocc = nelec / 2;
  const std::size_t nbf = bs.nbf();
  MC_CHECK(static_cast<std::size_t>(nocc) <= nbf,
           "more electron pairs than basis functions");

  ScfResult res;
  res.nuclear_repulsion = mol.nuclear_repulsion();

  const la::Matrix s = ints::overlap_matrix(bs);
  const la::Matrix h = ints::core_hamiltonian(bs, mol);
  const la::Matrix x = la::canonical_orthogonalizer(s, options.lindep_tolerance);

  la::Matrix d;
  if (seed_density != nullptr) {
    MC_CHECK(seed_density->rows() == nbf && seed_density->cols() == nbf,
             "warm-start seed density has the wrong shape");
    d = *seed_density;
  } else {
    d = core_guess_density(h, x, nocc);
  }
  la::Matrix g(nbf, nbf);
  // Incremental-build state: the accumulated *symmetrized* skeleton
  // G_acc = sym(G(D_ref)) + sum sym(G(D_n - D_{n-1})) (symmetrization is
  // linear, so accumulating symmetrized deltas equals symmetrizing the
  // total), the density it corresponds to, and the reset-policy trackers.
  la::Matrix g_acc(nbf, nbf);
  la::Matrix d_last(nbf, nbf);
  la::Matrix d_delta(nbf, nbf);
  int builds_since_full = 0;
  double err_acc = 0.0;
  Diis diis(options.diis_max_vectors);

  // --profile: stream one JSON record per iteration plus a chrome-trace
  // timeline (DESIGN.md section 10). The serial driver reports a single
  // rank slot; when called from inside an SPMD body (the test fixtures do
  // this) the calling rank's slot is used, so only one rank of a team may
  // profile. The distributed profiled path is core::run_parallel_scf.
  std::unique_ptr<obs::ProfileSession> profile;
  if (!options.profile_path.empty()) {
    profile = std::make_unique<obs::ProfileSession>(options.profile_path);
  }
  const int cur_rank = MemoryTracker::current_rank();
  const int prof_rank = cur_rank < 0 ? 0 : cur_rank;
  std::size_t predicted_quartets = 0;
  if (profile) {
    // Profiling-time only: O(surviving pairs^2) sweep over the pair list.
    predicted_quartets = builder.screening_predicted_quartets();
  }
  // Channel accumulators are global; per-iteration values are deltas.
  double prev_dlb = 0.0;
  double prev_gsum = 0.0;
  double prev_barrier = 0.0;

  double e_prev = 0.0;
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    MC_OBS_TRACE("scf:iteration");
    const bool full_rebuild = !options.incremental_fock || iter == 1 ||
                              builds_since_full >=
                                  options.fock_rebuild_interval ||
                              err_acc > options.incremental_error_bound;

    // Two-electron (skeleton) Fock accumulation -- the timed hot region.
    WallTimer fock_timer;
    g.set_zero();
    if (full_rebuild) {
      // Full density, trivial context: static Schwarz screening only, so
      // the rebuild resets the accumulated screening error.
      builder.build(d, g);
      g.symmetrize();
      g_acc.copy_values_from(g);
      builds_since_full = 0;
      err_acc = 0.0;
    } else {
      d_delta.copy_values_from(d);
      d_delta -= d_last;
      FockContext ctx =
          FockContext::from_density(bs, d_delta, /*incremental=*/true);
      ctx.threshold_scale = options.incremental_threshold_scale;
      builder.build(d_delta, g, ctx);
      g.symmetrize();
      g_acc += g;
      ++builds_since_full;
      // Per-element screening-error estimate for the reset policy: every
      // density-screened quartet contributes below threshold * scale;
      // dividing by nbf approximates the scatter fan-out per element.
      err_acc += builder.screening_threshold() *
                 options.incremental_threshold_scale *
                 static_cast<double>(builder.last_density_screened()) /
                 static_cast<double>(nbf);
    }
    d_last.copy_values_from(d);
    const double t_fock = fock_timer.seconds();
    res.fock_build_seconds += t_fock;

    la::Matrix f = h;
    f += g_acc;

    // Electronic energy: E = 1/2 sum_ab D_ab (H_ab + F_ab).
    const double e_elec = 0.5 * (la::dot(d, h) + la::dot(d, f));
    const double e_total = e_elec + res.nuclear_repulsion;

    // DIIS error: FDS - SDF, transformed to the orthonormal basis.
    la::Matrix fds = la::gemm(f, la::gemm(d, s));
    la::Matrix sdf = fds.transposed();
    la::Matrix err_ao = fds;
    err_ao -= sdf;
    la::Matrix err = la::gemm_tn(x, la::gemm(err_ao, x));

    la::Matrix f_eff = f;
    if (options.use_diis) {
      diis.push(f, err);
      f_eff = diis.extrapolate();
    }

    la::SymEigResult eig;
    if (options.level_shift > 0.0) {
      // Shift the virtual block in the orthonormal basis: F' = X^T F X +
      // shift * P_virt, diagonalized there and back-transformed. Occupied
      // energies (and the converged density) are unaffected; the
      // occupied-virtual gap is opened to damp oscillations.
      la::Matrix fp = la::transform(x, f_eff);
      fp.symmetrize();
      la::SymEigResult inner = la::eigh(fp);
      for (std::size_t k = static_cast<std::size_t>(nocc);
           k < inner.values.size(); ++k) {
        inner.values[k] += options.level_shift;
      }
      // Rebuild the shifted matrix and rediagonalize via the generalized
      // path for a uniform code path (cheap at these sizes).
      la::Matrix shifted(fp.rows(), fp.cols());
      for (std::size_t a = 0; a < fp.rows(); ++a) {
        for (std::size_t b = 0; b < fp.cols(); ++b) {
          double v = 0.0;
          for (std::size_t k = 0; k < inner.values.size(); ++k) {
            v += inner.vectors(a, k) * inner.values[k] * inner.vectors(b, k);
          }
          shifted(a, b) = v;
        }
      }
      eig = la::eigh(shifted);
      eig.vectors = la::gemm(x, eig.vectors);
    } else {
      eig = la::eigh_generalized(f_eff, x);
    }
    la::Matrix d_new = density_from_coefficients(eig.vectors, nocc);
    if (options.damping > 0.0 && iter > 1) {
      MC_CHECK(options.damping < 1.0, "damping factor must be in [0,1)");
      la::Matrix mixed = d_new;
      mixed *= (1.0 - options.damping);
      la::Matrix old = d;
      old *= options.damping;
      mixed += old;
      d_new = std::move(mixed);
    }

    // RMS density change.
    double rms = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      const double dv = d_new.data()[i] - d.data()[i];
      rms += dv * dv;
    }
    rms = std::sqrt(rms / static_cast<double>(d.size()));

    ScfIterationInfo info;
    info.iteration = iter;
    info.energy = e_total;
    info.delta_energy = e_total - e_prev;
    info.density_rms = rms;
    info.fock_build_seconds = t_fock;
    info.full_rebuild = full_rebuild;
    info.quartets_computed = builder.last_quartets_computed();
    info.density_screened = builder.last_density_screened();
    res.history.push_back(info);
    if (callbacks.on_iteration) callbacks.on_iteration(info);

    if (profile) {
      obs::IterationRecord rec;
      rec.algorithm = builder.name();
      rec.nranks = 1;
      obs::RankIterationMetrics rm;
      rm.rank = prof_rank;
      rm.pairs_claimed = builder.last_pairs_claimed();
      rm.quartets = info.quartets_computed;
      rm.static_screened = builder.last_static_screened();
      rm.density_screened = info.density_screened;
      rm.thread_quartets = builder.last_thread_quartets();
      const double dlb =
          obs::channel_seconds(obs::Channel::kDlbWait, prof_rank);
      const double gsum = obs::channel_seconds(obs::Channel::kGsum, prof_rank);
      const double barrier =
          obs::channel_seconds(obs::Channel::kBarrier, prof_rank);
      rm.dlb_wait_seconds = dlb - prev_dlb;
      rm.gsum_seconds = gsum - prev_gsum;
      rm.barrier_seconds = barrier - prev_barrier;
      prev_dlb = dlb;
      prev_gsum = gsum;
      prev_barrier = barrier;
      rm.peak_bytes = cur_rank >= 0
                          ? MemoryTracker::instance().rank_peak_bytes(cur_rank)
                          : MemoryTracker::instance().peak_bytes();
      rec.nthreads = rm.thread_quartets.empty()
                         ? 1
                         : static_cast<int>(rm.thread_quartets.size());
      rec.iteration = iter;
      rec.energy = e_total;
      rec.delta_energy = info.delta_energy;
      rec.density_rms = rms;
      rec.full_rebuild = full_rebuild;
      rec.fock_seconds = t_fock;
      rec.quartets = rm.quartets;
      rec.static_screened = rm.static_screened;
      rec.density_screened = rm.density_screened;
      rec.screening_predicted_quartets = predicted_quartets;
      rec.ranks.push_back(std::move(rm));
      profile->write_iteration(rec);
    }

    d = std::move(d_new);
    res.iterations = iter;
    res.energy = e_total;
    res.electronic_energy = e_elec;
    res.orbital_energies = eig.values;
    res.mo_coefficients = eig.vectors;
    res.fock = std::move(f);

    if (iter > 1 && rms < options.density_tolerance &&
        std::abs(e_total - e_prev) < options.energy_tolerance) {
      res.converged = true;
      break;
    }
    e_prev = e_total;
  }

  res.density = std::move(d);
  return res;
}

}  // namespace mc::scf
