#pragma once
// FockBuilder: the pluggable strategy for the two-electron ("skeleton")
// Fock matrix accumulation -- the computational core the paper optimizes.
//
// Contract:
//   * build(D, G) accumulates the skeleton two-electron matrix into G
//     (G is zeroed by the caller). D is the full symmetric density with
//     Tr(D S) = N_electrons.
//   * The *symmetrized* G_sym = (G + G^T)/2 then satisfies
//       G_sym[a,b] ~= sum_cd D[c,d] ( (ab|cd) - 1/2 (ac|bd) )
//     up to the Schwarz screening threshold.
//   * For distributed builders, build() is a collective call: every rank
//     passes the same D and every rank's G holds the fully reduced result
//     on return.
//
// The canonical shell-quartet scatter shared by all implementations lives
// in scatter_quartet() below; the implementations differ only in *where*
// each of the six updates (paper eqs. 2a-2f) is accumulated and how the
// quartet loop is distributed -- which is exactly the paper's subject.

#include <cmath>
#include <cstddef>
#include <string>

#include "basis/basis_set.hpp"
#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "la/matrix.hpp"

namespace mc::scf {

class FockBuilder {
 public:
  virtual ~FockBuilder() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void build(const la::Matrix& density, la::Matrix& g) = 0;
};

/// Degeneracy weight of a canonical shell quartet (the size of its orbit
/// under the 8-fold permutational symmetry at shell level).
inline double quartet_degeneracy(std::size_t si, std::size_t sj,
                                 std::size_t sk, std::size_t sl) {
  const double dij = (si == sj) ? 1.0 : 2.0;
  const double dkl = (sk == sl) ? 1.0 : 2.0;
  const double dpair = (si == sk && sj == sl) ? 1.0 : 2.0;
  return dij * dkl * dpair;
}

/// Scatter one computed quartet batch into a single accumulation target
/// (used by the replicated-matrix algorithms; the shared-Fock algorithm
/// splits the six updates across buffers itself).
///
/// batch layout: [a][b][c][d] over the Cartesian components of the shells.
void scatter_quartet(const basis::BasisSet& bs, std::size_t si,
                     std::size_t sj, std::size_t sk, std::size_t sl,
                     const double* batch, const la::Matrix& d, la::Matrix& g);

/// Iterate the canonical quartet list for a fixed (i, j) shell pair:
/// k in [0, i], l in [0, (k == i ? j : k)] -- the "kl <= ij" pair-index
/// enumeration of Algorithm 1. (The paper's line 5 has i/j swapped in the
/// ternary; this is the standard GAMESS enumeration it describes.)
template <typename Fn>
void for_each_kl(std::size_t i, std::size_t j, Fn&& fn) {
  for (std::size_t k = 0; k <= i; ++k) {
    const std::size_t lmax = (k == i) ? j : k;
    for (std::size_t l = 0; l <= lmax; ++l) {
      fn(k, l);
    }
  }
}

/// Number of (k,l) iterations for_each_kl visits.
inline std::size_t kl_count(std::size_t i, std::size_t j) {
  // sum_{k<i} (k+1) + (j+1)
  return i * (i + 1) / 2 + j + 1;
}

/// Map a flat canonical pair index back to (i, j), i >= j
/// (pair = i*(i+1)/2 + j). Used by the merged-index loops of Algorithm 3.
inline void unpack_pair(std::size_t pair, std::size_t& i, std::size_t& j) {
  // i = floor((sqrt(8p+1)-1)/2), then j = p - i(i+1)/2, with a guard for
  // floating-point edge cases.
  std::size_t ii = static_cast<std::size_t>(
      (std::sqrt(8.0 * static_cast<double>(pair) + 1.0) - 1.0) / 2.0);
  while (ii * (ii + 1) / 2 > pair) --ii;
  while ((ii + 1) * (ii + 2) / 2 <= pair) ++ii;
  i = ii;
  j = pair - ii * (ii + 1) / 2;
}

}  // namespace mc::scf
