#pragma once
// FockBuilder: the pluggable strategy for the two-electron ("skeleton")
// Fock matrix accumulation -- the computational core the paper optimizes.
//
// Contract:
//   * build(D, G, ctx) accumulates the skeleton two-electron matrix into G
//     (G is zeroed by the caller). D is the symmetric density the
//     integrals are contracted against -- the full density for a
//     conventional build, the density *difference* for an incremental
//     (direct-SCF) build. ctx carries the per-shell-pair block norms of D
//     for density-weighted screening; the default FockContext{} is the
//     trivial "full density" context that reduces every builder to the
//     static Schwarz bound.
//   * The *symmetrized* G_sym = (G + G^T)/2 then satisfies
//       G_sym[a,b] ~= sum_cd D[c,d] ( (ab|cd) - 1/2 (ac|bd) )
//     up to the screening threshold.
//   * For distributed builders, build() is a collective call: every rank
//     passes the same D and every rank's G holds the fully reduced result
//     on return.
//
// The canonical shell-quartet scatter shared by all implementations lives
// in scatter_quartet() below; the implementations differ only in *where*
// each of the six updates (paper eqs. 2a-2f) is accumulated and how the
// quartet loop is distributed -- which is exactly the paper's subject.

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "basis/basis_set.hpp"
#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "la/matrix.hpp"

namespace mc::scf {

/// Per-iteration density information threaded through FockBuilder::build
/// (DESIGN.md section 9). For an incremental direct-SCF build the density
/// argument is the delta density D_n - D_{n-1}; this context carries its
/// per-shell-pair block norms so screening can use the density-weighted
/// bound Q_ij * Q_kl * max|D block| -- which kills an increasing fraction
/// of quartets as SCF converges. A default-constructed context is the
/// trivial "full density" context: no weighting, static Schwarz only.
struct FockContext {
  /// max|D| over each shell-pair block, nshells x nshells symmetric.
  /// Empty = trivial context (no density weighting).
  std::vector<double> dmax;
  std::size_t nshells = 0;
  /// Global max over all blocks (the pair-level prescreen bound).
  double dmax_max = 0.0;
  /// Multiplier on the Schwarz threshold for this build; incremental
  /// builds use < 1 (tighter) so that skipped delta contributions stay
  /// well below the accumulated-Fock error budget.
  double threshold_scale = 1.0;
  /// True when the density being contracted is a delta density.
  bool incremental = false;

  [[nodiscard]] bool weighted() const { return !dmax.empty(); }
  [[nodiscard]] double pair_dmax(std::size_t a, std::size_t b) const {
    return dmax[a * nshells + b];
  }
  /// Bound on the density blocks quartet (i,j,k,l) contracts against: the
  /// max over the six blocks of paper eqs. 2a-2f, times 4 to stay safely
  /// above the Coulomb degeneracy weights (Haser-Ahlrichs style bound).
  [[nodiscard]] double quartet_dmax(std::size_t i, std::size_t j,
                                    std::size_t k, std::size_t l) const {
    double m = pair_dmax(i, j);
    m = std::max(m, pair_dmax(k, l));
    m = std::max(m, pair_dmax(i, k));
    m = std::max(m, pair_dmax(i, l));
    m = std::max(m, pair_dmax(j, k));
    m = std::max(m, pair_dmax(j, l));
    return 4.0 * m;
  }

  /// Computes the block norms of `d` (any symmetric matrix in the basis's
  /// function dimension -- a density or a density difference).
  static FockContext from_density(const basis::BasisSet& bs,
                                  const la::Matrix& d, bool incremental);
};

class FockBuilder {
 public:
  virtual ~FockBuilder() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Context-aware build (see the header comment for the contract).
  virtual void build(const la::Matrix& density, la::Matrix& g,
                     const FockContext& ctx) = 0;
  /// Full-density convenience overload: trivial context, static screening.
  void build(const la::Matrix& density, la::Matrix& g) {
    build(density, g, FockContext{});
  }

  /// Quartets this builder (this rank, for distributed builders) computed
  /// in the last build. 0 for builders that do not count.
  [[nodiscard]] virtual std::size_t last_quartets_computed() const {
    return 0;
  }
  /// Quartets that passed static Schwarz screening but were killed by the
  /// density-weighted bound in the last build (0 for trivial contexts).
  [[nodiscard]] virtual std::size_t last_density_screened() const {
    return 0;
  }
  /// Quartet candidates this builder visited and killed with the static
  /// Schwarz bound in the last build. Counted at quartet granularity, so
  /// builders that prescreen whole bra pairs (private-Fock) report fewer
  /// visits than ones that enumerate every kl under a surviving pair --
  /// the count is comparable across rank counts of one algorithm, not
  /// across algorithms (DESIGN.md section 10).
  [[nodiscard]] virtual std::size_t last_static_screened() const { return 0; }
  /// MPI-level tasks (bra pairs or bra shells) this rank claimed in the
  /// last build. 0 for builders without an MPI task loop.
  [[nodiscard]] virtual std::size_t last_pairs_claimed() const { return 0; }
  /// Per-OpenMP-thread split of last_quartets_computed() for this rank
  /// (size = thread count; single-threaded builders report one entry).
  /// Empty for builders that do not count.
  [[nodiscard]] virtual std::vector<std::size_t> last_thread_quartets()
      const {
    return {};
  }
  /// Exact static-survivor quartet count of the attached screening -- the
  /// number a trivial-context build must compute (summed over ranks).
  /// O(Nshells^4/8); profiling-time use only. 0 = unknown.
  [[nodiscard]] virtual std::size_t screening_predicted_quartets() const {
    return 0;
  }
  /// Schwarz threshold of the attached Screening (0 = unscreened builder);
  /// the SCF drivers' incremental error estimate scales with it.
  [[nodiscard]] virtual double screening_threshold() const { return 0.0; }
  /// Density-tile reads of the last build served from the rank-local cache
  /// vs fetched one-sidedly from the distributed window. Zero for the
  /// replicated-matrix builders, which have no tile traffic.
  [[nodiscard]] virtual std::size_t last_tile_cache_hits() const { return 0; }
  [[nodiscard]] virtual std::size_t last_tile_cache_misses() const {
    return 0;
  }
};

/// Degeneracy weight of a canonical shell quartet (the size of its orbit
/// under the 8-fold permutational symmetry at shell level).
inline double quartet_degeneracy(std::size_t si, std::size_t sj,
                                 std::size_t sk, std::size_t sl) {
  const double dij = (si == sj) ? 1.0 : 2.0;
  const double dkl = (sk == sl) ? 1.0 : 2.0;
  const double dpair = (si == sk && sj == sl) ? 1.0 : 2.0;
  return dij * dkl * dpair;
}

/// Scatter one computed quartet batch into a single accumulation target
/// (used by the replicated-matrix algorithms; the shared-Fock algorithm
/// splits the six updates across buffers itself).
///
/// batch layout: [a][b][c][d] over the Cartesian components of the shells.
void scatter_quartet(const basis::BasisSet& bs, std::size_t si,
                     std::size_t sj, std::size_t sk, std::size_t sl,
                     const double* batch, const la::Matrix& d, la::Matrix& g);

/// Iterate the canonical quartet list for a fixed (i, j) shell pair:
/// k in [0, i], l in [0, (k == i ? j : k)] -- the "kl <= ij" pair-index
/// enumeration of Algorithm 1. (The paper's line 5 has i/j swapped in the
/// ternary; this is the standard GAMESS enumeration it describes.)
template <typename Fn>
void for_each_kl(std::size_t i, std::size_t j, Fn&& fn) {
  for (std::size_t k = 0; k <= i; ++k) {
    const std::size_t lmax = (k == i) ? j : k;
    for (std::size_t l = 0; l <= lmax; ++l) {
      fn(k, l);
    }
  }
}

/// Number of (k,l) iterations for_each_kl visits.
inline std::size_t kl_count(std::size_t i, std::size_t j) {
  // sum_{k<i} (k+1) + (j+1)
  return i * (i + 1) / 2 + j + 1;
}

/// Map a flat canonical pair index back to (i, j), i >= j
/// (pair = i*(i+1)/2 + j). Kept for tests and one-off decodes; the hot
/// loops use Screening::pair_shells, a precomputed table without the
/// sqrt/guard dance.
inline void unpack_pair(std::size_t pair, std::size_t& i, std::size_t& j) {
  // i = floor((sqrt(8p+1)-1)/2), then j = p - i(i+1)/2, with a guard for
  // floating-point edge cases.
  std::size_t ii = static_cast<std::size_t>(
      (std::sqrt(8.0 * static_cast<double>(pair) + 1.0) - 1.0) / 2.0);
  while (ii * (ii + 1) / 2 > pair) --ii;
  while ((ii + 1) * (ii + 2) / 2 <= pair) ++ii;
  i = ii;
  j = pair - ii * (ii + 1) / 2;
}

}  // namespace mc::scf
