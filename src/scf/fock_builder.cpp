#include "scf/fock_builder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mc::scf {

FockContext FockContext::from_density(const basis::BasisSet& bs,
                                      const la::Matrix& d, bool incremental) {
  FockContext ctx;
  const std::size_t ns = bs.nshells();
  ctx.nshells = ns;
  ctx.incremental = incremental;
  ctx.dmax.assign(ns * ns, 0.0);
  MC_CHECK(d.rows() == bs.nbf() && d.cols() == bs.nbf(),
           "density shape mismatch");
  for (std::size_t si = 0; si < ns; ++si) {
    const basis::Shell& shi = bs.shell(si);
    for (std::size_t sj = 0; sj <= si; ++sj) {
      const basis::Shell& shj = bs.shell(sj);
      double m = 0.0;
      for (int a = 0; a < shi.nfunc(); ++a) {
        const std::size_t fa = shi.first_bf + static_cast<std::size_t>(a);
        for (int b = 0; b < shj.nfunc(); ++b) {
          const std::size_t fb = shj.first_bf + static_cast<std::size_t>(b);
          m = std::max(m, std::abs(d(fa, fb)));
        }
      }
      ctx.dmax[si * ns + sj] = m;
      ctx.dmax[sj * ns + si] = m;
      ctx.dmax_max = std::max(ctx.dmax_max, m);
    }
  }
  return ctx;
}

void scatter_quartet(const basis::BasisSet& bs, std::size_t si,
                     std::size_t sj, std::size_t sk, std::size_t sl,
                     const double* batch, const la::Matrix& d,
                     la::Matrix& g) {
  const basis::Shell& shi = bs.shell(si);
  const basis::Shell& shj = bs.shell(sj);
  const basis::Shell& shk = bs.shell(sk);
  const basis::Shell& shl = bs.shell(sl);
  const int ni = shi.nfunc(), nj = shj.nfunc(), nk = shk.nfunc(),
            nl = shl.nfunc();
  const std::size_t oi = shi.first_bf, oj = shj.first_bf, ok = shk.first_bf,
                    ol = shl.first_bf;
  const double w = quartet_degeneracy(si, sj, sk, sl);

  std::size_t idx = 0;
  for (int a = 0; a < ni; ++a) {
    const std::size_t fa = oi + static_cast<std::size_t>(a);
    for (int b = 0; b < nj; ++b) {
      const std::size_t fb = oj + static_cast<std::size_t>(b);
      for (int c = 0; c < nk; ++c) {
        const std::size_t fc = ok + static_cast<std::size_t>(c);
        for (int dd = 0; dd < nl; ++dd, ++idx) {
          const std::size_t fd = ol + static_cast<std::size_t>(dd);
          const double v = batch[idx];
          if (v == 0.0) continue;
          // X = w*v/2; Coulomb coefficient 1, exchange -1/4 (see the
          // derivation in the FockBuilder header). Paper eqs. 2a-2f.
          const double x = 0.5 * w * v;
          const double x4 = 0.25 * x;
          g(fa, fb) += x * d(fc, fd);
          g(fc, fd) += x * d(fa, fb);
          g(fa, fc) -= x4 * d(fb, fd);
          g(fb, fd) -= x4 * d(fa, fc);
          g(fa, fd) -= x4 * d(fb, fc);
          g(fb, fc) -= x4 * d(fa, fd);
        }
      }
    }
  }
}

}  // namespace mc::scf
