#pragma once
// Conventional (stored-integral) mode: compute every Schwarz-surviving
// unique ERI once and keep it in memory, then replay it for each Fock
// build. GAMESS supports both conventional and direct SCF; the paper
// benchmarks direct mode (integrals recomputed per iteration), and this
// module provides the conventional counterpart plus the in-memory AO
// tensor that the MP2 transformation consumes.
//
// Storage: unique values under 8-fold permutational symmetry, addressed by
// the composite index pq(rs) with pq = p(p+1)/2 + q (p >= q, pq >= rs) --
// the textbook packed scheme. Feasible for the functional-scale systems
// this host runs (N ~ tens of basis functions).

#include <cstddef>
#include <vector>

#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "scf/fock_builder.hpp"

namespace mc::scf {

class AoIntegralTensor {
 public:
  /// Computes and stores all unique (pq|rs). Memory: N^4/8 doubles; the
  /// constructor refuses absurd sizes (> max_doubles) so a typo cannot
  /// allocate the machine away.
  AoIntegralTensor(const ints::EriEngine& eri, const ints::Screening& screen,
                   std::size_t max_doubles = 500'000'000);

  /// (pq|rs) by full basis-function indices, any order.
  [[nodiscard]] double operator()(std::size_t p, std::size_t q,
                                  std::size_t r, std::size_t s) const {
    return values_[composite(pair_index(p, q), pair_index(r, s))];
  }

  [[nodiscard]] std::size_t nbf() const { return nbf_; }
  [[nodiscard]] std::size_t stored_values() const { return values_.size(); }

  static std::size_t pair_index(std::size_t p, std::size_t q) {
    return (p >= q) ? p * (p + 1) / 2 + q : q * (q + 1) / 2 + p;
  }
  static std::size_t composite(std::size_t pq, std::size_t rs) {
    return (pq >= rs) ? pq * (pq + 1) / 2 + rs : rs * (rs + 1) / 2 + pq;
  }

 private:
  std::size_t nbf_ = 0;
  std::vector<double> values_;
};

/// Fock builder replaying the stored tensor (conventional SCF). Identical
/// results to the direct SerialFockBuilder; trades memory for skipping the
/// per-iteration integral recomputation.
class StoredFockBuilder : public FockBuilder {
 public:
  explicit StoredFockBuilder(const AoIntegralTensor& tensor,
                             const basis::BasisSet& bs)
      : tensor_(&tensor), bs_(&bs) {}

  [[nodiscard]] std::string name() const override { return "conventional"; }
  using FockBuilder::build;
  /// The stored tensor replay is already integral-free per iteration, so a
  /// weighted/incremental context is accepted but not used for screening.
  void build(const la::Matrix& density, la::Matrix& g,
             const FockContext& ctx) override;

 private:
  const AoIntegralTensor* tensor_;
  const basis::BasisSet* bs_;
};

}  // namespace mc::scf
