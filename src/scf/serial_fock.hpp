#pragma once
// Reference Fock builders:
//  * SerialFockBuilder -- the canonical screened quartet loop on one
//    thread. The correctness anchor every parallel algorithm is tested
//    against, and the per-core work model the simulator calibrates on.
//    Iterates the Screening's precomputed Schwarz-sorted pair list, which
//    is exactly the order a single-rank FockBuilderMpi claims pairs in --
//    keeping the two bit-identical.
//  * BruteForceFockBuilder -- O(N^4) loop over *all* ordered quartets with
//    no permutational symmetry and no screening; definitionally correct,
//    used to validate the skeleton scatter itself on tiny systems.

#include "scf/fock_builder.hpp"

namespace mc::scf {

/// Default quartet-batch capacity of the serial builder's batched ERI
/// pipeline (= ints::kDefaultBatchCapacity; restated here so the header
/// need not pull in eri_batch.hpp).
inline constexpr std::size_t kSerialFockBatchCapacity = 64;

class SerialFockBuilder : public FockBuilder {
 public:
  /// `batch_capacity` sizes the quartet batch of the SIMD-friendly batched
  /// ERI pipeline (DESIGN.md section 12); 0 selects the legacy per-quartet
  /// scalar path. Both paths make identical screening decisions and
  /// produce bitwise-identical G.
  SerialFockBuilder(const ints::EriEngine& eri, const ints::Screening& screen,
                    std::size_t batch_capacity = kSerialFockBatchCapacity)
      : eri_(&eri), screen_(&screen), batch_capacity_(batch_capacity) {}

  [[nodiscard]] std::string name() const override { return "serial"; }
  using FockBuilder::build;
  void build(const la::Matrix& density, la::Matrix& g,
             const FockContext& ctx) override;

  /// Quartets that survived screening in the last build (statistics).
  [[nodiscard]] std::size_t last_quartets_computed() const override {
    return quartets_;
  }
  [[nodiscard]] std::size_t last_density_screened() const override {
    return density_screened_;
  }
  [[nodiscard]] std::size_t last_static_screened() const override {
    return static_screened_;
  }
  [[nodiscard]] std::size_t last_pairs_claimed() const override {
    return pairs_;
  }
  [[nodiscard]] std::vector<std::size_t> last_thread_quartets()
      const override {
    return {quartets_};
  }
  [[nodiscard]] std::size_t screening_predicted_quartets() const override {
    return screen_->count_surviving_quartets();
  }
  [[nodiscard]] double screening_threshold() const override {
    return screen_->threshold();
  }

 private:
  const ints::EriEngine* eri_;
  const ints::Screening* screen_;
  std::size_t batch_capacity_ = kSerialFockBatchCapacity;
  std::size_t quartets_ = 0;
  std::size_t density_screened_ = 0;
  std::size_t static_screened_ = 0;
  std::size_t pairs_ = 0;
};

class BruteForceFockBuilder : public FockBuilder {
 public:
  explicit BruteForceFockBuilder(const ints::EriEngine& eri) : eri_(&eri) {}

  [[nodiscard]] std::string name() const override { return "brute-force"; }
  using FockBuilder::build;
  void build(const la::Matrix& density, la::Matrix& g,
             const FockContext& ctx) override;

 private:
  const ints::EriEngine* eri_;
};

}  // namespace mc::scf
