#pragma once
// Reference Fock builders:
//  * SerialFockBuilder -- the canonical screened quartet loop on one
//    thread. The correctness anchor every parallel algorithm is tested
//    against, and the per-core work model the simulator calibrates on.
//  * BruteForceFockBuilder -- O(N^4) loop over *all* ordered quartets with
//    no permutational symmetry and no screening; definitionally correct,
//    used to validate the skeleton scatter itself on tiny systems.

#include "scf/fock_builder.hpp"

namespace mc::scf {

class SerialFockBuilder : public FockBuilder {
 public:
  SerialFockBuilder(const ints::EriEngine& eri, const ints::Screening& screen)
      : eri_(&eri), screen_(&screen) {}

  [[nodiscard]] std::string name() const override { return "serial"; }
  void build(const la::Matrix& density, la::Matrix& g) override;

  /// Quartets that survived screening in the last build (statistics).
  [[nodiscard]] std::size_t last_quartets_computed() const {
    return quartets_;
  }

 private:
  const ints::EriEngine* eri_;
  const ints::Screening* screen_;
  std::size_t quartets_ = 0;
};

class BruteForceFockBuilder : public FockBuilder {
 public:
  explicit BruteForceFockBuilder(const ints::EriEngine& eri) : eri_(&eri) {}

  [[nodiscard]] std::string name() const override { return "brute-force"; }
  void build(const la::Matrix& density, la::Matrix& g) override;

 private:
  const ints::EriEngine* eri_;
};

}  // namespace mc::scf
