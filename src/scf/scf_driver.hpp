#pragma once
// The SCF driver: core Hamiltonian guess, Fock build (delegated to a
// FockBuilder strategy), DIIS, diagonalization, convergence control.
// Mirrors the GAMESS RHF SCF structure the paper describes in section 3.

#include <functional>
#include <string>
#include <vector>

#include "basis/basis_set.hpp"
#include "chem/molecule.hpp"
#include "la/matrix.hpp"
#include "scf/fock_builder.hpp"

namespace mc::scf {

struct ScfOptions {
  int max_iterations = 60;
  /// Convergence on RMS density change (GAMESS CONV on density).
  double density_tolerance = 1e-8;
  /// Convergence on |Delta E|.
  double energy_tolerance = 1e-10;
  bool use_diis = true;
  std::size_t diis_max_vectors = 8;
  int charge = 0;
  /// Eigenvalue cutoff for near-linear-dependence in S.
  double lindep_tolerance = 1e-10;
  /// Density damping: D <- (1-a) D_new + a D_old. 0 disables (default).
  /// A classic fallback for oscillating SCFs when DIIS struggles.
  double damping = 0.0;
  /// Level shift added to the virtual-virtual block of the Fock matrix in
  /// the orthonormal basis (Hartree). 0 disables.
  double level_shift = 0.0;

  /// Incremental (delta-density) Fock builds: after a full build of
  /// F = G(D), subsequent iterations compute only G(D_n - D_{n-1}) under
  /// density-weighted screening and accumulate (DESIGN.md section 9). As
  /// the density converges the delta shrinks and most quartets screen out.
  bool incremental_fock = true;
  /// Force a full rebuild after this many consecutive incremental builds
  /// (caps screening-error accumulation; GAMESS-style reset policy).
  int fock_rebuild_interval = 12;
  /// Full rebuild as soon as the accumulated screening-error estimate
  /// (sum over incremental builds of threshold * scale * screened-quartet
  /// count / nbf) exceeds this bound.
  double incremental_error_bound = 1e-8;
  /// Threshold multiplier for incremental builds (< 1 tightens): the
  /// delta-density bound drops quartets whose *contribution to the
  /// current update* is small, so the cut must sit well below the static
  /// budget for the accumulated Fock to stay accurate.
  double incremental_threshold_scale = 0.01;

  /// When non-empty, profile the run: stream one machine-readable JSON
  /// record per SCF iteration to <profile_path>.metrics.jsonl and write a
  /// chrome-trace timeline to <profile_path>.trace.json (DESIGN.md
  /// section 10). Honoured by run_scf and by core::run_parallel_scf (via
  /// ParallelScfConfig::scf).
  std::string profile_path;
};

struct ScfIterationInfo {
  int iteration = 0;
  double energy = 0.0;          // total energy at this iteration
  double delta_energy = 0.0;
  double density_rms = 0.0;
  double fock_build_seconds = 0.0;
  /// True when this iteration rebuilt G from the full density (iteration 1
  /// and reset-policy rebuilds); false for delta-density builds.
  bool full_rebuild = true;
  /// Quartets the builder computed this iteration (this rank's share for
  /// distributed builders under run_scf; summed over ranks by
  /// run_parallel_scf). 0 if the builder does not count.
  std::size_t quartets_computed = 0;
  /// Quartets killed by density-weighted screening this iteration.
  std::size_t density_screened = 0;
};

struct ScfResult {
  bool converged = false;
  int iterations = 0;
  double energy = 0.0;             ///< total (electronic + nuclear), Hartree
  double electronic_energy = 0.0;
  double nuclear_repulsion = 0.0;
  std::vector<double> orbital_energies;
  la::Matrix density;              ///< converged density (Tr(DS) = Nelec)
  la::Matrix fock;                 ///< converged Fock matrix
  la::Matrix mo_coefficients;
  std::vector<ScfIterationInfo> history;
  /// Accumulated wall time in FockBuilder::build -- the paper's
  /// "TIME TO FORM FOCK" metric (artifact appendix A.5).
  double fock_build_seconds = 0.0;
};

/// Hooks the distributed SCF path uses to keep ranks in lockstep; the
/// defaults are no-ops for serial runs.
struct ScfCallbacks {
  /// Called after each iteration with the info record (e.g. rank-0 logging).
  std::function<void(const ScfIterationInfo&)> on_iteration;
};

/// Run a closed-shell restricted Hartree-Fock SCF.
/// Throws mc::Error for open-shell electron counts.
///
/// `seed_density`: warm-start entry point (DESIGN.md section 15). When
/// non-null it must be an nbf x nbf matrix; it replaces the core-Hamiltonian
/// guess as the iteration-1 density. The job server seeds repeat
/// (molecule, basis) requests from a previously converged density, cutting
/// the iteration count; any symmetric density with the right trace works
/// (the SCF fixed point does not depend on the starting guess).
ScfResult run_scf(const chem::Molecule& mol, const basis::BasisSet& bs,
                  FockBuilder& builder, const ScfOptions& options = {},
                  const ScfCallbacks& callbacks = {},
                  const la::Matrix* seed_density = nullptr);

/// Superposition-free initial guess: diagonalize the core Hamiltonian.
/// Returns the initial density. `x` is the orthogonalizer (X^T S X = 1).
la::Matrix core_guess_density(const la::Matrix& hcore, const la::Matrix& x,
                              int nocc);

/// Closed-shell density D = 2 C_occ C_occ^T from MO coefficients.
la::Matrix density_from_coefficients(const la::Matrix& c, int nocc);

}  // namespace mc::scf
