#pragma once
// Unrestricted Hartree-Fock (UHF). The paper's conclusion points out that
// the shared-matrix assembly strategies apply directly to UHF/GVB/DFT;
// this module provides the open-shell SCF those methods need:
//
//   F_alpha = H + J(D_alpha + D_beta) - K(D_alpha)
//   F_beta  = H + J(D_alpha + D_beta) - K(D_beta)
//
// with separate alpha/beta densities, spin-coupled DIIS, and <S^2>
// diagnostics. The two-electron work reuses the same screened canonical
// quartet loop as the RHF builders (scatter split into J and K parts).

#include <string>
#include <vector>

#include "basis/basis_set.hpp"
#include "chem/molecule.hpp"
#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "la/matrix.hpp"
#include "scf/scf_driver.hpp"

namespace mc::scf {

struct UhfOptions {
  int max_iterations = 100;
  double density_tolerance = 1e-8;
  double energy_tolerance = 1e-10;
  bool use_diis = true;
  std::size_t diis_max_vectors = 8;
  int charge = 0;
  /// Spin multiplicity 2S+1 (1 = singlet, 2 = doublet, ...).
  int multiplicity = 1;
  /// Mix the alpha HOMO/LUMO of the initial guess to break alpha/beta
  /// symmetry (required to reach broken-symmetry solutions, e.g. stretched
  /// H2 past the Coulson-Fischer point).
  bool guess_mix = false;
  double lindep_tolerance = 1e-10;
};

struct UhfResult {
  bool converged = false;
  int iterations = 0;
  double energy = 0.0;
  double electronic_energy = 0.0;
  double nuclear_repulsion = 0.0;
  int nalpha = 0;
  int nbeta = 0;
  /// <S^2> expectation value; S(S+1) for a pure spin state, larger values
  /// indicate spin contamination.
  double s_squared = 0.0;
  std::vector<double> orbital_energies_alpha;
  std::vector<double> orbital_energies_beta;
  la::Matrix density_alpha;  ///< Tr(D_a S) = N_alpha
  la::Matrix density_beta;
};

/// Accumulates the raw (skeleton) Coulomb and exchange matrices for a
/// density over the screened canonical quartet loop:
///   J_sym ~= sum_cd D[c,d] (ab|cd),  K_sym ~= sum_cd D[c,d] (ac|bd)
/// after symmetrization (M + M^T)/2. `d_k` may differ from `d_j` (UHF
/// evaluates K per spin against the same J of the total density -- pass
/// d_j = D_total, d_k = D_sigma).
void build_jk(const ints::EriEngine& eri, const ints::Screening& screen,
              const la::Matrix& d_j, const la::Matrix& d_k, la::Matrix& j,
              la::Matrix& k);

/// Run UHF. Throws mc::Error for inconsistent charge/multiplicity.
UhfResult run_uhf(const chem::Molecule& mol, const basis::BasisSet& bs,
                  const ints::EriEngine& eri, const ints::Screening& screen,
                  const UhfOptions& options = {});

}  // namespace mc::scf
