#include "scf/stored_integrals.hpp"

#include "common/error.hpp"

namespace mc::scf {

AoIntegralTensor::AoIntegralTensor(const ints::EriEngine& eri,
                                   const ints::Screening& screen,
                                   std::size_t max_doubles) {
  const basis::BasisSet& bs = eri.basis_set();
  nbf_ = bs.nbf();
  const std::size_t npairs = nbf_ * (nbf_ + 1) / 2;
  const std::size_t total = npairs * (npairs + 1) / 2;
  MC_CHECK(total <= max_doubles,
           "stored-integral tensor would exceed the configured memory cap");
  values_.assign(total, 0.0);

  std::vector<double> batch;
  const std::size_t ns = bs.nshells();
  for (std::size_t si = 0; si < ns; ++si) {
    for (std::size_t sj = 0; sj <= si; ++sj) {
      for_each_kl(si, sj, [&](std::size_t sk, std::size_t sl) {
        if (!screen.keep(si, sj, sk, sl)) return;
        ints::ensure_batch_size(batch, eri.batch_size(si, sj, sk, sl));
        eri.compute(si, sj, sk, sl, batch.data());
        const basis::Shell& shi = bs.shell(si);
        const basis::Shell& shj = bs.shell(sj);
        const basis::Shell& shk = bs.shell(sk);
        const basis::Shell& shl = bs.shell(sl);
        std::size_t idx = 0;
        for (int a = 0; a < shi.nfunc(); ++a) {
          const std::size_t fa = shi.first_bf + static_cast<std::size_t>(a);
          for (int b = 0; b < shj.nfunc(); ++b) {
            const std::size_t fb =
                shj.first_bf + static_cast<std::size_t>(b);
            for (int c = 0; c < shk.nfunc(); ++c) {
              const std::size_t fc =
                  shk.first_bf + static_cast<std::size_t>(c);
              for (int dd = 0; dd < shl.nfunc(); ++dd, ++idx) {
                const std::size_t fd =
                    shl.first_bf + static_cast<std::size_t>(dd);
                values_[composite(pair_index(fa, fb), pair_index(fc, fd))] =
                    batch[idx];
              }
            }
          }
        }
      });
    }
  }
}

void StoredFockBuilder::build(const la::Matrix& density, la::Matrix& g,
                              const FockContext& /*ctx*/) {
  const std::size_t n = tensor_->nbf();
  MC_CHECK(g.rows() == n && g.cols() == n, "G shape mismatch");
  // Canonical sweep over unique function quartets; the same orbit-weighted
  // skeleton scatter as the direct builders, at function granularity.
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q <= p; ++q) {
      const std::size_t pq = AoIntegralTensor::pair_index(p, q);
      for (std::size_t r = 0; r <= p; ++r) {
        const std::size_t smax = (r == p) ? q : r;
        for (std::size_t s = 0; s <= smax; ++s) {
          const double v = (*tensor_)(p, q, r, s);
          if (v == 0.0) continue;
          const std::size_t rs = AoIntegralTensor::pair_index(r, s);
          const double dpq = (p == q) ? 1.0 : 2.0;
          const double drs = (r == s) ? 1.0 : 2.0;
          const double dpair = (pq == rs) ? 1.0 : 2.0;
          const double x = 0.5 * dpq * drs * dpair * v;
          const double x4 = 0.25 * x;
          g(p, q) += x * density(r, s);
          g(r, s) += x * density(p, q);
          g(p, r) -= x4 * density(q, s);
          g(q, s) -= x4 * density(p, r);
          g(p, s) -= x4 * density(q, r);
          g(q, r) -= x4 * density(p, s);
        }
      }
    }
  }
}

}  // namespace mc::scf
