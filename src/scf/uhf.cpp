#include "scf/uhf.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ints/one_electron.hpp"
#include "la/blas_lite.hpp"
#include "la/orthogonalizer.hpp"
#include "la/sym_eig.hpp"
#include "scf/diis.hpp"
#include "scf/fock_builder.hpp"

namespace mc::scf {

void build_jk(const ints::EriEngine& eri, const ints::Screening& screen,
              const la::Matrix& d_j, const la::Matrix& d_k, la::Matrix& j,
              la::Matrix& k) {
  const basis::BasisSet& bs = eri.basis_set();
  const std::size_t ns = bs.nshells();
  std::vector<double> batch;
  for (std::size_t si = 0; si < ns; ++si) {
    for (std::size_t sj = 0; sj <= si; ++sj) {
      for_each_kl(si, sj, [&](std::size_t sk, std::size_t sl) {
        if (!screen.keep(si, sj, sk, sl)) return;
        ints::ensure_batch_size(batch, eri.batch_size(si, sj, sk, sl));
        eri.compute(si, sj, sk, sl, batch.data());

        const basis::Shell& shi = bs.shell(si);
        const basis::Shell& shj = bs.shell(sj);
        const basis::Shell& shk = bs.shell(sk);
        const basis::Shell& shl = bs.shell(sl);
        const double w = quartet_degeneracy(si, sj, sk, sl);
        std::size_t idx = 0;
        for (int a = 0; a < shi.nfunc(); ++a) {
          const std::size_t fa = shi.first_bf + static_cast<std::size_t>(a);
          for (int b = 0; b < shj.nfunc(); ++b) {
            const std::size_t fb =
                shj.first_bf + static_cast<std::size_t>(b);
            for (int c = 0; c < shk.nfunc(); ++c) {
              const std::size_t fc =
                  shk.first_bf + static_cast<std::size_t>(c);
              for (int dd = 0; dd < shl.nfunc(); ++dd, ++idx) {
                const double v = batch[idx];
                if (v == 0.0) continue;
                const std::size_t fd =
                    shl.first_bf + static_cast<std::size_t>(dd);
                // Orbit-weighted skeleton (see fock_builder.hpp): Coulomb
                // entry weight w/2, exchange entry weight w/4; both become
                // exact after (M + M^T)/2.
                const double xj = 0.5 * w * v;
                const double xk = 0.25 * w * v;
                j(fa, fb) += xj * d_j(fc, fd);
                j(fc, fd) += xj * d_j(fa, fb);
                k(fa, fc) += xk * d_k(fb, fd);
                k(fb, fd) += xk * d_k(fa, fc);
                k(fa, fd) += xk * d_k(fb, fc);
                k(fb, fc) += xk * d_k(fa, fd);
              }
            }
          }
        }
      });
    }
  }
}

namespace {

la::Matrix spin_density(const la::Matrix& c, int nocc) {
  const std::size_t n = c.rows();
  la::Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t jj = 0; jj < n; ++jj) {
      double s = 0.0;
      for (int o = 0; o < nocc; ++o) {
        s += c(i, static_cast<std::size_t>(o)) *
             c(jj, static_cast<std::size_t>(o));
      }
      d(i, jj) = s;
    }
  }
  return d;
}

// <S^2> = S_z(S_z+1) + N_beta - sum_{i occ_a, j occ_b} |<i_a|S|j_b>|^2.
double s_squared(const la::Matrix& ca, const la::Matrix& cb, int na, int nb,
                 const la::Matrix& s) {
  const double sz = 0.5 * (na - nb);
  double overlap2 = 0.0;
  la::Matrix smo = la::gemm_tn(ca, la::gemm(s, cb));
  for (int i = 0; i < na; ++i) {
    for (int jj = 0; jj < nb; ++jj) {
      const double o = smo(static_cast<std::size_t>(i),
                           static_cast<std::size_t>(jj));
      overlap2 += o * o;
    }
  }
  return sz * (sz + 1.0) + nb - overlap2;
}

}  // namespace

UhfResult run_uhf(const chem::Molecule& mol, const basis::BasisSet& bs,
                  const ints::EriEngine& eri, const ints::Screening& screen,
                  const UhfOptions& opt) {
  const int nelec = mol.nelectrons(opt.charge);
  MC_CHECK(nelec > 0, "no electrons");
  MC_CHECK(opt.multiplicity >= 1, "multiplicity must be >= 1");
  const int nunpaired = opt.multiplicity - 1;
  MC_CHECK((nelec - nunpaired) % 2 == 0 && nelec >= nunpaired,
           "charge/multiplicity inconsistent with electron count");
  const int nbeta = (nelec - nunpaired) / 2;
  const int nalpha = nelec - nbeta;
  const std::size_t nbf = bs.nbf();
  MC_CHECK(static_cast<std::size_t>(nalpha) <= nbf,
           "more alpha electrons than basis functions");

  UhfResult res;
  res.nalpha = nalpha;
  res.nbeta = nbeta;
  res.nuclear_repulsion = mol.nuclear_repulsion();

  const la::Matrix s = ints::overlap_matrix(bs);
  const la::Matrix h = ints::core_hamiltonian(bs, mol);
  const la::Matrix x = la::canonical_orthogonalizer(s, opt.lindep_tolerance);

  // Core guess; optionally mix HOMO/LUMO in the alpha set to break spin
  // symmetry.
  la::SymEigResult guess = la::eigh_generalized(h, x);
  la::Matrix ca = guess.vectors;
  la::Matrix cb = guess.vectors;
  if (opt.guess_mix && static_cast<std::size_t>(nalpha) < nbf &&
      nalpha >= 1) {
    const std::size_t homo = static_cast<std::size_t>(nalpha - 1);
    const std::size_t lumo = static_cast<std::size_t>(nalpha);
    const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
    for (std::size_t r = 0; r < nbf; ++r) {
      const double ho = ca(r, homo);
      const double lu = ca(r, lumo);
      ca(r, homo) = inv_sqrt2 * (ho + lu);
      ca(r, lumo) = inv_sqrt2 * (ho - lu);
      cb(r, homo) = inv_sqrt2 * (ho - lu);
      cb(r, lumo) = inv_sqrt2 * (ho + lu);
    }
  }
  la::Matrix da = spin_density(ca, nalpha);
  la::Matrix db = spin_density(cb, nbeta);

  // Spin-coupled DIIS: stack (F_a; F_b) and the two error matrices into
  // 2N x N blocks so one set of extrapolation coefficients serves both.
  Diis diis(opt.diis_max_vectors);
  auto stack = [&](const la::Matrix& top, const la::Matrix& bot) {
    la::Matrix out(2 * nbf, nbf);
    for (std::size_t r = 0; r < nbf; ++r) {
      for (std::size_t c = 0; c < nbf; ++c) {
        out(r, c) = top(r, c);
        out(nbf + r, c) = bot(r, c);
      }
    }
    return out;
  };
  auto unstack = [&](const la::Matrix& m, la::Matrix& top, la::Matrix& bot) {
    for (std::size_t r = 0; r < nbf; ++r) {
      for (std::size_t c = 0; c < nbf; ++c) {
        top(r, c) = m(r, c);
        bot(r, c) = m(nbf + r, c);
      }
    }
  };

  double e_prev = 0.0;
  for (int iter = 1; iter <= opt.max_iterations; ++iter) {
    la::Matrix dtot = da;
    dtot += db;

    la::Matrix ja(nbf, nbf), ka(nbf, nbf), kb(nbf, nbf);
    la::Matrix junused(nbf, nbf);
    // One pass accumulates J(D_tot) and K(D_a); a second K-only pass uses
    // a zero J density to get K(D_b) without recomputing integrals twice
    // more. (A fused three-target pass would be a straightforward
    // optimization; clarity wins here.)
    build_jk(eri, screen, dtot, da, ja, ka);
    la::Matrix zero(nbf, nbf);
    build_jk(eri, screen, zero, db, junused, kb);

    ja.symmetrize();
    ka.symmetrize();
    kb.symmetrize();

    la::Matrix fa = h;
    fa += ja;
    fa -= ka;
    la::Matrix fb = h;
    fb += ja;
    fb -= kb;

    const double e_elec = 0.5 * (la::dot(dtot, h) + la::dot(da, fa) +
                                 la::dot(db, fb));
    const double e_total = e_elec + res.nuclear_repulsion;

    // DIIS errors per spin.
    auto err_of = [&](const la::Matrix& f, const la::Matrix& d) {
      la::Matrix fds = la::gemm(f, la::gemm(d, s));
      la::Matrix e = fds;
      e -= fds.transposed();
      return la::gemm_tn(x, la::gemm(e, x));
    };
    la::Matrix f_eff_a = fa;
    la::Matrix f_eff_b = fb;
    if (opt.use_diis) {
      diis.push(stack(fa, fb), stack(err_of(fa, da), err_of(fb, db)));
      la::Matrix f_eff = diis.extrapolate();
      unstack(f_eff, f_eff_a, f_eff_b);
    }

    la::SymEigResult ea = la::eigh_generalized(f_eff_a, x);
    la::SymEigResult eb = la::eigh_generalized(f_eff_b, x);
    la::Matrix da_new = spin_density(ea.vectors, nalpha);
    la::Matrix db_new = spin_density(eb.vectors, nbeta);

    double rms = 0.0;
    for (std::size_t q = 0; q < da.size(); ++q) {
      const double va = da_new.data()[q] - da.data()[q];
      const double vb = db_new.data()[q] - db.data()[q];
      rms += va * va + vb * vb;
    }
    rms = std::sqrt(rms / static_cast<double>(2 * da.size()));

    da = std::move(da_new);
    db = std::move(db_new);
    ca = ea.vectors;
    cb = eb.vectors;
    res.iterations = iter;
    res.energy = e_total;
    res.electronic_energy = e_elec;
    res.orbital_energies_alpha = ea.values;
    res.orbital_energies_beta = eb.values;

    if (iter > 1 && rms < opt.density_tolerance &&
        std::abs(e_total - e_prev) < opt.energy_tolerance) {
      res.converged = true;
      break;
    }
    e_prev = e_total;
  }

  res.s_squared = s_squared(ca, cb, nalpha, nbeta, s);
  res.density_alpha = std::move(da);
  res.density_beta = std::move(db);
  return res;
}

}  // namespace mc::scf
