#include "scf/serial_fock.hpp"

#include <vector>

#include "common/error.hpp"
#include "ints/eri_batch.hpp"
#include "obs/trace.hpp"

namespace mc::scf {

void SerialFockBuilder::build(const la::Matrix& density, la::Matrix& g,
                              const FockContext& ctx) {
  MC_OBS_TRACE("fock:serial");
  const basis::BasisSet& bs = eri_->basis_set();
  quartets_ = 0;
  density_screened_ = 0;
  static_screened_ = 0;
  pairs_ = 0;
  const bool weighted = ctx.weighted();
  const double scale = ctx.threshold_scale;

  if (batch_capacity_ == 0) {
    // Legacy scalar path: per-quartet compute + scatter. Kept selectable so
    // tests can pin the two engines against each other (results and
    // screening counters must agree; see test_incremental.cpp).
    std::vector<double> batch;
    for (const ints::ScreenedPair& pr : screen_->sorted_pairs()) {
      const std::size_t i = pr.i;
      const std::size_t j = pr.j;
      ++pairs_;
      // Pair-level density prescreen: bounds every quartet under this bra
      // pair by q_ij * qmax * 4*max|D|, the loosest quartet bound below.
      if (weighted && !screen_->keep_pair(i, j, 4.0 * ctx.dmax_max, scale)) {
        continue;
      }
      for_each_kl(i, j, [&](std::size_t k, std::size_t l) {
        if (!screen_->keep(i, j, k, l)) {
          ++static_screened_;
          return;
        }
        if (weighted &&
            !screen_->keep(i, j, k, l, ctx.quartet_dmax(i, j, k, l), scale)) {
          ++density_screened_;
          return;
        }
        ints::ensure_batch_size(batch, eri_->batch_size(i, j, k, l));
        eri_->compute(i, j, k, l, batch.data());
        scatter_quartet(bs, i, j, k, l, batch.data(), density, g);
        ++quartets_;
      });
    }
    return;
  }

  // Batched path: identical screening decisions; surviving quartets queue
  // into a QuartetBatch and are digested in discovery order at each flush,
  // so the scatter summation order -- and therefore G -- matches the
  // scalar path bitwise (flush boundaries never change a value).
  ints::QuartetBatch batch(*eri_, batch_capacity_);
  auto flush = [&] {
    batch.evaluate();
    for (std::size_t idx = 0; idx < batch.size(); ++idx) {
      const ints::QuartetBatch::Entry& e = batch.quartets()[idx];
      scatter_quartet(bs, e.si, e.sj, e.sk, e.sl, batch.result(idx), density,
                      g);
    }
    batch.clear();
  };
  for (const ints::ScreenedPair& pr : screen_->sorted_pairs()) {
    const std::size_t i = pr.i;
    const std::size_t j = pr.j;
    ++pairs_;
    if (weighted && !screen_->keep_pair(i, j, 4.0 * ctx.dmax_max, scale)) {
      continue;
    }
    for_each_kl(i, j, [&](std::size_t k, std::size_t l) {
      if (!screen_->keep(i, j, k, l)) {
        ++static_screened_;
        return;
      }
      if (weighted &&
          !screen_->keep(i, j, k, l, ctx.quartet_dmax(i, j, k, l), scale)) {
        ++density_screened_;
        return;
      }
      batch.add(i, j, k, l);
      ++quartets_;
      if (batch.full()) flush();
    });
  }
  flush();
}

void BruteForceFockBuilder::build(const la::Matrix& density, la::Matrix& g,
                                  const FockContext& /*ctx*/) {
  const basis::BasisSet& bs = eri_->basis_set();
  const std::size_t nbf = bs.nbf();
  const std::size_t ns = bs.nshells();
  MC_CHECK(g.rows() == nbf && g.cols() == nbf, "G shape mismatch");

  // Direct evaluation of G[p][q] = sum_rs D[r][s] ((pq|rs) - 1/2 (pr|qs))
  // from full shell batches; no symmetry, no screening, no density
  // weighting -- definitionally correct regardless of the context.
  std::vector<double> batch;
  for (std::size_t s1 = 0; s1 < ns; ++s1) {
    const auto& shp = bs.shell(s1);
    for (std::size_t s2 = 0; s2 < ns; ++s2) {
      const auto& shq = bs.shell(s2);
      for (std::size_t s3 = 0; s3 < ns; ++s3) {
        const auto& shr = bs.shell(s3);
        for (std::size_t s4 = 0; s4 < ns; ++s4) {
          const auto& shs = bs.shell(s4);
          ints::ensure_batch_size(batch, eri_->batch_size(s1, s2, s3, s4));
          eri_->compute(s1, s2, s3, s4, batch.data());
          std::size_t idx = 0;
          for (int a = 0; a < shp.nfunc(); ++a) {
            for (int b = 0; b < shq.nfunc(); ++b) {
              for (int c = 0; c < shr.nfunc(); ++c) {
                for (int dd = 0; dd < shs.nfunc(); ++dd, ++idx) {
                  const double v = batch[idx];
                  const std::size_t fp = shp.first_bf + a;
                  const std::size_t fq = shq.first_bf + b;
                  const std::size_t fr = shr.first_bf + c;
                  const std::size_t fs = shs.first_bf + dd;
                  // Coulomb: (pq|rs) D_rs -> G_pq
                  g(fp, fq) += v * density(fr, fs);
                  // Exchange: (pq|rs) contributes to K_pr as D_qs (pq|rs).
                  g(fp, fr) -= 0.5 * v * density(fq, fs);
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace mc::scf
