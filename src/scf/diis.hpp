#pragma once
// DIIS (Pulay's Direct Inversion in the Iterative Subspace) convergence
// accelerator for the SCF loop. GAMESS converges its SCF with DIIS; the
// paper benchmarks wall time over the converged SCF run, so iteration
// counts must be comparable across algorithms -- DIIS makes them so.

#include <deque>

#include "la/matrix.hpp"

namespace mc::scf {

class Diis {
 public:
  explicit Diis(std::size_t max_vectors = 8) : max_vectors_(max_vectors) {}

  /// Add the (Fock, error) pair for this iteration; error is typically the
  /// orthonormal-basis commutator X^T (F D S - S D F) X.
  void push(const la::Matrix& fock, const la::Matrix& error);

  /// Extrapolated Fock matrix from the stored history. With fewer than two
  /// stored vectors, returns the last Fock unchanged.
  [[nodiscard]] la::Matrix extrapolate() const;

  [[nodiscard]] std::size_t size() const { return focks_.size(); }
  void clear();

 private:
  std::size_t max_vectors_;
  std::deque<la::Matrix> focks_;
  std::deque<la::Matrix> errors_;
};

}  // namespace mc::scf
