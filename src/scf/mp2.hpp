#pragma once
// Second-order Moller-Plesset perturbation theory (MP2) on top of a
// converged RHF wavefunction -- the first of the O(N^5+) post-HF methods
// the paper's introduction motivates the HF optimization for ("The HF
// solution is commonly used as a starting point for more accurate ab
// initio methods, such as second order perturbation theory...").
//
// Closed-shell spin-adapted form:
//   E(2) = sum_{ijab} (ia|jb) [ 2 (ia|jb) - (ib|ja) ]
//                     / (e_i + e_j - e_a - e_b)
// with the MO integrals obtained by four quarter-transformations (O(N^5))
// of the stored AO tensor.

#include "la/matrix.hpp"
#include "scf/stored_integrals.hpp"

namespace mc::scf {

struct Mp2Result {
  double correlation_energy = 0.0;  ///< E(2), Hartree (negative)
  double total_energy = 0.0;        ///< E_HF + E(2)
  /// Same-spin / opposite-spin decomposition (for SCS-MP2 style scaling).
  double same_spin = 0.0;
  double opposite_spin = 0.0;
};

/// Compute the MP2 correlation energy. `c` are the converged MO
/// coefficients (columns), `orbital_energies` the matching eigenvalues,
/// `nocc` the number of doubly-occupied orbitals, `e_hf` the RHF total
/// energy. Frozen-core is supported through `nfrozen` (orbitals excluded
/// from the correlation treatment).
Mp2Result mp2_energy(const AoIntegralTensor& ao, const la::Matrix& c,
                     const std::vector<double>& orbital_energies, int nocc,
                     double e_hf, int nfrozen = 0);

}  // namespace mc::scf
