#include "scf/properties.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ints/multipole.hpp"
#include "la/blas_lite.hpp"

namespace mc::scf {

namespace {
constexpr double kDebyePerAu = 2.541746;
}

double DipoleMoment::magnitude_au() const {
  const auto t = total();
  return std::sqrt(t[0] * t[0] + t[1] * t[1] + t[2] * t[2]);
}

double DipoleMoment::magnitude_debye() const {
  return magnitude_au() * kDebyePerAu;
}

DipoleMoment dipole_moment(const chem::Molecule& mol,
                           const basis::BasisSet& bs, const la::Matrix& d) {
  MC_CHECK(d.rows() == bs.nbf() && d.cols() == bs.nbf(),
           "density shape mismatch");
  // Center of nuclear charge as origin.
  std::array<double, 3> origin{0.0, 0.0, 0.0};
  double ztot = 0.0;
  for (const chem::Atom& a : mol.atoms()) {
    for (int k = 0; k < 3; ++k) origin[static_cast<std::size_t>(k)] += a.z * a.xyz[static_cast<std::size_t>(k)];
    ztot += a.z;
  }
  MC_CHECK(ztot > 0.0, "molecule has no nuclei");
  for (double& o : origin) o /= ztot;

  DipoleMoment dm;
  const auto m = ints::dipole_matrices(bs, origin);
  for (int k = 0; k < 3; ++k) {
    // Electrons carry charge -1: mu_el = -Tr(D M).
    dm.electronic[static_cast<std::size_t>(k)] =
        -la::dot(d, m[static_cast<std::size_t>(k)]);
  }
  for (const chem::Atom& a : mol.atoms()) {
    for (int k = 0; k < 3; ++k) {
      dm.nuclear[static_cast<std::size_t>(k)] +=
          a.z * (a.xyz[static_cast<std::size_t>(k)] -
                 origin[static_cast<std::size_t>(k)]);
    }
  }
  return dm;
}

MullikenAnalysis mulliken_analysis(const chem::Molecule& mol,
                                   const basis::BasisSet& bs,
                                   const la::Matrix& d,
                                   const la::Matrix& s) {
  MullikenAnalysis out;
  out.populations.assign(mol.natoms(), 0.0);
  la::Matrix ds = la::gemm(d, s);
  for (const basis::Shell& sh : bs.shells()) {
    MC_CHECK(sh.atom >= 0 &&
                 static_cast<std::size_t>(sh.atom) < mol.natoms(),
             "shell without a valid atom");
    for (int f = 0; f < sh.nfunc(); ++f) {
      const std::size_t bf = sh.first_bf + static_cast<std::size_t>(f);
      out.populations[static_cast<std::size_t>(sh.atom)] += ds(bf, bf);
    }
  }
  out.charges.resize(mol.natoms());
  for (std::size_t a = 0; a < mol.natoms(); ++a) {
    out.charges[a] = mol.atom(a).z - out.populations[a];
  }
  return out;
}

}  // namespace mc::scf
