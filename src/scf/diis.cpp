#include "scf/diis.hpp"

#include <vector>

#include "common/error.hpp"
#include "la/blas_lite.hpp"
#include "la/solve.hpp"

namespace mc::scf {

void Diis::push(const la::Matrix& fock, const la::Matrix& error) {
  focks_.push_back(fock);
  errors_.push_back(error);
  while (focks_.size() > max_vectors_) {
    focks_.pop_front();
    errors_.pop_front();
  }
}

la::Matrix Diis::extrapolate() const {
  MC_CHECK(!focks_.empty(), "DIIS extrapolate with empty history");
  const std::size_t m = focks_.size();
  if (m == 1) return focks_.back();

  // Solve the DIIS equations:
  //   [ B  -1 ] [ c      ]   [ 0 ]
  //   [ -1  0 ] [ lambda ] = [ -1 ],  B_ij = <e_i, e_j>.
  const std::size_t n = m + 1;
  la::Matrix b(n, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = la::dot(errors_[i], errors_[j]);
      b(i, j) = v;
      b(j, i) = v;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    b(i, m) = -1.0;
    b(m, i) = -1.0;
  }
  b(m, m) = 0.0;
  std::vector<double> rhs(n, 0.0);
  rhs[m] = -1.0;

  std::vector<double> c;
  try {
    c = la::solve(b, rhs);
  } catch (const mc::Error&) {
    // Near-singular B (stagnated history): fall back to the latest Fock.
    return focks_.back();
  }

  la::Matrix f(focks_.back().rows(), focks_.back().cols());
  for (std::size_t i = 0; i < m; ++i) {
    la::axpy(c[i], focks_[i], f);
  }
  return f;
}

void Diis::clear() {
  focks_.clear();
  errors_.clear();
}

}  // namespace mc::scf
