#pragma once
// Built-in basis-set tables. Exponents/coefficients are the standard Pople
// values (as distributed with GAMESS / the EMSL basis-set exchange) for the
// elements the paper's benchmarks need: H, C plus N, O for generality.
//
// Supported basis names: "STO-3G", "6-31G", "6-31G(d)" (the paper's basis).

#include <string>
#include <vector>

namespace mc::basis {

/// One contracted block from the element table. `type` is 'S', 'P', 'D' or
/// 'L' (fused SP: `coefs` holds the s coefficients and `coefs_p` the p).
struct RawShell {
  char type = 'S';
  std::vector<double> exps;
  std::vector<double> coefs;
  std::vector<double> coefs_p;  // only for type 'L'
};

/// The raw shell blocks for element `z` in the named basis. Throws
/// mc::Error for unsupported (basis, element) combinations.
std::vector<RawShell> element_basis(const std::string& basis_name, int z);

/// True if the named basis is available for element `z`.
bool has_element_basis(const std::string& basis_name, int z);

/// Names of all built-in basis sets.
std::vector<std::string> available_basis_sets();

}  // namespace mc::basis
