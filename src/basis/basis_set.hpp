#pragma once
// Molecule-specific basis: the flat list of contracted shells the integral
// engine iterates over, with GAMESS-convention bookkeeping for reporting.

#include <cstddef>
#include <string>
#include <vector>

#include "basis/shell.hpp"
#include "chem/molecule.hpp"

namespace mc::basis {

class BasisSet {
 public:
  BasisSet() = default;

  /// Assign the named basis to every atom of `mol`. Fused SP shells from the
  /// library are expanded into separate s and p shells sharing exponents;
  /// the fused count is preserved for GAMESS-style reporting.
  static BasisSet build(const chem::Molecule& mol,
                        const std::string& basis_name);

  /// Mixed-basis variant: `basis_per_atom[a]` names the basis assigned to
  /// atom `a` (size must equal mol.natoms()). Shell ordering follows atom
  /// order exactly as in build(); when every entry is the same name the
  /// result is identical to build(mol, name). Used by the differential
  /// fuzzing harness, which assigns random bases per atom (DESIGN.md
  /// section 14).
  static BasisSet build_mixed(const chem::Molecule& mol,
                              const std::vector<std::string>& basis_per_atom);

  [[nodiscard]] const std::vector<Shell>& shells() const { return shells_; }
  [[nodiscard]] const Shell& shell(std::size_t s) const { return shells_[s]; }
  [[nodiscard]] std::size_t nshells() const { return shells_.size(); }
  /// Number of basis functions (Cartesian components).
  [[nodiscard]] std::size_t nbf() const { return nbf_; }
  /// Shell count in GAMESS convention: a fused SP shell counts once
  /// (Table 4 of the paper counts shells this way).
  [[nodiscard]] std::size_t nshells_gamess() const { return n_gamess_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Largest shell width max_s nfunc(s); sizes the paper's FI/FJ buffers
  /// (Algorithm 3 line 1: mxsize = ubound(Fock) * shellSize).
  [[nodiscard]] int max_shell_size() const;
  /// Largest angular momentum present.
  [[nodiscard]] int max_l() const;

  /// Index of the shell containing basis function `bf`.
  [[nodiscard]] std::size_t shell_of_bf(std::size_t bf) const;

 private:
  std::vector<Shell> shells_;
  std::size_t nbf_ = 0;
  std::size_t n_gamess_ = 0;
  std::string name_;
};

}  // namespace mc::basis
