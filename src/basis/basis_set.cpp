#include "basis/basis_set.hpp"

#include <algorithm>

#include "basis/basis_library.hpp"
#include "common/error.hpp"

namespace mc::basis {

BasisSet BasisSet::build(const chem::Molecule& mol,
                         const std::string& basis_name) {
  return build_mixed(
      mol, std::vector<std::string>(mol.natoms(), basis_name));
}

BasisSet BasisSet::build_mixed(
    const chem::Molecule& mol,
    const std::vector<std::string>& basis_per_atom) {
  MC_CHECK(basis_per_atom.size() == mol.natoms(),
           "build_mixed: need one basis name per atom");
  BasisSet bs;
  // Uniform assignment keeps the plain name; a genuine mix is labeled with
  // the sorted set of distinct names so reports stay deterministic.
  std::vector<std::string> distinct(basis_per_atom);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (distinct.empty()) {
    bs.name_ = "";
  } else if (distinct.size() == 1) {
    bs.name_ = distinct.front();
  } else {
    bs.name_ = "mixed[";
    for (std::size_t n = 0; n < distinct.size(); ++n) {
      if (n > 0) bs.name_ += ",";
      bs.name_ += distinct[n];
    }
    bs.name_ += "]";
  }
  std::size_t bf = 0;
  for (std::size_t a = 0; a < mol.natoms(); ++a) {
    const chem::Atom& atom = mol.atom(a);
    for (const RawShell& raw : element_basis(basis_per_atom[a], atom.z)) {
      ++bs.n_gamess_;
      auto push = [&](int l, const std::vector<double>& coefs, bool from_sp) {
        Shell sh;
        sh.l = l;
        sh.center = atom.xyz;
        sh.exps = raw.exps;
        sh.coefs = coefs;
        sh.atom = static_cast<int>(a);
        sh.from_sp = from_sp;
        normalize_shell(sh);
        sh.first_bf = bf;
        bf += static_cast<std::size_t>(sh.nfunc());
        bs.shells_.push_back(std::move(sh));
      };
      switch (raw.type) {
        case 'S': push(0, raw.coefs, false); break;
        case 'P': push(1, raw.coefs, false); break;
        case 'D': push(2, raw.coefs, false); break;
        case 'L':
          MC_CHECK(raw.coefs_p.size() == raw.exps.size(),
                   "fused SP shell missing p coefficients");
          push(0, raw.coefs, true);
          push(1, raw.coefs_p, true);
          break;
        default:
          MC_CHECK(false, std::string("unknown raw shell type: ") + raw.type);
      }
    }
  }
  bs.nbf_ = bf;
  return bs;
}

int BasisSet::max_shell_size() const {
  int m = 0;
  for (const Shell& s : shells_) m = std::max(m, s.nfunc());
  return m;
}

int BasisSet::max_l() const {
  int m = 0;
  for (const Shell& s : shells_) m = std::max(m, s.l);
  return m;
}

std::size_t BasisSet::shell_of_bf(std::size_t bf) const {
  MC_CHECK(bf < nbf_, "basis function index out of range");
  // Shells are ordered by first_bf; binary search the containing one.
  std::size_t lo = 0, hi = shells_.size();
  while (hi - lo > 1) {
    const std::size_t mid = (lo + hi) / 2;
    if (shells_[mid].first_bf <= bf) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace mc::basis
