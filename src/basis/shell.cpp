#include "basis/shell.hpp"

#include <algorithm>
#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace mc::basis {

double dfact(int n) {
  // (n)!! over odd descending terms; by convention (-1)!! = (0-1)!! = 1.
  double r = 1.0;
  for (int k = n; k > 1; k -= 2) r *= k;
  return r;
}

double Shell::min_exponent() const {
  MC_CHECK(!exps.empty(), "shell without primitives");
  return *std::min_element(exps.begin(), exps.end());
}

double primitive_norm(double alpha, int i, int j, int k) {
  const int l = i + j + k;
  const double num = std::pow(2.0 * alpha / kPi, 0.75) *
                     std::pow(4.0 * alpha, 0.5 * l);
  const double den =
      std::sqrt(dfact(2 * i - 1) * dfact(2 * j - 1) * dfact(2 * k - 1));
  return num / den;
}

double component_norm_ratio(int l, int i, int j, int k) {
  MC_CHECK(i + j + k == l, "component does not match shell l");
  return std::sqrt(dfact(2 * l - 1) /
                   (dfact(2 * i - 1) * dfact(2 * j - 1) * dfact(2 * k - 1)));
}

void normalize_shell(Shell& sh) {
  MC_CHECK(sh.exps.size() == sh.coefs.size(),
           "shell exps/coefs size mismatch");
  const int l = sh.l;
  // Fold the (l,0,0) primitive norms into the contraction coefficients.
  for (std::size_t p = 0; p < sh.exps.size(); ++p) {
    sh.coefs[p] *= primitive_norm(sh.exps[p], l, 0, 0);
  }
  // Self-overlap of the contracted (l,0,0) function:
  // <x^l e^{-a r^2} | x^l e^{-b r^2}> =
  //    (pi/(a+b))^{3/2} * (2l-1)!! / (2(a+b))^l.
  double s = 0.0;
  for (std::size_t p = 0; p < sh.exps.size(); ++p) {
    for (std::size_t q = 0; q < sh.exps.size(); ++q) {
      const double ab = sh.exps[p] + sh.exps[q];
      s += sh.coefs[p] * sh.coefs[q] * std::pow(kPi / ab, 1.5) *
           dfact(2 * l - 1) / std::pow(2.0 * ab, l);
    }
  }
  MC_CHECK(s > 0.0, "shell has non-positive self overlap");
  const double scale = 1.0 / std::sqrt(s);
  for (double& c : sh.coefs) c *= scale;
}

std::vector<std::array<int, 3>> cartesian_components(int l) {
  std::vector<std::array<int, 3>> out;
  out.reserve(static_cast<std::size_t>(ncart(l)));
  for (int i = l; i >= 0; --i) {
    for (int j = l - i; j >= 0; --j) {
      out.push_back({i, j, l - i - j});
    }
  }
  return out;
}

}  // namespace mc::basis
