#pragma once
// Contracted Gaussian shell. A shell groups all basis functions sharing the
// same center, angular momentum and radial part (the paper, footnote 1).
//
// GAMESS-style fused SP ("L") shells are expanded at build time into an
// s shell and a p shell sharing exponents; Shell::from_sp records the fused
// origin so shell counts can be reported in GAMESS convention (Table 4).

#include <array>
#include <cstddef>
#include <vector>

namespace mc::basis {

/// Number of Cartesian components for angular momentum l:
/// s=1, p=3, d=6, f=10, ...
constexpr int ncart(int l) { return (l + 1) * (l + 2) / 2; }

/// Double factorial (2n-1)!! with (-1)!! = 1.
double dfact(int n);

struct Shell {
  int l = 0;                        ///< angular momentum
  std::array<double, 3> center{};   ///< Bohr
  std::vector<double> exps;         ///< primitive exponents
  std::vector<double> coefs;        ///< contraction coefs, normalization folded in
  std::size_t first_bf = 0;         ///< index of first basis function
  int atom = -1;                    ///< owning atom
  bool from_sp = false;             ///< expanded from a fused SP shell

  [[nodiscard]] int nprim() const { return static_cast<int>(exps.size()); }
  [[nodiscard]] int nfunc() const { return ncart(l); }

  /// Smallest exponent: controls the spatial extent of the shell (used by
  /// screening estimates).
  [[nodiscard]] double min_exponent() const;
};

/// Normalization constant of a primitive Cartesian Gaussian
/// x^i y^j z^k exp(-a r^2).
double primitive_norm(double alpha, int i, int j, int k);

/// Per-component normalization ratio relative to the (l,0,0) component:
/// sqrt((2l-1)!! / ((2i-1)!!(2j-1)!!(2k-1)!!)). The integral engine applies
/// this so every Cartesian component is individually normalized.
double component_norm_ratio(int l, int i, int j, int k);

/// Normalize the contraction: folds the (l,0,0) primitive norms into
/// `coefs` and rescales so the contracted (l,0,0) function has unit
/// self-overlap.
void normalize_shell(Shell& sh);

/// Enumerate Cartesian components of angular momentum l in the canonical
/// order used throughout minichem: lexicographic with x decreasing first,
/// e.g. d: xx, xy, xz, yy, yz, zz.
std::vector<std::array<int, 3>> cartesian_components(int l);

}  // namespace mc::basis
