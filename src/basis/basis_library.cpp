#include "basis/basis_library.hpp"

#include "common/error.hpp"

namespace mc::basis {

namespace {

// ---------------------------------------------------------------- STO-3G --
// STO-3G uses one set of contraction coefficients shared by all elements of
// a row, with element-specific exponent scalings (standard Pople tables).

std::vector<RawShell> sto3g(int z) {
  switch (z) {
    case 1:  // H
      return {{'S',
               {3.42525091, 0.62391373, 0.16885540},
               {0.15432897, 0.53532814, 0.44463454},
               {}}};
    case 2:  // He
      return {{'S',
               {6.36242139, 1.15892300, 0.31364979},
               {0.15432897, 0.53532814, 0.44463454},
               {}}};
    case 6:  // C
      return {{'S',
               {71.6168370, 13.0450960, 3.53051220},
               {0.15432897, 0.53532814, 0.44463454},
               {}},
              {'L',
               {2.94124940, 0.68348310, 0.22228990},
               {-0.09996723, 0.39951283, 0.70011547},
               {0.15591627, 0.60768372, 0.39195739}}};
    case 7:  // N
      return {{'S',
               {99.1061690, 18.0523120, 4.88566020},
               {0.15432897, 0.53532814, 0.44463454},
               {}},
              {'L',
               {3.78045590, 0.87849660, 0.28571440},
               {-0.09996723, 0.39951283, 0.70011547},
               {0.15591627, 0.60768372, 0.39195739}}};
    case 8:  // O
      return {{'S',
               {130.7093200, 23.8088610, 6.44360830},
               {0.15432897, 0.53532814, 0.44463454},
               {}},
              {'L',
               {5.03315130, 1.16959610, 0.38038900},
               {-0.09996723, 0.39951283, 0.70011547},
               {0.15591627, 0.60768372, 0.39195739}}};
    default:
      return {};
  }
}

// ----------------------------------------------------------------- 6-31G --

std::vector<RawShell> pople631g(int z) {
  switch (z) {
    case 1:  // H
      return {{'S',
               {18.7311370, 2.82539370, 0.64012170},
               {0.03349460, 0.23472695, 0.81375733},
               {}},
              {'S', {0.16127780}, {1.0}, {}}};
    case 6:  // C
      return {{'S',
               {3047.52490, 457.369510, 103.948690, 29.2101550, 9.28666300,
                3.16392700},
               {0.0018347, 0.0140373, 0.0688426, 0.2321844, 0.4679413,
                0.3623120},
               {}},
              {'L',
               {7.86827240, 1.88128850, 0.54424930},
               {-0.1193324, -0.1608542, 1.1434564},
               {0.0689991, 0.3164240, 0.7443083}},
              {'L', {0.16871440}, {1.0}, {1.0}}};
    case 7:  // N
      return {{'S',
               {4173.51100, 627.457900, 142.902100, 40.2343300, 13.0329000,
                4.60325800},
               {0.0018348, 0.0139950, 0.0685870, 0.2322410, 0.4690700,
                0.3604550},
               {}},
              {'L',
               {11.6263580, 2.71628000, 0.77221800},
               {-0.1149610, -0.1691180, 1.1458520},
               {0.0675800, 0.3239070, 0.7408950}},
              {'L', {0.21203130}, {1.0}, {1.0}}};
    case 8:  // O
      return {{'S',
               {5484.67170, 825.234950, 188.046960, 52.9645000, 16.8975700,
                5.79963530},
               {0.0018311, 0.0139501, 0.0684451, 0.2327143, 0.4701930,
                0.3585209},
               {}},
              {'L',
               {15.5396160, 3.59993360, 1.01376180},
               {-0.1107775, -0.1480263, 1.1307670},
               {0.0708743, 0.3397528, 0.7271586}},
              {'L', {0.27000580}, {1.0}, {1.0}}};
    default:
      return {};
  }
}

// p-polarization exponent on hydrogen for 6-31G(d,p) (Pople: 1.1).
double pol_p_exponent(int z) { return z == 1 ? 1.1 : 0.0; }

// d-polarization exponents for 6-31G(d) (Pople standard: 0.8 for C,N,O).
double pol_d_exponent(int z) {
  switch (z) {
    case 6: return 0.800;
    case 7: return 0.800;
    case 8: return 0.800;
    default: return 0.0;
  }
}

std::vector<RawShell> pople631gd(int z) {
  std::vector<RawShell> shells = pople631g(z);
  if (shells.empty()) return shells;
  const double d = pol_d_exponent(z);
  if (d > 0.0) {
    shells.push_back({'D', {d}, {1.0}, {}});
  }
  return shells;
}

std::vector<RawShell> pople631gdp(int z) {
  std::vector<RawShell> shells = pople631gd(z);
  if (shells.empty()) return shells;
  const double pp = pol_p_exponent(z);
  if (pp > 0.0) {
    shells.push_back({'P', {pp}, {1.0}, {}});
  }
  return shells;
}

}  // namespace

std::vector<RawShell> element_basis(const std::string& basis_name, int z) {
  std::vector<RawShell> shells;
  if (basis_name == "STO-3G") {
    shells = sto3g(z);
  } else if (basis_name == "6-31G") {
    shells = pople631g(z);
  } else if (basis_name == "6-31G(d)" || basis_name == "6-31G*") {
    shells = pople631gd(z);
  } else if (basis_name == "6-31G(d,p)" || basis_name == "6-31G**") {
    shells = pople631gdp(z);
  } else {
    MC_CHECK(false, "unknown basis set: " + basis_name);
  }
  MC_CHECK(!shells.empty(), "basis " + basis_name +
                                " not available for element Z=" +
                                std::to_string(z));
  return shells;
}

bool has_element_basis(const std::string& basis_name, int z) {
  if (basis_name == "STO-3G") return !sto3g(z).empty();
  if (basis_name == "6-31G") return !pople631g(z).empty();
  if (basis_name == "6-31G(d)" || basis_name == "6-31G*") {
    return !pople631gd(z).empty();
  }
  if (basis_name == "6-31G(d,p)" || basis_name == "6-31G**") {
    return !pople631gdp(z).empty();
  }
  return false;
}

std::vector<std::string> available_basis_sets() {
  return {"STO-3G", "6-31G", "6-31G(d)", "6-31G(d,p)"};
}

}  // namespace mc::basis
