#pragma once
// Load-balance metrics (DESIGN.md section 10): per-rank accumulators for
// the time categories the paper's evaluation is built on -- DLB-counter
// wait, gsumf/allreduce, barrier, broadcast -- plus the per-iteration
// record the SCF drivers emit as machine-readable JSON lines when run
// with --profile (one record per SCF iteration, schema in DESIGN.md
// section 10.2, mapped to the paper's Tables 2-3 in EXPERIMENTS.md).
//
// Gating mirrors obs/trace.hpp: MC_OBS=0 collapses ScopedChannelTimer to
// an empty type; with MC_OBS=1 the timer costs one relaxed atomic load
// until metrics are enabled at runtime.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mc::obs {

/// Communication/wait-time categories, accumulated per rank.
enum class Channel : int {
  kDlbWait = 0,   ///< time spent claiming from the shared DLB counter
  kGsum = 1,      ///< ddi_gsumf / allreduce (sum and max)
  kBarrier = 2,   ///< explicit barriers (and window fences)
  kBroadcast = 3, ///< ddi_bcast
  kPut = 4,       ///< one-sided ddi_put into a window
  kGet = 5,       ///< one-sided ddi_get from a window
  kAcc = 6,       ///< one-sided ddi_acc accumulate into a window
};
inline constexpr int kChannelCount = 7;
[[nodiscard]] const char* channel_name(Channel c);

[[nodiscard]] bool metrics_enabled();
void set_metrics_enabled(bool on);
/// Zero every (channel, rank) accumulator.
void reset_metrics();

/// Accumulate `ns` into (channel, rank). rank < 0 = unattributed/serial.
void add_channel_ns(Channel c, int rank, std::uint64_t ns);
[[nodiscard]] std::uint64_t channel_ns(Channel c, int rank);
[[nodiscard]] double channel_seconds(Channel c, int rank);

/// RAII channel accumulation: adds the scope's duration to (c, rank).
class ScopedChannelTimerImpl {
 public:
  ScopedChannelTimerImpl(Channel c, int rank) {
    if (metrics_enabled()) {
      active_ = true;
      c_ = c;
      rank_ = rank;
      t0_ = monotonic_ns();
    }
  }
  ~ScopedChannelTimerImpl() {
    if (active_) add_channel_ns(c_, rank_, monotonic_ns() - t0_);
  }
  ScopedChannelTimerImpl(const ScopedChannelTimerImpl&) = delete;
  ScopedChannelTimerImpl& operator=(const ScopedChannelTimerImpl&) = delete;

 private:
  bool active_ = false;
  Channel c_ = Channel::kDlbWait;
  int rank_ = -1;
  std::uint64_t t0_ = 0;
};

struct ScopedChannelTimerNoop {
  ScopedChannelTimerNoop(Channel /*c*/, int /*rank*/) {}
};

#if MC_OBS
using ScopedChannelTimer = ScopedChannelTimerImpl;
#else
using ScopedChannelTimer = ScopedChannelTimerNoop;
#endif

// ---------------------------------------------------------------------------
// Per-angular-class ERI batch statistics (DESIGN.md section 12.5): the
// batched pipeline groups quartets by (Lbra, Lket) = (l1+l2, l3+l4), and
// accumulates per class how many contracted quartets were digested, how
// many primitive quartets went through boys_batch, and the wall time spent
// in batch evaluation. Callers gate on metrics_enabled(); accumulation is
// relaxed-atomic like the channel table.

/// Largest tracked l1+l2 per side (engine supports l <= 4 per shell).
inline constexpr int kMaxEriClassL = 8;

struct EriClassStats {
  std::uint64_t quartets = 0;       ///< contracted shell quartets evaluated
  std::uint64_t boys_elements = 0;  ///< primitive quartets through boys_batch
  std::uint64_t ns = 0;             ///< wall time in batch evaluation
};

/// Accumulate one class-group evaluation. Out-of-range classes clamp to
/// the top slot. Thread-safe (relaxed atomics).
void add_eri_class(int lbra, int lket, std::uint64_t quartets,
                   std::uint64_t boys_elements, std::uint64_t ns);
[[nodiscard]] EriClassStats eri_class_stats(int lbra, int lket);
/// Sum over all classes (convenience for tests/reporting).
[[nodiscard]] EriClassStats eri_class_totals();

// ---------------------------------------------------------------------------
// Per-iteration metrics records (the --profile JSON-lines schema).

/// One rank's share of one SCF iteration's Fock build.
struct RankIterationMetrics {
  int rank = 0;
  std::size_t pairs_claimed = 0;   ///< MPI-level tasks this rank claimed
  std::size_t quartets = 0;        ///< shell quartets computed
  std::size_t static_screened = 0; ///< killed by the static Schwarz bound
  std::size_t density_screened = 0;///< killed by the density-weighted bound
  std::vector<std::size_t> thread_quartets;  ///< per-OpenMP-thread split
  double dlb_wait_seconds = 0.0;
  double gsum_seconds = 0.0;
  double barrier_seconds = 0.0;
  std::size_t peak_bytes = 0;      ///< MemoryTracker high-water mark
  /// Distributed-builder tile-cache traffic (all zero for the replicated
  /// algorithms): density-tile reads served from the rank-local cache vs
  /// fetched with ddi_get from the window.
  std::size_t tile_hits = 0;
  std::size_t tile_misses = 0;
};

/// One SCF iteration, aggregated across ranks.
struct IterationRecord {
  std::string algorithm;
  int nranks = 1;
  int nthreads = 1;
  int iteration = 0;
  double energy = 0.0;
  double delta_energy = 0.0;
  double density_rms = 0.0;
  bool full_rebuild = true;
  double fock_seconds = 0.0;
  std::size_t quartets = 0;          ///< summed over ranks
  std::size_t static_screened = 0;   ///< summed over ranks
  std::size_t density_screened = 0;  ///< summed over ranks
  /// Static-survivor quartet count predicted by the Schwarz screening;
  /// full-rebuild iterations must compute exactly this many (0 = unknown).
  std::size_t screening_predicted_quartets = 0;
  std::vector<RankIterationMetrics> ranks;

  /// max/mean of per-rank quartet counts (1.0 = perfect balance).
  [[nodiscard]] double load_imbalance() const;
};

/// One record as a single JSON line (no trailing newline).
[[nodiscard]] std::string iteration_json(const IterationRecord& rec);
void write_iteration_json(std::ostream& os, const IterationRecord& rec);

// ---------------------------------------------------------------------------
// Per-job serving telemetry (DESIGN.md section 15): the job server emits
// one JobRecord JSON line per terminal job -- accepted or rejected -- to
// its telemetry JSONL stream, and derives its shutdown summary (p50/p95
// queue-wait and run latency, outcome counts, cache hit rates) from the
// same records. This is the per-rank obs layer of PR 3 re-aimed at the
// serving dimension: the unit of attribution is the job, not the rank.

/// Terminal state of one job.
enum class JobOutcomeKind : int {
  kConverged = 0,
  kUnconverged = 1,
  kRejected = 2,   ///< refused at admission (never ran)
  kAborted = 3,    ///< threw mid-run (e.g. an injected fault)
};
[[nodiscard]] const char* job_outcome_name(JobOutcomeKind k);

/// One job's life, from admission decision to terminal state.
struct JobRecord {
  long job_id = 0;
  std::string tenant;
  std::string molecule;   ///< label only (e.g. "benzene", "graphene:8")
  std::string basis;
  std::string algorithm;
  int nranks = 1;
  int nthreads = 1;
  int priority = 0;
  int world_id = -1;      ///< pool world that ran it; -1 = never ran
  JobOutcomeKind outcome = JobOutcomeKind::kRejected;
  std::string reject_reason;  ///< admission refusal, or abort error text
  /// Seconds from server start to submission (a steady, server-local
  /// clock; JSONL consumers only ever difference these).
  double submit_seconds = 0.0;
  double queue_wait_seconds = 0.0;  ///< admission -> dispatch onto a world
  double run_seconds = 0.0;         ///< dispatch -> terminal
  std::size_t queue_depth_at_admission = 0;
  bool setup_cache_hit = false;    ///< Schwarz/pair-list setup reused
  bool density_cache_hit = false;  ///< warm-started from a cached density
  double energy = 0.0;
  int iterations = 0;
};

/// One record as a single JSON line (no trailing newline).
[[nodiscard]] std::string job_record_json(const JobRecord& rec);

/// The p-th percentile (0 <= p <= 100) by linear interpolation between
/// order statistics; 0 for an empty sample. Takes a copy: percentile
/// selection reorders the values.
[[nodiscard]] double percentile(std::vector<double> values, double p);

/// RAII profile session backing the SCF drivers' --profile=<base> flag:
/// enables tracing + metrics (restoring the previous flags on
/// destruction), resets both, streams iteration records to
/// <base>.metrics.jsonl, and writes <base>.trace.json at the end.
/// One session at a time -- construction resets the global accumulators.
class ProfileSession {
 public:
  explicit ProfileSession(const std::string& base_path);
  ~ProfileSession();
  ProfileSession(const ProfileSession&) = delete;
  ProfileSession& operator=(const ProfileSession&) = delete;

  void write_iteration(const IterationRecord& rec);

  [[nodiscard]] const std::string& metrics_path() const {
    return metrics_path_;
  }
  [[nodiscard]] const std::string& trace_path() const { return trace_path_; }

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::unique_ptr<std::ofstream> out_;
  bool prev_trace_ = false;
  bool prev_metrics_ = false;
};

}  // namespace mc::obs
