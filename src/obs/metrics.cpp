#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace mc::obs {

namespace {

bool env_obs_enabled() {
  const char* v = std::getenv("MC_OBS");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

std::atomic<bool>& metrics_flag() {
  static std::atomic<bool> flag{env_obs_enabled()};
  return flag;
}

/// Fixed per-rank accumulator slots: ranks 0..kMaxTrackedRanks-1, with one
/// shared overflow/unattributed slot at the end (rank < 0 or beyond the
/// table -- far past the scale minimpi jobs reach in-process).
constexpr int kMaxTrackedRanks = 256;
constexpr int kSlots = kMaxTrackedRanks + 1;

int slot_of(int rank) {
  return (rank < 0 || rank >= kMaxTrackedRanks) ? kMaxTrackedRanks : rank;
}

std::atomic<std::uint64_t>& acc(Channel c, int rank) {
  static std::atomic<std::uint64_t> table[kChannelCount][kSlots] = {};
  return table[static_cast<int>(c)][slot_of(rank)];
}

constexpr int kEriClassDim = kMaxEriClassL + 1;

struct AtomicEriClassStats {
  std::atomic<std::uint64_t> quartets{0};
  std::atomic<std::uint64_t> boys_elements{0};
  std::atomic<std::uint64_t> ns{0};
};

AtomicEriClassStats& eri_class_acc(int lbra, int lket) {
  static AtomicEriClassStats table[kEriClassDim][kEriClassDim] = {};
  const int a = std::clamp(lbra, 0, kMaxEriClassL);
  const int b = std::clamp(lket, 0, kMaxEriClassL);
  return table[a][b];
}

void append_double(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_size(std::string& out, std::size_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zu", v);
  out += buf;
}

}  // namespace

const char* channel_name(Channel c) {
  switch (c) {
    case Channel::kDlbWait: return "dlb_wait";
    case Channel::kGsum: return "gsum";
    case Channel::kBarrier: return "barrier";
    case Channel::kBroadcast: return "broadcast";
    case Channel::kPut: return "put";
    case Channel::kGet: return "get";
    case Channel::kAcc: return "acc";
  }
  return "unknown";
}

bool metrics_enabled() {
  return metrics_flag().load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool on) {
  metrics_flag().store(on, std::memory_order_relaxed);
}

void reset_metrics() {
  for (int c = 0; c < kChannelCount; ++c) {
    for (int s = -1; s < kMaxTrackedRanks; ++s) {
      acc(static_cast<Channel>(c), s).store(0, std::memory_order_relaxed);
    }
  }
  for (int a = 0; a <= kMaxEriClassL; ++a) {
    for (int b = 0; b <= kMaxEriClassL; ++b) {
      AtomicEriClassStats& s = eri_class_acc(a, b);
      s.quartets.store(0, std::memory_order_relaxed);
      s.boys_elements.store(0, std::memory_order_relaxed);
      s.ns.store(0, std::memory_order_relaxed);
    }
  }
}

void add_eri_class(int lbra, int lket, std::uint64_t quartets,
                   std::uint64_t boys_elements, std::uint64_t ns) {
  AtomicEriClassStats& s = eri_class_acc(lbra, lket);
  s.quartets.fetch_add(quartets, std::memory_order_relaxed);
  s.boys_elements.fetch_add(boys_elements, std::memory_order_relaxed);
  s.ns.fetch_add(ns, std::memory_order_relaxed);
}

EriClassStats eri_class_stats(int lbra, int lket) {
  const AtomicEriClassStats& s = eri_class_acc(lbra, lket);
  return {s.quartets.load(std::memory_order_relaxed),
          s.boys_elements.load(std::memory_order_relaxed),
          s.ns.load(std::memory_order_relaxed)};
}

EriClassStats eri_class_totals() {
  EriClassStats total;
  for (int a = 0; a <= kMaxEriClassL; ++a) {
    for (int b = 0; b <= kMaxEriClassL; ++b) {
      const EriClassStats s = eri_class_stats(a, b);
      total.quartets += s.quartets;
      total.boys_elements += s.boys_elements;
      total.ns += s.ns;
    }
  }
  return total;
}

void add_channel_ns(Channel c, int rank, std::uint64_t ns) {
  acc(c, rank).fetch_add(ns, std::memory_order_relaxed);
}

std::uint64_t channel_ns(Channel c, int rank) {
  return acc(c, rank).load(std::memory_order_relaxed);
}

double channel_seconds(Channel c, int rank) {
  return static_cast<double>(channel_ns(c, rank)) * 1e-9;
}

double IterationRecord::load_imbalance() const {
  if (ranks.empty()) return 1.0;
  std::size_t total = 0;
  std::size_t mx = 0;
  for (const auto& r : ranks) {
    total += r.quartets;
    mx = std::max(mx, r.quartets);
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(ranks.size());
  return static_cast<double>(mx) / mean;
}

std::string iteration_json(const IterationRecord& rec) {
  std::string out;
  out.reserve(512);
  out += "{\"type\":\"scf_iteration\",\"algorithm\":\"";
  out += rec.algorithm;
  out += "\",\"nranks\":";
  append_size(out, static_cast<std::size_t>(rec.nranks));
  out += ",\"nthreads\":";
  append_size(out, static_cast<std::size_t>(rec.nthreads));
  out += ",\"iter\":";
  append_size(out, static_cast<std::size_t>(rec.iteration));
  out += ",\"energy\":";
  append_double(out, rec.energy);
  out += ",\"delta_energy\":";
  append_double(out, rec.delta_energy);
  out += ",\"density_rms\":";
  append_double(out, rec.density_rms);
  out += ",\"full_rebuild\":";
  out += rec.full_rebuild ? "true" : "false";
  out += ",\"fock_seconds\":";
  append_double(out, rec.fock_seconds);
  out += ",\"quartets\":";
  append_size(out, rec.quartets);
  out += ",\"static_screened\":";
  append_size(out, rec.static_screened);
  out += ",\"density_screened\":";
  append_size(out, rec.density_screened);
  out += ",\"screening_predicted_quartets\":";
  append_size(out, rec.screening_predicted_quartets);
  out += ",\"load_imbalance\":";
  append_double(out, rec.load_imbalance());
  out += ",\"ranks\":[";
  for (std::size_t i = 0; i < rec.ranks.size(); ++i) {
    const RankIterationMetrics& r = rec.ranks[i];
    if (i > 0) out += ",";
    out += "{\"rank\":";
    char rankbuf[16];
    std::snprintf(rankbuf, sizeof(rankbuf), "%d", r.rank);
    out += rankbuf;
    out += ",\"pairs_claimed\":";
    append_size(out, r.pairs_claimed);
    out += ",\"quartets\":";
    append_size(out, r.quartets);
    out += ",\"static_screened\":";
    append_size(out, r.static_screened);
    out += ",\"density_screened\":";
    append_size(out, r.density_screened);
    out += ",\"thread_quartets\":[";
    for (std::size_t t = 0; t < r.thread_quartets.size(); ++t) {
      if (t > 0) out += ",";
      append_size(out, r.thread_quartets[t]);
    }
    out += "],\"dlb_wait_seconds\":";
    append_double(out, r.dlb_wait_seconds);
    out += ",\"gsum_seconds\":";
    append_double(out, r.gsum_seconds);
    out += ",\"barrier_seconds\":";
    append_double(out, r.barrier_seconds);
    out += ",\"peak_bytes\":";
    append_size(out, r.peak_bytes);
    out += ",\"tile_hits\":";
    append_size(out, r.tile_hits);
    out += ",\"tile_misses\":";
    append_size(out, r.tile_misses);
    out += "}";
  }
  out += "]}";
  return out;
}

void write_iteration_json(std::ostream& os, const IterationRecord& rec) {
  os << iteration_json(rec);
}

const char* job_outcome_name(JobOutcomeKind k) {
  switch (k) {
    case JobOutcomeKind::kConverged: return "converged";
    case JobOutcomeKind::kUnconverged: return "unconverged";
    case JobOutcomeKind::kRejected: return "rejected";
    case JobOutcomeKind::kAborted: return "aborted";
  }
  return "unknown";
}

namespace {

/// Minimal JSON string escape: job records carry caller-supplied labels
/// (tenant names, abort messages) that may contain quotes or backslashes.
void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_int(std::string& out, long v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%ld", v);
  out += buf;
}

}  // namespace

std::string job_record_json(const JobRecord& rec) {
  std::string out;
  out.reserve(384);
  out += "{\"type\":\"scf_job\",\"job\":";
  append_int(out, rec.job_id);
  out += ",\"tenant\":";
  append_escaped(out, rec.tenant);
  out += ",\"molecule\":";
  append_escaped(out, rec.molecule);
  out += ",\"basis\":";
  append_escaped(out, rec.basis);
  out += ",\"algorithm\":";
  append_escaped(out, rec.algorithm);
  out += ",\"nranks\":";
  append_int(out, rec.nranks);
  out += ",\"nthreads\":";
  append_int(out, rec.nthreads);
  out += ",\"priority\":";
  append_int(out, rec.priority);
  out += ",\"world\":";
  append_int(out, rec.world_id);
  out += ",\"outcome\":\"";
  out += job_outcome_name(rec.outcome);
  out += "\",\"reject_reason\":";
  append_escaped(out, rec.reject_reason);
  out += ",\"submit_seconds\":";
  append_double(out, rec.submit_seconds);
  out += ",\"queue_wait_seconds\":";
  append_double(out, rec.queue_wait_seconds);
  out += ",\"run_seconds\":";
  append_double(out, rec.run_seconds);
  out += ",\"queue_depth_at_admission\":";
  append_size(out, rec.queue_depth_at_admission);
  out += ",\"setup_cache_hit\":";
  out += rec.setup_cache_hit ? "true" : "false";
  out += ",\"density_cache_hit\":";
  out += rec.density_cache_hit ? "true" : "false";
  out += ",\"energy\":";
  append_double(out, rec.energy);
  out += ",\"iterations\":";
  append_int(out, rec.iterations);
  out += "}";
  return out;
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double pos =
      clamped / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

ProfileSession::ProfileSession(const std::string& base_path)
    : metrics_path_(base_path + ".metrics.jsonl"),
      trace_path_(base_path + ".trace.json"),
      prev_trace_(trace_enabled()),
      prev_metrics_(metrics_enabled()) {
  out_ = std::make_unique<std::ofstream>(metrics_path_, std::ios::trunc);
  MC_CHECK(static_cast<bool>(*out_),
           "cannot open profile metrics file: " + metrics_path_);
  set_trace_enabled(true);
  set_metrics_enabled(true);
  reset_trace();
  reset_metrics();
}

ProfileSession::~ProfileSession() {
  out_->flush();
  write_chrome_trace_file(trace_path_);
  set_trace_enabled(prev_trace_);
  set_metrics_enabled(prev_metrics_);
}

void ProfileSession::write_iteration(const IterationRecord& rec) {
  *out_ << iteration_json(rec) << "\n";
  out_->flush();
}

}  // namespace mc::obs
