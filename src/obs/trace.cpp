#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/memory_tracker.hpp"

namespace mc::obs {

namespace {

bool env_obs_enabled() {
  const char* v = std::getenv("MC_OBS");
  return v != nullptr && v[0] == '1' && v[1] == '\0';
}

std::atomic<bool>& trace_flag() {
  static std::atomic<bool> flag{env_obs_enabled()};
  return flag;
}

struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t t0 = 0;
  std::uint64_t t1 = 0;
  std::int32_t rank = -1;
};

/// Events per thread; wraparound overwrites the oldest (the tail of a long
/// run is usually the interesting part, and a bounded buffer keeps the
/// recording cost flat).
constexpr std::size_t kRingCapacity = std::size_t{1} << 14;

struct TraceBuffer {
  explicit TraceBuffer(int id_in) : id(id_in), events(kRingCapacity) {}

  const int id;
  std::vector<TraceEvent> events;
  /// Total events ever recorded; slot = count % kRingCapacity. The
  /// release store publishes the payload write for a quiescent reader.
  std::atomic<std::uint64_t> count{0};

  void push(const char* name, std::uint64_t t0, std::uint64_t t1, int rank) {
    const std::uint64_t n = count.load(std::memory_order_relaxed);
    events[n % kRingCapacity] = {name, t0, t1, rank};
    count.store(n + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;
};

/// Leaked intentionally: thread_local destructors of detached threads can
/// run after static destruction, and the buffers must outlive them.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

TraceBuffer& local_buffer() {
  thread_local TraceBuffer* buf = [] {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    r.buffers.push_back(
        std::make_unique<TraceBuffer>(static_cast<int>(r.buffers.size())));
    return r.buffers.back().get();
  }();
  return *buf;
}

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// First-use epoch so exported timestamps start near zero.
std::uint64_t process_epoch_ns() {
  static const std::uint64_t epoch = steady_now_ns();
  return epoch;
}

void write_json_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      os << c;
    }
  }
}

}  // namespace

std::uint64_t monotonic_ns() { return steady_now_ns(); }

bool trace_enabled() {
  return trace_flag().load(std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  trace_flag().store(on, std::memory_order_relaxed);
}

void reset_trace() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& b : r.buffers) b->count.store(0, std::memory_order_release);
}

std::size_t trace_event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::size_t total = 0;
  for (const auto& b : r.buffers) {
    const std::uint64_t n = b->count.load(std::memory_order_acquire);
    total += static_cast<std::size_t>(std::min<std::uint64_t>(n, kRingCapacity));
  }
  return total;
}

std::size_t trace_events_dropped() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  std::size_t dropped = 0;
  for (const auto& b : r.buffers) {
    const std::uint64_t n = b->count.load(std::memory_order_acquire);
    if (n > kRingCapacity) dropped += static_cast<std::size_t>(n - kRingCapacity);
  }
  return dropped;
}

namespace detail {

void record_event(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns) {
  local_buffer().push(name, t0_ns, t1_ns, MemoryTracker::current_rank());
}

}  // namespace detail

void write_chrome_trace(std::ostream& os) {
  const std::uint64_t epoch = process_epoch_ns();
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  // Process (= rank) name metadata so the viewer labels the lanes.
  std::vector<int> ranks_seen;
  for (const auto& b : r.buffers) {
    const std::uint64_t n = b->count.load(std::memory_order_acquire);
    const std::uint64_t held = std::min<std::uint64_t>(n, kRingCapacity);
    // Oldest surviving event first (chronological within a thread).
    const std::uint64_t start = n - held;
    for (std::uint64_t k = start; k < n; ++k) {
      const TraceEvent& ev = b->events[k % kRingCapacity];
      bool known = false;
      for (int rk : ranks_seen) known = known || rk == ev.rank;
      if (!known) {
        ranks_seen.push_back(ev.rank);
        if (!first) os << ",";
        first = false;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << ev.rank
           << ",\"args\":{\"name\":\""
           << (ev.rank < 0 ? "serial" : "rank ") ;
        if (ev.rank >= 0) os << ev.rank;
        os << "\"}}";
      }
      if (!first) os << ",";
      first = false;
      const double ts_us =
          static_cast<double>(ev.t0 >= epoch ? ev.t0 - epoch : 0) / 1000.0;
      const double dur_us =
          static_cast<double>(ev.t1 >= ev.t0 ? ev.t1 - ev.t0 : 0) / 1000.0;
      os << "{\"name\":\"";
      write_json_escaped(os, ev.name);
      os << "\",\"cat\":\"obs\",\"ph\":\"X\",\"pid\":" << ev.rank
         << ",\"tid\":" << b->id << ",\"ts\":" << ts_us << ",\"dur\":"
         << dur_us << "}";
    }
  }
  os << "]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace mc::obs
