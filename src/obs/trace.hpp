#pragma once
// Scoped trace events (DESIGN.md section 10): per rank x thread spans on
// the monotonic clock, held in per-thread ring buffers and exported as
// chrome-trace JSON (open in chrome://tracing or https://ui.perfetto.dev).
//
// Two gates keep this off the hot path:
//  * Compile time: MC_OBS (default 1). An MC_OBS=0 translation unit sees
//    the MC_OBS_TRACE macro expand to nothing and the ScopedTrace alias
//    collapse to an empty type -- zero trace code is generated
//    (test_obs_overhead builds itself both ways and asserts this).
//  * Run time: even when compiled in, a ScopedTrace constructor is a
//    single relaxed atomic load until tracing is enabled -- by MC_OBS=1 in
//    the environment, a --profile run (obs::ProfileSession), or
//    set_trace_enabled(true).
//
// Threading contract: each thread writes only its own ring buffer (the
// buffer outlives the thread; OpenMP pool threads reuse theirs across
// parallel regions). The event payload is published with a release store
// of the event count and read back with an acquire load, so exporting
// from a quiescent point (after run_spmd joins / outside parallel
// regions) is race-free, including under TSan. Rank attribution comes
// from MemoryTracker::current_rank() -- the same thread-local the memory
// accounting uses -- so rank threads and RankScope'd OpenMP workers tag
// their events correctly; serial code records rank -1.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#ifndef MC_OBS
#define MC_OBS 1
#endif

namespace mc::obs {

/// Nanoseconds on the process-wide monotonic (steady) clock.
[[nodiscard]] std::uint64_t monotonic_ns();

[[nodiscard]] bool trace_enabled();
void set_trace_enabled(bool on);

/// Drop all recorded events. Buffers stay registered with their threads;
/// call only from a quiescent point (no concurrent recording).
void reset_trace();
/// Events currently held across all thread buffers (caps at the total
/// ring capacity once buffers wrap).
[[nodiscard]] std::size_t trace_event_count();
/// Events lost to ring-buffer wraparound since the last reset.
[[nodiscard]] std::size_t trace_events_dropped();

/// Write every recorded event as chrome-trace JSON ("X" duration events,
/// pid = rank, tid = per-thread buffer id, ts/dur in microseconds).
void write_chrome_trace(std::ostream& os);
/// write_chrome_trace to a file; returns false if the file cannot be
/// opened.
bool write_chrome_trace_file(const std::string& path);

namespace detail {
/// Append one completed span to the calling thread's ring buffer.
/// `name` must have static storage duration (string literal).
void record_event(const char* name, std::uint64_t t0_ns, std::uint64_t t1_ns);
}  // namespace detail

/// RAII span: records [construction, destruction) under `name` (a string
/// literal) when tracing is enabled.
class ScopedTraceImpl {
 public:
  explicit ScopedTraceImpl(const char* name) {
    if (trace_enabled()) {
      name_ = name;
      t0_ = monotonic_ns();
    }
  }
  ~ScopedTraceImpl() {
    if (name_ != nullptr) detail::record_event(name_, t0_, monotonic_ns());
  }
  ScopedTraceImpl(const ScopedTraceImpl&) = delete;
  ScopedTraceImpl& operator=(const ScopedTraceImpl&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t t0_ = 0;
};

/// The MC_OBS=0 stand-in: empty, does nothing, optimizes away entirely.
struct ScopedTraceNoop {
  explicit ScopedTraceNoop(const char* /*name*/) {}
};

#if MC_OBS
using ScopedTrace = ScopedTraceImpl;
#else
using ScopedTrace = ScopedTraceNoop;
#endif

}  // namespace mc::obs

#define MC_OBS_CONCAT2(a, b) a##b
#define MC_OBS_CONCAT(a, b) MC_OBS_CONCAT2(a, b)

/// Trace the enclosing scope: MC_OBS_TRACE("fock_build");
#if MC_OBS
#define MC_OBS_TRACE(name) \
  ::mc::obs::ScopedTrace MC_OBS_CONCAT(mc_obs_scope_, __LINE__)(name)
#else
#define MC_OBS_TRACE(name) static_cast<void>(0)
#endif
