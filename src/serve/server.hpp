#pragma once
// The multi-tenant SCF job server (DESIGN.md section 15): a long-lived
// object that accepts concurrent SCF jobs through a bounded priority
// queue (serve/job_queue.hpp), dispatches them onto a pool of minimpi
// worlds (par/world_pool.hpp) so several Fock builds run side by side,
// and layers warm caches (serve/warm_cache.hpp) so repeat
// (molecule, basis) requests reuse the Schwarz/pair-list setup and are
// seeded from previously converged densities.
//
// Threading model: submit() is callable from any number of client
// threads; jobs run on the pool's world threads (each world is itself an
// SPMD team of `nranks` rank threads); wait() blocks the caller until
// the given job reaches a terminal state. shutdown() is graceful --
// admitted jobs drain, new submissions are rejected -- and idempotent.
//
// Every job, accepted or rejected, produces exactly one obs::JobRecord:
// appended to the in-memory log, streamed as a JSON line to
// `telemetry_path` when set, and folded into the shutdown summary.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "par/world_pool.hpp"
#include "serve/job.hpp"
#include "serve/job_queue.hpp"
#include "serve/warm_cache.hpp"

namespace mc::serve {

struct ServerOptions {
  /// Pooled minimpi worlds = jobs that may run concurrently. Total rank
  /// threads in flight is bounded by nworlds * max per-job nranks.
  int nworlds = 2;
  /// Jobs waiting beyond this are rejected at admission.
  std::size_t max_queue_depth = 64;
  /// Per-tenant ceiling on waiting jobs (0 = no per-tenant cap).
  std::size_t max_pending_per_tenant = 0;
  /// LRU capacities; 0 disables the respective cache.
  std::size_t setup_cache_capacity = 16;
  std::size_t density_cache_capacity = 32;
  /// Seed repeat requests from cached converged densities. Off: repeat
  /// jobs still reuse the setup cache but start from the core guess.
  bool warm_start = true;
  /// When non-empty, one obs::JobRecord JSON line per terminal job is
  /// appended here (the CI serving lane's artifact).
  std::string telemetry_path;
};

/// Aggregates over every terminal record, computed at shutdown.
struct ServerSummary {
  long submitted = 0;  ///< accepted + rejected
  long accepted = 0;
  long rejected = 0;
  long converged = 0;
  long unconverged = 0;
  long aborted = 0;
  /// Latency percentiles over jobs that ran (rejected jobs excluded).
  double queue_wait_p50_seconds = 0.0;
  double queue_wait_p95_seconds = 0.0;
  double run_p50_seconds = 0.0;
  double run_p95_seconds = 0.0;
  long setup_cache_hits = 0;
  long setup_cache_misses = 0;
  long density_cache_hits = 0;
  long density_cache_misses = 0;
};

class ScfJobServer {
 public:
  /// Starts the world pool immediately; the server is accepting jobs as
  /// soon as the constructor returns.
  explicit ScfJobServer(ServerOptions options = {});
  /// Shuts down gracefully if shutdown() was not called.
  ~ScfJobServer();
  ScfJobServer(const ScfJobServer&) = delete;
  ScfJobServer& operator=(const ScfJobServer&) = delete;

  /// Validate + admission-control `spec`. Synchronous and non-blocking:
  /// the verdict (and a job id, even for rejections) comes back
  /// immediately; the work happens on a pool world. Thread-safe.
  SubmitResult submit(JobSpec spec);

  /// Block until `job_id` reaches a terminal state and return its
  /// outcome. Rejected ids return immediately. Unknown ids throw.
  JobOutcome wait(long job_id);

  /// Graceful shutdown: stop admitting, drain admitted jobs, join the
  /// pool, compute the summary. Idempotent -- later calls return the
  /// same summary.
  ServerSummary shutdown();

  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  /// Worlds that ran at least one job (valid after shutdown).
  [[nodiscard]] int worlds_used() const;
  /// Snapshot of every terminal record so far (telemetry order).
  [[nodiscard]] std::vector<obs::JobRecord> records() const;
  [[nodiscard]] const ServerOptions& options() const { return opt_; }
  [[nodiscard]] long setup_cache_hits() const { return setup_cache_.hits(); }
  [[nodiscard]] long density_cache_hits() const {
    return density_cache_.hits();
  }

 private:
  [[nodiscard]] double now_seconds() const;
  /// Spec validation before admission; empty string = valid.
  [[nodiscard]] static std::string validate(const JobSpec& spec);
  /// Runs one admitted job on pool world `world` (never throws).
  void run_one(QueuedJob job, int world);
  /// Record a terminal state: log + telemetry line + wake waiters.
  void finish(const obs::JobRecord& rec, JobOutcome outcome);
  /// Fold records_ into a summary; caller holds mu_.
  [[nodiscard]] ServerSummary summarize_locked() const;

  ServerOptions opt_;
  std::chrono::steady_clock::time_point start_;
  JobQueue queue_;
  SetupCache setup_cache_;
  DensityCache density_cache_;

  mutable std::mutex mu_;  // guards everything below
  std::condition_variable done_cv_;
  std::unique_ptr<std::ofstream> telemetry_;
  std::map<long, JobOutcome> done_;
  std::vector<obs::JobRecord> records_;
  long next_id_ = 0;
  bool shut_down_ = false;
  ServerSummary summary_;
  std::once_flag shutdown_once_;  // serializes the close+join sequence

  /// Last member: its world threads start pulling in the constructor and
  /// must be joined before anything above is destroyed.
  std::unique_ptr<par::WorldPool> pool_;
};

}  // namespace mc::serve
