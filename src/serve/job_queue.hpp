#pragma once
// Thread-safe bounded priority queue with admission control -- the intake
// stage of the SCF job server (DESIGN.md section 15.2). Admission is
// decided synchronously under the queue lock: a job is either admitted
// (and will eventually reach a world) or rejected with a reason; there is
// no unbounded buffering and no silent drop. Ordering is applied at
// dequeue time: highest priority first, submission order within a
// priority, so the pool always pulls the most urgent admitted job.

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace mc::serve {

/// An admitted job plus the queue-side bookkeeping its telemetry needs.
struct QueuedJob {
  long id = -1;
  JobSpec spec;
  long seq = 0;  ///< admission order, the priority tiebreak
  /// Queue depth observed at admission (this job included).
  std::size_t depth_at_admission = 0;
  /// Seconds since server start at admission (steady, server-local).
  double admitted_seconds = 0.0;
};

class JobQueue {
 public:
  struct Admit {
    bool accepted = false;
    std::string reason;
    std::size_t depth = 0;  ///< depth after the decision
  };

  /// `max_depth`: jobs waiting (not yet pulled by a world) above this are
  /// rejected. `max_pending_per_tenant`: per-tenant ceiling on waiting
  /// jobs; 0 disables the tenant cap.
  JobQueue(std::size_t max_depth, std::size_t max_pending_per_tenant);

  /// Admission control + enqueue. O(log n).
  Admit push(QueuedJob job);

  /// Blocks until a job is available or the queue is closed and drained.
  /// Returns false only in the latter case (the world-pool exit signal).
  bool pop(QueuedJob& out);

  /// Stop admitting; wake blocked poppers once the backlog drains.
  /// Already-admitted jobs are still delivered (graceful shutdown).
  void close();

  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] bool closed() const;

 private:
  const std::size_t max_depth_;
  const std::size_t max_per_tenant_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<QueuedJob> heap_;  // max-heap: (priority desc, seq asc)
  std::map<std::string, std::size_t> pending_per_tenant_;
  long next_seq_ = 0;
  bool closed_ = false;
};

}  // namespace mc::serve
