#include "serve/warm_cache.hpp"

#include <cstring>

namespace mc::serve {

namespace {

/// splitmix64 finalizer: the same mixing the fuzz Rng uses, chosen for
/// cross-platform determinism (no libstdc++ hash dependence).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ mix64(v));
}

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

std::uint64_t string_hash(const std::string& s) {
  std::uint64_t h = 0x53545221ULL;  // "STR!"
  for (const char c : s) {
    h = combine(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return combine(h, s.size());
}

}  // namespace

std::uint64_t molecule_fingerprint(const chem::Molecule& mol) {
  std::uint64_t h = 0x4d4f4c21ULL;  // "MOL!"
  h = combine(h, mol.natoms());
  for (const chem::Atom& a : mol.atoms()) {
    h = combine(h, static_cast<std::uint64_t>(a.z));
    for (const double c : a.xyz) h = combine(h, double_bits(c));
  }
  return h;
}

std::uint64_t setup_fingerprint(const chem::Molecule& mol,
                                const std::string& basis,
                                const std::vector<std::string>& basis_per_atom,
                                double schwarz_threshold) {
  std::uint64_t h = molecule_fingerprint(mol);
  if (basis_per_atom.empty()) {
    h = combine(h, string_hash(basis));
  } else {
    h = combine(h, 0x4d495845ULL);  // "MIXE": never aliases the uniform form
    for (const std::string& b : basis_per_atom) h = combine(h, string_hash(b));
  }
  return combine(h, double_bits(schwarz_threshold));
}

std::uint64_t density_fingerprint(std::uint64_t setup_key, int charge) {
  return combine(setup_key,
                 static_cast<std::uint64_t>(static_cast<std::int64_t>(charge)));
}

ScfSetup build_setup(const chem::Molecule& mol, const std::string& basis,
                     const std::vector<std::string>& basis_per_atom,
                     double schwarz_threshold) {
  ScfSetup setup;
  auto bs = std::make_shared<const basis::BasisSet>(
      basis_per_atom.empty() ? basis::BasisSet::build(mol, basis)
                             : basis::BasisSet::build_mixed(mol,
                                                            basis_per_atom));
  auto eri = std::make_shared<const ints::EriEngine>(*bs);
  auto screening =
      std::make_shared<const ints::Screening>(*eri, schwarz_threshold);
  // EriEngine references the BasisSet and Screening references the
  // EriEngine; ScfSetup is only ever shared as a whole (the cache stores
  // shared_ptr<const ScfSetup>), so the chain stays alive together.
  setup.basis_set = std::move(bs);
  setup.eri = std::move(eri);
  setup.screening = std::move(screening);
  return setup;
}

}  // namespace mc::serve
