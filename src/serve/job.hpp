#pragma once
// Job-facing types of the SCF job server (DESIGN.md section 15): what a
// tenant submits, what admission control answers, and what a finished job
// reports back. The wire-facing telemetry record lives in obs/metrics.hpp
// (obs::JobRecord) -- this header is the in-process API surface.

#include <string>
#include <vector>

#include "chem/molecule.hpp"
#include "core/memory_model.hpp"
#include "obs/metrics.hpp"
#include "scf/scf_driver.hpp"

namespace mc::serve {

/// One SCF job request. The server copies the spec at submission, so the
/// caller may reuse or destroy it immediately.
struct JobSpec {
  /// Tenant name: the unit of admission fairness (per-tenant pending caps)
  /// and a telemetry dimension.
  std::string tenant = "default";
  /// Higher runs sooner; ties dispatch in submission order. Priority is
  /// applied at dequeue time, so a late high-priority job overtakes
  /// already-queued normal work.
  int priority = 0;
  /// Human-readable molecule label for telemetry ("benzene", "graphene:8",
  /// a fuzz-seed string, ...). Empty: the server substitutes "natoms=N".
  std::string molecule_label;
  chem::Molecule mol;
  std::string basis = "STO-3G";
  /// Non-empty: per-atom mixed basis assignment (overrides `basis`; size
  /// must equal mol.natoms()).
  std::vector<std::string> basis_per_atom;
  int charge = 0;
  core::ScfAlgorithm algorithm = core::ScfAlgorithm::kSharedFock;
  int nranks = 1;
  int nthreads = 1;
  double schwarz_threshold = 1e-10;
  /// SCF controls (tolerances, incremental policy, ...). profile_path must
  /// stay empty: the global ProfileSession is one-at-a-time, which cannot
  /// hold on a multi-tenant server, so profiled submissions are rejected.
  scf::ScfOptions scf;

  /// The label the telemetry record carries.
  [[nodiscard]] std::string label() const {
    return molecule_label.empty()
               ? "natoms=" + std::to_string(mol.natoms())
               : molecule_label;
  }
  /// The basis name as reported (mixed assignments collapse to "mixed").
  [[nodiscard]] std::string basis_label() const {
    if (basis_per_atom.empty()) return basis;
    for (const std::string& b : basis_per_atom) {
      if (b != basis_per_atom.front()) return "mixed";
    }
    return basis_per_atom.front();
  }
};

/// Admission-control verdict, returned synchronously from submit().
struct SubmitResult {
  bool accepted = false;
  /// Assigned even to rejected jobs (their telemetry record carries it).
  long job_id = -1;
  /// Why admission refused -- "queue full (depth 64)", "tenant 'x' has too
  /// many pending jobs", spec validation text. Empty when accepted.
  std::string reason;
  /// Queue depth observed at the admission decision.
  std::size_t queue_depth = 0;
};

/// Terminal report of one job, returned from wait()/shutdown paths.
struct JobOutcome {
  long job_id = -1;
  obs::JobOutcomeKind outcome = obs::JobOutcomeKind::kRejected;
  double energy = 0.0;
  int iterations = 0;
  bool setup_cache_hit = false;
  bool density_cache_hit = false;
  /// Abort error text or admission reject reason; empty otherwise.
  std::string error;
  double queue_wait_seconds = 0.0;
  double run_seconds = 0.0;
};

}  // namespace mc::serve
