#include "serve/job_queue.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace mc::serve {

namespace {

/// std::push_heap comparator for a max-heap ordered by (priority desc,
/// seq asc): `a < b` when b should dispatch first.
bool dispatch_after(const QueuedJob& a, const QueuedJob& b) {
  if (a.spec.priority != b.spec.priority) {
    return a.spec.priority < b.spec.priority;
  }
  return a.seq > b.seq;
}

}  // namespace

JobQueue::JobQueue(std::size_t max_depth, std::size_t max_pending_per_tenant)
    : max_depth_(max_depth), max_per_tenant_(max_pending_per_tenant) {
  MC_CHECK(max_depth_ >= 1, "JobQueue needs a positive depth bound");
}

JobQueue::Admit JobQueue::push(QueuedJob job) {
  std::lock_guard<std::mutex> lk(mu_);
  Admit a;
  a.depth = heap_.size();
  if (closed_) {
    a.reason = "server is shutting down";
    return a;
  }
  if (heap_.size() >= max_depth_) {
    a.reason = "queue full (depth " + std::to_string(heap_.size()) + ")";
    return a;
  }
  if (max_per_tenant_ > 0) {
    const auto it = pending_per_tenant_.find(job.spec.tenant);
    if (it != pending_per_tenant_.end() && it->second >= max_per_tenant_) {
      a.reason = "tenant '" + job.spec.tenant + "' has " +
                 std::to_string(it->second) + " jobs pending (cap " +
                 std::to_string(max_per_tenant_) + ")";
      return a;
    }
  }
  job.seq = next_seq_++;
  job.depth_at_admission = heap_.size() + 1;  // this job included
  ++pending_per_tenant_[job.spec.tenant];
  heap_.push_back(std::move(job));
  std::push_heap(heap_.begin(), heap_.end(), dispatch_after);
  a.accepted = true;
  a.depth = heap_.size();
  cv_.notify_one();
  return a;
}

bool JobQueue::pop(QueuedJob& out) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !heap_.empty() || closed_; });
  if (heap_.empty()) return false;  // closed and drained
  std::pop_heap(heap_.begin(), heap_.end(), dispatch_after);
  out = std::move(heap_.back());
  heap_.pop_back();
  auto it = pending_per_tenant_.find(out.spec.tenant);
  if (it != pending_per_tenant_.end() && --(it->second) == 0) {
    pending_per_tenant_.erase(it);
  }
  return true;
}

void JobQueue::close() {
  std::lock_guard<std::mutex> lk(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return heap_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

}  // namespace mc::serve
