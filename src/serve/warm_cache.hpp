#pragma once
// Warm caches of the SCF job server (DESIGN.md section 15.3), keyed by
// (molecule, basis) fingerprints:
//
//  * SetupCache  -- the expensive geometry-derived setup (BasisSet,
//    EriEngine, Schwarz Screening with its sorted pair lists). Immutable
//    after construction and read-only during Fock builds, so one cached
//    instance backs any number of concurrent worlds. Key includes the
//    Schwarz threshold: a different cutoff is a different pair list.
//  * DensityCache -- previously converged densities. A repeat
//    (molecule, basis, charge) request is seeded from the cached density
//    instead of the core-Hamiltonian guess, converging in strictly fewer
//    iterations to the same fixed point (the SCF answer does not depend on
//    the starting guess; tests/test_serve.cpp pins this).
//
// Fingerprints hash the exact double bit patterns (coordinates,
// thresholds), so "the same molecule" means bitwise the same geometry --
// two jitters of a fuzz template never alias.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "basis/basis_set.hpp"
#include "chem/molecule.hpp"
#include "ints/eri.hpp"
#include "ints/screening.hpp"
#include "la/matrix.hpp"

namespace mc::serve {

/// Order-sensitive 64-bit fingerprint of atom numbers and coordinate bit
/// patterns (splitmix64-style mixing; deterministic across processes).
[[nodiscard]] std::uint64_t molecule_fingerprint(const chem::Molecule& mol);

/// Key of the setup cache: molecule + per-atom basis assignment + Schwarz
/// threshold. A uniform `basis` with empty `basis_per_atom` and the
/// equivalent all-same per-atom vector produce different keys by design --
/// callers normalize (the server always passes what the job spec carried).
[[nodiscard]] std::uint64_t setup_fingerprint(
    const chem::Molecule& mol, const std::string& basis,
    const std::vector<std::string>& basis_per_atom, double schwarz_threshold);

/// Key of the density cache: the setup key refined by net charge (the
/// converged density depends on the electron count).
[[nodiscard]] std::uint64_t density_fingerprint(std::uint64_t setup_key,
                                                int charge);

/// The shared immutable per-(molecule, basis) setup. EriEngine holds no
/// shared mutable state and Screening is read-only after construction, so
/// concurrent worlds may use one instance freely.
struct ScfSetup {
  std::shared_ptr<const basis::BasisSet> basis_set;
  std::shared_ptr<const ints::EriEngine> eri;
  std::shared_ptr<const ints::Screening> screening;
};

/// Build a fresh setup (cache miss path). The EriEngine references the
/// BasisSet and the Screening references the EriEngine, so the shared_ptrs
/// keep the whole chain alive together.
[[nodiscard]] ScfSetup build_setup(
    const chem::Molecule& mol, const std::string& basis,
    const std::vector<std::string>& basis_per_atom, double schwarz_threshold);

/// A cached converged state: the warm-start seed plus the bookkeeping the
/// telemetry wants to compare against.
struct DensitySeed {
  la::Matrix density;
  double energy = 0.0;
  int iterations = 0;  ///< iterations the producing (cold) run took
};

/// Thread-safe LRU cache of shared immutable values. capacity 0 disables
/// caching entirely (every get misses, put is a no-op) -- the knob for
/// cold-baseline benchmarking.
template <typename V>
class WarmCache {
 public:
  explicit WarmCache(std::size_t capacity) : capacity_(capacity) {}

  /// Hit: refresh LRU position and return the value. Miss: nullptr.
  /// Both update the hit/miss counters.
  std::shared_ptr<const V> get(std::uint64_t key) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return it->second->second;
  }

  /// Insert (or refresh) `key`; evicts the least-recently-used entry past
  /// capacity. Re-putting an existing key replaces its value.
  void put(std::uint64_t key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    index_[key] = lru_.begin();
    if (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return lru_.size();
  }
  [[nodiscard]] long hits() const {
    std::lock_guard<std::mutex> lk(mu_);
    return hits_;
  }
  [[nodiscard]] long misses() const {
    std::lock_guard<std::mutex> lk(mu_);
    return misses_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<std::pair<std::uint64_t, std::shared_ptr<const V>>> lru_;
  std::unordered_map<
      std::uint64_t,
      typename std::list<
          std::pair<std::uint64_t, std::shared_ptr<const V>>>::iterator>
      index_;
  long hits_ = 0;
  long misses_ = 0;
};

using SetupCache = WarmCache<ScfSetup>;
using DensityCache = WarmCache<DensitySeed>;

}  // namespace mc::serve
