#include "serve/server.hpp"

#include <exception>
#include <utility>

#include "common/error.hpp"
#include "core/memory_model.hpp"
#include "core/parallel_scf.hpp"

namespace mc::serve {

ScfJobServer::ScfJobServer(ServerOptions options)
    : opt_(std::move(options)),
      start_(std::chrono::steady_clock::now()),
      queue_(opt_.max_queue_depth, opt_.max_pending_per_tenant),
      setup_cache_(opt_.setup_cache_capacity),
      density_cache_(opt_.density_cache_capacity) {
  MC_CHECK(opt_.nworlds >= 1, "ScfJobServer needs at least one world");
  if (!opt_.telemetry_path.empty()) {
    telemetry_ = std::make_unique<std::ofstream>(opt_.telemetry_path,
                                                 std::ios::trunc);
    MC_CHECK(telemetry_->good(), "ScfJobServer: cannot open telemetry path '" +
                                     opt_.telemetry_path + "'");
  }
  pool_ = std::make_unique<par::WorldPool>(
      opt_.nworlds, [this](int world) -> par::PooledTask {
        QueuedJob job;
        if (!queue_.pop(job)) return {};  // closed and drained
        return [this, j = std::move(job), world]() mutable {
          run_one(std::move(j), world);
        };
      });
}

ScfJobServer::~ScfJobServer() { shutdown(); }

double ScfJobServer::now_seconds() const {
  const auto dt = std::chrono::steady_clock::now() - start_;
  return std::chrono::duration<double>(dt).count();
}

std::string ScfJobServer::validate(const JobSpec& spec) {
  if (spec.mol.natoms() == 0) return "molecule has no atoms";
  if (spec.nranks < 1) return "nranks must be >= 1";
  if (spec.nthreads < 1) return "nthreads must be >= 1";
  if (!spec.basis_per_atom.empty() &&
      spec.basis_per_atom.size() != spec.mol.natoms()) {
    return "basis_per_atom size " + std::to_string(spec.basis_per_atom.size()) +
           " does not match natoms " + std::to_string(spec.mol.natoms());
  }
  const int nelec = spec.mol.nelectrons(spec.charge);
  if (nelec <= 0 || nelec % 2 != 0) {
    return "closed-shell RHF needs a positive even electron count (got " +
           std::to_string(nelec) + ")";
  }
  if (!spec.scf.profile_path.empty()) {
    return "profiled jobs are not servable (the profile session is global)";
  }
  return {};
}

SubmitResult ScfJobServer::submit(JobSpec spec) {
  SubmitResult res;

  obs::JobRecord rec;
  rec.tenant = spec.tenant;
  rec.molecule = spec.label();
  rec.basis = spec.basis_label();
  rec.algorithm = core::algorithm_name(spec.algorithm);
  rec.nranks = spec.nranks;
  rec.nthreads = spec.nthreads;
  rec.priority = spec.priority;
  rec.submit_seconds = now_seconds();

  {
    std::lock_guard<std::mutex> lk(mu_);
    res.job_id = next_id_++;
  }
  rec.job_id = res.job_id;

  std::string why = validate(spec);
  if (why.empty()) {
    QueuedJob job;
    job.id = res.job_id;
    job.spec = std::move(spec);
    job.admitted_seconds = rec.submit_seconds;
    const JobQueue::Admit admit = queue_.push(std::move(job));
    res.queue_depth = admit.depth;
    if (admit.accepted) {
      res.accepted = true;
      return res;  // the terminal record is written by run_one
    }
    why = admit.reason;
  }

  // Rejected (validation or admission): terminal immediately.
  res.reason = why;
  rec.outcome = obs::JobOutcomeKind::kRejected;
  rec.reject_reason = why;
  rec.queue_depth_at_admission = res.queue_depth;
  JobOutcome out;
  out.job_id = res.job_id;
  out.outcome = obs::JobOutcomeKind::kRejected;
  out.error = why;
  finish(rec, std::move(out));
  return res;
}

void ScfJobServer::run_one(QueuedJob job, int world) {
  const double dispatched = now_seconds();
  const JobSpec& spec = job.spec;

  obs::JobRecord rec;
  rec.job_id = job.id;
  rec.tenant = spec.tenant;
  rec.molecule = spec.label();
  rec.basis = spec.basis_label();
  rec.algorithm = core::algorithm_name(spec.algorithm);
  rec.nranks = spec.nranks;
  rec.nthreads = spec.nthreads;
  rec.priority = spec.priority;
  rec.world_id = world;
  rec.submit_seconds = job.admitted_seconds;
  rec.queue_wait_seconds = dispatched - job.admitted_seconds;
  rec.queue_depth_at_admission = job.depth_at_admission;

  JobOutcome out;
  out.job_id = job.id;
  out.queue_wait_seconds = rec.queue_wait_seconds;

  // Warm caches. The setup is keyed by (geometry bits, basis assignment,
  // Schwarz threshold); the density seed additionally by charge.
  const std::uint64_t setup_key = setup_fingerprint(
      spec.mol, spec.basis, spec.basis_per_atom, spec.schwarz_threshold);
  core::ParallelScfContext ctx;
  ctx.exclusive = false;  // concurrent jobs share the process-global trackers

  std::shared_ptr<const ScfSetup> setup = setup_cache_.get(setup_key);
  rec.setup_cache_hit = setup != nullptr;
  try {
    if (setup == nullptr) {
      setup = std::make_shared<const ScfSetup>(build_setup(
          spec.mol, spec.basis, spec.basis_per_atom, spec.schwarz_threshold));
      setup_cache_.put(setup_key, setup);
    }
    ctx.basis_set = setup->basis_set;
    ctx.eri = setup->eri;
    ctx.screening = setup->screening;

    const std::uint64_t density_key =
        density_fingerprint(setup_key, spec.charge);
    std::shared_ptr<const DensitySeed> seed;
    if (opt_.warm_start) {
      seed = density_cache_.get(density_key);
      if (seed != nullptr) {
        ctx.seed_density = std::shared_ptr<const la::Matrix>(
            seed, &seed->density);
      }
    }
    rec.density_cache_hit = seed != nullptr;

    core::ParallelScfConfig config;
    config.algorithm = spec.algorithm;
    config.nranks = spec.nranks;
    config.nthreads = spec.nthreads;
    config.basis = spec.basis;
    config.basis_per_atom = spec.basis_per_atom;
    config.schwarz_threshold = spec.schwarz_threshold;
    config.scf = spec.scf;
    config.scf.charge = spec.charge;  // the spec field is authoritative

    core::ParallelScfResult result = run_parallel_scf(spec.mol, config, ctx);

    rec.energy = result.scf.energy;
    rec.iterations = result.scf.iterations;
    rec.outcome = result.scf.converged ? obs::JobOutcomeKind::kConverged
                                       : obs::JobOutcomeKind::kUnconverged;
    if (result.scf.converged && opt_.warm_start) {
      auto produced = std::make_shared<DensitySeed>();
      produced->density = std::move(result.scf.density);
      produced->energy = result.scf.energy;
      produced->iterations = result.scf.iterations;
      density_cache_.put(density_key, std::move(produced));
    }
    out.energy = rec.energy;
    out.iterations = rec.iterations;
  } catch (const std::exception& e) {
    // A throwing job (bad basis name, injected fault, ...) must not take
    // the world thread down with it: record the abort and keep serving.
    rec.outcome = obs::JobOutcomeKind::kAborted;
    rec.reject_reason = e.what();
    out.error = e.what();
  } catch (...) {
    rec.outcome = obs::JobOutcomeKind::kAborted;
    rec.reject_reason = "unknown exception";
    out.error = "unknown exception";
  }
  out.outcome = rec.outcome;
  out.setup_cache_hit = rec.setup_cache_hit;
  out.density_cache_hit = rec.density_cache_hit;
  rec.run_seconds = now_seconds() - dispatched;
  out.run_seconds = rec.run_seconds;
  finish(rec, std::move(out));
}

void ScfJobServer::finish(const obs::JobRecord& rec, JobOutcome outcome) {
  std::lock_guard<std::mutex> lk(mu_);
  records_.push_back(rec);
  if (telemetry_ != nullptr) {
    (*telemetry_) << obs::job_record_json(rec) << '\n';
    telemetry_->flush();  // every terminal job is immediately durable
  }
  done_[rec.job_id] = std::move(outcome);
  done_cv_.notify_all();
}

JobOutcome ScfJobServer::wait(long job_id) {
  std::unique_lock<std::mutex> lk(mu_);
  MC_CHECK(job_id >= 0 && job_id < next_id_,
           "wait: unknown job id " + std::to_string(job_id));
  done_cv_.wait(lk, [&] { return done_.count(job_id) != 0; });
  return done_.at(job_id);
}

ServerSummary ScfJobServer::shutdown() {
  // call_once serializes concurrent shutdown() callers: late arrivals
  // block until the first finishes, then fall through to the summary.
  std::call_once(shutdown_once_, [this] {
    queue_.close();
    pool_->join();
    std::lock_guard<std::mutex> lk(mu_);
    shut_down_ = true;
    summary_ = summarize_locked();
  });
  std::lock_guard<std::mutex> lk(mu_);
  return summary_;
}

ServerSummary ScfJobServer::summarize_locked() const {
  ServerSummary s;
  std::vector<double> waits;
  std::vector<double> runs;
  for (const obs::JobRecord& r : records_) {
    ++s.submitted;
    switch (r.outcome) {
      case obs::JobOutcomeKind::kRejected:
        ++s.rejected;
        continue;
      case obs::JobOutcomeKind::kConverged:
        ++s.converged;
        break;
      case obs::JobOutcomeKind::kUnconverged:
        ++s.unconverged;
        break;
      case obs::JobOutcomeKind::kAborted:
        ++s.aborted;
        break;
    }
    ++s.accepted;
    waits.push_back(r.queue_wait_seconds);
    runs.push_back(r.run_seconds);
  }
  s.queue_wait_p50_seconds = obs::percentile(waits, 50.0);
  s.queue_wait_p95_seconds = obs::percentile(waits, 95.0);
  s.run_p50_seconds = obs::percentile(runs, 50.0);
  s.run_p95_seconds = obs::percentile(std::move(runs), 95.0);
  s.setup_cache_hits = setup_cache_.hits();
  s.setup_cache_misses = setup_cache_.misses();
  s.density_cache_hits = density_cache_.hits();
  s.density_cache_misses = density_cache_.misses();
  return s;
}

int ScfJobServer::worlds_used() const { return pool_->worlds_used(); }

std::vector<obs::JobRecord> ScfJobServer::records() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_;
}

}  // namespace mc::serve
