#include "knlsim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <unordered_map>

#include "common/error.hpp"
#include "ints/eri.hpp"
#include "ints/shell_pair.hpp"

namespace mc::knlsim {

namespace {

// Shell "type": shells are radially identical iff (l, exponent list) match;
// graphene has exactly one atom type, so the number of types is tiny.
struct TypeKey {
  int l;
  std::vector<double> exps;
  bool operator<(const TypeKey& o) const {
    if (l != o.l) return l < o.l;
    return exps < o.exps;
  }
};

// Q(type1, type2, r): Schwarz bound of a shell pair at distance r, via the
// production ERI kernel on representative shells.
double exact_pair_q(const basis::Shell& a, const basis::Shell& b) {
  ints::ShellPairData sp = ints::make_shell_pair(a, b);
  const int nc = sp.ncomp();
  std::vector<double> batch(static_cast<std::size_t>(nc) * nc, 0.0);
  ints::compute_eri_canonical(sp, sp, batch.data());
  double m = 0.0;
  for (int c = 0; c < nc; ++c) {
    m = std::max(m, std::abs(batch[static_cast<std::size_t>(c) * nc + c]));
  }
  return std::sqrt(m);
}

struct CellKey {
  int x, y, z;
  bool operator==(const CellKey& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};
struct CellHash {
  std::size_t operator()(const CellKey& c) const {
    return static_cast<std::size_t>(c.x * 73856093) ^
           static_cast<std::size_t>(c.y * 19349663) ^
           static_cast<std::size_t>(c.z * 83492791);
  }
};

}  // namespace

Workload::Workload(const chem::Molecule& mol, const std::string& basis,
                   const EriCostTable& costs, WorkloadOptions opt)
    : opt_(opt) {
  auto bs = basis::BasisSet::build(mol, basis);
  nshells_ = bs.nshells();
  nbf_ = bs.nbf();
  npairs_total_ = nshells_ * (nshells_ + 1) / 2;

  // --- Assign shell types and pick representatives. ---
  std::map<TypeKey, int> type_ids;
  std::vector<int> shell_type(nshells_);
  std::vector<std::size_t> type_rep;
  for (std::size_t s = 0; s < nshells_; ++s) {
    const basis::Shell& sh = bs.shell(s);
    TypeKey key{sh.l, sh.exps};
    auto [it, inserted] = type_ids.emplace(key, static_cast<int>(type_rep.size()));
    if (inserted) type_rep.push_back(s);
    shell_type[s] = it->second;
  }
  const int ntypes = static_cast<int>(type_rep.size());

  // --- Radial Q tables per type pair. ---
  const int nsteps =
      static_cast<int>(opt_.pair_cutoff_bohr / opt_.radial_step_bohr) + 2;
  std::vector<std::vector<double>> qtable(
      static_cast<std::size_t>(ntypes * ntypes));
  double table_qmax = 0.0;
  for (int t1 = 0; t1 < ntypes; ++t1) {
    for (int t2 = 0; t2 <= t1; ++t2) {
      std::vector<double> table(static_cast<std::size_t>(nsteps));
      basis::Shell a = bs.shell(type_rep[static_cast<std::size_t>(t1)]);
      basis::Shell b = bs.shell(type_rep[static_cast<std::size_t>(t2)]);
      a.center = {0.0, 0.0, 0.0};
      for (int s = 0; s < nsteps; ++s) {
        b.center = {0.0, 0.0, s * opt_.radial_step_bohr};
        table[static_cast<std::size_t>(s)] = exact_pair_q(a, b);
        table_qmax = std::max(table_qmax, table[static_cast<std::size_t>(s)]);
      }
      qtable[static_cast<std::size_t>(t1 * ntypes + t2)] = table;
      qtable[static_cast<std::size_t>(t2 * ntypes + t1)] = std::move(table);
    }
  }
  auto lookup_q = [&](int t1, int t2, double r) {
    const auto& table = qtable[static_cast<std::size_t>(t1 * ntypes + t2)];
    const double x = r / opt_.radial_step_bohr;
    const int k = static_cast<int>(x);
    if (k + 1 >= static_cast<int>(table.size())) return 0.0;
    const double f = x - k;
    const double lo = table[static_cast<std::size_t>(k)];
    const double hi = table[static_cast<std::size_t>(k + 1)];
    // Q decays ~exp(-mu R^2): interpolate in log space where both samples
    // are positive (linear interpolation overshoots by ~2% at these radii).
    if (lo > 0.0 && hi > 0.0) {
      return std::exp((1.0 - f) * std::log(lo) + f * std::log(hi));
    }
    return (1.0 - f) * lo + f * hi;
  };

  // --- Spatial binning of shell centers for the cutoff sweep. ---
  const double cell = opt_.pair_cutoff_bohr;
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellHash> grid;
  auto cell_of = [&](const std::array<double, 3>& p) {
    return CellKey{static_cast<int>(std::floor(p[0] / cell)),
                   static_cast<int>(std::floor(p[1] / cell)),
                   static_cast<int>(std::floor(p[2] / cell))};
  };
  for (std::size_t s = 0; s < nshells_; ++s) {
    grid[cell_of(bs.shell(s).center)].push_back(static_cast<std::uint32_t>(s));
  }

  // --- Sweep canonical pairs (i >= j) in pair-index order. ---
  const double cutoff2 = opt_.pair_cutoff_bohr * opt_.pair_cutoff_bohr;
  std::vector<std::uint32_t> candidates;
  for (std::size_t i = 0; i < nshells_; ++i) {
    const basis::Shell& shi = bs.shell(i);
    const CellKey ci = cell_of(shi.center);
    candidates.clear();
    for (int dx = -1; dx <= 1; ++dx) {
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dz = -1; dz <= 1; ++dz) {
          auto it = grid.find(CellKey{ci.x + dx, ci.y + dy, ci.z + dz});
          if (it == grid.end()) continue;
          for (std::uint32_t j : it->second) {
            if (j <= i) candidates.push_back(j);
          }
        }
      }
    }
    std::sort(candidates.begin(), candidates.end());
    for (std::uint32_t j : candidates) {
      const basis::Shell& shj = bs.shell(j);
      double r2 = 0.0;
      for (int d = 0; d < 3; ++d) {
        const double dd = shi.center[d] - shj.center[d];
        r2 += dd * dd;
      }
      if (r2 > cutoff2) continue;
      const double q =
          lookup_q(shell_type[i], shell_type[static_cast<std::size_t>(j)],
                   std::sqrt(r2));
      if (q * table_qmax < opt_.tau) continue;  // cannot survive screening
      PairTask t;
      t.i = static_cast<std::uint32_t>(i);
      t.idx = static_cast<std::uint32_t>(i * (i + 1) / 2 + j);
      t.q = static_cast<float>(q);
      t.cls = static_cast<std::uint8_t>(
          std::min(kNumPairClasses - 1, shi.l + shj.l));
      t.nprim = static_cast<std::uint16_t>(shi.nprim() * shj.nprim());
      pairs_.push_back(t);
      qmax_ = std::max(qmax_, q);
    }
  }

  // --- Per-class sorted bounds with suffix sums for partner queries. ---
  struct ClassData {
    std::vector<float> q_sorted;          // ascending
    std::vector<double> nprim_suffix;     // sum of nprim for q >= q_sorted[k]
    std::vector<double> count_suffix;     // pair count for q >= q_sorted[k]
  };
  std::vector<ClassData> cls_data(kNumPairClasses);
  for (const PairTask& t : pairs_) {
    cls_data[t.cls].q_sorted.push_back(t.q);
  }
  std::vector<std::vector<double>> cls_nprim(kNumPairClasses);
  {
    // Sort (q, nprim) jointly per class.
    std::vector<std::vector<std::pair<float, double>>> tmp(kNumPairClasses);
    for (const PairTask& t : pairs_) {
      tmp[t.cls].push_back({t.q, static_cast<double>(t.nprim)});
    }
    for (int c = 0; c < kNumPairClasses; ++c) {
      auto& v = tmp[static_cast<std::size_t>(c)];
      std::sort(v.begin(), v.end());
      auto& cd = cls_data[static_cast<std::size_t>(c)];
      cd.q_sorted.resize(v.size());
      cd.nprim_suffix.assign(v.size() + 1, 0.0);
      cd.count_suffix.assign(v.size() + 1, 0.0);
      for (std::size_t k = 0; k < v.size(); ++k) {
        cd.q_sorted[k] = v[k].first;
      }
      for (std::size_t k = v.size(); k-- > 0;) {
        cd.nprim_suffix[k] = cd.nprim_suffix[k + 1] + v[k].second;
        cd.count_suffix[k] = cd.count_suffix[k + 1] + 1.0;
      }
    }
  }

  // --- Task costs. ---
  task_cost_.resize(pairs_.size());
  i_task_cost_.assign(nshells_, 0.0);
  i_task_kl_.assign(nshells_, 0.0);
  const std::size_t nsurv = pairs_.size();
  double total = 0.0;
  double quartets = 0.0;
  for (std::size_t p = 0; p < nsurv; ++p) {
    const PairTask& t = pairs_[p];
    const double qmin = opt_.tau / std::max(1e-300, static_cast<double>(t.q));
    double full_cost = 0.0;
    double full_count = 0.0;
    for (int c = 0; c < kNumPairClasses; ++c) {
      const auto& cd = cls_data[static_cast<std::size_t>(c)];
      if (cd.q_sorted.empty()) continue;
      const auto it = std::lower_bound(cd.q_sorted.begin(), cd.q_sorted.end(),
                                       static_cast<float>(qmin));
      const std::size_t k =
          static_cast<std::size_t>(it - cd.q_sorted.begin());
      const double partner_nprim = cd.nprim_suffix[k];
      full_cost += costs.s_per_unit[t.cls][static_cast<std::size_t>(c)] *
                   static_cast<double>(t.nprim) * partner_nprim;
      full_count += cd.count_suffix[k];
    }
    // Triangular kl <= ij constraint: the surviving kl partners with a
    // smaller pair index are, for a homogeneous system, approximately the
    // fraction (rank of ij among surviving pairs).
    const double tri =
        (static_cast<double>(p) + 0.5) / static_cast<double>(nsurv);
    task_cost_[p] = full_cost * tri;
    total += task_cost_[p];
    quartets += full_count * tri;
    i_task_cost_[t.i] += task_cost_[p];
    i_task_kl_[t.i] += static_cast<double>(t.idx) + 1.0;
  }
  total_seconds_ = total;
  quartets_ = quartets;
}

}  // namespace mc::knlsim
