#pragma once
// One driver per table/figure of the paper's evaluation (section 6).
// Each returns a mc::Table whose rows mirror the paper's presentation;
// the bench/ binaries print them. EXPERIMENTS.md records paper-vs-model
// values and the shape criteria each experiment must meet.

#include <map>
#include <memory>
#include <string>

#include "common/table.hpp"
#include "knlsim/simulator.hpp"

namespace mc::knlsim {

/// Shared state for the experiment drivers: machine description,
/// calibration, and a cache of per-dataset workloads (building the 5 nm
/// workload takes a little while; every figure reuses it).
class ExperimentContext {
 public:
  ExperimentContext() = default;
  explicit ExperimentContext(ThetaMachine machine, KnlCalibration calib = {})
      : machine_(machine), calib_(calib) {}

  /// Workload for a paper dataset name ("0.5nm" ... "5.0nm"), built with
  /// the 6-31G(d) basis on the graphene bilayer generator. Cached.
  const Workload& workload(const std::string& dataset);

  [[nodiscard]] const ThetaMachine& machine() const { return machine_; }
  [[nodiscard]] const KnlCalibration& calibration() const { return calib_; }

 private:
  ThetaMachine machine_;
  KnlCalibration calib_;
  std::map<std::string, std::unique_ptr<Workload>> cache_;
};

/// Table 2: estimated per-node memory footprint (GB) of the three codes
/// for all five datasets (eqs. 3a-3c; MPI-only at 256 ranks/node, hybrids
/// at 4 ranks x 64 threads), plus the footprint ratios vs MPI-only.
Table table2_memory_footprint();

/// Table 4 (artifact appendix): dataset characteristics -- atoms, GAMESS
/// shells, basis functions -- from the actual generator and basis tables.
Table table4_dataset_characteristics();

/// Figure 3: shared-Fock time on one node (1.0 nm) vs threads/rank for the
/// four KMP_AFFINITY policies; 4 MPI ranks, quad-cache.
Table figure3_affinity(ExperimentContext& ctx);

/// Figure 4: single-node scalability vs hardware threads (4..256) of the
/// three codes on the 1.0 nm dataset (MPI-only memory-capped at 128).
Table figure4_single_node(ExperimentContext& ctx);

/// Figure 5: time for the three codes under cluster mode x memory mode,
/// for the 0.5 nm and 2.0 nm datasets.
Table figure5_modes(ExperimentContext& ctx, const std::string& dataset);

/// Figure 6 + Table 3: multi-node scaling of the three codes on 2.0 nm,
/// 4..512 nodes, with parallel efficiencies relative to 4 nodes.
Table figure6_table3_multinode(ExperimentContext& ctx);

/// Figure 7: shared-Fock scaling of the 5.0 nm dataset up to 3,000 nodes
/// (the other codes are reported infeasible, as on Theta).
Table figure7_large_scale(ExperimentContext& ctx);

/// Figure 8 (this repo's extension, DESIGN.md section 13): the 5.0 nm /
/// 30,240-BF dataset with the block-distributed Fock builder. Reports the
/// modeled per-node D+F footprint vs node count -- the only curve that
/// *decreases* with scale -- the node count where it first fits entirely
/// in 16 GB MCDRAM (flat mode, no shared-Fock possible there), and the
/// projected runtimes next to shared-Fock's.
Table figure8_dist_fock_projection(ExperimentContext& ctx);

}  // namespace mc::knlsim
