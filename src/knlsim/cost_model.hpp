#pragma once
// Calibrated cost model for the simulator.
//
// ERI cost: seconds per primitive-pair-product unit, per (Lsum_bra,
// Lsum_ket) angular class, measured on this host by bench_eri_micro and
// scaled to a KNL core by a single throughput ratio. Only *relative* costs
// shape the figures; the absolute scale sets the time axis.
//
// Synchronization/communication: OpenMP barrier latency as a function of
// team size, the remote DLB-counter round trip, and an MPI allreduce model
// (Rabenseifner) over the Aries network.

#include <array>

#include "knlsim/knl_config.hpp"

namespace mc::knlsim {

/// Shell-pair angular class: Lsum = l1 + l2 clamped to [0, 4]
/// (s=0 ... dd=4 for the built-in bases).
inline constexpr int kNumPairClasses = 5;

struct EriCostTable {
  /// Host-core seconds per (primitive-pair product) unit for a quartet of
  /// classes (bra, ket). Defaults were measured with bench_eri_micro on the
  /// reproduction host (GCC 12, -O2); regenerate with that binary if the
  /// host changes.
  std::array<std::array<double, kNumPairClasses>, kNumPairClasses> s_per_unit;

  /// Cost weight of one quartet: unit = nprim(bra) * nprim(ket), matching
  /// ints::EriEngine::quartet_cost_weight's primitive factor.
  [[nodiscard]] double quartet_seconds(int class_bra, int nprim_bra,
                                       int class_ket, int nprim_ket) const {
    return s_per_unit[static_cast<std::size_t>(class_bra)]
                     [static_cast<std::size_t>(class_ket)] *
           nprim_bra * nprim_ket;
  }

  static EriCostTable host_default();
};

struct KnlCalibration {
  EriCostTable host_eri = EriCostTable::host_default();

  /// KNL-core throughput relative to the reproduction host core, per
  /// cost-table unit. GAMESS's vectorized (AVX-512) integral kernels on a
  /// KNL core are several times faster per quartet than this project's
  /// scalar McMurchie-Davidson engine per host core; the value anchors the
  /// simulated shared-Fock 2.0 nm / 4-node point to the paper's Table 3
  /// (1318 s). Shapes -- who wins, crossovers, efficiencies -- are
  /// insensitive to it; the absolute time axis is set by it.
  double knl_core_ratio = 8.0;

  /// SMT yield: total core throughput at 1..4 threads/core. The paper
  /// observes the largest gain at 2 threads/core and diminishing returns
  /// at 3-4 (section 6.1 / Figure 3 discussion).
  std::array<double, 5> smt_yield = {0.0, 1.00, 1.35, 1.42, 1.45};

  /// OpenMP barrier: a + b * log2(T) seconds (KNL barriers are slow; a
  /// 64-thread libgomp barrier is ~10 us there).
  double barrier_base_s = 2.0e-6;
  double barrier_log_s = 1.5e-6;

  /// Dynamic-schedule chunk dispatch overhead per kl chunk.
  double omp_chunk_s = 0.15e-6;

  /// Remote DLB counter fetch (one-sided atomic over the network):
  /// per-claim latency seen by the claiming rank.
  double dlb_rtt_s = 3.0e-6;
  /// Serialization gap of the single global counter (NIC-side atomic
  /// throughput): lower-bounds a build at claims * gap.
  double dlb_counter_gap_s = 0.05e-6;

  /// Bytes of Fock/density traffic per computed quartet (the six scatter
  /// updates read/write ~6 cache lines each way at shell granularity).
  double bytes_per_quartet = 1200.0;

  /// Fraction of quartet time that is memory traffic (vs compute) at
  /// nominal bandwidth; scales with the memory mode's bandwidth.
  double memory_fraction = 0.30;

  /// Per-rank replication tax on the MPI-only code's memory traffic:
  /// 1 + tax * log2(ranks_per_node). Replicated D/F defeat the tile-level
  /// L2 sharing entirely (the paper's cache-utilization argument).
  double replication_l2_tax = 0.15;

  /// Shared-Fock write contention: quartet-time multiplier
  /// 1 + c * threads_per_rank. The direct F_kl stores ping cache lines
  /// between threads and the kl dynamic dispatch serializes slightly;
  /// this is why private Fock wins on a single node (Figure 4) while
  /// shared Fock wins at scale (Table 3).
  double shared_fock_contention = 0.0025;

  /// Cluster-mode latency multipliers applied to barriers, DLB and the
  /// memory-traffic term.
  [[nodiscard]] double cluster_factor(ClusterMode m) const {
    switch (m) {
      case ClusterMode::kQuadrant: return 1.00;
      case ClusterMode::kSnc4: return 0.97;
      case ClusterMode::kAllToAll: return 1.30;
    }
    return 1.0;
  }
  /// Extra multiplier on *shared-write* traffic (Algorithm 3's direct
  /// F_kl updates) in all-to-all mode: the distributed tag directory makes
  /// coherence misses cross the whole mesh. This is what lets the stock
  /// MPI code beat shared-Fock for small datasets in A2A (Figure 5).
  [[nodiscard]] double shared_write_penalty(ClusterMode m) const {
    return m == ClusterMode::kAllToAll ? 6.0 : 1.0;
  }

  /// Effective bandwidth for SCF data traffic given mode and per-node
  /// footprint: cache mode degrades toward DDR as the working set exceeds
  /// MCDRAM (direct-mapped conflict misses).
  [[nodiscard]] double effective_bandwidth(const KnlNode& node, MemoryMode m,
                                           double footprint_bytes) const;

  /// Rabenseifner allreduce: 2 lat log2(P) + 2 bytes (P-1)/P / bw.
  [[nodiscard]] double allreduce_seconds(const AriesNetwork& net,
                                         double bytes, int total_ranks,
                                         int ranks_per_node) const;

  /// Seconds a KNL core takes for one quartet of the given classes.
  [[nodiscard]] double knl_quartet_seconds(int class_bra, int nprim_bra,
                                           int class_ket,
                                           int nprim_ket) const {
    return host_eri.quartet_seconds(class_bra, nprim_bra, class_ket,
                                    nprim_ket) /
           knl_core_ratio;
  }

  [[nodiscard]] double barrier_seconds(int nthreads) const;
};

}  // namespace mc::knlsim
