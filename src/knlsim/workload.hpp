#pragma once
// Workload model: turns (molecule, basis, screening threshold) into the
// task-size distributions the schedule simulator needs, using the *real*
// Schwarz bounds of the actual basis/geometry.
//
// Pair bounds Q_ab = sqrt(max (ab|ab)) are evaluated with the production
// ERI kernel, accelerated by a radial interpolation table per shell-type
// pair (graphene has one atom type, so only ~21 type pairs exist; the
// bound depends on the pair distance to well under a percent, which is
// ample for a performance model -- see DESIGN.md). Distant pairs beyond a
// conservative cutoff are exactly zero at any realistic threshold.
//
// Task costs:
//  * task_cost[p]   -- host-core seconds for canonical pair task p
//                      (Algorithms 1 & 3: the kl-loop under pair p),
//                      including the triangular kl <= ij constraint via the
//                      surviving-index-fraction approximation;
//  * i_task_cost[i] -- the same aggregated per i shell (Algorithm 2's
//                      coarse MPI granularity).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "basis/basis_set.hpp"
#include "chem/molecule.hpp"
#include "knlsim/cost_model.hpp"

namespace mc::knlsim {

struct WorkloadOptions {
  /// Quartet screening threshold (GAMESS-like default).
  double tau = 1e-10;
  /// Pairs separated by more than this are treated as screened out
  /// (exp(-mu R^2) is ~1e-20 at 25 bohr for 6-31G(d) carbon).
  double pair_cutoff_bohr = 25.0;
  /// Radial table resolution for the Q(type-pair, R) interpolation.
  double radial_step_bohr = 0.05;
};

struct PairTask {
  std::uint32_t i = 0;       ///< bra shell i of the canonical pair
  std::uint32_t idx = 0;     ///< canonical pair index i(i+1)/2 + j
  float q = 0.0f;            ///< Schwarz bound Q_ij
  std::uint8_t cls = 0;      ///< angular class: l_i + l_j (0..4)
  std::uint16_t nprim = 0;   ///< primitive pairs in the contraction
};

class Workload {
 public:
  /// Builds the workload for a molecule in the named basis.
  Workload(const chem::Molecule& mol, const std::string& basis,
           const EriCostTable& costs, WorkloadOptions opt = {});

  [[nodiscard]] std::size_t nshells() const { return nshells_; }
  [[nodiscard]] std::size_t nbf() const { return nbf_; }
  [[nodiscard]] std::size_t npairs_total() const { return npairs_total_; }
  [[nodiscard]] std::size_t npairs_surviving() const {
    return pairs_.size();
  }
  [[nodiscard]] double qmax() const { return qmax_; }
  [[nodiscard]] double tau() const { return opt_.tau; }

  /// Surviving canonical pairs in pair-index order.
  [[nodiscard]] const std::vector<PairTask>& pairs() const { return pairs_; }

  /// Host-core seconds for each surviving pair task (triangular-adjusted):
  /// the Algorithm 1/3 MPI task sizes, in the DLB claim order.
  [[nodiscard]] const std::vector<double>& task_cost() const {
    return task_cost_;
  }
  /// Host-core seconds aggregated per i shell: Algorithm 2 task sizes.
  [[nodiscard]] const std::vector<double>& i_task_cost() const {
    return i_task_cost_;
  }
  /// Total Fock-build work, host-core seconds (= sum of task_cost).
  [[nodiscard]] double total_host_seconds() const { return total_seconds_; }
  /// Estimated surviving quartet count.
  [[nodiscard]] double quartets_estimate() const { return quartets_; }

  /// Average single-quartet host seconds (for chunk-granularity terms).
  [[nodiscard]] double mean_quartet_seconds() const {
    return quartets_ > 0 ? total_seconds_ / quartets_ : 0.0;
  }

  /// kl-loop trip counts (screening checks + chunk dispatches) aggregated
  /// per i shell, matching i_task_cost.
  [[nodiscard]] const std::vector<double>& i_task_kl_iters() const {
    return i_task_kl_;
  }

 private:
  WorkloadOptions opt_;
  std::size_t nshells_ = 0;
  std::size_t nbf_ = 0;
  std::size_t npairs_total_ = 0;
  double qmax_ = 0.0;
  std::vector<PairTask> pairs_;
  std::vector<double> task_cost_;
  std::vector<double> i_task_cost_;
  std::vector<double> i_task_kl_;
  double total_seconds_ = 0.0;
  double quartets_ = 0.0;
};

}  // namespace mc::knlsim
