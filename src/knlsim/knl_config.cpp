#include "knlsim/knl_config.hpp"

#include "common/error.hpp"

namespace mc::knlsim {

std::string memory_mode_name(MemoryMode m) {
  switch (m) {
    case MemoryMode::kCache: return "cache";
    case MemoryMode::kFlatDdr: return "flat-DDR4";
    case MemoryMode::kFlatMcdram: return "flat-MCDRAM";
  }
  MC_CHECK(false, "unknown memory mode");
  return {};
}

std::string cluster_mode_name(ClusterMode m) {
  switch (m) {
    case ClusterMode::kQuadrant: return "quadrant";
    case ClusterMode::kAllToAll: return "all-to-all";
    case ClusterMode::kSnc4: return "SNC-4";
  }
  MC_CHECK(false, "unknown cluster mode");
  return {};
}

std::string affinity_name(Affinity a) {
  switch (a) {
    case Affinity::kNone: return "none";
    case Affinity::kCompact: return "compact";
    case Affinity::kScatter: return "scatter";
    case Affinity::kBalanced: return "balanced";
  }
  MC_CHECK(false, "unknown affinity");
  return {};
}

}  // namespace mc::knlsim
